module dualspace

go 1.24
