package dualspace

import (
	"context"
	"errors"
	"testing"
)

func TestFacadeDuality(t *testing.T) {
	g, err := HypergraphFromEdges(4, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := HypergraphFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := IsDual(g, h)
	if err != nil || !dual {
		t.Fatalf("IsDual = %v, %v", dual, err)
	}
	res, err := Explain(g, h)
	if err != nil || !res.Dual || res.Reason != ReasonDual {
		t.Fatalf("Explain = %v, %v", res, err)
	}
}

func TestFacadeWitnessFlow(t *testing.T) {
	g, _ := HypergraphFromEdges(4, [][]int{{0, 1}, {2, 3}})
	partial, _ := HypergraphFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}})
	w, ok, err := NewTransversal(g, partial)
	if err != nil || !ok {
		t.Fatalf("NewTransversal: ok=%v err=%v", ok, err)
	}
	m := MinimalizeTransversal(g, w)
	if !m.Equal(NewSet(4, 1, 3)) {
		t.Fatalf("minimalized witness = %v, want {1 3}", m)
	}
}

func TestFacadeTransversals(t *testing.T) {
	g, _ := HypergraphFromEdges(4, [][]int{{0, 1}, {2, 3}})
	tr := MinimalTransversals(g)
	if tr.M() != 4 {
		t.Fatalf("tr count = %d", tr.M())
	}
	if !MinimalTransversalsBerge(g).EqualAsFamily(tr) {
		t.Fatal("Berge disagrees with DFS")
	}
	count := 0
	if err := EnumerateMinimalTransversals(g, func(Set) (bool, error) { count++; return count < 2, nil }); err != nil {
		t.Fatalf("early stop returned error: %v", err)
	}
	if count != 2 {
		t.Fatalf("early stop count = %d", count)
	}
	wantErr := errors.New("downstream broke")
	if err := EnumerateMinimalTransversals(g, func(Set) (bool, error) { return false, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("yield error not surfaced: %v", err)
	}
	selfDual, err := IsSelfDual(MustHypergraph(3, [][]int{{0, 1}, {1, 2}, {0, 2}}))
	if err != nil || !selfDual {
		t.Fatal("triangle should be self-dual")
	}
}

// MustHypergraph is a test helper.
func MustHypergraph(n int, edges [][]int) *Hypergraph {
	h, err := HypergraphFromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return h
}

func TestFacadeEngines(t *testing.T) {
	g := MustHypergraph(4, [][]int{{0, 1}, {2, 3}})
	h := MustHypergraph(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	ctx := context.Background()
	for _, name := range EngineNames() {
		eng, err := EngineByName(name)
		if err != nil {
			t.Fatalf("EngineByName(%q): %v", name, err)
		}
		res, err := ExplainWith(ctx, g, h, Options{Engine: eng})
		if err != nil || !res.Dual {
			t.Errorf("engine %s: %v, %v", name, res, err)
		}
	}
	if _, err := EngineByName("nope"); err == nil {
		t.Error("unknown engine name accepted")
	}
	// A session reuses scratch across calls and still answers correctly.
	sess := NewEngineSession(nil)
	for i := 0; i < 3; i++ {
		res, err := sess.Decide(ctx, g, h)
		if err != nil || !res.Dual {
			t.Fatalf("session decide %d: %v, %v", i, res, err)
		}
	}
	// Racing portfolio through the façade.
	res, err := ExplainWith(ctx, g, h, Options{Engine: NewPortfolioEngine(PortfolioConfig{Race: true})})
	if err != nil || !res.Dual {
		t.Errorf("racing portfolio: %v, %v", res, err)
	}
}

func TestFacadeFK(t *testing.T) {
	g := MustHypergraph(2, [][]int{{0, 1}})
	h := MustHypergraph(2, [][]int{{0}, {1}})
	for _, f := range []func(*Hypergraph, *Hypergraph) (*FKResult, error){FKDecideA, FKDecideB} {
		res, err := f(g, h)
		if err != nil || !res.Dual {
			t.Fatalf("FK verdict: %v, %v", res, err)
		}
	}
}

func TestFacadeDNF(t *testing.T) {
	f, err := ParseDNF("a b + c")
	if err != nil {
		t.Fatal(err)
	}
	d := DualDNF(f)
	dual, err := AreDualDNF(f, d)
	if err != nil || !dual {
		t.Fatalf("AreDualDNF = %v, %v", dual, err)
	}
}

func TestFacadeLogspace(t *testing.T) {
	g := MustHypergraph(4, [][]int{{0, 1}, {2, 3}})
	partial := MustHypergraph(4, [][]int{{0, 2}, {0, 3}, {1, 2}})
	meter := NewSpaceMeter()
	pi, w, found, err := FailCertificate(g, partial, ModeStrict, meter)
	if err != nil || !found {
		t.Fatalf("FailCertificate: found=%v err=%v", found, err)
	}
	if meter.Peak() == 0 || meter.Live() != 0 {
		t.Fatalf("meter: %v", meter)
	}
	if !g.IsNewTransversal(w, partial) {
		t.Fatalf("invalid witness %v", w)
	}
	ok, attr, err := VerifyCertificate(g, partial, pi, ModeReplay, nil)
	if err != nil || !ok {
		t.Fatalf("VerifyCertificate: ok=%v err=%v", ok, err)
	}
	if !attr.T.Equal(w) {
		t.Fatal("certificate witness mismatch")
	}
	a, ok, err := PathNode(g, partial, pi, ModePipelined, nil)
	if err != nil || !ok || a.Mark.String() != "fail" {
		t.Fatalf("PathNode: %v ok=%v err=%v", a, ok, err)
	}
}

func TestFacadeMining(t *testing.T) {
	d := NewDataset(3)
	d.AddRow(0, 1)
	d.AddRow(0, 1)
	d.AddRow(2)
	b, err := ComputeBorders(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxFrequent.M() == 0 {
		t.Fatal("no maximal frequent sets found")
	}
	idRes, err := IdentifyBorders(d, 1, b.MinInfrequent, b.MaxFrequent)
	if err != nil || !idRes.Complete {
		t.Fatalf("IdentifyBorders: %v, %v", idRes, err)
	}
}

func TestFacadeKeys(t *testing.T) {
	r, err := NewRelation([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddRow("1", "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRow("2", "x"); err != nil {
		t.Fatal(err)
	}
	ks := MinimalKeys(r)
	if ks.M() != 1 {
		t.Fatalf("keys: %v", ks)
	}
	res, err := AdditionalKey(r, NewHypergraph(2))
	if err != nil || res.Complete {
		t.Fatalf("AdditionalKey: %v, %v", res, err)
	}
}

func TestFacadeCoteries(t *testing.T) {
	h := MustHypergraph(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	c, err := NewCoterie(h)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := IsNonDominated(c)
	if err != nil || !nd {
		t.Fatalf("majority coterie: %v, %v", nd, err)
	}
}

func TestFacadeParallel(t *testing.T) {
	g := MustHypergraph(4, [][]int{{0, 1}, {2, 3}})
	h := MustHypergraph(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	res, err := ExplainParallel(g, h, 2)
	if err != nil || !res.Dual {
		t.Fatalf("ExplainParallel: %v, %v", res, err)
	}
}

func TestFacadeStructure(t *testing.T) {
	triangle := MustHypergraph(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if IsAcyclic(triangle) {
		t.Error("triangle reported acyclic")
	}
	if got := Degeneracy(triangle); got != 2 {
		t.Errorf("Degeneracy = %d, want 2", got)
	}
	star := MustHypergraph(4, [][]int{{0, 1}, {0, 2}, {0, 3}})
	if !IsAcyclic(star) {
		t.Error("star reported cyclic")
	}
}

func TestFacadeArmstrong(t *testing.T) {
	k := MustHypergraph(3, [][]int{{0}, {1, 2}})
	rel, err := ArmstrongRelation(k, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if !MinimalKeys(rel).EqualAsFamily(k) {
		t.Error("Armstrong relation keys do not round-trip")
	}
}
