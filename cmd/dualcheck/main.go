// Command dualcheck decides whether two simple hypergraphs (equivalently,
// two irredundant monotone DNFs) are dual.
//
// Usage:
//
//	dualcheck [-engine portfolio|core|core-parallel|fk-a|fk-b|logspace]
//	          [-race] [-workers n] [-algo bm|bmp|fka|fkb|space]
//	          [-mode replay|strict|pipelined] G.hg H.hg
//
// Each input file lists one hyperedge per line as whitespace-separated
// vertex names ('-' denotes the empty edge, '#' starts a comment). The two
// files share one vertex universe. The decision runs on the selected
// engine; the default portfolio dispatches on instance shape, and -race
// hedges it by racing two engines. -algo keeps the legacy spellings (bm,
// bmp, fka, fkb) plus the space-bounded certificate search, whose regime
// -mode selects. Exit status: 0 dual, 1 not dual, 2 error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dualspace"
	"dualspace/internal/core"
	"dualspace/internal/hgio"
	"dualspace/internal/logspace"
)

func main() {
	engineName := flag.String("engine", "", "decision engine: "+strings.Join(dualspace.EngineNames(), ", ")+" (default portfolio; overrides -algo)")
	raceMode := flag.Bool("race", false, "race the portfolio's selection against a contrasting engine")
	algo := flag.String("algo", "", "legacy algorithm spelling: bm, bmp, fka, fkb, space")
	mode := flag.String("mode", "replay", "space regime for -algo space: replay, strict, pipelined")
	workers := flag.Int("workers", 0, "goroutines for core-parallel / -algo bmp (0 = GOMAXPROCS)")
	quiet := flag.Bool("q", false, "suppress witness output")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dualcheck [-engine name] [-algo bm|bmp|fka|fkb|space] G.hg H.hg")
		os.Exit(2)
	}
	gf, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer gf.Close()
	hf, err := os.Open(flag.Arg(1))
	exitOn(err)
	defer hf.Close()
	hs, sy, err := hgio.ReadHypergraphs(gf, hf)
	exitOn(err)
	g, h := hs[0], hs[1]

	if *engineName == "" && *algo == "space" {
		// Keep the error-instead-of-silent-fallback policy of resolveEngine:
		// the certificate search neither races nor takes a worker bound.
		if *raceMode {
			exitOn(fmt.Errorf("-race applies only to the portfolio engine, not the space certificate search"))
		}
		if *workers != 0 {
			exitOn(fmt.Errorf("-workers does not apply to the space certificate search"))
		}
		runSpace(g, h, *mode, sy, *quiet)
		return
	}
	eng, err := resolveEngine(*engineName, *algo, *raceMode, *workers)
	exitOn(err)
	res, err := dualspace.ExplainWith(context.Background(), g, h, dualspace.Options{Engine: eng})
	exitOn(err)
	report(res.Dual, describe(res, sy), *quiet)
}

// resolveEngine maps the -engine / -algo / -race / -workers flags to an
// engine: -engine wins over the legacy -algo spellings, then the default
// portfolio. -race applies only to the portfolio and -workers only to the
// parallel engines; asking for either on an engine that cannot honor it is
// an error rather than a silent fallback.
func resolveEngine(name, algo string, raceMode bool, workers int) (dualspace.Engine, error) {
	if name == "" {
		switch algo {
		case "":
			name = "portfolio"
		case "bm":
			name = "core"
		case "bmp":
			name = "core-parallel"
		case "fka":
			name = "fk-a"
		case "fkb":
			name = "fk-b"
		default:
			return nil, fmt.Errorf("unknown algorithm %q", algo)
		}
	}
	if raceMode && name != "portfolio" {
		return nil, fmt.Errorf("-race applies only to the portfolio engine, not %q", name)
	}
	if workers != 0 && name != "portfolio" && name != "core-parallel" {
		return nil, fmt.Errorf("-workers applies only to core-parallel or the portfolio, not %q", name)
	}
	switch name {
	case "portfolio":
		if raceMode || workers != 0 {
			return dualspace.NewPortfolioEngine(dualspace.PortfolioConfig{Workers: workers, Race: raceMode}), nil
		}
	case "core-parallel":
		if workers != 0 {
			return dualspace.NewParallelEngine(workers), nil
		}
	}
	return dualspace.EngineByName(name)
}

// runSpace is the certificate-search path: preconditions through the
// engine, then the space-bounded fail-path search with a workspace meter.
func runSpace(g, h *dualspace.Hypergraph, mode string, sy *hgio.Symbols, quiet bool) {
	m, err := parseMode(mode)
	exitOn(err)
	res, err := dualspace.Explain(g, h)
	exitOn(err)
	if !res.Dual && res.Reason != dualspace.ReasonNewTransversal {
		report(false, describe(res, sy), quiet)
		return
	}
	meter := dualspace.NewSpaceMeter()
	pi, w, found, err := dualspace.FailCertificate(g, h, m, meter)
	exitOn(err)
	detail := fmt.Sprintf("peak workspace %d bits (%s mode)", meter.Peak(), m)
	if found {
		detail = fmt.Sprintf("certificate %v, witness %s, %s", pi, names(w, sy), detail)
	}
	report(!found, detail, quiet)
}

func describe(res *core.Result, sy *hgio.Symbols) string {
	if res.Dual {
		return ""
	}
	s := res.Reason.String()
	if res.Reason == dualspace.ReasonNewTransversal {
		s += ": " + names(res.Witness, sy)
	}
	return s
}

func names(set dualspace.Set, sy *hgio.Symbols) string {
	out := "{"
	first := true
	set.ForEach(func(v int) bool {
		if !first {
			out += " "
		}
		first = false
		if v < sy.Len() {
			out += sy.Name(v)
		} else {
			out += fmt.Sprint(v)
		}
		return true
	})
	return out + "}"
}

func parseMode(s string) (dualspace.SpaceMode, error) {
	switch s {
	case "replay":
		return logspace.ModeReplay, nil
	case "strict":
		return logspace.ModeStrict, nil
	case "pipelined":
		return logspace.ModePipelined, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func report(dual bool, detail string, quiet bool) {
	if dual {
		fmt.Println("DUAL")
		os.Exit(0)
	}
	if quiet || detail == "" {
		fmt.Println("NOT DUAL")
	} else {
		fmt.Printf("NOT DUAL (%s)\n", detail)
	}
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dualcheck:", err)
		os.Exit(2)
	}
}
