// Command dualcheck decides whether two simple hypergraphs (equivalently,
// two irredundant monotone DNFs) are dual.
//
// Usage:
//
//	dualcheck [-algo bm|fka|fkb|space] [-mode replay|strict|pipelined] G.hg H.hg
//
// Each input file lists one hyperedge per line as whitespace-separated
// vertex names ('-' denotes the empty edge, '#' starts a comment). The two
// files share one vertex universe. Exit status: 0 dual, 1 not dual, 2
// error.
package main

import (
	"flag"
	"fmt"
	"os"

	"dualspace"
	"dualspace/internal/core"
	"dualspace/internal/hgio"
	"dualspace/internal/logspace"
)

func main() {
	algo := flag.String("algo", "bm", "algorithm: bm (Boros–Makino), bmp (parallel), fka, fkb, space (space-bounded search)")
	mode := flag.String("mode", "replay", "space regime for -algo space: replay, strict, pipelined")
	workers := flag.Int("workers", 0, "goroutines for -algo bmp (0 = GOMAXPROCS)")
	quiet := flag.Bool("q", false, "suppress witness output")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dualcheck [-algo bm|fka|fkb|space] G.hg H.hg")
		os.Exit(2)
	}
	gf, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer gf.Close()
	hf, err := os.Open(flag.Arg(1))
	exitOn(err)
	defer hf.Close()
	hs, sy, err := hgio.ReadHypergraphs(gf, hf)
	exitOn(err)
	g, h := hs[0], hs[1]

	switch *algo {
	case "bm":
		res, err := dualspace.Explain(g, h)
		exitOn(err)
		report(res.Dual, describe(res, sy), *quiet)
	case "bmp":
		res, err := dualspace.ExplainParallel(g, h, *workers)
		exitOn(err)
		report(res.Dual, describe(res, sy), *quiet)
	case "fka", "fkb":
		decide := dualspace.FKDecideA
		if *algo == "fkb" {
			decide = dualspace.FKDecideB
		}
		res, err := decide(g, h)
		exitOn(err)
		detail := ""
		if !res.Dual && res.HasWitness {
			detail = fmt.Sprintf("witness assignment %s (%d recursive calls)", names(res.Witness, sy), res.Stats.Calls)
		}
		report(res.Dual, detail, *quiet)
	case "space":
		m, err := parseMode(*mode)
		exitOn(err)
		// Full duality = preconditions (core) + space-bounded tree search.
		res, err := dualspace.Explain(g, h)
		exitOn(err)
		if !res.Dual && res.Reason != dualspace.ReasonNewTransversal {
			report(false, describe(res, sy), *quiet)
			return
		}
		meter := dualspace.NewSpaceMeter()
		pi, w, found, err := dualspace.FailCertificate(g, h, m, meter)
		exitOn(err)
		detail := fmt.Sprintf("peak workspace %d bits (%s mode)", meter.Peak(), m)
		if found {
			detail = fmt.Sprintf("certificate %v, witness %s, %s", pi, names(w, sy), detail)
		}
		report(!found, detail, *quiet)
	default:
		exitOn(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func describe(res *core.Result, sy *hgio.Symbols) string {
	if res.Dual {
		return ""
	}
	s := res.Reason.String()
	if res.Reason == dualspace.ReasonNewTransversal {
		s += ": " + names(res.Witness, sy)
	}
	return s
}

func names(set dualspace.Set, sy *hgio.Symbols) string {
	out := "{"
	first := true
	set.ForEach(func(v int) bool {
		if !first {
			out += " "
		}
		first = false
		if v < sy.Len() {
			out += sy.Name(v)
		} else {
			out += fmt.Sprint(v)
		}
		return true
	})
	return out + "}"
}

func parseMode(s string) (dualspace.SpaceMode, error) {
	switch s {
	case "replay":
		return logspace.ModeReplay, nil
	case "strict":
		return logspace.ModeStrict, nil
	case "pipelined":
		return logspace.ModePipelined, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func report(dual bool, detail string, quiet bool) {
	if dual {
		fmt.Println("DUAL")
		os.Exit(0)
	}
	if quiet || detail == "" {
		fmt.Println("NOT DUAL")
	} else {
		fmt.Printf("NOT DUAL (%s)\n", detail)
	}
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dualcheck:", err)
		os.Exit(2)
	}
}
