// Command dualbench runs the reproduction experiments of EXPERIMENTS.md
// and prints their result tables.
//
// Usage:
//
//	dualbench -list            # list experiment ids and titles
//	dualbench                  # run all experiments
//	dualbench -run E5,E8       # run selected experiments
//	dualbench -json            # machine-readable results (ns/op, allocs/op)
//
// Every experiment reports PASS/FAIL against the corresponding claim of
// Gottlob (PODS 2013); see DESIGN.md §3 for the index. With -json the
// aligned tables are replaced by one JSON document on stdout carrying
// per-experiment wall time and allocation counts, the format of the
// BENCH_*.json perf-trajectory files recorded at the repository root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dualspace/internal/experiments"
)

// jsonResult is one experiment's machine-readable outcome.
type jsonResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Pass     bool   `json:"pass"`
	NsOp     int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
	Rows     int    `json:"rows"`
}

// jsonReport is the -json document.
type jsonReport struct {
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	Experiments []jsonResult `json:"experiments"`
	Pass        bool         `json:"pass"`
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (per-experiment ns/op and allocs/op)")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dualbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	report := jsonReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Pass: true}
	for _, e := range selected {
		tbl, ns, allocs := measure(e)
		if *jsonOut {
			report.Experiments = append(report.Experiments, jsonResult{
				ID: e.ID, Title: e.Title, Pass: tbl.Pass,
				NsOp: ns, AllocsOp: allocs, Rows: len(tbl.Rows),
			})
		} else {
			tbl.Format(os.Stdout)
		}
		if !tbl.Pass {
			failures++
			report.Pass = false
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dualbench:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dualbench: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

// measure runs one experiment, returning its table plus wall time and
// allocation count for the run ("per op" with the experiment as the op —
// the granularity the perf trajectory tracks across PRs).
func measure(e experiments.Experiment) (tbl *experiments.Table, ns int64, allocs uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tbl = e.Run()
	ns = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return tbl, ns, after.Mallocs - before.Mallocs
}
