// Command dualbench runs the reproduction experiments of EXPERIMENTS.md
// and prints their result tables.
//
// Usage:
//
//	dualbench -list            # list experiment ids and titles
//	dualbench                  # run all experiments
//	dualbench -run E5,E8       # run selected experiments
//	dualbench -json            # machine-readable results (ns/op, allocs/op)
//	dualbench -engine all      # additionally benchmark every decision engine
//
// Every experiment reports PASS/FAIL against the corresponding claim of
// Gottlob (PODS 2013); see DESIGN.md §3 for the index. With -json the
// aligned tables are replaced by one JSON document on stdout carrying
// per-experiment wall time and allocation counts, the format of the
// BENCH_*.json perf-trajectory files recorded at the repository root.
//
// -engine (a registry name or "all") appends an engine benchmark: each
// selected engine decides a fixed ground-truth instance suite through a
// pinned session, reporting wall time and allocations per suite pass plus a
// verdict-conformance flag; with -json these appear as per-engine rows
// under "engines".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dualspace/internal/engine"
	"dualspace/internal/experiments"
	"dualspace/internal/gen"
)

// jsonResult is one experiment's machine-readable outcome.
type jsonResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Pass     bool   `json:"pass"`
	NsOp     int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
	Rows     int    `json:"rows"`
}

// engineResult is one engine's machine-readable benchmark row: one "op" is
// a full pass over the ground-truth suite through a pinned session.
type engineResult struct {
	Engine    string `json:"engine"`
	Instances int    `json:"instances"`
	Pass      bool   `json:"pass"`
	NsOp      int64  `json:"ns_op"`
	AllocsOp  uint64 `json:"allocs_op"`
}

// jsonReport is the -json document.
type jsonReport struct {
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Experiments []jsonResult   `json:"experiments"`
	Engines     []engineResult `json:"engines,omitempty"`
	Pass        bool           `json:"pass"`
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (per-experiment ns/op and allocs/op)")
	engines := flag.String("engine", "", "benchmark decision engines: a registry name or \"all\"")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dualbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	report := jsonReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Pass: true}
	if *engines != "" {
		rows, err := benchEngines(*engines)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualbench:", err)
			os.Exit(2)
		}
		report.Engines = rows
		for _, row := range rows {
			if !row.Pass {
				failures++
				report.Pass = false
			}
		}
		if !*jsonOut {
			printEngineTable(rows)
		}
	}
	for _, e := range selected {
		tbl, ns, allocs := measure(e)
		if *jsonOut {
			report.Experiments = append(report.Experiments, jsonResult{
				ID: e.ID, Title: e.Title, Pass: tbl.Pass,
				NsOp: ns, AllocsOp: allocs, Rows: len(tbl.Rows),
			})
		} else {
			tbl.Format(os.Stdout)
		}
		if !tbl.Pass {
			failures++
			report.Pass = false
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dualbench:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dualbench: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

// measure runs one experiment, returning its table plus wall time and
// allocation count for the run ("per op" with the experiment as the op —
// the granularity the perf trajectory tracks across PRs).
func measure(e experiments.Experiment) (tbl *experiments.Table, ns int64, allocs uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tbl = e.Run()
	ns = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return tbl, ns, after.Mallocs - before.Mallocs
}

// engineSuite is the fixed ground-truth workload every engine is measured
// on: the named generator families (duals, dropped-edge non-duals,
// self-duals, random pairs) plus a heavier matching and majority pair, all
// with known answers.
func engineSuite() []gen.Pair {
	suite := gen.Families(42)
	suite = append(suite,
		gen.Pair{Name: "matching-6", G: gen.Matching(6), H: gen.MatchingDual(6), Dual: true},
		gen.Pair{Name: "matching-6-dropped", G: gen.Matching(6), H: gen.DropEdge(gen.MatchingDual(6), 17), Dual: false},
		gen.Pair{Name: "majority-9", G: gen.Majority(9), H: gen.Majority(9), Dual: true},
	)
	return suite
}

// benchEngines decides the suite on each selected engine (a registry name
// or "all") through a pinned session, measuring wall time and allocations
// per full suite pass and checking every verdict against ground truth.
func benchEngines(sel string) ([]engineResult, error) {
	names := []string{sel}
	if sel == "all" {
		names = engine.Names()
	}
	suite := engineSuite()
	ctx := context.Background()
	var rows []engineResult
	for _, name := range names {
		eng, err := engine.ByName(name)
		if err != nil {
			return nil, err
		}
		sess := engine.NewSession(eng)
		pass := true
		runPass := func() {
			for _, p := range suite {
				res, err := sess.Decide(ctx, p.G, p.H)
				if err != nil || res.Dual != p.Dual {
					pass = false
				}
			}
		}
		runPass() // warm the session scratch before measuring
		const passes = 3
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < passes; i++ {
			runPass()
		}
		ns := time.Since(start).Nanoseconds() / passes
		runtime.ReadMemStats(&after)
		rows = append(rows, engineResult{
			Engine:    name,
			Instances: len(suite),
			Pass:      pass,
			NsOp:      ns,
			AllocsOp:  (after.Mallocs - before.Mallocs) / passes,
		})
	}
	return rows, nil
}

func printEngineTable(rows []engineResult) {
	fmt.Printf("%-14s %10s %14s %14s %6s\n", "ENGINE", "INSTANCES", "NS/PASS", "ALLOCS/PASS", "PASS")
	for _, r := range rows {
		fmt.Printf("%-14s %10d %14d %14d %6v\n", r.Engine, r.Instances, r.NsOp, r.AllocsOp, r.Pass)
	}
}
