// Command dualbench runs the reproduction experiments of EXPERIMENTS.md
// and prints their result tables.
//
// Usage:
//
//	dualbench -list            # list experiment ids and titles
//	dualbench                  # run all experiments
//	dualbench -run E5,E8       # run selected experiments
//	dualbench -json            # machine-readable results (ns/op, allocs/op)
//	dualbench -engine all      # additionally benchmark every decision engine
//	dualbench -stages          # per-stage timing breakdown of the family rows
//	dualbench -procs 1,4       # family rows at several GOMAXPROCS widths
//	                           # (widths > 1 run the core-parallel engine)
//
// Every experiment reports PASS/FAIL against the corresponding claim of
// Gottlob (PODS 2013); see DESIGN.md §3 for the index. With -json the
// aligned tables are replaced by one JSON document on stdout carrying
// per-experiment wall time and allocation counts, the format of the
// BENCH_*.json perf-trajectory files recorded at the repository root.
//
// -engine (a registry name or "all") appends an engine benchmark: each
// selected engine decides a fixed ground-truth instance suite through a
// pinned session, reporting wall time and allocations per suite pass plus a
// verdict-conformance flag; with -json these appear as per-engine rows
// under "engines".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/experiments"
	"dualspace/internal/gen"
	"dualspace/internal/obs"
)

// jsonResult is one experiment's machine-readable outcome.
type jsonResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Pass     bool   `json:"pass"`
	NsOp     int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
	Rows     int    `json:"rows"`
}

// engineResult is one engine's machine-readable benchmark row: one "op" is
// a full pass over the ground-truth suite through a pinned session.
type engineResult struct {
	Engine    string `json:"engine"`
	Instances int    `json:"instances"`
	Pass      bool   `json:"pass"`
	NsOp      int64  `json:"ns_op"`
	AllocsOp  uint64 `json:"allocs_op"`
}

// familyResult is one instance family's machine-readable benchmark row:
// NsOp through a warm pinned session (indexes, scratch and subinstance memo
// reused — the serving steady state), NsOpCold through a fresh memo-less
// session per op (the pure kernel cost). The default rows run the serial
// core engine at one scheduler slot; -procs adds rows on the work-stealing
// core-parallel engine at higher GOMAXPROCS, labelled by the Engine and
// GOMAXPROCS fields so trajectory tooling (cmd/benchdiff) never compares a
// multi-CPU row against single-CPU history.
type familyResult struct {
	Family string `json:"family"`
	Dual   bool   `json:"dual"`
	Pass   bool   `json:"pass"`
	// Engine is the deciding engine ("core" or "core-parallel").
	Engine string `json:"engine"`
	// GOMAXPROCS is the scheduler width the row ran under.
	GOMAXPROCS int   `json:"gomaxprocs"`
	NsOp       int64 `json:"ns_op"`
	NsOpCold   int64 `json:"ns_op_cold"`
	// StageNs breaks NsOp into the recorder's decision stages (precheck,
	// index_sync, walk, memo — the handler stages don't apply here), only
	// with -stages and only for stages that ran. The recorder itself costs
	// a few clock reads per op, so stage rows are recorded in a separate
	// pass from the NsOp measurement.
	StageNs map[string]int64 `json:"stage_ns,omitempty"`
}

// jsonReport is the -json document. The environment metadata (git revision,
// Go version, GOMAXPROCS, CPU count) makes BENCH_*.json rows comparable
// across the perf trajectory: rows recorded on different machines or
// configurations are visibly so.
type jsonReport struct {
	GoVersion   string         `json:"go_version"`
	GitRevision string         `json:"git_revision"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Experiments []jsonResult   `json:"experiments"`
	Engines     []engineResult `json:"engines,omitempty"`
	Families    []familyResult `json:"families,omitempty"`
	Pass        bool           `json:"pass"`
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (per-experiment ns/op and allocs/op)")
	engines := flag.String("engine", "", "benchmark decision engines: a registry name or \"all\"")
	stages := flag.Bool("stages", false, "break family rows into per-stage decision timings (obs recorder)")
	procs := flag.String("procs", "", "comma-separated GOMAXPROCS values for the family rows (e.g. \"1,4\"; values > 1 run the work-stealing core-parallel engine)")
	flag.Parse()

	procList, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dualbench:", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dualbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	report := jsonReport{
		GoVersion:   runtime.Version(),
		GitRevision: obs.GitRevision(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Pass:        true,
	}
	if *jsonOut || *stages {
		report.Families = benchFamilies(*stages, procList)
		for _, row := range report.Families {
			if !row.Pass {
				failures++
				report.Pass = false
			}
		}
		if !*jsonOut && *stages {
			printFamilyStageTable(report.Families)
		}
	}
	if *engines != "" {
		rows, err := benchEngines(*engines)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualbench:", err)
			os.Exit(2)
		}
		report.Engines = rows
		for _, row := range rows {
			if !row.Pass {
				failures++
				report.Pass = false
			}
		}
		if !*jsonOut {
			printEngineTable(rows)
		}
	}
	for _, e := range selected {
		reps := 1
		if *jsonOut {
			reps = 3
		}
		tbl, ns, allocs := measure(e, reps)
		if *jsonOut {
			report.Experiments = append(report.Experiments, jsonResult{
				ID: e.ID, Title: e.Title, Pass: tbl.Pass,
				NsOp: ns, AllocsOp: allocs, Rows: len(tbl.Rows),
			})
		} else {
			tbl.Format(os.Stdout)
		}
		if !tbl.Pass {
			failures++
			report.Pass = false
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dualbench:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dualbench: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

// measure runs one experiment, returning its table plus wall time and
// allocation count for the run ("per op" with the experiment as the op —
// the granularity the perf trajectory tracks across PRs). The reported
// time is the minimum over runs: experiments are deterministic, so the
// minimum is the least scheduler-noise-contaminated estimate, which keeps
// the BENCH_*.json rows comparable enough for the CI bench-regression
// gate (-json measures three runs; table mode runs once).
func measure(e experiments.Experiment, runs int) (tbl *experiments.Table, ns int64, allocs uint64) {
	for i := 0; i < runs; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl = e.Run()
		elapsed := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		if i == 0 || elapsed < ns {
			ns = elapsed
			allocs = after.Mallocs - before.Mallocs
		}
	}
	return tbl, ns, allocs
}

// engineSuite is the fixed ground-truth workload every engine is measured
// on: the named generator families (duals, dropped-edge non-duals,
// self-duals, random pairs) plus a heavier matching and majority pair, all
// with known answers.
func engineSuite() []gen.Pair {
	suite := gen.Families(42)
	suite = append(suite,
		gen.Pair{Name: "matching-6", G: gen.Matching(6), H: gen.MatchingDual(6), Dual: true},
		gen.Pair{Name: "matching-6-dropped", G: gen.Matching(6), H: gen.DropEdge(gen.MatchingDual(6), 17), Dual: false},
		gen.Pair{Name: "majority-9", G: gen.Majority(9), H: gen.Majority(9), Dual: true},
	)
	return suite
}

// benchEngines decides the suite on each selected engine (a registry name
// or "all") through a pinned session, measuring wall time and allocations
// per full suite pass and checking every verdict against ground truth.
func benchEngines(sel string) ([]engineResult, error) {
	names := []string{sel}
	if sel == "all" {
		names = engine.Names()
	}
	suite := engineSuite()
	ctx := context.Background()
	var rows []engineResult
	for _, name := range names {
		eng, err := engine.ByName(name)
		if err != nil {
			return nil, err
		}
		sess := engine.NewSession(eng)
		pass := true
		runPass := func() {
			for _, p := range suite {
				res, err := sess.Decide(ctx, p.G, p.H)
				if err != nil || res.Dual != p.Dual {
					pass = false
				}
			}
		}
		runPass() // warm the session scratch before measuring
		const passes = 3
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < passes; i++ {
			runPass()
		}
		ns := time.Since(start).Nanoseconds() / passes
		runtime.ReadMemStats(&after)
		rows = append(rows, engineResult{
			Engine:    name,
			Instances: len(suite),
			Pass:      pass,
			NsOp:      ns,
			AllocsOp:  (after.Mallocs - before.Mallocs) / passes,
		})
	}
	return rows, nil
}

// parseProcs parses the -procs flag into a GOMAXPROCS list; empty means
// just the single-slot baseline, the shape of the pre-existing trajectory.
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return []int{1}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var p int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &p); err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs value %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}

// benchFamilies benchmarks every suite instance individually, once per
// requested GOMAXPROCS width: warm through one pinned session per family
// (scratch + subinstance memo reused across ops, the serving steady state)
// and cold through a fresh memo-less session per op (pure kernel + setup).
// Width 1 runs the serial core engine — the trajectory baseline; widths > 1
// run the work-stealing core-parallel engine with that many workers under
// runtime.GOMAXPROCS temporarily raised to match, so the rows measure real
// (or, on a small host, honestly contended) parallelism.
func benchFamilies(stages bool, procs []int) []familyResult {
	var rows []familyResult
	for _, p := range procs {
		rows = append(rows, benchFamiliesAt(stages, p)...)
	}
	return rows
}

func benchFamiliesAt(stages bool, procs int) []familyResult {
	engName := "core"
	var eng engine.Engine
	if procs > 1 {
		engName = "core-parallel"
		eng = engine.NewCoreParallel(procs)
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	} else {
		var err error
		if eng, err = engine.ByName("core"); err != nil {
			panic(err)
		}
	}
	ctx := context.Background()
	var rows []familyResult
	for _, p := range engineSuite() {
		row := familyResult{Family: p.Name, Dual: p.Dual, Pass: true, Engine: engName, GOMAXPROCS: procs}

		sess := engine.NewSession(eng)
		check := func(res *core.Result, err error) {
			if err != nil || res == nil || res.Dual != p.Dual {
				row.Pass = false
			}
		}
		res, err := sess.Decide(ctx, p.G, p.H) // warm the session + memo
		check(res, err)
		const warmOps = 5
		start := time.Now()
		for i := 0; i < warmOps; i++ {
			res, err := sess.Decide(ctx, p.G, p.H)
			check(res, err)
		}
		row.NsOp = time.Since(start).Nanoseconds() / warmOps

		const coldOps = 3
		start = time.Now()
		for i := 0; i < coldOps; i++ {
			cold := engine.NewSessionMemo(eng, -1)
			res, err := cold.Decide(ctx, p.G, p.H)
			check(res, err)
		}
		row.NsOpCold = time.Since(start).Nanoseconds() / coldOps

		if stages {
			// A separate recorded pass on the warm session, so the clock
			// reads never contaminate NsOp above.
			rec := sess.Recorder()
			rec.Reset()
			for i := 0; i < warmOps; i++ {
				res, err := sess.Decide(ctx, p.G, p.H)
				check(res, err)
			}
			t := rec.Timings()
			row.StageNs = make(map[string]int64, obs.NumStages)
			for st, name := range obs.StageNames() {
				if ns := t[st]; ns > 0 {
					row.StageNs[name] = ns / warmOps
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// printFamilyStageTable renders the -stages breakdown in table mode.
func printFamilyStageTable(rows []familyResult) {
	stageCols := []string{"precheck", "index_sync", "walk", "memo"}
	fmt.Printf("%-22s %12s", "FAMILY", "NS/OP")
	for _, c := range stageCols {
		fmt.Printf(" %12s", strings.ToUpper(c))
	}
	fmt.Printf(" %6s\n", "PASS")
	for _, r := range rows {
		fmt.Printf("%-22s %12d", r.Family, r.NsOp)
		for _, c := range stageCols {
			fmt.Printf(" %12d", r.StageNs[c])
		}
		fmt.Printf(" %6v\n", r.Pass)
	}
}

func printEngineTable(rows []engineResult) {
	fmt.Printf("%-14s %10s %14s %14s %6s\n", "ENGINE", "INSTANCES", "NS/PASS", "ALLOCS/PASS", "PASS")
	for _, r := range rows {
		fmt.Printf("%-14s %10d %14d %14d %6v\n", r.Engine, r.Instances, r.NsOp, r.AllocsOp, r.Pass)
	}
}
