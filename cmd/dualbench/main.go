// Command dualbench runs the reproduction experiments of EXPERIMENTS.md
// and prints their result tables.
//
// Usage:
//
//	dualbench -list            # list experiment ids and titles
//	dualbench                  # run all experiments
//	dualbench -run E5,E8       # run selected experiments
//
// Every experiment reports PASS/FAIL against the corresponding claim of
// Gottlob (PODS 2013); see DESIGN.md §3 for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dualspace/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dualbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	for _, e := range selected {
		tbl := e.Run()
		tbl.Format(os.Stdout)
		if !tbl.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dualbench: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
