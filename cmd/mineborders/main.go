// Command mineborders computes the maximal frequent itemsets IS+ and the
// minimal infrequent itemsets IS− of a transaction database.
//
// Usage:
//
//	mineborders [-z threshold] [-method dualize|apriori] data.tx
//
// The input lists one transaction per line as whitespace-separated item
// names. An itemset is frequent when strictly more than z transactions
// contain it (Gottlob, PODS 2013, §1). The default method is the
// incremental dualize-and-advance algorithm driven by the duality engine;
// apriori is the levelwise baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"dualspace/internal/hgio"
	"dualspace/internal/itemsets"
)

func main() {
	z := flag.Int("z", 1, "frequency threshold (frequent ⟺ support > z)")
	method := flag.String("method", "dualize", "algorithm: dualize, apriori")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mineborders [-z n] [-method dualize|apriori] data.tx")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	d, sy, err := hgio.ReadDataset(f)
	exitOn(err)

	var b *itemsets.Borders
	switch *method {
	case "dualize":
		b, err = itemsets.ComputeBorders(d, *z)
	case "apriori":
		b, err = itemsets.BordersApriori(d, *z)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	exitOn(err)

	fmt.Printf("# %d transactions, %d items, threshold z=%d (frequent ⟺ support > z)\n",
		d.NumRows(), d.NumItems(), *z)
	fmt.Printf("# maximal frequent itemsets (IS+): %d\n", b.MaxFrequent.M())
	exitOn(hgio.WriteHypergraph(os.Stdout, b.MaxFrequent.Canonical(), sy))
	fmt.Printf("# minimal infrequent itemsets (IS−): %d\n", b.MinInfrequent.M())
	exitOn(hgio.WriteHypergraph(os.Stdout, b.MinInfrequent.Canonical(), sy))
	if b.DualityChecks > 0 {
		fmt.Printf("# duality checks: %d\n", b.DualityChecks)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mineborders:", err)
		os.Exit(2)
	}
}
