// Command mineborders computes the maximal frequent itemsets IS+ and the
// minimal infrequent itemsets IS− of a transaction database.
//
// Usage:
//
//	mineborders [-z threshold] [-method dualize|apriori] [-progress]
//	            [-server URL] data.tx
//
// The input lists one transaction per line as whitespace-separated item
// names. An itemset is frequent when strictly more than z transactions
// contain it (Gottlob, PODS 2013, §1). The default method is the
// incremental dualize-and-advance algorithm driven by the duality engine;
// apriori is the levelwise baseline.
//
// With -progress each border element is printed to stderr the moment its
// duality check verifies it ("+ items..." for IS+, "- items..." for IS−),
// so long mines are observable. With -server the mining runs remotely on a
// dualserved instance via its streaming POST /v1/mine endpoint (the
// dualize-and-advance loop advances server-side on pooled, memoizing
// sessions; elements stream back as found); -method is ignored in server
// mode.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"dualspace/internal/engine"
	"dualspace/internal/hgio"
	"dualspace/internal/itemsets"
)

func main() {
	z := flag.Int("z", 1, "frequency threshold (frequent ⟺ support > z)")
	method := flag.String("method", "dualize", "algorithm: dualize, apriori")
	progress := flag.Bool("progress", false, "print each border element to stderr as it is found (dualize only)")
	server := flag.String("server", "", "mine via a running dualserved base URL (e.g. http://127.0.0.1:8372)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mineborders [-z n] [-method dualize|apriori] [-progress] [-server URL] data.tx")
		os.Exit(2)
	}

	if *server != "" {
		mineRemote(*server, flag.Arg(0), *z)
		return
	}

	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	d, sy, err := hgio.ReadDataset(f)
	exitOn(err)

	var b *itemsets.Borders
	switch *method {
	case "dualize":
		var onFound func(itemsets.BorderEvent) error
		if *progress {
			onFound = func(ev itemsets.BorderEvent) error {
				fmt.Fprintln(os.Stderr, progressLine(ev.MaxFrequent, setNames(ev, sy)))
				return nil
			}
		}
		b, err = itemsets.ComputeBordersStreamWith(context.Background(), d, *z, engine.Default(), onFound)
	case "apriori":
		b, err = itemsets.BordersApriori(d, *z)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	exitOn(err)

	fmt.Printf("# %d transactions, %d items, threshold z=%d (frequent ⟺ support > z)\n",
		d.NumRows(), d.NumItems(), *z)
	fmt.Printf("# maximal frequent itemsets (IS+): %d\n", b.MaxFrequent.M())
	exitOn(hgio.WriteHypergraph(os.Stdout, b.MaxFrequent.Canonical(), sy))
	fmt.Printf("# minimal infrequent itemsets (IS−): %d\n", b.MinInfrequent.M())
	exitOn(hgio.WriteHypergraph(os.Stdout, b.MinInfrequent.Canonical(), sy))
	if b.DualityChecks > 0 {
		fmt.Printf("# duality checks: %d\n", b.DualityChecks)
	}
}

// setNames renders an event's itemset through the local symbol table.
func setNames(ev itemsets.BorderEvent, sy *hgio.Symbols) []string {
	var out []string
	ev.Set.ForEach(func(v int) bool {
		out = append(out, sy.Name(v))
		return true
	})
	return out
}

func progressLine(maxFrequent bool, items []string) string {
	sign := "-"
	if maxFrequent {
		sign = "+"
	}
	if len(items) == 0 {
		return sign + " (empty)"
	}
	return sign + " " + strings.Join(items, " ")
}

// mineRemote streams POST /v1/mine from a dualserved instance, printing
// border elements as they arrive and a summary once the stream completes.
func mineRemote(base, path string, z int) {
	data, err := os.ReadFile(path)
	exitOn(err)
	body, err := json.Marshal(map[string]any{"data": string(data), "z": z})
	exitOn(err)
	resp, err := http.Post(strings.TrimRight(base, "/")+"/v1/mine", "application/json", bytes.NewReader(body))
	exitOn(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		exitOn(fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(raw)))
	}

	type record struct {
		MaxFrequent   []string `json:"max_frequent"`
		MinInfrequent []string `json:"min_infrequent"`
		Check         int      `json:"check"`
		Done          bool     `json:"done"`
		MaxCount      int      `json:"max_frequent_count"`
		MinCount      int      `json:"min_infrequent_count"`
		DualityChecks int      `json:"duality_checks"`
		Error         string   `json:"error"`
	}
	var maxSets, minSets [][]string
	terminal := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var rec record
		exitOn(json.Unmarshal(sc.Bytes(), &rec))
		switch {
		case rec.Error != "":
			exitOn(fmt.Errorf("server error mid-stream: %s", rec.Error))
		case rec.Done:
			terminal = true
			fmt.Printf("# maximal frequent itemsets (IS+): %d\n", rec.MaxCount)
			printSets(maxSets)
			fmt.Printf("# minimal infrequent itemsets (IS−): %d\n", rec.MinCount)
			printSets(minSets)
			fmt.Printf("# duality checks: %d\n", rec.DualityChecks)
		case rec.MaxFrequent != nil:
			fmt.Fprintln(os.Stderr, progressLine(true, rec.MaxFrequent))
			maxSets = append(maxSets, rec.MaxFrequent)
		default:
			fmt.Fprintln(os.Stderr, progressLine(false, rec.MinInfrequent))
			minSets = append(minSets, rec.MinInfrequent)
		}
	}
	exitOn(sc.Err())
	if !terminal {
		exitOn(fmt.Errorf("stream ended without a terminal record"))
	}
}

// printSets writes one itemset per line in a stable order ("-" for the
// empty set, matching the hgio edge format).
func printSets(sets [][]string) {
	lines := make([]string, 0, len(sets))
	for _, s := range sets {
		if len(s) == 0 {
			lines = append(lines, "-")
			continue
		}
		lines = append(lines, strings.Join(s, " "))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mineborders:", err)
		os.Exit(2)
	}
}
