// Command coteriecheck validates a quorum system as a coterie and decides
// non-domination via self-duality (Gottlob, PODS 2013, Proposition 1.3).
//
// Usage:
//
//	coteriecheck [-improve] quorums.hg
//
// The input lists one quorum per line as whitespace-separated node names.
// With -improve, a dominating coterie is printed when the input is
// dominated. Exit status: 0 non-dominated, 1 dominated, 2 invalid/error.
package main

import (
	"flag"
	"fmt"
	"os"

	"dualspace/internal/coterie"
	"dualspace/internal/hgio"
)

func main() {
	improve := flag.Bool("improve", false, "print a dominating coterie when dominated")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: coteriecheck [-improve] quorums.hg")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	hs, sy, err := hgio.ReadHypergraphs(f)
	exitOn(err)
	c, err := coterie.New(hs[0])
	exitOn(err)

	nd, err := c.IsNonDominated()
	exitOn(err)
	if nd {
		fmt.Printf("NON-DOMINATED coterie (%d quorums over %d nodes)\n", c.NumQuorums(), c.Universe())
		return
	}
	fmt.Printf("DOMINATED coterie (%d quorums over %d nodes)\n", c.NumQuorums(), c.Universe())
	if *improve {
		dom, found, err := c.FindDominating()
		exitOn(err)
		if found {
			fmt.Println("# a dominating coterie:")
			exitOn(hgio.WriteHypergraph(os.Stdout, dom.Hypergraph(), sy))
		}
	}
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coteriecheck:", err)
		os.Exit(2)
	}
}
