// Command dualload is a load generator for dualserved: concurrent clients
// replay a dedup-heavy decision mix against POST /v1/decide (one HTTP round
// trip per decision) and/or POST /v1/batch (NDJSON batches drained by the
// server's dedup scheduler), reporting throughput and a latency histogram
// per mode — the measurement behind the batch subsystem's perf claims
// (BENCH_PR5.json, EXPERIMENTS.md).
//
// Usage:
//
//	dualload -addr http://127.0.0.1:8372 [-clients 8] [-requests 200]
//	         [-distinct 8] [-batch-size 64] [-mode both|decide|batch]
//	         [-engine name] [-json] [-retry] [-retry-max n] [-retry-base d]
//
// -addr accepts a comma-separated list of base URLs for cluster runs:
// each call picks a replica uniformly at random (seeded per client, per
// request in decide mode, per batch in batch mode), so a dedup-heavy mix
// hits every replica with every canonical class — the shape that
// exercises peer cache-fills (docs/CLUSTER.md). Random, not round-robin:
// a round-robin keyed on the request counter correlates with the row
// cycle and can pin each canonical class to one replica. The -json
// report then carries a per-replica "servers" section scraped from each
// replica's /metricsz.
//
// With -retry the client heals through the server's resilience responses
// the way a production caller should: shed answers (503) and contained
// panics (500) are retried up to -retry-max times under jittered
// exponential backoff from -retry-base, honoring the server's Retry-After
// hint when it is longer; budget timeouts (504) are terminal — the same
// instance would time out again. The report carries the error taxonomy
// (sheds / panics / timeouts seen, retries spent), so a chaos run can
// assert the server shed within bounds and healed every contained panic.
//
// The mix holds -distinct canonically distinct instances (matchings of
// growing width with dual, near-dual and self-dual variants); every client
// issues -requests decisions sampled round-robin from the mix, a third of
// them under renamed vertices — the repetitive, rename-heavy stream shape
// of the dualize-and-advance applications. With -mode both the same mix
// runs first as individual decides, then as batches, and the report carries
// the batch/decide throughput ratio.
//
// The -json report carries, per run, the full client-side latency
// distribution (cumulative hist_counts over the shared log-scale
// hist_bucket_bounds_us), and a "server" section with per-endpoint
// percentiles scraped from the server's /metricsz after the runs — the
// same traffic seen from the other side of the socket.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dualspace/internal/obs"
)

type instance struct{ g, h string }

// matchingText renders the k-edge matching and its 2^k-edge dual (minus one
// edge when dual is false) with a naming tag, so tagged copies are
// renamed-isomorphic: distinct names, identical canonical fingerprints.
func matchingText(k int, dual bool, tag string) instance {
	var g, h strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&g, "%sv%da %sv%db\n", tag, i, tag, i)
	}
	limit := 1 << k
	if !dual {
		limit--
	}
	for mask := 0; mask < limit; mask++ {
		for i := 0; i < k; i++ {
			side := "a"
			if mask&(1<<i) != 0 {
				side = "b"
			}
			fmt.Fprintf(&h, "%sv%d%s ", tag, i, side)
		}
		h.WriteString("\n")
	}
	return instance{g.String(), h.String()}
}

// triangleText is the self-dual majority triangle under a naming tag.
func triangleText(tag string) instance {
	e := func(a, b string) string { return tag + a + " " + tag + b + "\n" }
	t := e("a", "b") + e("b", "c") + e("a", "c")
	return instance{t, t}
}

// mix builds n canonically distinct instances: the self-dual triangle plus
// dual and near-dual matchings of growing width. Renaming never leaves a
// canonical class, so distinctness comes from structure alone; the pool
// tops out at 15 distinct shapes (triangle + matchings 2..8 × {dual,
// near-dual}) and n is clamped to it.
func mix(n int) []instance {
	out := []instance{triangleText("")}
	for k := 2; len(out) < n && k <= 8; k++ {
		out = append(out, matchingText(k, true, ""))
		if len(out) < n {
			out = append(out, matchingText(k, false, ""))
		}
	}
	return out
}

// retag renames an instance's vertices (prefixing every name) without
// changing its canonical fingerprint class.
func retag(in instance, tag string) instance {
	if tag == "" {
		return in
	}
	re := func(text string) string {
		var b strings.Builder
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			fields := strings.Fields(line)
			for i, f := range fields {
				fields[i] = tag + f
			}
			b.WriteString(strings.Join(fields, " ") + "\n")
		}
		return b.String()
	}
	return instance{re(in.g), re(in.h)}
}

// request i of a client's replay: instance + rename tag.
func requestBody(instances []instance, i int) instance {
	in := instances[i%len(instances)]
	switch i % 3 {
	case 1:
		return retag(in, "x_")
	case 2:
		return retag(in, "yy_")
	}
	return in
}

// precomputeRows marshals the replay's request lines once (the mix cycles
// every len(instances)×3 requests), so the timed loops replay canned bytes
// instead of re-tagging and re-marshaling per call — the client must not be
// the bottleneck of its own measurement. Each line ends in '\n' (NDJSON
// row; also a valid /v1/decide body).
func precomputeRows(instances []instance, eng string) [][]byte {
	cycle := len(instances) * 3
	rows := make([][]byte, cycle)
	for i := range rows {
		in := requestBody(instances, i)
		b, err := json.Marshal(map[string]string{"g": in.g, "h": in.h, "engine": eng})
		if err != nil {
			panic(err)
		}
		rows[i] = append(b, '\n')
	}
	return rows
}

// taxonomy counts the server's resilience responses seen during one run,
// keyed by the docs/API.md error taxonomy. Under -retry, sheds and panics
// that later healed still count here (the report shows how hard the server
// pushed back) while Errors counts only terminal failures.
type taxonomy struct {
	// Sheds counts 503 answers (admission queue full, queue-wait expired,
	// or drain in progress).
	Sheds int `json:"sheds,omitempty"`
	// Panics counts 500 answers (a contained internal panic; the server
	// self-heals the poisoned worker, so a retry lands on a fresh session).
	Panics int `json:"panics,omitempty"`
	// Timeouts counts 504 answers (server compute budget exhausted); these
	// are terminal even under -retry — the same instance would only time
	// out again.
	Timeouts int `json:"timeouts,omitempty"`
	// Retries counts extra HTTP calls spent healing sheds and panics.
	Retries int `json:"retries,omitempty"`
}

func (t *taxonomy) add(o taxonomy) {
	t.Sheds += o.Sheds
	t.Panics += o.Panics
	t.Timeouts += o.Timeouts
	t.Retries += o.Retries
}

// retryCfg drives postRetry; zero value means fail on first answer.
type retryCfg struct {
	enabled bool
	max     int           // extra attempts per request
	base    time.Duration // first backoff; doubles per attempt, ±50% jitter
}

// backoff is the jittered exponential wait before retry attempt n (0-based):
// base·2ⁿ scaled uniformly into [0.5, 1.5). The rng is per-client and
// seeded, so a chaos run's wait pattern is reproducible.
func (rc retryCfg) backoff(n int, rng *rand.Rand) time.Duration {
	d := rc.base << uint(min(n, 16))
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// retryAfterHint parses the server's Retry-After header (delay-seconds
// form); 0 when absent or unparsable.
func retryAfterHint(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// postRetry issues one POST, healing retryable resilience answers when
// rc.enabled: 503 (shed) and 500 (contained panic) back off — jittered
// exponential, never shorter than the server's Retry-After hint — and go
// again, up to rc.max extra attempts. Every answer class is tallied into
// tax; calls counts HTTP round trips. The final response comes back with
// its body unread (callers drain and close it), exactly like hc.Post.
func postRetry(hc *http.Client, url, ctype string, body []byte, rc retryCfg, rng *rand.Rand, tax *taxonomy, calls *int) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := hc.Post(url, ctype, bytes.NewReader(body))
		*calls++
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			tax.Sheds++
		case http.StatusInternalServerError:
			tax.Panics++
		case http.StatusGatewayTimeout:
			tax.Timeouts++
		}
		retryable := resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusInternalServerError
		if !rc.enabled || !retryable || attempt >= rc.max {
			return resp, nil
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		wait := rc.backoff(attempt, rng)
		if hint := retryAfterHint(resp); hint > wait {
			wait = hint
		}
		time.Sleep(wait)
		tax.Retries++
	}
}

// runResult is one mode's measurement (a row of the -json report).
type runResult struct {
	Mode      string `json:"mode"`
	Clients   int    `json:"clients"`
	Items     int    `json:"items"`
	HTTPCalls int    `json:"http_calls"`
	Errors    int    `json:"errors"`
	taxonomy
	BatchSize   int     `json:"batch_size,omitempty"`
	Seconds     float64 `json:"seconds"`
	ItemsPerSec float64 `json:"items_per_sec"`
	P50Us       int64   `json:"p50_us"`
	P90Us       int64   `json:"p90_us"`
	P99Us       int64   `json:"p99_us"`
	MaxUs       int64   `json:"max_us"`
	// HistCounts is the full client-side latency distribution: cumulative
	// call counts per bucket of the report's hist_bucket_bounds_us, with
	// one final +Inf bucket — the same log-scale bounds the server's
	// /metricsz histograms use, so client and server distributions overlay
	// directly.
	HistCounts []int64 `json:"hist_counts,omitempty"`
}

// serverEndpointStats is one endpoint's server-side latency summary,
// interpolated from the /metricsz request-duration histogram. The counters
// cover the server's lifetime, not just this run.
type serverEndpointStats struct {
	Count int64 `json:"count"`
	P50Us int64 `json:"p50_us"`
	P90Us int64 `json:"p90_us"`
	P99Us int64 `json:"p99_us"`
}

// report is the -json document.
type report struct {
	Addr              string      `json:"addr"`
	RequestsPerClient int         `json:"requests_per_client"`
	Distinct          int         `json:"distinct"`
	Engine            string      `json:"engine,omitempty"`
	Retry             bool        `json:"retry,omitempty"`
	Runs              []runResult `json:"runs"`
	// HistBucketBoundsUs are the shared upper bounds (µs) of every run's
	// hist_counts; the final count bucket is +Inf.
	HistBucketBoundsUs []float64 `json:"hist_bucket_bounds_us,omitempty"`
	// Server carries per-endpoint latency percentiles scraped from the
	// server's own /metricsz after the runs — the server-side view of the
	// same traffic, free of client scheduling noise. Absent when the
	// server does not expose /metricsz. With one -addr only; multi-replica
	// runs fill Servers instead.
	Server map[string]serverEndpointStats `json:"server,omitempty"`
	// Servers is the per-replica version of Server, keyed by base URL,
	// present when -addr lists more than one replica.
	Servers map[string]map[string]serverEndpointStats `json:"servers,omitempty"`
	// SpeedupBatchVsDecide is the items/sec ratio (only with -mode both).
	SpeedupBatchVsDecide float64 `json:"speedup_batch_vs_decide,omitempty"`
}

// histBoundsUs are the client histogram's bucket upper bounds in
// microseconds (obs.DurationBuckets, the server's log-scale bounds).
func histBoundsUs() []float64 {
	sec := obs.DurationBuckets()
	out := make([]float64, len(sec))
	for i, b := range sec {
		out[i] = b * 1e6
	}
	return out
}

// histCounts buckets sorted latencies into cumulative counts over
// histBoundsUs plus a final +Inf bucket.
func histCounts(sorted []time.Duration) []int64 {
	bounds := histBoundsUs()
	out := make([]int64, len(bounds)+1)
	i := 0
	for b, bound := range bounds {
		for i < len(sorted) && float64(sorted[i].Microseconds()) <= bound {
			i++
		}
		out[b] = int64(i)
	}
	out[len(bounds)] = int64(len(sorted))
	return out
}

func percentile(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Microseconds()
}

func summarize(mode string, clients, items, calls, errors, batchSize int, wall time.Duration, lat []time.Duration) runResult {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	r := runResult{
		Mode: mode, Clients: clients, Items: items, HTTPCalls: calls,
		Errors: errors, BatchSize: batchSize, Seconds: wall.Seconds(),
		P50Us: percentile(lat, 0.50), P90Us: percentile(lat, 0.90),
		P99Us: percentile(lat, 0.99),
	}
	if len(lat) > 0 {
		r.MaxUs = lat[len(lat)-1].Microseconds()
		r.HistCounts = histCounts(lat)
	}
	if wall > 0 {
		r.ItemsPerSec = float64(items) / wall.Seconds()
	}
	return r
}

// scrapeServerStats reads the server's /metricsz and interpolates
// per-endpoint latency percentiles out of the
// dualspace_http_request_duration_seconds histograms. A missing or
// unparsable exposition returns an error; the caller degrades gracefully
// (older servers have no /metricsz).
func scrapeServerStats(hc *http.Client, addr string) (map[string]serverEndpointStats, error) {
	resp, err := hc.Get(addr + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metricsz: status %d", resp.StatusCode)
	}
	type bucket struct {
		le  float64
		cum int64
	}
	byEndpoint := make(map[string][]bucket)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	const prefix = `dualspace_http_request_duration_seconds_bucket{`
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok {
			continue
		}
		end := strings.Index(rest, "} ")
		if end < 0 {
			continue
		}
		labels, valText := rest[:end], rest[end+2:]
		var ep string
		le := math.Inf(1)
		for _, pair := range strings.Split(labels, ",") {
			if v, ok := strings.CutPrefix(pair, `endpoint="`); ok {
				ep = strings.TrimSuffix(v, `"`)
			} else if v, ok := strings.CutPrefix(pair, `le="`); ok {
				v = strings.TrimSuffix(v, `"`)
				if v != "+Inf" {
					le, _ = strconv.ParseFloat(v, 64)
				}
			}
		}
		cum, err := strconv.ParseFloat(valText, 64)
		if err != nil || ep == "" {
			continue
		}
		byEndpoint[ep] = append(byEndpoint[ep], bucket{le: le, cum: int64(cum)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(byEndpoint) == 0 {
		return nil, fmt.Errorf("no request-duration histograms in /metricsz")
	}
	out := make(map[string]serverEndpointStats)
	for ep, bs := range byEndpoint {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		total := bs[len(bs)-1].cum
		if total == 0 {
			continue
		}
		pct := func(q float64) int64 {
			target := int64(math.Ceil(q * float64(total)))
			lo, loCum := 0.0, int64(0)
			for _, b := range bs {
				if b.cum >= target {
					hi := b.le
					if math.IsInf(hi, 1) {
						return int64(lo * 1e6) // open-ended top bucket: report its floor
					}
					frac := float64(target-loCum) / float64(b.cum-loCum)
					return int64((lo + (hi-lo)*frac) * 1e6)
				}
				lo, loCum = b.le, b.cum
			}
			return int64(lo * 1e6)
		}
		out[ep] = serverEndpointStats{
			Count: total, P50Us: pct(0.50), P90Us: pct(0.90), P99Us: pct(0.99),
		}
	}
	return out, nil
}

// client is shared across workers: keep-alives sized to the worker count so
// the decide mode reuses connections like a real pooled client would.
func newHTTPClient(clients int) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = clients * 2
	tr.MaxIdleConnsPerHost = clients * 2
	return &http.Client{Transport: tr, Timeout: 5 * time.Minute}
}

// runDecide replays the mix as individual /v1/decide calls, round-robin
// across addrs. Under -retry the latency of a healed request covers the
// whole retry chain, backoffs included — the time a production caller
// actually waited for the answer.
func runDecide(hc *http.Client, addrs []string, rows [][]byte, clients, requests int, rc retryCfg) runResult {
	var (
		mu     sync.Mutex
		lat    []time.Duration
		errors int
		calls  int
		tax    taxonomy
		wg     sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var myLat []time.Duration
			var myTax taxonomy
			myErrs, myCalls := 0, 0
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for i := 0; i < requests; i++ {
				body := rows[(c*requests+i)%len(rows)]
				// Pick the target uniformly at random (seeded per client, so
				// replays are deterministic). A round-robin keyed on the same
				// counter as the row pick would lock each canonical class to
				// one replica whenever len(addrs) divides the row cycle —
				// silently erasing the cross-replica duplication a cluster
				// run is supposed to exercise.
				addr := addrs[0]
				if len(addrs) > 1 {
					addr = addrs[rng.Intn(len(addrs))]
				}
				t0 := time.Now()
				resp, err := postRetry(hc, addr+"/v1/decide", "application/json", body, rc, rng, &myTax, &myCalls)
				if err != nil {
					myErrs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					myErrs++
				}
				myLat = append(myLat, time.Since(t0))
			}
			mu.Lock()
			lat = append(lat, myLat...)
			errors += myErrs
			calls += myCalls
			tax.add(myTax)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	r := summarize("decide", clients, clients*requests, calls, errors, 0, wall, lat)
	r.taxonomy = tax
	return r
}

// runBatch replays the same mix as NDJSON batches of batchSize, each
// batch round-robined across addrs. Under -retry a shed batch (503 before
// any row was drained) is resubmitted whole; row-level error rows inside
// a 200 stream stay errors — re-running a partially answered batch would
// double-count its items.
func runBatch(hc *http.Client, addrs []string, rows [][]byte, clients, requests, batchSize int, rc retryCfg) runResult {
	var (
		mu     sync.Mutex
		lat    []time.Duration
		errors int
		calls  int
		tax    taxonomy
		wg     sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var myLat []time.Duration
			var myTax taxonomy
			myErrs, myCalls := 0, 0
			rng := rand.New(rand.NewSource(int64(c) + 101))
			for off := 0; off < requests; off += batchSize {
				n := batchSize
				if off+n > requests {
					n = requests - off
				}
				var body bytes.Buffer
				for i := 0; i < n; i++ {
					body.Write(rows[(c*requests+off+i)%len(rows)])
				}
				// Random target per batch, same rationale as the decide loop:
				// counter-keyed round-robin correlates with the row cycle.
				addr := addrs[0]
				if len(addrs) > 1 {
					addr = addrs[rng.Intn(len(addrs))]
				}
				t0 := time.Now()
				resp, err := postRetry(hc, addr+"/v1/batch", "application/x-ndjson", body.Bytes(), rc, rng, &myTax, &myCalls)
				if err != nil {
					myErrs += n
					continue
				}
				// Count rows by cheap byte sniffing: fully JSON-decoding
				// every response line would make the measuring client the
				// bottleneck on a shared machine (this is a load tool, and
				// the generated vertex names cannot collide with the
				// markers).
				rows, termOK := 0, false
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
				for sc.Scan() {
					line := sc.Bytes()
					switch {
					case bytes.Contains(line, []byte(`"index"`)):
						rows++
						if bytes.Contains(line, []byte(`"error"`)) {
							myErrs++
						}
					case bytes.Contains(line, []byte(`"done":true`)):
						termOK = true
					}
				}
				resp.Body.Close()
				if rows != n || !termOK {
					myErrs += n - rows
				}
				myLat = append(myLat, time.Since(t0))
			}
			mu.Lock()
			lat = append(lat, myLat...)
			errors += myErrs
			calls += myCalls
			tax.add(myTax)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	r := summarize("batch", clients, clients*requests, calls, errors, batchSize, wall, lat)
	r.taxonomy = tax
	return r
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8372", "dualserved base URL, or a comma-separated replica list (round-robin)")
	clients := flag.Int("clients", 8, "concurrent clients")
	requests := flag.Int("requests", 200, "decisions per client")
	distinct := flag.Int("distinct", 8, "canonically distinct instances in the mix")
	batchSize := flag.Int("batch-size", 64, "decisions per /v1/batch call")
	mode := flag.String("mode", "both", "workload: decide, batch, both")
	eng := flag.String("engine", "", "engine field on every request (empty = portfolio)")
	asJSON := flag.Bool("json", false, "machine-readable report on stdout")
	retry := flag.Bool("retry", false, "retry shed (503) and contained-panic (500) answers with backoff")
	retryMax := flag.Int("retry-max", 5, "extra attempts per request under -retry")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first backoff under -retry (doubles per attempt, ±50% jitter)")
	flag.Parse()
	if flag.NArg() != 0 || *clients < 1 || *requests < 1 || *distinct < 1 || *batchSize < 1 || *retryMax < 0 || *retryBase < 0 {
		fmt.Fprintln(os.Stderr, "usage: dualload [-addr URL] [-clients n] [-requests n] [-distinct n] [-batch-size n] [-mode decide|batch|both] [-engine name] [-json] [-retry] [-retry-max n] [-retry-base d]")
		os.Exit(2)
	}
	if *mode != "decide" && *mode != "batch" && *mode != "both" {
		fmt.Fprintf(os.Stderr, "dualload: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "dualload: empty -addr")
		os.Exit(2)
	}

	instances := mix(*distinct)
	hc := newHTTPClient(*clients)
	// One throwaway call per replica verifies they are reachable before
	// timing.
	for _, a := range addrs {
		if resp, err := hc.Get(a + "/healthz"); err != nil {
			fmt.Fprintln(os.Stderr, "dualload: server unreachable:", err)
			os.Exit(1)
		} else {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	rc := retryCfg{enabled: *retry, max: *retryMax, base: *retryBase}
	rep := report{Addr: *addr, RequestsPerClient: *requests, Distinct: *distinct, Engine: *eng, Retry: *retry}
	rows := precomputeRows(instances, *eng)
	var decideRun, batchRun *runResult
	if *mode == "decide" || *mode == "both" {
		r := runDecide(hc, addrs, rows, *clients, *requests, rc)
		rep.Runs = append(rep.Runs, r)
		decideRun = &r
	}
	if *mode == "batch" || *mode == "both" {
		r := runBatch(hc, addrs, rows, *clients, *requests, *batchSize, rc)
		rep.Runs = append(rep.Runs, r)
		batchRun = &r
	}
	if decideRun != nil && batchRun != nil && decideRun.ItemsPerSec > 0 {
		rep.SpeedupBatchVsDecide = batchRun.ItemsPerSec / decideRun.ItemsPerSec
	}
	rep.HistBucketBoundsUs = histBoundsUs()
	if len(addrs) == 1 {
		if server, err := scrapeServerStats(hc, addrs[0]); err == nil {
			rep.Server = server
		} else if !*asJSON {
			fmt.Fprintln(os.Stderr, "dualload: no server-side stats:", err)
		}
	} else {
		rep.Servers = make(map[string]map[string]serverEndpointStats)
		for _, a := range addrs {
			if server, err := scrapeServerStats(hc, a); err == nil {
				rep.Servers[a] = server
			} else if !*asJSON {
				fmt.Fprintln(os.Stderr, "dualload: no server-side stats from", a, ":", err)
			}
		}
		if len(rep.Servers) == 0 {
			rep.Servers = nil
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "dualload:", err)
			os.Exit(1)
		}
		exitOnErrors(rep)
		return
	}
	fmt.Printf("dualload: %d clients × %d requests, %d distinct instances, against %s\n",
		*clients, *requests, *distinct, *addr)
	for _, r := range rep.Runs {
		extra := ""
		if r.Mode == "batch" {
			extra = fmt.Sprintf(" (batch size %d)", r.BatchSize)
		}
		fmt.Printf("  %-6s %8.0f items/s  %6d items in %6.2fs  %4d HTTP calls%s\n",
			r.Mode, r.ItemsPerSec, r.Items, r.Seconds, r.HTTPCalls, extra)
		fmt.Printf("         latency/call µs: p50 %d  p90 %d  p99 %d  max %d  (errors %d)\n",
			r.P50Us, r.P90Us, r.P99Us, r.MaxUs, r.Errors)
		if r.Sheds+r.Panics+r.Timeouts+r.Retries > 0 {
			fmt.Printf("         resilience:      sheds %d  panics %d  timeouts %d  retries %d\n",
				r.Sheds, r.Panics, r.Timeouts, r.Retries)
		}
		if sv, ok := rep.Server[r.Mode]; ok {
			fmt.Printf("         server-side µs:  p50 %d  p90 %d  p99 %d  (%d requests since server start)\n",
				sv.P50Us, sv.P90Us, sv.P99Us, sv.Count)
		}
	}
	if rep.SpeedupBatchVsDecide > 0 {
		fmt.Printf("  batch vs decide throughput: %.2f×\n", rep.SpeedupBatchVsDecide)
	}
	exitOnErrors(rep)
}

// exitOnErrors fails the process when any request errored, so scripted runs
// (CI, bench recording) cannot silently measure a broken server.
func exitOnErrors(rep report) {
	for _, r := range rep.Runs {
		if r.Errors > 0 {
			fmt.Fprintf(os.Stderr, "dualload: %d errors in %s run\n", r.Errors, r.Mode)
			os.Exit(1)
		}
	}
}
