// Command dualvet is the repo's invariant checker: a multichecker over the
// analyzers in internal/analysis/... plus two compiler-backed gates. It is
// run in CI next to vet/staticcheck and must exit clean on the tree:
//
//	go run ./cmd/dualvet ./...            # run all analyzers
//	go run ./cmd/dualvet -run allocfree ./internal/core
//	go run ./cmd/dualvet -json ./...      # machine-readable findings
//	go run ./cmd/dualvet -gate bce ./internal/bitset ./internal/core
//	go run ./cmd/dualvet -gate escape ./...
//
// The gates diff compiler diagnostics against checked-in allowlists under
// internal/analysis/allowlists (override with -allowlist). See
// docs/ANALYSIS.md for the annotation grammar and allowlist formats.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dualspace/internal/analysis"
	"dualspace/internal/analysis/allocfree"
	"dualspace/internal/analysis/bitsetalias"
	"dualspace/internal/analysis/ctxpoll"
	"dualspace/internal/analysis/gate"
	"dualspace/internal/analysis/lockscope"
	"dualspace/internal/analysis/reasonswitch"
)

var all = []*analysis.Analyzer{
	allocfree.Analyzer,
	bitsetalias.Analyzer,
	ctxpoll.Analyzer,
	lockscope.Analyzer,
	reasonswitch.Analyzer,
}

func main() {
	var (
		runList   = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		gateName  = flag.String("gate", "", "run a build-time gate instead of the analyzers: bce or escape")
		allowlist = flag.String("allowlist", "", "allowlist file for -gate (default: internal/analysis/allowlists/<gate>.txt)")
		listOnly  = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := analysis.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}

	if *gateName != "" {
		runGate(dir, *gateName, *allowlist, patterns)
		return
	}

	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatal(fmt.Errorf("unknown analyzer %q (use -list)", name))
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", relPos(dir, d), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dualvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func relPos(dir string, d analysis.Diagnostic) string {
	rel, err := filepath.Rel(dir, d.Pos.Filename)
	if err != nil {
		rel = d.Pos.Filename
	}
	return fmt.Sprintf("%s:%d:%d", rel, d.Pos.Line, d.Pos.Column)
}

func runGate(dir, name, allowPath string, patterns []string) {
	if allowPath == "" {
		allowPath = filepath.Join(dir, "internal", "analysis", "allowlists", name+".txt")
	}
	allow, err := gate.ReadAllowlist(allowPath)
	if err != nil {
		fatal(err)
	}
	var violations []gate.Finding
	var stale []string
	switch name {
	case "bce":
		violations, stale, err = gate.BCE(dir, patterns, allow)
	case "escape":
		violations, stale, err = gate.Escape(dir, patterns, allow)
	default:
		err = fmt.Errorf("unknown gate %q (want bce or escape)", name)
	}
	if err != nil {
		fatal(err)
	}
	for _, s := range stale {
		fmt.Printf("dualvet: %s allowlist entry no longer fires (prune it): %s\n", name, s)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("%s: %s gate: new entry not in %s:\n\t%s\n", v.Pos, name, allowPath, v.Entry)
		}
		fmt.Fprintf(os.Stderr, "dualvet: %s gate: %d violation(s)\n", name, len(violations))
		os.Exit(1)
	}
	fmt.Printf("dualvet: %s gate clean (%d allowlisted, %d stale)\n", name, len(allow), len(stale))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dualvet:", err)
	os.Exit(2)
}
