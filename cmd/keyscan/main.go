// Command keyscan discovers the minimal keys of a relational instance and
// answers the additional-key-for-instance problem (Gottlob, PODS 2013,
// Proposition 1.2).
//
// Usage:
//
//	keyscan [-known keys.hg] [-incremental] relation.csv
//
// The relation is CSV with an attribute header row. Without -known, all
// minimal keys are printed (attribute names per line). With -known (an
// edge file over attribute names), keyscan decides whether an additional
// minimal key exists and prints one if so. -incremental enumerates the
// keys one duality call at a time, reporting each discovery.
package main

import (
	"flag"
	"fmt"
	"os"

	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
)

func main() {
	knownPath := flag.String("known", "", "edge file of already-known minimal keys (attribute names)")
	incremental := flag.Bool("incremental", false, "enumerate keys via repeated additional-key calls")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: keyscan [-known keys.hg] [-incremental] relation.csv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	rel, err := hgio.ReadRelationCSV(f)
	exitOn(err)

	attrSym := hgio.NewSymbols()
	for i := 0; i < rel.NumAttrs(); i++ {
		attrSym.Intern(rel.AttrName(i))
	}

	switch {
	case *knownPath != "":
		kf, err := os.Open(*knownPath)
		exitOn(err)
		defer kf.Close()
		el, err := hgio.ParseEdges(kf)
		exitOn(err)
		known := hypergraph.New(rel.NumAttrs())
		for _, edge := range el {
			idx := make([]int, len(edge))
			for i, name := range edge {
				j := rel.AttrIndex(name)
				if j < 0 {
					exitOn(fmt.Errorf("unknown attribute %q in %s", name, *knownPath))
				}
				idx[i] = j
			}
			known.AddEdgeElems(idx...)
		}
		res, err := rel.AdditionalKey(known)
		exitOn(err)
		if res.Complete {
			fmt.Println("COMPLETE: no additional minimal key exists")
			return
		}
		fmt.Print("ADDITIONAL KEY: ")
		exitOn(hgio.WriteHypergraph(os.Stdout, single(rel.NumAttrs(), res.NewKey), attrSym))
		os.Exit(1)
	case *incremental:
		known, calls, err := rel.EnumerateKeysIncrementally()
		exitOn(err)
		fmt.Printf("# %d minimal keys in %d duality calls\n", known.M(), calls)
		exitOn(hgio.WriteHypergraph(os.Stdout, known.Canonical(), attrSym))
	default:
		keys := rel.MinimalKeys()
		fmt.Printf("# %d minimal keys of %d-attribute, %d-row relation\n",
			keys.M(), rel.NumAttrs(), rel.NumRows())
		exitOn(hgio.WriteHypergraph(os.Stdout, keys, attrSym))
	}
}

func single(n int, e interface{ Elems() []int }) *hypergraph.Hypergraph {
	h := hypergraph.New(n)
	h.AddEdgeElems(e.Elems()...)
	return h
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "keyscan:", err)
		os.Exit(2)
	}
}
