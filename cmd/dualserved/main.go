// Command dualserved serves the dualspace engine over HTTP/JSON: duality
// decisions with a sharded canonical-fingerprint verdict cache, NDJSON
// batch decision with in-stream dedup (/v1/batch), streaming border mining
// (/v1/mine), streaming minimal transversal enumeration, and the paper's
// three database applications (itemset borders, additional keys, coterie
// non-domination). docs/API.md documents the endpoints.
//
// Usage:
//
//	dualserved [-addr host:port] [-workers n] [-cache n] [-cache-shards n]
//	           [-memo n] [-max-edges n] [-max-edge-verts n] [-max-universe n]
//	           [-max-body bytes] [-stream-max n] [-batch-max-items n]
//	           [-batch-max-bytes n] [-pprof host:port] [-access-log]
//	           [-log-format text|json]
//	           [-queue-depth n] [-queue-wait d] [-retry-after d]
//	           [-decide-timeout d] [-batch-timeout d] [-mine-timeout d]
//	           [-stream-timeout d] [-apps-timeout d] [-max-timeout d]
//	           [-drain-grace d] [-faults spec] [-fault-seed n]
//	           [-self host:port] [-peers a,b,c] [-peer-timeout d]
//	           [-peer-fanout n] [-verdict-log dir] [-vlog-segment-bytes n]
//	           [-vlog-compact-interval d] [-vlog-sync]
//
// The listen address is printed to stdout once the socket is bound (so
// -addr 127.0.0.1:0 works for scripted use). SIGINT/SIGTERM trigger a
// graceful drain: /readyz flips to 503 immediately so load balancers stop
// routing, queued waiters are shed, -drain-grace elapses to let routing
// converge and in-flight streams finish cleanly, then the listener closes.
//
// Resilience (docs/API.md error taxonomy): -queue-depth/-queue-wait bound
// the admission queue (excess is shed with 503 + Retry-After, hinted by
// -retry-after); the -*-timeout flags set per-endpoint compute budgets
// (504 with reason "timeout"; clients may lower their own with
// ?timeout_ms=, capped by -max-timeout). -faults arms the fault-injection
// harness (internal/faultinject spec grammar, e.g.
// "decide:panic:every=7,stream_write:delay=20ms:p=0.25") with a
// deterministic -fault-seed — a chaos-testing mode, never for production.
//
// Cluster mode (docs/CLUSTER.md): -peers lists every replica (including
// this one) and -self names this replica's address as it appears in that
// list; all replicas must agree on the member list. A local cache miss
// whose canonical key hashes to another replica is filled from that
// replica's cache over POST /v1/cluster/verdict (budgeted by
// -peer-timeout, bounded by -peer-fanout concurrent fills, guarded by a
// per-peer circuit breaker) before falling back to local compute.
// -verdict-log makes verdicts durable: every stored verdict is appended
// to a CRC-framed segment log in that directory and replayed into the
// cache on the next start (warm restarts); -vlog-compact-interval
// periodically rewrites the log to its live set.
//
// Observability (docs/OBSERVABILITY.md): GET /metricsz serves the
// Prometheus text exposition; -access-log emits one structured slog record
// per request to stderr (-log-format picks the encoding); -pprof serves
// net/http/pprof on a second, separately bindable listener so profiling
// endpoints are never exposed on the service port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dualspace/internal/cluster"
	"dualspace/internal/faultinject"
	"dualspace/internal/hgio"
	"dualspace/internal/service"
	"dualspace/internal/verdictlog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent decision computations (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 1024, "verdict cache capacity in entries (negative disables)")
	cacheShards := flag.Int("cache-shards", 0, "verdict cache shard count (0 = default, rounded up to a power of two)")
	memo := flag.Int("memo", 0, "per-worker subinstance-memo entries (0 = default, negative disables)")
	maxEdges := flag.Int("max-edges", service.DefaultLimits.MaxEdges, "max edges/rows per input")
	maxEdgeVerts := flag.Int("max-edge-verts", service.DefaultLimits.MaxEdgeVerts, "max vertices per edge")
	maxUniverse := flag.Int("max-universe", service.DefaultLimits.MaxUniverse, "max distinct vertex/item names per request")
	maxBody := flag.Int64("max-body", 4<<20, "max request body bytes")
	streamMax := flag.Int("stream-max", 1<<16, "server-side cap on /v1/transversals limit")
	batchMaxItems := flag.Int("batch-max-items", 4096, "max rows per /v1/batch request")
	batchMaxBytes := flag.Int64("batch-max-bytes", 64<<20, "max /v1/batch request body bytes")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this host:port (empty disables)")
	accessLog := flag.Bool("access-log", false, "log one structured record per request to stderr")
	logFormat := flag.String("log-format", "text", "access-log encoding: text or json")
	queueDepth := flag.Int("queue-depth", 0, "max requests parked waiting for a worker slot (0 = max(16, 4*workers); negative sheds immediately)")
	queueWait := flag.Duration("queue-wait", 0, "max time one request may park before it is shed (0 = 5s)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on shed responses (0 = 1s)")
	decideTimeout := flag.Duration("decide-timeout", 0, "/v1/decide compute budget (0 = none)")
	batchTimeout := flag.Duration("batch-timeout", 0, "/v1/batch whole-drain compute budget (0 = none)")
	mineTimeout := flag.Duration("mine-timeout", 0, "/v1/mine compute budget (0 = none)")
	streamTimeout := flag.Duration("stream-timeout", 0, "/v1/transversals compute budget (0 = none)")
	appsTimeout := flag.Duration("apps-timeout", 0, "/v1/borders,/v1/keys,/v1/coteries compute budget (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on the client ?timeout_ms= override (0 = 60s)")
	drainGrace := flag.Duration("drain-grace", 0, "pause between flipping /readyz to 503 and closing the listener")
	faults := flag.String("faults", "", "arm the fault-injection harness with this spec (chaos testing only)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault triggers")
	self := flag.String("self", "", "this replica's address as listed in -peers (required with -peers)")
	peers := flag.String("peers", "", "comma-separated cluster member addresses, including -self (empty = single node)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-fill peer request budget (0 = 2s)")
	peerFanout := flag.Int("peer-fanout", 0, "max concurrent outbound peer fills (0 = 32)")
	verdictLogDir := flag.String("verdict-log", "", "append verdicts to segment files in this directory and replay them on start (empty disables)")
	vlogSegBytes := flag.Int64("vlog-segment-bytes", 0, "roll verdict-log segments at this size (0 = 4MiB)")
	vlogCompactInterval := flag.Duration("vlog-compact-interval", 0, "rewrite the verdict log to its live set this often (0 = never)")
	vlogSync := flag.Bool("vlog-sync", false, "fsync the verdict log after every append (durable but slow)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dualserved [flags]")
		os.Exit(2)
	}
	var logger *slog.Logger
	if *accessLog {
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			fmt.Fprintf(os.Stderr, "dualserved: bad -log-format %q (want text or json)\n", *logFormat)
			os.Exit(2)
		}
	}

	var peerClient *cluster.Client
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		c, err := cluster.New(cluster.Config{
			Self:               *self,
			Peers:              list,
			Timeout:            *peerTimeout,
			MaxConcurrentFills: *peerFanout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualserved:", err)
			os.Exit(2)
		}
		peerClient = c
		if peerClient != nil {
			fmt.Fprintf(os.Stderr, "dualserved: cluster mode: self=%s peers=%v\n",
				peerClient.Self(), peerClient.PeerAddrs())
		}
	}

	var vlog *verdictlog.Log
	if *verdictLogDir != "" {
		l, err := verdictlog.Open(*verdictLogDir, verdictlog.Options{
			SegmentBytes: *vlogSegBytes,
			Sync:         *vlogSync,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualserved: verdict log:", err)
			os.Exit(2)
		}
		vlog = l
	}

	srv := service.New(service.Config{
		Workers:     *workers,
		CacheSize:   *cache,
		CacheShards: *cacheShards,
		MemoEntries: *memo,
		Limits: hgio.Limits{
			MaxEdges:     *maxEdges,
			MaxEdgeVerts: *maxEdgeVerts,
			MaxUniverse:  *maxUniverse,
			MaxLineBytes: service.DefaultLimits.MaxLineBytes,
		},
		MaxBodyBytes:     *maxBody,
		MaxStreamResults: *streamMax,
		MaxBatchItems:    *batchMaxItems,
		MaxBatchBytes:    *batchMaxBytes,
		Logger:           logger,
		QueueDepth:       *queueDepth,
		QueueWait:        *queueWait,
		RetryAfter:       *retryAfter,
		DecideTimeout:    *decideTimeout,
		BatchTimeout:     *batchTimeout,
		MineTimeout:      *mineTimeout,
		StreamTimeout:    *streamTimeout,
		AppsTimeout:      *appsTimeout,
		MaxTimeout:       *maxTimeout,
		Cluster:          peerClient,
		VerdictLog:       vlog,
	})

	if vlog != nil && *vlogCompactInterval > 0 {
		// Periodic compaction bounds replay time and disk use; a failed
		// compaction is logged and retried at the next tick.
		compactQuit := make(chan struct{})
		defer close(compactQuit)
		go func() {
			t := time.NewTicker(*vlogCompactInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := vlog.Compact(); err != nil {
						fmt.Fprintln(os.Stderr, "dualserved: verdict-log compact:", err)
					}
				case <-compactQuit:
					return
				}
			}
		}()
	}

	if *faults != "" {
		inj, err := faultinject.ParseSpec(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualserved:", err)
			os.Exit(2)
		}
		faultinject.Enable(inj)
		fmt.Fprintf(os.Stderr, "dualserved: FAULT INJECTION ARMED (%s; seed %d) — chaos-testing mode\n", *faults, *faultSeed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dualserved:", err)
		os.Exit(2)
	}
	fmt.Printf("dualserved listening on %s\n", ln.Addr())

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the DefaultServeMux
		// registrations are ignored, and the service port never exposes
		// profiling handlers.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualserved: pprof:", err)
			os.Exit(2)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("dualserved pprof on %s\n", pln.Addr())
		go func() {
			ps := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "dualserved: pprof:", err)
			}
		}()
	}

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dualserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Drain sequence: flip /readyz to 503 and fail queued waiters fast,
	// give load balancers -drain-grace to stop routing here (cache hits and
	// in-flight work keep being served throughout), then stop accepting and
	// wait for in-flight requests under the shutdown deadline.
	srv.BeginDrain()
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// In-flight streams past the drain deadline are cut off.
		_ = hs.Close()
	}
	// Stop the async verdict-log writer (flushing queued appends), then
	// close the log file itself — strictly after Close so no append races
	// a closed file.
	srv.Close()
	if vlog != nil {
		if err := vlog.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dualserved: verdict log:", err)
		}
	}
	fmt.Println("dualserved: drained, bye")
}
