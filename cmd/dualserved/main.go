// Command dualserved serves the dualspace engine over HTTP/JSON: duality
// decisions with a sharded canonical-fingerprint verdict cache, NDJSON
// batch decision with in-stream dedup (/v1/batch), streaming border mining
// (/v1/mine), streaming minimal transversal enumeration, and the paper's
// three database applications (itemset borders, additional keys, coterie
// non-domination). docs/API.md documents the endpoints.
//
// Usage:
//
//	dualserved [-addr host:port] [-workers n] [-cache n] [-cache-shards n]
//	           [-memo n] [-max-edges n] [-max-edge-verts n] [-max-universe n]
//	           [-max-body bytes] [-stream-max n] [-batch-max-items n]
//	           [-batch-max-bytes n] [-pprof host:port] [-access-log]
//	           [-log-format text|json]
//
// The listen address is printed to stdout once the socket is bound (so
// -addr 127.0.0.1:0 works for scripted use), and SIGINT/SIGTERM trigger a
// graceful drain.
//
// Observability (docs/OBSERVABILITY.md): GET /metricsz serves the
// Prometheus text exposition; -access-log emits one structured slog record
// per request to stderr (-log-format picks the encoding); -pprof serves
// net/http/pprof on a second, separately bindable listener so profiling
// endpoints are never exposed on the service port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualspace/internal/hgio"
	"dualspace/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent decision computations (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 1024, "verdict cache capacity in entries (negative disables)")
	cacheShards := flag.Int("cache-shards", 0, "verdict cache shard count (0 = default, rounded up to a power of two)")
	memo := flag.Int("memo", 0, "per-worker subinstance-memo entries (0 = default, negative disables)")
	maxEdges := flag.Int("max-edges", service.DefaultLimits.MaxEdges, "max edges/rows per input")
	maxEdgeVerts := flag.Int("max-edge-verts", service.DefaultLimits.MaxEdgeVerts, "max vertices per edge")
	maxUniverse := flag.Int("max-universe", service.DefaultLimits.MaxUniverse, "max distinct vertex/item names per request")
	maxBody := flag.Int64("max-body", 4<<20, "max request body bytes")
	streamMax := flag.Int("stream-max", 1<<16, "server-side cap on /v1/transversals limit")
	batchMaxItems := flag.Int("batch-max-items", 4096, "max rows per /v1/batch request")
	batchMaxBytes := flag.Int64("batch-max-bytes", 64<<20, "max /v1/batch request body bytes")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this host:port (empty disables)")
	accessLog := flag.Bool("access-log", false, "log one structured record per request to stderr")
	logFormat := flag.String("log-format", "text", "access-log encoding: text or json")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dualserved [flags]")
		os.Exit(2)
	}
	var logger *slog.Logger
	if *accessLog {
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			fmt.Fprintf(os.Stderr, "dualserved: bad -log-format %q (want text or json)\n", *logFormat)
			os.Exit(2)
		}
	}

	srv := service.New(service.Config{
		Workers:     *workers,
		CacheSize:   *cache,
		CacheShards: *cacheShards,
		MemoEntries: *memo,
		Limits: hgio.Limits{
			MaxEdges:     *maxEdges,
			MaxEdgeVerts: *maxEdgeVerts,
			MaxUniverse:  *maxUniverse,
			MaxLineBytes: service.DefaultLimits.MaxLineBytes,
		},
		MaxBodyBytes:     *maxBody,
		MaxStreamResults: *streamMax,
		MaxBatchItems:    *batchMaxItems,
		MaxBatchBytes:    *batchMaxBytes,
		Logger:           logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dualserved:", err)
		os.Exit(2)
	}
	fmt.Printf("dualserved listening on %s\n", ln.Addr())

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the DefaultServeMux
		// registrations are ignored, and the service port never exposes
		// profiling handlers.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dualserved: pprof:", err)
			os.Exit(2)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("dualserved pprof on %s\n", pln.Addr())
		go func() {
			ps := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "dualserved: pprof:", err)
			}
		}()
	}

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dualserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// In-flight streams past the drain deadline are cut off.
		_ = hs.Close()
	}
	fmt.Println("dualserved: drained, bye")
}
