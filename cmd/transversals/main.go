// Command transversals enumerates the minimal transversals tr(H) of a
// simple hypergraph.
//
// Usage:
//
//	transversals [-method dfs|berge|oracle] [-count] [-limit n] H.hg
//
// Output: one minimal transversal per line in the same edge format. The
// oracle method enumerates through repeated duality-witness extraction,
// demonstrating the incremental pattern of Gottlob (PODS 2013), §1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dualspace/internal/bitset"
	"dualspace/internal/engine"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

func main() {
	method := flag.String("method", "dfs", "enumeration method: dfs, berge, oracle")
	countOnly := flag.Bool("count", false, "print only the number of minimal transversals")
	limit := flag.Int("limit", 0, "stop after this many transversals (0 = all; dfs only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: transversals [-method dfs|berge|oracle] H.hg")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	hs, sy, err := hgio.ReadHypergraphs(f)
	exitOn(err)
	h := hs[0].Minimize()

	// Counting needs no materialization: stream the DFS enumerator and keep
	// only the integer.
	if *countOnly && *method == "dfs" && *limit <= 0 {
		fmt.Println(transversal.Count(h))
		return
	}

	var result *hypergraph.Hypergraph
	switch *method {
	case "dfs":
		if *limit > 0 {
			out := hypergraph.New(h.N())
			transversal.Enumerate(h, func(s bitset.Set) bool {
				out.AddEdge(s)
				return out.M() < *limit
			})
			result = out
		} else {
			result = transversal.AsHypergraph(h)
		}
	case "berge":
		result = transversal.Berge(h)
	case "oracle":
		// One pinned engine session serves the |tr(h)| + 1 oracle decisions.
		sess := engine.NewSession(nil)
		got, err := transversal.ViaOracle(h, sess.NewTransversalOracle(context.Background()))
		exitOn(err)
		result = got.Canonical()
	default:
		exitOn(fmt.Errorf("unknown method %q", *method))
	}

	if *countOnly {
		fmt.Println(result.M())
		return
	}
	exitOn(hgio.WriteHypergraph(os.Stdout, result, sy))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "transversals:", err)
		os.Exit(2)
	}
}
