// Command benchdiff compares two dualbench -json reports and fails when the
// newer one regresses: the CI bench-regression smoke job runs the suite and
// diffs it against the checked-in BENCH_*.json of the previous PR, so a
// hot-path regression fails the build instead of landing silently.
//
// Usage:
//
//	benchdiff [-tolerance pct] [-floor ns] old.json new.json
//
// Rows are matched by experiment id, engine name and family name, each
// qualified by the GOMAXPROCS width the row ran under (per-row when
// recorded, the report's otherwise) — multi-CPU rows never gate against
// single-CPU history. A row
// regresses when new_ns > old_ns × (1 + tolerance/100) AND new_ns exceeds
// the floor — sub-floor rows are treated as noise, since micro-rows on
// shared CI runners jitter far more than the long rows the trajectory
// actually tracks. Rows present on only one side are reported but never
// fatal (experiments come and go across PRs). Exit status: 0 ok, 1
// regression, 2 usage/IO.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	ID     string `json:"id"`
	Engine string `json:"engine"`
	Family string `json:"family"`
	// GOMAXPROCS is the per-row scheduler width (family rows since the
	// -procs flag); 0 on older rows, which fall back to the report level.
	GOMAXPROCS int   `json:"gomaxprocs"`
	NsOp       int64 `json:"ns_op"`
}

type report struct {
	GoVersion   string `json:"go_version"`
	GitRevision string `json:"git_revision"`
	// GOMAXPROCS is the report-wide scheduler width, the fallback for rows
	// recorded before per-row widths existed; 0 (ancient reports) means 1.
	GOMAXPROCS  int   `json:"gomaxprocs"`
	Experiments []row `json:"experiments"`
	Engines     []row `json:"engines"`
	Families    []row `json:"families"`
}

// rows flattens a report into name → ns_op. Every key carries a @p<procs>
// suffix — the row's own GOMAXPROCS when present, the report's otherwise —
// so a multi-CPU row is never compared against single-CPU history: the
// non-matching side shows up as informational only-in-old/only-in-new
// instead of a spurious regression or improvement.
func (r *report) rows() map[string]int64 {
	fallback := r.GOMAXPROCS
	if fallback <= 0 {
		fallback = 1
	}
	key := func(prefix, name string, procs int) string {
		if procs <= 0 {
			procs = fallback
		}
		return fmt.Sprintf("%s/%s@p%d", prefix, name, procs)
	}
	out := make(map[string]int64)
	for _, e := range r.Experiments {
		out[key("experiment", e.ID, e.GOMAXPROCS)] = e.NsOp
	}
	for _, e := range r.Engines {
		out[key("engine", e.Engine, e.GOMAXPROCS)] = e.NsOp
	}
	for _, e := range r.Families {
		out[key("family", e.Family, e.GOMAXPROCS)] = e.NsOp
	}
	return out
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 25, "allowed ns/op growth in percent before a row counts as a regression")
	floor := flag.Int64("floor", 1_000_000, "ignore rows whose new ns/op is below this (noise floor)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance pct] [-floor ns] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s)   new: %s (%s)   tolerance %.0f%%, floor %dns\n",
		flag.Arg(0), oldRep.GitRevision, flag.Arg(1), newRep.GitRevision, *tolerance, *floor)

	oldRows, newRows := oldRep.rows(), newRep.rows()
	limit := 1 + *tolerance/100
	regressions := 0
	for name, oldNs := range oldRows {
		newNs, ok := newRows[name]
		if !ok {
			fmt.Printf("  ~ %-28s only in old\n", name)
			continue
		}
		ratio := float64(newNs) / float64(oldNs)
		switch {
		case oldNs > 0 && ratio > limit && newNs > *floor:
			regressions++
			fmt.Printf("  ✗ %-28s %12d → %12d ns/op (%.2f×) REGRESSION\n", name, oldNs, newNs, ratio)
		case oldNs > 0 && ratio < 1/limit:
			fmt.Printf("  ✓ %-28s %12d → %12d ns/op (%.2f×) improved\n", name, oldNs, newNs, ratio)
		default:
			fmt.Printf("    %-28s %12d → %12d ns/op (%.2f×)\n", name, oldNs, newNs, ratio)
		}
	}
	for name := range newRows {
		if _, ok := oldRows[name]; !ok {
			fmt.Printf("  + %-28s only in new\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d row(s) regressed beyond %.0f%%\n", regressions, *tolerance)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
