// Command hggen generates DUAL problem instances from the standard
// families (see internal/gen) in the edge-file format.
//
// Usage:
//
//	hggen -family matching -k 3 -out pair        # writes pair.g.hg, pair.h.hg
//	hggen -family threshold -n 6 -k 3 -out t63
//	hggen -family majority -n 5 -out maj5        # self-dual: h = g
//	hggen -family random -n 8 -m 5 -seed 7 -out r8
//	hggen -family selfdual -k 2 -out sd          # self-dualized matching
//
// Add -drop i to remove the i-th edge of H (a canonical non-dual
// perturbation).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dualspace/internal/gen"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
)

func main() {
	family := flag.String("family", "matching", "matching, threshold, majority, random, selfdual")
	k := flag.Int("k", 3, "matching size / threshold k")
	n := flag.Int("n", 6, "universe size (threshold, majority, random)")
	m := flag.Int("m", 5, "edge count (random)")
	p := flag.Float64("p", 0.35, "vertex density (random)")
	seed := flag.Int64("seed", 1, "random seed")
	drop := flag.Int("drop", -1, "drop this edge index from H (perturbation)")
	out := flag.String("out", "pair", "output file prefix")
	flag.Parse()

	var g, h *hypergraph.Hypergraph
	switch *family {
	case "matching":
		g, h = gen.Matching(*k), gen.MatchingDual(*k)
	case "threshold":
		g, h = gen.Threshold(*n, *k), gen.ThresholdDual(*n, *k)
	case "majority":
		g = gen.Majority(*n)
		h = g
	case "random":
		r := rand.New(rand.NewSource(*seed))
		g, h = gen.RandomDualPair(r, *n, *m, *p)
	case "selfdual":
		sd := gen.SelfDualize(gen.Matching(*k), gen.MatchingDual(*k))
		g, h = sd, sd
	default:
		exitOn(fmt.Errorf("unknown family %q", *family))
	}
	if *drop >= 0 {
		if *drop >= h.M() {
			exitOn(fmt.Errorf("drop index %d out of range (|H|=%d)", *drop, h.M()))
		}
		h = gen.DropEdge(h, *drop)
	}

	exitOn(write(*out+".g.hg", g))
	exitOn(write(*out+".h.hg", h))
	fmt.Printf("wrote %s.g.hg (%d edges) and %s.h.hg (%d edges) over %d vertices\n",
		*out, g.M(), *out, h.M(), g.N())
}

func write(path string, h *hypergraph.Hypergraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return hgio.WriteHypergraph(f, h, nil)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hggen:", err)
		os.Exit(2)
	}
}
