// Package dualspace is a Go implementation of the algorithms in
//
//	Georg Gottlob. "Deciding Monotone Duality and Identifying Frequent
//	Itemsets in Quadratic Logspace." PODS 2013.
//
// It provides, through one façade:
//
//   - the monotone duality problem DUAL on simple hypergraphs and
//     irredundant monotone DNFs, decided by the Boros–Makino decomposition
//     with structured non-duality witnesses (internal/core);
//   - the paper's quadratic-logspace machinery: path-descriptor
//     recomputation (pathnode), full tree listing (decompose), witness
//     extraction and O(log²n)-bit fail certificates, runnable in three
//     space regimes with measured workspace (internal/logspace,
//     internal/space);
//   - minimal transversal enumeration by Berge multiplication, DFS with
//     critical-edge pruning, and duality-oracle iteration
//     (internal/transversal);
//   - the Fredman–Khachiyan baselines (internal/fkdual);
//   - the paper's three database applications: maximal-frequent /
//     minimal-infrequent itemset borders (Proposition 1.1), additional keys
//     of relational instances (Proposition 1.2), and coterie
//     non-domination (Proposition 1.3).
//
// Duality decisions route through the pluggable engine layer
// (internal/engine): five procedures behind one interface — the
// decomposition serial and parallel, the logspace replay, FK-A and FK-B —
// selected explicitly (ExplainWith, EngineByName) or by the default
// portfolio, which dispatches on instance features and can race two
// engines; NewEngineSession pins scratch so repeated decisions from one
// holder are allocation-free across calls. Long-running entry points have
// Context variants (ExplainContext, ExplainParallelContext,
// EnumerateMinimalTransversalsContext) that abort within one
// decomposition-tree node of cancellation. The same machinery is served
// over HTTP by cmd/dualserved (internal/service), whose wire protocol —
// including the engine-keyed canonical-Fingerprint verdict cache and the
// streaming enumeration endpoint — is documented in docs/API.md.
//
// # Conventions
//
// Hypergraphs live over a dense vertex universe [0, n); tr(∅) = {∅} and
// tr({∅}) = ∅, matching the DNF constants ⊥ and ⊤. See DESIGN.md for the
// full design and EXPERIMENTS.md for the reproduction experiments.
package dualspace

import (
	"context"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/coterie"
	"dualspace/internal/dnf"
	"dualspace/internal/engine"
	"dualspace/internal/fkdual"
	"dualspace/internal/hypergraph"
	"dualspace/internal/itemsets"
	"dualspace/internal/keys"
	"dualspace/internal/logspace"
	"dualspace/internal/space"
	"dualspace/internal/transversal"
)

// Core types, re-exported for API users.
type (
	// Set is a fixed-universe vertex set.
	Set = bitset.Set
	// Hypergraph is a finite family of hyperedges over [0, n).
	Hypergraph = hypergraph.Hypergraph
	// Result is the verdict of a duality decision, with reason and witness.
	Result = core.Result
	// Reason classifies a non-duality verdict.
	Reason = core.Reason
	// Stats carries decomposition-tree measurements.
	Stats = core.Stats
	// DNF is an irredundant monotone formula in disjunctive normal form.
	DNF = dnf.DNF
	// Dataset is a Boolean-valued relation for itemset mining.
	Dataset = itemsets.Dataset
	// Borders holds the IS+ / IS− borders of a mining instance.
	Borders = itemsets.Borders
	// IdentifyResult is the outcome of MaxFreq-MinInfreq-Identification.
	IdentifyResult = itemsets.IdentifyResult
	// Relation is an explicit relational instance for key discovery.
	Relation = keys.Relation
	// Coterie is a validated quorum system.
	Coterie = coterie.Coterie
	// SpaceMeter measures retained workspace bits.
	SpaceMeter = space.Meter
	// SpaceMode selects the execution regime of the logspace machinery.
	SpaceMode = logspace.Mode
	// PathAttr is a decomposition-tree node attribute tuple.
	PathAttr = logspace.Attr
	// FKResult is the outcome of a Fredman–Khachiyan decision.
	FKResult = fkdual.Result
	// Engine is a pluggable duality decision procedure (see internal/engine):
	// the paper's decomposition (serial and parallel), the logspace replay
	// walker, the Fredman–Khachiyan baselines, or a feature-dispatching
	// portfolio over them.
	Engine = engine.Engine
	// EngineSession pins per-engine scratch so repeated decisions from one
	// long-lived holder are allocation-free across calls. Not safe for
	// concurrent use; results are valid until the session's next call.
	EngineSession = engine.Session
	// PortfolioConfig parameterizes NewPortfolioEngine.
	PortfolioConfig = engine.PortfolioConfig
)

// Non-duality reasons (see core.Reason).
const (
	ReasonDual                 = core.ReasonDual
	ReasonConstantMismatch     = core.ReasonConstantMismatch
	ReasonNotCrossIntersecting = core.ReasonNotCrossIntersecting
	ReasonHEdgeNotMinimal      = core.ReasonHEdgeNotMinimal
	ReasonGEdgeNotMinimal      = core.ReasonGEdgeNotMinimal
	ReasonNewTransversal       = core.ReasonNewTransversal
)

// Space regimes (see logspace.Mode).
const (
	// ModeReplay stores full node sets per level: fast, polynomial space.
	ModeReplay = logspace.ModeReplay
	// ModeStrict retains O(log n) bits per level: the paper's
	// DSPACE[log²n] regime.
	ModeStrict = logspace.ModeStrict
	// ModePipelined recomputes everything per query: the literal pipelined
	// construction of Lemma 3.1 (slow; tiny instances only).
	ModePipelined = logspace.ModePipelined
)

// Fingerprint is a canonical hypergraph digest (see
// (*Hypergraph).Fingerprint): equal exactly for equal edge families over
// the same universe, ignoring edge order and duplicates. The HTTP service
// keys its verdict cache on it.
type Fingerprint = hypergraph.Fingerprint

// NewHypergraph returns an empty hypergraph over the universe [0, n).
func NewHypergraph(n int) *Hypergraph { return hypergraph.New(n) }

// HypergraphFromEdges builds a hypergraph from explicit vertex lists.
func HypergraphFromEdges(n int, edges [][]int) (*Hypergraph, error) {
	return hypergraph.FromEdges(n, edges)
}

// NewSet returns the set over [0, n) containing the given elements.
func NewSet(n int, elems ...int) Set { return bitset.FromSlice(n, elems) }

// IsDual reports whether h = tr(g), i.e. whether the monotone DNFs of g
// and h are mutually dual. Both hypergraphs must be simple and share a
// universe. The decision runs on the default engine portfolio, which
// dispatches per instance shape (see Options.Engine to choose explicitly).
func IsDual(g, h *Hypergraph) (bool, error) {
	res, err := Explain(g, h)
	if err != nil {
		return false, err
	}
	return res.Dual, nil
}

// Options configures an explicit duality decision.
type Options struct {
	// Engine selects the decision procedure; nil uses the default portfolio.
	// Engines come from EngineByName, NewPortfolioEngine, NewParallelEngine,
	// or a long-lived NewEngineSession.
	Engine Engine
}

// Explain decides duality like IsDual and returns the full verdict: the
// reason for a negative answer, the offending edges, and — when the
// tree/recursion stage ran — a new-transversal witness (plus the fail
// leaf's path descriptor for engines with the FailPath capability).
func Explain(g, h *Hypergraph) (*Result, error) {
	return ExplainWith(context.Background(), g, h, Options{})
}

// ExplainContext is Explain with cancellation: the decision polls ctx at
// every tree-node (or recursion-step) boundary, so cancelling aborts it
// within one boundary and returns ctx's error.
func ExplainContext(ctx context.Context, g, h *Hypergraph) (*Result, error) {
	return ExplainWith(ctx, g, h, Options{})
}

// ExplainWith is ExplainContext with an explicit engine choice. All engines
// agree on verdicts and classify negative answers with the same Reason
// taxonomy; they differ in search strategy, parallelism, and whether a
// FailPath accompanies new-transversal witnesses.
func ExplainWith(ctx context.Context, g, h *Hypergraph, opts Options) (*Result, error) {
	eng := opts.Engine
	if eng == nil {
		eng = engine.Default()
	}
	return eng.Decide(ctx, g, h)
}

// EngineByName resolves an engine registry name — one of EngineNames() —
// with "" meaning the default portfolio.
func EngineByName(name string) (Engine, error) { return engine.ByName(name) }

// EngineNames lists the available engine names, default first.
func EngineNames() []string { return engine.Names() }

// NewPortfolioEngine returns a feature-dispatching portfolio engine; the
// zero config is the default dispatch, and Race hedges the heuristic by
// running the selected engine against a contrasting one.
func NewPortfolioEngine(cfg PortfolioConfig) Engine { return engine.NewPortfolio(cfg) }

// NewParallelEngine returns the parallel decomposition engine with the given
// goroutine bound (0 = GOMAXPROCS).
func NewParallelEngine(workers int) Engine { return engine.NewCoreParallel(workers) }

// NewEngineSession returns a session pinning eng's scratch (nil = default
// portfolio) for allocation-free repeated decisions by one holder.
func NewEngineSession(eng Engine) *EngineSession { return engine.NewSession(eng) }

// IsSelfDual reports whether h = tr(h) (e.g. coterie non-domination,
// majority functions).
func IsSelfDual(h *Hypergraph) (bool, error) { return IsDual(h, h) }

// IdentifyBordersWith is IdentifyBorders with cancellation and an explicit
// engine (see Options.Engine).
func IdentifyBordersWith(ctx context.Context, d *Dataset, z int, g, h *Hypergraph, opts Options) (*IdentifyResult, error) {
	eng := opts.Engine
	if eng == nil {
		eng = engine.Default()
	}
	return itemsets.IdentifyWith(ctx, d, z, g, h, eng)
}

// ExplainParallel is Explain with the decomposition tree searched by up to
// the given number of goroutines (0 = GOMAXPROCS) — the practical
// counterpart of the parallel origin of the Boros–Makino method. The
// verdict matches Explain; on non-dual instances the witness may name a
// different (equally valid) fail leaf.
func ExplainParallel(g, h *Hypergraph, workers int) (*Result, error) {
	return ExplainParallelContext(context.Background(), g, h, workers)
}

// ExplainParallelContext is ExplainParallel with cancellation (see
// ExplainContext); every worker polls ctx at every node it visits.
func ExplainParallelContext(ctx context.Context, g, h *Hypergraph, workers int) (*Result, error) {
	return ExplainWith(ctx, g, h, Options{Engine: engine.NewCoreParallel(workers)})
}

// IsAcyclic reports α-acyclicity of a hypergraph (GYO reduction) — the
// structural class for which DUAL is known to be tractable (paper §6).
func IsAcyclic(h *Hypergraph) bool { return h.IsAcyclic() }

// Degeneracy returns the min-degree-elimination degeneracy of a
// hypergraph, the other bounded parameter the paper's §6 names.
func Degeneracy(h *Hypergraph) int { return h.Degeneracy() }

// ArmstrongRelation constructs a relation whose minimal keys are exactly
// the given antichain — the Armstrong-relation problem the paper lists
// among the DUAL-equivalent database problems (§1).
func ArmstrongRelation(k *Hypergraph, attrs []string) (*Relation, error) {
	return keys.ArmstrongRelation(k, attrs)
}

// NewTransversal returns a transversal of g containing no edge of h, or
// ok = false when none exists (tr(g) ⊆ h). This is the witness operation
// the incremental border/key algorithms are built on; the result is not
// necessarily minimal (see MinimalizeTransversal). It runs the raw tree
// stage of the default engine.
func NewTransversal(g, h *Hypergraph) (w Set, ok bool, err error) {
	res, err := engine.TrSubset(context.Background(), engine.Default(), g, h)
	if err != nil {
		return Set{}, false, err
	}
	if res.Dual {
		return Set{}, false, nil
	}
	return res.Witness, true, nil
}

// MinimalizeTransversal shrinks a transversal of h to a minimal one.
func MinimalizeTransversal(h *Hypergraph, t Set) Set { return h.MinimalizeTransversal(t) }

// MinimalTransversals computes tr(h) by DFS enumeration.
func MinimalTransversals(h *Hypergraph) *Hypergraph { return transversal.AsHypergraph(h) }

// EnumerateMinimalTransversals streams tr(h), stopping early when yield
// returns false or an error; a yield error terminates the enumeration and
// is returned verbatim, so streaming consumers (e.g. the HTTP service's
// /v1/transversals endpoint, see docs/API.md) can surface mid-stream
// failures instead of silently truncating. A nil return means the stream
// completed or was stopped cleanly by yield.
func EnumerateMinimalTransversals(h *Hypergraph, yield func(Set) (bool, error)) error {
	return transversal.EnumerateContext(context.Background(), h, yield)
}

// EnumerateMinimalTransversalsContext is EnumerateMinimalTransversals with
// cancellation: a cancelled ctx aborts the enumeration within one
// search-node boundary and returns ctx's error.
func EnumerateMinimalTransversalsContext(ctx context.Context, h *Hypergraph, yield func(Set) (bool, error)) error {
	return transversal.EnumerateContext(ctx, h, yield)
}

// MinimalTransversalsBerge computes tr(h) by Berge multiplication (the
// classical baseline).
func MinimalTransversalsBerge(h *Hypergraph) *Hypergraph { return transversal.Berge(h) }

// FKDecideA tests duality with Fredman–Khachiyan Algorithm A, returning the
// algorithm's native result (assignment-style witness, recursion counters).
// This is raw baseline access for the reproduction experiments; decision
// paths that want FK semantics under the uniform Result vocabulary should
// use ExplainWith with the "fk-a" engine instead.
func FKDecideA(g, h *Hypergraph) (*FKResult, error) { return fkdual.DecideA(g, h) }

// FKDecideB tests duality with the Algorithm-B-inspired variant (see
// FKDecideA for the engine-layer alternative).
func FKDecideB(g, h *Hypergraph) (*FKResult, error) { return fkdual.DecideB(g, h) }

// ParseDNF parses an irredundant monotone DNF ("a b + b c"; "0"/"1" for
// the constants).
func ParseDNF(s string) (*DNF, error) { return dnf.Parse(s) }

// AreDualDNF reports whether two monotone DNFs are mutually dual, aligning
// their variable universes first.
func AreDualDNF(f, g *DNF) (bool, error) {
	fh, gh, _ := dnf.Align(f, g)
	return IsDual(fh.Minimize(), gh.Minimize())
}

// DualDNF computes the dual formula f^d(x) = ¬f(¬x) as an irredundant
// monotone DNF.
func DualDNF(f *DNF) *DNF { return f.Dual() }

// PathNode recovers the attributes of the T(g,h) node addressed by the
// path descriptor pi (ok = false for "wrongpath"), in the given space
// regime with optional metering — the paper's pathnode procedure.
func PathNode(g, h *Hypergraph, pi []int, mode SpaceMode, meter *SpaceMeter) (PathAttr, bool, error) {
	return logspace.PathNode(g, h, pi, logspace.Options{Mode: mode, Meter: meter})
}

// FailCertificate searches T(g,h) for a fail leaf and returns its path
// descriptor (the O(log²n)-bit certificate of Theorem 5.1) and witness;
// found = false when tr(g) ⊆ h.
func FailCertificate(g, h *Hypergraph, mode SpaceMode, meter *SpaceMeter) (pi []int, witness Set, found bool, err error) {
	return logspace.FindFailPath(g, h, logspace.Options{Mode: mode, Meter: meter})
}

// VerifyCertificate checks a fail-path certificate (Lemma 5.1's checking
// procedure).
func VerifyCertificate(g, h *Hypergraph, pi []int, mode SpaceMode, meter *SpaceMeter) (bool, PathAttr, error) {
	return logspace.VerifyFailPath(g, h, pi, logspace.Options{Mode: mode, Meter: meter})
}

// NewSpaceMeter returns a fresh workspace meter.
func NewSpaceMeter() *SpaceMeter { return space.NewMeter() }

// NewDataset returns an empty transaction database over nItems items.
func NewDataset(nItems int) *Dataset { return itemsets.NewDataset(nItems) }

// ComputeBorders computes IS+(M, z) and IS−(M, z) by the incremental
// dualize-and-advance algorithm driven by the duality engine.
func ComputeBorders(d *Dataset, z int) (*Borders, error) { return itemsets.ComputeBorders(d, z) }

// IdentifyBorders solves MaxFreq-MinInfreq-Identification (Proposition
// 1.1): are the claimed families g ⊆ IS− and h ⊆ IS+ complete?
func IdentifyBorders(d *Dataset, z int, g, h *Hypergraph) (*IdentifyResult, error) {
	return itemsets.Identify(d, z, g, h)
}

// NewRelation returns an empty relational instance with the given
// attribute names.
func NewRelation(attrs []string) (*Relation, error) { return keys.NewRelation(attrs) }

// MinimalKeys enumerates all minimal keys of a relational instance.
func MinimalKeys(r *Relation) *Hypergraph { return r.MinimalKeys() }

// AdditionalKey decides the additional-key-for-instance problem
// (Proposition 1.2) and returns a concrete new minimal key when one
// exists.
func AdditionalKey(r *Relation, known *Hypergraph) (*keys.AdditionalKeyResult, error) {
	return r.AdditionalKey(known)
}

// NewCoterie validates a quorum hypergraph as a coterie.
func NewCoterie(h *Hypergraph) (*Coterie, error) { return coterie.New(h) }

// IsNonDominated decides coterie non-domination via self-duality
// (Proposition 1.3).
func IsNonDominated(c *Coterie) (bool, error) { return c.IsNonDominated() }
