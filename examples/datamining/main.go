// Datamining: maximal frequent and minimal infrequent itemsets through
// hypergraph duality (Gottlob, PODS 2013, Proposition 1.1).
//
// A small market-basket database is mined for both borders of the frequent
// itemset lattice with the incremental dualize-and-advance algorithm, then
// the MaxFreq-MinInfreq-Identification problem is demonstrated: complete
// borders verify, incomplete ones are rejected with a concrete missing
// itemset.
//
// Run with: go run ./examples/datamining
package main

import (
	"fmt"
	"log"
	"strings"

	"dualspace"
)

var items = []string{"milk", "bread", "eggs", "beer", "chips", "salsa"}

func name(s dualspace.Set) string {
	var parts []string
	s.ForEach(func(i int) bool { parts = append(parts, items[i]); return true })
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func family(h *dualspace.Hypergraph) string {
	var parts []string
	for _, e := range h.Canonical().Edges() {
		parts = append(parts, name(e))
	}
	return strings.Join(parts, "  ")
}

func main() {
	// 12 baskets over 6 items.
	baskets := [][]int{
		{0, 1},       // milk bread
		{0, 1, 2},    // milk bread eggs
		{0, 1},       // milk bread
		{0, 2},       // milk eggs
		{1, 2},       // bread eggs
		{3, 4},       // beer chips
		{3, 4, 5},    // beer chips salsa
		{3, 4},       // beer chips
		{4, 5},       // chips salsa
		{0, 1, 3},    // milk bread beer
		{0, 3, 4},    // milk beer chips
		{1, 2, 4, 5}, // bread eggs chips salsa
	}
	d := dualspace.NewDataset(len(items))
	for _, b := range baskets {
		d.AddRow(b...)
	}
	z := 2 // frequent ⟺ contained in MORE than 2 baskets

	borders, err := dualspace.ComputeBorders(d, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d baskets, %d items, threshold z=%d (frequent ⟺ support > %d)\n\n",
		d.NumRows(), d.NumItems(), z, z)
	fmt.Println("maximal frequent itemsets  IS+ =", family(borders.MaxFrequent))
	fmt.Println("minimal infrequent itemsets IS− =", family(borders.MinInfrequent))
	fmt.Printf("duality-engine calls: %d (one per border element + final check)\n\n", borders.DualityChecks)

	// Identification (Proposition 1.1): the complete borders verify...
	res, err := dualspace.IdentifyBorders(d, z, borders.MinInfrequent, borders.MaxFrequent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identification of complete borders:", verdict(res))

	// ...and removing one maximal frequent itemset is detected, with the
	// duality engine producing a concrete missing border element.
	incomplete := dualspace.NewHypergraph(d.NumItems())
	for i := 1; i < borders.MaxFrequent.M(); i++ {
		incomplete.AddEdge(borders.MaxFrequent.Edge(i))
	}
	fmt.Printf("\nremoving %s from the IS+ claim...\n", name(borders.MaxFrequent.Edge(0)))
	res, err = dualspace.IdentifyBorders(d, z, borders.MinInfrequent, incomplete)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identification of tampered borders:", verdict(res))
}

func verdict(res *dualspace.IdentifyResult) string {
	if res.Complete {
		return "COMPLETE — no additional maximal frequent or minimal infrequent itemset exists"
	}
	switch {
	case res.NewMaxFrequent != nil:
		return "INCOMPLETE — new maximal frequent itemset found: " + name(*res.NewMaxFrequent)
	case res.NewMinInfrequent != nil:
		return "INCOMPLETE — new minimal infrequent itemset found: " + name(*res.NewMinInfrequent)
	default:
		return "claims invalid"
	}
}
