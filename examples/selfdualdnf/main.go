// Selfdualdnf: monotone DNF duality, self-duality and the classical
// self-dualization reduction.
//
// The DUAL problem is often stated for formulas: two irredundant monotone
// DNFs f and g are dual when f(x) ≡ ¬g(¬x). This example dualizes
// formulas, tests mutual duality, and demonstrates the textbook reduction
// of DUAL to SELF-DUAL used throughout the literature: (f, g) is a dual
// pair iff  h = x·y ∨ x·f ∨ y·g  is self-dual.
//
// Run with: go run ./examples/selfdualdnf
package main

import (
	"fmt"
	"log"

	"dualspace"
	"dualspace/internal/dnf"
	"dualspace/internal/gen"
)

func main() {
	// Dualization.
	for _, src := range []string{"a b", "a + b", "a b + b c + a c", "a b + c d"} {
		f, err := dualspace.ParseDNF(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dual(%-17q) = %q\n", src, dualspace.DualDNF(f).String())
	}

	// Self-duality: the majority function is the classical self-dual
	// example.
	maj, _ := dualspace.ParseDNF("a b + b c + a c")
	selfDual, err := dualspace.AreDualDNF(maj, maj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmajority %q self-dual: %v\n", maj, selfDual)

	// Self-dualization: lift a dual pair (f, g) to one self-dual formula.
	f, _ := dualspace.ParseDNF("p q + r s")
	g := dualspace.DualDNF(f)
	fh, gh, names := dnf.Align(f, g)
	lifted := gen.SelfDualize(fh, gh)
	liftedNames := append(names, "x", "y")
	hDNF, err := dnf.FromHypergraph(lifted, liftedNames)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := dualspace.IsSelfDual(lifted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nf = %q, g = dual(f) = %q\n", f, g)
	fmt.Printf("self-dualization  h = %q\n", hDNF)
	fmt.Println("h self-dual:", ok)

	// And the reduction is faithful: lifting a NON-dual pair is not
	// self-dual.
	notDual, _ := dualspace.ParseDNF("p r + q s") // not the dual of f
	fh2, gh2, _ := dnf.Align(f, notDual)
	bad := gen.SelfDualize(fh2, gh2)
	ok, err = dualspace.IsSelfDual(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lifting a non-dual pair stays non-self-dual:", !ok)
}
