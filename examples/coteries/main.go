// Coteries: recognizing non-dominated quorum systems by self-duality
// (Gottlob, PODS 2013, Proposition 1.3).
//
// A coterie — a pairwise-intersecting antichain of quorums, as used for
// quorum-based updates in distributed databases — is non-dominated exactly
// when its quorum hypergraph equals its own transversal hypergraph. The
// example checks the classical constructions and repairs a dominated one.
//
// Run with: go run ./examples/coteries
package main

import (
	"fmt"
	"log"

	"dualspace"
	"dualspace/internal/coterie"
)

func main() {
	fmt.Println("coterie                      verdict")
	fmt.Println("---------------------------  -------------")
	show("majority on 5 nodes", coterie.Majority(5))
	show("primary site (singleton)", coterie.Singleton(5, 0))
	show("star {0,i} on 5 nodes", coterie.Star(5, 0))
	show("wheel on 5 nodes", coterie.Wheel(5))
	show("3x3 grid (row+column)", coterie.Grid(3, 3))

	// Repairing a dominated coterie: the star is dominated; the duality
	// witness yields a strictly better quorum system.
	star := coterie.Star(5, 0)
	dom, found, err := star.FindDominating()
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Println("\nthe star coterie", star, "is dominated by", dom)
		nd, err := dom.IsNonDominated()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("the dominating coterie is non-dominated:", nd)
	}

	// The same check through the public facade, from a raw quorum list.
	h, err := dualspace.HypergraphFromEdges(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	c, err := dualspace.NewCoterie(h)
	if err != nil {
		log.Fatal(err)
	}
	nd, err := dualspace.IsNonDominated(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmajority-of-3 via the facade: non-dominated = %v\n", nd)
}

func show(name string, c *coterie.Coterie) {
	nd, err := c.IsNonDominated()
	if err != nil {
		log.Fatal(err)
	}
	verdict := "DOMINATED"
	if nd {
		verdict = "non-dominated"
	}
	fmt.Printf("%-27s  %s  (%d quorums / %d nodes)\n", name, verdict, c.NumQuorums(), c.Universe())
}
