// Keydiscovery: finding all minimal keys of a relational instance through
// the additional-key problem (Gottlob, PODS 2013, Proposition 1.2).
//
// The example enumerates minimal keys of an employee table one duality
// call at a time: each call either certifies the current key set complete
// or extracts a new minimal key from a fail-leaf witness of the
// decomposition tree.
//
// Run with: go run ./examples/keydiscovery
package main

import (
	"fmt"
	"log"
	"strings"

	"dualspace"
)

func main() {
	attrs := []string{"emp_id", "name", "dept", "office", "phone"}
	rel, err := dualspace.NewRelation(attrs)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{
		{"1", "ann", "sales", "101", "x11"},
		{"2", "bob", "sales", "102", "x12"},
		{"3", "cyd", "eng", "101", "x13"},
		{"4", "dee", "eng", "102", "x11"},
		{"5", "ann", "eng", "103", "x12"},
	}
	for _, row := range rows {
		if err := rel.AddRow(row...); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("relation: %d attributes, %d rows\n\n", rel.NumAttrs(), rel.NumRows())

	keyName := func(k dualspace.Set) string {
		var parts []string
		k.ForEach(func(a int) bool { parts = append(parts, attrs[a]); return true })
		if len(parts) == 0 {
			return "∅"
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}

	// Incremental discovery: start with no known keys and repeatedly ask
	// the additional-key question.
	known := dualspace.NewHypergraph(rel.NumAttrs())
	for step := 1; ; step++ {
		res, err := dualspace.AdditionalKey(rel, known)
		if err != nil {
			log.Fatal(err)
		}
		if res.Complete {
			fmt.Printf("step %d: COMPLETE — the %d keys above are all minimal keys\n", step, known.M())
			break
		}
		fmt.Printf("step %d: new minimal key %s\n", step, keyName(res.NewKey))
		known.AddEdge(res.NewKey)
	}

	// Cross-check with direct enumeration.
	all := dualspace.MinimalKeys(rel)
	fmt.Printf("\ndirect enumeration agrees: %v\n", all.EqualAsFamily(known))

	// The flip side: claiming completeness too early is refuted with a
	// concrete key.
	first := dualspace.NewHypergraph(rel.NumAttrs())
	first.AddEdge(known.Edge(0))
	res, err := dualspace.AdditionalKey(rel, first)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claiming only %s is complete? → additional key %s exists\n",
		keyName(known.Edge(0)), keyName(res.NewKey))
}
