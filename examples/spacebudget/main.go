// Spacebudget: watching the quadratic-logspace machinery work.
//
// The paper's headline result is that DUAL is decidable in DSPACE[log²n].
// This example makes the bound tangible: it runs the pathnode/certificate
// machinery on a growing instance family in all three execution regimes
// and prints the measured peak workspace next to log²(instance size) and
// the wall-clock price of frugality.
//
// Run with: go run ./examples/spacebudget
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"dualspace"
	"dualspace/internal/gen"
)

func main() {
	fmt.Println("instance              mode       peak bits  log²size  time")
	fmt.Println("--------------------  ---------  ---------  --------  ----------")
	for k := 2; k <= 5; k++ {
		g := gen.Matching(k)
		h := gen.DropEdge(gen.MatchingDual(k), 0)
		size := g.N() + g.N()*g.M() + g.N()*h.M()
		log2 := math.Pow(math.Log2(float64(size)), 2)

		// Locate the fail certificate once (fast mode)...
		pi, _, found, err := dualspace.FailCertificate(g, h, dualspace.ModeReplay, nil)
		if err != nil || !found {
			log.Fatal("expected a certificate")
		}
		// ...then verify it under each space regime, metered.
		modes := []dualspace.SpaceMode{dualspace.ModeReplay, dualspace.ModeStrict}
		if k <= 3 {
			modes = append(modes, dualspace.ModePipelined) // exponential time: tiny only
		}
		for _, mode := range modes {
			meter := dualspace.NewSpaceMeter()
			start := time.Now()
			ok, _, err := dualspace.VerifyCertificate(g, h, pi, mode, meter)
			if err != nil || !ok {
				log.Fatal("certificate rejected")
			}
			fmt.Printf("matching-%d-dropped    %-9v  %9d  %8.1f  %v\n",
				k, mode, meter.Peak(), log2, time.Since(start).Round(time.Microsecond))
		}
	}
	fmt.Println("\nstrict mode tracks log²size with a small constant; replay pays |V| bits per level;")
	fmt.Println("pipelined mode (the literal Lemma 3.1 pipeline) trades exponential time for caching nothing.")
}
