// Quickstart: the dualspace public API in five minutes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dualspace"
)

func main() {
	// A hypergraph over the universe {0,1,2,3}: the perfect matching
	// {{0,1},{2,3}} — as a monotone DNF, f = x0 x1 + x2 x3.
	g, err := dualspace.HypergraphFromEdges(4, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}

	// Its dual: the minimal transversals (one vertex per edge), i.e. the
	// CNF-to-DNF expansion (x0+x1)(x2+x3).
	h := dualspace.MinimalTransversals(g)
	fmt.Println("G      =", g)
	fmt.Println("tr(G)  =", h)

	// 1. Deciding duality (the DUAL problem).
	dual, err := dualspace.IsDual(g, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("IsDual(G, tr(G)) =", dual)

	// 2. A non-dual pair: drop one minimal transversal and ask again. The
	// verdict explains itself and carries a witness.
	partial, err := dualspace.HypergraphFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dualspace.Explain(g, partial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Explain(G, partial): dual=%v reason=%v\n", res.Dual, res.Reason)

	// 3. The witness machinery: a "new transversal" of G w.r.t. partial is
	// a transversal of G containing no edge of partial; minimalizing it
	// recovers the missing minimal transversal {1,3}.
	w, ok, err := dualspace.NewTransversal(g, partial)
	if err != nil || !ok {
		log.Fatal("expected a witness")
	}
	fmt.Println("witness          =", w)
	fmt.Println("minimalized      =", dualspace.MinimalizeTransversal(g, w))

	// 4. The paper's space-bounded machinery: find the O(log²n)-bit fail
	// certificate and verify it in strict (quadratic logspace) mode, with
	// the workspace metered.
	meter := dualspace.NewSpaceMeter()
	pi, _, found, err := dualspace.FailCertificate(g, partial, dualspace.ModeStrict, meter)
	if err != nil || !found {
		log.Fatal("expected a certificate")
	}
	fmt.Printf("fail certificate = %v (search peak %d workspace bits)\n", pi, meter.Peak())
	okv, attr, err := dualspace.VerifyCertificate(g, partial, pi, dualspace.ModeStrict, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certificate verifies=%v at leaf S=%v t=%v\n", okv, attr.S, attr.T)

	// 5. The DNF view.
	f, err := dualspace.ParseDNF("a b + c")
	if err != nil {
		log.Fatal(err)
	}
	fd := dualspace.DualDNF(f)
	fmt.Printf("dual of %q is %q\n", f, fd)
	mutual, err := dualspace.AreDualDNF(f, fd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AreDualDNF(f, f^d) =", mutual)
}
