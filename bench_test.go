package dualspace

// bench_test.go exposes one testing.B benchmark per reproduction
// experiment (E1–E16, see DESIGN.md §3 and EXPERIMENTS.md) plus
// micro-benchmarks of the individual engines. The experiment benchmarks
// execute the full table-generating workload per iteration, so `go test
// -bench=.` regenerates every experiment's work; `cmd/dualbench` prints
// the tables themselves.

import (
	"math/rand"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/experiments"
	"dualspace/internal/fkdual"
	"dualspace/internal/gen"
	"dualspace/internal/itemsets"
	"dualspace/internal/logspace"
	"dualspace/internal/transversal"
)

func benchmarkExperiment(b *testing.B, id string) {
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := e.Run(); !tbl.Pass {
			b.Fatalf("%s failed:\n%s", id, tbl.String())
		}
	}
}

func BenchmarkE1Correctness(b *testing.B)  { benchmarkExperiment(b, "E1") }
func BenchmarkE2Depth(b *testing.B)        { benchmarkExperiment(b, "E2") }
func BenchmarkE3Branching(b *testing.B)    { benchmarkExperiment(b, "E3") }
func BenchmarkE4Witness(b *testing.B)      { benchmarkExperiment(b, "E4") }
func BenchmarkE5StrictSpace(b *testing.B)  { benchmarkExperiment(b, "E5") }
func BenchmarkE6Decompose(b *testing.B)    { benchmarkExperiment(b, "E6") }
func BenchmarkE7Certificate(b *testing.B)  { benchmarkExperiment(b, "E7") }
func BenchmarkE8TradeOff(b *testing.B)     { benchmarkExperiment(b, "E8") }
func BenchmarkE9Baselines(b *testing.B)    { benchmarkExperiment(b, "E9") }
func BenchmarkE10Mining(b *testing.B)      { benchmarkExperiment(b, "E10") }
func BenchmarkE11Keys(b *testing.B)        { benchmarkExperiment(b, "E11") }
func BenchmarkE12Coteries(b *testing.B)    { benchmarkExperiment(b, "E12") }
func BenchmarkE13Inclusion(b *testing.B)   { benchmarkExperiment(b, "E13") }
func BenchmarkE14Minimalize(b *testing.B)  { benchmarkExperiment(b, "E14") }
func BenchmarkE15Orientation(b *testing.B) { benchmarkExperiment(b, "E15") }
func BenchmarkE16Structure(b *testing.B)   { benchmarkExperiment(b, "E16") }
func BenchmarkE17Delay(b *testing.B)       { benchmarkExperiment(b, "E17") }
func BenchmarkE18Armstrong(b *testing.B)   { benchmarkExperiment(b, "E18") }

// Orientation ablation micro-benchmarks: the same non-trivial instance
// decomposed with the paper's |H| ≤ |G| convention and against it.
func BenchmarkAblationOrientPaper(b *testing.B) {
	g, h := gen.Threshold(7, 3), gen.ThresholdDual(7, 3) // |G|=35, |H|=21
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.TrSubset(g, h)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkAblationOrientReversed(b *testing.B) {
	g, h := gen.Threshold(7, 3), gen.ThresholdDual(7, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.TrSubset(h, g)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

// --- engine micro-benchmarks -------------------------------------------

func benchPair(k int) (g, h *Hypergraph) {
	return gen.Matching(k), gen.MatchingDual(k)
}

func BenchmarkDecideBMDualMatching5(b *testing.B) {
	g, h := benchPair(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Decide(g, h)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideBMNonDualMatching5(b *testing.B) {
	g, h := benchPair(5)
	h = gen.DropEdge(h, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Decide(g, h)
		if err != nil || res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideBMParallelMatching5(b *testing.B) {
	g, h := benchPair(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.DecideParallel(g, h, 0)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideFKAMatching5(b *testing.B) {
	g, h := benchPair(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fkdual.DecideA(g, h)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideFKBMatching5(b *testing.B) {
	g, h := benchPair(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fkdual.DecideB(g, h)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideSelfDualMajority7(b *testing.B) {
	m := gen.Majority(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Decide(m, m)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkTransversalDFSThreshold12_3(b *testing.B) {
	h := gen.Threshold(12, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if transversal.Count(h) == 0 {
			b.Fatal("no transversals")
		}
	}
}

func BenchmarkTransversalBergeThreshold12_3(b *testing.B) {
	h := gen.Threshold(12, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if transversal.Berge(h).M() == 0 {
			b.Fatal("no transversals")
		}
	}
}

func BenchmarkPathNodeReplayMatching4(b *testing.B)    { benchmarkPathNode(b, logspace.ModeReplay) }
func BenchmarkPathNodeStrictMatching4(b *testing.B)    { benchmarkPathNode(b, logspace.ModeStrict) }
func BenchmarkPathNodePipelinedMatching2(b *testing.B) { benchmarkPathNodeTiny(b) }

func benchmarkPathNode(b *testing.B, mode logspace.Mode) {
	g := gen.Matching(4)
	h := gen.DropEdge(gen.MatchingDual(4), 3)
	pi, _, found, err := logspace.FindFailPath(g, h, logspace.Options{})
	if err != nil || !found {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := logspace.PathNode(g, h, pi, logspace.Options{Mode: mode}); err != nil || !ok {
			b.Fatal("pathnode failed")
		}
	}
}

func benchmarkPathNodeTiny(b *testing.B) {
	g := gen.Matching(2)
	h := gen.DropEdge(gen.MatchingDual(2), 1)
	pi, _, found, err := logspace.FindFailPath(g, h, logspace.Options{})
	if err != nil || !found {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := logspace.PathNode(g, h, pi, logspace.Options{Mode: logspace.ModePipelined}); err != nil || !ok {
			b.Fatal("pathnode failed")
		}
	}
}

func BenchmarkBordersDualize(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	d := itemsets.GeneratePlanted(r, 9, 80, [][]int{{0, 1, 2}, {4, 5}, {6, 7, 8}}, 0.1, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := itemsets.ComputeBorders(d, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBordersApriori(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	d := itemsets.GeneratePlanted(r, 9, 80, [][]int{{0, 1, 2}, {4, 5}, {6, 7, 8}}, 0.1, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := itemsets.BordersApriori(d, 8); err != nil {
			b.Fatal(err)
		}
	}
}
