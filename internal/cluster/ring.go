// Package cluster turns a set of dualserved replicas into one logical
// verdict cache. A consistent-hash ring assigns every canonical
// fingerprint pair (via batch.Key.Hash64, the same 64-bit fold the
// in-process cache uses for shard placement) to exactly one owning
// replica; a peer Client asks that owner for the verdict on a local
// cache miss before recomputing, with bounded fan-out and a per-peer
// circuit breaker so a dead or slow peer degrades to local compute
// instead of stalling the request path. DESIGN.md §13 documents the
// design; docs/CLUSTER.md is the operator guide.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the vnode count per peer applied when a Ring is
// built with vnodes <= 0. 128 points per peer keeps the expected load
// imbalance under a few percent for small clusters while the whole ring
// stays a few KiB — rebalance cost on membership change is what matters,
// not lookup cost (a binary search over n·128 uint64s).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over replica addresses. Each
// peer contributes vnodes points placed by FNV-64a of "addr#i"; a key's
// owner is the peer whose point is the first at or clockwise after the
// key's hash. Immutability is the concurrency story: membership changes
// build a new Ring and swap the pointer.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  []string    // sorted, deduplicated member list
	vnodes int
}

type ringPoint struct {
	hash uint64
	addr string
}

// NewRing builds a ring over the given peer addresses (deduplicated;
// order-insensitive — two replicas configured with the same member set in
// different orders agree on every owner). vnodes <= 0 applies
// DefaultVirtualNodes.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(peers))
	members := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		members = append(members, p)
	}
	sort.Strings(members)
	r := &Ring{
		points: make([]ringPoint, 0, len(members)*vnodes),
		peers:  members,
		vnodes: vnodes,
	}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(m, i), addr: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := &r.points[i], &r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare) break by address so that
		// differently-ordered configurations still agree on owners.
		return a.addr < b.addr
	})
	return r
}

// vnodeHash places vnode i of peer addr on the ring: FNV-64a of "addr#i"
// pushed through a splitmix64 finalizer. Raw FNV of short, similar strings
// clusters badly in the high bits — on a 5-peer ring one member ended up
// owning almost half the space — and ring placement consumes exactly the
// high-order structure FNV is weakest at, so the avalanche pass matters.
func vnodeHash(addr string, i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", addr, i)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the address owning hash h: the peer of the first ring
// point at or clockwise after h, wrapping at the top. Empty ring returns
// "".
func (r *Ring) Owner(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// Peers returns the member list (sorted, deduplicated). Callers must not
// mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Size reports the member count.
func (r *Ring) Size() int { return len(r.peers) }
