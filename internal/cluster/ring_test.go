package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRingDeterminismAndOrderInsensitivity(t *testing.T) {
	a := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	b := NewRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h := rng.Uint64()
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("owner disagreement at %#x: %q vs %q", h, a.Owner(h), b.Owner(h))
		}
	}
	if got := a.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3", got)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner(42); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	r := NewRing([]string{"http://only:1"}, 0)
	for _, h := range []uint64{0, 1, ^uint64(0), 1 << 63} {
		if got := r.Owner(h); got != "http://only:1" {
			t.Fatalf("single ring owner(%#x) = %q", h, got)
		}
	}
}

// TestRingBalance: with 128 vnodes per peer, no peer owns a share of the
// key space wildly off 1/n.
func TestRingBalance(t *testing.T) {
	peers := []string{}
	for i := 0; i < 5; i++ {
		peers = append(peers, fmt.Sprintf("http://replica-%d:8373", i))
	}
	r := NewRing(peers, 0)
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(7))
	const keys = 100000
	for i := 0; i < keys; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	want := keys / len(peers)
	for p, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("peer %s owns %d of %d keys (expected ~%d)", p, c, keys, want)
		}
	}
}

// TestRingRebalance is the consistent-hashing contract: adding one peer to
// an n-peer ring only moves keys TO the new peer (no key changes owner
// between surviving peers), and the moved fraction is close to 1/(n+1).
func TestRingRebalance(t *testing.T) {
	base := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before := NewRing(base, 0)
	after := NewRing(append(append([]string{}, base...), "http://e:1"), 0)

	rng := rand.New(rand.NewSource(99))
	const keys = 200000
	moved := 0
	for i := 0; i < keys; i++ {
		h := rng.Uint64()
		oldOwner, newOwner := before.Owner(h), after.Owner(h)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "http://e:1" {
			t.Fatalf("key %#x moved %s -> %s, not to the added peer", h, oldOwner, newOwner)
		}
	}
	// Expected share: 1/5 of the space. Allow generous slack for vnode
	// placement variance, but far below the 4/5 a naive mod-n rehash moves.
	frac := float64(moved) / keys
	if frac > 0.30 {
		t.Errorf("adding 1 peer to 4 moved %.1f%% of keys; want ~20%%, certainly < 30%%", frac*100)
	}
	if frac < 0.10 {
		t.Errorf("adding 1 peer to 4 moved only %.1f%% of keys; ring looks degenerate", frac*100)
	}
}
