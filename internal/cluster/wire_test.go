package cluster

import (
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
)

func TestWireVerdictRoundTrip(t *testing.T) {
	res := &core.Result{
		Dual:            false,
		Reason:          core.ReasonNewTransversal,
		Witness:         bitset.FromSlice(6, []int{0, 3, 5}),
		CoWitness:       bitset.FromSlice(6, []int{1, 2, 4}),
		GEdge:           -1,
		HEdge:           -1,
		RedundantVertex: -1,
		FailPath:        []int{2, 1},
		Swapped:         true,
	}
	wv := FromResult(res, 6)
	back, err := wv.ToResult(6)
	if err != nil {
		t.Fatalf("ToResult: %v", err)
	}
	if back.Dual != res.Dual || back.Reason != res.Reason || back.Swapped != res.Swapped {
		t.Fatalf("verdict fields drifted: %+v vs %+v", back, res)
	}
	if !back.Witness.Equal(res.Witness) || !back.CoWitness.Equal(res.CoWitness) {
		t.Fatal("witness sets drifted through the wire")
	}
	if len(back.FailPath) != 2 || back.FailPath[0] != 2 || back.FailPath[1] != 1 {
		t.Fatalf("fail path drifted: %v", back.FailPath)
	}
}

func TestWireVerdictDualRoundTrip(t *testing.T) {
	res := &core.Result{Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	back, err := FromResult(res, 4).ToResult(4)
	if err != nil {
		t.Fatalf("ToResult: %v", err)
	}
	if !back.Dual || back.Reason != core.ReasonDual {
		t.Fatalf("dual verdict drifted: %+v", back)
	}
	if !back.Witness.IsEmpty() {
		t.Fatal("empty witness grew elements")
	}
}

func TestWireVerdictValidation(t *testing.T) {
	good := &WireVerdict{N: 4, Reason: 0, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	if _, err := good.ToResult(4); err != nil {
		t.Fatalf("valid verdict rejected: %v", err)
	}
	cases := []struct {
		name string
		wv   WireVerdict
		n    int
	}{
		{"universe mismatch", WireVerdict{N: 5, GEdge: -1, HEdge: -1, RedundantVertex: -1}, 4},
		{"reason too large", WireVerdict{N: 4, Reason: 99, GEdge: -1, HEdge: -1, RedundantVertex: -1}, 4},
		{"reason negative", WireVerdict{N: 4, Reason: -1, GEdge: -1, HEdge: -1, RedundantVertex: -1}, 4},
		{"witness out of range", WireVerdict{N: 4, Witness: []int{4}, GEdge: -1, HEdge: -1, RedundantVertex: -1}, 4},
		{"witness negative", WireVerdict{N: 4, Witness: []int{-1}, GEdge: -1, HEdge: -1, RedundantVertex: -1}, 4},
		{"co-witness out of range", WireVerdict{N: 4, CoWitness: []int{9}, GEdge: -1, HEdge: -1, RedundantVertex: -1}, 4},
		{"bad sentinel", WireVerdict{N: 4, GEdge: -7, HEdge: -1, RedundantVertex: -1}, 4},
		// RedundantVertex feeds a symbol-table lookup on render: accepting
		// an out-of-range value would cache a panic, not just a wrong answer.
		{"redundant vertex out of range", WireVerdict{N: 4, GEdge: -1, HEdge: -1, RedundantVertex: 4}, 4},
		{"redundant vertex huge", WireVerdict{N: 4, GEdge: -1, HEdge: -1, RedundantVertex: 1 << 20}, 4},
	}
	for _, tc := range cases {
		if _, err := tc.wv.ToResult(tc.n); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
