package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second, func() time.Time { return now })
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("breaker open after %d failures (threshold 3)", i)
		}
		b.failure()
	}
	if !b.allow() {
		t.Fatal("breaker open at 2 failures")
	}
	b.failure()
	if b.allow() {
		t.Fatal("breaker still closed at threshold")
	}
	if !b.isOpen() {
		t.Fatal("isOpen = false after tripping")
	}
}

func TestBreakerProbeAndRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second, func() time.Time { return now })
	b.failure()
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the post-cooldown probe")
	}
	// Only one probe at a time.
	if b.allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	b.success()
	if !b.allow() || b.isOpen() {
		t.Fatal("breaker did not close after a successful probe")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second, func() time.Time { return now })
	b.failure()
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("probe refused")
	}
	b.failure() // probe failed: cooldown restarts from now
	if b.allow() {
		t.Fatal("breaker admitted a request right after a failed probe")
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the second probe after a fresh cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(2, time.Second, nil)
	b.failure()
	b.success()
	b.failure()
	if !b.allow() {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}
