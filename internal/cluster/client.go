package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Fill-path defaults. The timeout is deliberately short of the serving
// deadline budgets: a fill that cannot beat local compute is not worth
// waiting for. MaxConcurrentFills bounds the sockets a replica will hold
// open toward its peers; excess fills are skipped (counted), not queued —
// queueing a fill behind other fills would add latency to the exact
// requests the cluster layer exists to speed up.
const (
	DefaultFillTimeout        = 2 * time.Second
	DefaultMaxConcurrentFills = 32
)

// Config assembles a peer Client.
type Config struct {
	// Self is this replica's advertised address (scheme optional; "http://"
	// is assumed). It is placed on the ring alongside Peers so every member
	// computes the same ownership map.
	Self string
	// Peers are the other replicas' advertised addresses. Self is filtered
	// out if listed (operators often deploy one -peers list to every node).
	Peers []string
	// VirtualNodes per ring member (<= 0: DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds one fill round trip (<= 0: DefaultFillTimeout).
	Timeout time.Duration
	// MaxConcurrentFills bounds in-flight fills (<= 0: default 32).
	MaxConcurrentFills int
	// BreakerThreshold / BreakerCooldown tune the per-peer circuit breaker
	// (<= 0: package defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HTTPClient overrides the transport (tests). nil builds one with the
	// fill timeout.
	HTTPClient *http.Client
	// now is the breaker clock (tests).
	now func() time.Time
}

// PeerStats is one peer's observable fill state.
type PeerStats struct {
	Addr        string `json:"addr"`
	Fills       int64  `json:"fills"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Errors      int64  `json:"errors"`
	Skips       int64  `json:"skips"`
	BreakerOpen bool   `json:"breaker_open"`
}

// peerState is the per-peer client state: counters plus the breaker.
type peerState struct {
	addr    string
	fills   atomic.Int64 // fill attempts dispatched
	hits    atomic.Int64 // fills answered with a verdict
	misses  atomic.Int64 // fills answered 404/503/504 (peer healthy, no verdict served)
	errors  atomic.Int64 // transport errors and 5xx
	skips   atomic.Int64 // fills suppressed by breaker or fan-out bound
	breaker *breaker
}

// Client routes canonical-fingerprint hashes to owning replicas and
// fetches verdicts from them. It is safe for concurrent use; all state is
// atomics, per-peer breakers, and a semaphore channel.
type Client struct {
	self    string
	ring    *Ring
	peers   map[string]*peerState
	order   []string // sorted peer addrs for stable stats output
	http    *http.Client
	timeout time.Duration
	sem     chan struct{}
}

// normalizeAddr gives every ring member a canonical URL form so that
// "host:port" and "http://host:port" configure the same ring position.
func normalizeAddr(a string) string {
	a = strings.TrimSpace(strings.TrimSuffix(a, "/"))
	if a == "" {
		return ""
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return a
}

// New builds a Client. An empty peer list (after filtering Self) returns
// (nil, nil): cluster mode off, and every call site already nil-checks.
func New(cfg Config) (*Client, error) {
	self := normalizeAddr(cfg.Self)
	members := []string{}
	for _, p := range cfg.Peers {
		p = normalizeAddr(p)
		if p == "" || p == self {
			continue
		}
		members = append(members, p)
	}
	if len(members) == 0 {
		return nil, nil
	}
	if self == "" {
		return nil, fmt.Errorf("cluster: -peers given but -self is empty")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultFillTimeout
	}
	maxFills := cfg.MaxConcurrentFills
	if maxFills <= 0 {
		maxFills = DefaultMaxConcurrentFills
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: timeout}
	}
	c := &Client{
		self:    self,
		ring:    NewRing(append(members, self), cfg.VirtualNodes),
		peers:   make(map[string]*peerState, len(members)),
		http:    hc,
		timeout: timeout,
		sem:     make(chan struct{}, maxFills),
	}
	for _, m := range members {
		if _, dup := c.peers[m]; dup {
			continue
		}
		c.peers[m] = &peerState{
			addr:    m,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		}
		c.order = append(c.order, m)
	}
	sort.Strings(c.order)
	return c, nil
}

// Self reports this replica's normalized ring address.
func (c *Client) Self() string { return c.self }

// Ring exposes the ownership ring (stats and tests).
func (c *Client) Ring() *Ring { return c.ring }

// Owner maps a key hash (batch.Key.Hash64) to its owning replica,
// reporting whether that owner is a remote peer.
func (c *Client) Owner(h uint64) (addr string, remote bool) {
	addr = c.ring.Owner(h)
	return addr, addr != c.self
}

// Fill asks the peer at addr for the verdict of the instance whose
// original request texts are gText/hText. It returns (nil, nil) when the
// fill was skipped (breaker open, fan-out bound hit) or the peer had no
// verdict to serve — both mean "carry on and compute locally". A non-nil
// error means the peer misbehaved (transport failure, 5xx, malformed
// verdict) and has been charged to its breaker.
func (c *Client) Fill(ctx context.Context, addr, engineName, gText, hText string) (*WireVerdict, error) {
	ps := c.peers[addr]
	if ps == nil {
		return nil, fmt.Errorf("cluster: %s is not a configured peer", addr)
	}
	// Semaphore before breaker: allow() may hand out the single
	// post-cooldown probe token, and every exit after that MUST reach
	// success() or failure() to return it — bailing out on the fan-out
	// bound between the two would strand probing=true and disable the
	// peer permanently. Holding a semaphore slot across the (lock-only,
	// no-I/O) breaker check is cheap.
	select {
	case c.sem <- struct{}{}:
	default:
		ps.skips.Add(1)
		return nil, nil
	}
	defer func() { <-c.sem }()
	if !ps.breaker.allow() {
		ps.skips.Add(1)
		return nil, nil
	}

	ps.fills.Add(1)
	wv, retriable, err := c.doFill(ctx, addr, engineName, gText, hText)
	switch {
	case err != nil:
		ps.errors.Add(1)
		ps.breaker.failure()
		return nil, err
	case wv == nil:
		// Healthy peer, no verdict (shed, timed out, or cache policy).
		ps.misses.Add(1)
		if retriable {
			ps.breaker.success()
		}
		return nil, nil
	default:
		ps.hits.Add(1)
		ps.breaker.success()
		return wv, nil
	}
}

// doFill runs one fill round trip. It returns (nil, true, nil) for
// answers that mean "no verdict but the peer is fine" (404, 429, 503,
// 504) and an error for transport failures, 5xx, and undecodable bodies.
func (c *Client) doFill(ctx context.Context, addr, engineName, gText, hText string) (*WireVerdict, bool, error) {
	body, err := json.Marshal(FillRequest{Engine: engineName, G: gText, H: hText})
	if err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		addr+"/v1/cluster/verdict?no_forward=1", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(PeerHeader, c.self)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		var wv WireVerdict
		if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&wv); err != nil {
			return nil, false, fmt.Errorf("cluster: decoding %s verdict: %w", addr, err)
		}
		return &wv, false, nil
	case resp.StatusCode == http.StatusNotFound,
		resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode == http.StatusGatewayTimeout:
		// The peer is up but has nothing for us (or shed the fill under
		// its own admission control) — a miss, not a failure.
		return nil, true, nil
	case resp.StatusCode >= 500:
		return nil, false, fmt.Errorf("cluster: %s answered %d", addr, resp.StatusCode)
	default:
		// 4xx: the peer rejected the request as malformed. That is a local
		// bug, not peer ill health — surface it without charging the
		// breaker... except a breaker charge is exactly how persistent
		// disagreement gets silenced, so charge it anyway: a peer we
		// cannot talk to correctly is a peer we should stop asking.
		return nil, false, fmt.Errorf("cluster: %s rejected fill with %d", addr, resp.StatusCode)
	}
}

// Stats snapshots every peer in sorted-address order.
func (c *Client) Stats() []PeerStats {
	out := make([]PeerStats, 0, len(c.order))
	for _, addr := range c.order {
		ps := c.peers[addr]
		out = append(out, PeerStats{
			Addr:        ps.addr,
			Fills:       ps.fills.Load(),
			Hits:        ps.hits.Load(),
			Misses:      ps.misses.Load(),
			Errors:      ps.errors.Load(),
			Skips:       ps.skips.Load(),
			BreakerOpen: ps.breaker.isOpen(),
		})
	}
	return out
}

// Peer returns the state snapshot for one address (metrics bridges).
func (c *Client) Peer(addr string) (PeerStats, bool) {
	ps := c.peers[addr]
	if ps == nil {
		return PeerStats{}, false
	}
	return PeerStats{
		Addr:        ps.addr,
		Fills:       ps.fills.Load(),
		Hits:        ps.hits.Load(),
		Misses:      ps.misses.Load(),
		Errors:      ps.errors.Load(),
		Skips:       ps.skips.Load(),
		BreakerOpen: ps.breaker.isOpen(),
	}, true
}

// PeerAddrs returns the remote member addresses in stable (sorted) order.
func (c *Client) PeerAddrs() []string { return c.order }
