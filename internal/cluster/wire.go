package cluster

import (
	"fmt"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
)

// PeerHeader marks a request as a peer cache-fill rather than client
// traffic: the client sets it to its own advertised address, the serving
// replica logs it and never forwards such a request onward (the header and
// the ?no_forward=1 query parameter are redundant loop guards — either
// alone stops a forwarding cycle).
const PeerHeader = "X-Dualspace-Peer"

// FillRequest is the POST /v1/cluster/verdict body. It carries the
// *original* request text of both hypergraphs, not a re-rendering of the
// canonical forms: hgio interns vertex names in first-appearance order, so
// the same text parses to the same integer structure on every replica —
// which is exactly what makes the canonical fingerprints (and therefore
// the cache key and the witness vertex numbering) agree across the wire.
// Re-rendering the canonical form could permute vertex indices on
// re-parse and silently change the key.
type FillRequest struct {
	Engine string `json:"engine,omitempty"`
	G      string `json:"g"`
	H      string `json:"h"`
}

// WireVerdict is the cluster fill response: a core.Result flattened to
// JSON-safe types plus the vertex-universe size the witness indices refer
// to. Stats are deliberately dropped — they describe one replica's search,
// not the instance.
type WireVerdict struct {
	N               int    `json:"n"`
	Dual            bool   `json:"dual"`
	Reason          int    `json:"reason"`
	Witness         []int  `json:"witness,omitempty"`
	CoWitness       []int  `json:"co_witness,omitempty"`
	GEdge           int    `json:"g_edge"`
	HEdge           int    `json:"h_edge"`
	RedundantVertex int    `json:"redundant_vertex"`
	FailPath        []int  `json:"fail_path,omitempty"`
	Swapped         bool   `json:"swapped"`
	Engine          string `json:"engine,omitempty"`
	Cached          bool   `json:"cached"`
}

// FromResult flattens res for the wire. n is the vertex universe of the
// (shared-symbol-table) parse of the instance.
func FromResult(res *core.Result, n int) *WireVerdict {
	wv := &WireVerdict{
		N:               n,
		Dual:            res.Dual,
		Reason:          int(res.Reason),
		GEdge:           res.GEdge,
		HEdge:           res.HEdge,
		RedundantVertex: res.RedundantVertex,
		Swapped:         res.Swapped,
	}
	if !res.Witness.IsEmpty() {
		wv.Witness = res.Witness.Elems()
	}
	if !res.CoWitness.IsEmpty() {
		wv.CoWitness = res.CoWitness.Elems()
	}
	if len(res.FailPath) > 0 {
		wv.FailPath = append([]int(nil), res.FailPath...)
	}
	return wv
}

// maxWireN bounds the universe a peer may claim, protecting the bitset
// reconstruction from allocating absurd amounts on a corrupt response.
const maxWireN = 1 << 24

// ToResult validates the verdict against the locally parsed universe size
// n and reconstructs a detached core.Result. A mismatched universe or an
// out-of-range index means the peer decided a *different* instance (or the
// bytes were corrupted) — the caller must treat that as a miss, never as a
// verdict.
func (wv *WireVerdict) ToResult(n int) (*core.Result, error) {
	if wv.N != n {
		return nil, fmt.Errorf("cluster: peer universe %d != local %d", wv.N, n)
	}
	if n < 0 || n > maxWireN {
		return nil, fmt.Errorf("cluster: universe %d out of range", n)
	}
	if wv.Reason < int(core.ReasonDual) || wv.Reason > int(core.ReasonNewTransversal) {
		return nil, fmt.Errorf("cluster: unknown reason %d", wv.Reason)
	}
	if wv.GEdge < -1 || wv.HEdge < -1 || wv.RedundantVertex < -1 {
		return nil, fmt.Errorf("cluster: negative index below -1 sentinel")
	}
	// RedundantVertex is rendered as a symbol-table lookup downstream, so an
	// out-of-range value would not just be wrong, it would panic — and a
	// poisoned cache entry panics every later request for the key.
	if wv.RedundantVertex >= n {
		return nil, fmt.Errorf("cluster: redundant vertex %d outside [0,%d)", wv.RedundantVertex, n)
	}
	for _, e := range wv.Witness {
		if e < 0 || e >= n {
			return nil, fmt.Errorf("cluster: witness vertex %d outside [0,%d)", e, n)
		}
	}
	for _, e := range wv.CoWitness {
		if e < 0 || e >= n {
			return nil, fmt.Errorf("cluster: co-witness vertex %d outside [0,%d)", e, n)
		}
	}
	res := &core.Result{
		Dual:            wv.Dual,
		Reason:          core.Reason(wv.Reason),
		GEdge:           wv.GEdge,
		HEdge:           wv.HEdge,
		RedundantVertex: wv.RedundantVertex,
		Swapped:         wv.Swapped,
	}
	if len(wv.Witness) > 0 {
		res.Witness = bitset.FromSlice(n, wv.Witness)
	}
	if len(wv.CoWitness) > 0 {
		res.CoWitness = bitset.FromSlice(n, wv.CoWitness)
	}
	if len(wv.FailPath) > 0 {
		res.FailPath = append([]int(nil), wv.FailPath...)
	}
	return res, nil
}
