package cluster

import (
	"sync"
	"time"
)

// Breaker defaults: five consecutive failures open the breaker for five
// seconds. Peer-fill is an optimization — the fallback (local compute) is
// always correct — so the breaker is deliberately eager to open and cheap
// to probe: after the cooldown one request is let through, and one success
// closes it again.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// breaker is a per-peer consecutive-failure circuit breaker. It counts
// transport errors and 5xx responses (a 4xx means the peer is healthy but
// rejected the request, which must not trip it). All methods are safe for
// concurrent use; the mutex is held only around a few field reads, never
// across I/O.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	failures int
	openedAt time.Time
	open     bool
	probing  bool // one in-flight probe after cooldown
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed. While open, it admits a
// single probe once the cooldown has elapsed; everything else is refused
// until that probe reports success.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.probing = true
	return true
}

// success records a successful call and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.probing = false
}

// failure records a failed call; crossing the threshold (or failing the
// post-cooldown probe) opens the breaker and restarts the cooldown.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if b.failures >= b.threshold || b.open {
		b.open = true
		b.openedAt = b.now()
	}
}

// isOpen reports the breaker state for stats surfaces.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
