package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewDisabledWithoutPeers(t *testing.T) {
	c, err := New(Config{Self: "http://a:1"})
	if err != nil || c != nil {
		t.Fatalf("New with no peers = (%v, %v), want (nil, nil)", c, err)
	}
	// Self listed among peers still means a cluster of one: disabled.
	c, err = New(Config{Self: "a:1", Peers: []string{"http://a:1/"}})
	if err != nil || c != nil {
		t.Fatalf("New with only-self peers = (%v, %v), want (nil, nil)", c, err)
	}
}

func TestNewRequiresSelf(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://b:1"}}); err == nil {
		t.Fatal("New accepted peers without self")
	}
}

func TestClientFillRoundTrip(t *testing.T) {
	var gotHeader atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(PeerHeader))
		if r.URL.Query().Get("no_forward") != "1" {
			t.Error("fill request missing no_forward=1")
		}
		var req FillRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding fill request: %v", err)
		}
		if req.G == "" || req.H == "" {
			t.Errorf("fill request carries empty texts: %+v", req)
		}
		_ = json.NewEncoder(w).Encode(WireVerdict{
			N: 3, Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1, Cached: true,
		})
	}))
	defer peer.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	wv, err := c.Fill(context.Background(), peer.URL, "core", "a b\nc\n", "a c\nb c\n")
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if wv == nil || !wv.Dual || wv.N != 3 {
		t.Fatalf("Fill verdict = %+v", wv)
	}
	if got := gotHeader.Load(); got != "http://self:1" {
		t.Fatalf("peer header = %q, want self address", got)
	}
	st, ok := c.Peer(peer.URL)
	if !ok || st.Fills != 1 || st.Hits != 1 || st.Errors != 0 {
		t.Fatalf("peer stats = %+v", st)
	}
}

func TestClientFillMissAndErrors(t *testing.T) {
	status := atomic.Int64{}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
	}))
	defer peer.Close()
	c, err := New(Config{Self: "http://self:1", Peers: []string{peer.URL}, BreakerThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}

	status.Store(http.StatusNotFound)
	wv, err := c.Fill(context.Background(), peer.URL, "", "a\n", "a\n")
	if wv != nil || err != nil {
		t.Fatalf("404 fill = (%v, %v), want miss", wv, err)
	}

	status.Store(http.StatusInternalServerError)
	for i := 0; i < 2; i++ {
		if _, err := c.Fill(context.Background(), peer.URL, "", "a\n", "a\n"); err == nil {
			t.Fatal("5xx fill reported no error")
		}
	}
	// Breaker open: next fill is a silent skip.
	wv, err = c.Fill(context.Background(), peer.URL, "", "a\n", "a\n")
	if wv != nil || err != nil {
		t.Fatalf("breaker-open fill = (%v, %v), want skip", wv, err)
	}
	st, _ := c.Peer(peer.URL)
	if !st.BreakerOpen || st.Skips != 1 || st.Errors != 2 || st.Misses != 1 {
		t.Fatalf("peer stats after failures = %+v", st)
	}
}

func TestClientFillPeerDown(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := peer.URL
	peer.Close() // connection refused from here on

	c, err := New(Config{
		Self: "http://self:1", Peers: []string{addr},
		Timeout: 200 * time.Millisecond, BreakerThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fill(context.Background(), addr, "", "a\n", "a\n"); err == nil {
		t.Fatal("fill against a closed listener reported no error")
	}
	st, _ := c.Peer(addr)
	if !st.BreakerOpen {
		t.Fatal("breaker stayed closed after a transport failure with threshold 1")
	}
}

// A fill skipped on the fan-out bound after the breaker's cooldown must
// not consume the single probe token: if it did, the breaker would stay
// open (and the peer disabled) until restart.
func TestClientFillFanoutSkipDoesNotStrandProbe(t *testing.T) {
	var healthy atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(WireVerdict{
			N: 1, Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1,
		})
	}))
	defer peer.Close()

	cur := time.Unix(1000, 0)
	c, err := New(Config{
		Self: "http://self:1", Peers: []string{peer.URL},
		BreakerThreshold: 1, BreakerCooldown: time.Second,
		MaxConcurrentFills: 1,
		now:                func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Fill(context.Background(), peer.URL, "", "a\n", "a\n"); err == nil {
		t.Fatal("5xx fill reported no error")
	}
	if st, _ := c.Peer(peer.URL); !st.BreakerOpen {
		t.Fatal("breaker stayed closed after failure with threshold 1")
	}

	// Cooldown elapses, the peer recovers, but the only fan-out slot is
	// taken — this fill must be a plain skip, not a consumed probe.
	cur = cur.Add(2 * time.Second)
	healthy.Store(true)
	c.sem <- struct{}{}
	if wv, err := c.Fill(context.Background(), peer.URL, "", "a\n", "a\n"); wv != nil || err != nil {
		t.Fatalf("fan-out-bound fill = (%v, %v), want skip", wv, err)
	}
	<-c.sem

	wv, err := c.Fill(context.Background(), peer.URL, "", "a\n", "a\n")
	if err != nil || wv == nil {
		t.Fatalf("post-cooldown probe = (%v, %v): probe token stranded by the fan-out skip", wv, err)
	}
	if st, _ := c.Peer(peer.URL); st.BreakerOpen {
		t.Fatalf("breaker still open after successful probe: %+v", st)
	}
}

func TestOwnerCoversAllMembers(t *testing.T) {
	c, err := New(Config{Self: "http://self:1", Peers: []string{"http://b:1", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for h := uint64(0); h < 300000; h += 97 {
		addr, remote := c.Owner(mix64(h))
		seen[addr] = true
		if remote == (addr == c.Self()) {
			t.Fatalf("Owner(%#x) remote flag inconsistent: %q", h, addr)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("ownership did not cover all 3 members: %v", seen)
	}
}
