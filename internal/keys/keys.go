// Package keys implements the additional-key-for-instance problem
// (Gottlob, PODS 2013, Proposition 1.2): given an explicit relational
// instance R and a set K of minimal keys, decide whether R has a minimal
// key outside K — a problem logspace-equivalent to DUAL.
//
// The classical reduction: K ⊆ A is a key of R iff no two distinct tuples
// agree on all attributes of K, i.e. K meets every difference set
// D(t,t') = {attributes where t and t' differ}. Hence the minimal keys of R
// are exactly the minimal transversals of the minimized difference-set
// family, and the additional-key question is the question tr(D) ⊆ K — the
// tree stage of the duality engine, which also produces a concrete new
// minimal key on a negative answer.
package keys

import (
	"context"
	"errors"
	"fmt"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// Relation is an explicit relational instance over named attributes.
type Relation struct {
	attrs []string
	rows  [][]string
}

// NewRelation returns an empty relation with the given attribute names
// (distinct, non-empty).
func NewRelation(attrs []string) (*Relation, error) {
	if len(attrs) == 0 {
		return nil, errors.New("keys: relation needs at least one attribute")
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a == "" {
			return nil, errors.New("keys: empty attribute name")
		}
		if seen[a] {
			return nil, fmt.Errorf("keys: duplicate attribute %q", a)
		}
		seen[a] = true
	}
	return &Relation{attrs: append([]string(nil), attrs...)}, nil
}

// MustNewRelation panics on error; for tests and literals.
func MustNewRelation(attrs []string) *Relation {
	r, err := NewRelation(attrs)
	if err != nil {
		panic(err)
	}
	return r
}

// AddRow appends a tuple; the arity must match the attribute list.
func (r *Relation) AddRow(vals ...string) error {
	if len(vals) != len(r.attrs) {
		return fmt.Errorf("keys: row arity %d, want %d", len(vals), len(r.attrs))
	}
	r.rows = append(r.rows, append([]string(nil), vals...))
	return nil
}

// NumAttrs returns the number of attributes.
func (r *Relation) NumAttrs() int { return len(r.attrs) }

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return len(r.rows) }

// AttrName returns the name of attribute i.
func (r *Relation) AttrName(i int) string { return r.attrs[i] }

// AttrIndex returns the index of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// DifferenceSets returns the minimized family of difference sets
// {attributes where t and t' differ} over all tuple pairs. Duplicate
// tuples contribute the empty difference set, which (correctly) minimizes
// the family to {∅}: such relations have no keys.
func (r *Relation) DifferenceSets() *hypergraph.Hypergraph {
	n := len(r.attrs)
	raw := hypergraph.New(n)
	for i := 0; i < len(r.rows); i++ {
		for j := i + 1; j < len(r.rows); j++ {
			d := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.rows[i][a] != r.rows[j][a] {
					d.Add(a)
				}
			}
			raw.AddEdge(d)
		}
	}
	return raw.Minimize()
}

// AgreeSets returns the family of maximal agree sets (complements of the
// minimized difference sets) — the "antikeys" view.
func (r *Relation) AgreeSets() *hypergraph.Hypergraph {
	return r.DifferenceSets().ComplementEdges()
}

// IsKey reports whether k is a key: no two distinct tuples agree on every
// attribute of k. (Checked directly from the instance, independently of
// the difference-set reduction; tests assert the equivalence.)
func (r *Relation) IsKey(k bitset.Set) bool {
	for i := 0; i < len(r.rows); i++ {
	next:
		for j := i + 1; j < len(r.rows); j++ {
			cont := k.ForEach(func(a int) bool {
				return r.rows[i][a] == r.rows[j][a]
			})
			if !cont {
				continue next // some attribute distinguishes the pair
			}
			return false // the pair agrees on all of k
		}
	}
	return true
}

// IsMinimalKey reports whether k is a key with no proper subset being one.
func (r *Relation) IsMinimalKey(k bitset.Set) bool {
	if !r.IsKey(k) {
		return false
	}
	redundant := false
	k.ForEach(func(a int) bool {
		if r.IsKey(k.WithoutElem(a)) {
			redundant = true
			return false
		}
		return true
	})
	return !redundant
}

// MinimalKeys enumerates all minimal keys of r as a canonical hypergraph
// over the attribute universe, via transversal enumeration of the
// difference sets (Proposition 1.2's reduction).
func (r *Relation) MinimalKeys() *hypergraph.Hypergraph {
	return transversal.AsHypergraph(r.DifferenceSets())
}

// MinimalKeysBrute enumerates minimal keys by exhaustive subset scan (test
// oracle; panics beyond 20 attributes).
func (r *Relation) MinimalKeysBrute() *hypergraph.Hypergraph {
	n := len(r.attrs)
	if n > 20 {
		panic("keys: brute-force attribute universe too large")
	}
	out := hypergraph.New(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		k := bitset.New(n)
		for a := 0; a < n; a++ {
			if mask&(1<<uint(a)) != 0 {
				k.Add(a)
			}
		}
		if r.IsMinimalKey(k) {
			out.AddEdge(k)
		}
	}
	return out.Canonical()
}

// AdditionalKeyResult is the outcome of the additional-key decision.
type AdditionalKeyResult struct {
	// Complete reports that known = the set of all minimal keys.
	Complete bool
	// NewKey is a minimal key outside the known family (present iff
	// Complete is false).
	NewKey   bitset.Set
	FoundNew bool
	// DualityStats carries the decomposition statistics of the underlying
	// tree search (zero for degenerate instances decided directly).
	DualityStats core.Stats
}

// AdditionalKey decides the additional-key-for-instance problem: does R
// have a minimal key not in known? Every member of known must be a minimal
// key of r (otherwise an error is returned: the problem, as defined in the
// paper, presumes K contains minimal keys). The decision runs the
// Boros–Makino tree on the pair (difference sets, known keys), and on
// incompleteness returns a concrete new minimal key extracted from the fail
// leaf's witness.
func (r *Relation) AdditionalKey(known *hypergraph.Hypergraph) (*AdditionalKeyResult, error) {
	return r.AdditionalKeyContext(context.Background(), known)
}

// AdditionalKeyContext is AdditionalKey with cancellation: the underlying
// tree search polls ctx at every node (see core.TrSubsetContext). The
// decision runs on the default engine portfolio; AdditionalKeyWith chooses.
func (r *Relation) AdditionalKeyContext(ctx context.Context, known *hypergraph.Hypergraph) (*AdditionalKeyResult, error) {
	return r.AdditionalKeyWith(ctx, known, engine.Default())
}

// AdditionalKeyWith is AdditionalKeyContext with a caller-chosen duality
// engine. The question tr(D) ⊆ K is the raw tree stage, so engines without
// the TrSubset capability fall back to the reference serial walker (see
// engine.TrSubset); an engine.Session pins scratch across the incremental
// calls of EnumerateKeysIncrementallyWith.
func (r *Relation) AdditionalKeyWith(ctx context.Context, known *hypergraph.Hypergraph, eng engine.Engine) (*AdditionalKeyResult, error) {
	n := len(r.attrs)
	if known.N() != n {
		return nil, errors.New("keys: known-keys universe differs from attribute count")
	}
	for i := 0; i < known.M(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !r.IsMinimalKey(known.Edge(i)) {
			return nil, fmt.Errorf("keys: claimed key %v is not a minimal key", known.Edge(i))
		}
	}
	d := r.DifferenceSets()

	// Degenerate instances, decided directly.
	if d.M() == 0 {
		// At most one distinct tuple: the empty key is the unique minimal
		// key.
		if known.M() == 1 && known.Edge(0).IsEmpty() {
			return &AdditionalKeyResult{Complete: true}, nil
		}
		return &AdditionalKeyResult{NewKey: bitset.New(n), FoundNew: true}, nil
	}
	if d.HasEmptyEdge() {
		// Duplicate tuples: no keys at all; known is necessarily empty
		// (members were verified as keys above).
		return &AdditionalKeyResult{Complete: true}, nil
	}
	if known.M() == 0 {
		// No claims: any minimal key answers the question.
		k := d.MinimalizeTransversal(bitset.Full(n))
		return &AdditionalKeyResult{NewKey: k, FoundNew: true}, nil
	}

	res, err := engine.TrSubset(ctx, eng, d, known)
	if err != nil {
		return nil, err
	}
	if res.Dual {
		return &AdditionalKeyResult{Complete: true, DualityStats: res.Stats}, nil
	}
	k := d.MinimalizeTransversal(res.Witness)
	return &AdditionalKeyResult{NewKey: k, FoundNew: true, DualityStats: res.Stats}, nil
}

// EnumerateKeysIncrementally enumerates all minimal keys through repeated
// AdditionalKey calls — the paper's incremental pattern specialized to key
// discovery. It returns the keys in discovery order.
func (r *Relation) EnumerateKeysIncrementally() (*hypergraph.Hypergraph, int, error) {
	return r.EnumerateKeysIncrementallyContext(context.Background())
}

// EnumerateKeysIncrementallyContext is EnumerateKeysIncrementally with
// cancellation between and within the additional-key calls. Each run pins a
// fresh engine session, so the |keys| + 1 decisions share scratch.
func (r *Relation) EnumerateKeysIncrementallyContext(ctx context.Context) (*hypergraph.Hypergraph, int, error) {
	return r.EnumerateKeysIncrementallyWith(ctx, engine.NewSession(nil))
}

// EnumerateKeysIncrementallyWith is EnumerateKeysIncrementallyContext on a
// caller-chosen engine (typically a long-lived engine.Session).
func (r *Relation) EnumerateKeysIncrementallyWith(ctx context.Context, eng engine.Engine) (*hypergraph.Hypergraph, int, error) {
	known := hypergraph.New(len(r.attrs))
	calls := 0
	for {
		calls++
		res, err := r.AdditionalKeyWith(ctx, known, eng)
		if err != nil {
			return nil, calls, err
		}
		if res.Complete {
			return known, calls, nil
		}
		known.AddEdge(res.NewKey)
	}
}
