package keys_test

import (
	"context"
	"dualspace/internal/engine"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/keys"
)

// employees is the worked example: name is a key, (dept, room) is a key.
func employees() *keys.Relation {
	r := keys.MustNewRelation([]string{"name", "dept", "room", "city"})
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.AddRow("ann", "sales", "101", "york"))
	must(r.AddRow("bob", "sales", "102", "york"))
	must(r.AddRow("cyd", "eng", "101", "york"))
	must(r.AddRow("dee", "eng", "102", "leeds"))
	return r
}

func TestRelationValidation(t *testing.T) {
	if _, err := keys.NewRelation(nil); err == nil {
		t.Error("empty attribute list accepted")
	}
	if _, err := keys.NewRelation([]string{"a", "a"}); err == nil {
		t.Error("duplicate attributes accepted")
	}
	if _, err := keys.NewRelation([]string{""}); err == nil {
		t.Error("empty attribute name accepted")
	}
	r := keys.MustNewRelation([]string{"a", "b"})
	if err := r.AddRow("1"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if r.AttrIndex("b") != 1 || r.AttrIndex("zz") != -1 {
		t.Error("AttrIndex wrong")
	}
	if r.AttrName(0) != "a" {
		t.Error("AttrName wrong")
	}
}

func TestIsKey(t *testing.T) {
	r := employees()
	mk := func(names ...string) bitset.Set {
		s := bitset.New(r.NumAttrs())
		for _, n := range names {
			s.Add(r.AttrIndex(n))
		}
		return s
	}
	if !r.IsKey(mk("name")) {
		t.Error("name should be a key")
	}
	if r.IsKey(mk("dept")) {
		t.Error("dept is not a key")
	}
	if !r.IsKey(mk("dept", "room")) {
		t.Error("dept+room should be a key")
	}
	if !r.IsKey(mk("name", "city")) {
		t.Error("superset of a key is a key")
	}
	if r.IsKey(mk()) {
		t.Error("empty set is not a key of a 4-row relation")
	}
	if !r.IsMinimalKey(mk("name")) || r.IsMinimalKey(mk("name", "city")) {
		t.Error("minimality wrong")
	}
}

func TestMinimalKeysAgainstBrute(t *testing.T) {
	r := employees()
	got := r.MinimalKeys()
	want := r.MinimalKeysBrute()
	if !got.EqualAsFamily(want) {
		t.Fatalf("MinimalKeys %v != brute %v", got, want)
	}
	// Reduction consistency: keys are exactly the transversals of the
	// difference sets.
	d := r.DifferenceSets()
	for mask := 0; mask < 1<<uint(r.NumAttrs()); mask++ {
		k := bitset.New(r.NumAttrs())
		for a := 0; a < r.NumAttrs(); a++ {
			if mask&(1<<uint(a)) != 0 {
				k.Add(a)
			}
		}
		if r.IsKey(k) != d.IsTransversal(k) {
			t.Fatalf("key/transversal mismatch at %v", k)
		}
	}
	// Agree sets are the complements of difference sets.
	if !r.AgreeSets().ComplementEdges().EqualAsFamily(d) {
		t.Error("agree/difference complement identity broken")
	}
}

func TestAdditionalKey(t *testing.T) {
	r := employees()
	all := r.MinimalKeysBrute()

	// Complete claims.
	res, err := r.AdditionalKey(all)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("complete key set not recognized: %+v", res)
	}

	// Drop each key in turn: must find a new minimal key each time.
	for drop := 0; drop < all.M(); drop++ {
		partial := hypergraph.New(all.N())
		for j := 0; j < all.M(); j++ {
			if j != drop {
				partial.AddEdge(all.Edge(j))
			}
		}
		res, err := r.AdditionalKey(partial)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete || !res.FoundNew {
			t.Fatalf("drop %d: missing key not detected: %+v", drop, res)
		}
		if !r.IsMinimalKey(res.NewKey) {
			t.Fatalf("drop %d: new key %v not a minimal key", drop, res.NewKey)
		}
		if partial.ContainsEdge(res.NewKey) {
			t.Fatalf("drop %d: new key already known", drop)
		}
	}

	// Invalid claims are rejected.
	bogus := hypergraph.MustFromEdges(4, [][]int{{1}}) // dept alone is no key
	if _, err := r.AdditionalKey(bogus); err == nil {
		t.Error("non-key claim accepted")
	}
	wrong := hypergraph.MustFromEdges(5, [][]int{{0}})
	if _, err := r.AdditionalKey(wrong); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestDegenerateRelations(t *testing.T) {
	// Single row: the empty key.
	r1 := keys.MustNewRelation([]string{"a", "b"})
	if err := r1.AddRow("x", "y"); err != nil {
		t.Fatal(err)
	}
	res, err := r1.AdditionalKey(hypergraph.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || !res.NewKey.IsEmpty() {
		t.Fatalf("single row: %+v", res)
	}
	complete := hypergraph.New(2)
	complete.AddEdgeElems()
	res, err = r1.AdditionalKey(complete)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("single row with ∅ claimed: %+v", res)
	}

	// Duplicate rows: no keys; the empty claim set is complete.
	r2 := keys.MustNewRelation([]string{"a"})
	if err := r2.AddRow("x"); err != nil {
		t.Fatal(err)
	}
	if err := r2.AddRow("x"); err != nil {
		t.Fatal(err)
	}
	res, err = r2.AdditionalKey(hypergraph.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("duplicate rows: %+v", res)
	}
	if r2.MinimalKeys().M() != 0 {
		t.Error("duplicate rows should have no keys")
	}
}

func TestEnumerateKeysIncrementally(t *testing.T) {
	r := employees()
	got, calls, err := r.EnumerateKeysIncrementally()
	if err != nil {
		t.Fatal(err)
	}
	want := r.MinimalKeysBrute()
	if !got.EqualAsFamily(want) {
		t.Fatalf("incremental keys %v != brute %v", got, want)
	}
	if calls != want.M()+1 {
		t.Errorf("calls = %d, want %d", calls, want.M()+1)
	}
}

func TestRandomRelations(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		nAttrs := 2 + r.Intn(5)
		nRows := 2 + r.Intn(6)
		domain := 2 + r.Intn(2)
		attrs := make([]string, nAttrs)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		rel := keys.MustNewRelation(attrs)
		for i := 0; i < nRows; i++ {
			row := make([]string, nAttrs)
			for j := range row {
				row[j] = fmt.Sprintf("v%d", r.Intn(domain))
			}
			if err := rel.AddRow(row...); err != nil {
				t.Fatal(err)
			}
		}
		want := rel.MinimalKeysBrute()
		if got := rel.MinimalKeys(); !got.EqualAsFamily(want) {
			t.Fatalf("trial %d: MinimalKeys %v != brute %v", trial, got, want)
		}
		got, _, err := rel.EnumerateKeysIncrementally()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.EqualAsFamily(want) {
			t.Fatalf("trial %d: incremental %v != brute %v", trial, got, want)
		}
	}
}

// Regression: AdditionalKeyWith verifies every claimed key before the tree
// search starts; that loop must honour cancellation rather than burning
// through the whole claim list on a dead context. The full attribute set
// is a key but not minimal, so an unpolled loop would surface the
// "not a minimal key" claim error instead of the context's error.
func TestAdditionalKeyWithCancelledContext(t *testing.T) {
	r := employees()
	bogus := hypergraph.New(4)
	bogus.AddEdge(bitset.Full(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.AdditionalKeyWith(ctx, bogus, engine.Default()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AdditionalKeyWith with cancelled ctx: got err %v, want context.Canceled", err)
	}
}
