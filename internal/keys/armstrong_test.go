package keys_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/keys"
)

func attrNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("a%d", i)
	}
	return out
}

func TestArmstrongKnown(t *testing.T) {
	cases := []struct {
		name string
		n    int
		keys [][]int
	}{
		{"single key", 3, [][]int{{0}}},
		{"two singleton keys", 3, [][]int{{0}, {1}}},
		{"composite key", 4, [][]int{{0, 1}}},
		{"mixed", 4, [][]int{{0}, {1, 2}}},
		{"triangle keys", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}},
		{"full key only", 3, [][]int{{0, 1, 2}}},
	}
	for _, c := range cases {
		k := hypergraph.MustFromEdges(c.n, c.keys)
		rel, err := keys.ArmstrongRelation(k, attrNames(c.n))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := rel.MinimalKeys()
		if !got.EqualAsFamily(k) {
			t.Errorf("%s: Armstrong relation has keys %v, want %v (relation rows=%d)",
				c.name, got, k, rel.NumRows())
		}
	}
}

func TestArmstrongEmptyKey(t *testing.T) {
	k := hypergraph.New(3)
	k.AddEdgeElems() // ∅ is the unique minimal key
	rel, err := keys.ArmstrongRelation(k, attrNames(3))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", rel.NumRows())
	}
	if !rel.MinimalKeys().EqualAsFamily(k) {
		t.Error("single-row relation should have the empty key")
	}
}

func TestArmstrongValidation(t *testing.T) {
	if _, err := keys.ArmstrongRelation(hypergraph.New(3), attrNames(3)); err == nil {
		t.Error("empty key family accepted")
	}
	notAntichain := hypergraph.MustFromEdges(3, [][]int{{0}, {0, 1}})
	if _, err := keys.ArmstrongRelation(notAntichain, attrNames(3)); err == nil {
		t.Error("non-antichain accepted")
	}
	k := hypergraph.MustFromEdges(3, [][]int{{0}})
	if _, err := keys.ArmstrongRelation(k, attrNames(2)); err == nil {
		t.Error("attribute count mismatch accepted")
	}
}

func TestArmstrongRandomRoundTrip(t *testing.T) {
	// Random antichains → Armstrong relation → minimal keys must round-trip
	// exactly. This is the dualization identity tr(tr(K)) = K in action.
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(5)
		raw := hypergraph.New(n)
		m := 1 + r.Intn(4)
		for i := 0; i < m; i++ {
			e := bitset.New(n)
			for v := 0; v < n; v++ {
				if r.Intn(2) == 0 {
					e.Add(v)
				}
			}
			if e.IsEmpty() {
				e.Add(r.Intn(n))
			}
			raw.AddEdge(e)
		}
		k := raw.Minimize()
		rel, err := keys.ArmstrongRelation(k, attrNames(n))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := rel.MinimalKeys()
		if !got.EqualAsFamily(k) {
			t.Fatalf("trial %d: round trip failed: got %v want %v", trial, got, k)
		}
		// The additional-key machinery agrees: K claimed on its own
		// Armstrong relation is complete.
		res, err := rel.AdditionalKey(k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Complete {
			t.Fatalf("trial %d: Armstrong keys reported incomplete", trial)
		}
	}
}
