package keys

// Armstrong relations (Gottlob PODS 2013, §1: "Other related database
// problems equivalent to DUAL ... deal with the construction of Armstrong
// relations", citing Eiter & Gottlob [7] and Demetrovics & Thi).
//
// An Armstrong relation for a prescribed antichain K of attribute sets is
// an explicit instance whose minimal keys are exactly K. The construction
// is pure dualization: the maximal non-keys ("antikeys") of such a
// relation are the complements of the minimal transversals of K, so one
// baseline row plus one row per antikey — agreeing with the baseline
// exactly on that antikey — realizes K.

import (
	"errors"
	"fmt"

	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// ArmstrongRelation constructs a relation over the given attribute names
// whose set of minimal keys is exactly k. The family k must be a non-empty
// antichain over the attribute universe. The special case k = {∅} (the
// empty set is a key) yields a single-row relation.
//
// The construction realizes each antikey a (a maximal set containing no
// member of k, i.e. the complement of a minimal transversal of k) as a row
// that agrees with a baseline row exactly on a. Every value is a small
// string; the relation has 1 + |tr(k)| rows.
func ArmstrongRelation(k *hypergraph.Hypergraph, attrs []string) (*Relation, error) {
	if len(attrs) != k.N() {
		return nil, fmt.Errorf("keys: %d attribute names for universe %d", len(attrs), k.N())
	}
	if k.M() == 0 {
		return nil, errors.New("keys: empty key family has no Armstrong relation (every relation has a key)")
	}
	if err := k.ValidateSimple(); err != nil {
		return nil, fmt.Errorf("keys: key family must be an antichain: %w", err)
	}
	rel, err := NewRelation(attrs)
	if err != nil {
		return nil, err
	}
	n := k.N()

	// Baseline row: value "0" everywhere.
	base := make([]string, n)
	for i := range base {
		base[i] = "0"
	}
	if err := rel.AddRow(base...); err != nil {
		return nil, err
	}
	if k.M() == 1 && k.Edge(0).IsEmpty() {
		// ∅ is the unique minimal key: a single row realizes it.
		return rel, nil
	}
	if k.HasEmptyEdge() {
		return nil, errors.New("keys: ∅ can only be a key of a single-row relation; family is not an antichain")
	}

	// One row per antikey: the complement of each minimal transversal of k.
	antikeys := transversal.AsHypergraph(k).ComplementEdges()
	for i := 0; i < antikeys.M(); i++ {
		a := antikeys.Edge(i)
		row := make([]string, n)
		for j := 0; j < n; j++ {
			if a.Contains(j) {
				row[j] = "0" // agree with the baseline on the antikey
			} else {
				row[j] = fmt.Sprintf("%d", i+1) // disagree elsewhere, uniquely per row
			}
		}
		if err := rel.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
