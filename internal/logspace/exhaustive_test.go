package logspace_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dualspace/internal/logspace"
	"dualspace/internal/transversal"
)

// TestExhaustiveEqualsPruned verifies that the literal Theorem 4.1
// enumeration over ALL path descriptors produces exactly the same listing
// (same order, same attributes, same edges) as the pruned DFS decompose.
func TestExhaustiveEqualsPruned(t *testing.T) {
	g1, h1 := matching(2)
	cases := []struct {
		name string
		run  func() (a, b *logspace.Listing, err error)
	}{
		{
			"matching-2",
			func() (*logspace.Listing, *logspace.Listing, error) {
				a, err := logspace.DecomposeExhaustive(g1, h1, logspace.Options{})
				if err != nil {
					return nil, nil, err
				}
				b, err := logspace.DecomposeAll(g1, h1, logspace.Options{})
				return a, b, err
			},
		},
		{
			"matching-2-dropped",
			func() (*logspace.Listing, *logspace.Listing, error) {
				h := dropEdge(h1, 1)
				a, err := logspace.DecomposeExhaustive(g1, h, logspace.Options{})
				if err != nil {
					return nil, nil, err
				}
				b, err := logspace.DecomposeAll(g1, h, logspace.Options{})
				return a, b, err
			},
		},
	}
	for _, c := range cases {
		a, b, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		compareListings(t, c.name, a, b)
	}

	// Random tiny instances.
	r := rand.New(rand.NewSource(163))
	count := 0
	for count < 6 {
		g := randomSimple(r, 2+r.Intn(3), 1+r.Intn(2))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 || h.M() > 4 || g.N()*g.M() > 9 {
			continue // keep the exhaustive descriptor space tiny
		}
		count++
		a, err := logspace.DecomposeExhaustive(g, h, logspace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := logspace.DecomposeAll(g, h, logspace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		compareListings(t, fmt.Sprintf("random-%d", count), a, b)
	}
}

func compareListings(t *testing.T, name string, a, b *logspace.Listing) {
	t.Helper()
	if len(a.Vertices) != len(b.Vertices) {
		t.Fatalf("%s: vertex counts %d vs %d", name, len(a.Vertices), len(b.Vertices))
	}
	for i := range a.Vertices {
		av, bv := a.Vertices[i], b.Vertices[i]
		if fmt.Sprint(av.Label) != fmt.Sprint(bv.Label) || !av.S.Equal(bv.S) ||
			av.Mark != bv.Mark || !av.T.Equal(bv.T) {
			t.Fatalf("%s: vertex %d differs: %v vs %v", name, i, av, bv)
		}
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("%s: edge counts %d vs %d", name, len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if fmt.Sprint(a.Edges[i]) != fmt.Sprint(b.Edges[i]) {
			t.Fatalf("%s: edge %d differs: %v vs %v", name, i, a.Edges[i], b.Edges[i])
		}
	}
}
