// Package logspace implements Sections 3–5 of Gottlob (PODS 2013): the
// quadratic-logspace algorithms for the monotone duality problem built on
// path-descriptor recomputation over the Boros–Makino decomposition tree.
//
// # Background
//
// Lemma 4.1 of the paper gives a deterministic logspace procedure
// next(V, attr(α), i) producing the attributes of the i-th child of a tree
// node. Lemma 4.2 composes next with itself ℓ(π) ≤ ⌊log₂|H|⌋ times to get
// pathnode(I, π), which recovers any node of T(G,H) from its path
// descriptor π alone; by the pipelining construction of Lemma 3.1 this runs
// in O(log²n) space. Theorem 4.1 then lists the whole tree (decompose),
// Corollary 4.1 decides DUAL and extracts new-transversal witnesses, and
// Section 5 observes that a fail path descriptor is an O(log²n)-bit
// certificate whose verification (Lemma 5.1) is in [[LOGSPACE_pol]]^log.
//
// # Execution modes
//
// The same logical computation runs in three modes that differ only in what
// is retained per pipeline level, making the paper's space/time tradeoff
// observable (all modes must and do agree on every output):
//
//   - ModeReplay: each level stores the full node set Sα (|V| bits per
//     level). This is the natural polynomial-space implementation, fast.
//   - ModeStrict: each level retains only O(log n) bits — the child index
//     and the few registers that determine the child (rule kind, edge
//     index, kept vertex, |H_S| count). Membership queries recompute
//     through the level chain. This realizes the DSPACE[log²n] bound with
//     polynomial overhead per level.
//   - ModePipelined: nothing is cached; every membership query recomputes
//     the determining registers of every level above it, exactly the
//     bit-by-bit recomputation of the proof of Lemma 3.1. Time grows
//     multiplicatively per level (use tiny instances).
//
// All workspace retained or transiently held by the walker is accounted via
// an optional space.Meter, with the read-only input (G, H) free, as on a
// Turing machine input tape.
package logspace

import (
	"context"
	"errors"
	"fmt"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
	"dualspace/internal/space"
)

// Mode selects how much state the walker retains per tree level.
type Mode int

const (
	// ModeReplay stores the full node set per level (polynomial space).
	ModeReplay Mode = iota
	// ModeStrict stores O(log n) bits per level (quadratic logspace).
	ModeStrict
	// ModePipelined stores only the path descriptor; everything else is
	// recomputed per query (quadratic logspace, quasi-polynomial time).
	ModePipelined
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeReplay:
		return "replay"
	case ModeStrict:
		return "strict"
	case ModePipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a logspace computation.
type Options struct {
	// Mode selects the execution mode; the zero value is ModeReplay.
	Mode Mode
	// Meter, when non-nil, accounts every retained workspace bit.
	Meter *space.Meter
	// Ctx, when non-nil, cancels long searches: Decompose, FindFailPath and
	// DecomposeExhaustive poll it at every tree-node visit and return its
	// error; PathNode checks it once on entry.
	Ctx context.Context
}

// ctxCheck returns the context's error, treating a nil Ctx as background.
func (o Options) ctxCheck() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// Attr is the attribute tuple the paper associates with a node α: its label
// (path descriptor), the set Sα, the marking, and the witness t(α). The
// projected instance inst(α) is determined by Sα and the input and is not
// materialized.
//
// T is non-empty only at fail leaves; at every other node the same empty
// set is shared across the Attrs of one enumeration, so callers must treat
// T as read-only.
type Attr struct {
	Label []int
	S     bitset.Set
	Mark  core.Mark
	T     bitset.Set
}

// String renders the attribute tuple compactly.
func (a Attr) String() string {
	return fmt.Sprintf("label=%v S=%v mark=%v t=%v", a.Label, a.S, a.Mark, a.T)
}

// paramKind identifies how a child's membership predicate is built from its
// parent's.
type paramKind int

const (
	pkCase3      paramKind = iota // S − (E−{i}): process step 3
	pkCase4Minus                  // S − {i}:     process step 4
	pkCase4Edge                   // the edge H:  process step 4, last child
)

// childParams is the O(log n)-bit description of one child: together with
// the parent's membership predicate it determines the child's.
type childParams struct {
	kind paramKind
	edge int // g-edge index (pkCase3) or h-edge index (pkCase4Edge)
	keep int // kept vertex i (pkCase3, pkCase4Minus)
}

// parentCase classifies an internal node for child generation.
type parentCase struct {
	kind paramKind // pkCase3 or pkCase4Edge stands in for "case 4"
	jd   int       // chosen edge index (into g for case 3, into h for case 4)
}

// Register-count constants: each walker procedure holds a fixed number of
// O(log n)-bit registers while active, mirroring the constant-register
// frames in the proofs of Lemmas 3.1 and 4.1.
const (
	regsMember    = 2
	regsHInS      = 2
	regsHSCount   = 2
	regsMajority  = 4
	regsCandidate = 3
	regsEquality  = 2
	regsParams    = 6
	regsParentCls = 4
	regsNodeCls   = 6
)

// perLevelStrictRegs is the number of registers a strict-mode level retains:
// child index, rule kind, edge, keep, and the cached |H_S| count.
const perLevelStrictRegs = 5

type levelState struct {
	idx int // 1-based child index within the parent (unused at the root)

	hasParams bool
	params    childParams

	hsValid bool
	hsCount int

	sValid bool
	sBits  bitset.Set // ModeReplay only

	allocated int64 // metered bits to free on pop
}

// walker evaluates node predicates along a path of T(g,h).
type walker struct {
	g, h       *hypergraph.Hypergraph
	n          int
	mode       Mode
	meter      *space.Meter
	regW       int64
	levels     []*levelState
	freeLevels []*levelState // recycled levelStates (the Go-heap side of pop)
	empty      bitset.Set    // shared T of non-fail Attrs
}

// getLevel returns a zeroed levelState, recycling popped ones so the
// push/pop cycle of a tree walk stops allocating. (The space.Meter
// accounting is unaffected: metered bits are still allocated per push and
// freed per pop.)
func (w *walker) getLevel(idx int) *levelState {
	if k := len(w.freeLevels); k > 0 {
		lv := w.freeLevels[k-1]
		w.freeLevels = w.freeLevels[:k-1]
		sBits := lv.sBits
		*lv = levelState{idx: idx, sBits: sBits}
		return lv
	}
	return &levelState{idx: idx}
}

// levelSBits returns lv's full-size set, reusing recycled storage.
func (w *walker) levelSBits(lv *levelState) bitset.Set {
	if lv.sBits.Universe() != w.n {
		lv.sBits = bitset.New(w.n)
	}
	return lv.sBits
}

func newWalker(g, h *hypergraph.Hypergraph, opt Options) *walker {
	n := g.N()
	maxVal := n
	if v := g.M(); v > maxVal {
		maxVal = v
	}
	if v := h.M(); v > maxVal {
		maxVal = v
	}
	if v := n*g.M() + 1; v > maxVal {
		maxVal = v
	}
	w := &walker{
		g: g, h: h, n: n,
		mode:  opt.Mode,
		meter: opt.Meter,
		regW:  space.BitsForRange(maxVal),
		empty: bitset.New(n),
	}
	w.pushRoot()
	return w
}

func (w *walker) close() {
	for len(w.levels) > 1 {
		w.pop()
	}
	// Free the root level.
	w.meter.Free(w.levels[0].allocated)
	w.levels = nil
}

func (w *walker) depth() int { return len(w.levels) - 1 }

func (w *walker) pushRoot() {
	lv := &levelState{}
	// The root retains one register (loop bookkeeping) in every mode.
	lv.allocated = w.regW
	if w.mode == ModeStrict {
		lv.allocated = perLevelStrictRegs * w.regW
	}
	if w.mode == ModeReplay {
		lv.sBits = bitset.Full(w.n)
		lv.sValid = true
		lv.allocated = perLevelStrictRegs*w.regW + int64(w.n)
	}
	w.meter.Alloc(lv.allocated)
	w.levels = append(w.levels, lv)
}

// push descends to child idx (1-based) of the current node. It reports
// whether that child exists; on false the walker is unchanged.
func (w *walker) push(idx int) bool {
	if idx < 1 {
		return false
	}
	lv := w.getLevel(idx)
	// The path-descriptor entry itself is retained workspace in every mode.
	lv.allocated = w.regW
	if w.mode == ModeStrict {
		lv.allocated = perLevelStrictRegs * w.regW
	}
	if w.mode == ModeReplay {
		lv.allocated = perLevelStrictRegs*w.regW + int64(w.n)
	}
	w.meter.Alloc(lv.allocated)
	w.levels = append(w.levels, lv)

	d := w.depth()
	params, ok := w.computeParams(d)
	if !ok {
		w.pop()
		return false
	}
	if w.mode != ModePipelined {
		lv.hasParams = true
		lv.params = params
	}
	if w.mode == ModeReplay {
		s := w.levelSBits(lv)
		parent := w.levels[d-1]
		if parent.sValid {
			// Replay parents always materialize S, so the child's membership
			// predicate (candMember) collapses to in-place set algebra on it.
			switch params.kind {
			case pkCase3:
				parent.sBits.DiffInto(w.g.Edge(params.edge), s)
				if parent.sBits.Contains(params.keep) {
					s.Add(params.keep)
				}
			case pkCase4Minus:
				s.CopyFrom(parent.sBits)
				s.Remove(params.keep)
			case pkCase4Edge:
				s.CopyFrom(w.h.Edge(params.edge))
			}
		} else {
			s.Clear()
			for v := 0; v < w.n; v++ {
				if w.candMember(d-1, params, v) {
					s.Add(v)
				}
			}
		}
		lv.sValid = true
	}
	return true
}

func (w *walker) pop() {
	last := len(w.levels) - 1
	lv := w.levels[last]
	w.meter.Free(lv.allocated)
	w.levels = w.levels[:last]
	w.freeLevels = append(w.freeLevels, lv)
}

// memberS reports v ∈ S_d, the node set at depth d along the current path.
func (w *walker) memberS(d, v int) bool {
	if d == 0 {
		return true // the root's S is the full vertex set
	}
	lv := w.levels[d]
	if lv.sValid {
		return lv.sBits.Contains(v)
	}
	f := w.meter.Enter(regsMember * w.regW)
	defer f.Leave()
	params, ok := w.paramsAt(d)
	if !ok {
		panic("logspace: membership query on invalid level")
	}
	return w.candMember(d-1, params, v)
}

// paramsAt returns the child parameters of level d (≥ 1), cached or
// recomputed per mode.
func (w *walker) paramsAt(d int) (childParams, bool) {
	lv := w.levels[d]
	if lv.hasParams {
		return lv.params, true
	}
	return w.computeParams(d)
}

// candMember evaluates the membership predicate of the child described by
// params under the parent at depth pd.
func (w *walker) candMember(pd int, p childParams, v int) bool {
	switch p.kind {
	case pkCase3:
		// S − (E − {i}) with E = g_edge ∩ S.
		if !w.memberS(pd, v) {
			return false
		}
		return !w.g.Edge(p.edge).Contains(v) || v == p.keep
	case pkCase4Minus:
		return v != p.keep && w.memberS(pd, v)
	case pkCase4Edge:
		return w.h.Edge(p.edge).Contains(v)
	default:
		panic("logspace: bad child params")
	}
}

// hInS reports whether h-edge j is contained in S_d.
func (w *walker) hInS(d, j int) bool {
	f := w.meter.Enter(regsHInS * w.regW)
	defer f.Leave()
	return w.h.Edge(j).ForEach(func(v int) bool {
		return w.memberS(d, v)
	})
}

// hsCountAt returns |H_{S_d}|, cached per level outside pipelined mode.
func (w *walker) hsCountAt(d int) int {
	lv := w.levels[d]
	if lv.hsValid {
		return lv.hsCount
	}
	f := w.meter.Enter(regsHSCount * w.regW)
	cnt := 0
	for j := 0; j < w.h.M(); j++ {
		if w.hInS(d, j) {
			cnt++
		}
	}
	f.Leave()
	if w.mode != ModePipelined {
		lv.hsValid = true
		lv.hsCount = cnt
	}
	return cnt
}

// inMajority reports v ∈ Iα at depth d: v occurs in more than |H_S|/2 edges
// of H_S. (Membership in S is implied by positive degree.)
func (w *walker) inMajority(d, v int) bool {
	f := w.meter.Enter(regsMajority * w.regW)
	defer f.Leave()
	hs := w.hsCountAt(d)
	deg := 0
	for j := 0; j < w.h.M(); j++ {
		if w.h.Edge(j).Contains(v) && w.hInS(d, j) {
			deg++
		}
	}
	return 2*deg > hs
}

// parentClass classifies the node at depth d as a child generator. ok is
// false when the node is a leaf (no children).
func (w *walker) parentClass(d int) (parentCase, bool) {
	f := w.meter.Enter(regsParentCls * w.regW)
	defer f.Leave()
	if w.hsCountAt(d) <= 1 {
		return parentCase{}, false // marksmall leaf
	}
	// Is Iα a transversal of G_S?
	isTransversal := true
	for j := 0; j < w.g.M(); j++ {
		hit := !w.g.Edge(j).ForEach(func(v int) bool {
			return !w.inMajority(d, v)
		})
		if !hit {
			isTransversal = false
			break
		}
	}
	if !isTransversal {
		// Case 3: first g-edge whose projection misses Iα.
		for j := 0; j < w.g.M(); j++ {
			disjoint := w.g.Edge(j).ForEach(func(v int) bool {
				return !w.inMajority(d, v)
			})
			if disjoint {
				return parentCase{kind: pkCase3, jd: j}, true
			}
		}
		panic("logspace: case 3 edge vanished")
	}
	// Iα is a transversal; if it contains no H_S edge the node is a
	// process-fail leaf, otherwise case 4 applies.
	for j := 0; j < w.h.M(); j++ {
		if !w.hInS(d, j) {
			continue
		}
		contained := w.h.Edge(j).ForEach(func(v int) bool {
			return w.inMajority(d, v)
		})
		if contained {
			return parentCase{kind: pkCase4Edge, jd: j}, true
		}
	}
	return parentCase{}, false // process-fail leaf
}

// enumCandidates visits the canonical (pre-deduplication) candidate list of
// the node at depth pd under classification pc, stopping early when visit
// returns false.
func (w *walker) enumCandidates(pd int, pc parentCase, visit func(pos int, p childParams) bool) {
	f := w.meter.Enter(regsCandidate * w.regW)
	defer f.Leave()
	pos := 0
	if pc.kind == pkCase3 {
		gd := w.g.Edge(pc.jd)
		for j2 := 0; j2 < w.g.M(); j2++ {
			cont := w.g.Edge(j2).ForEach(func(i int) bool {
				if !gd.Contains(i) || !w.memberS(pd, i) {
					return true
				}
				pos++
				return visit(pos, childParams{kind: pkCase3, edge: j2, keep: i})
			})
			if !cont {
				return
			}
		}
		return
	}
	// Case 4.
	he := w.h.Edge(pc.jd)
	cont := he.ForEach(func(i int) bool {
		pos++
		return visit(pos, childParams{kind: pkCase4Minus, edge: pc.jd, keep: i})
	})
	if !cont {
		return
	}
	pos++
	visit(pos, childParams{kind: pkCase4Edge, edge: pc.jd, keep: -1})
}

// candEqual reports whether two candidates of the same parent denote the
// same vertex set.
func (w *walker) candEqual(pd int, a, b childParams) bool {
	f := w.meter.Enter(regsEquality * w.regW)
	defer f.Leave()
	for v := 0; v < w.n; v++ {
		if w.candMember(pd, a, v) != w.candMember(pd, b, v) {
			return false
		}
	}
	return true
}

// computeParams determines the child parameters for level d (≥ 1): the
// levels[d].idx-th distinct candidate of the parent. ok is false when the
// parent is a leaf or has fewer children.
func (w *walker) computeParams(d int) (childParams, bool) {
	f := w.meter.Enter(regsParams * w.regW)
	defer f.Leave()
	pd := d - 1
	pc, ok := w.parentClass(pd)
	if !ok {
		return childParams{}, false
	}
	want := w.levels[d].idx
	var result childParams
	found := false
	distinct := 0
	w.enumCandidates(pd, pc, func(pos int, p childParams) bool {
		// First-occurrence deduplication: skip p if an earlier candidate
		// denotes the same set.
		dup := false
		w.enumCandidates(pd, pc, func(pos2 int, p2 childParams) bool {
			if pos2 >= pos {
				return false
			}
			if w.candEqual(pd, p2, p) {
				dup = true
				return false
			}
			return true
		})
		if dup {
			return true
		}
		distinct++
		if distinct == want {
			result = p
			found = true
			return false
		}
		return true
	})
	return result, found
}

// childCount returns the number of (distinct) children of the node at depth
// d, which is zero for leaves.
func (w *walker) childCount(d int) int {
	f := w.meter.Enter(regsParams * w.regW)
	defer f.Leave()
	pc, ok := w.parentClass(d)
	if !ok {
		return 0
	}
	distinct := 0
	w.enumCandidates(d, pc, func(pos int, p childParams) bool {
		dup := false
		w.enumCandidates(d, pc, func(pos2 int, p2 childParams) bool {
			if pos2 >= pos {
				return false
			}
			if w.candEqual(d, p2, p) {
				dup = true
				return false
			}
			return true
		})
		if !dup {
			distinct++
		}
		return true
	})
	return distinct
}

// singletonInGS reports {i} ∈ G_{S_d}.
func (w *walker) singletonInGS(d, i int) bool {
	for j := 0; j < w.g.M(); j++ {
		e := w.g.Edge(j)
		if !e.Contains(i) || !w.memberS(d, i) {
			continue
		}
		only := e.ForEach(func(u int) bool {
			return u == i || !w.memberS(d, u)
		})
		if only {
			return true
		}
	}
	return false
}

// nodeMark classifies the node at depth d, returning its mark and — for
// fail leaves — a membership predicate for the witness t(α).
func (w *walker) nodeMark(d int) (core.Mark, func(v int) bool) {
	f := w.meter.Enter(regsNodeCls * w.regW)
	defer f.Leave()
	hs := w.hsCountAt(d)
	switch {
	case hs == 0:
		emptyInGS := false
		for j := 0; j < w.g.M(); j++ {
			allOut := w.g.Edge(j).ForEach(func(v int) bool {
				return !w.memberS(d, v)
			})
			if allOut {
				emptyInGS = true
				break
			}
		}
		if emptyInGS {
			return core.MarkDone, nil // marksmall case 2
		}
		// marksmall case 1: t = Sα.
		return core.MarkFail, func(v int) bool { return w.memberS(d, v) }
	case hs == 1:
		heIdx := -1
		for j := 0; j < w.h.M(); j++ {
			if w.hInS(d, j) {
				heIdx = j
				break
			}
		}
		missing := -1
		w.h.Edge(heIdx).ForEach(func(i int) bool {
			if !w.singletonInGS(d, i) {
				missing = i
				return false
			}
			return true
		})
		if missing < 0 {
			return core.MarkDone, nil // marksmall case 3
		}
		m := missing
		// marksmall case 4: t = Sα − {i}.
		return core.MarkFail, func(v int) bool { return v != m && w.memberS(d, v) }
	default:
		if _, ok := w.parentClass(d); ok {
			return core.MarkNil, nil // internal node
		}
		// Leaf despite |H_S| ≥ 2: either process step 2 fired (fail, t =
		// Iα) — parentClass returned false after finding Iα transversal
		// with no contained H-edge.
		return core.MarkFail, func(v int) bool { return w.inMajority(d, v) }
	}
}

// attr assembles the full attribute tuple of the current node (output-tape
// writes; the sets are materialized only for the caller).
func (w *walker) attr(label []int) Attr {
	d := w.depth()
	a := Attr{Label: append([]int(nil), label...)}
	a.S = bitset.New(w.n)
	for v := 0; v < w.n; v++ {
		if w.memberS(d, v) {
			a.S.Add(v)
		}
	}
	mark, tMember := w.nodeMark(d)
	a.Mark = mark
	a.T = w.empty
	if mark == core.MarkFail {
		a.T = bitset.New(w.n)
		for v := 0; v < w.n; v++ {
			if tMember(v) {
				a.T.Add(v)
			}
		}
	}
	return a
}

// validateInstance enforces the tree-stage input contract shared with
// core.TrSubset.
func validateInstance(g, h *hypergraph.Hypergraph) error {
	if g.N() != h.N() {
		return core.ErrUniverseMismatch
	}
	if err := g.ValidateSimple(); err != nil {
		return fmt.Errorf("logspace: g: %w", err)
	}
	if err := h.ValidateSimple(); err != nil {
		return fmt.Errorf("logspace: h: %w", err)
	}
	if g.M() == 0 || h.M() == 0 || g.HasEmptyEdge() || h.HasEmptyEdge() {
		return errors.New("logspace: constant inputs have no decomposition tree; use core.Decide")
	}
	if ok, _, _ := g.CrossIntersecting(h); !ok {
		return errors.New("logspace: instance is not cross-intersecting")
	}
	return nil
}

// PathNode computes attr(α) for the node of T(g,h) addressed by the path
// descriptor pi, or ok = false ("wrongpath") when pi addresses no node.
// This is the paper's pathnode procedure (Lemma 4.2).
func PathNode(g, h *hypergraph.Hypergraph, pi []int, opt Options) (Attr, bool, error) {
	if err := validateInstance(g, h); err != nil {
		return Attr{}, false, err
	}
	if err := opt.ctxCheck(); err != nil {
		return Attr{}, false, err
	}
	w := newWalker(g, h, opt)
	defer w.close()
	if !w.followPath(pi) {
		return Attr{}, false, nil
	}
	return w.attr(pi), true, nil
}

// followPath rewinds the walker to the root and descends along pi,
// reporting whether every entry addressed an existing child. It lets one
// walker serve many pathnode queries (DecomposeExhaustive) without paying
// walker setup per descriptor.
func (w *walker) followPath(pi []int) bool {
	for w.depth() > 0 {
		w.pop()
	}
	for _, idx := range pi {
		if !w.push(idx) {
			return false
		}
	}
	return true
}

// Listing is the output of the decompose algorithm (Theorem 4.1): the
// vertices (attribute tuples) of T(G,H) followed by its edges as pairs of
// labels.
type Listing struct {
	Vertices []Attr
	Edges    [][2][]int
}

// Decompose lists the decomposition tree T(g,h) by enumerating path
// descriptors, the algorithm of Theorem 4.1. Vertices are visited in
// depth-first label order; edges in a second pass. Either callback may be
// nil. A callback returning false aborts the enumeration early.
func Decompose(g, h *hypergraph.Hypergraph, opt Options, visitVertex func(Attr) bool, visitEdge func(parent, child []int) bool) error {
	if err := validateInstance(g, h); err != nil {
		return err
	}
	var ctxErr error
	cancelled := func() bool {
		if ctxErr == nil {
			ctxErr = opt.ctxCheck()
		}
		return ctxErr != nil
	}
	// Vertices pass.
	if visitVertex != nil {
		w := newWalker(g, h, opt)
		ok := decomposeWalk(w, nil, func(label []int) bool {
			return !cancelled() && visitVertex(w.attr(label))
		})
		w.close()
		if !ok {
			return ctxErr
		}
	}
	// Edges pass: every (π, π·i) pair of consecutive valid descriptors.
	if visitEdge != nil {
		w := newWalker(g, h, opt)
		decomposeWalk(w, nil, func(label []int) bool {
			if cancelled() {
				return false
			}
			if len(label) == 0 {
				return true
			}
			parent := label[:len(label)-1]
			return visitEdge(append([]int(nil), parent...), append([]int(nil), label...))
		})
		w.close()
	}
	return ctxErr
}

// decomposeWalk runs a DFS over valid path descriptors, calling visit at
// each node; it reports whether the walk ran to completion.
func decomposeWalk(w *walker, label []int, visit func(label []int) bool) bool {
	if !visit(label) {
		return false
	}
	for i := 1; ; i++ {
		if !w.push(i) {
			return true
		}
		done := decomposeWalk(w, append(label, i), visit)
		w.pop()
		if !done {
			return false
		}
	}
}

// DecomposeAll collects the full listing of T(g,h).
func DecomposeAll(g, h *hypergraph.Hypergraph, opt Options) (*Listing, error) {
	l := &Listing{}
	err := Decompose(g, h, opt,
		func(a Attr) bool { l.Vertices = append(l.Vertices, a); return true },
		func(p, c []int) bool { l.Edges = append(l.Edges, [2][]int{p, c}); return true },
	)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// DecomposeExhaustive is the literal algorithm of Theorem 4.1: it iterates
// over EVERY path descriptor π ∈ PD(I) — all sequences of length up to
// ⌊log₂|H|⌋ with entries in [1, |V|·|G|] — invokes pathnode on each, and
// lists the nodes whose descriptor is valid, then all consecutive valid
// pairs as edges. The descriptor space has (|V||G|)^⌊log₂|H|⌋ elements, so
// this is usable only on tiny instances; Decompose produces the identical
// listing by pruning invalid prefixes (which only ever shrinks the space
// walked, never the output), and the tests assert the equivalence.
func DecomposeExhaustive(g, h *hypergraph.Hypergraph, opt Options) (*Listing, error) {
	if err := validateInstance(g, h); err != nil {
		return nil, err
	}
	spec := Certificate(g, h)
	maxEntry := g.N() * g.M()
	l := &Listing{}
	w := newWalker(g, h, opt)
	defer w.close()

	// Vertices pass: every descriptor, in length-then-lexicographic order.
	var enumerate func(pi []int, visit func(pi []int) bool) bool
	enumerate = func(pi []int, visit func(pi []int) bool) bool {
		if !visit(pi) {
			return false
		}
		if len(pi) == spec.MaxLen {
			return true
		}
		for i := 1; i <= maxEntry; i++ {
			if !enumerate(append(pi, i), visit) {
				return false
			}
		}
		return true
	}
	var ctxErr error
	cancelled := func() bool {
		if ctxErr == nil {
			ctxErr = opt.ctxCheck()
		}
		return ctxErr != nil
	}
	enumerate(nil, func(pi []int) bool {
		if cancelled() {
			return false
		}
		if w.followPath(pi) {
			l.Vertices = append(l.Vertices, w.attr(pi))
		}
		return true
	})

	// Edges pass: all consecutive pairs (π, π·i) of valid descriptors. A
	// valid π implies a valid parent (every prefix push succeeded), so one
	// walk covers both endpoints.
	enumerate(nil, func(pi []int) bool {
		if cancelled() {
			return false
		}
		if len(pi) == 0 {
			return true
		}
		if !w.followPath(pi) {
			return true
		}
		l.Edges = append(l.Edges, [2][]int{
			append([]int{}, pi[:len(pi)-1]...),
			append([]int{}, pi...),
		})
		return true
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	return l, nil
}

// Decide determines whether tr(g) ⊆ h by scanning T(g,h) for a fail leaf
// under the selected space regime — Corollary 4.1(1). (Combined with the
// logspace precondition checks performed by core.Decide this decides DUAL.)
func Decide(g, h *hypergraph.Hypergraph, opt Options) (noFail bool, err error) {
	_, _, found, err := FindFailPath(g, h, opt)
	if err != nil {
		return false, err
	}
	return !found, nil
}

// FindFailPath searches T(g,h) depth-first for a fail leaf and returns its
// path descriptor and witness — the space-bounded witness extraction of
// Corollary 4.1(2), and simultaneously the exhaustive certificate search
// that places DUAL's complement in DSPACE[log²n] (Theorem 5.2's simulation
// of the guess-and-check procedure).
func FindFailPath(g, h *hypergraph.Hypergraph, opt Options) (pi []int, witness bitset.Set, found bool, err error) {
	if err := validateInstance(g, h); err != nil {
		return nil, bitset.Set{}, false, err
	}
	w := newWalker(g, h, opt)
	defer w.close()
	failLabel := []int{}
	failT := bitset.Set{}
	failFound := false
	var ctxErr error
	decomposeWalk(w, nil, func(label []int) bool {
		if ctxErr == nil {
			ctxErr = opt.ctxCheck()
		}
		if ctxErr != nil {
			return false
		}
		mark, tMember := w.nodeMark(w.depth())
		if mark != core.MarkFail {
			return true
		}
		failFound = true
		failLabel = append([]int{}, label...)
		failT = bitset.New(w.n)
		for v := 0; v < w.n; v++ {
			if tMember(v) {
				failT.Add(v)
			}
		}
		return false
	})
	if ctxErr != nil {
		return nil, bitset.Set{}, false, ctxErr
	}
	if !failFound {
		return nil, bitset.Set{}, false, nil
	}
	return failLabel, failT, true, nil
}

// VerifyFailPath checks a guessed certificate: it reports whether pi
// addresses a fail leaf of T(g,h), returning that leaf's attributes when it
// does. This is the checking procedure of Lemma 5.1, placing DUAL's
// complement in GC(log²n, [[LOGSPACE_pol]]^log) (Theorem 5.1).
func VerifyFailPath(g, h *hypergraph.Hypergraph, pi []int, opt Options) (bool, Attr, error) {
	a, ok, err := PathNode(g, h, pi, opt)
	if err != nil {
		return false, Attr{}, err
	}
	if !ok || a.Mark != core.MarkFail {
		return false, a, nil
	}
	return true, a, nil
}

// CertificateSpec quantifies the certificate format of Theorem 5.1 for an
// instance: a path descriptor is at most MaxLen child indices of EntryBits
// bits each, TotalBits in all.
type CertificateSpec struct {
	MaxLen    int
	EntryBits int64
	TotalBits int64
}

// Certificate returns the certificate size bound for the instance (g, h):
// length ≤ ⌊log₂|H|⌋ entries, each an index in [1, |V|·|G|].
func Certificate(g, h *hypergraph.Hypergraph) CertificateSpec {
	maxLen := 0
	for m := h.M(); m > 1; m >>= 1 {
		maxLen++
	}
	entry := space.BitsForRange(g.N() * g.M())
	return CertificateSpec{MaxLen: maxLen, EntryBits: entry, TotalBits: int64(maxLen) * entry}
}

// EncodeCertificate renders a path descriptor as the number of bits it
// occupies under the instance's certificate format (for reporting).
func EncodeCertificate(spec CertificateSpec, pi []int) int64 {
	return int64(len(pi)) * spec.EntryBits
}
