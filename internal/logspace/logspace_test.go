package logspace_test

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
	"dualspace/internal/logspace"
	"dualspace/internal/space"
	"dualspace/internal/transversal"
)

// matching returns the perfect matching hypergraph with k edges and its
// exact dual (all 2^k selections).
func matching(k int) (*hypergraph.Hypergraph, *hypergraph.Hypergraph) {
	edges := make([][]int, k)
	for i := range edges {
		edges[i] = []int{2 * i, 2*i + 1}
	}
	g := hypergraph.MustFromEdges(2*k, edges)
	return g, transversal.AsHypergraph(g)
}

func randomSimple(r *rand.Rand, n, m int) *hypergraph.Hypergraph {
	raw := hypergraph.New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				e.Add(v)
			}
		}
		if e.IsEmpty() {
			e.Add(r.Intn(n))
		}
		raw.AddEdge(e)
	}
	return raw.Minimize()
}

// dropEdge returns h without its i-th edge.
func dropEdge(h *hypergraph.Hypergraph, i int) *hypergraph.Hypergraph {
	out := hypergraph.New(h.N())
	for j := 0; j < h.M(); j++ {
		if j != i {
			out.AddEdge(h.Edge(j))
		}
	}
	return out
}

func TestPathNodeMatchesBuildTree(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 25; i++ {
		n := 2 + r.Intn(6)
		g := randomSimple(r, n, 1+r.Intn(5))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		// Occasionally perturb to a non-dual instance.
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = dropEdge(h, r.Intn(h.M()))
		}
		tree, err := core.BuildTree(g, h)
		if err != nil {
			t.Fatal(err)
		}
		tree.Walk(func(node *core.TreeNode) {
			a, ok, err := logspace.PathNode(g, h, node.Label, logspace.Options{Mode: logspace.ModeReplay})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("PathNode wrongpath for existing label %v", node.Label)
			}
			if !a.S.Equal(node.Info.S) {
				t.Fatalf("label %v: S mismatch %v vs %v", node.Label, a.S, node.Info.S)
			}
			if a.Mark != node.Info.Mark {
				t.Fatalf("label %v: mark %v vs %v", node.Label, a.Mark, node.Info.Mark)
			}
			if node.Info.Mark == core.MarkFail && !a.T.Equal(node.Info.T) {
				t.Fatalf("label %v: witness %v vs %v", node.Label, a.T, node.Info.T)
			}
		})
	}
}

func TestPathNodeWrongPath(t *testing.T) {
	g, h := matching(2)
	opt := logspace.Options{Mode: logspace.ModeReplay}
	// Child index far beyond any κ(α).
	if _, ok, err := logspace.PathNode(g, h, []int{999}, opt); err != nil || ok {
		t.Fatalf("oversized index accepted: ok=%v err=%v", ok, err)
	}
	// Zero/negative indices are never valid labels.
	if _, ok, _ := logspace.PathNode(g, h, []int{0}, opt); ok {
		t.Fatal("index 0 accepted")
	}
	// Descend past a leaf.
	tree, err := core.BuildTree(g, h)
	if err != nil {
		t.Fatal(err)
	}
	var leaf []int
	tree.Walk(func(n *core.TreeNode) {
		if n.Info.IsLeaf() && leaf == nil {
			leaf = append([]int(nil), n.Label...)
		}
	})
	if leaf == nil {
		t.Fatal("no leaf found")
	}
	if _, ok, _ := logspace.PathNode(g, h, append(leaf, 1), opt); ok {
		t.Fatal("descent past a leaf accepted")
	}
}

func TestModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 12; i++ {
		n := 2 + r.Intn(4) // tiny: pipelined mode is deliberately slow
		g := randomSimple(r, n, 1+r.Intn(3))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = dropEdge(h, r.Intn(h.M()))
		}
		tree, err := core.BuildTree(g, h)
		if err != nil {
			t.Fatal(err)
		}
		tree.Walk(func(node *core.TreeNode) {
			var attrs []logspace.Attr
			for _, mode := range []logspace.Mode{logspace.ModeReplay, logspace.ModeStrict, logspace.ModePipelined} {
				a, ok, err := logspace.PathNode(g, h, node.Label, logspace.Options{Mode: mode})
				if err != nil || !ok {
					t.Fatalf("mode %v label %v: ok=%v err=%v", mode, node.Label, ok, err)
				}
				attrs = append(attrs, a)
			}
			for _, a := range attrs[1:] {
				if !a.S.Equal(attrs[0].S) || a.Mark != attrs[0].Mark || !a.T.Equal(attrs[0].T) {
					t.Fatalf("modes disagree at %v: %v vs %v", node.Label, a, attrs[0])
				}
			}
		})
	}
}

func TestDecomposeMatchesTree(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 15; i++ {
		n := 2 + r.Intn(5)
		g := randomSimple(r, n, 1+r.Intn(4))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		tree, err := core.BuildTree(g, h)
		if err != nil {
			t.Fatal(err)
		}
		wantNodes := 0
		wantEdges := 0
		tree.Walk(func(node *core.TreeNode) {
			wantNodes++
			wantEdges += len(node.Children)
		})
		l, err := logspace.DecomposeAll(g, h, logspace.Options{Mode: logspace.ModeReplay})
		if err != nil {
			t.Fatal(err)
		}
		if len(l.Vertices) != wantNodes {
			t.Fatalf("decompose vertices %d, tree nodes %d", len(l.Vertices), wantNodes)
		}
		if len(l.Edges) != wantEdges {
			t.Fatalf("decompose edges %d, tree edges %d", len(l.Edges), wantEdges)
		}
		// Spot check: every listed vertex matches the materialized node.
		byLabel := map[string]*core.TreeNode{}
		tree.Walk(func(node *core.TreeNode) { byLabel[labelKey(node.Label)] = node })
		for _, a := range l.Vertices {
			node, ok := byLabel[labelKey(a.Label)]
			if !ok {
				t.Fatalf("decompose listed unknown label %v", a.Label)
			}
			if !a.S.Equal(node.Info.S) || a.Mark != node.Info.Mark {
				t.Fatalf("decompose attr mismatch at %v", a.Label)
			}
		}
	}
}

func labelKey(label []int) string {
	k := ""
	for _, x := range label {
		k += string(rune('A' + x%26))
		for y := x; y > 0; y /= 26 {
			k += string(rune('a' + y%26))
		}
		k += "."
	}
	return k
}

func TestFindFailPathMatchesCore(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 30; i++ {
		n := 2 + r.Intn(6)
		g := randomSimple(r, n, 1+r.Intn(5))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() < 2 {
			continue
		}
		partial := dropEdge(h, r.Intn(h.M()))
		res, err := core.TrSubset(g, partial)
		if err != nil {
			t.Fatal(err)
		}
		pi, witness, found, err := logspace.FindFailPath(g, partial, logspace.Options{Mode: logspace.ModeReplay})
		if err != nil {
			t.Fatal(err)
		}
		if !found || res.Dual {
			t.Fatalf("fail path not found for non-dual instance (found=%v coreDual=%v)", found, res.Dual)
		}
		if len(pi) != len(res.FailPath) {
			t.Fatalf("path length mismatch: %v vs %v", pi, res.FailPath)
		}
		for j := range pi {
			if pi[j] != res.FailPath[j] {
				t.Fatalf("paths differ: %v vs %v", pi, res.FailPath)
			}
		}
		if !witness.Equal(res.Witness) {
			t.Fatalf("witnesses differ: %v vs %v", witness, res.Witness)
		}
		if !g.IsNewTransversal(witness, partial) {
			t.Fatalf("invalid witness %v", witness)
		}
	}
}

func TestVerifyFailPath(t *testing.T) {
	g, h := matching(3)
	opt := logspace.Options{Mode: logspace.ModeReplay}

	// Dual instance: no descriptor verifies.
	l, err := logspace.DecomposeAll(g, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range l.Vertices {
		ok, _, err := logspace.VerifyFailPath(g, h, a.Label, opt)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("dual instance verified a fail certificate at %v", a.Label)
		}
	}

	// Non-dual: the searched certificate verifies; garbage does not.
	partial := dropEdge(h, 0)
	pi, _, found, err := logspace.FindFailPath(g, partial, opt)
	if err != nil || !found {
		t.Fatalf("no certificate: %v", err)
	}
	ok, attr, err := logspace.VerifyFailPath(g, partial, pi, opt)
	if err != nil || !ok {
		t.Fatalf("certificate rejected: %v", err)
	}
	if attr.Mark != core.MarkFail {
		t.Fatal("verified attr not a fail leaf")
	}
	if ok, _, _ := logspace.VerifyFailPath(g, partial, []int{999, 999}, opt); ok {
		t.Fatal("garbage certificate accepted")
	}
}

func TestDecideAgainstCore(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for i := 0; i < 25; i++ {
		n := 2 + r.Intn(5)
		g := randomSimple(r, n, 1+r.Intn(4))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = dropEdge(h, r.Intn(h.M()))
		}
		want, err := core.TrSubset(g, h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := logspace.Decide(g, h, logspace.Options{Mode: logspace.ModeStrict})
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Dual {
			t.Fatalf("Decide=%v core=%v for g=%v h=%v", got, want.Dual, g, h)
		}
	}
}

func TestMeterAccounting(t *testing.T) {
	g, h := matching(3)
	partial := dropEdge(h, 2)

	peaks := map[logspace.Mode]int64{}
	for _, mode := range []logspace.Mode{logspace.ModeReplay, logspace.ModeStrict} {
		m := space.NewMeter()
		_, _, found, err := logspace.FindFailPath(g, partial, logspace.Options{Mode: mode, Meter: m})
		if err != nil || !found {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if m.Live() != 0 {
			t.Fatalf("mode %v: leaked %d live bits", mode, m.Live())
		}
		if m.Peak() <= 0 {
			t.Fatalf("mode %v: no space recorded", mode)
		}
		peaks[mode] = m.Peak()
	}
	t.Logf("peaks: %v", peaks)
}

func TestStrictSpaceBelowReplayAtScale(t *testing.T) {
	// For a wide instance, per-level full sets (replay) must cost more than
	// the strict O(log n) per-level registers.
	g, h := matching(5) // n=10, depth up to 5
	partial := dropEdge(h, 7)
	peak := map[logspace.Mode]int64{}
	for _, mode := range []logspace.Mode{logspace.ModeReplay, logspace.ModeStrict} {
		m := space.NewMeter()
		if _, _, found, err := logspace.FindFailPath(g, partial, logspace.Options{Mode: mode, Meter: m}); err != nil || !found {
			t.Fatalf("mode %v: %v", mode, err)
		}
		peak[mode] = m.Peak()
	}
	if peak[logspace.ModeStrict] >= peak[logspace.ModeReplay] {
		t.Errorf("strict peak %d not below replay peak %d", peak[logspace.ModeStrict], peak[logspace.ModeReplay])
	}
}

func TestCertificateSpec(t *testing.T) {
	g, h := matching(4) // |H| = 16
	spec := logspace.Certificate(g, h)
	if spec.MaxLen != 4 {
		t.Errorf("MaxLen = %d, want 4", spec.MaxLen)
	}
	if spec.EntryBits != space.BitsForRange(g.N()*g.M()) {
		t.Errorf("EntryBits = %d", spec.EntryBits)
	}
	partial := dropEdge(h, 3)
	pi, _, found, err := logspace.FindFailPath(g, partial, logspace.Options{})
	if err != nil || !found {
		t.Fatal(err)
	}
	specP := logspace.Certificate(g, partial)
	if got := logspace.EncodeCertificate(specP, pi); got > specP.TotalBits {
		t.Errorf("certificate %v uses %d bits > bound %d", pi, got, specP.TotalBits)
	}
}

func TestValidationErrors(t *testing.T) {
	g := hypergraph.MustFromEdges(3, [][]int{{0, 1}})
	empty := hypergraph.New(3)
	if _, _, err := logspace.PathNode(g, empty, nil, logspace.Options{}); err == nil {
		t.Error("constant input accepted")
	}
	notSimple := hypergraph.MustFromEdges(3, [][]int{{0}, {0, 1}})
	if _, _, err := logspace.PathNode(g, notSimple, nil, logspace.Options{}); err == nil {
		t.Error("non-simple input accepted")
	}
	disjoint := hypergraph.MustFromEdges(3, [][]int{{2}})
	if _, _, err := logspace.PathNode(g, disjoint, nil, logspace.Options{}); err == nil {
		t.Error("non-cross-intersecting input accepted")
	}
	wrongUniverse := hypergraph.MustFromEdges(4, [][]int{{0, 1}})
	if _, _, err := logspace.PathNode(g, wrongUniverse, nil, logspace.Options{}); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func BenchmarkPathNodeReplay(b *testing.B) {
	benchmarkPathNode(b, logspace.ModeReplay)
}

func BenchmarkPathNodeStrict(b *testing.B) {
	benchmarkPathNode(b, logspace.ModeStrict)
}

func benchmarkPathNode(b *testing.B, mode logspace.Mode) {
	g, h := matching(4)
	partial := dropEdge(h, 3)
	pi, _, found, err := logspace.FindFailPath(g, partial, logspace.Options{})
	if err != nil || !found {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := logspace.PathNode(g, partial, pi, logspace.Options{Mode: mode}); err != nil || !ok {
			b.Fatal("pathnode failed")
		}
	}
}
