package logspace_test

import (
	"math/rand"
	"testing"

	"dualspace/internal/logspace"
	"dualspace/internal/space"
	"dualspace/internal/transversal"
)

// TestPropertyModesAgreeOnRandomDescriptors probes PathNode with random
// (mostly invalid) descriptors: replay and strict mode must agree on both
// validity and attributes everywhere, and meters must balance to zero.
func TestPropertyModesAgreeOnRandomDescriptors(t *testing.T) {
	r := rand.New(rand.NewSource(149))
	for trial := 0; trial < 40; trial++ {
		g := randomSimple(r, 2+r.Intn(5), 1+r.Intn(4))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = dropEdge(h, r.Intn(h.M()))
		}
		for probe := 0; probe < 10; probe++ {
			pi := make([]int, r.Intn(3))
			for i := range pi {
				pi[i] = 1 + r.Intn(6)
			}
			mR := space.NewMeter()
			aR, okR, errR := logspace.PathNode(g, h, pi, logspace.Options{Mode: logspace.ModeReplay, Meter: mR})
			mS := space.NewMeter()
			aS, okS, errS := logspace.PathNode(g, h, pi, logspace.Options{Mode: logspace.ModeStrict, Meter: mS})
			if (errR != nil) != (errS != nil) {
				t.Fatalf("error disagreement at %v: %v vs %v", pi, errR, errS)
			}
			if errR != nil {
				continue
			}
			if okR != okS {
				t.Fatalf("validity disagreement at %v: %v vs %v", pi, okR, okS)
			}
			if okR {
				if !aR.S.Equal(aS.S) || aR.Mark != aS.Mark || !aR.T.Equal(aS.T) {
					t.Fatalf("attribute disagreement at %v: %v vs %v", pi, aR, aS)
				}
			}
			if mR.Live() != 0 || mS.Live() != 0 {
				t.Fatalf("meter leak at %v: replay=%d strict=%d", pi, mR.Live(), mS.Live())
			}
		}
	}
}

// TestPropertyDecideMatchesEnumeration: the space-bounded Decide agrees
// with direct transversal comparison on random instances.
func TestPropertyDecideMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	for trial := 0; trial < 40; trial++ {
		g := randomSimple(r, 2+r.Intn(4), 1+r.Intn(4))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		want := true
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = dropEdge(h, r.Intn(h.M()))
			want = false
		}
		got, err := logspace.Decide(g, h, logspace.Options{Mode: logspace.ModeStrict})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: Decide=%v want %v", trial, got, want)
		}
	}
}
