package logspace_test

import (
	"context"
	"errors"
	"testing"

	"dualspace/internal/hypergraph"
	"dualspace/internal/logspace"
)

func TestOptionsCtxCancelled(t *testing.T) {
	g := hypergraph.MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	h := hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := logspace.Options{Mode: logspace.ModeReplay, Ctx: ctx}

	if _, _, _, err := logspace.FindFailPath(g, h, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("FindFailPath err = %v; want context.Canceled", err)
	}
	if err := logspace.Decompose(g, h, opt, func(logspace.Attr) bool { return true }, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Decompose err = %v; want context.Canceled", err)
	}
	if _, err := logspace.DecomposeAll(g, h, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("DecomposeAll err = %v; want context.Canceled", err)
	}
	if _, _, err := logspace.PathNode(g, h, nil, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("PathNode err = %v; want context.Canceled", err)
	}

	// A live context leaves every output unchanged relative to no context.
	opt.Ctx = context.Background()
	withCtx, err := logspace.DecomposeAll(g, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := logspace.DecomposeAll(g, h, logspace.Options{Mode: logspace.ModeReplay})
	if err != nil {
		t.Fatal(err)
	}
	if len(withCtx.Vertices) != len(plain.Vertices) || len(withCtx.Edges) != len(plain.Edges) {
		t.Errorf("listing changed under a live context: %d/%d vs %d/%d vertices/edges",
			len(withCtx.Vertices), len(withCtx.Edges), len(plain.Vertices), len(plain.Edges))
	}
}
