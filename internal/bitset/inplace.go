package bitset

// Destination-style operations. Each stores its result into an existing set
// of the same universe instead of allocating, so hot paths (notably the
// Boros–Makino decomposition in internal/core) can reuse scratch storage.
// The destination may alias either operand; the result is computed word by
// word and each word depends only on the corresponding operand words.
// Like the allocating counterparts, all of them panic on universe mismatch.

// CopyFrom makes dst an exact copy of src.
//
//dual:allocfree
func (dst Set) CopyFrom(src Set) {
	dst.sameUniverse(src)
	copy(dst.words, src.words)
}

// Clear removes every element from s.
//
//dual:allocfree
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// IntersectInto stores s ∩ t into dst.
//
//dual:allocfree
func (s Set) IntersectInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)] // hoist the bounds checks out of the loop
	for i := range dw {
		dw[i] = sw[i] & tw[i]
	}
}

// UnionInto stores s ∪ t into dst.
//
//dual:allocfree
func (s Set) UnionInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)] // hoist the bounds checks out of the loop
	for i := range dw {
		dw[i] = sw[i] | tw[i]
	}
}

// DiffInto stores s − t into dst.
//
//dual:allocfree
func (s Set) DiffInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)] // hoist the bounds checks out of the loop
	for i := range dw {
		dw[i] = sw[i] &^ tw[i]
	}
}

// ComplementInto stores [0,n) − s into dst.
//
//dual:allocfree
func (s Set) ComplementInto(dst Set) {
	s.sameUniverse(dst)
	dw := dst.words
	sw := s.words[:len(dw)] // hoist the bounds check out of the loop
	for i := range dw {
		dw[i] = ^sw[i]
	}
	dst.trim()
}
