package bitset

// Destination-style operations. Each stores its result into an existing set
// of the same universe instead of allocating, so hot paths (notably the
// Boros–Makino decomposition in internal/core) can reuse scratch storage.
// The destination may alias either operand; the result is computed word by
// word and each word depends only on the corresponding operand words.
// Like the allocating counterparts, all of them panic on universe mismatch.
//
// The word loops are 4-way unrolled in the slice-advance shape: each
// iteration converts the slice heads to *[4]uint64 windows under a
// `len >= 4` guard on every operand and then advances all slices by four,
// which is the form the compiler's prove pass eliminates completely — the
// only residual bounds checks are the O(1) pre/post-loop re-slices
// (verified by `dualvet -gate bce`). The four independent word ops per
// iteration keep the ALUs fed on multi-word universes.

// CopyFrom makes dst an exact copy of src.
//
//dual:allocfree
func (dst Set) CopyFrom(src Set) {
	dst.sameUniverse(src)
	copy(dst.words, src.words)
}

// Clear removes every element from s.
//
//dual:allocfree
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// IntersectInto stores s ∩ t into dst.
//
//dual:allocfree
func (s Set) IntersectInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		d4[0] = s4[0] & t4[0]
		d4[1] = s4[1] & t4[1]
		d4[2] = s4[2] & t4[2]
		d4[3] = s4[3] & t4[3]
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		dw[i] = sw[i] & tw[i]
	}
}

// UnionInto stores s ∪ t into dst.
//
//dual:allocfree
func (s Set) UnionInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		d4[0] = s4[0] | t4[0]
		d4[1] = s4[1] | t4[1]
		d4[2] = s4[2] | t4[2]
		d4[3] = s4[3] | t4[3]
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		dw[i] = sw[i] | tw[i]
	}
}

// DiffInto stores s − t into dst.
//
//dual:allocfree
func (s Set) DiffInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		d4[0] = s4[0] &^ t4[0]
		d4[1] = s4[1] &^ t4[1]
		d4[2] = s4[2] &^ t4[2]
		d4[3] = s4[3] &^ t4[3]
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		dw[i] = sw[i] &^ tw[i]
	}
}

// ComplementInto stores [0,n) − s into dst.
//
//dual:allocfree
func (s Set) ComplementInto(dst Set) {
	s.sameUniverse(dst)
	dw := dst.words
	sw := s.words[:len(dw)]
	for len(dw) >= 4 && len(sw) >= 4 {
		d4, s4 := (*[4]uint64)(dw), (*[4]uint64)(sw)
		d4[0] = ^s4[0]
		d4[1] = ^s4[1]
		d4[2] = ^s4[2]
		d4[3] = ^s4[3]
		dw, sw = dw[4:], sw[4:]
	}
	sw = sw[:len(dw)]
	for i := range dw {
		dw[i] = ^sw[i]
	}
	dst.trim()
}
