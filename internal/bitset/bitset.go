// Package bitset implements dense bit-vector sets over the universe [0, n).
//
// Set is the edge representation used throughout dualspace: hypergraph
// edges, transversals, itemsets, keys and quorums are all Sets. The zero
// value of Set is the empty set over an empty universe; most callers create
// sets with New or FromSlice so that the universe size is explicit.
//
// All binary operations (Union, Intersect, ...) require operands of the same
// universe size and panic otherwise: mixing universes is always a programming
// error in this code base, never a data error.
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe bit set. The universe size is len(words)*64 rounded
// down to the n supplied at construction; bits at positions >= n are always
// zero (maintained as an invariant by every operation).
type Set struct {
	n     int
	words []uint64
}

// New returns the empty set over the universe [0, n). n must be >= 0.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewBatch returns count empty sets over the universe [0, n) whose word
// storage is carved out of a single shared slab — two allocations total
// instead of count+1. The incidence index (internal/hypergraph) keeps one
// occurrence set per vertex; allocating them as a batch keeps index
// construction cheap and the words cache-adjacent. The sets behave exactly
// like individually allocated ones.
func NewBatch(n, count int) []Set {
	if n < 0 || count < 0 {
		panic("bitset: negative batch dimensions")
	}
	w := (n + wordBits - 1) / wordBits
	slab := make([]uint64, w*count)
	out := make([]Set, count)
	for i := range out {
		out[i] = Set{n: n, words: slab[i*w : (i+1)*w : (i+1)*w]}
	}
	return out
}

// FromSlice returns the set over [0, n) containing the given elements.
// It panics if any element is outside [0, n).
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Full returns the set containing every element of [0, n).
func Full(n int) Set {
	s := New(n)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears any bits at positions >= n.
func (s *Set) trim() {
	if len(s.words) == 0 {
		return
	}
	if r := s.n % wordBits; r != 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Universe returns the universe size n.
func (s Set) Universe() int { return s.n }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Add inserts e into s. It panics if e is outside [0, n).
func (s Set) Add(e int) {
	s.check(e)
	s.words[e/wordBits] |= 1 << uint(e%wordBits)
}

// Remove deletes e from s. It panics if e is outside [0, n).
func (s Set) Remove(e int) {
	s.check(e)
	s.words[e/wordBits] &^= 1 << uint(e%wordBits)
}

// Contains reports whether e is a member of s.
// It panics if e is outside [0, n).
func (s Set) Contains(e int) bool {
	s.check(e)
	return s.words[e/wordBits]&(1<<uint(e%wordBits)) != 0
}

func (s Set) check(e int) {
	if e < 0 || e >= s.n {
		panic(fmt.Sprintf("bitset: element %d outside universe [0,%d)", e, s.n))
	}
}

func (s Set) sameUniverse(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, t.n))
	}
}

// Len returns the cardinality of s.
func (s Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether s has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
// Sets over different universes are never equal.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t strictly.
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s and t share at least one element.
func (s Set) Intersects(t Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// TripleIntersects reports whether s ∩ t ∩ u is non-empty, without
// materializing the intersection.
func (s Set) TripleIntersects(t, u Set) bool {
	s.sameUniverse(t)
	s.sameUniverse(u)
	for i, w := range s.words {
		if w&t.words[i]&u.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t| without materializing the intersection.
func (s Set) IntersectionCount(t Set) int {
	s.sameUniverse(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// IntersectionMin returns the smallest element of s ∩ t, or -1 if the
// intersection is empty, without materializing it.
func (s Set) IntersectionMin(t Set) int {
	s.sameUniverse(t)
	for i, w := range s.words {
		if x := w & t.words[i]; x != 0 {
			return i*wordBits + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] |= w
	}
	return r
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &= w
	}
	return r
}

// Diff returns s − t as a new set.
func (s Set) Diff(t Set) Set {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &^= w
	}
	return r
}

// Complement returns [0,n) − s as a new set.
func (s Set) Complement() Set {
	r := s.Clone()
	for i := range r.words {
		r.words[i] = ^r.words[i]
	}
	r.trim()
	return r
}

// WithElem returns s ∪ {e} as a new set.
func (s Set) WithElem(e int) Set {
	r := s.Clone()
	r.Add(e)
	return r
}

// WithoutElem returns s − {e} as a new set.
func (s Set) WithoutElem(e int) Set {
	r := s.Clone()
	r.Remove(e)
	return r
}

// Min returns the smallest element of s, or -1 if s is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// MinAbsent returns the smallest element of [0, n) that is NOT in s, or -1
// if s is full. The decomposition kernel uses it to pick the first edge
// index missing from an occurrence union without materializing the
// complement.
func (s Set) MinAbsent() int {
	for i, w := range s.words {
		if w != ^uint64(0) {
			e := i*wordBits + bits.TrailingZeros64(^w)
			if e >= s.n {
				return -1
			}
			return e
		}
	}
	return -1
}

// AppendDiffElems appends the elements of s − t to buf in increasing order
// and returns the extended slice, allowing tree walkers to collect the
// vertices removed between a node and its child without allocating.
func (s Set) AppendDiffElems(t Set, buf []int) []int {
	s.sameUniverse(t)
	for i := range s.words {
		w := s.words[i] &^ t.words[i]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, i*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return buf
}

// AppendWords appends the raw words of s to buf and returns the extended
// slice. Together with AppendIntersectionWords it is the zero-allocation
// encoder behind the subinstance memo keys of internal/core.
func (s Set) AppendWords(buf []uint64) []uint64 {
	return append(buf, s.words...)
}

// AppendIntersectionWords appends the words of s ∩ t to buf without
// materializing the intersection.
func (s Set) AppendIntersectionWords(t Set, buf []uint64) []uint64 {
	s.sameUniverse(t)
	for i := range s.words {
		buf = append(buf, s.words[i]&t.words[i])
	}
	return buf
}

// Elems returns the elements of s in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls f on each element of s in increasing order until f returns
// false or the elements are exhausted. It reports whether the iteration ran
// to completion.
func (s Set) ForEach(f func(e int) bool) bool {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(i*wordBits + b) {
				return false
			}
			w &^= 1 << uint(b)
		}
	}
	return true
}

// Compare orders sets over the same universe first by their smallest
// differing element ("lexicographic as sorted element sequences with absent
// elements last"): it returns a negative number if s sorts before t, zero if
// equal, positive otherwise. The order is total and is used to canonicalize
// hypergraphs.
func (s Set) Compare(t Set) int {
	s.sameUniverse(t)
	for i := range s.words {
		x, y := s.words[i], t.words[i]
		if x == y {
			continue
		}
		d := x ^ y
		low := d & -d // lowest differing bit
		// The set containing the lowest differing element sorts first.
		if x&low != 0 {
			return -1
		}
		return 1
	}
	return 0
}

// Key returns a compact string usable as a map key identifying the set's
// contents within its universe: the raw little-endian bytes of the words.
// The encoding is injective per universe (fixed length, one 8-byte group
// per word) and allocates only the returned string.
func (s Set) Key() string {
	return string(s.AppendKey(make([]byte, 0, len(s.words)*8)))
}

// AppendKey appends the Key encoding of s to buf and returns the extended
// slice, allowing callers that dedup in a loop to reuse one buffer
// (map lookups via string(buf) then do not allocate at all).
func (s Set) AppendKey(buf []byte) []byte {
	for _, w := range s.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Hash returns a 64-bit FNV-1a hash of the set's words. Equal sets over the
// same universe hash equal; callers using Hash for deduplication must
// confirm collisions with Equal.
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range s.words {
		h ^= w
		h *= prime64
	}
	return h
}

// String renders the set as "{e1 e2 ...}" with elements in increasing order.
func (s Set) String() string {
	elems := s.Elems()
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = fmt.Sprint(e)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// SortSets sorts a slice of sets in place using Compare, with ties broken by
// cardinality (smaller first). The result is a canonical order.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		c := sets[i].Compare(sets[j])
		if c != 0 {
			return c < 0
		}
		return sets[i].Len() < sets[j].Len()
	})
}
