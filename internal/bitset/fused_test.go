package bitset

import (
	"math/rand"
	"testing"
)

// TestFusedAgreeWithTwoPass checks every fused two-in-one kernel against
// the separate-pass composition it replaces, on random sets spanning the
// unrolled (≥4 words) and tail-only regimes, including aliased
// destinations.
func TestFusedAgreeWithTwoPass(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(400)
		a, b := randomSet(r, n), randomSet(r, n)

		dst := New(n)
		if got, want := a.IntersectIntoCount(b, dst), a.Intersect(b).Len(); got != want || !dst.Equal(a.Intersect(b)) {
			t.Fatalf("IntersectIntoCount(%v, %v) = %d/%v, want %d/%v", a, b, got, dst, want, a.Intersect(b))
		}
		if got, want := a.IntersectIntoAny(b, dst), !a.Intersect(b).IsEmpty(); got != want || !dst.Equal(a.Intersect(b)) {
			t.Fatalf("IntersectIntoAny(%v, %v) = %v/%v, want %v", a, b, got, dst, want)
		}
		if got, want := a.UnionIntoCount(b, dst), a.Union(b).Len(); got != want || !dst.Equal(a.Union(b)) {
			t.Fatalf("UnionIntoCount(%v, %v) = %d/%v, want %d", a, b, got, dst, want)
		}
		if got, want := a.DiffIntoCount(b, dst), a.Diff(b).Len(); got != want || !dst.Equal(a.Diff(b)) {
			t.Fatalf("DiffIntoCount(%v, %v) = %d/%v, want %d", a, b, got, dst, want)
		}
		if got, want := a.AndNotAndCount(b), a.Diff(b).Len(); got != want {
			t.Fatalf("AndNotAndCount(%v, %v) = %d, want %d", a, b, got, want)
		}

		// Aliased destinations follow the inplace.go contract.
		alias := a.Clone()
		if got, want := alias.DiffIntoCount(b, alias), a.Diff(b).Len(); got != want || !alias.Equal(a.Diff(b)) {
			t.Fatalf("aliased DiffIntoCount = %d/%v, want %d/%v", got, alias, want, a.Diff(b))
		}
		alias = b.Clone()
		if got, want := a.UnionIntoCount(alias, alias), a.Union(b).Len(); got != want || !alias.Equal(a.Union(b)) {
			t.Fatalf("aliased UnionIntoCount = %d/%v, want %d", got, alias, want)
		}
	}
}

// TestFusedEdgeCases covers empty/full operands and the n%256 boundaries
// where the unroll tail changes length.
func TestFusedEdgeCases(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 255, 256, 257, 320} {
		full, empty := Full(n), New(n)
		dst := New(n)
		if got := full.IntersectIntoCount(full, dst); got != n || !dst.Equal(full) {
			t.Fatalf("n=%d: full∩full count = %d", n, got)
		}
		if got := full.DiffIntoCount(empty, dst); got != n {
			t.Fatalf("n=%d: full−∅ count = %d", n, got)
		}
		if full.IntersectIntoAny(empty, dst) || !dst.IsEmpty() {
			t.Fatalf("n=%d: full∩∅ reported non-empty", n)
		}
		if got := empty.UnionIntoCount(full, dst); got != n {
			t.Fatalf("n=%d: ∅∪full count = %d", n, got)
		}
		if got := full.AndNotAndCount(full); got != 0 {
			t.Fatalf("n=%d: full−full count-only = %d", n, got)
		}
	}
}

// TestAddToCounts checks the de-closured increment sweep against ForEach.
func TestAddToCounts(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(300)
		s := randomSet(r, n)
		got := make([]int32, n)
		want := make([]int32, n)
		s.AddToCounts(got, 2)
		s.AddToCounts(got, -1)
		s.ForEach(func(e int) bool {
			want[e]++
			return true
		})
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("AddToCounts mismatch at %d: %d != %d (s=%v)", v, got[v], want[v], s)
			}
		}
	}
}

// TestIntersectionCountsInto checks the occurrence-slab popcount batch
// against per-row IntersectionCount, on NewBatch slabs like the ones
// hypergraph.Index hands it.
func TestIntersectionCountsInto(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(300)
		rows := NewBatch(n, 1+r.Intn(20))
		for _, row := range rows {
			row.CopyFrom(randomSet(r, n))
		}
		q := randomSet(r, n)
		out := make([]int32, len(rows))
		IntersectionCountsInto(rows, q, out)
		for j, row := range rows {
			if int(out[j]) != row.IntersectionCount(q) {
				t.Fatalf("row %d: batch count %d != %d", j, out[j], row.IntersectionCount(q))
			}
		}
	}
	// Short out must panic before any row is counted.
	defer func() {
		if recover() == nil {
			t.Fatal("short out slice did not panic")
		}
	}()
	IntersectionCountsInto(NewBatch(8, 3), New(8), make([]int32, 2))
}
