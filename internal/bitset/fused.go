package bitset

// Fused two-in-one kernels. Each op computes a reduction (popcount,
// emptiness) in the SAME pass that materializes the word-parallel result —
// or, for the count-only variants, skips materializing entirely — so hot
// paths that used to pay two sweeps over the words (an Into op followed by
// Len/Min/IsEmpty) pay one. Like inplace.go, the loops are 4-way unrolled
// in the slice-advance shape (*[4]uint64 windows under `len >= 4` guards,
// then advance every slice by four), which the compiler's prove pass strips
// of all in-loop bounds checks — only the O(1) pre/post-loop re-slices
// remain (verified by `dualvet -gate bce`).
//
// Aliasing follows the inplace.go contract: the destination may alias
// either operand (each output word depends only on the corresponding
// operand words), and the same //dual:allow(bitsetalias) discipline applies
// at accumulation call sites. All ops panic on universe mismatch.

import "math/bits"

// IntersectIntoCount stores s ∩ t into dst and returns |s ∩ t|.
//
//dual:allocfree
func (s Set) IntersectIntoCount(t, dst Set) int {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	c := 0
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		w0 := s4[0] & t4[0]
		w1 := s4[1] & t4[1]
		w2 := s4[2] & t4[2]
		w3 := s4[3] & t4[3]
		d4[0], d4[1], d4[2], d4[3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		w := sw[i] & tw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectIntoAny stores s ∩ t into dst and reports whether it is
// non-empty, letting running-intersection loops stop as soon as the
// intersection dies.
//
//dual:allocfree
func (s Set) IntersectIntoAny(t, dst Set) bool {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	var any uint64
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		w0 := s4[0] & t4[0]
		w1 := s4[1] & t4[1]
		w2 := s4[2] & t4[2]
		w3 := s4[3] & t4[3]
		d4[0], d4[1], d4[2], d4[3] = w0, w1, w2, w3
		any |= w0 | w1 | w2 | w3
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		w := sw[i] & tw[i]
		dw[i] = w
		any |= w
	}
	return any != 0
}

// UnionIntoCount stores s ∪ t into dst and returns |s ∪ t|, letting
// covering-probe accumulations (occurrence-row unions tested against the
// edge count) detect saturation without a separate Len pass.
//
//dual:allocfree
func (s Set) UnionIntoCount(t, dst Set) int {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	c := 0
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		w0 := s4[0] | t4[0]
		w1 := s4[1] | t4[1]
		w2 := s4[2] | t4[2]
		w3 := s4[3] | t4[3]
		d4[0], d4[1], d4[2], d4[3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		w := sw[i] | tw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// DiffIntoCount stores s − t into dst and returns |s − t| — the fused form
// of the kernel's fail probe (H_Sα minus the not-contained rows, empty ⇔
// fail).
//
//dual:allocfree
func (s Set) DiffIntoCount(t, dst Set) int {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	dw := dst.words
	sw, tw := s.words[:len(dw)], t.words[:len(dw)]
	c := 0
	for len(dw) >= 4 && len(sw) >= 4 && len(tw) >= 4 {
		d4, s4, t4 := (*[4]uint64)(dw), (*[4]uint64)(sw), (*[4]uint64)(tw)
		w0 := s4[0] &^ t4[0]
		w1 := s4[1] &^ t4[1]
		w2 := s4[2] &^ t4[2]
		w3 := s4[3] &^ t4[3]
		d4[0], d4[1], d4[2], d4[3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
		dw, sw, tw = dw[4:], sw[4:], tw[4:]
	}
	sw, tw = sw[:len(dw)], tw[:len(dw)]
	for i := range dw {
		w := sw[i] &^ tw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndNotAndCount returns |s − t| without materializing the difference — the
// count-only AndNot for scoring loops that need the size of a residual but
// never the set itself.
//
//dual:allocfree
func (s Set) AndNotAndCount(t Set) int {
	s.sameUniverse(t)
	sw := s.words
	tw := t.words[:len(sw)]
	c := 0
	for len(sw) >= 4 && len(tw) >= 4 {
		s4, t4 := (*[4]uint64)(sw), (*[4]uint64)(tw)
		c += bits.OnesCount64(s4[0]&^t4[0]) + bits.OnesCount64(s4[1]&^t4[1]) +
			bits.OnesCount64(s4[2]&^t4[2]) + bits.OnesCount64(s4[3]&^t4[3])
		sw, tw = sw[4:], tw[4:]
	}
	tw = tw[:len(sw)]
	for i := range sw {
		c += bits.OnesCount64(sw[i] &^ tw[i])
	}
	return c
}

// AddToCounts adds delta to counts[e] for every e ∈ s — the de-closured
// form of a ForEach increment sweep, used by the kernel's degree
// maintenance. counts must have at least Universe() entries.
//
//dual:allocfree
func (s Set) AddToCounts(counts []int32, delta int32) {
	for i, w := range s.words {
		base := i * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			counts[base+b] += delta
			w &^= 1 << uint(b)
		}
	}
}

// IntersectionCountsInto stores |rows[i] ∩ t| into out[i] for every row —
// one `math/bits` popcount batch over an occurrence-row slab (the rows of a
// hypergraph.Index share one backing array, so this sweep is sequential in
// memory). Every row must share t's universe; len(out) must be at least
// len(rows).
//
//dual:allocfree
func IntersectionCountsInto(rows []Set, t Set, out []int32) {
	out = out[:len(rows)]
	for r, row := range rows {
		row.sameUniverse(t)
		rw := row.words
		tw := t.words[:len(rw)]
		c := 0
		for len(rw) >= 4 && len(tw) >= 4 {
			r4, t4 := (*[4]uint64)(rw), (*[4]uint64)(tw)
			c += bits.OnesCount64(r4[0]&t4[0]) + bits.OnesCount64(r4[1]&t4[1]) +
				bits.OnesCount64(r4[2]&t4[2]) + bits.OnesCount64(r4[3]&t4[3])
			rw, tw = rw[4:], tw[4:]
		}
		tw = tw[:len(rw)]
		for i := range rw {
			c += bits.OnesCount64(rw[i] & tw[i])
		}
		out[r] = int32(c)
	}
}
