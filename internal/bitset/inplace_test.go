package bitset

import (
	"math/rand"
	"testing"
)

// TestInPlaceAgreesWithAllocating checks every destination-style op against
// its allocating counterpart on random sets, including aliased destinations.
func TestInPlaceAgreesWithAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)

		dst := New(n)
		a.IntersectInto(b, dst)
		if !dst.Equal(a.Intersect(b)) {
			t.Fatalf("IntersectInto(%v, %v) = %v", a, b, dst)
		}
		a.UnionInto(b, dst)
		if !dst.Equal(a.Union(b)) {
			t.Fatalf("UnionInto(%v, %v) = %v", a, b, dst)
		}
		a.DiffInto(b, dst)
		if !dst.Equal(a.Diff(b)) {
			t.Fatalf("DiffInto(%v, %v) = %v", a, b, dst)
		}
		a.ComplementInto(dst)
		if !dst.Equal(a.Complement()) {
			t.Fatalf("ComplementInto(%v) = %v", a, dst)
		}
		dst.CopyFrom(a)
		if !dst.Equal(a) {
			t.Fatalf("CopyFrom(%v) = %v", a, dst)
		}
		dst.Clear()
		if !dst.IsEmpty() {
			t.Fatalf("Clear left %v", dst)
		}

		// Aliased destination: dst == first operand.
		want := a.Diff(b)
		alias := a.Clone()
		alias.DiffInto(b, alias)
		if !alias.Equal(want) {
			t.Fatalf("aliased DiffInto(%v, %v) = %v, want %v", a, b, alias, want)
		}
		want = a.Intersect(b)
		alias = b.Clone()
		a.IntersectInto(alias, alias)
		if !alias.Equal(want) {
			t.Fatalf("aliased IntersectInto(%v, %v) = %v, want %v", a, b, alias, want)
		}

		// Query helpers against their materializing definitions.
		if got, w := a.IntersectionCount(b), a.Intersect(b).Len(); got != w {
			t.Fatalf("IntersectionCount(%v, %v) = %d, want %d", a, b, got, w)
		}
		if got, w := a.IntersectionMin(b), a.Intersect(b).Min(); got != w {
			t.Fatalf("IntersectionMin(%v, %v) = %d, want %d", a, b, got, w)
		}
		c := randomSet(r, n)
		if got, w := a.TripleIntersects(b, c), a.Intersect(b).Intersects(c); got != w {
			t.Fatalf("TripleIntersects(%v, %v, %v) = %v, want %v", a, b, c, got, w)
		}
	}
}

func TestInPlaceCrossUniversePanics(t *testing.T) {
	a, b, dst := New(10), New(11), New(10)
	cases := map[string]func(){
		"IntersectInto-op":  func() { a.IntersectInto(b, dst) },
		"IntersectInto-dst": func() { a.IntersectInto(dst, b) },
		"UnionInto":         func() { a.UnionInto(b, dst) },
		"DiffInto":          func() { a.DiffInto(b, dst) },
		"ComplementInto":    func() { a.ComplementInto(b) },
		"CopyFrom":          func() { dst.CopyFrom(b) },
		"IntersectionCount": func() { a.IntersectionCount(b) },
		"IntersectionMin":   func() { a.IntersectionMin(b) },
		"TripleIntersects":  func() { a.TripleIntersects(dst, b) },
		"PoolPut":           func() { NewPool(10).Put(b) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s across universes did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(70)
	s := p.Get()
	if s.Universe() != 70 || !s.IsEmpty() {
		t.Fatalf("fresh pool set: %v over %d", s, s.Universe())
	}
	s.Add(3)
	s.Add(69)
	p.Put(s)
	u := p.Get()
	if !u.IsEmpty() {
		t.Fatalf("recycled set not cleared: %v", u)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		w := p.Get()
		w.Add(1)
		p.Put(w)
	}); allocs != 0 {
		t.Errorf("warm Get/Put allocates %.1f per run, want 0", allocs)
	}
}

func TestHashAgreesWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(200)
		a := randomSet(r, n)
		if a.Hash() != a.Clone().Hash() {
			t.Fatal("clone hash differs")
		}
	}
}

func TestKeyInjectiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	seen := map[string]Set{}
	for i := 0; i < 500; i++ {
		s := randomSet(r, 130)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("Key collision: %v vs %v", prev, s)
		}
		seen[k] = s
		if string(s.AppendKey(nil)) != k {
			t.Fatal("AppendKey disagrees with Key")
		}
	}
}
