package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		if got := s.Len(); got != 0 {
			t.Errorf("New(%d).Len() = %d, want 0", n, got)
		}
		if !s.IsEmpty() {
			t.Errorf("New(%d) not empty", n)
		}
		if got := s.Universe(); got != n {
			t.Errorf("Universe() = %d, want %d", got, n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, e := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(e) {
			t.Errorf("fresh set contains %d", e)
		}
		s.Add(e)
		if !s.Contains(e) {
			t.Errorf("after Add(%d), Contains is false", e)
		}
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Remove(64) did not remove")
	}
	s.Remove(64) // removing absent element is a no-op
	if got := s.Len(); got != 7 {
		t.Fatalf("Len after remove = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, f := range map[string]func(){
		"Add":      func() { s.Add(10) },
		"AddNeg":   func() { s.Add(-1) },
		"Contains": func() { s.Contains(11) },
		"Remove":   func() { s.Remove(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Union across universes did not panic")
		}
	}()
	a.Union(b)
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 100} {
		f := Full(n)
		if got := f.Len(); got != n {
			t.Errorf("Full(%d).Len() = %d", n, got)
		}
		if n > 0 && !f.Contains(n-1) {
			t.Errorf("Full(%d) missing %d", n, n-1)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 5, 70, 99})
	b := FromSlice(100, []int{5, 6, 70})
	if got := a.Union(b).Elems(); len(got) != 5 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Elems(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Errorf("Intersect = %v, want [5 70]", got)
	}
	if got := a.Diff(b).Elems(); len(got) != 2 || got[0] != 1 || got[1] != 99 {
		t.Errorf("Diff = %v, want [1 99]", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.Intersects(FromSlice(100, []int{2, 3})) {
		t.Error("Intersects disjoint = true")
	}
	c := a.Complement()
	if c.Contains(1) || !c.Contains(0) || c.Len() != 96 {
		t.Errorf("Complement wrong: len=%d", c.Len())
	}
}

func TestSubset(t *testing.T) {
	a := FromSlice(64, []int{1, 2, 3})
	b := FromSlice(64, []int{1, 2, 3, 4})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !a.SubsetOf(a) {
		t.Error("SubsetOf not reflexive")
	}
	if !a.ProperSubsetOf(b) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf wrong")
	}
	empty := New(64)
	if !empty.SubsetOf(a) {
		t.Error("empty not subset")
	}
}

func TestWithWithout(t *testing.T) {
	a := FromSlice(10, []int{1, 2})
	b := a.WithElem(3)
	if a.Contains(3) {
		t.Error("WithElem mutated receiver")
	}
	if !b.Contains(3) {
		t.Error("WithElem missing element")
	}
	c := b.WithoutElem(1)
	if !b.Contains(1) || c.Contains(1) {
		t.Error("WithoutElem wrong")
	}
}

func TestMinElems(t *testing.T) {
	if got := New(50).Min(); got != -1 {
		t.Errorf("empty Min = %d", got)
	}
	s := FromSlice(200, []int{150, 64, 3})
	if got := s.Min(); got != 3 {
		t.Errorf("Min = %d", got)
	}
	if got := s.Elems(); got[0] != 3 || got[1] != 64 || got[2] != 150 {
		t.Errorf("Elems = %v", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(10, []int{1, 2, 3})
	var seen []int
	done := s.ForEach(func(e int) bool {
		seen = append(seen, e)
		return e < 2
	})
	if done {
		t.Error("ForEach reported completion despite early stop")
	}
	if len(seen) != 2 {
		t.Errorf("seen = %v", seen)
	}
	if !s.ForEach(func(int) bool { return true }) {
		t.Error("full iteration should report true")
	}
}

func TestCompare(t *testing.T) {
	mk := func(es ...int) Set { return FromSlice(100, es) }
	cases := []struct {
		a, b Set
		want int // sign
	}{
		{mk(1), mk(2), -1},
		{mk(2), mk(1), 1},
		{mk(1, 2), mk(1, 3), -1},
		{mk(1, 2), mk(1, 2), 0},
		{mk(), mk(1), 1},      // absent elements last: {} sorts after {1}
		{mk(1), mk(1, 5), -1}, // {1} vs {1,5}: 5 present only in b => b first?
	}
	// Recompute expectation for the last case: lowest differing element is 5,
	// present in b, so b sorts before a => Compare(a,b) > 0.
	cases[5].want = 1
	for i, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, want sign %d", i, c.a, c.b, got, c.want)
		}
		if sign(c.a.Compare(c.b)) != -sign(c.b.Compare(c.a)) {
			t.Errorf("case %d: Compare not antisymmetric", i)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestKeyDistinct(t *testing.T) {
	a := FromSlice(128, []int{0, 127})
	b := FromSlice(128, []int{0, 126})
	if a.Key() == b.Key() {
		t.Error("distinct sets share Key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone Key differs")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{3, 1}).String(); got != "{1 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickAlgebraLaws(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(150)
		a, b, c := randomSet(r, n), randomSet(r, n), randomSet(r, n)
		// De Morgan
		if !a.Union(b).Complement().Equal(a.Complement().Intersect(b.Complement())) {
			t.Fatal("De Morgan (union) violated")
		}
		// Distributivity
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			t.Fatal("distributivity violated")
		}
		// Diff as intersection with complement
		if !a.Diff(b).Equal(a.Intersect(b.Complement())) {
			t.Fatal("diff law violated")
		}
		// Double complement
		if !a.Complement().Complement().Equal(a) {
			t.Fatal("double complement violated")
		}
		// Subset consistency
		if a.SubsetOf(b) != a.Union(b).Equal(b) {
			t.Fatal("subset law violated")
		}
		// Cardinality: |a| + |b| = |a∪b| + |a∩b|
		if a.Len()+b.Len() != a.Union(b).Len()+a.Intersect(b).Len() {
			t.Fatal("inclusion-exclusion violated")
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 300
		elems := make([]int, 0, len(raw))
		for _, v := range raw {
			elems = append(elems, int(v)%n)
		}
		s := FromSlice(n, elems)
		// Round trip through Elems
		back := FromSlice(n, s.Elems())
		return back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersects(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	a := randomSet(r, 1024)
	c := randomSet(r, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Intersects(c)
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	a := randomSet(r, 1024)
	c := a.Union(randomSet(r, 1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.SubsetOf(c)
	}
}
