package bitset

import "fmt"

// Pool is a free list of scratch sets over a single universe. It lets hot
// loops borrow temporary sets without allocating once the pool has warmed
// up. Get returns an empty set; Put recycles one (its contents need not be
// cleared by the caller).
//
// A Pool is NOT safe for concurrent use: concurrent code must keep one Pool
// per worker. internal/transversal's Berge multiplication is the canonical
// consumer.
type Pool struct {
	n    int
	free []Set
}

// NewPool returns an empty pool of sets over the universe [0, n).
func NewPool(n int) *Pool {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Pool{n: n}
}

// Universe returns the universe size of the pool's sets.
func (p *Pool) Universe() int { return p.n }

// Get returns an empty set over the pool's universe, reusing a recycled set
// when one is available.
func (p *Pool) Get() Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		s.Clear()
		return s
	}
	return New(p.n)
}

// Put recycles s into the pool. It panics if s is over a different universe:
// returning a foreign set would hand its storage to a later Get.
func (p *Pool) Put(s Set) {
	if s.n != p.n {
		panic(fmt.Sprintf("bitset: Pool universe mismatch %d != %d", s.n, p.n))
	}
	p.free = append(p.free, s)
}
