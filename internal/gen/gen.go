// Package gen generates the instance families used by dualspace's tests,
// examples and experiments: classical dual pairs with known structure,
// self-dual families, seeded random instances with ground truth, and
// perturbations that produce non-dual instances with known witnesses.
//
// All randomness is seeded math/rand; every family is reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// Matching returns the perfect matching M(k): k disjoint edges {2i, 2i+1}
// over 2k vertices. Its dual has 2^k edges (one vertex per edge), the
// classical exponential-blowup example.
func Matching(k int) *hypergraph.Hypergraph {
	h := hypergraph.New(2 * k)
	for i := 0; i < k; i++ {
		h.AddEdgeElems(2*i, 2*i+1)
	}
	return h
}

// MatchingDual returns tr(M(k)) explicitly: all 2^k selections of one
// vertex per matching edge, in mask order.
func MatchingDual(k int) *hypergraph.Hypergraph {
	h := hypergraph.New(2 * k)
	for mask := 0; mask < 1<<uint(k); mask++ {
		e := bitset.New(2 * k)
		for i := 0; i < k; i++ {
			v := 2 * i
			if mask&(1<<uint(i)) != 0 {
				v++
			}
			e.Add(v)
		}
		h.AddEdge(e)
	}
	return h
}

// Threshold returns T(n, k): all k-subsets of [0, n). Its dual is
// T(n, n−k+1). Requires 1 ≤ k ≤ n.
func Threshold(n, k int) *hypergraph.Hypergraph {
	if k < 1 || k > n {
		panic(fmt.Sprintf("gen: Threshold(%d,%d) out of range", n, k))
	}
	h := hypergraph.New(n)
	cur := make([]int, 0, k)
	var build func(start int)
	build = func(start int) {
		if len(cur) == k {
			h.AddEdgeElems(cur...)
			return
		}
		for v := start; v <= n-(k-len(cur)); v++ {
			cur = append(cur, v)
			build(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	build(0)
	return h
}

// ThresholdDual returns the dual of T(n, k), which is T(n, n−k+1).
func ThresholdDual(n, k int) *hypergraph.Hypergraph {
	return Threshold(n, n-k+1)
}

// Majority returns the self-dual majority hypergraph on odd n: all
// ⌈n/2⌉-subsets.
func Majority(n int) *hypergraph.Hypergraph {
	if n%2 == 0 {
		panic("gen: Majority requires odd n")
	}
	return Threshold(n, n/2+1)
}

// SelfDualize applies the classical self-dualization: given (g, h) over
// [0, n) it returns the hypergraph over [0, n+2)
//
//	{x, y} ∪ { e ∪ {x} : e ∈ g } ∪ { e ∪ {y} : e ∈ h }
//
// with x = n, y = n+1, which is self-dual iff (g, h) is a dual pair. Both
// inputs must be simple, non-constant and over the same universe.
func SelfDualize(g, h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	if g.N() != h.N() {
		panic("gen: SelfDualize universe mismatch")
	}
	n := g.N()
	x, y := n, n+1
	out := hypergraph.New(n + 2)
	out.AddEdgeElems(x, y)
	lift := func(src *hypergraph.Hypergraph, extra int) {
		for _, e := range src.Edges() {
			lifted := bitset.New(n + 2)
			e.ForEach(func(v int) bool { lifted.Add(v); return true })
			lifted.Add(extra)
			out.AddEdge(lifted)
		}
	}
	lift(g, x)
	lift(h, y)
	return out
}

// Random returns a random simple hypergraph over [0, n) with up to m edges,
// each vertex included independently with probability p (empty draws are
// patched with one random vertex), then minimized.
func Random(r *rand.Rand, n, m int, p float64) *hypergraph.Hypergraph {
	raw := hypergraph.New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Float64() < p {
				e.Add(v)
			}
		}
		if e.IsEmpty() {
			e.Add(r.Intn(n))
		}
		raw.AddEdge(e)
	}
	return raw.Minimize()
}

// RandomDualPair returns a random simple hypergraph and its exact dual
// (computed by transversal enumeration — keep n and m moderate).
func RandomDualPair(r *rand.Rand, n, m int, p float64) (g, h *hypergraph.Hypergraph) {
	g = Random(r, n, m, p)
	return g, transversal.AsHypergraph(g)
}

// DropEdge returns h without its i-th edge — the standard perturbation that
// makes an exact dual incomplete (one missing minimal transversal).
func DropEdge(h *hypergraph.Hypergraph, i int) *hypergraph.Hypergraph {
	out := hypergraph.New(h.N())
	for j := 0; j < h.M(); j++ {
		if j != i {
			out.AddEdge(h.Edge(j))
		}
	}
	return out
}

// Pair is a named instance of the DUAL problem with a known answer.
type Pair struct {
	Name string
	G, H *hypergraph.Hypergraph
	// Dual records the ground truth for the pair.
	Dual bool
}

// Families returns the standard suite of dual and non-dual instances used
// across the experiments: matchings, thresholds, majorities, self-dualized
// matchings, random pairs, and dropped-edge perturbations. All instances
// are exact (ground truth by construction or by enumeration).
func Families(seed int64) []Pair {
	r := rand.New(rand.NewSource(seed))
	var out []Pair
	for k := 2; k <= 5; k++ {
		g := Matching(k)
		h := MatchingDual(k)
		out = append(out, Pair{Name: fmt.Sprintf("matching-%d", k), G: g, H: h, Dual: true})
		out = append(out, Pair{
			Name: fmt.Sprintf("matching-%d-dropped", k),
			G:    g, H: DropEdge(h, r.Intn(h.M())), Dual: false,
		})
	}
	for _, nk := range [][2]int{{5, 2}, {6, 3}, {7, 3}} {
		n, k := nk[0], nk[1]
		out = append(out, Pair{
			Name: fmt.Sprintf("threshold-%d-%d", n, k),
			G:    Threshold(n, k), H: ThresholdDual(n, k), Dual: true,
		})
	}
	for _, n := range []int{3, 5, 7} {
		m := Majority(n)
		out = append(out, Pair{Name: fmt.Sprintf("majority-%d", n), G: m, H: m, Dual: true})
	}
	sd := SelfDualize(Matching(2), MatchingDual(2))
	out = append(out, Pair{Name: "selfdualized-matching-2", G: sd, H: sd, Dual: true})
	for i := 0; i < 4; i++ {
		g, h := RandomDualPair(r, 6+r.Intn(3), 3+r.Intn(4), 0.35)
		if g.M() == 0 || h.M() == 0 || g.HasEmptyEdge() {
			continue
		}
		out = append(out, Pair{Name: fmt.Sprintf("random-%d", i), G: g, H: h, Dual: true})
		if h.M() >= 2 {
			out = append(out, Pair{
				Name: fmt.Sprintf("random-%d-dropped", i),
				G:    g, H: DropEdge(h, r.Intn(h.M())), Dual: false,
			})
		}
	}
	return out
}
