package gen_test

import (
	"math/rand"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/transversal"
)

func TestMatching(t *testing.T) {
	for k := 1; k <= 5; k++ {
		g := gen.Matching(k)
		if g.M() != k || g.N() != 2*k {
			t.Fatalf("k=%d: M=%d N=%d", k, g.M(), g.N())
		}
		h := gen.MatchingDual(k)
		if h.M() != 1<<uint(k) {
			t.Fatalf("k=%d: dual has %d edges", k, h.M())
		}
		if !h.EqualAsFamily(transversal.AsHypergraph(g)) {
			t.Fatalf("k=%d: explicit dual != tr", k)
		}
	}
}

func TestThresholdDuality(t *testing.T) {
	for _, nk := range [][2]int{{4, 2}, {5, 2}, {5, 3}, {6, 3}} {
		n, k := nk[0], nk[1]
		g := gen.Threshold(n, k)
		h := gen.ThresholdDual(n, k)
		if !h.EqualAsFamily(transversal.AsHypergraph(g)) {
			t.Fatalf("T(%d,%d): explicit dual wrong", n, k)
		}
		res, err := core.Decide(g, h)
		if err != nil || !res.Dual {
			t.Fatalf("T(%d,%d): core rejects (%v, %v)", n, k, res, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Threshold(3,0) did not panic")
		}
	}()
	gen.Threshold(3, 0)
}

func TestMajoritySelfDual(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		m := gen.Majority(n)
		res, err := core.Decide(m, m)
		if err != nil || !res.Dual {
			t.Fatalf("majority(%d) not self-dual: %v %v", n, res, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Majority(4) did not panic")
		}
	}()
	gen.Majority(4)
}

func TestSelfDualize(t *testing.T) {
	// Dual input pair → self-dual output.
	g, h := gen.Matching(2), gen.MatchingDual(2)
	sd := gen.SelfDualize(g, h)
	if !sd.IsSimple() {
		t.Fatal("self-dualization not simple")
	}
	res, err := core.Decide(sd, sd)
	if err != nil || !res.Dual {
		t.Fatalf("SelfDualize(dual pair) not self-dual: %v %v", res, err)
	}
	// Non-dual input pair → not self-dual.
	bad := gen.SelfDualize(g, gen.DropEdge(h, 0))
	res, err = core.Decide(bad, bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dual {
		t.Fatal("SelfDualize(non-dual pair) claims self-dual")
	}
}

func TestRandomDualPair(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		g, h := gen.RandomDualPair(r, 6, 4, 0.4)
		if g.M() == 0 {
			continue
		}
		res, err := core.Decide(g, h)
		if err != nil || !res.Dual {
			t.Fatalf("random pair not dual: %v %v", res, err)
		}
	}
}

func TestReproducibility(t *testing.T) {
	a := gen.Families(7)
	b := gen.Families(7)
	if len(a) != len(b) {
		t.Fatal("family count differs across runs")
	}
	for i := range a {
		if a[i].Name != b[i].Name || !a[i].G.EqualAsFamily(b[i].G) || !a[i].H.EqualAsFamily(b[i].H) {
			t.Fatalf("family %d not reproducible", i)
		}
	}
}

func TestFamiliesGroundTruth(t *testing.T) {
	for _, p := range gen.Families(11) {
		res, err := core.Decide(p.G, p.H)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Dual != p.Dual {
			t.Errorf("%s: Decide=%v, ground truth %v", p.Name, res.Dual, p.Dual)
		}
	}
}
