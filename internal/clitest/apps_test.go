package clitest

// Deeper end-to-end coverage of the three application CLIs (mineborders,
// keyscan, coteriecheck) and of dualbench's machine-readable output:
// error paths, flag combinations and border conventions the basic tests in
// cli_test.go do not reach.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestMinebordersEdgeCases(t *testing.T) {
	data := writeFile(t, "tx.txt", "a b\na b\nb c\n")

	// Unknown method and missing file are usage errors.
	if out, code := run(t, "mineborders", "-method", "bogus", data); code != 2 {
		t.Errorf("unknown method accepted: code=%d %q", code, out)
	}
	if _, code := run(t, "mineborders", filepath.Join(t.TempDir(), "nope.tx")); code != 2 {
		t.Error("missing file accepted")
	}

	// z must lie in (0, rows]: both boundary violations are rejected.
	if _, code := run(t, "mineborders", "-z", "0", data); code != 2 {
		t.Error("z=0 accepted")
	}
	if _, code := run(t, "mineborders", "-z", "4", data); code != 2 {
		t.Error("z>rows accepted")
	}

	// At the upper boundary z=rows nothing is frequent but ∅; the two
	// methods must still agree on the degenerate borders.
	outD, code := run(t, "mineborders", "-z", "3", data)
	if code != 0 {
		t.Fatalf("z=rows dualize: %s", outD)
	}
	outA, code := run(t, "mineborders", "-z", "3", "-method", "apriori", data)
	if code != 0 {
		t.Fatalf("z=rows apriori: %s", outA)
	}
	if stripComments(outD) != stripComments(outA) {
		t.Errorf("methods disagree at z=rows:\n%q\nvs\n%q", outD, outA)
	}

	// -progress streams border elements to stderr as the loop advances;
	// the final report is unchanged.
	outP, code := run(t, "mineborders", "-z", "1", "-progress", data)
	if code != 0 {
		t.Fatalf("-progress: %s", outP)
	}
	if !strings.Contains(outP, "+ ") || !strings.Contains(outP, "- ") {
		t.Errorf("-progress printed no border elements: %q", outP)
	}
	outQ, code := run(t, "mineborders", "-z", "1", data)
	if code != 0 {
		t.Fatalf("plain run: %s", outQ)
	}
	if got, want := stripComments(stripProgress(outP)), stripComments(outQ); got != want {
		t.Errorf("-progress changed the report:\n%q\nvs\n%q", got, want)
	}
}

// stripProgress drops the "+ items" / "- items" stderr lines -progress
// interleaves into the combined output.
func stripProgress(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "+ ") || strings.HasPrefix(line, "- ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestKeyscanErrorPaths(t *testing.T) {
	// Malformed CSV (ragged row) is rejected.
	bad := writeFile(t, "bad.csv", "a,b\n1\n")
	if out, code := run(t, "keyscan", bad); code != 2 {
		t.Errorf("ragged CSV accepted: code=%d %q", code, out)
	}
	// Unknown attribute in -known is rejected.
	csv := writeFile(t, "rel.csv", "name,dept\nann,sales\nbob,eng\n")
	known := writeFile(t, "known.hg", "salary\n")
	if out, code := run(t, "keyscan", "-known", known, csv); code != 2 {
		t.Errorf("unknown attribute accepted: code=%d %q", code, out)
	}
	// A single-attribute relation with distinct values: that attribute is
	// the unique minimal key, incremental and direct agree.
	single := writeFile(t, "one.csv", "id\n1\n2\n3\n")
	out, code := run(t, "keyscan", single)
	if code != 0 || !strings.Contains(out, "id") {
		t.Fatalf("single-attribute keys: code=%d %q", code, out)
	}
	inc, code := run(t, "keyscan", "-incremental", single)
	if code != 0 || stripComments(inc) != stripComments(out) {
		t.Errorf("incremental disagrees on single attribute: %q vs %q", inc, out)
	}
}

func TestCoteriecheckEdgeCases(t *testing.T) {
	// A singleton coterie is non-dominated.
	singleton := writeFile(t, "single.hg", "a\n")
	if out, code := run(t, "coteriecheck", singleton); code != 0 || !strings.Contains(out, "NON-DOMINATED") {
		t.Errorf("singleton: code=%d %q", code, out)
	}
	// -improve on a non-dominated coterie stays exit 0 with no suggestion.
	maj := writeFile(t, "maj.hg", "a b\nb c\na c\n")
	out, code := run(t, "coteriecheck", "-improve", maj)
	if code != 0 || strings.Contains(out, "dominating") {
		t.Errorf("improve on non-dominated: code=%d %q", code, out)
	}
	// Empty input has no quorums and is invalid.
	empty := writeFile(t, "empty.hg", "# nothing\n")
	if _, code := run(t, "coteriecheck", empty); code != 2 {
		t.Error("empty quorum system accepted")
	}
	// Comparable quorums violate the antichain requirement.
	nested := writeFile(t, "nested.hg", "a b\na b c\n")
	if _, code := run(t, "coteriecheck", nested); code != 2 {
		t.Error("nested quorums accepted")
	}
}

func TestDualbenchJSON(t *testing.T) {
	out, code := run(t, "dualbench", "-json", "-run", "E2,E3")
	if code != 0 {
		t.Fatalf("dualbench -json: code=%d\n%s", code, out)
	}
	var report struct {
		GoVersion   string `json:"go_version"`
		Pass        bool   `json:"pass"`
		Experiments []struct {
			ID       string `json:"id"`
			Pass     bool   `json:"pass"`
			NsOp     int64  `json:"ns_op"`
			AllocsOp uint64 `json:"allocs_op"`
			Rows     int    `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if !report.Pass || len(report.Experiments) != 2 {
		t.Fatalf("report = %+v", report)
	}
	for _, e := range report.Experiments {
		if !e.Pass || e.NsOp <= 0 || e.Rows <= 0 {
			t.Errorf("experiment %s: %+v", e.ID, e)
		}
	}
	if report.GoVersion == "" {
		t.Error("go_version missing")
	}
	// The human-readable mode is unchanged.
	out, code = run(t, "dualbench", "-run", "E2")
	if code != 0 || !strings.Contains(out, "result: PASS") {
		t.Errorf("table mode: code=%d %q", code, out)
	}
}
