package clitest

// End-to-end test of cmd/dualserved: the real binary, a real TCP socket,
// every endpoint, the fingerprint cache, and graceful shutdown. The
// heavier concurrency/cancellation coverage lives in internal/service
// (in-process, so the race detector instruments the server code).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServed launches dualserved on a free port and returns its base URL.
func startServed(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "dualserved"), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "dualserved listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	return "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
}

func postJSON(t *testing.T, url string, body map[string]any) (int, map[string]any) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestDualservedEndToEnd(t *testing.T) {
	base := startServed(t)

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// A decide round trip, twice: the repeat must come from the cache.
	req := map[string]any{"g": "a b\nc d\n", "h": "a c\na d\nb c\nb d\n"}
	code, out := postJSON(t, base+"/v1/decide", req)
	if code != 200 || out["dual"] != true || out["cached"] != false {
		t.Fatalf("decide: code=%d out=%v", code, out)
	}
	code, out = postJSON(t, base+"/v1/decide", req)
	if code != 200 || out["dual"] != true || out["cached"] != true {
		t.Fatalf("cached decide: code=%d out=%v", code, out)
	}

	// Streaming enumeration with a limit.
	buf, _ := json.Marshal(map[string]any{"h": "a b\nc d\ne f\n", "limit": 3})
	sresp, err := http.Post(base+"/v1/transversals", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var setLines, endLines int
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if _, ok := rec["transversal"]; ok {
			setLines++
		} else if rec["truncated"] != true {
			t.Fatalf("terminal record %v", rec)
		} else {
			endLines++
		}
	}
	if setLines != 3 || endLines != 1 {
		t.Fatalf("stream shape: %d sets, %d terminals", setLines, endLines)
	}

	// The three applications.
	code, out = postJSON(t, base+"/v1/borders", map[string]any{
		"data": "milk bread\nmilk bread\nbeer\n", "z": 1})
	if code != 200 || out["max_frequent"] == nil {
		t.Fatalf("borders: code=%d out=%v", code, out)
	}
	code, out = postJSON(t, base+"/v1/keys", map[string]any{
		"csv": "name,dept\nann,sales\nbob,eng\n"})
	if code != 200 || out["keys"] == nil {
		t.Fatalf("keys: code=%d out=%v", code, out)
	}
	code, out = postJSON(t, base+"/v1/coteries", map[string]any{"quorums": "a b\nb c\na c\n"})
	if code != 200 || out["non_dominated"] != true {
		t.Fatalf("coteries: code=%d out=%v", code, out)
	}

	// Stats reflect the traffic, including the cache hit.
	resp, err = http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	cache := stats["cache"].(map[string]any)
	if cache["hits"].(float64) < 1 {
		t.Errorf("cache hits = %v", cache["hits"])
	}
	if stats["decompositions"].(float64) != 1 {
		t.Errorf("decompositions = %v, want 1 (repeat was cached)", stats["decompositions"])
	}

	// Bad input is rejected with a JSON error.
	code, out = postJSON(t, base+"/v1/decide", map[string]any{"g": "a\na b\n", "h": "a\n"})
	if code != 422 || out["error"] == nil {
		t.Errorf("non-simple input: code=%d out=%v", code, out)
	}
}

// TestDualservedBatchMineAndLoad drives the batch subsystem end to end
// with the real binaries: an NDJSON /v1/batch round trip, a streaming
// /v1/mine, mineborders -server against the live service, and a small
// dualload run in both modes with -json output.
func TestDualservedBatchMineAndLoad(t *testing.T) {
	base := startServed(t)

	// NDJSON batch: duplicates and a renamed copy dedup onto one decision.
	rows := `{"g":"a b\nc d","h":"a c\na d\nb c\nb d"}
{"g":"a b\nc d","h":"a c\na d\nb c\nb d"}
{"g":"p q\nr s","h":"p r\np s\nq r\nq s"}
`
	resp, err := http.Post(base+"/v1/batch", "application/x-ndjson", strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var itemRows int
	var terminal map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("batch line %q: %v", sc.Text(), err)
		}
		if _, ok := rec["index"]; ok {
			itemRows++
			if rec["dual"] != true {
				t.Errorf("batch row not dual: %v", rec)
			}
		} else {
			terminal = rec
		}
	}
	if itemRows != 3 || terminal == nil || terminal["done"] != true {
		t.Fatalf("batch shape: %d rows, terminal %v", itemRows, terminal)
	}
	if terminal["decisions"].(float64) != 1 || terminal["deduped"].(float64) != 2 {
		t.Errorf("batch dedup: %v", terminal)
	}

	// Streaming mine.
	mineReq, _ := json.Marshal(map[string]any{"data": "milk bread\nmilk bread\nbeer\n", "z": 1})
	mresp, err := http.Post(base+"/v1/mine", "application/json", bytes.NewReader(mineReq))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mraw, _ := io.ReadAll(mresp.Body)
	if !bytes.Contains(mraw, []byte(`"done":true`)) || !bytes.Contains(mraw, []byte(`"max_frequent"`)) {
		t.Fatalf("mine stream: %s", mraw)
	}

	// mineborders in server mode mines through /v1/mine.
	dataPath := writeFile(t, "data.tx", "milk bread\nmilk bread\nmilk bread\nbeer chips\nbeer chips\nbeer chips\nmilk beer\n")
	out, code := run(t, "mineborders", "-server", base, "-z", "2", dataPath)
	if code != 0 || !strings.Contains(out, "maximal frequent itemsets (IS+): 2") {
		t.Fatalf("mineborders -server: code=%d out=%s", code, out)
	}

	// dualload against the live server, both modes, machine-readable.
	out, code = run(t, "dualload", "-addr", base, "-clients", "2", "-requests", "24",
		"-distinct", "4", "-batch-size", "12", "-mode", "both", "-json")
	if code != 0 {
		t.Fatalf("dualload: code=%d out=%s", code, out)
	}
	var rep struct {
		Runs []struct {
			Mode   string `json:"mode"`
			Items  int    `json:"items"`
			Errors int    `json:"errors"`
		} `json:"runs"`
		Speedup float64 `json:"speedup_batch_vs_decide"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("dualload -json output %q: %v", out, err)
	}
	if len(rep.Runs) != 2 || rep.Speedup <= 0 {
		t.Fatalf("dualload report: %+v", rep)
	}
	for _, r := range rep.Runs {
		if r.Items != 48 || r.Errors != 0 {
			t.Errorf("dualload %s run: %+v", r.Mode, r)
		}
	}

	// /statsz shows the batch traffic.
	sresp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if b := stats["batch"].(map[string]any); b["batches"].(float64) < 2 {
		t.Errorf("batch stats: %v", b)
	}
}

func TestDualservedFlagLimits(t *testing.T) {
	base := startServed(t, "-max-edges", "2")
	code, out := postJSON(t, base+"/v1/decide", map[string]any{"g": "a b\nc d\ne f\n", "h": "x\n"})
	if code != 413 {
		t.Fatalf("over-limit input: code=%d out=%v", code, out)
	}
}

func TestDualservedRejectsArgs(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "dualserved"), "positional")
	if err := cmd.Run(); err == nil {
		t.Fatal("positional argument accepted")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2", err)
	}
}
