// Package clitest runs end-to-end tests of the command-line tools: each
// binary is built once with the go tool and exercised against real files.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dualspace-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"dualcheck", "transversals", "mineborders", "keyscan", "coteriecheck", "hggen", "dualbench", "dualserved", "dualload"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "dualspace/cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest -> repo root
}

// run executes a built tool and returns stdout+stderr and the exit code.
func run(t *testing.T, tool string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", tool, err)
	}
	return string(out), code
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDualcheckDualPair(t *testing.T) {
	g := writeFile(t, "g.hg", "a b\nc d\n")
	h := writeFile(t, "h.hg", "a c\na d\nb c\nb d\n")
	for _, algo := range []string{"bm", "bmp", "fka", "fkb", "space"} {
		out, code := run(t, "dualcheck", "-algo", algo, g, h)
		if code != 0 || !strings.Contains(out, "DUAL") || strings.Contains(out, "NOT DUAL") {
			t.Errorf("algo %s: code=%d out=%q", algo, code, out)
		}
	}
}

func TestDualcheckNonDual(t *testing.T) {
	g := writeFile(t, "g.hg", "a b\nc d\n")
	h := writeFile(t, "h.hg", "a c\na d\nb c\n")
	for _, algo := range []string{"bm", "bmp", "fka", "fkb", "space"} {
		out, code := run(t, "dualcheck", "-algo", algo, g, h)
		if code != 1 || !strings.Contains(out, "NOT DUAL") {
			t.Errorf("algo %s: code=%d out=%q", algo, code, out)
		}
	}
	// The BM verdict names the witness with original vertex names.
	out, _ := run(t, "dualcheck", g, h)
	if !strings.Contains(out, "b") || !strings.Contains(out, "d") {
		t.Errorf("witness not named: %q", out)
	}
}

func TestDualcheckEngineFlag(t *testing.T) {
	g := writeFile(t, "g.hg", "a b\nc d\n")
	h := writeFile(t, "h.hg", "a c\na d\nb c\nb d\n")
	hBad := writeFile(t, "hbad.hg", "a c\na d\nb c\n")
	for _, eng := range []string{"portfolio", "core", "core-parallel", "fk-a", "fk-b", "logspace"} {
		out, code := run(t, "dualcheck", "-engine", eng, g, h)
		if code != 0 || !strings.Contains(out, "DUAL") || strings.Contains(out, "NOT DUAL") {
			t.Errorf("engine %s dual: code=%d out=%q", eng, code, out)
		}
		out, code = run(t, "dualcheck", "-engine", eng, g, hBad)
		if code != 1 || !strings.Contains(out, "NOT DUAL") {
			t.Errorf("engine %s non-dual: code=%d out=%q", eng, code, out)
		}
	}
	// Racing portfolio agrees too.
	if out, code := run(t, "dualcheck", "-race", g, h); code != 0 || !strings.Contains(out, "DUAL") {
		t.Errorf("-race: code=%d out=%q", code, out)
	}
	if _, code := run(t, "dualcheck", "-engine", "quantum", g, h); code != 2 {
		t.Error("unknown engine accepted")
	}
}

func TestDualcheckErrors(t *testing.T) {
	g := writeFile(t, "g.hg", "a b\n")
	if _, code := run(t, "dualcheck", g); code != 2 {
		t.Error("missing argument not rejected")
	}
	if _, code := run(t, "dualcheck", g, filepath.Join(t.TempDir(), "missing.hg")); code != 2 {
		t.Error("missing file not rejected")
	}
	bad := writeFile(t, "bad.hg", "a\na b\n")
	if out, code := run(t, "dualcheck", bad, g); code != 2 {
		t.Errorf("non-simple input not rejected: %q", out)
	}
}

func TestTransversalsMethodsAgree(t *testing.T) {
	h := writeFile(t, "h.hg", "a b\nc d\ne f\n")
	var outputs []string
	for _, method := range []string{"dfs", "berge", "oracle"} {
		out, code := run(t, "transversals", "-method", method, h)
		if code != 0 {
			t.Fatalf("method %s failed: %s", method, out)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 8 {
			t.Fatalf("method %s: %d transversals, want 8", method, len(lines))
		}
		outputs = append(outputs, canonical(out))
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Error("methods disagree on output set")
	}
	out, _ := run(t, "transversals", "-count", h)
	if strings.TrimSpace(out) != "8" {
		t.Errorf("-count = %q", out)
	}
}

func canonical(out string) string {
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i, l := range lines {
		fields := strings.Fields(l)
		for a := 0; a < len(fields); a++ {
			for b := a + 1; b < len(fields); b++ {
				if fields[b] < fields[a] {
					fields[a], fields[b] = fields[b], fields[a]
				}
			}
		}
		lines[i] = strings.Join(fields, " ")
	}
	for a := 0; a < len(lines); a++ {
		for b := a + 1; b < len(lines); b++ {
			if lines[b] < lines[a] {
				lines[a], lines[b] = lines[b], lines[a]
			}
		}
	}
	return strings.Join(lines, "\n")
}

func TestMineborders(t *testing.T) {
	data := writeFile(t, "tx.txt", "milk bread\nmilk bread\nmilk bread\nbeer chips\nbeer chips\nbeer chips\nmilk beer\n")
	outD, code := run(t, "mineborders", "-z", "2", "-method", "dualize", data)
	if code != 0 {
		t.Fatalf("dualize failed: %s", outD)
	}
	outA, code := run(t, "mineborders", "-z", "2", "-method", "apriori", data)
	if code != 0 {
		t.Fatalf("apriori failed: %s", outA)
	}
	if !strings.Contains(outD, "milk bread") || !strings.Contains(outD, "beer chips") {
		t.Errorf("expected maximal frequent sets missing: %q", outD)
	}
	// The two methods print identical border families (modulo the trailing
	// duality-check count line).
	if stripComments(outD) != stripComments(outA) {
		t.Errorf("methods disagree:\n%q\nvs\n%q", outD, outA)
	}
	if _, code := run(t, "mineborders", "-z", "99", data); code != 2 {
		t.Error("out-of-range threshold accepted")
	}
}

func stripComments(s string) string {
	var keep []string
	for _, l := range strings.Split(s, "\n") {
		if !strings.HasPrefix(l, "#") && strings.TrimSpace(l) != "" {
			keep = append(keep, l)
		}
	}
	return canonical(strings.Join(keep, "\n"))
}

func TestKeyscan(t *testing.T) {
	csv := writeFile(t, "rel.csv", "name,dept,room\nann,sales,101\nbob,sales,102\ncyd,eng,101\n")
	out, code := run(t, "keyscan", csv)
	if code != 0 || !strings.Contains(out, "minimal keys") {
		t.Fatalf("keyscan: code=%d %q", code, out)
	}
	// name alone is a key.
	if !strings.Contains(out, "name") {
		t.Errorf("expected key 'name': %q", out)
	}
	inc, code := run(t, "keyscan", "-incremental", csv)
	if code != 0 || stripComments(inc) != stripComments(out) {
		t.Errorf("incremental disagrees: %q vs %q", inc, out)
	}
	// Additional-key flow: claim only one key, expect another.
	known := writeFile(t, "known.hg", "name\n")
	more, code := run(t, "keyscan", "-known", known, csv)
	if code != 1 || !strings.Contains(more, "ADDITIONAL KEY") {
		t.Errorf("additional key not found: code=%d %q", code, more)
	}
	// Complete claims.
	allKeys := writeFile(t, "all.hg", extractKeys(out))
	done, code := run(t, "keyscan", "-known", allKeys, csv)
	if code != 0 || !strings.Contains(done, "COMPLETE") {
		t.Errorf("complete claim rejected: code=%d %q", code, done)
	}
}

func extractKeys(out string) string {
	var keep []string
	for _, l := range strings.Split(out, "\n") {
		if !strings.HasPrefix(l, "#") && strings.TrimSpace(l) != "" {
			keep = append(keep, l)
		}
	}
	return strings.Join(keep, "\n") + "\n"
}

func TestCoteriecheck(t *testing.T) {
	maj := writeFile(t, "maj.hg", "a b\nb c\na c\n")
	out, code := run(t, "coteriecheck", maj)
	if code != 0 || !strings.Contains(out, "NON-DOMINATED") {
		t.Errorf("majority: code=%d %q", code, out)
	}
	star := writeFile(t, "star.hg", "hub a\nhub b\nhub c\n")
	out, code = run(t, "coteriecheck", "-improve", star)
	if code != 1 || !strings.Contains(out, "DOMINATED") || !strings.Contains(out, "hub") {
		t.Errorf("star: code=%d %q", code, out)
	}
	invalid := writeFile(t, "bad.hg", "a\nb\n")
	if _, code := run(t, "coteriecheck", invalid); code != 2 {
		t.Error("non-intersecting quorums accepted")
	}
}

func TestHggenAndPipeline(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "pair")
	out, code := run(t, "hggen", "-family", "matching", "-k", "3", "-out", prefix)
	if code != 0 {
		t.Fatalf("hggen: %s", out)
	}
	if _, code := run(t, "dualcheck", prefix+".g.hg", prefix+".h.hg"); code != 0 {
		t.Error("generated pair not dual")
	}
	// Perturbed pair must be rejected.
	bad := filepath.Join(dir, "bad")
	if out, code := run(t, "hggen", "-family", "matching", "-k", "3", "-drop", "2", "-out", bad); code != 0 {
		t.Fatalf("hggen -drop: %s", out)
	}
	if _, code := run(t, "dualcheck", bad+".g.hg", bad+".h.hg"); code != 1 {
		t.Error("perturbed pair accepted as dual")
	}
	// Other families generate checkable pairs too.
	for _, fam := range [][]string{
		{"-family", "threshold", "-n", "5", "-k", "2"},
		{"-family", "majority", "-n", "5"},
		{"-family", "selfdual", "-k", "2"},
		{"-family", "random", "-n", "7", "-m", "4", "-seed", "3"},
	} {
		p := filepath.Join(dir, fam[1])
		args := append(fam, "-out", p)
		if out, code := run(t, "hggen", args...); code != 0 {
			t.Fatalf("hggen %v: %s", fam, out)
		}
		if _, code := run(t, "dualcheck", p+".g.hg", p+".h.hg"); code != 0 {
			t.Errorf("family %s: generated pair not dual", fam[1])
		}
	}
}

func TestDualbenchList(t *testing.T) {
	out, code := run(t, "dualbench", "-list")
	if code != 0 || !strings.Contains(out, "E1") || !strings.Contains(out, "E14") {
		t.Fatalf("dualbench -list: code=%d %q", code, out)
	}
	out, code = run(t, "dualbench", "-run", "E2,E3")
	if code != 0 || !strings.Contains(out, "result: PASS") {
		t.Fatalf("dualbench -run: code=%d\n%s", code, out)
	}
	if _, code = run(t, "dualbench", "-run", "E99"); code != 2 {
		t.Error("unknown experiment accepted")
	}
}

func TestDualbenchEngineRows(t *testing.T) {
	// One cheap experiment keeps the run fast; the engine table must carry a
	// row per registry engine, all conforming to ground truth.
	out, code := run(t, "dualbench", "-engine", "all", "-run", "E2")
	if code != 0 {
		t.Fatalf("dualbench -engine all: code=%d\n%s", code, out)
	}
	for _, eng := range []string{"portfolio", "core", "core-parallel", "fk-a", "fk-b", "logspace"} {
		// Rows are left-aligned at the line start and padded with spaces, so
		// anchor the match to keep "core" from being satisfied by the
		// "core-parallel" row.
		if !strings.Contains(out, "\n"+eng+" ") {
			t.Errorf("engine table missing %s:\n%s", eng, out)
		}
	}
	out, code = run(t, "dualbench", "-engine", "fk-a", "-run", "E2", "-json")
	if code != 0 || !strings.Contains(out, `"engines"`) || !strings.Contains(out, `"fk-a"`) {
		t.Fatalf("dualbench -engine -json: code=%d\n%s", code, out)
	}
	if _, code = run(t, "dualbench", "-engine", "quantum", "-run", "E2"); code != 2 {
		t.Error("unknown engine accepted")
	}
}
