package verdictlog

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
)

// mkRecord builds a deterministic record from a seed: fingerprints from
// the seed bytes, a verdict whose shape depends on the seed's parity.
func mkRecord(seed int) Record {
	fg := hypergraph.Fingerprint(sha256.Sum256([]byte(fmt.Sprintf("g%d", seed))))
	fh := hypergraph.Fingerprint(sha256.Sum256([]byte(fmt.Sprintf("h%d", seed))))
	n := 4 + seed%13
	res := &core.Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	switch seed % 3 {
	case 0:
		res.Dual = true
	case 1:
		res.Reason = core.ReasonNewTransversal
		res.Witness = bitset.FromSlice(n, []int{seed % n})
		res.CoWitness = bitset.FromSlice(n, []int{(seed + 1) % n})
		res.FailPath = []int{1, seed%4 + 1}
		res.Swapped = seed%2 == 0
	default:
		res.Reason = core.ReasonNotCrossIntersecting
		res.GEdge = seed % 7
		res.HEdge = (seed + 3) % 7
	}
	return Record{Engine: "core", FG: fg, FH: fh, N: n, Res: res}
}

func sameRecord(t *testing.T, got, want Record) {
	t.Helper()
	if got.Engine != want.Engine || got.FG != want.FG || got.FH != want.FH || got.N != want.N {
		t.Fatalf("record identity drifted: got %v/%v want %v/%v", got.Engine, got.N, want.Engine, want.N)
	}
	g, w := got.Res, want.Res
	if g.Dual != w.Dual || g.Reason != w.Reason || g.GEdge != w.GEdge ||
		g.HEdge != w.HEdge || g.RedundantVertex != w.RedundantVertex || g.Swapped != w.Swapped {
		t.Fatalf("verdict drifted: %+v vs %+v", g, w)
	}
	if !g.Witness.Equal(w.Witness) || !g.CoWitness.Equal(w.CoWitness) {
		t.Fatal("witness drifted")
	}
	if len(g.FailPath) != len(w.FailPath) {
		t.Fatalf("fail path drifted: %v vs %v", g.FailPath, w.FailPath)
	}
	for i := range g.FailPath {
		if g.FailPath[i] != w.FailPath[i] {
			t.Fatalf("fail path drifted: %v vs %v", g.FailPath, w.FailPath)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Duplicate keys are skipped.
	if err := l.Append(mkRecord(0)); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != n || st.SkippedDup != 1 || st.LiveRecords != n {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := l2.ReplayedRecords()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		sameRecord(t, rec, mkRecord(i))
	}
	if got := l2.ReplayedRecords(); got != nil {
		t.Fatal("ReplayedRecords is not one-shot")
	}
	if st := l2.Stats(); st.Replayed != n || st.LiveRecords != n {
		t.Fatalf("reopen stats = %+v", st)
	}
}

// A replayed record whose redundant vertex falls outside the universe
// must be rejected like any other structural corruption: it would poison
// the cache with an entry that panics the response renderer.
func TestDecodeRejectsOutOfRangeRedundantVertex(t *testing.T) {
	rec := mkRecord(0)
	rec.Res.RedundantVertex = rec.N // one past the universe
	payload, err := encodeRecord(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(payload); err == nil {
		t.Fatal("decodeRecord accepted redundant vertex == n")
	}
	rec.Res.RedundantVertex = -2
	payload, err = encodeRecord(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(payload); err == nil {
		t.Fatal("decodeRecord accepted redundant vertex below -1 sentinel")
	}
	rec.Res.RedundantVertex = rec.N - 1
	payload, err = encodeRecord(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(payload); err != nil {
		t.Fatalf("decodeRecord rejected in-range redundant vertex: %v", err)
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("tiny segment bound produced only %d segments", st.Segments)
	}
	_ = l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := l2.ReplayedRecords(); len(recs) != 40 {
		t.Fatalf("replayed %d across rolled segments, want 40", len(recs))
	}
}

// TestCrashTruncationProperty is the log's central contract: after
// appending K records and truncating the directory's byte stream at an
// arbitrary point ("crash"), replay yields exactly the longest prefix of
// appends whose frames fully survive — never a corrupt record, never a
// reordering, never a loss of an earlier intact record.
func TestCrashTruncationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		dir := t.TempDir()
		// Small segments so crashes land in every segment position.
		l, err := Open(dir, Options{SegmentBytes: 300})
		if err != nil {
			t.Fatal(err)
		}
		count := 5 + rng.Intn(40)
		for i := 0; i < count; i++ {
			if err := l.Append(mkRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: chop bytes off the tail of the final non-empty segment
		// (and sometimes scribble garbage over the cut).
		idxs := segments(t, dir)
		last := idxs[len(idxs)-1]
		for len(idxs) > 1 {
			if fileSize(t, dir, last) > int64(magicLen) {
				break
			}
			idxs = idxs[:len(idxs)-1]
			last = idxs[len(idxs)-1]
		}
		path := filepath.Join(dir, fmt.Sprintf("%08d.vlog", last))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) <= int64(magicLen) {
			continue
		}
		cut := magicLen + rng.Intn(len(data)-magicLen)
		mangled := data[:cut]
		if rng.Intn(2) == 0 && cut > magicLen {
			mangled = append(append([]byte{}, mangled...), 0xde, 0xad, 0xbe, 0xef)
		}
		if err := os.WriteFile(path, mangled, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(dir, Options{SegmentBytes: 300})
		if err != nil {
			t.Fatalf("trial %d: reopen after crash: %v", trial, err)
		}
		recs := l2.ReplayedRecords()
		_ = l2.Close()
		if len(recs) > count {
			t.Fatalf("trial %d: replay invented records: %d > %d", trial, len(recs), count)
		}
		// Replay must be exactly a prefix of the appended sequence.
		for i, rec := range recs {
			sameRecord(t, rec, mkRecord(i))
		}
	}
}

func segments(t *testing.T, dir string) []int {
	t.Helper()
	l := &Log{dir: dir}
	idxs, err := l.segmentIndexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) == 0 {
		t.Fatal("no segments on disk")
	}
	return idxs
}

func fileSize(t *testing.T, dir string, idx int) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("%08d.vlog", idx)))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestCorruptMagicDropsSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = l.Close()
	path := filepath.Join(dir, "00000000.vlog")
	data, _ := os.ReadFile(path)
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := l2.ReplayedRecords(); len(recs) != 0 {
		t.Fatalf("bad-magic segment replayed %d records", len(recs))
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("bad magic not accounted as truncated bytes")
	}
}

func TestFlippedBitTruncatesAtCRC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = l.Close()
	path := filepath.Join(dir, "00000000.vlog")
	data, _ := os.ReadFile(path)
	// Flip one bit two-thirds of the way in: every record from the frame
	// containing that byte onward must vanish, everything before survives.
	data[magicLen+(len(data)-magicLen)*2/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := l2.ReplayedRecords()
	if len(recs) == 0 || len(recs) >= 10 {
		t.Fatalf("bit flip replayed %d of 10 records; want a proper prefix", len(recs))
	}
	for i, rec := range recs {
		sameRecord(t, rec, mkRecord(i))
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats()
	if after.Compactions != 1 || after.LiveRecords != 30 {
		t.Fatalf("post-compact stats = %+v", after)
	}
	if after.Segments >= before.Segments {
		t.Fatalf("compaction did not shrink segments: %d -> %d", before.Segments, after.Segments)
	}
	// The log must remain appendable after compaction.
	if err := l.Append(mkRecord(100)); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	if err := l.Append(mkRecord(0)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SkippedDup != 1 {
		t.Fatalf("dedup state lost across compaction: %+v", st)
	}
	_ = l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := l2.ReplayedRecords(); len(recs) != 31 {
		t.Fatalf("replayed %d after compaction, want 31", len(recs))
	}
}

func TestCompactMaxRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.LiveRecords != 10 {
		t.Fatalf("retention kept %d records, want 10", st.LiveRecords)
	}
	_ = l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := l2.ReplayedRecords()
	if len(recs) != 10 {
		t.Fatalf("replayed %d, want 10", len(recs))
	}
	// The newest 10 survive.
	for i, rec := range recs {
		sameRecord(t, rec, mkRecord(20+i))
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	if err := l.Append(mkRecord(1)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
