// Package verdictlog is an append-only, CRC-framed, segmented disk store
// of duality verdicts keyed by canonical fingerprints. dualserved appends
// every computed verdict and replays the log into the in-memory cache on
// startup, so a restarted replica (or a new one seeded with a copied log
// directory) answers its working set from disk instead of recomputing it.
// The format favors crash-tolerance over compactness: fixed-size frames
// with per-record CRCs, replay that truncates at the first corrupt frame,
// and last-record-wins semantics that make compaction a plain rewrite.
// docs/CLUSTER.md documents the on-disk format with a worked example;
// DESIGN.md §13 covers the design rationale.
package verdictlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
)

// On-disk constants. A segment is the 8-byte magic followed by frames of
// [u32 payload length][payload][u32 CRC32-Castagnoli of the payload], all
// little-endian. Payload layout (version 1):
//
//	u8  version (1)
//	u8  flags (bit 0 dual, bit 1 swapped)
//	u8  reason
//	u8  len(engine) + engine bytes
//	32B fg, 32B fh
//	u32 n (vertex universe)
//	i32 gEdge, i32 hEdge, i32 redundantVertex (-1 sentinels)
//	u32 count + u32 elems ×count   (witness)
//	u32 count + u32 elems ×count   (co-witness)
//	u32 count + u32 elems ×count   (fail path)
const (
	magicLen      = 8
	recordVersion = 1

	flagDual    = 1 << 0
	flagSwapped = 1 << 1
)

var segmentMagic = [magicLen]byte{'D', 'U', 'A', 'L', 'V', 'L', 'G', recordVersion}

// castagnoli is the CRC polynomial used by every frame: hardware-assisted
// on amd64/arm64 and with better error-detection spread than IEEE.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxPayload bounds one record; larger length prefixes are treated as
// corruption (they would otherwise drive a huge allocation during replay).
const maxPayload = 16 << 20

// DefaultSegmentBytes rolls segments at 4 MiB: big enough that a steady
// workload produces few files, small enough that compaction rewrites and
// corruption truncation lose little.
const DefaultSegmentBytes = 4 << 20

// Options tunes Open.
type Options struct {
	// SegmentBytes rolls the active segment when it exceeds this size
	// (<= 0: DefaultSegmentBytes).
	SegmentBytes int64
	// MaxRecords, when > 0, bounds the live (deduplicated) record count:
	// Compact keeps the most recently appended MaxRecords records.
	MaxRecords int
	// Sync fsyncs after every append. Off by default: the log is a cache,
	// losing the tail on power failure costs recompute time, not
	// correctness.
	Sync bool
}

// Record is one logged verdict.
type Record struct {
	Engine string
	FG, FH hypergraph.Fingerprint
	N      int
	Res    *core.Result
}

// Key is the dedup identity of a record: same shape as batch.Key.
type Key struct {
	Engine string
	FG, FH hypergraph.Fingerprint
}

func (r *Record) key() Key { return Key{Engine: r.Engine, FG: r.FG, FH: r.FH} }

// Stats is the log's observable state.
type Stats struct {
	Segments       int   `json:"segments"`
	Bytes          int64 `json:"bytes"`
	LiveRecords    int   `json:"live_records"`
	Replayed       int   `json:"replayed"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	Appended       int64 `json:"appended"`
	SkippedDup     int64 `json:"skipped_dup"`
	AppendErrors   int64 `json:"append_errors"`
	Compactions    int64 `json:"compactions"`
}

// Log is the open store. All methods are safe for concurrent use; Append
// holds the mutex across one buffered write (no fsync unless Options.Sync),
// so contention is bounded by memory-copy speed.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	active    *os.File
	activeIdx int
	activeLen int64
	seen      map[Key]struct{}
	replayed  []Record // drained by ReplayedRecords
	stats     Stats
	closed    bool
}

// Open opens (creating if needed) the log directory, replays every
// segment in index order — truncating each at its first corrupt frame —
// and leaves the log ready to append. Replayed records are deduplicated
// last-wins and held until ReplayedRecords hands them to the cache.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verdictlog: %w", err)
	}
	l := &Log{dir: dir, opts: opts, seen: make(map[Key]struct{})}

	idxs, err := l.segmentIndexes()
	if err != nil {
		return nil, err
	}
	byKey := make(map[Key]int) // key -> position in order
	var order []Record
	for _, idx := range idxs {
		recs, size, truncated, err := replaySegment(l.segmentPath(idx))
		if err != nil {
			return nil, err
		}
		l.stats.Bytes += size
		l.stats.TruncatedBytes += truncated
		for _, rec := range recs {
			l.stats.Replayed++
			if at, dup := byKey[rec.key()]; dup {
				order[at] = rec // last record for a key wins
				continue
			}
			byKey[rec.key()] = len(order)
			order = append(order, rec)
		}
	}
	for k := range byKey {
		l.seen[k] = struct{}{}
	}
	l.replayed = order
	l.stats.Segments = len(idxs)
	l.stats.LiveRecords = len(order)

	next := 0
	if n := len(idxs); n > 0 {
		next = idxs[n-1] + 1
	}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	l.stats.Segments++
	return l, nil
}

// ReplayedRecords returns the deduplicated records recovered at Open, in
// replay order, and releases the log's reference to them. Callers feed
// them into the verdict cache exactly once at startup.
func (l *Log) ReplayedRecords() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs := l.replayed
	l.replayed = nil
	return recs
}

// Append logs rec unless its key is already present (verdicts are
// immutable per key, so duplicates carry no information). Errors are
// counted and returned but leave the log usable: a failed append only
// costs warmth.
func (l *Log) Append(rec Record) error {
	if rec.Res == nil {
		return fmt.Errorf("verdictlog: nil result")
	}
	payload, err := encodeRecord(&rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("verdictlog: closed")
	}
	if _, dup := l.seen[rec.key()]; dup {
		l.stats.SkippedDup++
		return nil
	}
	if err := l.writeFrameLocked(payload); err != nil {
		l.stats.AppendErrors++
		return err
	}
	l.seen[rec.key()] = struct{}{}
	l.stats.Appended++
	l.stats.LiveRecords++
	return nil
}

// writeFrameLocked writes one frame to the active segment, rolling it
// first when past the size bound. Caller holds l.mu.
func (l *Log) writeFrameLocked(payload []byte) error {
	if l.activeLen >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	n, err := l.active.Write(frame)
	l.activeLen += int64(n)
	l.stats.Bytes += int64(n)
	if err != nil {
		return fmt.Errorf("verdictlog: append: %w", err)
	}
	if l.opts.Sync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("verdictlog: sync: %w", err)
		}
	}
	return nil
}

func (l *Log) rollLocked() error {
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("verdictlog: closing segment: %w", err)
	}
	if err := l.openSegment(l.activeIdx + 1); err != nil {
		return err
	}
	l.stats.Segments++
	return nil
}

// openSegment creates segment idx and writes its magic. Caller holds l.mu
// (or is Open, before the log is shared).
func (l *Log) openSegment(idx int) error {
	path := l.segmentPath(idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("verdictlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("verdictlog: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(segmentMagic[:]); err != nil {
			_ = f.Close()
			return fmt.Errorf("verdictlog: writing magic: %w", err)
		}
		l.stats.Bytes += magicLen
	}
	l.active = f
	l.activeIdx = idx
	l.activeLen = st.Size()
	if st.Size() == 0 {
		l.activeLen = magicLen
	}
	return nil
}

func (l *Log) segmentPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%08d.vlog", idx))
}

// segmentIndexes lists existing segment indexes in ascending order.
func (l *Log) segmentIndexes() ([]int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("verdictlog: %w", err)
	}
	var idxs []int
	for _, e := range ents {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "%08d.vlog", &idx); n == 1 &&
			e.Name() == fmt.Sprintf("%08d.vlog", idx) {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// Compact rewrites the live (last-wins, optionally MaxRecords-bounded)
// record set into fresh segments and deletes the old ones. The new
// segments are written to a temp file and renamed into place at an index
// *above* every old segment before any old file is removed, so a crash at
// any point leaves a directory that replays to the same live set (replay
// is last-wins, and the rewrite is by construction the newest copy).
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("verdictlog: closed")
	}

	// Gather the live set by replaying from disk: the log does not keep
	// records in memory (only keys), and replay is exactly the dedup we
	// want. The mutex is held throughout — compaction is a maintenance
	// pause, expected off the request path (a ticker in dualserved).
	//
	// The active segment stays open and writable the whole way: replay
	// reads segments through separate handles (writes are unbuffered
	// syscalls, so they are visible), and every fallible step below leaves
	// l.active untouched — a transient error (e.g. ENOSPC) aborts this
	// compaction but appends keep working and the next tick retries.
	idxs, err := l.segmentIndexes()
	if err != nil {
		return err
	}
	byKey := make(map[Key]int)
	var order []Record
	for _, idx := range idxs {
		recs, _, _, err := replaySegment(l.segmentPath(idx))
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if at, dup := byKey[rec.key()]; dup {
				order[at] = rec
				continue
			}
			byKey[rec.key()] = len(order)
			order = append(order, rec)
		}
	}
	if l.opts.MaxRecords > 0 && len(order) > l.opts.MaxRecords {
		order = order[len(order)-l.opts.MaxRecords:]
	}

	newIdx := 0
	if n := len(idxs); n > 0 {
		newIdx = idxs[n-1] + 1
	}
	tmp := filepath.Join(l.dir, "compact.tmp")
	if err := writeSegmentFile(tmp, order); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.segmentPath(newIdx)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("verdictlog: %w", err)
	}
	st, err := os.Stat(l.segmentPath(newIdx))
	if err != nil {
		return fmt.Errorf("verdictlog: %w", err)
	}

	// The compacted copy is durably in place at the highest index. Only
	// now swap the active segment: openSegment leaves l.active untouched
	// on failure, in which case appends keep landing in the old active
	// segment — only keys absent from l.seen, hence absent from the
	// compacted copy, so last-wins replay stays correct — and the next
	// compaction tick retries over the union.
	oldActive := l.active
	if err := l.openSegment(newIdx + 1); err != nil {
		return err
	}
	_ = oldActive.Close() // retired; its records live in the compacted copy
	for _, idx := range idxs {
		// A leftover old segment replays to the same live set (the
		// compacted segment is newer and last-wins), so a failed remove
		// costs disk space, not correctness — keep removing the rest.
		_ = os.Remove(l.segmentPath(idx))
	}

	// Rebuild in-memory state over the compacted set.
	l.seen = make(map[Key]struct{}, len(order))
	for _, rec := range order {
		l.seen[rec.key()] = struct{}{}
	}
	l.stats.Compactions++
	l.stats.LiveRecords = len(order)
	l.stats.Segments = 2 // compacted segment + the fresh active
	l.stats.Bytes = st.Size() + magicLen
	l.stats.TruncatedBytes = 0
	return nil
}

// writeSegmentFile writes a complete segment (magic + frames) to path and
// syncs it before returning.
func writeSegmentFile(path string, recs []Record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("verdictlog: %w", err)
	}
	defer f.Close()
	buf := append([]byte(nil), segmentMagic[:]...)
	for i := range recs {
		payload, err := encodeRecord(&recs[i])
		if err != nil {
			return err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	}
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("verdictlog: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("verdictlog: %w", err)
	}
	return f.Close()
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.active.Sync(); err != nil {
		_ = l.active.Close()
		return fmt.Errorf("verdictlog: %w", err)
	}
	return l.active.Close()
}

// encodeRecord serializes rec into a frame payload.
func encodeRecord(rec *Record) ([]byte, error) {
	if len(rec.Engine) > 255 {
		return nil, fmt.Errorf("verdictlog: engine name %q too long", rec.Engine)
	}
	if rec.N < 0 || rec.N > maxUniverse {
		return nil, fmt.Errorf("verdictlog: universe %d out of range", rec.N)
	}
	res := rec.Res
	var flags byte
	if res.Dual {
		flags |= flagDual
	}
	if res.Swapped {
		flags |= flagSwapped
	}
	buf := make([]byte, 0, 128)
	buf = append(buf, recordVersion, flags, byte(int(res.Reason)), byte(len(rec.Engine)))
	buf = append(buf, rec.Engine...)
	buf = append(buf, rec.FG[:]...)
	buf = append(buf, rec.FH[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.N))
	buf = appendInt32(buf, res.GEdge)
	buf = appendInt32(buf, res.HEdge)
	buf = appendInt32(buf, res.RedundantVertex)
	buf = appendElems(buf, res.Witness.Elems())
	buf = appendElems(buf, res.CoWitness.Elems())
	buf = appendElems(buf, res.FailPath)
	return buf, nil
}

// maxUniverse mirrors cluster's wire bound: a corrupt n must not drive a
// huge bitset allocation at replay.
const maxUniverse = 1 << 24

func appendInt32(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(int32(v)))
}

func appendElems(buf []byte, elems []int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(elems)))
	for _, e := range elems {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e)))
	}
	return buf
}

// decodeRecord parses a frame payload. Any structural violation is an
// error — the caller treats it like a CRC failure and truncates.
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	d := decoder{buf: payload}
	version := d.u8()
	flags := d.u8()
	reason := int(d.u8())
	engLen := int(d.u8())
	if version != recordVersion {
		return rec, fmt.Errorf("verdictlog: record version %d", version)
	}
	eng := d.bytes(engLen)
	fg := d.bytes(len(rec.FG))
	fh := d.bytes(len(rec.FH))
	n := int(d.u32())
	gEdge := d.i32()
	hEdge := d.i32()
	redundant := d.i32()
	witness := d.elems()
	coWitness := d.elems()
	failPath := d.elems()
	if d.err != nil {
		return rec, d.err
	}
	if len(d.buf) != d.off {
		return rec, fmt.Errorf("verdictlog: %d trailing payload bytes", len(d.buf)-d.off)
	}
	if reason < int(core.ReasonDual) || reason > int(core.ReasonNewTransversal) {
		return rec, fmt.Errorf("verdictlog: unknown reason %d", reason)
	}
	if n < 0 || n > maxUniverse {
		return rec, fmt.Errorf("verdictlog: universe %d out of range", n)
	}
	// Like cluster.WireVerdict.ToResult: the redundant vertex is rendered
	// via a symbol-table lookup, so a replayed record with an out-of-range
	// index would poison the cache with a panic-on-render entry.
	if redundant < -1 || redundant >= n {
		return rec, fmt.Errorf("verdictlog: redundant vertex %d outside [-1,%d)", redundant, n)
	}
	for _, e := range witness {
		if e < 0 || e >= n {
			return rec, fmt.Errorf("verdictlog: witness vertex %d outside [0,%d)", e, n)
		}
	}
	for _, e := range coWitness {
		if e < 0 || e >= n {
			return rec, fmt.Errorf("verdictlog: co-witness vertex %d outside [0,%d)", e, n)
		}
	}
	rec.Engine = string(eng)
	copy(rec.FG[:], fg)
	copy(rec.FH[:], fh)
	rec.N = n
	res := &core.Result{
		Dual:            flags&flagDual != 0,
		Reason:          core.Reason(reason),
		GEdge:           gEdge,
		HEdge:           hEdge,
		RedundantVertex: redundant,
		Swapped:         flags&flagSwapped != 0,
	}
	if len(witness) > 0 {
		res.Witness = bitset.FromSlice(n, witness)
	}
	if len(coWitness) > 0 {
		res.CoWitness = bitset.FromSlice(n, coWitness)
	}
	if len(failPath) > 0 {
		res.FailPath = failPath
	}
	rec.Res = res
	return rec, nil
}

// decoder is a bounds-checked little-endian payload reader.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) i32() int { return int(int32(d.u32())) }

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) elems() []int {
	count := int(d.u32())
	if d.err != nil {
		return nil
	}
	if count < 0 || count > maxUniverse || d.off+4*count > len(d.buf) {
		d.fail()
		return nil
	}
	if count == 0 {
		return nil
	}
	out := make([]int, count)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("verdictlog: truncated payload")
	}
}

// replaySegment reads one segment, returning the records up to the first
// corrupt frame, the byte size that survives, and how many trailing bytes
// were dropped as corrupt. It repairs nothing on disk — dropped bytes are
// simply never replayed again after the next compaction rewrites the set.
func replaySegment(path string) (recs []Record, size, truncated int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("verdictlog: %w", err)
	}
	total := int64(len(data))
	if len(data) < magicLen || [magicLen]byte(data[:magicLen]) != segmentMagic {
		// Wrong or missing magic: the whole file is noise.
		return nil, 0, total, nil
	}
	off := int64(magicLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, total - off, nil
		}
		if len(rest) < 4 {
			return recs, off, total - off, nil
		}
		plen := int64(binary.LittleEndian.Uint32(rest))
		if plen > maxPayload || int64(len(rest)) < 4+plen+4 {
			return recs, off, total - off, nil
		}
		payload := rest[4 : 4+plen]
		want := binary.LittleEndian.Uint32(rest[4+plen:])
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, off, total - off, nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, off, total - off, nil
		}
		recs = append(recs, rec)
		off += 4 + plen + 4
	}
}
