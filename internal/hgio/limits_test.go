package hgio

import (
	"errors"
	"strings"
	"testing"
)

func TestParseEdgesLimitedAcceptsWithinLimits(t *testing.T) {
	lim := Limits{MaxEdges: 4, MaxEdgeVerts: 3, MaxUniverse: 6, MaxLineBytes: 64}
	el, err := ParseEdgesLimited(strings.NewReader("a b\nc d\n# comment\n-\n"), lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(el) != 3 {
		t.Fatalf("edges = %d, want 3", len(el))
	}
	// The zero Limits accepts everything ParseEdges does.
	el2, err := ParseEdgesLimited(strings.NewReader("a b c d e f g h\n"), Limits{})
	if err != nil || len(el2) != 1 {
		t.Fatalf("zero limits rejected valid input: %v", err)
	}
}

func TestParseEdgesLimitedRejections(t *testing.T) {
	cases := []struct {
		name     string
		input    string
		lim      Limits
		quantity string
	}{
		{"edges", "a\nb\nc\n", Limits{MaxEdges: 2}, "edges"},
		{"edge vertices", "a b c d\n", Limits{MaxEdgeVerts: 3}, "edge vertices"},
		{"universe", "a b\nc d\ne f\n", Limits{MaxUniverse: 4}, "universe"},
		{"line bytes", strings.Repeat("x", 100) + "\n", Limits{MaxLineBytes: 32}, "line bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseEdgesLimited(strings.NewReader(c.input), c.lim)
			if err == nil {
				t.Fatal("oversized input accepted")
			}
			if !errors.Is(err, ErrLimitExceeded) {
				t.Fatalf("err = %v; want ErrLimitExceeded match", err)
			}
			var le *LimitError
			if !errors.As(err, &le) || le.Quantity != c.quantity {
				t.Fatalf("err = %v; want LimitError on %q", err, c.quantity)
			}
		})
	}
}

func TestParseEdgesLimitedKeepsSyntaxErrors(t *testing.T) {
	_, err := ParseEdgesLimited(strings.NewReader("a - b\n"), Limits{MaxEdges: 10})
	if err == nil || errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("syntax error misclassified: %v", err)
	}
}

func TestReadHypergraphsLimitedSharedUniverse(t *testing.T) {
	lim := Limits{MaxUniverse: 3}
	// Each list alone has ≤ 3 names; the shared table has 4.
	_, _, err := ReadHypergraphsLimited(lim,
		strings.NewReader("a b\nb c\n"),
		strings.NewReader("c d\n"))
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("combined universe overflow not caught: %v", err)
	}
	hs, sy, err := ReadHypergraphsLimited(Limits{MaxUniverse: 4},
		strings.NewReader("a b\nb c\n"),
		strings.NewReader("c d\n"))
	if err != nil || len(hs) != 2 || sy.Len() != 4 {
		t.Fatalf("valid input rejected: %v", err)
	}
	if hs[0].N() != hs[1].N() {
		t.Fatal("universes differ")
	}
}

func TestReadDatasetLimited(t *testing.T) {
	_, _, err := ReadDatasetLimited(strings.NewReader("milk bread\nbeer\n"), Limits{MaxEdges: 1})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("row limit not enforced: %v", err)
	}
	d, _, err := ReadDatasetLimited(strings.NewReader("milk bread\nbeer\n"), Limits{MaxEdges: 2})
	if err != nil || d.NumRows() != 2 || d.NumItems() != 3 {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestReadRelationCSVLimited(t *testing.T) {
	csv := "name,dept\nann,sales\nbob,eng\n"
	if _, err := ReadRelationCSVLimited(strings.NewReader(csv), Limits{MaxEdges: 1}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("tuple limit not enforced: %v", err)
	}
	if _, err := ReadRelationCSVLimited(strings.NewReader(csv), Limits{MaxEdgeVerts: 1}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("column limit not enforced: %v", err)
	}
	rel, err := ReadRelationCSVLimited(strings.NewReader(csv), Limits{MaxEdges: 2, MaxEdgeVerts: 2, MaxUniverse: 2})
	if err != nil || rel.NumRows() != 2 {
		t.Fatalf("valid relation rejected: %v", err)
	}
}
