package hgio_test

import (
	"strings"
	"testing"
	"testing/quick"

	"dualspace/internal/hgio"
)

// TestQuickParseEdgesNeverPanics: arbitrary input must parse or error,
// never panic.
func TestQuickParseEdgesNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = hgio.ParseEdges(strings.NewReader(s))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCSVNeverPanics: arbitrary CSV-ish input must never panic.
func TestQuickCSVNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = hgio.ReadRelationCSV(strings.NewReader(s))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickHypergraphRoundTrip: any parsed edge list survives a
// write/parse cycle with the same family.
func TestQuickHypergraphRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		// Decode raw bytes into a well-formed edge file over letters a..f.
		var b strings.Builder
		for i, x := range raw {
			b.WriteByte('a' + x%6)
			if i%3 == 2 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
		hs, sy, err := hgio.ReadHypergraphs(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		var out strings.Builder
		if err := hgio.WriteHypergraph(&out, hs[0], sy); err != nil {
			return false
		}
		hs2, _, err := hgio.ReadHypergraphs(strings.NewReader(out.String()))
		if err != nil {
			return false
		}
		// The universes can shrink if a vertex never survives (it cannot:
		// write emits every vertex present), so families must match when
		// padded to the same universe — equality of edge count and of each
		// canonical rendering suffices here.
		return hs2[0].M() == hs[0].M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHugeLine ensures the scanner accepts long edge lines (the buffer is
// raised beyond bufio's default).
func TestHugeLine(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100000; i++ {
		b.WriteString("v")
		b.WriteString(string(rune('a' + i%26)))
		b.WriteString(" ")
	}
	el, err := hgio.ParseEdges(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(el) != 1 || len(el[0]) != 100000 {
		t.Fatalf("huge line parsed into %d edges", len(el))
	}
}
