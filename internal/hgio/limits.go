package hgio

// Input limits for untrusted sources. The CLI readers in hgio.go accept
// whatever the file contains; network-facing consumers (internal/service)
// parse through the *Limited variants below, which reject oversized input
// with typed errors before any hypergraph is materialized.

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strings"

	"dualspace/internal/hypergraph"
	"dualspace/internal/itemsets"
	"dualspace/internal/keys"
)

// ErrLimitExceeded is the sentinel every LimitError matches via errors.Is.
var ErrLimitExceeded = errors.New("hgio: input exceeds limit")

// LimitError reports which input limit was exceeded and by how much.
// Got < 0 means "more than the limit" without an exact count (e.g. an
// over-long line that was never fully read).
type LimitError struct {
	// Quantity names the bounded dimension: "edges", "edge vertices",
	// "universe", "line bytes", "rows", "columns", "attributes".
	Quantity string
	Got, Max int
}

// Error renders the violation.
func (e *LimitError) Error() string {
	if e.Got < 0 {
		return fmt.Sprintf("hgio: input exceeds limit: more than %d %s", e.Max, e.Quantity)
	}
	return fmt.Sprintf("hgio: input exceeds limit: %d %s > %d", e.Got, e.Quantity, e.Max)
}

// Is makes errors.Is(err, ErrLimitExceeded) true for every LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrLimitExceeded }

// Limits bounds the accepted size of untrusted input. A zero field means
// "unlimited" for that dimension, so the zero Limits value accepts
// everything the unlimited readers do.
type Limits struct {
	// MaxEdges bounds the number of edges (hypergraphs), transactions
	// (datasets) or tuples (relations).
	MaxEdges int
	// MaxEdgeVerts bounds the vertices per edge (and columns per CSV row).
	MaxEdgeVerts int
	// MaxUniverse bounds the number of distinct vertex/item/attribute
	// names. For multi-part inputs over a shared universe, use
	// CheckUniverse on the combined symbol table as well.
	MaxUniverse int
	// MaxLineBytes bounds a single input line (default scanner limit when
	// zero).
	MaxLineBytes int
}

// CheckUniverse validates a combined universe size (e.g. after interning
// several edge lists into one Symbols table) against MaxUniverse.
func (l Limits) CheckUniverse(n int) error {
	if l.MaxUniverse > 0 && n > l.MaxUniverse {
		return &LimitError{Quantity: "universe", Got: n, Max: l.MaxUniverse}
	}
	return nil
}

// ParseEdgesLimited reads the line-oriented edge format like ParseEdges,
// rejecting input that exceeds lim with a LimitError. The universe bound is
// enforced against the distinct names of this list alone.
func ParseEdgesLimited(r io.Reader, lim Limits) (EdgeList, error) {
	var out EdgeList
	sc := bufio.NewScanner(r)
	maxLine := 16 * 1024 * 1024
	if lim.MaxLineBytes > 0 {
		maxLine = lim.MaxLineBytes
	}
	sc.Buffer(make([]byte, 0, min(64*1024, maxLine)), maxLine)
	var distinct map[string]struct{}
	if lim.MaxUniverse > 0 {
		distinct = make(map[string]struct{})
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lim.MaxEdges > 0 && len(out) >= lim.MaxEdges {
			return nil, &LimitError{Quantity: "edges", Got: -1, Max: lim.MaxEdges}
		}
		if line == "-" {
			out = append(out, []string{})
			continue
		}
		fields := strings.Fields(line)
		if lim.MaxEdgeVerts > 0 && len(fields) > lim.MaxEdgeVerts {
			return nil, &LimitError{Quantity: "edge vertices", Got: len(fields), Max: lim.MaxEdgeVerts}
		}
		for _, f := range fields {
			if f == "-" {
				return nil, fmt.Errorf("hgio: line %d: '-' must stand alone", lineNo)
			}
			if distinct != nil {
				distinct[f] = struct{}{}
				if len(distinct) > lim.MaxUniverse {
					return nil, &LimitError{Quantity: "universe", Got: -1, Max: lim.MaxUniverse}
				}
			}
		}
		out = append(out, fields)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, &LimitError{Quantity: "line bytes", Got: -1, Max: maxLine}
		}
		return nil, fmt.Errorf("hgio: %w", err)
	}
	return out, nil
}

// ReadHypergraphsLimited is ReadHypergraphs through ParseEdgesLimited, with
// the universe bound also enforced on the shared symbol table (the lists
// together may exceed MaxUniverse even when each alone does not).
func ReadHypergraphsLimited(lim Limits, readers ...io.Reader) ([]*hypergraph.Hypergraph, *Symbols, error) {
	sy := NewSymbols()
	lists := make([]EdgeList, 0, len(readers))
	for _, r := range readers {
		el, err := ParseEdgesLimited(r, lim)
		if err != nil {
			return nil, nil, err
		}
		el.InternAll(sy)
		if err := lim.CheckUniverse(sy.Len()); err != nil {
			return nil, nil, err
		}
		lists = append(lists, el)
	}
	out := make([]*hypergraph.Hypergraph, len(lists))
	for i, el := range lists {
		out[i] = el.Build(sy)
	}
	return out, sy, nil
}

// ReadDatasetLimited is ReadDataset through ParseEdgesLimited.
func ReadDatasetLimited(r io.Reader, lim Limits) (*itemsets.Dataset, *Symbols, error) {
	el, err := ParseEdgesLimited(r, lim)
	if err != nil {
		return nil, nil, err
	}
	sy := NewSymbols()
	el.InternAll(sy)
	if err := lim.CheckUniverse(sy.Len()); err != nil {
		return nil, nil, err
	}
	d := itemsets.NewDataset(sy.Len())
	if err := d.SetItemNames(sy.Names()); err != nil {
		return nil, nil, err
	}
	for _, row := range el {
		idx := make([]int, len(row))
		for i, name := range row {
			idx[i] = sy.Intern(name)
		}
		d.AddRow(idx...)
	}
	return d, sy, nil
}

// ReadRelationCSVLimited is ReadRelationCSV with MaxEdges bounding the
// tuple count and MaxEdgeVerts / MaxUniverse the attribute count.
// MaxLineBytes is NOT enforced here (encoding/csv has no per-field bound);
// callers reading untrusted sources must cap the reader itself, as the
// service does with http.MaxBytesReader.
func ReadRelationCSVLimited(r io.Reader, lim Limits) (*keys.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("hgio: reading CSV header: %w", err)
	}
	if lim.MaxEdgeVerts > 0 && len(header) > lim.MaxEdgeVerts {
		return nil, &LimitError{Quantity: "columns", Got: len(header), Max: lim.MaxEdgeVerts}
	}
	if lim.MaxUniverse > 0 && len(header) > lim.MaxUniverse {
		return nil, &LimitError{Quantity: "attributes", Got: len(header), Max: lim.MaxUniverse}
	}
	rel, err := keys.NewRelation(header)
	if err != nil {
		return nil, err
	}
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("hgio: reading CSV row: %w", err)
		}
		rows++
		if lim.MaxEdges > 0 && rows > lim.MaxEdges {
			return nil, &LimitError{Quantity: "rows", Got: -1, Max: lim.MaxEdges}
		}
		if err := rel.AddRow(rec...); err != nil {
			return nil, err
		}
	}
}
