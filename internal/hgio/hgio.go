// Package hgio reads and writes the text formats used by the dualspace
// command-line tools: hypergraphs / transaction databases as one edge (row)
// of whitespace-separated vertex (item) names per line, and relational
// instances as CSV with a header row.
//
// Hypergraph format:
//
//	# duality instance
//	a b
//	c d
//
// Lines starting with '#' (after optional whitespace) and blank lines are
// skipped. Vertex names are interned in first-appearance order into a
// Symbols table; several files can share one table so the resulting
// hypergraphs live in a common universe, which the DUAL machinery requires.
package hgio

import (
	"fmt"
	"io"
	"strings"

	"dualspace/internal/hypergraph"
	"dualspace/internal/itemsets"
	"dualspace/internal/keys"
)

// Symbols interns vertex names to dense indices.
type Symbols struct {
	names []string
	index map[string]int
}

// NewSymbols returns an empty table.
func NewSymbols() *Symbols {
	return &Symbols{index: map[string]int{}}
}

// Intern returns the index of name, assigning the next free index on first
// sight.
func (s *Symbols) Intern(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.names)
	s.index[name] = i
	s.names = append(s.names, name)
	return i
}

// Len returns the number of interned names.
func (s *Symbols) Len() int { return len(s.names) }

// Name returns the name at index i.
func (s *Symbols) Name(i int) string { return s.names[i] }

// Names returns a copy of all names in index order.
func (s *Symbols) Names() []string { return append([]string(nil), s.names...) }

// EdgeList is a parsed but not yet interned hypergraph: one name list per
// edge.
type EdgeList [][]string

// ParseEdges reads the line-oriented edge format. An explicit empty edge
// can be written as the single token "-" (needed to express the constant ⊤
// hypergraph {∅}). It is ParseEdgesLimited without bounds (limits.go).
func ParseEdges(r io.Reader) (EdgeList, error) {
	return ParseEdgesLimited(r, Limits{})
}

// InternAll interns every name of the edge list into sy.
func (el EdgeList) InternAll(sy *Symbols) {
	for _, e := range el {
		for _, name := range e {
			sy.Intern(name)
		}
	}
}

// Build converts the edge list into a hypergraph over sy's universe. Call
// InternAll on every edge list sharing the table before building any of
// them, so the universe is final.
func (el EdgeList) Build(sy *Symbols) *hypergraph.Hypergraph {
	h := hypergraph.New(sy.Len())
	for _, e := range el {
		idx := make([]int, len(e))
		for i, name := range e {
			idx[i] = sy.Intern(name)
		}
		h.AddEdgeElems(idx...)
	}
	return h
}

// ReadHypergraphs reads several edge files into hypergraphs over a shared
// universe, without input bounds (see ReadHypergraphsLimited).
func ReadHypergraphs(readers ...io.Reader) ([]*hypergraph.Hypergraph, *Symbols, error) {
	return ReadHypergraphsLimited(Limits{}, readers...)
}

// WriteHypergraph writes h in the line-oriented format using sy for names
// (nil sy writes numeric vertex ids).
func WriteHypergraph(w io.Writer, h *hypergraph.Hypergraph, sy *Symbols) error {
	for _, e := range h.Edges() {
		if e.IsEmpty() {
			if _, err := fmt.Fprintln(w, "-"); err != nil {
				return err
			}
			continue
		}
		var parts []string
		e.ForEach(func(v int) bool {
			if sy != nil {
				parts = append(parts, sy.Name(v))
			} else {
				parts = append(parts, fmt.Sprint(v))
			}
			return true
		})
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// ReadDataset reads a transaction database in the same line format: one
// transaction per line, items separated by whitespace, without input
// bounds (see ReadDatasetLimited).
func ReadDataset(r io.Reader) (*itemsets.Dataset, *Symbols, error) {
	return ReadDatasetLimited(r, Limits{})
}

// ReadRelationCSV reads a relational instance from CSV: the first record is
// the attribute header, the rest are tuples. It is ReadRelationCSVLimited
// without bounds.
func ReadRelationCSV(r io.Reader) (*keys.Relation, error) {
	return ReadRelationCSVLimited(r, Limits{})
}
