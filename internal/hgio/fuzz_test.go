package hgio

import (
	"errors"
	"strings"
	"testing"
)

// fuzzLimits is the limit profile the fuzzer exercises — small enough that
// the property checks stay cheap, shaped like the service defaults.
var fuzzLimits = Limits{MaxEdges: 64, MaxEdgeVerts: 16, MaxUniverse: 64, MaxLineBytes: 1 << 12}

// FuzzParseEdges asserts, on arbitrary input, that the hardened parser (a)
// never panics, (b) never returns an edge list exceeding its limits, and
// (c) agrees with the unlimited parser whenever it accepts. The seed inputs
// double as the regression corpus in testdata/fuzz/FuzzParseEdges.
func FuzzParseEdges(f *testing.F) {
	for _, seed := range []string{
		"",
		"a b\nc d\n",
		"# comment only\n\n   \n",
		"-\n",
		"a b\n-\nc\n",
		"a - b\n",
		"  leading ws\tand tabs \n",
		"dup dup dup\n",
		strings.Repeat("v ", 20) + "\n",
		strings.Repeat("edge\n", 70),
		strings.Repeat("x", 5000),
		"nul\x00byte\n",
		"ütf8 ✓\n",
		"\xff\xfe invalid utf8\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		el, err := ParseEdgesLimited(strings.NewReader(in), fuzzLimits)
		if err != nil {
			// Rejections must be classified: either a limit violation or a
			// syntax error mentioning the offending line.
			var le *LimitError
			if !errors.As(err, &le) && !strings.Contains(err.Error(), "line") {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		if len(el) > fuzzLimits.MaxEdges {
			t.Fatalf("accepted %d edges > limit %d", len(el), fuzzLimits.MaxEdges)
		}
		sy := NewSymbols()
		el.InternAll(sy)
		if sy.Len() > fuzzLimits.MaxUniverse {
			t.Fatalf("accepted universe %d > limit %d", sy.Len(), fuzzLimits.MaxUniverse)
		}
		for _, e := range el {
			if len(e) > fuzzLimits.MaxEdgeVerts {
				t.Fatalf("accepted edge with %d vertices > limit %d", len(e), fuzzLimits.MaxEdgeVerts)
			}
		}
		// Accepted input must parse identically without limits, and build a
		// hypergraph with exactly one edge per accepted row.
		plain, err := ParseEdges(strings.NewReader(in))
		if err != nil {
			t.Fatalf("limited parser accepted what the plain parser rejects: %v", err)
		}
		if len(plain) != len(el) {
			t.Fatalf("limited/plain edge counts differ: %d vs %d", len(el), len(plain))
		}
		h := el.Build(sy)
		if h.M() != len(el) || h.N() != sy.Len() {
			t.Fatalf("built hypergraph shape %d/%d != parsed %d/%d", h.M(), h.N(), len(el), sy.Len())
		}
	})
}
