package hgio_test

import (
	"bytes"
	"strings"
	"testing"

	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
)

func TestParseEdges(t *testing.T) {
	in := `
# a comment
a b
  c d  # not a comment marker mid-line: token "#" kept? no — fields split
`
	el, err := hgio.ParseEdges(strings.NewReader("a b\nc d\n\n# comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(el) != 2 || len(el[0]) != 2 {
		t.Fatalf("edges: %v", el)
	}
	_ = in
}

func TestEmptyEdgeToken(t *testing.T) {
	el, err := hgio.ParseEdges(strings.NewReader("-\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(el) != 1 || len(el[0]) != 0 {
		t.Fatalf("edges: %v", el)
	}
	if _, err := hgio.ParseEdges(strings.NewReader("a - b\n")); err == nil {
		t.Error("inline '-' accepted")
	}
}

func TestSharedUniverse(t *testing.T) {
	hs, sy, err := hgio.ReadHypergraphs(
		strings.NewReader("a b\nc d\n"),
		strings.NewReader("a c\na d\nb c\nb d\n"),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, h := hs[0], hs[1]
	if g.N() != 4 || h.N() != 4 {
		t.Fatalf("universes: %d, %d", g.N(), h.N())
	}
	if sy.Len() != 4 || sy.Name(0) != "a" {
		t.Fatalf("symbols: %v", sy.Names())
	}
	if g.M() != 2 || h.M() != 4 {
		t.Fatal("edge counts wrong")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	hs, sy, err := hgio.ReadHypergraphs(strings.NewReader("a b\nc\n-\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hgio.WriteHypergraph(&buf, hs[0], sy); err != nil {
		t.Fatal(err)
	}
	hs2, sy2, err := hgio.ReadHypergraphs(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if sy2.Len() != sy.Len() || !hs2[0].EqualAsFamily(hs[0]) {
		t.Fatalf("round trip changed hypergraph: %q", buf.String())
	}
	// Numeric fallback.
	var buf2 bytes.Buffer
	if err := hgio.WriteHypergraph(&buf2, hypergraph.MustFromEdges(2, [][]int{{0, 1}}), nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf2.String()) != "0 1" {
		t.Errorf("numeric write: %q", buf2.String())
	}
}

func TestReadDataset(t *testing.T) {
	d, sy, err := hgio.ReadDataset(strings.NewReader("milk bread\nmilk eggs\nbread\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 || d.NumItems() != 3 {
		t.Fatalf("dataset shape: %d rows, %d items", d.NumRows(), d.NumItems())
	}
	if sy.Name(0) != "milk" || d.ItemName(1) != "bread" {
		t.Error("item names wrong")
	}
}

func TestReadRelationCSV(t *testing.T) {
	rel, err := hgio.ReadRelationCSV(strings.NewReader("name,dept\nann,sales\nbob,eng\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumAttrs() != 2 || rel.NumRows() != 2 {
		t.Fatalf("relation shape: %d attrs, %d rows", rel.NumAttrs(), rel.NumRows())
	}
	if _, err := hgio.ReadRelationCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := hgio.ReadRelationCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header accepted")
	}
}
