// Package space provides an explicit workspace meter, the executable
// counterpart of the Turing-machine space bounds in Gottlob (PODS 2013),
// Sections 3–5.
//
// The paper's claims are about retained worktape bits: the input is on a
// read-only tape (free), the output is write-only (free), and the bound
// counts everything the machine keeps between steps. The meter reproduces
// that accounting: computations allocate frames of registers when a
// procedure activates and free them on return; per-level caches are
// allocated for as long as a level of the pathnode pipeline stays live. The
// peak of the live count is the measured space, which the experiments
// compare against c·log²n (EXPERIMENTS.md, E5/E8/E13).
//
// A nil *Meter is valid everywhere and meters nothing, so production code
// paths can run unmetered at zero cost.
package space

import "fmt"

// Meter tracks live and peak workspace bits.
type Meter struct {
	live int64
	peak int64
}

// NewMeter returns a fresh meter with zero live and peak counts.
func NewMeter() *Meter { return &Meter{} }

// Alloc records the allocation of the given number of workspace bits.
// Alloc on a nil meter is a no-op.
func (m *Meter) Alloc(bits int64) {
	if m == nil {
		return
	}
	if bits < 0 {
		panic("space: negative allocation")
	}
	m.live += bits
	if m.live > m.peak {
		m.peak = m.live
	}
}

// Free records the release of previously allocated bits. Free on a nil
// meter is a no-op. Freeing more than is live panics: it always indicates
// an accounting bug.
func (m *Meter) Free(bits int64) {
	if m == nil {
		return
	}
	m.live -= bits
	if m.live < 0 {
		panic("space: freed more bits than allocated")
	}
}

// Live returns the currently allocated bits (0 for a nil meter).
func (m *Meter) Live() int64 {
	if m == nil {
		return 0
	}
	return m.live
}

// Peak returns the maximum of Live over the meter's history (0 for nil).
func (m *Meter) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak
}

// Reset zeroes both counters.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.live, m.peak = 0, 0
}

// String renders "live/peak" in bits.
func (m *Meter) String() string {
	return fmt.Sprintf("live=%db peak=%db", m.Live(), m.Peak())
}

// Frame is a procedure activation holding a fixed number of bits; it frees
// them on Leave. The zero Frame (and a Frame from a nil meter) is inert.
type Frame struct {
	m    *Meter
	bits int64
}

// Enter allocates a frame of the given size.
func (m *Meter) Enter(bits int64) Frame {
	m.Alloc(bits)
	return Frame{m: m, bits: bits}
}

// Leave releases the frame. Leave is idempotent.
func (f *Frame) Leave() {
	if f.m == nil {
		return
	}
	f.m.Free(f.bits)
	f.m = nil
}

// BitsForRange returns the number of bits needed to store one register
// holding values in [0, max]: ⌈log₂(max+1)⌉, and at least 1.
func BitsForRange(max int) int64 {
	if max < 1 {
		return 1
	}
	bits := int64(0)
	for v := max; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
