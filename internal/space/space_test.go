package space

import "testing"

func TestMeterBasics(t *testing.T) {
	m := NewMeter()
	m.Alloc(10)
	if m.Live() != 10 || m.Peak() != 10 {
		t.Fatalf("after Alloc: %v", m)
	}
	m.Alloc(5)
	m.Free(12)
	if m.Live() != 3 {
		t.Fatalf("live = %d", m.Live())
	}
	if m.Peak() != 15 {
		t.Fatalf("peak = %d", m.Peak())
	}
	m.Reset()
	if m.Live() != 0 || m.Peak() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestNilMeter(t *testing.T) {
	var m *Meter
	m.Alloc(5) // must not panic
	m.Free(5)
	if m.Live() != 0 || m.Peak() != 0 {
		t.Fatal("nil meter should read zero")
	}
	f := m.Enter(100)
	f.Leave()
}

func TestOverFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-free did not panic")
		}
	}()
	NewMeter().Free(1)
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative alloc did not panic")
		}
	}()
	NewMeter().Alloc(-1)
}

func TestFrames(t *testing.T) {
	m := NewMeter()
	f1 := m.Enter(8)
	f2 := m.Enter(4)
	if m.Live() != 12 {
		t.Fatalf("live = %d", m.Live())
	}
	f2.Leave()
	f2.Leave() // idempotent
	if m.Live() != 8 {
		t.Fatalf("live after leave = %d", m.Live())
	}
	f1.Leave()
	if m.Live() != 0 || m.Peak() != 12 {
		t.Fatalf("final: %v", m)
	}
}

func TestBitsForRange(t *testing.T) {
	cases := []struct {
		max  int
		want int64
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := BitsForRange(c.max); got != c.want {
			t.Errorf("BitsForRange(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	m := NewMeter()
	m.Alloc(3)
	if got := m.String(); got != "live=3b peak=3b" {
		t.Errorf("String = %q", got)
	}
}
