package service

// The chaos suite: the resilience layer's claims, proven against the armed
// fault-injection harness (internal/faultinject). Each test arms a
// process-global injector for its own duration (armFaults disarms on
// cleanup), so these tests cannot run in parallel with each other — none
// calls t.Parallel.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dualspace/internal/faultinject"
)

func armFaults(t *testing.T, spec string) {
	t.Helper()
	inj, err := faultinject.ParseSpec(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(inj)
	t.Cleanup(faultinject.Disable)
}

// resilienceStats reads the /statsz resilience section.
func resilienceStats(t *testing.T, url string) map[string]any {
	t.Helper()
	return getJSON(t, url+"/statsz")["resilience"].(map[string]any)
}

// blockWorker occupies one worker slot with a slow decide until the
// returned release func runs; it returns once the decomposition has
// actually started (the slot is held).
func blockWorker(t *testing.T, s *Server, ts *httptest.Server) (release func()) {
	t.Helper()
	started := make(chan struct{})
	var once sync.Once
	s.testHookDecideStart = func() { once.Do(func() { close(started) }) }
	g, h := matchingText(12)
	body, _ := json.Marshal(map[string]any{"g": g, "h": h})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("blocking decide never started")
	}
	return func() {
		cancel()
		<-done
	}
}

// postRaw sends body and returns the raw response (caller closes).
func postRaw(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDecidePanicContainedAndPoolSelfHeals: an injected kernel panic comes
// back as a clean 500 with reason "panic", the poisoned session is swapped
// for a fresh one, and the very next request computes normally.
func TestDecidePanicContainedAndPoolSelfHeals(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	armFaults(t, "decide:panic:every=1")
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != http.StatusInternalServerError || out["reason"] != reasonPanic {
		t.Fatalf("panicked decide: code=%d out=%v", code, out)
	}
	faultinject.Disable()
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 || out["dual"] != true {
		t.Fatalf("decide after self-heal: code=%d out=%v", code, out)
	}
	res := resilienceStats(t, ts.URL)
	if res["panics"].(float64) < 1 {
		t.Errorf("resilience.panics = %v, want >= 1", res["panics"])
	}
	if res["sessions_replaced"].(float64) < 1 {
		t.Errorf("resilience.sessions_replaced = %v, want >= 1", res["sessions_replaced"])
	}
	if res["faults_injected"].(float64) < 1 {
		t.Errorf("resilience.faults_injected = %v, want >= 1", res["faults_injected"])
	}
	if s.pool.Replaced() < 1 {
		t.Error("pool never replaced the poisoned session")
	}
}

// TestDecideBudgetTimeout: a client ?timeout_ms= budget expiring mid-compute
// is a 504 with reason "timeout" and a timeout counter hit — distinguished
// from a client disconnect even though both surface as context errors.
func TestDecideBudgetTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	armFaults(t, "decide:delay=30s")
	start := time.Now()
	code, out := post(t, ts.URL+"/v1/decide?timeout_ms=50", map[string]any{"g": gDual, "h": hDual})
	if code != http.StatusGatewayTimeout || out["reason"] != reasonTimeout {
		t.Fatalf("budget-expired decide: code=%d out=%v", code, out)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timeout answer took %v; the injected delay ignored the budget", elapsed)
	}
	if res := resilienceStats(t, ts.URL); res["timeouts"].(float64) < 1 {
		t.Errorf("resilience.timeouts = %v, want >= 1", res["timeouts"])
	}
}

// TestDecideServerTimeoutConfig: the same budget via Config.DecideTimeout,
// no client opt-in needed.
func TestDecideServerTimeoutConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1, DecideTimeout: 50 * time.Millisecond})
	armFaults(t, "decide:delay=30s")
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != http.StatusGatewayTimeout || out["reason"] != reasonTimeout {
		t.Fatalf("code=%d out=%v", code, out)
	}
}

func TestBadTimeoutParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"bogus", "0", "-5"} {
		code, out := post(t, ts.URL+"/v1/decide?timeout_ms="+q, map[string]any{"g": gDual, "h": hDual})
		if code != http.StatusBadRequest || out["reason"] != reasonBadRequest {
			t.Errorf("timeout_ms=%s: code=%d out=%v", q, code, out)
		}
	}
}

// TestInjectedComputeError: a non-panic injected failure flows through the
// ordinary 422 semantic-rejection path.
func TestInjectedComputeError(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	armFaults(t, "decide:error")
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != http.StatusUnprocessableEntity || out["reason"] != reasonUnprocessable {
		t.Fatalf("code=%d out=%v", code, out)
	}
}

// TestShedWhenQueueFull: with a zero-depth queue and every worker busy, new
// compute is shed immediately with 503 + Retry-After and reason "shed".
func TestShedWhenQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1, QueueDepth: -1})
	release := blockWorker(t, s, ts)
	defer release()
	resp := postRaw(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if out["reason"] != reasonShed {
		t.Errorf("reason = %v, want shed", out["reason"])
	}
	if res := resilienceStats(t, ts.URL); res["sheds"].(float64) < 1 {
		t.Errorf("resilience.sheds = %v, want >= 1", res["sheds"])
	}
}

// TestQueueWaitShed: a parked waiter whose bounded wait expires is shed
// instead of queueing forever.
func TestQueueWaitShed(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1, QueueDepth: 4, QueueWait: 30 * time.Millisecond})
	release := blockWorker(t, s, ts)
	defer release()
	start := time.Now()
	resp := postRaw(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("shed after %v, before the queue-wait bound", elapsed)
	}
}

// TestCacheHitsFlowWhileSaturated: the degraded mode's availability claim —
// a saturated worker pool does not block answers the verdict cache already
// holds, because the cache path never claims a slot.
func TestCacheHitsFlowWhileSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	code, _ := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 {
		t.Fatalf("warmup: code=%d", code)
	}
	release := blockWorker(t, s, ts)
	defer release()
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 || out["cached"] != true {
		t.Fatalf("cache hit under saturation: code=%d out=%v", code, out)
	}
}

// TestDrainShedsParkedWaitersAndRefusesNewWork: the shutdown-vs-queue fix.
// Waiters parked before drain begins fail fast with the shed taxonomy (not
// after their full queue-wait), /readyz flips to 503 while /healthz stays
// alive, and new compute is refused.
func TestDrainShedsParkedWaitersAndRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1, QueueDepth: 4, QueueWait: time.Hour})
	release := blockWorker(t, s, ts)
	defer release()

	parked := make(chan *http.Response, 1)
	go func() {
		buf, _ := json.Marshal(map[string]any{"g": gDual, "h": hNonDual})
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(buf))
		if err == nil {
			parked <- resp
		}
		close(parked)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for resilienceStats(t, ts.URL)["queue_waiters"].(float64) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never parked in the admission queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.BeginDrain()
	select {
	case resp := <-parked:
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || out["reason"] != reasonShed {
			t.Fatalf("parked waiter got code=%d out=%v, want shed 503", resp.StatusCode, out)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked waiter not failed fast by drain (would have waited the full queue-wait)")
	}

	// Readiness splits from liveness: the draining process reports healthy
	// but not ready, and /statsz says why.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready["ready"] != false || ready["draining"] != true {
		t.Fatalf("/readyz during drain: code=%d body=%v", resp.StatusCode, ready)
	}
	if ok := getJSON(t, ts.URL+"/healthz")["ok"]; ok != true {
		t.Fatalf("/healthz during drain = %v, want alive", ok)
	}
	if d := getJSON(t, ts.URL+"/statsz")["draining"]; d != true {
		t.Fatalf("/statsz draining = %v", d)
	}
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual})
	if code != http.StatusServiceUnavailable || out["reason"] != reasonShed {
		t.Fatalf("new compute during drain: code=%d out=%v, want shed 503", code, out)
	}
}

// TestReadyBeforeDrain: /readyz is 200 on a serving instance.
func TestReadyBeforeDrain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready map[string]any
	json.NewDecoder(resp.Body).Decode(&ready)
	if resp.StatusCode != 200 || ready["ready"] != true {
		t.Fatalf("/readyz: code=%d body=%v", resp.StatusCode, ready)
	}
}

// TestDrainInFlightCompletes: graceful shutdown does not cut off work that
// already holds a slot — the in-flight decide runs to its verdict.
func TestDrainInFlightCompletes(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	started := make(chan struct{})
	var once sync.Once
	s.testHookDecideStart = func() { once.Do(func() { close(started) }) }
	g, h := matchingText(8)
	type result struct {
		code int
		out  map[string]any
	}
	done := make(chan result, 1)
	go func() {
		code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": g, "h": h})
		done <- result{code, out}
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("decide never started")
	}
	s.BeginDrain()
	r := <-done
	if r.code != 200 || r.out["dual"] != true {
		t.Fatalf("in-flight decide under drain: code=%d out=%v", r.code, r.out)
	}
}

// TestDrainMidStreamTransversals: a drain beginning mid-stream ends
// /v1/transversals with a clean shed terminal record — valid NDJSON to the
// last line, so the client knows to re-submit elsewhere — instead of a cut
// socket.
func TestDrainMidStreamTransversals(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	armFaults(t, "stream_write:delay=5ms")
	g, _ := matchingText(10) // 2^10 transversals: far more than drain latency
	buf, _ := json.Marshal(map[string]any{"h": g})
	resp, err := http.Post(ts.URL+"/v1/transversals", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	s.BeginDrain()
	var last string
	records := 1
	for sc.Scan() {
		last = sc.Text()
		records++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broke instead of ending cleanly: %v (after %d records)", err, records)
	}
	var term struct {
		Done   bool   `json:"done"`
		Error  string `json:"error"`
		Reason string `json:"reason"`
		Count  int    `json:"count"`
	}
	if err := json.Unmarshal([]byte(last), &term); err != nil {
		t.Fatalf("terminal line is not JSON: %q", last)
	}
	if term.Done || term.Reason != reasonShed || term.Error == "" {
		t.Fatalf("terminal record = %+v, want shed taxonomy", term)
	}
	if term.Count >= 1<<10 {
		t.Fatalf("count = %d: stream finished before drain could interrupt it", term.Count)
	}
}

// TestBatchPanicRows: injected drain-step panics become per-row errors with
// reason "panic" — the rest of the batch completes, the terminal record
// balances, and the pool replaces every poisoned session.
func TestBatchPanicRows(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	armFaults(t, "batch_drain:panic:every=2")
	tri := "a b\nb c\na c\n"
	g3, h3 := matchingText(3)
	rows := []map[string]any{
		{"g": gDual, "h": hDual},
		{"g": gDual, "h": hNonDual},
		{"g": tri, "h": tri},
		{"g": g3, "h": h3},
	}
	var body bytes.Buffer
	for _, r := range rows {
		b, _ := json.Marshal(r)
		body.Write(b)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	panicsSeen, verdicts := 0, 0
	var term map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q", sc.Text())
		}
		switch {
		case row["done"] != nil:
			term = row
		case row["reason"] == reasonPanic:
			panicsSeen++
			if !strings.Contains(row["error"].(string), "panic") {
				t.Errorf("panic row error = %v", row["error"])
			}
		case row["error"] != nil:
			t.Errorf("unexpected error row: %v", row)
		default:
			verdicts++
		}
	}
	// every=2 over 4 distinct rows: exactly two drain steps panic.
	if panicsSeen != 2 || verdicts != 2 {
		t.Fatalf("panic rows = %d, verdicts = %d, want 2 + 2", panicsSeen, verdicts)
	}
	if term == nil || term["done"] != true || term["errors"].(float64) != 2 {
		t.Fatalf("terminal record = %v", term)
	}
	if res := resilienceStats(t, ts.URL); res["sessions_replaced"].(float64) < 2 {
		t.Errorf("sessions_replaced = %v, want >= 2", res["sessions_replaced"])
	}
}

// TestChaosMixedFaultsServerSurvives is the suite's integral claim: under a
// mixed fault storm — panics, delays, cancels, failing stream writes, cache
// faults — the process keeps answering, never wedges, and every poisoned
// session is replaced. Run with -race in CI.
func TestChaosMixedFaultsServerSurvives(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, CacheSize: 64, QueueDepth: 8, QueueWait: 100 * time.Millisecond})
	armFaults(t, "decide:panic:every=5,decide:delay=2ms:p=0.2,decide:cancel:every=13,"+
		"cache_lookup:error:every=7,batch_drain:panic:every=9,stream_write:error:every=11")

	instances := make([]map[string]any, 0, 6)
	tri := "a b\nb c\na c\n"
	instances = append(instances, map[string]any{"g": tri, "h": tri})
	for k := 2; k <= 6; k++ {
		g, h := matchingText(k)
		instances = append(instances, map[string]any{"g": g, "h": h})
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				code, _ := post(t, ts.URL+"/v1/decide", instances[(c+i)%len(instances)])
				mu.Lock()
				statuses[code]++
				mu.Unlock()
			}
		}(c)
	}
	// One batch per client rides along, exercising the drain-step boundary.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var body bytes.Buffer
			for i := 0; i < len(instances); i++ {
				b, _ := json.Marshal(instances[(c+i)%len(instances)])
				body.Write(b)
				body.WriteByte('\n')
			}
			resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", &body)
			if err != nil {
				return // a shed batch under storm is fine; the server must just survive
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(c)
	}
	wg.Wait()

	faultinject.Disable()
	// The storm is over: the server must answer cleanly, at full capacity.
	for _, in := range instances {
		code, _ := post(t, ts.URL+"/v1/decide", in)
		if code != 200 {
			t.Fatalf("post-storm decide: code=%d", code)
		}
	}
	res := resilienceStats(t, ts.URL)
	if res["panics"].(float64) < 1 {
		t.Errorf("storm fired no panics (statuses=%v)", statuses)
	}
	if got, want := s.pool.Replaced(), int64(res["panics"].(float64)); got < want {
		t.Errorf("sessions replaced = %d, panics = %d: some poisoned session was never swapped", got, want)
	}
	if s.pool.Free() != 4 {
		t.Errorf("pool free = %d, want full capacity 4 (a slot leaked)", s.pool.Free())
	}
	for code := range statuses {
		switch code {
		case 200, http.StatusInternalServerError, http.StatusServiceUnavailable,
			http.StatusUnprocessableEntity, http.StatusGatewayTimeout:
		default:
			t.Errorf("unexpected status %d under fault storm (statuses=%v)", code, statuses)
		}
	}
	if statuses[200] == 0 {
		t.Error("no request survived the storm — shedding is not bounded")
	}
}
