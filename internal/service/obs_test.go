package service

// Tests for the observability surface: /metricsz exposition validity,
// ?trace=1 stage accounting, /statsz–/metricsz agreement, and the access
// log.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string // raw text between the braces ("" when unlabeled)
	value  float64
}

// scrapeMetrics fetches and parses /metricsz, returning the samples and
// the TYPE declarations (family name → type).
func scrapeMetrics(t *testing.T, url string) ([]promSample, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metricsz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var samples []promSample
	types := make(map[string]string)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("unexpected comment line: %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		s := promSample{name: line[:sp], value: v}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			if !strings.HasSuffix(s.name, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			s.labels = s.name[i+1 : len(s.name)-1]
			s.name = s.name[:i]
		}
		samples = append(samples, s)
	}
	return samples, types
}

// find returns the value of the first sample matching name and containing
// every given label fragment.
func find(samples []promSample, name string, frags ...string) (float64, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		all := true
		for _, f := range frags {
			if !strings.Contains(s.labels, f) {
				all = false
				break
			}
		}
		if all {
			return s.value, true
		}
	}
	return 0, false
}

// stripLe removes the le pair from a bucket label set, keying the buckets
// of one histogram series.
func stripLe(labels string) (rest, le string) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le
}

func TestMetricszPrometheusValid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One computed decision and one cache hit, so the decide histograms and
	// cache counters carry data.
	for i := 0; i < 2; i++ {
		if code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual}); code != 200 || out["dual"] != true {
			t.Fatalf("decide: code=%d out=%v", code, out)
		}
	}
	samples, types := scrapeMetrics(t, ts.URL)

	// Every sample's family must have a TYPE declaration.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok {
				if types[f] == "histogram" {
					return f
				}
			}
		}
		return name
	}
	for _, s := range samples {
		if _, ok := types[base(s.name)]; !ok {
			t.Errorf("sample %s has no TYPE declaration", s.name)
		}
	}
	for fam, typ := range types {
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			t.Errorf("family %s has unknown type %q", fam, typ)
		}
	}

	// Histogram series: buckets cumulative and monotone, terminated by
	// le="+Inf" whose value equals the series _count.
	type histKey struct{ name, labels string }
	buckets := make(map[histKey][]float64)
	lastLe := make(map[histKey]string)
	for _, s := range samples {
		fam, ok := strings.CutSuffix(s.name, "_bucket")
		if !ok || types[fam] != "histogram" {
			continue
		}
		rest, le := stripLe(s.labels)
		k := histKey{fam, rest}
		buckets[k] = append(buckets[k], s.value)
		lastLe[k] = le
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for k, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Errorf("%s{%s}: bucket %d not cumulative: %v", k.name, k.labels, i, bs)
			}
		}
		if lastLe[k] != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%q, want +Inf", k.name, k.labels, lastLe[k])
		}
		count, ok := find(samples, k.name+"_count", strings.Split(k.labels, ",")...)
		if k.labels == "" {
			count, ok = find(samples, k.name+"_count")
		}
		if !ok {
			t.Errorf("%s{%s}: missing _count", k.name, k.labels)
		} else if count != bs[len(bs)-1] {
			t.Errorf("%s{%s}: _count=%v != +Inf bucket %v", k.name, k.labels, count, bs[len(bs)-1])
		}
	}

	// The core series the dashboards (and the CI smoke test) rely on.
	if v, ok := find(samples, "dualspace_http_requests_total", `endpoint="decide"`); !ok || v < 2 {
		t.Errorf("http_requests_total{decide} = %v, %v", v, ok)
	}
	if v, ok := find(samples, "dualspace_cache_hits_total"); !ok || v < 1 {
		t.Errorf("cache_hits_total = %v, %v", v, ok)
	}
	if v, ok := find(samples, "dualspace_decisions_total", `engine="portfolio"`); !ok || v < 1 {
		t.Errorf("decisions_total{portfolio} = %v, %v", v, ok)
	}
	if _, ok := find(samples, "dualspace_build_info"); !ok {
		t.Error("missing build_info")
	}
	if v, ok := find(samples, "dualspace_uptime_seconds"); !ok || v < 0 {
		t.Errorf("uptime_seconds = %v, %v", v, ok)
	}
	if v, ok := find(samples, "dualspace_decide_duration_seconds_count", `engine="portfolio"`); !ok || v < 1 {
		t.Errorf("decide_duration_seconds_count{portfolio} = %v, %v", v, ok)
	}
	if _, ok := find(samples, "dualspace_decide_stage_duration_seconds_bucket",
		`engine="portfolio"`, `stage="walk"`, `le="+Inf"`); !ok {
		t.Error("missing decide_stage_duration_seconds{portfolio,walk}")
	}
	if _, ok := find(samples, "dualspace_memo_hits_total"); !ok {
		t.Error("missing memo_hits_total")
	}
	if _, ok := find(samples, "dualspace_batch_items_total"); !ok {
		t.Error("missing batch_items_total")
	}
}

// traceOf re-decodes the "trace" block of a decide response.
func traceOf(t *testing.T, out map[string]any) map[string]float64 {
	t.Helper()
	raw, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("missing trace block: %v", out)
	}
	tr := make(map[string]float64, len(raw))
	for k, v := range raw {
		f, ok := v.(float64)
		if !ok {
			t.Fatalf("trace field %s = %v (%T)", k, v, v)
		}
		tr[k] = f
	}
	return tr
}

func TestDecideTraceStages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Pin the serial core engine: it runs on the session's pinned decider,
	// so the engine stages (precheck, index sync, walk) are all recorded.
	// (The portfolio would hand an instance this small to FK, which decides
	// statelessly and reports only the handler stages.)
	code, out := post(t, ts.URL+"/v1/decide?trace=1", map[string]any{"g": gDual, "h": hDual, "engine": "core"})
	if code != 200 || out["dual"] != true {
		t.Fatalf("decide: code=%d out=%v", code, out)
	}
	tr := traceOf(t, out)
	if tr["wall_ns"] <= 0 {
		t.Fatalf("wall_ns = %v", tr["wall_ns"])
	}
	var sum float64
	for k, v := range tr {
		if v < 0 {
			t.Errorf("trace stage %s = %v < 0", k, v)
		}
		if k != "wall_ns" {
			sum += v
		}
	}
	if sum > tr["wall_ns"] {
		t.Errorf("stage sum %v exceeds wall_ns %v: %v", sum, tr["wall_ns"], tr)
	}
	if tr["walk_ns"] <= 0 {
		t.Errorf("computed decision has walk_ns = %v", tr["walk_ns"])
	}

	// A cache hit reports only the stages it ran.
	code, out = post(t, ts.URL+"/v1/decide?trace=1", map[string]any{"g": gDual, "h": hDual, "engine": "core"})
	if code != 200 || out["cached"] != true {
		t.Fatalf("repeat decide: code=%d out=%v", code, out)
	}
	tr = traceOf(t, out)
	if tr["walk_ns"] != 0 {
		t.Errorf("cached response has walk_ns = %v", tr["walk_ns"])
	}
	if tr["parse_ns"] <= 0 || tr["cache_lookup_ns"] <= 0 {
		t.Errorf("cached response missing handler stages: %v", tr)
	}

	// Without ?trace=1 the block is absent.
	if _, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual}); out["trace"] != nil {
		t.Errorf("untraced response has trace block: %v", out["trace"])
	}
}

func TestStatszMetricszAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	}
	stats := getJSON(t, ts.URL+"/statsz")
	samples, _ := scrapeMetrics(t, ts.URL)

	reqs := stats["requests"].(map[string]any)
	if v, _ := find(samples, "dualspace_http_requests_total", `endpoint="decide"`); v != reqs["decide"].(float64) {
		t.Errorf("decide requests: metricsz=%v statsz=%v", v, reqs["decide"])
	}
	cache := stats["cache"].(map[string]any)
	if v, _ := find(samples, "dualspace_cache_hits_total"); v != cache["hits"].(float64) {
		t.Errorf("cache hits: metricsz=%v statsz=%v", v, cache["hits"])
	}
	if v, _ := find(samples, "dualspace_cache_misses_total"); v != cache["misses"].(float64) {
		t.Errorf("cache misses: metricsz=%v statsz=%v", v, cache["misses"])
	}
	if v, _ := find(samples, "dualspace_decompositions_total"); v != stats["decompositions"].(float64) {
		t.Errorf("decompositions: metricsz=%v statsz=%v", v, stats["decompositions"])
	}
	engines := stats["engines"].(map[string]any)
	pf := engines["portfolio"].(map[string]any)
	if v, _ := find(samples, "dualspace_decisions_total", `engine="portfolio"`); v != pf["decisions"].(float64) {
		t.Errorf("portfolio decisions: metricsz=%v statsz=%v", v, pf["decisions"])
	}
}

func TestHealthzBuildMetadata(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hz := getJSON(t, ts.URL+"/healthz")
	if hz["ok"] != true {
		t.Fatalf("healthz ok = %v", hz["ok"])
	}
	if v, ok := hz["go_version"].(string); !ok || !strings.HasPrefix(v, "go") {
		t.Errorf("go_version = %v", hz["go_version"])
	}
	if v, ok := hz["git_revision"].(string); !ok || v == "" {
		t.Errorf("git_revision = %v", hz["git_revision"])
	}
	if _, ok := hz["uptime_seconds"].(float64); !ok {
		t.Errorf("uptime_seconds = %v", hz["uptime_seconds"])
	}
	stats := getJSON(t, ts.URL+"/statsz")
	if stats["go_version"] != hz["go_version"] || stats["git_revision"] != hz["git_revision"] {
		t.Errorf("statsz build metadata disagrees with healthz: %v vs %v", stats, hz)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	if code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual}); code != 200 || out["dual"] != false {
		t.Fatalf("decide: code=%d out=%v", code, out)
	}
	var rec map[string]any
	dec := json.NewDecoder(&buf)
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("no access-log record: %v (buf=%q)", err, buf.String())
	}
	want := map[string]any{
		"msg":      "request",
		"method":   "POST",
		"path":     "/v1/decide",
		"endpoint": "decide",
		"engine":   "portfolio",
		"outcome":  "computed",
		"verdict":  "nondual",
		"status":   float64(200),
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("access log %s = %v, want %v (record %v)", k, rec[k], v, rec)
		}
	}
	if rec["fg"] == nil || rec["fh"] == nil || rec["latency"] == nil || rec["bytes"] == nil {
		t.Errorf("access log missing fields: %v", rec)
	}
}
