package service

// POST /v1/batch: NDJSON-in → NDJSON-out batch decision. Each input line is
// a decideRequest; each output line is either one item's verdict (with the
// input's 0-based "index" for correlation — responses stream in completion
// order, not input order) or an error row, followed by exactly one terminal
// record with the batch's dedup/cache/decision counters. The stream is
// drained by the batch.Scheduler over the server's shared session pool and
// sharded verdict cache, so a dedup-heavy batch runs one decomposition per
// distinct canonical instance and one HTTP round trip per thousand
// decisions instead of one per decision.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dualspace/internal/batch"
	"dualspace/internal/engine"
	"dualspace/internal/faultinject"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
)

// batchItemResponse is one answered batch row: the /v1/decide response body
// plus correlation and provenance. "cached" keeps its /v1/decide meaning
// (served by the shared verdict cache); "deduped" marks rows coalesced onto
// another row of the same batch (their stats repeat the leader's run,
// except memo_hits which is zeroed like every response that ran no
// decomposition of its own).
type batchItemResponse struct {
	Index int `json:"index"`
	decideResponse
	Deduped bool `json:"deduped,omitempty"`
}

// batchErrorRow reports one row's failure (bad engine name, parse error,
// semantic rejection) without aborting the rest of the batch. Reason
// carries the taxonomy class when the failure has one ("panic" for a
// contained drain-step panic, "timeout" for an expired batch budget).
type batchErrorRow struct {
	Index  int    `json:"index"`
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// batchEndRecord is the single terminal NDJSON line.
type batchEndRecord struct {
	Done      bool `json:"done"`
	Items     int  `json:"items"`
	Unique    int  `json:"unique"`
	Deduped   int  `json:"deduped"`
	CacheHits int  `json:"cache_hits"`
	Decisions int  `json:"decisions"`
	Errors    int  `json:"errors"`
	// Truncated is set when the batch hit the server's row cap
	// (-batch-max-items); rows beyond the cap were not read.
	Truncated bool `json:"truncated,omitempty"`
	// Error carries a stream-level failure (broken NDJSON framing, body
	// over the byte bound): per-row failures use error rows instead.
	Error string `json:"error,omitempty"`
	// Reason carries the taxonomy class of a stream-level failure
	// ("timeout" when the batch budget expired, "shed" when drain stopped
	// row intake).
	Reason string `json:"reason,omitempty"`
}

// rowMeta is the per-row rendering context, carried through the scheduler
// on Request.Meta and echoed back on the Response.
type rowMeta struct {
	sy  *hgio.Symbols
	eng string
}

// parsedRow caches one distinct row text's parse outcome. Dedup-heavy
// streams repeat rows byte for byte, and parsing an edge text costs ~20×
// the canonicalize+fingerprint work the scheduler's own dedup needs — so
// the handler dedups raw texts first (decideRequest is three strings,
// comparable, and a valid map key) and duplicate rows skip straight to the
// scheduler with the first occurrence's hypergraphs and symbols. Identical
// text means identical interning, so the leader's symbol table renders
// every duplicate's response correctly; parse and engine-name errors are
// deterministic per text and replay from the cache the same way.
type parsedRow struct {
	eng     engine.Engine
	engName string
	g, h    *hypergraph.Hypergraph
	sy      *hgio.Symbols
	key     batch.Key
	errText string
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqBatch.Add(1)
	parallelism := 0
	if p := r.URL.Query().Get("parallelism"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad parallelism %q", p))
			return
		}
		parallelism = n
	}
	// The batch budget covers the whole drain: expired rows fail with the
	// timeout taxonomy, and the terminal record says why.
	ctx, cancel, err := s.budgetCtx(r, s.cfg.BatchTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()

	var src io.Reader = http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	rc := http.NewResponseController(w)
	if rc.EnableFullDuplex() != nil {
		// The transport cannot interleave request reads with response
		// writes (HTTP/1 without full-duplex support): slurp the — bounded
		// — body up front so streaming responses cannot kill the parse.
		data, err := io.ReadAll(src)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		src = bytes.NewReader(data)
	}
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	streamDeadline := time.Now().Add(streamMaxDuration)
	var writeMu sync.Mutex
	var lastFlush time.Time
	unflushed := 0
	emitRow := func(v any) {
		// Same stalled-client defense as /v1/transversals: bound every
		// write and the stream as a whole. Flushing, however, is adaptive:
		// a dedup-heavy batch completes rows in microseconds, and flushing
		// each one would cost a chunked write (and a client-side chunk
		// parse) per row — so fast rows coalesce into larger TCP writes,
		// while slow trickles (and the terminal record, emitted last after
		// this loop) still flush promptly for live progress.
		if faultinject.Fire(ctx, faultinject.PointStreamWrite) != nil {
			return // injected write failure: drop the row like a dead client
		}
		writeMu.Lock()
		defer writeMu.Unlock()
		now := time.Now()
		d := now.Add(streamWriteTimeout)
		if d.After(streamDeadline) {
			d = streamDeadline
		}
		_ = rc.SetWriteDeadline(d)
		if enc.Encode(v) != nil {
			return
		}
		unflushed++
		if unflushed >= 64 || now.Sub(lastFlush) > 2*time.Millisecond {
			_ = rc.Flush()
			unflushed, lastFlush = 0, now
		}
	}

	reqs := make(chan batch.Request)
	runDone := make(chan batch.RunStats, 1)
	go func() {
		runDone <- s.scheduler.RunN(ctx, parallelism, reqs, func(resp batch.Response) {
			if resp.Err != nil {
				row := batchErrorRow{Index: resp.Index, Error: resp.Err.Error()}
				var pe *engine.PanicError
				switch {
				case errors.As(resp.Err, &pe):
					row.Reason = reasonPanic
				case budgetExpired(ctx) && errors.Is(resp.Err, context.DeadlineExceeded):
					row.Reason = reasonTimeout
				}
				emitRow(row)
				return
			}
			m := resp.Meta.(rowMeta)
			// Per-engine /statsz attribution mirrors /v1/decide: a row that
			// ran a decomposition counts as a decision, a row served by the
			// shared cache counts as a hit, and coalesced duplicates count
			// as neither (like decide's coalesced waiters).
			switch {
			case resp.Deduped:
			case resp.CacheHit:
				s.engStats[m.eng].hits.Add(1)
			default:
				s.engStats[m.eng].decisions.Add(1)
			}
			dr := renderDecide(resp.Res, resp.G, resp.H, m.sy, resp.CacheHit, m.eng)
			if resp.Deduped {
				dr.Stats.MemoHits = 0
			}
			emitRow(batchItemResponse{Index: resp.Index, decideResponse: dr, Deduped: resp.Deduped})
		})
	}()

	idx, parseErrors := 0, 0
	var streamErr, streamReason string
	truncated := false
	parsedTexts := make(map[decideRequest]*parsedRow)
	for {
		if s.draining.Load() {
			// Drain began mid-batch: stop taking rows; dispatched work
			// finishes, the terminal record carries the shed taxonomy, and
			// the client re-submits the remainder elsewhere.
			streamErr, streamReason = errDraining.Error(), reasonShed
			break
		}
		var row decideRequest
		err := dec.Decode(&row)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Framing is gone (or the body bound tripped): no further rows
			// can be attributed to indices, so end the stream in-band.
			streamErr = err.Error()
			break
		}
		if idx >= s.cfg.MaxBatchItems {
			truncated = true
			break
		}
		pr, ok := parsedTexts[row]
		if !ok {
			pr = &parsedRow{}
			if eng, err := engine.ByName(row.Engine); err != nil {
				pr.errText = err.Error()
			} else if hs, sy, err := hgio.ReadHypergraphsLimited(s.cfg.Limits,
				strings.NewReader(row.G), strings.NewReader(row.H)); err != nil {
				pr.errText = err.Error()
			} else {
				// Canonicalize and key once per distinct text; duplicates
				// then skip straight to the scheduler's dedup map.
				pr.eng, pr.engName = eng, eng.Name()
				pr.g, pr.h, pr.sy = hs[0].Canonical(), hs[1].Canonical(), sy
				pr.key = batch.NewKey(pr.engName, pr.g.Fingerprint(), pr.h.Fingerprint())
			}
			parsedTexts[row] = pr
		}
		if pr.errText != "" {
			emitRow(batchErrorRow{Index: idx, Error: pr.errText})
			parseErrors++
			idx++
			continue
		}
		// The scheduler drains reqs even after cancellation, so this send
		// never wedges on a dead batch.
		reqs <- batch.Request{
			Index: idx, EngineName: pr.engName, Engine: pr.eng,
			G: pr.g, H: pr.h, Key: &pr.key,
			RawG: row.G, RawH: row.H,
			Meta: rowMeta{sy: pr.sy, eng: pr.engName},
		}
		idx++
	}
	close(reqs)
	st := <-runDone

	s.decompositions.Add(int64(st.Decisions))
	if budgetExpired(ctx) {
		if c := s.obs.timeouts["batch"]; c != nil {
			c.Add(1)
		}
		accessFrom(r.Context()).outcome = "timeout"
		streamErr, streamReason = context.Cause(ctx).Error(), reasonTimeout
	} else if r.Context().Err() != nil {
		s.cancelled.Add(1)
		return // client gone; no terminal record can reach it
	} else if streamReason == reasonShed {
		if c := s.obs.sheds["batch"]; c != nil {
			c.Add(1)
		}
		accessFrom(r.Context()).outcome = "shed"
	}
	emitRow(batchEndRecord{
		Done:      streamErr == "",
		Items:     st.Items + parseErrors,
		Unique:    st.Unique,
		Deduped:   st.Deduped,
		CacheHits: st.CacheHits,
		Decisions: st.Decisions,
		Errors:    st.Errors + parseErrors,
		Truncated: truncated,
		Error:     streamErr,
		Reason:    streamReason,
	})
}
