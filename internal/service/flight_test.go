package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestDecideCoalescesStampede drives a stampede of identical cache-miss
// /v1/decide requests and asserts exactly one decomposition runs: the first
// request becomes the flight leader (blocked on the test hook until every
// other request has attached as a follower), the rest coalesce onto its
// verdict.
func TestDecideCoalescesStampede(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	const clients = 8

	release := make(chan struct{})
	s.testHookDecideStart = func() { <-release }

	g, h := matchingText(4)
	body, err := json.Marshal(map[string]any{"g": g, "h": h})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		code int
		resp map[string]any
		err  error
	}
	results := make(chan outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			err = json.NewDecoder(resp.Body).Decode(&out)
			results <- outcome{code: resp.StatusCode, resp: out, err: err}
		}()
	}

	// Hold the leader until every other request is blocked on its flight,
	// so the test is deterministic rather than a race the stampede usually
	// wins. (The coalesced counter increments only when a follower is
	// served, which requires releasing the leader — hence the waiter
	// gauge.)
	deadline := time.Now().Add(30 * time.Second)
	for s.flights.totalWaiters() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests waiting on the flight", s.flights.totalWaiters(), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	served := 0
	for o := range results {
		if o.err != nil {
			t.Fatalf("request failed: %v", o.err)
		}
		if o.code != http.StatusOK {
			t.Fatalf("status %d, body %v", o.code, o.resp)
		}
		if o.resp["dual"] != true {
			t.Fatalf("verdict %v, want dual", o.resp)
		}
		served++
	}
	if served != clients {
		t.Fatalf("served %d responses, want %d", served, clients)
	}
	if got := s.decompositions.Load(); got != 1 {
		t.Errorf("stampede ran %d decompositions, want exactly 1", got)
	}
	if got := s.coalesced.Load(); got != clients-1 {
		t.Errorf("coalesced = %d, want %d", got, clients-1)
	}

	// The counters surface through /statsz.
	stats := getJSON(t, ts.URL+"/statsz")
	if stats["coalesced"].(float64) != clients-1 {
		t.Errorf("/statsz coalesced = %v, want %d", stats["coalesced"], clients-1)
	}
	if stats["decompositions"].(float64) != 1 {
		t.Errorf("/statsz decompositions = %v, want 1", stats["decompositions"])
	}
	memo, ok := stats["memo"].(map[string]any)
	if !ok {
		t.Fatalf("/statsz has no memo block: %v", stats)
	}
	if memo["misses"].(float64) == 0 {
		t.Errorf("memo counters all zero after a decomposition: %v", memo)
	}
}

// TestDecideCoalesceDistinctKeysRunSeparately guards the key discipline:
// requests differing in engine or instance must not coalesce.
func TestDecideCoalesceDistinctKeysRunSeparately(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	g, h := matchingText(3)
	for _, engine := range []string{"core", "fk-b"} {
		code, resp := post(t, ts.URL+"/v1/decide", map[string]any{"g": g, "h": h, "engine": engine})
		if code != http.StatusOK || resp["dual"] != true {
			t.Fatalf("engine %s: code %d, resp %v", engine, code, resp)
		}
	}
	if got := s.coalesced.Load(); got != 0 {
		t.Errorf("distinct engines coalesced %d times, want 0", got)
	}
	if got := s.decompositions.Load(); got != 2 {
		t.Errorf("decompositions = %d, want 2 (one per engine)", got)
	}
}
