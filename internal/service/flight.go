package service

// Request coalescing (singleflight) for /v1/decide. A cache-miss stampede —
// many concurrent requests for the same (engine, canonical instance) key —
// used to burn one worker slot per request on identical decompositions; now
// the first request in becomes the leader and computes, while the others
// wait on the flight and serve the leader's (immutable, detached) verdict.
// A follower whose own client disconnects stops waiting; if the LEADER's
// client disconnects mid-computation, the flight fails with a cancellation
// error and each waiter retries the loop, the first of them becoming the
// new leader. Keys are the verdict-cache keys, so coalescing can never
// merge requests a cache lookup would distinguish.

import (
	"sync"
	"sync/atomic"

	"dualspace/internal/batch"
	"dualspace/internal/core"
)

// flight is one in-progress decide computation. res/err are written by the
// leader before done is closed and read by followers only after; res, when
// non-nil, is a detached Result treated as immutable by every reader.
// waiters gauges the followers currently blocked on this flight (tests use
// it to sequence stampedes deterministically; the coalesced COUNTER is
// incremented only when a follower is actually served from the flight).
type flight struct {
	done    chan struct{}
	res     *core.Result
	err     error
	waiters atomic.Int32
}

// flightGroup deduplicates concurrent computations by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[batch.Key]*flight
}

// join returns the flight for key, creating it (leader = true) when none is
// in progress.
func (g *flightGroup) join(key batch.Key) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[batch.Key]*flight)
	}
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases the key for future
// flights.
func (g *flightGroup) finish(key batch.Key, f *flight, res *core.Result, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// totalWaiters sums the followers currently blocked across all in-progress
// flights.
func (g *flightGroup) totalWaiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, f := range g.m {
		n += int(f.waiters.Load())
	}
	return n
}
