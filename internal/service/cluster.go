package service

// The service's cluster surface: the POST /v1/cluster/verdict peer-fill
// endpoint, the decide/batch-side bridges to the cluster peer client, and
// the verdict-log plumbing (startup cache warming, the async append
// writer, periodic compaction's stats). docs/CLUSTER.md is the operator
// guide; DESIGN.md §13 the design deep dive.
//
// Ownership and loop safety: every replica computes the same consistent-
// hash ring (cluster.Ring) over the same member list, so for any canonical
// key exactly one replica is the owner. A non-owner that misses its local
// cache asks the owner once (bounded fan-out, per-peer breaker) and falls
// back to local compute on any failure; the fill request carries
// ?no_forward=1 and the X-Dualspace-Peer header, and the serving handler
// below never forwards regardless — so even two replicas with disagreeing
// rings (a rolling config change) cannot build a forwarding cycle.

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"dualspace/internal/batch"
	"dualspace/internal/cluster"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
	"dualspace/internal/verdictlog"
)

// clusterVerdictResponse is the /v1/cluster/verdict 200 body: the wire
// verdict plus resolution provenance.
type clusterVerdictResponse = cluster.WireVerdict

// handleClusterVerdict serves one peer's cache-fill: parse and
// canonicalize exactly like /v1/decide (same text ⇒ same interning ⇒ same
// key), answer from the local cache when possible, otherwise compute under
// the same admission control as client traffic — a shed or timeout comes
// back 503/504 and the asking peer degrades to local compute. The handler
// never forwards: a missing verdict is this replica's to compute (it is
// the owner) or the caller's problem, never a third replica's.
func (s *Server) handleClusterVerdict(w http.ResponseWriter, r *http.Request) {
	s.reqCluster.Add(1)
	ai := accessFrom(r.Context())
	ctx, cancel, err := s.budgetCtx(r, s.cfg.DecideTimeout)
	if err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var req decideRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	eng, err := engine.ByName(req.Engine)
	if err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	engName := eng.Name()
	ai.engine = engName
	hs, _, err := hgio.ReadHypergraphsLimited(s.cfg.Limits,
		strings.NewReader(req.G), strings.NewReader(req.H))
	if err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	g, h := hs[0].Canonical(), hs[1].Canonical()
	key := batch.NewKey(engName, g.Fingerprint(), h.Fingerprint())
	ai.fg, ai.fh = fpPrefix(key.FG), fpPrefix(key.FH)

	if res, ok := s.cache.Get(key); ok {
		s.clusterServeHits.Add(1)
		ai.note("cache_hit", res.Dual, res.Reason.String())
		wv := cluster.FromResult(res, g.N())
		wv.Engine, wv.Cached = engName, true
		writeJSON(w, wv)
		return
	}

	// Miss: compute on behalf of the peer, coalescing with any concurrent
	// local request for the same key through the shared flight group.
	for {
		f, leader := s.flights.join(key)
		if leader {
			s.clusterVerdictLeader(w, r, ctx, key, f, eng, engName, g, h, ai)
			return
		}
		f.waiters.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			f.waiters.Add(-1)
			s.failCompute(w, r, ctx, context.Cause(ctx))
			return
		}
		f.waiters.Add(-1)
		if f.err == nil {
			// serve_computes is counted by the flight leader only
			// (clusterVerdictLeader): it gauges computations performed on
			// behalf of fills, and a coalesced follower ran none — its
			// leader may even have been a /v1/decide request.
			s.coalesced.Add(1)
			ai.note("coalesced", f.res.Dual, f.res.Reason.String())
			wv := cluster.FromResult(f.res, g.N())
			wv.Engine = engName
			writeJSON(w, wv)
			return
		}
		if !isRetryableFlightErr(f.err) {
			s.coalesced.Add(1)
			s.failCompute(w, r, ctx, f.err)
			return
		}
	}
}

// clusterVerdictLeader computes a fill on a worker slot and publishes to
// the flight's followers — the /v1/cluster/verdict twin of decideLeader,
// minus tracing and peer fill (the serving replica IS the owner).
func (s *Server) clusterVerdictLeader(w http.ResponseWriter, r *http.Request, ctx context.Context, key batch.Key, f *flight, eng engine.Engine, engName string, g, h *hypergraph.Hypergraph, ai *accessInfo) {
	var fres *core.Result
	var ferr error
	defer func() { s.flights.finish(key, f, fres, ferr) }()

	sess, err := s.acquire(ctx)
	if err != nil {
		ferr = err
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)
	s.decompositions.Add(1)
	s.engStats[engName].decisions.Add(1)
	rec := sess.Recorder()
	rec.Reset()
	t0 := time.Now()
	res, err := s.decideGuarded(ctx, sess, eng, g, h)
	s.obs.decide.Observe(engName, time.Since(t0), rec)
	if err != nil {
		ferr = err
		s.failCompute(w, r, ctx, err)
		return
	}
	fres = res.Clone()
	s.cache.Add(key, fres)
	s.appendVerdict(key, fres, g.N())
	s.clusterServeComputes.Add(1)
	ai.note("computed", fres.Dual, fres.Reason.String())
	wv := cluster.FromResult(fres, g.N())
	wv.Engine = engName
	writeJSON(w, wv)
}

// tryPeerFill asks key's ring owner for the verdict, when cluster mode is
// on, this replica is not the owner, and the request is not itself a fill.
// Returns a detached result on success; nil means "compute locally" for
// any reason (not owner, breaker open, fan-out bound, peer miss, transport
// failure, invalid verdict).
func (s *Server) tryPeerFill(ctx context.Context, key batch.Key, n int, gText, hText string) *core.Result {
	c := s.cfg.Cluster
	if c == nil {
		return nil
	}
	owner, remote := c.Owner(key.Hash64())
	if !remote {
		return nil
	}
	wv, err := c.Fill(ctx, owner, key.Engine, gText, hText)
	if err != nil || wv == nil {
		return nil
	}
	res, err := wv.ToResult(n)
	if err != nil {
		// The peer answered for a different instance (or corrupt bytes):
		// never serve it. The counter is the alarm — this should be zero.
		s.peerInvalid.Add(1)
		return nil
	}
	s.peerFilled.Add(1)
	return res
}

// batchFill is batch.Config.Fill: the scheduler-side bridge to the peer
// client, one fill attempt per cache-missed distinct entry.
func (s *Server) batchFill(ctx context.Context, key batch.Key, n int, rawG, rawH string) (*core.Result, bool) {
	if rawG == "" || rawH == "" {
		return nil, false
	}
	res := s.tryPeerFill(ctx, key, n, rawG, rawH)
	return res, res != nil
}

// onBatchStore is batch.Config.OnStore: verdicts the scheduler stores go
// to the verdict log exactly like /v1/decide's.
func (s *Server) onBatchStore(key batch.Key, res *core.Result, n int) {
	s.appendVerdict(key, res, n)
}

// appendVerdict hands a stored verdict to the async log writer. The send
// never blocks: under a writer stall the verdict is dropped and counted —
// the log is a warmth optimization, and the request path must not inherit
// disk latency.
func (s *Server) appendVerdict(key batch.Key, res *core.Result, n int) {
	if s.vlogCh == nil {
		return
	}
	select {
	case s.vlogCh <- verdictlog.Record{Engine: key.Engine, FG: key.FG, FH: key.FH, N: n, Res: res}:
	default:
		s.vlogDropped.Add(1)
	}
}

// warmFromLog replays the verdict log's surviving records into the cache.
// Records for engines absent from the running registry are skipped (a log
// written by a different build must not poison the key space).
func (s *Server) warmFromLog() {
	for _, rec := range s.vlog.ReplayedRecords() {
		if _, ok := s.engStats[rec.Engine]; !ok {
			continue
		}
		s.cache.Add(batch.NewKey(rec.Engine, rec.FG, rec.FH), rec.Res)
		s.logReplayed.Add(1)
	}
}

// vlogWriter is the single log-append goroutine: it serializes appends off
// the request path and drains the channel once more after Close.
func (s *Server) vlogWriter() {
	defer close(s.vlogDone)
	for {
		select {
		case rec := <-s.vlogCh:
			_ = s.vlog.Append(rec) // append errors are counted in log stats
		case <-s.vlogQuit:
			for {
				select {
				case rec := <-s.vlogCh:
					_ = s.vlog.Append(rec)
				default:
					return
				}
			}
		}
	}
}

// Close stops the background verdict-log writer, flushing queued appends.
// It does not close the log itself — the caller that opened it (cmd/
// dualserved) closes it after Close returns. Safe to call multiple times
// and without a verdict log.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.vlogCh == nil {
			return
		}
		close(s.vlogQuit)
		<-s.vlogDone
	})
}

// isRetryableFlightErr reports whether a dead flight's error means "the
// leader went away" (loop and race for leadership) rather than "the
// computation failed" (serve the error). Same predicate handleDecide's
// follower loop applies inline.
func isRetryableFlightErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
