package service

// POST /v1/mine: streaming itemset-border mining. /v1/borders answers with
// the finished borders; /v1/mine streams the dualize-and-advance loop
// itself — every positive/negative border element is flushed as one NDJSON
// record the moment its duality check verifies it, so clients watch the
// incremental algorithm of §1 advance (and can abort a long mine having
// already banked a prefix of both borders). Backed by
// itemsets.ComputeBordersStreamWith on a worker-slot session.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/faultinject"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
	"dualspace/internal/itemsets"
)

// sessionEngine routes an explicit engine choice through a worker slot's
// session, so even engine-pinned mining loops reuse the slot's scratch and
// subinstance memo when the engine supports it.
type sessionEngine struct {
	sess *engine.Session
	eng  engine.Engine
}

func (e sessionEngine) Name() string      { return e.eng.Name() }
func (e sessionEngine) Caps() engine.Caps { return e.eng.Caps() }
func (e sessionEngine) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return e.sess.DecideWith(ctx, e.eng, g, h)
}

// mineRequest is the /v1/mine body: the /v1/borders fields plus an optional
// engine name for the duality checks of the loop.
type mineRequest struct {
	Data   string `json:"data"`
	Z      int    `json:"z"`
	Engine string `json:"engine,omitempty"`
}

// mineRecord is one streamed border element. Exactly one of MaxFrequent /
// MinInfrequent is present on the wire; pointers keep an empty itemset (a
// legitimate border element) rendering as [] instead of being dropped by
// omitempty, so field presence, not emptiness, is the discriminator.
type mineRecord struct {
	MaxFrequent   *[]string `json:"max_frequent,omitempty"`
	MinInfrequent *[]string `json:"min_infrequent,omitempty"`
	// Check is the number of duality checks run when this element was
	// found; it is non-decreasing along the stream.
	Check int `json:"check"`
}

// mineEndRecord is the single terminal NDJSON line. Reason carries the
// taxonomy class of a non-clean end ("timeout" for an expired compute
// budget, "shed" when drain cut the mine short).
type mineEndRecord struct {
	Done          bool   `json:"done,omitempty"`
	MaxFrequent   int    `json:"max_frequent_count"`
	MinInfrequent int    `json:"min_infrequent_count"`
	DualityChecks int    `json:"duality_checks"`
	Error         string `json:"error,omitempty"`
	Reason        string `json:"reason,omitempty"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.reqMine.Add(1)
	var req mineRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	eng, err := engine.ByName(req.Engine)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	d, sy, err := hgio.ReadDatasetLimited(strings.NewReader(req.Data), s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.budgetCtx(r, s.cfg.MineTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sess, err := s.acquire(ctx)
	if err != nil {
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)
	// Route the loop's duality checks through the worker slot's session
	// (pinned scratch + memo — the loop's many small, related instances are
	// exactly the memo's access pattern); an explicit engine choice runs on
	// the same session through the sessionEngine adapter.
	loopEngine := engine.Engine(sess)
	if req.Engine != "" {
		loopEngine = sessionEngine{sess: sess, eng: eng}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	streamDeadline := time.Now().Add(streamMaxDuration)
	emit := func(rec any) error {
		if err := faultinject.Fire(ctx, faultinject.PointStreamWrite); err != nil {
			return err
		}
		d := time.Now().Add(streamWriteTimeout)
		if d.After(streamDeadline) {
			d = streamDeadline
		}
		_ = rc.SetWriteDeadline(d)
		if err := enc.Encode(rec); err != nil {
			return err
		}
		_ = rc.Flush()
		return nil
	}

	maxCount, minCount, lastCheck := 0, 0, 0
	b, err := itemsets.ComputeBordersStreamWith(ctx, d, req.Z, loopEngine,
		func(ev itemsets.BorderEvent) error {
			if s.draining.Load() {
				// Cut the mine short with a clean shed terminal record; the
				// client retries against another replica.
				return errDraining
			}
			rec := mineRecord{Check: ev.DualityChecks}
			set := names(ev.Set, sy)
			if ev.MaxFrequent {
				rec.MaxFrequent = &set
			} else {
				rec.MinInfrequent = &set
			}
			if err := emit(rec); err != nil {
				return err // client write failed: abort the mining
			}
			if ev.MaxFrequent {
				maxCount++
			} else {
				minCount++
			}
			lastCheck = ev.DualityChecks
			return nil
		})
	s.minedElements.Add(int64(maxCount + minCount))
	if err != nil {
		endReason := ""
		switch {
		case errors.Is(err, errDraining):
			if c := s.obs.sheds["mine"]; c != nil {
				c.Add(1)
			}
			accessFrom(r.Context()).outcome = "shed"
			endReason = reasonShed
		case budgetExpired(ctx):
			if c := s.obs.timeouts["mine"]; c != nil {
				c.Add(1)
			}
			accessFrom(r.Context()).outcome = "timeout"
			endReason = reasonTimeout
		case r.Context().Err() != nil:
			s.cancelled.Add(1)
			return // client is gone; no terminal record can reach it
		}
		if maxCount+minCount == 0 && endReason == "" {
			// Nothing streamed yet: a proper HTTP error is still possible.
			s.writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		_ = emit(mineEndRecord{
			Error:         err.Error(),
			Reason:        endReason,
			MaxFrequent:   maxCount,
			MinInfrequent: minCount,
			DualityChecks: lastCheck,
		})
		return
	}
	_ = emit(mineEndRecord{
		Done:          true,
		MaxFrequent:   b.MaxFrequent.M(),
		MinInfrequent: b.MinInfrequent.M(),
		DualityChecks: b.DualityChecks,
	})
}
