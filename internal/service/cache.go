package service

import (
	"container/list"
	"sync"

	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
)

// verdictCache is a mutex-guarded LRU of duality verdicts keyed by the
// resolved engine name plus the pair of canonical hypergraph fingerprints.
// Cached Results are index-level (the witness and edge indices refer to the
// canonicalized instance) and treated as immutable by every reader;
// per-request name resolution happens at response-rendering time, so one
// cached verdict serves every request whose inputs canonicalize to the same
// instance — including requests whose vertex names differ but induce the
// same index families. The engine name is part of the key because engines
// agree on verdicts but not on witnesses, fail paths or statistics: a
// verdict computed by the core decomposition must never answer an explicit
// FK-B request (or vice versa).
type verdictCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newVerdictCache returns an LRU holding up to capacity verdicts; a
// capacity <= 0 disables caching (every lookup misses, adds are dropped).
func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// pairKey is the cache key of an ordered instance pair decided on the named
// engine. Engine names never contain NUL, and the fixed-size fingerprints
// follow the separator, so distinct (engine, g, h) triples cannot collide.
func pairKey(engName string, fg, fh hypergraph.Fingerprint) string {
	buf := make([]byte, 0, len(engName)+1+2*hypergraph.FingerprintSize)
	buf = append(buf, engName...)
	buf = append(buf, 0)
	buf = fg.AppendTo(buf)
	buf = fh.AppendTo(buf)
	return string(buf)
}

func (c *verdictCache) get(key string) (*core.Result, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *verdictCache) add(key string, res *core.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
