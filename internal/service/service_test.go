package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dualspace/internal/hgio"
)

// Canonical small instances, in the wire's hgio edge-text format.
const (
	gDual    = "a b\nc d\n"
	hDual    = "a c\na d\nb c\nb d\n"
	hNonDual = "a c\na d\nb c\n"
)

// matchingText renders the k-edge matching and its 2^k-edge dual as edge
// text, for instances whose decision takes long enough to cancel.
func matchingText(k int) (g, h string) {
	var gb, hb strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&gb, "v%da v%db\n", i, i)
	}
	for mask := 0; mask < 1<<k; mask++ {
		for i := 0; i < k; i++ {
			side := "a"
			if mask&(1<<i) != 0 {
				side = "b"
			}
			fmt.Fprintf(&hb, "v%d%s ", i, side)
		}
		hb.WriteString("\n")
	}
	return gb.String(), hb.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and decodes a JSON object response.
func post(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if ok := getJSON(t, ts.URL+"/healthz")["ok"]; ok != true {
		t.Fatalf("healthz = %v", ok)
	}
	stats := getJSON(t, ts.URL+"/statsz")
	for _, key := range []string{"uptime_seconds", "requests", "cache", "decompositions", "cancelled"} {
		if _, present := stats[key]; !present {
			t.Errorf("statsz missing %q", key)
		}
	}
}

func TestDecideVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 || out["dual"] != true {
		t.Fatalf("dual pair: code=%d out=%v", code, out)
	}
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual})
	if code != 200 || out["dual"] != false {
		t.Fatalf("non-dual pair: code=%d out=%v", code, out)
	}
	if out["reason"] != "new transversal exists" {
		t.Errorf("reason = %v", out["reason"])
	}
	wit, ok := out["witness"].([]any)
	if !ok || len(wit) == 0 {
		t.Errorf("missing witness: %v", out["witness"])
	}
	// Self-duality: the majority triangle.
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": "a b\nb c\na c\n", "h": "a b\nb c\na c\n"})
	if code != 200 || out["dual"] != true {
		t.Fatalf("self-dual triangle: code=%d out=%v", code, out)
	}
}

func TestDecideErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Limits: hgio.Limits{MaxEdges: 4, MaxUniverse: 8}})
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Unknown field.
	code, _ := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual, "bogus": 1})
	if code != 400 {
		t.Errorf("unknown field: status %d", code)
	}
	// Non-simple input is a semantic (422) failure.
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": "a\na b\n", "h": hDual})
	if code != 422 {
		t.Errorf("non-simple input: status %d body %v", code, out)
	}
	// Input limits map to 413.
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": "a\nb\nc\nd\ne\n", "h": "x\n"})
	if code != 413 {
		t.Errorf("limit violation: status %d body %v", code, out)
	}
	// GET on a POST endpoint.
	resp, err = http.Get(ts.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET decide: status %d", resp.StatusCode)
	}
}

func TestDecideBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{
		"g": strings.Repeat("a b\n", 64), "h": hDual})
	if code != 413 {
		t.Fatalf("oversized body: status %d body %v", code, out)
	}
}

func TestDecideFingerprintCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	stats := func() map[string]any { return getJSON(t, ts.URL+"/statsz") }

	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 || out["cached"] != false {
		t.Fatalf("first decide: code=%d cached=%v", code, out["cached"])
	}
	s0 := stats()
	if d := s0["decompositions"].(float64); d != 1 {
		t.Fatalf("decompositions after first decide = %v", d)
	}

	// Identical repeat: served from cache, zero additional decompositions.
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 || out["dual"] != true || out["cached"] != true {
		t.Fatalf("repeat decide: code=%d out=%v", code, out)
	}

	// Permuted edge order canonicalizes to the same fingerprint.
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": "c d\na b\n", "h": "b d\na c\nb c\na d\n"})
	if code != 200 || out["cached"] != true {
		t.Fatalf("permuted decide not cached: code=%d out=%v", code, out)
	}

	// Renamed vertices inducing the same index families hit too, and the
	// verdict resolves in the new request's names.
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": "p q\nr s\n", "h": "p r\np s\nq r\nq s\n"})
	if code != 200 || out["cached"] != true || out["dual"] != true {
		t.Fatalf("renamed decide not cached: code=%d out=%v", code, out)
	}

	s1 := stats()
	if d := s1["decompositions"].(float64); d != 1 {
		t.Errorf("cached repeats recomputed: decompositions = %v", d)
	}
	cache := s1["cache"].(map[string]any)
	if hits := cache["hits"].(float64); hits != 3 {
		t.Errorf("cache hits = %v, want 3", hits)
	}
	if misses := cache["misses"].(float64); misses != 1 {
		t.Errorf("cache misses = %v, want 1", misses)
	}

	// A different instance misses and recomputes.
	code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual})
	if code != 200 || out["cached"] != false {
		t.Fatalf("distinct instance served from cache: %v", out)
	}
	if d := stats()["decompositions"].(float64); d != 2 {
		t.Errorf("decompositions = %v, want 2", d)
	}
}

// TestDecideEngineSelection drives /v1/decide across every registry engine:
// all must agree on the verdict, echo the resolved engine name, and an
// unknown name must be rejected before any work runs.
func TestDecideEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range []string{"portfolio", "core", "core-parallel", "fk-a", "fk-b", "logspace"} {
		code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual, "engine": name})
		if code != 200 || out["dual"] != true || out["engine"] != name {
			t.Errorf("engine %s: code=%d out=%v", name, code, out)
		}
		code, out = post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual, "engine": name})
		if code != 200 || out["dual"] != false {
			t.Errorf("engine %s non-dual: code=%d out=%v", name, code, out)
		}
		if wit, ok := out["witness"].([]any); !ok || len(wit) == 0 {
			t.Errorf("engine %s: missing witness: %v", name, out["witness"])
		}
	}
	// The empty engine resolves to the portfolio.
	if _, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual}); out["engine"] != "portfolio" {
		t.Errorf("default engine = %v", out["engine"])
	}
	// Unknown engines are client errors.
	if code, _ := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual, "engine": "quantum"}); code != 400 {
		t.Errorf("unknown engine: code=%d", code)
	}
}

// TestDecideEngineKeyedCache is the satellite guard: a verdict cached for
// one engine is never served for an explicit request of another, and the
// per-engine /statsz counters track hits and decisions separately.
func TestDecideEngineKeyedCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	decide := func(eng string) map[string]any {
		code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual, "engine": eng})
		if code != 200 || out["dual"] != true {
			t.Fatalf("engine %s: code=%d out=%v", eng, code, out)
		}
		return out
	}
	if out := decide("core"); out["cached"] != false {
		t.Fatalf("first core decide cached: %v", out)
	}
	// The same instance on fk-b must be a fresh miss, not the core entry.
	if out := decide("fk-b"); out["cached"] != false {
		t.Fatalf("fk-b served from the core cache entry: %v", out)
	}
	// Repeats hit within each engine.
	if out := decide("core"); out["cached"] != true || out["engine"] != "core" {
		t.Fatalf("core repeat not cached: %v", out)
	}
	if out := decide("fk-b"); out["cached"] != true || out["engine"] != "fk-b" {
		t.Fatalf("fk-b repeat not cached: %v", out)
	}
	engines := getJSON(t, ts.URL+"/statsz")["engines"].(map[string]any)
	for _, eng := range []string{"core", "fk-b"} {
		c := engines[eng].(map[string]any)
		if c["hits"].(float64) != 1 || c["decisions"].(float64) != 1 {
			t.Errorf("engine %s counters = %v, want 1 hit / 1 decision", eng, c)
		}
	}
	if c := engines["portfolio"].(map[string]any); c["decisions"].(float64) != 0 {
		t.Errorf("portfolio counters moved without portfolio traffic: %v", c)
	}
}

// streamTransversals posts to /v1/transversals and returns the streamed
// sets plus the terminal record.
func streamTransversals(t *testing.T, url string, body any) ([][]string, map[string]any) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url+"/v1/transversals", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var sets [][]string
	var terminal map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if tv, ok := rec["transversal"].([]any); ok {
			set := make([]string, len(tv))
			for i, v := range tv {
				set[i] = v.(string)
			}
			sets = append(sets, set)
			continue
		}
		if terminal != nil {
			t.Fatalf("multiple terminal records: %v then %v", terminal, rec)
		}
		terminal = rec
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if terminal == nil {
		t.Fatal("stream ended without a terminal record")
	}
	return sets, terminal
}

func TestTransversalsStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The 3-matching has exactly 8 minimal transversals.
	sets, term := streamTransversals(t, ts.URL, map[string]any{"h": "a b\nc d\ne f\n"})
	if len(sets) != 8 {
		t.Fatalf("streamed %d sets, want 8", len(sets))
	}
	if term["done"] != true || term["count"].(float64) != 8 || term["truncated"] == true {
		t.Fatalf("terminal = %v", term)
	}
	for _, set := range sets {
		if len(set) != 3 {
			t.Errorf("transversal %v has size %d, want 3", set, len(set))
		}
	}

	// The limit knob truncates the stream.
	sets, term = streamTransversals(t, ts.URL, map[string]any{"h": "a b\nc d\ne f\n", "limit": 5})
	if len(sets) != 5 || term["truncated"] != true || term["count"].(float64) != 5 {
		t.Fatalf("limited stream: %d sets, terminal %v", len(sets), term)
	}

	// A limit hit exactly at |tr(h)| is a complete stream, not a truncated
	// one: no 9th transversal exists to prove truncation.
	sets, term = streamTransversals(t, ts.URL, map[string]any{"h": "a b\nc d\ne f\n", "limit": 8})
	if len(sets) != 8 || term["truncated"] == true || term["done"] != true {
		t.Fatalf("exact-limit stream: %d sets, terminal %v", len(sets), term)
	}

	// Constant conventions: tr(∅) = {∅} over an implicit empty universe...
	sets, term = streamTransversals(t, ts.URL, map[string]any{"h": ""})
	if len(sets) != 1 || len(sets[0]) != 0 || term["done"] != true {
		t.Fatalf("tr(empty family): %v / %v", sets, term)
	}
	// ...and tr({∅}) = ∅.
	sets, term = streamTransversals(t, ts.URL, map[string]any{"h": "-\n"})
	if len(sets) != 0 || term["count"].(float64) != 0 {
		t.Fatalf("tr({∅}): %v / %v", sets, term)
	}
}

func TestBordersEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := "milk bread\nmilk bread\nmilk bread\nbeer chips\nbeer chips\nbeer chips\nmilk beer\n"
	code, out := post(t, ts.URL+"/v1/borders", map[string]any{"data": data, "z": 2})
	if code != 200 {
		t.Fatalf("borders: code=%d out=%v", code, out)
	}
	maxF := out["max_frequent"].([]any)
	if len(maxF) == 0 {
		t.Fatal("no maximal frequent itemsets")
	}
	found := false
	for _, is := range maxF {
		var items []string
		for _, v := range is.([]any) {
			items = append(items, v.(string))
		}
		set := strings.Join(items, " ")
		if set == "milk bread" || set == "bread milk" {
			found = true
		}
	}
	if !found {
		t.Errorf("milk+bread not in IS+: %v", maxF)
	}
	if out["duality_checks"].(float64) < 1 {
		t.Errorf("duality_checks = %v", out["duality_checks"])
	}
	// Threshold out of range is a 422.
	if code, _ := post(t, ts.URL+"/v1/borders", map[string]any{"data": data, "z": 99}); code != 422 {
		t.Errorf("bad threshold: code=%d", code)
	}
}

func TestKeysEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := "name,dept,room\nann,sales,101\nbob,sales,102\ncyd,eng,101\n"
	code, out := post(t, ts.URL+"/v1/keys", map[string]any{"csv": csv})
	if code != 200 {
		t.Fatalf("keys: code=%d out=%v", code, out)
	}
	keys := out["keys"].([]any)
	hasName := false
	for _, k := range keys {
		ks := k.([]any)
		if len(ks) == 1 && ks[0] == "name" {
			hasName = true
		}
	}
	if !hasName {
		t.Errorf("name not reported as a minimal key: %v", keys)
	}

	// Claiming only {name} must surface an additional key.
	code, out = post(t, ts.URL+"/v1/keys", map[string]any{"csv": csv, "known": "name\n"})
	if code != 200 || out["complete"] != false {
		t.Fatalf("additional key: code=%d out=%v", code, out)
	}
	if nk, ok := out["new_key"].([]any); !ok || len(nk) == 0 {
		t.Errorf("missing new_key: %v", out)
	}
	// Unknown attribute in the claim is a client error.
	if code, _ := post(t, ts.URL+"/v1/keys", map[string]any{"csv": csv, "known": "salary\n"}); code != 400 {
		t.Errorf("unknown attribute: code=%d", code)
	}
}

func TestCoteriesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, out := post(t, ts.URL+"/v1/coteries", map[string]any{"quorums": "a b\nb c\na c\n"})
	if code != 200 || out["non_dominated"] != true {
		t.Fatalf("majority coterie: code=%d out=%v", code, out)
	}
	code, out = post(t, ts.URL+"/v1/coteries", map[string]any{"quorums": "hub a\nhub b\nhub c\n", "improve": true})
	if code != 200 || out["non_dominated"] != false {
		t.Fatalf("star coterie: code=%d out=%v", code, out)
	}
	if dom, ok := out["dominating"].([]any); !ok || len(dom) == 0 {
		t.Errorf("no dominating coterie returned: %v", out)
	}
	// Non-intersecting quorums are not a coterie.
	if code, _ := post(t, ts.URL+"/v1/coteries", map[string]any{"quorums": "a\nb\n"}); code != 422 {
		t.Errorf("invalid coterie: code=%d", code)
	}
}

// TestConcurrentMixedTraffic drives every endpoint from 32 concurrent
// clients against a real socket; run under -race this checks the pool,
// cache and counter paths for data races.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, CacheSize: 64})
	data := "milk bread\nmilk bread\nbeer chips\nbeer chips\nmilk beer\n"
	csv := "name,dept\nann,sales\nbob,eng\n"
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				switch (i + rep) % 6 {
				case 0:
					code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
					if code != 200 || out["dual"] != true {
						errs <- fmt.Errorf("decide dual: %d %v", code, out)
					}
				case 1:
					code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hNonDual})
					if code != 200 || out["dual"] != false {
						errs <- fmt.Errorf("decide nondual: %d %v", code, out)
					}
				case 2:
					sets, term := streamTransversals(t, ts.URL, map[string]any{"h": "a b\nc d\ne f\n"})
					if len(sets) != 8 || term["done"] != true {
						errs <- fmt.Errorf("stream: %d sets", len(sets))
					}
				case 3:
					code, _ := post(t, ts.URL+"/v1/borders", map[string]any{"data": data, "z": 1})
					if code != 200 {
						errs <- fmt.Errorf("borders: %d", code)
					}
				case 4:
					code, _ := post(t, ts.URL+"/v1/keys", map[string]any{"csv": csv})
					if code != 200 {
						errs <- fmt.Errorf("keys: %d", code)
					}
				case 5:
					code, out := post(t, ts.URL+"/v1/coteries", map[string]any{"quorums": "a b\nb c\na c\n"})
					if code != 200 || out["non_dominated"] != true {
						errs <- fmt.Errorf("coteries: %d %v", code, out)
					}
				}
				getJSON(t, ts.URL+"/statsz")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := getJSON(t, ts.URL+"/statsz")
	reqs := stats["requests"].(map[string]any)
	if reqs["decide"].(float64) < 16 {
		t.Errorf("decide requests = %v", reqs["decide"])
	}
	if stats["in_flight"].(float64) < 1 {
		t.Errorf("in_flight while serving statsz = %v", stats["in_flight"])
	}
}

// TestDecideCancellation closes the client side of an in-flight /v1/decide
// and asserts the server aborts the decomposition via context (observable
// as the cancelled counter) instead of finishing the work.
func TestDecideCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	var once sync.Once
	s.testHookDecideStart = func() { once.Do(func() { close(started) }) }

	g, h := matchingText(12) // |H| = 4096: far more work than the cancel latency
	body, _ := json.Marshal(map[string]any{"g": g, "h": h})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with status %d despite cancellation", resp.StatusCode)
		}
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("decide never started")
	}
	cancel() // closes the client connection; the server ctx must fire
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client err = %v; want context canceled", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if getJSON(t, ts.URL+"/statsz")["cancelled"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d := getJSON(t, ts.URL+"/statsz")["decompositions"].(float64); d != 1 {
		t.Errorf("decompositions = %v, want exactly the aborted one", d)
	}
}

// The verdict cache's LRU/sharding behavior is tested in internal/batch
// (TestCacheShardingAndLRU); here only its integration is covered
// (TestDecideFingerprintCache, TestBatchEndpoint).
