package service

// /v1/transversals: chunked streaming enumeration of tr(H). Each minimal
// transversal is written (and flushed) as one NDJSON record the moment the
// enumerator yields it, so clients see results with enumeration delay
// rather than completion delay; a terminal record distinguishes clean
// completion, truncation at the limit knob, and mid-stream failure — the
// error path EnumerateContext's fallible yield exists for.

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"dualspace/internal/bitset"
	"dualspace/internal/faultinject"
	"dualspace/internal/hgio"
	"dualspace/internal/transversal"
)

// streamWriteTimeout bounds each streamed write (record or terminal), so a
// client that stops reading releases its worker-pool slot once the TCP
// buffers fill instead of pinning it indefinitely; streamMaxDuration caps
// the whole stream, so a client draining one record per deadline window
// cannot hold the slot forever either.
const (
	streamWriteTimeout = 30 * time.Second
	streamMaxDuration  = 10 * time.Minute
)

// transversalsRequest is the /v1/transversals body. Limit caps the number
// of streamed transversals; 0 means the server maximum
// (Config.MaxStreamResults), larger values are clamped to it.
type transversalsRequest struct {
	H     string `json:"h"`
	Limit int    `json:"limit"`
}

// streamSetRecord is one streamed transversal. The field is always present
// (the empty transversal is a legitimate result: tr(∅) = {∅}), which is
// how clients tell result lines from the terminal line.
type streamSetRecord struct {
	Transversal []string `json:"transversal"`
}

// streamEndRecord is the single terminal NDJSON line: Done for clean
// completion (Truncated when the limit knob stopped the stream early),
// Error for a mid-stream failure. Count is the number of transversals
// streamed before the end in either case. Reason carries the taxonomy
// class of a non-clean end ("timeout" when the compute budget expired,
// "shed" when the server began draining mid-stream).
type streamEndRecord struct {
	Done      bool   `json:"done,omitempty"`
	Count     int    `json:"count"`
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

func (s *Server) handleTransversals(w http.ResponseWriter, r *http.Request) {
	s.reqTransversals.Add(1)
	var req transversalsRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	hs, sy, err := hgio.ReadHypergraphsLimited(s.cfg.Limits, strings.NewReader(req.H))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxStreamResults {
		limit = s.cfg.MaxStreamResults
	}
	ctx, cancel, err := s.budgetCtx(r, s.cfg.StreamTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	// Enumeration does not decide duality, but it competes for the same CPU:
	// it occupies a worker slot (whose session simply goes unused).
	sess, err := s.acquire(ctx)
	if err != nil {
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)
	// Minimal transversals are invariant under minimization, and the
	// enumerator is specified for simple inputs. Minimize is O(m²), so it
	// runs inside the worker-pool slot like the enumeration itself.
	h := hs[0].Minimize()

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	streamDeadline := time.Now().Add(streamMaxDuration)
	emit := func(rec any) error {
		// A stalled client must not pin the worker slot: bound every write
		// so a non-reading connection errors out instead of blocking, and
		// bound the stream as a whole so drip-feeding cannot renew the
		// per-write window forever. The stream_write fault point models a
		// slow (delay rule) or failing (error rule) client-facing write.
		if err := faultinject.Fire(ctx, faultinject.PointStreamWrite); err != nil {
			return err
		}
		d := time.Now().Add(streamWriteTimeout)
		if d.After(streamDeadline) {
			d = streamDeadline
		}
		_ = rc.SetWriteDeadline(d)
		if err := enc.Encode(rec); err != nil {
			return err
		}
		_ = rc.Flush()
		return nil
	}

	// truncated is set only when a transversal beyond the limit actually
	// arrives: a stream that stops at exactly |tr(h)| = limit is complete.
	// drained marks a stream cut short because the server began shutting
	// down: the client gets a clean shed terminal record and retries
	// against another replica.
	count, truncated, drained := 0, false, false
	err = transversal.EnumerateContext(ctx, h, func(t bitset.Set) (bool, error) {
		if s.draining.Load() {
			drained = true
			return false, nil
		}
		if count >= limit {
			truncated = true
			return false, nil
		}
		if err := emit(streamSetRecord{Transversal: names(t, sy)}); err != nil {
			return false, err // client write failed: abort the enumeration
		}
		count++
		return true, nil
	})
	s.streamedSets.Add(int64(count))
	if err != nil {
		if budgetExpired(ctx) {
			// The compute budget ran out with a live client: end in-band
			// with the timeout taxonomy.
			if c := s.obs.timeouts["transversals"]; c != nil {
				c.Add(1)
			}
			accessFrom(r.Context()).outcome = "timeout"
			_ = emit(streamEndRecord{Error: err.Error(), Reason: reasonTimeout, Count: count})
			return
		}
		if r.Context().Err() != nil {
			s.cancelled.Add(1)
			return // client is gone; no terminal record can reach it
		}
		// Mid-stream failure with a live client: surface it in-band.
		_ = emit(streamEndRecord{Error: err.Error(), Count: count})
		return
	}
	if drained {
		if c := s.obs.sheds["transversals"]; c != nil {
			c.Add(1)
		}
		accessFrom(r.Context()).outcome = "shed"
		_ = emit(streamEndRecord{Error: errDraining.Error(), Reason: reasonShed, Count: count})
		return
	}
	// Truncated means the limit stopped the stream: tr(h) may hold more
	// elements than were streamed.
	_ = emit(streamEndRecord{Done: true, Count: count, Truncated: truncated})
}
