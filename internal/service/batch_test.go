package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postNDJSON posts a raw NDJSON body to /v1/batch and splits the response
// stream into item rows (by index), error rows and the terminal record.
func postNDJSON(t *testing.T, url, body string) (map[int]map[string]any, map[int]string, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	items := map[int]map[string]any{}
	errRows := map[int]string{}
	var terminal map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		idx, hasIdx := rec["index"]
		switch {
		case hasIdx && rec["error"] != nil:
			errRows[int(idx.(float64))] = rec["error"].(string)
		case hasIdx:
			items[int(idx.(float64))] = rec
		default:
			if terminal != nil {
				t.Fatalf("multiple terminal records: %v then %v", terminal, rec)
			}
			terminal = rec
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if terminal == nil {
		t.Fatal("batch stream ended without a terminal record")
	}
	return items, errRows, terminal
}

func ndjsonRow(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	// A dedup-heavy stream: the dual pair three times (once with renamed
	// vertices), the non-dual pair, one invalid-engine row, one non-simple
	// row.
	var body strings.Builder
	body.WriteString(ndjsonRow(t, map[string]any{"g": gDual, "h": hDual}))                         // 0
	body.WriteString(ndjsonRow(t, map[string]any{"g": gDual, "h": hDual}))                         // 1 dup
	body.WriteString(ndjsonRow(t, map[string]any{"g": "p q\nr s\n", "h": "p r\np s\nq r\nq s\n"})) // 2 renamed
	body.WriteString(ndjsonRow(t, map[string]any{"g": gDual, "h": hNonDual}))                      // 3
	body.WriteString(ndjsonRow(t, map[string]any{"g": gDual, "h": hDual, "engine": "quantum"}))    // 4 bad engine
	body.WriteString(ndjsonRow(t, map[string]any{"g": "a\na b\n", "h": "a\n"}))                    // 5 non-simple

	items, errRows, term := postNDJSON(t, ts.URL, body.String())
	for _, idx := range []int{0, 1, 2, 3} {
		rec, ok := items[idx]
		if !ok {
			t.Fatalf("row %d unanswered (items %v, errors %v)", idx, items, errRows)
		}
		wantDual := idx != 3
		if rec["dual"] != wantDual {
			t.Errorf("row %d: dual=%v, want %v", idx, rec["dual"], wantDual)
		}
	}
	if len(errRows) != 2 || errRows[4] == "" || errRows[5] == "" {
		t.Fatalf("error rows = %v, want rows 4 and 5", errRows)
	}
	if term["done"] != true || term["items"].(float64) != 6 {
		t.Fatalf("terminal = %v", term)
	}
	// Rows 0–2 are one canonical instance, row 3 a second, row 5 a third
	// (errors during decide still create an entry); the bad-engine row
	// never reaches the scheduler.
	if u := term["unique"].(float64); u != 3 {
		t.Errorf("unique = %v, want 3", u)
	}
	if d := term["deduped"].(float64); d != 2 {
		t.Errorf("deduped = %v, want 2", d)
	}
	if e := term["errors"].(float64); e != 2 {
		t.Errorf("errors = %v, want 2", e)
	}

	// The batch warmed the shared verdict cache: an interactive /v1/decide
	// on the same instance must hit.
	code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": gDual, "h": hDual})
	if code != 200 || out["cached"] != true {
		t.Fatalf("decide after batch not cached: code=%d out=%v", code, out)
	}

	// And a second identical batch is all cache/dedup, zero decisions.
	items2, _, term2 := postNDJSON(t, ts.URL,
		ndjsonRow(t, map[string]any{"g": gDual, "h": hDual})+
			ndjsonRow(t, map[string]any{"g": gDual, "h": hDual}))
	if term2["decisions"].(float64) != 0 {
		t.Fatalf("second batch recomputed: %v", term2)
	}
	for idx, rec := range items2 {
		if rec["cached"] != true && rec["deduped"] != true {
			t.Errorf("row %d of warm batch served cold: %v", idx, rec)
		}
	}

	// /statsz reflects the batches and the sharded cache.
	stats := getJSON(t, ts.URL+"/statsz")
	bs := stats["batch"].(map[string]any)
	if bs["batches"].(float64) != 2 || bs["items"].(float64) < 7 {
		t.Errorf("batch stats = %v", bs)
	}
	cache := stats["cache"].(map[string]any)
	shards, ok := cache["shards"].([]any)
	if !ok || len(shards) == 0 {
		t.Fatalf("no shard stats: %v", cache)
	}
	var shardHits float64
	for _, sh := range shards {
		shardHits += sh.(map[string]any)["hits"].(float64)
	}
	if shardHits < 1 {
		t.Errorf("shard counters recorded no hits: %v", shards)
	}
	if reqs := stats["requests"].(map[string]any); reqs["batch"].(float64) != 2 {
		t.Errorf("requests.batch = %v", reqs["batch"])
	}
	// Per-engine attribution covers batch rows: the portfolio ran 2
	// decisions (rows 0 and 3 of the first batch; row 5's decision errored
	// and error rows are not attributed) and saw 2 cache hits (the
	// /v1/decide repeat and the warm batch's leader row).
	eng := stats["engines"].(map[string]any)["portfolio"].(map[string]any)
	if eng["decisions"].(float64) != 2 {
		t.Errorf("portfolio decisions = %v, want 2 (batch rows attributed)", eng["decisions"])
	}
	if eng["hits"].(float64) != 2 {
		t.Errorf("portfolio hits = %v, want 2 (decide + warm-batch cache hits)", eng["hits"])
	}
}

func TestBatchEndpointFraming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A valid row, then broken JSON: the valid row is answered, the stream
	// ends with an in-band error terminal.
	body := ndjsonRow(t, map[string]any{"g": gDual, "h": hDual}) + "{nope\n"
	items, _, term := postNDJSON(t, ts.URL, body)
	if len(items) != 1 {
		t.Fatalf("items = %v", items)
	}
	if term["done"] == true || term["error"] == nil {
		t.Fatalf("terminal = %v", term)
	}
}

func TestBatchEndpointRowCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	var body strings.Builder
	for i := 0; i < 4; i++ {
		body.WriteString(ndjsonRow(t, map[string]any{"g": gDual, "h": hDual}))
	}
	items, _, term := postNDJSON(t, ts.URL, body.String())
	if len(items) != 2 || term["truncated"] != true {
		t.Fatalf("items=%d terminal=%v, want 2 rows and truncation", len(items), term)
	}
}

func TestBatchEndpointParallelismParam(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	body := ndjsonRow(t, map[string]any{"g": gDual, "h": hDual}) +
		ndjsonRow(t, map[string]any{"g": gDual, "h": hNonDual})
	resp, err := http.Post(ts.URL+"/v1/batch?parallelism=1", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(raw, []byte(`"done":true`)) {
		t.Fatalf("parallelism=1 batch: %d %s", resp.StatusCode, raw)
	}
	// Invalid knob is rejected before any work.
	resp, err = http.Post(ts.URL+"/v1/batch?parallelism=zero", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad parallelism accepted: %d", resp.StatusCode)
	}
}

// TestMineEndpoint streams the dualize-and-advance loop and checks the
// streamed elements agree with the one-shot /v1/borders answer.
func TestMineEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := "milk bread\nmilk bread\nmilk bread\nbeer chips\nbeer chips\nbeer chips\nmilk beer\n"

	buf, _ := json.Marshal(map[string]any{"data": data, "z": 2})
	resp, err := http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("mine status %d: %s", resp.StatusCode, raw)
	}
	var maxSets, minSets [][]string
	var terminal map[string]any
	lastCheck := -1.0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad mine line %q: %v", sc.Text(), err)
		}
		if rec["done"] == true || rec["error"] != nil {
			terminal = rec
			continue
		}
		if c := rec["check"].(float64); c < lastCheck {
			t.Errorf("check regressed: %v after %v", c, lastCheck)
		} else {
			lastCheck = c
		}
		toSet := func(v any) []string {
			var out []string
			for _, it := range v.([]any) {
				out = append(out, it.(string))
			}
			return out
		}
		if v, ok := rec["max_frequent"]; ok {
			maxSets = append(maxSets, toSet(v))
		} else if v, ok := rec["min_infrequent"]; ok {
			minSets = append(minSets, toSet(v))
		} else {
			t.Fatalf("unclassifiable record %v", rec)
		}
	}
	if terminal == nil {
		t.Fatal("mine stream ended without a terminal record")
	}
	if terminal["done"] != true {
		t.Fatalf("terminal = %v", terminal)
	}
	if float64(len(maxSets)) != terminal["max_frequent_count"].(float64) ||
		float64(len(minSets)) != terminal["min_infrequent_count"].(float64) {
		t.Fatalf("streamed %d/%d, terminal %v", len(maxSets), len(minSets), terminal)
	}

	// One-shot /v1/borders on the same input must agree on the counts.
	code, out := post(t, ts.URL+"/v1/borders", map[string]any{"data": data, "z": 2})
	if code != 200 {
		t.Fatalf("borders: %d %v", code, out)
	}
	if len(out["max_frequent"].([]any)) != len(maxSets) ||
		len(out["min_infrequent"].([]any)) != len(minSets) {
		t.Errorf("mine streamed %d/%d, borders reports %d/%d",
			len(maxSets), len(minSets),
			len(out["max_frequent"].([]any)), len(out["min_infrequent"].([]any)))
	}

	// Bad threshold is still a proper HTTP error (nothing streamed yet).
	buf, _ = json.Marshal(map[string]any{"data": data, "z": 99})
	resp, err = http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Errorf("bad threshold: status %d", resp.StatusCode)
	}

	// Engine-pinned mining works and is counted.
	buf, _ = json.Marshal(map[string]any{"data": data, "z": 2, "engine": "fk-b"})
	resp, err = http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(raw, []byte(`"done":true`)) {
		t.Fatalf("fk-b mine: %d %s", resp.StatusCode, raw)
	}
	stats := getJSON(t, ts.URL+"/statsz")
	if stats["mined_elements"].(float64) < 2 {
		t.Errorf("mined_elements = %v", stats["mined_elements"])
	}
	if reqs := stats["requests"].(map[string]any); reqs["mine"].(float64) != 3 {
		t.Errorf("requests.mine = %v", reqs["mine"])
	}
}
