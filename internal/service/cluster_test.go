package service

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dualspace/internal/batch"
	"dualspace/internal/cluster"
	"dualspace/internal/hgio"
	"dualspace/internal/verdictlog"
)

// keyFor computes the canonical verdict-cache key the service computes for
// a request — the test-side half of the "same text ⇒ same key" contract.
func keyFor(t *testing.T, engName, g, h string) batch.Key {
	t.Helper()
	hs, _, err := hgio.ReadHypergraphsLimited(DefaultLimits,
		strings.NewReader(g), strings.NewReader(h))
	if err != nil {
		t.Fatal(err)
	}
	cg, ch := hs[0].Canonical(), hs[1].Canonical()
	return batch.NewKey(engName, cg.Fingerprint(), ch.Fingerprint())
}

// clusterInstance is one distinct canonical class with its known verdict.
type clusterInstance struct {
	g, h string
	dual bool
}

// clusterMix builds n canonically distinct instances with known verdicts:
// the self-dual triangle plus dual and near-dual matchings of growing
// width.
func clusterMix(n int) []clusterInstance {
	out := []clusterInstance{{g: "a b\nb c\na c\n", h: "a b\nb c\na c\n", dual: true}}
	for k := 2; len(out) < n && k <= 8; k++ {
		g, h := matchingText(k)
		out = append(out, clusterInstance{g: g, h: h, dual: true})
		if len(out) < n {
			// Dropping one dual edge leaves a new transversal: non-dual.
			lines := strings.SplitAfter(strings.TrimSuffix(h, "\n"), "\n")
			out = append(out, clusterInstance{g: g, h: strings.Join(lines[:len(lines)-1], ""), dual: false})
		}
	}
	return out
}

// startClusterReplicas binds n listeners first so every replica can be
// constructed knowing the full member list, then serves one Server per
// listener. Returns the base URLs, the cluster clients, and the Servers.
func startClusterReplicas(t *testing.T, n int) ([]string, []*cluster.Client, []*Server) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	clients := make([]*cluster.Client, n)
	servers := make([]*Server, n)
	for i := range lns {
		c, err := cluster.New(cluster.Config{Self: addrs[i], Peers: addrs})
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			t.Fatal("cluster client unexpectedly disabled")
		}
		clients[i] = c
		servers[i] = New(Config{Cluster: c})
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: servers[i]}}
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return addrs, clients, servers
}

// TestClusterPeerFillE2E: two live replicas, every distinct instance asked
// of both. Each instance must be computed exactly once cluster-wide — the
// non-owner's copy arrives by peer fill (decide path) and renders
// cached:true on the second ask.
func TestClusterPeerFillE2E(t *testing.T) {
	addrs, _, _ := startClusterReplicas(t, 2)
	instances := clusterMix(4)

	for i, in := range instances {
		body := map[string]any{"g": in.g, "h": in.h}
		code, out := post(t, addrs[0]+"/v1/decide", body)
		if code != 200 || out["dual"] != in.dual {
			t.Fatalf("instance %d on replica 0: code=%d out=%v", i, code, out)
		}
		code, out = post(t, addrs[1]+"/v1/decide", body)
		if code != 200 || out["dual"] != in.dual {
			t.Fatalf("instance %d on replica 1: code=%d out=%v", i, code, out)
		}
		if out["cached"] != true {
			t.Errorf("instance %d: second replica's answer not marked cached: %v", i, out)
		}
	}

	var decomps, filled, served float64
	for _, a := range addrs {
		st := getJSON(t, a+"/statsz")
		decomps += st["decompositions"].(float64)
		cl, ok := st["cluster"].(map[string]any)
		if !ok {
			t.Fatalf("replica %s /statsz has no cluster block", a)
		}
		filled += cl["peer_filled"].(float64)
		served += cl["serve_hits"].(float64) + cl["serve_computes"].(float64)
		if inv := cl["invalid_verdicts"].(float64); inv != 0 {
			t.Errorf("replica %s rejected %v peer verdicts", a, inv)
		}
	}
	if want := float64(len(instances)); decomps != want {
		t.Errorf("cluster-wide decompositions = %v, want %v (each instance computed once)", decomps, want)
	}
	if want := float64(len(instances)); filled != want || served != want {
		t.Errorf("peer_filled=%v served=%v, want %v each", filled, served, want)
	}
}

// TestClusterBatchPeerFill: the batch path's Fill hook reaches peers too —
// a fresh instance submitted as NDJSON batches to both replicas is still
// computed exactly once cluster-wide.
func TestClusterBatchPeerFill(t *testing.T) {
	addrs, _, _ := startClusterReplicas(t, 2)
	g, h := matchingText(5)
	row := fmt.Sprintf("{\"g\":%q,\"h\":%q}\n", g, h)

	for _, a := range addrs {
		resp, err := http.Post(a+"/v1/batch", "application/x-ndjson",
			bytes.NewReader([]byte(row)))
		if err != nil {
			t.Fatal(err)
		}
		raw := new(bytes.Buffer)
		_, _ = raw.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("batch on %s: status %d: %s", a, resp.StatusCode, raw)
		}
		if !bytes.Contains(raw.Bytes(), []byte(`"dual":true`)) ||
			bytes.Contains(raw.Bytes(), []byte(`"error"`)) {
			t.Fatalf("batch on %s: bad rows: %s", a, raw)
		}
	}

	var decomps float64
	for _, a := range addrs {
		decomps += getJSON(t, a+"/statsz")["decompositions"].(float64)
	}
	if decomps != 1 {
		t.Errorf("cluster-wide decompositions = %v, want 1", decomps)
	}
}

// TestClusterPeerDownFallback: a replica whose peer is dead keeps serving
// every request correctly from local compute; the dead peer's breaker
// absorbs the failures and stops the dialing.
func TestClusterPeerDownFallback(t *testing.T) {
	// Bind and immediately close a port: a configured peer that is down.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + ln.Addr().String()
	ln.Close()

	self := "http://192.0.2.1:9" // TEST-NET; never dialed
	c, err := cluster.New(cluster.Config{
		Self:             self,
		Peers:            []string{self, deadAddr},
		BreakerThreshold: 2,
		Timeout:          500 * time.Millisecond,
	})
	if err != nil || c == nil {
		t.Fatalf("cluster.New: %v, %v", c, err)
	}
	_, ts := newTestServer(t, Config{Cluster: c})

	// Only instances the ring assigns to the dead peer exercise the
	// failing fill path; ownership depends on the dead listener's port, so
	// partition the mix by the same ring the server consults.
	var remoteOwned, selfOwned []clusterInstance
	for _, in := range clusterMix(15) {
		key := keyFor(t, "core", in.g, in.h)
		if owner, remote := c.Owner(key.Hash64()); remote && owner == deadAddr {
			remoteOwned = append(remoteOwned, in)
		} else {
			selfOwned = append(selfOwned, in)
		}
	}
	for i, in := range append(append([]clusterInstance{}, remoteOwned...), selfOwned...) {
		code, out := post(t, ts.URL+"/v1/decide", map[string]any{"g": in.g, "h": in.h, "engine": "core"})
		if code != 200 || out["dual"] != in.dual {
			t.Fatalf("instance %d with peer down: code=%d out=%v", i, code, out)
		}
	}

	st := getJSON(t, ts.URL+"/statsz")
	cl := st["cluster"].(map[string]any)
	peers := cl["peers"].([]any)
	if len(peers) != 1 {
		t.Fatalf("peer stats = %v", peers)
	}
	ps := peers[0].(map[string]any)
	errs, skips := ps["errors"].(float64), ps["skips"].(float64)
	if float64(len(remoteOwned)) != errs+skips {
		t.Errorf("remote-owned=%d but errors=%v skips=%v", len(remoteOwned), errs, skips)
	}
	if len(remoteOwned) >= 3 {
		// Threshold 2: two transport errors open the breaker, later fills
		// are skipped without dialing.
		if errs != 2 || skips != float64(len(remoteOwned)-2) {
			t.Errorf("breaker did not clamp dialing: errors=%v skips=%v of %d", errs, skips, len(remoteOwned))
		}
		if ps["breaker_open"] != true {
			t.Errorf("breaker not reported open: %v", ps)
		}
	} else {
		t.Logf("only %d instances landed on the dead peer; breaker assertions skipped", len(remoteOwned))
	}
	if cl["peer_filled"].(float64) != 0 {
		t.Errorf("peer_filled = %v with a dead peer", cl["peer_filled"])
	}
}

// TestVerdictLogWarmRestart: verdicts stored by one server instance are
// replayed into the next instance's cache from the on-disk log — the next
// process answers cached:true without recomputing.
func TestVerdictLogWarmRestart(t *testing.T) {
	dir := t.TempDir()
	instances := clusterMix(3)

	lg, err := verdictlog.Open(dir, verdictlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{VerdictLog: lg})
	for i, in := range instances {
		if code, out := post(t, ts1.URL+"/v1/decide", map[string]any{"g": in.g, "h": in.h}); code != 200 || out["dual"] != in.dual {
			t.Fatalf("instance %d: code=%d out=%v", i, code, out)
		}
	}
	st := getJSON(t, ts1.URL+"/statsz")
	if vl := st["verdict_log"].(map[string]any); vl["dropped"].(float64) != 0 {
		t.Fatalf("writer dropped verdicts: %v", vl)
	}
	ts1.Close()
	s1.Close() // flush the async writer
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	lg2, err := verdictlog.Open(dir, verdictlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg2.Close() })
	s2, ts2 := newTestServer(t, Config{VerdictLog: lg2})
	defer s2.Close()
	st = getJSON(t, ts2.URL+"/statsz")
	vl := st["verdict_log"].(map[string]any)
	if got := vl["replayed_to_cache"].(float64); got != float64(len(instances)) {
		t.Fatalf("replayed_to_cache = %v, want %d", got, len(instances))
	}
	for i, in := range instances {
		code, out := post(t, ts2.URL+"/v1/decide", map[string]any{"g": in.g, "h": in.h})
		if code != 200 || out["dual"] != in.dual || out["cached"] != true {
			t.Fatalf("warm instance %d not served from replayed cache: code=%d out=%v", i, code, out)
		}
	}
	if d := getJSON(t, ts2.URL+"/statsz")["decompositions"].(float64); d != 0 {
		t.Errorf("warm restart recomputed %v instances", d)
	}
}
