// Package service exposes the dualspace façade as a long-lived HTTP/JSON
// service — the serving layer the ROADMAP's production north star asks for
// on top of the one-shot CLIs. docs/API.md documents the wire protocol.
//
// Architecture:
//
//   - Every decision endpoint runs on a bounded worker pool (Config.Workers
//     concurrent decompositions); excess requests queue in acquire() and
//     leave the queue the moment their client disconnects. The pool is an
//     engine.SessionPool: each slot is a long-lived memoizing
//     engine.Session, so the decisions it serves — /v1/decide verdicts, the
//     batch scheduler's drain workers, and the incremental loops behind the
//     application endpoints alike — reuse pinned scratch instead of
//     allocating per request.
//   - All duality work routes through internal/engine: requests pick a
//     decision procedure with the "engine" field (validated against
//     engine.Names(); empty = the default portfolio, which dispatches on
//     instance features), and /statsz reports per-engine cache-hit and
//     decision counters.
//   - Requests are cancellable end to end: the handler passes the request
//     context into the engine / transversal.EnumerateContext, which poll it
//     at every decomposition-tree (resp. search-tree) node, so a closed
//     client connection aborts the computation within one node.
//   - Verdicts are cached in an N-way sharded LRU (internal/batch.Cache,
//     per-shard locks — the single-mutex LRU it replaces serialized every
//     concurrent hit) keyed by the resolved engine name plus the canonical
//     Fingerprint pair of the inputs. Decisions run on the canonicalized
//     instance, so a cached verdict (including its witness and edge
//     indices) is valid for every request with the same canonical form and
//     engine — repeats and renamed-but-isomorphic-after-canonicalization
//     queries never recompute, while a verdict computed by one engine is
//     never served for an explicit request of another (engines agree on
//     verdicts but not on witnesses or statistics). The cache is shared
//     between /v1/decide and /v1/batch, so batch traffic warms interactive
//     traffic and vice versa.
//   - /v1/batch drains NDJSON streams of decisions through the
//     batch.Scheduler: canonicalize, dedup by fingerprint key (one
//     computation fans out to every duplicate in the stream — the
//     /v1/decide singleflight idea at batch granularity), decide distinct
//     instances on the shared session pool with bounded per-batch
//     parallelism and whole-batch cancellation. /v1/mine streams the
//     dualize-and-advance border-mining loop element by element.
//   - All input parsing goes through internal/hgio's *Limited readers with
//     explicit size/universe limits (Config.Limits), and request bodies are
//     bounded by Config.MaxBodyBytes (batches by Config.MaxBatchBytes), so
//     untrusted traffic cannot force unbounded allocation before
//     validation.
//
// Observability: /healthz for liveness, /statsz for request, cache (total
// and per shard), batch, decomposition (total and per engine), cancellation
// and stream counters.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dualspace/internal/batch"
	"dualspace/internal/bitset"
	"dualspace/internal/cluster"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/faultinject"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
	"dualspace/internal/verdictlog"
)

// Config parameterizes a Server. The zero value gets sensible production
// defaults from New.
type Config struct {
	// Workers bounds the number of concurrently executing decision
	// computations (default: GOMAXPROCS). Requests beyond the bound queue
	// until a slot frees or their client disconnects.
	Workers int
	// CacheSize is the verdict-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// CacheShards is the verdict-cache shard count (default
	// batch.DefaultShards; rounded up to a power of two).
	CacheShards int
	// Limits bounds parsed hypergraph/dataset/relation inputs; zero fields
	// get the package defaults (DefaultLimits).
	Limits hgio.Limits
	// MaxBodyBytes bounds a request body (default 4 MiB).
	MaxBodyBytes int64
	// MaxStreamResults caps the /v1/transversals limit knob (default
	// 65536). Requests may ask for less, never more.
	MaxStreamResults int
	// MemoEntries bounds each worker session's cross-node subinstance memo
	// (core/memo.go): 0 applies core.DefaultMemoEntries, a negative value
	// disables memoization. Aggregate hit/miss counters appear in /statsz.
	MemoEntries int
	// MaxBatchItems caps the rows of one /v1/batch request (default 4096).
	MaxBatchItems int
	// MaxBatchBytes bounds a /v1/batch request body (default 64 MiB — batch
	// bodies are streams, so they get a bigger budget than MaxBodyBytes).
	MaxBatchBytes int64
	// Logger, when non-nil, receives one structured access-log record per
	// request (slog Info level: method, path, endpoint, status, bytes,
	// latency, plus engine/verdict/outcome/fingerprints where the handler
	// knows them). Nil disables access logging; metrics are unaffected.
	Logger *slog.Logger

	// QueueDepth bounds the requests parked in acquire() waiting for a
	// worker slot; excess is shed with 503 + Retry-After. Default
	// max(16, 4×Workers); negative sheds every request that misses the
	// pool's fast path.
	QueueDepth int
	// QueueWait bounds how long one request may park before it is shed
	// (default 5s).
	QueueWait time.Duration
	// RetryAfter is the Retry-After hint on shed responses (default 1s;
	// rendered in whole seconds, rounded up).
	RetryAfter time.Duration

	// DecideTimeout .. AppsTimeout are the per-endpoint compute budgets: the
	// request context is bounded by the endpoint's budget once admission
	// succeeds, and an expired budget surfaces as 504 with reason "timeout"
	// (admission.go). Zero disables the budget. StreamTimeout covers
	// /v1/transversals, AppsTimeout the borders/keys/coteries trio.
	DecideTimeout time.Duration
	BatchTimeout  time.Duration
	MineTimeout   time.Duration
	StreamTimeout time.Duration
	AppsTimeout   time.Duration
	// MaxTimeout caps the per-request ?timeout_ms= override (default 60s).
	// Larger asks are clamped, never rejected.
	MaxTimeout time.Duration

	// Cluster, when non-nil, enables peer cache-fill: on a /v1/decide or
	// /v1/batch cache miss whose key is owned by another replica on the
	// consistent-hash ring, the owner is asked for the verdict (bounded
	// fan-out, per-peer circuit breaker) before computing locally, and the
	// POST /v1/cluster/verdict endpoint serves the reverse direction.
	// cmd/dualserved builds it from -self/-peers (cluster.go, docs/CLUSTER.md).
	Cluster *cluster.Client
	// VerdictLog, when non-nil, is the disk-backed verdict store: its
	// surviving records warm the cache at New, and every verdict the server
	// computes (or peer-fills) is appended asynchronously. The caller owns
	// the log's lifecycle: open before New, close after Server.Close.
	VerdictLog *verdictlog.Log
}

// DefaultLimits is the input bound applied when Config.Limits is zero:
// generous for real workloads, small enough that parsing stays cheap
// relative to the decisions themselves.
var DefaultLimits = hgio.Limits{
	MaxEdges:     1 << 16,
	MaxEdgeVerts: 1 << 12,
	MaxUniverse:  1 << 12,
	MaxLineBytes: 1 << 20,
}

// engineCounters are the per-engine /statsz and /metricsz observables —
// registry-owned counters, one storage for both surfaces.
type engineCounters struct {
	hits      *obs.Counter // cache hits for verdicts requested on this engine
	decisions *obs.Counter // decisions actually run on this engine
}

// Server is the HTTP duality/border service. Create with New; it is an
// http.Handler and safe for concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *batch.Cache
	start time.Time

	// pool is the worker pool: each slot is a long-lived memoizing
	// engine.Session owned exclusively by the holder that acquired it, so
	// session scratch — and the session's subinstance memo — is reused
	// across requests without locking.
	pool *engine.SessionPool

	// scheduler drains /v1/batch streams over the shared pool and cache.
	scheduler *batch.Scheduler

	// flights coalesces concurrent identical cache-miss /v1/decide requests
	// (flight.go).
	flights flightGroup

	// engStats maps every registry engine name to its counters; built once
	// in initObs, so reads are lock-free.
	engStats map[string]*engineCounters

	// obs is the metrics registry plus its derived series (obs.go). The
	// counters below are registry-owned: /statsz reads the same atomics
	// /metricsz exposes, so the two surfaces can never disagree.
	obs *serverObs

	reqDecide       *obs.Counter
	reqCluster      *obs.Counter
	reqBatch        *obs.Counter
	reqMine         *obs.Counter
	reqTransversals *obs.Counter
	reqBorders      *obs.Counter
	reqKeys         *obs.Counter
	reqCoteries     *obs.Counter
	reqHealth       *obs.Counter
	reqReady        *obs.Counter
	reqStats        *obs.Counter
	reqMetrics      *obs.Counter
	inFlight        *obs.Gauge
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	decompositions  *obs.Counter
	cancelled       *obs.Counter
	badRequests     *obs.Counter
	streamedSets    *obs.Counter
	minedElements   *obs.Counter
	coalesced       *obs.Counter
	panics          *obs.Counter

	// Resilience state (admission.go): queueWaiters is the live admission
	// queue occupancy; drainCh closes when BeginDrain runs so parked
	// waiters fail fast; retryAfter is the precomputed Retry-After header
	// value of shed responses.
	queueWaiters atomic.Int64
	drainCh      chan struct{}
	drainOnce    sync.Once
	draining     atomic.Bool
	retryAfter   string

	// Cluster + verdict-log state (cluster.go). The counters are
	// registry-owned like every other /statsz series; vlogCh feeds the
	// single async writer goroutine, and logReplayed counts the records
	// warmed into the cache at New.
	peerFilled           *obs.Counter
	peerInvalid          *obs.Counter
	clusterServeHits     *obs.Counter
	clusterServeComputes *obs.Counter
	vlogDropped          *obs.Counter
	vlog                 *verdictlog.Log
	vlogCh               chan verdictlog.Record
	vlogQuit             chan struct{}
	vlogDone             chan struct{}
	logReplayed          atomic.Int64
	closeOnce            sync.Once

	// testHookDecideStart, when non-nil, runs right after a /v1/decide
	// request has claimed a worker slot and before the decomposition
	// starts; tests use it to cancel in-flight requests deterministically.
	testHookDecideStart func()
}

// New returns a Server with defaults applied to the zero fields of cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.Limits == (hgio.Limits{}) {
		cfg.Limits = DefaultLimits
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.MaxStreamResults <= 0 {
		cfg.MaxStreamResults = 1 << 16
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 4096
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 64 << 20
	}
	switch {
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = max(16, 4*cfg.Workers)
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 5 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = time.Minute
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		pool:       engine.NewSessionPool(nil, cfg.Workers, cfg.MemoEntries),
		cache:      batch.NewCache(cfg.CacheSize, cfg.CacheShards),
		engStats:   make(map[string]*engineCounters, len(engine.Names())),
		start:      time.Now(),
		drainCh:    make(chan struct{}),
		retryAfter: strconv.Itoa(int((cfg.RetryAfter + time.Second - 1) / time.Second)),
	}
	s.initObs(cfg.Logger)
	schedCfg := batch.Config{
		Pool: s.pool, Cache: s.cache, Metrics: s.obs.decide,
		OnPanic: s.onBatchPanic,
	}
	if cfg.Cluster != nil {
		schedCfg.Fill = s.batchFill
	}
	if cfg.VerdictLog != nil {
		s.vlog = cfg.VerdictLog
		s.warmFromLog()
		s.vlogCh = make(chan verdictlog.Record, 1024)
		s.vlogQuit = make(chan struct{})
		s.vlogDone = make(chan struct{})
		go s.vlogWriter()
		schedCfg.OnStore = s.onBatchStore
	}
	s.scheduler = batch.NewScheduler(schedCfg)
	s.mux.HandleFunc("POST /v1/decide", s.handleDecide)
	s.mux.HandleFunc("POST /v1/cluster/verdict", s.handleClusterVerdict)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/mine", s.handleMine)
	s.mux.HandleFunc("POST /v1/transversals", s.handleTransversals)
	s.mux.HandleFunc("POST /v1/borders", s.handleBorders)
	s.mux.HandleFunc("POST /v1/keys", s.handleKeys)
	s.mux.HandleFunc("POST /v1/coteries", s.handleCoteries)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	return s
}

// ServeHTTP dispatches to the service mux, wrapped in the observability
// middleware: in-flight gauge, per-endpoint latency histogram, and (when
// Config.Logger is set) a structured access-log record annotated by the
// handler through the request context (obs.go). finishRequest is deferred
// rather than called, because it doubles as the last-resort panic boundary
// for panics no session boundary contained.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	ep := endpointOf(r.URL.Path)
	sw := &statusWriter{ResponseWriter: w}
	ai := &accessInfo{}
	r = r.WithContext(context.WithValue(r.Context(), accessInfoKey{}, ai))
	defer s.finishRequest(r, ep, sw, ai, time.Now())
	s.mux.ServeHTTP(sw, r)
}

// finishRequest observes the finished request and contains any panic still
// unwinding: count, log the stack, and — when nothing has been written yet
// — answer a clean 500 with reason "panic". Mid-response the stream is
// corrupt, so the connection is aborted with http.ErrAbortHandler (which
// also passes through untouched when a handler raised it deliberately);
// either way the process keeps serving.
func (s *Server) finishRequest(r *http.Request, ep string, sw *statusWriter, ai *accessInfo, t0 time.Time) {
	if v := recover(); v != nil {
		if v != http.ErrAbortHandler {
			s.panics.Add(1)
			s.logPanic("panic contained in handler", v, debug.Stack())
			ai.outcome = "panic"
			if sw.status == 0 {
				writeErrorReason(sw, http.StatusInternalServerError, reasonPanic,
					fmt.Errorf("internal panic: %v", v))
				s.observeRequest(r, ep, sw, ai, time.Since(t0))
				return
			}
		}
		s.observeRequest(r, ep, sw, ai, time.Since(t0))
		panic(http.ErrAbortHandler)
	}
	s.observeRequest(r, ep, sw, ai, time.Since(t0))
}

// decodeJSON reads a bounded request body into dst.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// writeJSON renders a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorResponse is the uniform error body. Reason is the machine-readable
// taxonomy class (docs/API.md): bad_request | limit | unprocessable |
// timeout | shed | panic.
type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// writeError renders a request-class JSON error with the status matching
// the failure: 413 for input-limit violations (hgio limits and the body
// bound alike), the given status otherwise. The resilience outcomes —
// shed, timeout, panic — have their own writers (admission.go) and are not
// counted as bad requests.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.badRequests.Add(1)
	var mbe *http.MaxBytesError
	if errors.Is(err, hgio.ErrLimitExceeded) || errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	writeErrorReason(w, status, reasonForStatus(status), err)
}

// reasonForStatus maps a status to its taxonomy class.
func reasonForStatus(status int) string {
	switch status {
	case http.StatusRequestEntityTooLarge:
		return reasonLimit
	case http.StatusUnprocessableEntity:
		return reasonUnprocessable
	case http.StatusServiceUnavailable:
		return reasonShed
	case http.StatusGatewayTimeout:
		return reasonTimeout
	case http.StatusInternalServerError:
		return reasonPanic
	}
	return reasonBadRequest
}

// writeErrorReason renders the uniform error body with an explicit
// taxonomy class.
func writeErrorReason(w http.ResponseWriter, status int, reason string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Reason: reason})
}

// names renders a vertex set as its interned names in index order.
func names(set bitset.Set, sy *hgio.Symbols) []string {
	out := []string{}
	set.ForEach(func(v int) bool {
		out = append(out, sy.Name(v))
		return true
	})
	return out
}

// edgeNames renders every edge of h as a name list.
func edgeNames(h *hypergraph.Hypergraph, sy *hgio.Symbols) [][]string {
	out := make([][]string, 0, h.M())
	for _, e := range h.Edges() {
		out = append(out, names(e, sy))
	}
	return out
}

// statsResponse is the /statsz body.
type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	GitRevision   string  `json:"git_revision"`
	InFlight      int64   `json:"in_flight"`
	Workers       int     `json:"workers"`
	Requests      struct {
		Decide       int64 `json:"decide"`
		Cluster      int64 `json:"cluster"`
		Batch        int64 `json:"batch"`
		Mine         int64 `json:"mine"`
		Transversals int64 `json:"transversals"`
		Borders      int64 `json:"borders"`
		Keys         int64 `json:"keys"`
		Coteries     int64 `json:"coteries"`
		Health       int64 `json:"health"`
		Ready        int64 `json:"ready"`
		Stats        int64 `json:"stats"`
		Metrics      int64 `json:"metrics"`
	} `json:"requests"`
	// Cache: Hits/Misses are /v1/decide's own lookup counters; Shards
	// carries the shared sharded cache's per-shard counters across ALL
	// users (batch included), so sum(shards[].hits) ≥ Hits by design.
	Cache struct {
		Hits     int64              `json:"hits"`
		Misses   int64              `json:"misses"`
		Size     int                `json:"size"`
		Capacity int                `json:"capacity"`
		Shards   []batch.ShardStats `json:"shards,omitempty"`
	} `json:"cache"`
	// Batch carries the batch scheduler's lifetime counters: streams
	// drained, items, in-batch dedup fan-out, shared-cache hits, engine
	// runs (internal/batch.Stats).
	Batch batch.Stats `json:"batch"`
	// Engines carries per-engine cache hits and decision runs, keyed by
	// registry name; requests without an explicit engine count under
	// "portfolio".
	Engines map[string]engineStats `json:"engines"`
	// Memo aggregates the cross-node subinstance memo counters over every
	// worker session (core/memo.go).
	Memo struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Inserts   int64 `json:"inserts"`
		Entries   int64 `json:"entries"`
		Evictions int64 `json:"evictions"`
	} `json:"memo"`
	Decompositions int64 `json:"decompositions"`
	// Coalesced counts /v1/decide requests that joined another request's
	// in-flight identical computation instead of running their own.
	Coalesced       int64 `json:"coalesced"`
	Cancelled       int64 `json:"cancelled"`
	BadRequests     int64 `json:"bad_requests"`
	StreamedResults int64 `json:"streamed_results"`
	// MinedElements counts border elements streamed by /v1/mine.
	MinedElements int64 `json:"mined_elements"`
	// Draining reports whether graceful drain has begun (/readyz is 503).
	Draining bool `json:"draining"`
	// Resilience carries the admission-control and panic-containment
	// counters (docs/OBSERVABILITY.md).
	Resilience struct {
		// Sheds / Timeouts sum the per-endpoint 503/504 series.
		Sheds    int64 `json:"sheds"`
		Timeouts int64 `json:"timeouts"`
		// Panics counts panics contained at any serving boundary.
		Panics int64 `json:"panics"`
		// QueueWaiters / QueueDepth are the live admission-queue occupancy
		// and its bound.
		QueueWaiters int64 `json:"queue_waiters"`
		QueueDepth   int   `json:"queue_depth"`
		// SessionsReplaced counts poisoned sessions the pool swapped out.
		SessionsReplaced int64 `json:"sessions_replaced"`
		// FaultsInjected counts fault-injection firings (0 in production:
		// the harness is armed only by -faults / the chaos suite).
		FaultsInjected int64 `json:"faults_injected"`
	} `json:"resilience"`
	// Cluster appears when peer cache-fill is configured (-self/-peers):
	// ring membership, per-peer fill counters and breaker state, and this
	// replica's serving-side counters (docs/CLUSTER.md).
	Cluster *clusterStatsBlock `json:"cluster,omitempty"`
	// VerdictLog appears when the disk-backed verdict store is configured
	// (-verdict-log): replay, append, segment and compaction counters.
	VerdictLog *verdictLogStatsBlock `json:"verdict_log,omitempty"`
}

// clusterStatsBlock is the /statsz "cluster" block.
type clusterStatsBlock struct {
	// Self is this replica's normalized ring address.
	Self string `json:"self"`
	// Peers lists every remote ring member with its fill counters
	// (attempts, verdicts received, healthy misses, errors, breaker/fan-out
	// skips) and live breaker state.
	Peers []cluster.PeerStats `json:"peers"`
	// PeerFilled counts requests on this replica answered by a peer's
	// verdict (decide and batch paths together).
	PeerFilled int64 `json:"peer_filled"`
	// InvalidVerdicts counts peer responses rejected by validation — any
	// nonzero value means a peer decided a different instance and should be
	// treated as an alarm.
	InvalidVerdicts int64 `json:"invalid_verdicts"`
	// ServeHits / ServeComputes count the serving side of
	// /v1/cluster/verdict: fills answered from this replica's cache vs.
	// computed on its workers.
	ServeHits     int64 `json:"serve_hits"`
	ServeComputes int64 `json:"serve_computes"`
}

// verdictLogStatsBlock is the /statsz "verdict_log" block: the log's own
// counters plus the service-side replay-into-cache and writer-drop counts.
type verdictLogStatsBlock struct {
	verdictlog.Stats
	// ReplayedToCache counts log records warmed into the verdict cache at
	// startup (≤ the log's replayed count: unknown engines are skipped).
	ReplayedToCache int64 `json:"replayed_to_cache"`
	// Dropped counts verdicts the non-blocking append path discarded
	// because the writer was stalled.
	Dropped int64 `json:"dropped"`
}

// engineStats is the wire form of one engine's counters.
type engineStats struct {
	Hits      int64 `json:"hits"`
	Decisions int64 `json:"decisions"`
}

// healthResponse is the /healthz body: liveness plus enough build metadata
// to tell which binary answered. Liveness stays 200 for the whole process
// lifetime, drain included — a draining replica is alive, it just should
// not receive new traffic, which is /readyz's job.
type healthResponse struct {
	OK            bool    `json:"ok"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	GitRevision   string  `json:"git_revision"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.reqHealth.Add(1)
	writeJSON(w, healthResponse{
		OK:            true,
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
		GitRevision:   obs.GitRevision(),
	})
}

// readyResponse is the /readyz body: readiness for new traffic. Once
// BeginDrain runs the endpoint answers 503 with Draining set, so load
// balancers stop routing to this replica before its listener closes.
type readyResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.reqReady.Add(1)
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(readyResponse{Ready: false, Draining: true})
		return
	}
	writeJSON(w, readyResponse{Ready: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.reqStats.Add(1)
	var resp statsResponse
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.GoVersion = runtime.Version()
	resp.GitRevision = obs.GitRevision()
	resp.InFlight = s.inFlight.Load()
	resp.Workers = s.cfg.Workers
	resp.Requests.Decide = s.reqDecide.Load()
	resp.Requests.Cluster = s.reqCluster.Load()
	resp.Requests.Batch = s.reqBatch.Load()
	resp.Requests.Mine = s.reqMine.Load()
	resp.Requests.Transversals = s.reqTransversals.Load()
	resp.Requests.Borders = s.reqBorders.Load()
	resp.Requests.Keys = s.reqKeys.Load()
	resp.Requests.Coteries = s.reqCoteries.Load()
	resp.Requests.Health = s.reqHealth.Load()
	resp.Requests.Ready = s.reqReady.Load()
	resp.Requests.Stats = s.reqStats.Load()
	resp.Requests.Metrics = s.reqMetrics.Load()
	resp.Cache.Hits = s.cacheHits.Load()
	resp.Cache.Misses = s.cacheMisses.Load()
	resp.Cache.Size = s.cache.Len()
	resp.Cache.Capacity = s.cache.Capacity()
	resp.Cache.Shards = s.cache.Stats()
	resp.Batch = s.scheduler.Stats()
	resp.Engines = make(map[string]engineStats, len(s.engStats))
	for name, c := range s.engStats {
		resp.Engines[name] = engineStats{Hits: c.hits.Load(), Decisions: c.decisions.Load()}
	}
	ms := s.pool.MemoStats()
	resp.Memo.Hits = ms.Hits
	resp.Memo.Misses = ms.Misses
	resp.Memo.Inserts = ms.Inserts
	resp.Memo.Entries = ms.Entries
	resp.Memo.Evictions = ms.Evictions
	resp.Decompositions = s.decompositions.Load()
	resp.Coalesced = s.coalesced.Load()
	resp.Cancelled = s.cancelled.Load()
	resp.BadRequests = s.badRequests.Load()
	resp.StreamedResults = s.streamedSets.Load()
	resp.MinedElements = s.minedElements.Load()
	resp.Draining = s.draining.Load()
	for _, c := range s.obs.sheds {
		resp.Resilience.Sheds += c.Load()
	}
	for _, c := range s.obs.timeouts {
		resp.Resilience.Timeouts += c.Load()
	}
	resp.Resilience.Panics = s.panics.Load()
	resp.Resilience.QueueWaiters = s.queueWaiters.Load()
	resp.Resilience.QueueDepth = s.cfg.QueueDepth
	resp.Resilience.SessionsReplaced = s.pool.Replaced()
	resp.Resilience.FaultsInjected = faultinject.FiredTotal()
	if c := s.cfg.Cluster; c != nil {
		resp.Cluster = &clusterStatsBlock{
			Self:            c.Self(),
			Peers:           c.Stats(),
			PeerFilled:      s.peerFilled.Load(),
			InvalidVerdicts: s.peerInvalid.Load(),
			ServeHits:       s.clusterServeHits.Load(),
			ServeComputes:   s.clusterServeComputes.Load(),
		}
	}
	if s.vlog != nil {
		resp.VerdictLog = &verdictLogStatsBlock{
			Stats:           s.vlog.Stats(),
			ReplayedToCache: s.logReplayed.Load(),
			Dropped:         s.vlogDropped.Load(),
		}
	}
	writeJSON(w, resp)
}

// decideRequest is the /v1/decide body (and the /v1/batch row shape): two
// hypergraphs in the hgio line-oriented edge format, plus an optional
// engine name (docs/API.md).
type decideRequest struct {
	G string `json:"g"`
	H string `json:"h"`
	// Engine selects the decision procedure by registry name; empty means
	// the default portfolio. Unknown names are a 400.
	Engine string `json:"engine,omitempty"`
}

// decideStats mirrors core.Stats on the wire.
type decideStats struct {
	Nodes       int `json:"nodes"`
	Leaves      int `json:"leaves"`
	MaxDepth    int `json:"max_depth"`
	MaxChildren int `json:"max_children"`
	// MemoHits counts subtrees skipped by the worker session's subinstance
	// memo during this decision (0 on cached or coalesced responses).
	MemoHits int `json:"memo_hits,omitempty"`
}

// decideResponse is the /v1/decide verdict. Edge indices refer to the
// canonicalized (sorted, deduplicated) instance the decision ran on; the
// offending edges are also rendered as name lists so clients need not
// re-canonicalize.
type decideResponse struct {
	Dual            bool        `json:"dual"`
	Reason          string      `json:"reason"`
	Witness         []string    `json:"witness,omitempty"`
	CoWitness       []string    `json:"cowitness,omitempty"`
	GEdge           int         `json:"g_edge"`
	HEdge           int         `json:"h_edge"`
	GEdgeVerts      []string    `json:"g_edge_verts,omitempty"`
	HEdgeVerts      []string    `json:"h_edge_verts,omitempty"`
	RedundantVertex string      `json:"redundant_vertex,omitempty"`
	FailPath        []int       `json:"fail_path,omitempty"`
	Swapped         bool        `json:"swapped"`
	Stats           decideStats `json:"stats"`
	Cached          bool        `json:"cached"`
	// Engine is the resolved engine name the verdict was requested on.
	Engine string `json:"engine"`
	// Trace carries per-stage wall timings when the request asked for them
	// with ?trace=1 (docs/OBSERVABILITY.md has the stage glossary).
	Trace *traceStats `json:"trace,omitempty"`
}

// traceStats is the ?trace=1 block: nanoseconds spent in each request
// stage, plus the request wall time they are bounded by. Stages are
// disjoint, so their sum is at most wall_ns; cached and coalesced
// responses report only the stages they actually ran (parse, canonicalize,
// cache lookup).
type traceStats struct {
	WallNs         int64 `json:"wall_ns"`
	ParseNs        int64 `json:"parse_ns"`
	CanonicalizeNs int64 `json:"canonicalize_ns"`
	CacheLookupNs  int64 `json:"cache_lookup_ns"`
	PrecheckNs     int64 `json:"precheck_ns,omitempty"`
	IndexSyncNs    int64 `json:"index_sync_ns,omitempty"`
	WalkNs         int64 `json:"walk_ns,omitempty"`
	MemoNs         int64 `json:"memo_ns,omitempty"`
}

// traceState accumulates a /v1/decide request's stage timings. The
// handler-local stages (parse, canonicalize, cache lookup) are timed here;
// engine stages come from the worker session's recorder on computed
// responses. The state exists whether or not the client asked for a trace
// — the same numbers feed the per-engine stage histograms — but attach
// renders it onto the response only when enabled.
type traceState struct {
	enabled              bool
	start                time.Time
	parse, canon, lookup time.Duration
	stages               obs.StageTimings
}

// attach renders the trace block onto resp when the request asked for it.
// Wall is measured at attach time, so every recorded stage is a
// sub-interval of it.
func (t *traceState) attach(resp *decideResponse) {
	if !t.enabled {
		return
	}
	resp.Trace = &traceStats{
		WallNs:         time.Since(t.start).Nanoseconds(),
		ParseNs:        t.parse.Nanoseconds(),
		CanonicalizeNs: t.canon.Nanoseconds(),
		CacheLookupNs:  t.lookup.Nanoseconds(),
		PrecheckNs:     t.stages[obs.StagePrecheck],
		IndexSyncNs:    t.stages[obs.StageIndexSync],
		WalkNs:         t.stages[obs.StageWalk],
		MemoNs:         t.stages[obs.StageMemo],
	}
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	s.reqDecide.Add(1)
	ai := accessFrom(r.Context())
	tr := traceState{
		enabled: r.URL.Query().Get("trace") == "1",
		start:   time.Now(),
	}
	ctx, cancel, err := s.budgetCtx(r, s.cfg.DecideTimeout)
	if err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	t0 := time.Now()
	var req decideRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	eng, err := engine.ByName(req.Engine)
	if err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	engName := eng.Name() // "" resolves to the default portfolio's name
	ai.engine = engName
	hs, sy, err := hgio.ReadHypergraphsLimited(s.cfg.Limits,
		strings.NewReader(req.G), strings.NewReader(req.H))
	tr.parse = time.Since(t0)
	if err != nil {
		ai.outcome = "error"
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	t0 = time.Now()
	g, h := hs[0].Canonical(), hs[1].Canonical()
	key := batch.NewKey(engName, g.Fingerprint(), h.Fingerprint())
	tr.canon = time.Since(t0)
	ai.fg, ai.fh = fpPrefix(key.FG), fpPrefix(key.FH)
	t0 = time.Now()
	// An injected cache fault degrades to a miss: a broken cache must cost
	// computation, never correctness or availability.
	var res *core.Result
	ok := false
	if faultinject.Fire(ctx, faultinject.PointCacheLookup) == nil {
		res, ok = s.cache.Get(key)
	}
	tr.lookup = time.Since(t0)
	if ok {
		s.cacheHits.Add(1)
		s.engStats[engName].hits.Add(1)
		ai.note("cache_hit", res.Dual, res.Reason.String())
		resp := renderDecide(res, g, h, sy, true, engName)
		tr.attach(&resp)
		writeJSON(w, resp)
		return
	}
	s.cacheMisses.Add(1)
	// A request that is itself a peer's work (the loop guard ?no_forward=1
	// or the peer header) must never fan out again, whatever the ring says.
	noForward := r.URL.Query().Get("no_forward") == "1" ||
		r.Header.Get(cluster.PeerHeader) != ""
	for {
		f, leader := s.flights.join(key)
		if leader {
			s.decideLeader(w, r, ctx, key, f, eng, engName, g, h, sy, ai, &tr, req, noForward)
			return
		}
		// Identical computation already in flight: wait for its verdict
		// instead of burning a worker slot on a duplicate decomposition.
		f.waiters.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			f.waiters.Add(-1)
			// Budget gone while coalesced: a timeout response. Client gone:
			// silence; the leader carries on for the rest.
			s.failCompute(w, r, ctx, context.Cause(ctx))
			return
		}
		f.waiters.Add(-1)
		if f.err == nil {
			s.coalesced.Add(1)
			ai.note("coalesced", f.res.Dual, f.res.Reason.String())
			resp := renderDecide(f.res, g, h, sy, true, engName)
			tr.attach(&resp)
			writeJSON(w, resp)
			return
		}
		if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
			// A real decision error — identical inputs would fail
			// identically, so surface it without recomputing (a contained
			// panic keeps its own taxonomy class through failCompute).
			s.coalesced.Add(1)
			s.failCompute(w, r, ctx, f.err)
			return
		}
		// The leader's run was cancelled (its client disconnected, or its
		// budget — not ours — expired); loop and race to become the new
		// leader (not counted as coalesced: this request was not served by
		// the dead flight).
	}
}

// decideLeader runs the actual decomposition for a coalesced flight and
// publishes the outcome to its followers, successful or not — a flight left
// open would strand every waiter. ctx is the request's budget context.
func (s *Server) decideLeader(w http.ResponseWriter, r *http.Request, ctx context.Context, key batch.Key, f *flight, eng engine.Engine, engName string, g, h *hypergraph.Hypergraph, sy *hgio.Symbols, ai *accessInfo, tr *traceState, req decideRequest, noForward bool) {
	var fres *core.Result
	var ferr error
	defer func() { s.flights.finish(key, f, fres, ferr) }()

	// Peer fill: when the key's cluster owner is another replica, one
	// bounded round trip for its cached verdict replaces the decomposition
	// (and warms the local cache + log for next time). Any failure —
	// breaker open, fan-out bound, peer miss or error — degrades to local
	// compute. The flight's followers share the filled verdict either way.
	if !noForward {
		if res := s.tryPeerFill(ctx, key, g.N(), req.G, req.H); res != nil {
			fres = res
			s.cache.Add(key, fres)
			s.appendVerdict(key, fres, g.N())
			ai.note("peer_fill", fres.Dual, fres.Reason.String())
			resp := renderDecide(fres, g, h, sy, true, engName)
			tr.attach(&resp)
			writeJSON(w, resp)
			return
		}
	}

	sess, err := s.acquire(ctx)
	if err != nil {
		ferr = err
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)
	if s.testHookDecideStart != nil {
		s.testHookDecideStart()
	}
	s.decompositions.Add(1)
	s.engStats[engName].decisions.Add(1)
	// The session's pinned recorder captures the engine stages (precheck,
	// index sync, walk, memo); the handler-local stages join it so the
	// per-engine stage histograms and the ?trace=1 block see one consistent
	// breakdown.
	rec := sess.Recorder()
	rec.Reset()
	t0 := time.Now()
	res, err := s.decideGuarded(ctx, sess, eng, g, h)
	wall := time.Since(t0)
	rec.Add(obs.StageParse, tr.parse)
	rec.Add(obs.StageCanon, tr.canon)
	rec.Add(obs.StageCacheLookup, tr.lookup)
	s.obs.decide.Observe(engName, wall, rec)
	if err != nil {
		ferr = err
		s.failCompute(w, r, ctx, err)
		return
	}
	// Session results alias the worker's pinned scratch and are only valid
	// until its next decision; the cache and the flight's followers retain
	// the verdict, so both get one shared detached copy.
	fres = res.Clone()
	s.cache.Add(key, fres)
	s.appendVerdict(key, fres, g.N())
	ai.note("computed", res.Dual, res.Reason.String())
	tr.stages = rec.Timings()
	resp := renderDecide(res, g, h, sy, false, engName)
	tr.attach(&resp)
	writeJSON(w, resp)
}

// renderDecide resolves an index-level verdict into the request's names;
// g and h are the canonicalized inputs the verdict's edge indices refer to.
func renderDecide(res *core.Result, g, h *hypergraph.Hypergraph, sy *hgio.Symbols, cached bool, engName string) decideResponse {
	resp := decideResponse{
		Dual:    res.Dual,
		Reason:  res.Reason.String(),
		GEdge:   res.GEdge,
		HEdge:   res.HEdge,
		Swapped: res.Swapped,
		Cached:  cached,
		Engine:  engName,
		Stats: decideStats{
			Nodes:       res.Stats.Nodes,
			Leaves:      res.Stats.Leaves,
			MaxDepth:    res.Stats.MaxDepth,
			MaxChildren: res.Stats.MaxChildren,
			MemoHits:    res.Stats.MemoHits,
		},
	}
	if res.Reason == core.ReasonNewTransversal {
		resp.Witness = names(res.Witness, sy)
		resp.CoWitness = names(res.CoWitness, sy)
		resp.FailPath = res.FailPath
	}
	if res.GEdge >= 0 && res.GEdge < g.M() {
		resp.GEdgeVerts = names(g.Edge(res.GEdge), sy)
	}
	if res.HEdge >= 0 && res.HEdge < h.M() {
		resp.HEdgeVerts = names(h.Edge(res.HEdge), sy)
	}
	if res.RedundantVertex >= 0 && res.RedundantVertex < sy.Len() {
		resp.RedundantVertex = sy.Name(res.RedundantVertex)
	}
	if cached {
		// memo_hits gauges THIS request's decomposition work; a cached or
		// coalesced response ran none, whatever the original run recorded.
		resp.Stats.MemoHits = 0
	}
	return resp
}
