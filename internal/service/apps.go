package service

// The paper's three database applications as endpoints (Propositions
// 1.1–1.3): itemset borders, additional keys, coterie non-domination. Each
// runs on the same bounded worker pool as the duality endpoints and drives
// its duality checks through the worker slot's pinned engine.Session, so
// the incremental loops (dualize-and-advance, key enumeration) reuse
// scratch across their many decisions; inputs go through the hardened hgio
// readers.

import (
	"fmt"
	"net/http"
	"strings"

	"dualspace/internal/coterie"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
	"dualspace/internal/itemsets"
)

// bordersRequest is the /v1/borders body: a transaction database (one
// transaction per line, whitespace-separated item names) and the frequency
// threshold z (frequent ⟺ support > z).
type bordersRequest struct {
	Data string `json:"data"`
	Z    int    `json:"z"`
}

type bordersResponse struct {
	MaxFrequent   [][]string `json:"max_frequent"`
	MinInfrequent [][]string `json:"min_infrequent"`
	DualityChecks int        `json:"duality_checks"`
	Transactions  int        `json:"transactions"`
	Items         int        `json:"items"`
}

func (s *Server) handleBorders(w http.ResponseWriter, r *http.Request) {
	s.reqBorders.Add(1)
	var req bordersRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	d, sy, err := hgio.ReadDatasetLimited(strings.NewReader(req.Data), s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.budgetCtx(r, s.cfg.AppsTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sess, err := s.acquire(ctx)
	if err != nil {
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)
	b, err := itemsets.ComputeBordersWith(ctx, d, req.Z, sess)
	if err != nil {
		s.failCompute(w, r, ctx, err)
		return
	}
	writeJSON(w, bordersResponse{
		MaxFrequent:   edgeNames(b.MaxFrequent.Canonical(), sy),
		MinInfrequent: edgeNames(b.MinInfrequent.Canonical(), sy),
		DualityChecks: b.DualityChecks,
		Transactions:  d.NumRows(),
		Items:         d.NumItems(),
	})
}

// keysRequest is the /v1/keys body: a relational instance as CSV (header
// row of attribute names, then tuples). With Known empty every minimal key
// is enumerated; otherwise Known lists already-known minimal keys (one per
// line, attribute names) and the additional-key problem is decided.
type keysRequest struct {
	CSV   string `json:"csv"`
	Known string `json:"known,omitempty"`
}

type keysResponse struct {
	Keys     [][]string  `json:"keys,omitempty"`
	Complete bool        `json:"complete"`
	NewKey   []string    `json:"new_key,omitempty"`
	Stats    decideStats `json:"stats"`
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	s.reqKeys.Add(1)
	var req keysRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rel, err := hgio.ReadRelationCSVLimited(strings.NewReader(req.CSV), s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	attrSym := hgio.NewSymbols()
	for i := 0; i < rel.NumAttrs(); i++ {
		attrSym.Intern(rel.AttrName(i))
	}
	ctx, cancel, err := s.budgetCtx(r, s.cfg.AppsTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sess, err := s.acquire(ctx)
	if err != nil {
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)

	if strings.TrimSpace(req.Known) == "" {
		all, _, err := rel.EnumerateKeysIncrementallyWith(ctx, sess)
		if err != nil {
			s.failCompute(w, r, ctx, err)
			return
		}
		writeJSON(w, keysResponse{Keys: edgeNames(all.Canonical(), attrSym), Complete: true})
		return
	}

	el, err := hgio.ParseEdgesLimited(strings.NewReader(req.Known), s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	known := hypergraph.New(rel.NumAttrs())
	for _, edge := range el {
		idx := make([]int, len(edge))
		for i, name := range edge {
			j := rel.AttrIndex(name)
			if j < 0 {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown attribute %q in known keys", name))
				return
			}
			idx[i] = j
		}
		known.AddEdgeElems(idx...)
	}
	res, err := rel.AdditionalKeyWith(ctx, known, sess)
	if err != nil {
		s.failCompute(w, r, ctx, err)
		return
	}
	resp := keysResponse{
		Complete: res.Complete,
		Stats: decideStats{
			Nodes:       res.DualityStats.Nodes,
			Leaves:      res.DualityStats.Leaves,
			MaxDepth:    res.DualityStats.MaxDepth,
			MaxChildren: res.DualityStats.MaxChildren,
		},
	}
	if res.FoundNew {
		resp.NewKey = names(res.NewKey, attrSym)
	}
	writeJSON(w, resp)
}

// coteriesRequest is the /v1/coteries body: quorums in the hgio edge
// format. With Improve set, a dominating coterie is returned when the
// input is dominated.
type coteriesRequest struct {
	Quorums string `json:"quorums"`
	Improve bool   `json:"improve,omitempty"`
}

type coteriesResponse struct {
	NonDominated bool       `json:"non_dominated"`
	Quorums      int        `json:"quorums"`
	Nodes        int        `json:"nodes"`
	Dominating   [][]string `json:"dominating,omitempty"`
}

func (s *Server) handleCoteries(w http.ResponseWriter, r *http.Request) {
	s.reqCoteries.Add(1)
	var req coteriesRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	hs, sy, err := hgio.ReadHypergraphsLimited(s.cfg.Limits, strings.NewReader(req.Quorums))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := coterie.New(hs[0])
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel, err := s.budgetCtx(r, s.cfg.AppsTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sess, err := s.acquire(ctx)
	if err != nil {
		s.failAcquire(w, r, err)
		return
	}
	defer s.release(sess)
	resp := coteriesResponse{Quorums: c.NumQuorums(), Nodes: c.Universe()}
	if req.Improve {
		// One self-duality decomposition answers both questions: found is
		// false exactly when the coterie is non-dominated.
		dom, found, err := c.FindDominatingWith(ctx, sess)
		if err != nil {
			s.failCompute(w, r, ctx, err)
			return
		}
		resp.NonDominated = !found
		if found {
			resp.Dominating = edgeNames(dom.Hypergraph(), sy)
		}
	} else {
		nd, err := c.IsNonDominatedWith(ctx, sess)
		if err != nil {
			s.failCompute(w, r, ctx, err)
			return
		}
		resp.NonDominated = nd
	}
	writeJSON(w, resp)
}
