package service

// The server's observability surface: a per-Server obs.Registry holding
// every counter the handlers maintain (so /statsz and /metricsz render the
// same atomic storage and can never disagree), per-endpoint request/latency
// series, per-engine decision wall and stage histograms, a structured
// access log, and the GET /metricsz Prometheus text exposition.
//
// The counters /statsz always reported (requests, cache, decompositions,
// cancellations, ...) are now *obs.Counter / *obs.Gauge created here out of
// the registry; subsystems that keep their own atomic storage (the batch
// scheduler, the per-session memos, the sharded cache) are bridged with
// func-backed series that read those atomics at scrape time. Nothing is
// counted twice and nothing is sampled: a scrape and a /statsz snapshot
// differ only by the requests that landed between them.

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"dualspace/internal/cluster"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/faultinject"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
	"dualspace/internal/verdictlog"
)

// endpointNames are the label values of the per-endpoint series, in
// exposition order. Unknown paths fall under "other" (latency only — they
// never reach a handler counter).
var endpointNames = []string{
	"decide", "cluster", "batch", "mine", "transversals", "borders", "keys",
	"coteries", "healthz", "readyz", "statsz", "metricsz", "other",
}

// workEndpoints are the endpoints that claim worker slots and run compute —
// the ones admission control can shed and deadline budgets can expire, so
// the only ones carrying shed/timeout series.
var workEndpoints = []string{
	"decide", "cluster", "batch", "mine", "transversals", "borders", "keys",
	"coteries",
}

// endpointOf maps a request path to its endpoint label.
func endpointOf(path string) string {
	switch path {
	case "/v1/decide":
		return "decide"
	case "/v1/cluster/verdict":
		return "cluster"
	case "/v1/batch":
		return "batch"
	case "/v1/mine":
		return "mine"
	case "/v1/transversals":
		return "transversals"
	case "/v1/borders":
		return "borders"
	case "/v1/keys":
		return "keys"
	case "/v1/coteries":
		return "coteries"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/statsz":
		return "statsz"
	case "/metricsz":
		return "metricsz"
	}
	return "other"
}

// endpointObs is one endpoint's request counter and latency histogram.
type endpointObs struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// serverObs bundles the Server's registry and the series not owned by a
// named Server field.
type serverObs struct {
	reg       *obs.Registry
	endpoints map[string]*endpointObs
	// sheds / timeouts are the per-endpoint admission-shed and
	// budget-timeout counters, keyed by workEndpoints labels.
	sheds    map[string]*obs.Counter
	timeouts map[string]*obs.Counter
	decide   *obs.DecideMetrics
	logger   *slog.Logger
}

// initObs builds the registry and every series for s. Called from New after
// the pool, cache and scheduler exist; the func-backed bridges capture s.
func (s *Server) initObs(logger *slog.Logger) {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:       reg,
		endpoints: make(map[string]*endpointObs, len(endpointNames)),
		sheds:     make(map[string]*obs.Counter, len(workEndpoints)),
		timeouts:  make(map[string]*obs.Counter, len(workEndpoints)),
		logger:    logger,
	}
	s.obs = o

	reg.Gauge("dualspace_build_info",
		"Build metadata; the value is always 1.",
		obs.L("revision", obs.GitRevision()), obs.L("go_version", runtime.Version())).Set(1)
	reg.GaugeFunc("dualspace_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	for _, ep := range endpointNames {
		o.endpoints[ep] = &endpointObs{
			requests: reg.Counter("dualspace_http_requests_total",
				"HTTP requests dispatched, by endpoint.", obs.L("endpoint", ep)),
			latency: reg.Histogram("dualspace_http_request_duration_seconds",
				"HTTP request latency, by endpoint.", obs.L("endpoint", ep)),
		}
	}
	s.reqDecide = o.endpoints["decide"].requests
	s.reqCluster = o.endpoints["cluster"].requests
	s.reqBatch = o.endpoints["batch"].requests
	s.reqMine = o.endpoints["mine"].requests
	s.reqTransversals = o.endpoints["transversals"].requests
	s.reqBorders = o.endpoints["borders"].requests
	s.reqKeys = o.endpoints["keys"].requests
	s.reqCoteries = o.endpoints["coteries"].requests
	s.reqHealth = o.endpoints["healthz"].requests
	s.reqReady = o.endpoints["readyz"].requests
	s.reqStats = o.endpoints["statsz"].requests
	s.reqMetrics = o.endpoints["metricsz"].requests

	for _, ep := range workEndpoints {
		o.sheds[ep] = reg.Counter("dualspace_sheds_total",
			"Requests shed by admission control (503 + Retry-After), by endpoint.",
			obs.L("endpoint", ep))
		o.timeouts[ep] = reg.Counter("dualspace_timeouts_total",
			"Requests whose compute budget expired (504), by endpoint.",
			obs.L("endpoint", ep))
	}
	s.panics = reg.Counter("dualspace_panics_total",
		"Panics contained at a serving boundary instead of killing the process.")
	reg.GaugeFunc("dualspace_queue_waiters",
		"Requests currently parked in the admission queue.",
		func() float64 { return float64(s.queueWaiters.Load()) })
	reg.Gauge("dualspace_queue_depth_limit",
		"Admission-queue capacity; waiters beyond it are shed.").
		Set(int64(s.cfg.QueueDepth))
	reg.GaugeFunc("dualspace_draining",
		"1 once graceful drain has begun (/readyz answers 503).",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dualspace_pool_free_sessions",
		"Worker-pool sessions currently checked in.",
		func() float64 { return float64(s.pool.Free()) })
	reg.CounterFunc("dualspace_sessions_replaced_total",
		"Poisoned sessions the pool replaced after a contained panic.",
		func() float64 { return float64(s.pool.Replaced()) })
	for _, p := range faultinject.Points() {
		reg.CounterFunc("dualspace_faults_injected_total",
			"Faults fired by the fault-injection harness, by point (0 unless armed).",
			func() float64 { return float64(faultinject.Fired(p)) },
			obs.L("point", p.String()))
	}

	s.inFlight = reg.Gauge("dualspace_in_flight_requests",
		"Requests currently being served.")
	s.cacheHits = reg.Counter("dualspace_cache_hits_total",
		"/v1/decide verdict-cache hits.")
	s.cacheMisses = reg.Counter("dualspace_cache_misses_total",
		"/v1/decide verdict-cache misses.")
	s.decompositions = reg.Counter("dualspace_decompositions_total",
		"Decision decompositions actually run.")
	s.coalesced = reg.Counter("dualspace_coalesced_total",
		"/v1/decide requests served by another request's in-flight computation.")
	s.cancelled = reg.Counter("dualspace_cancelled_total",
		"Requests abandoned by their client before completion.")
	s.badRequests = reg.Counter("dualspace_bad_requests_total",
		"Requests rejected with an error response.")
	s.streamedSets = reg.Counter("dualspace_streamed_results_total",
		"Transversals streamed by /v1/transversals.")
	s.minedElements = reg.Counter("dualspace_mined_elements_total",
		"Border elements streamed by /v1/mine.")

	for _, name := range engine.Names() {
		s.engStats[name] = &engineCounters{
			hits: reg.Counter("dualspace_engine_cache_hits_total",
				"Verdict-cache hits, by requested engine.", obs.L("engine", name)),
			decisions: reg.Counter("dualspace_decisions_total",
				"Decisions run, by resolved engine.", obs.L("engine", name)),
		}
	}
	o.decide = obs.NewDecideMetrics(reg, engine.Names())

	reg.GaugeFunc("dualspace_cache_entries",
		"Verdicts currently cached.",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("dualspace_cache_capacity",
		"Verdict-cache capacity in entries.",
		func() float64 { return float64(s.cache.Capacity()) })

	batchCounter := func(name, help string, read func() int64) {
		reg.CounterFunc("dualspace_batch_"+name, help,
			func() float64 { return float64(read()) })
	}
	batchCounter("batches_total", "Batch streams drained.",
		func() int64 { return s.scheduler.Stats().Batches })
	batchCounter("items_total", "Batch rows consumed.",
		func() int64 { return s.scheduler.Stats().Items })
	batchCounter("unique_total", "Distinct canonical instances across batches.",
		func() int64 { return s.scheduler.Stats().Unique })
	batchCounter("deduped_total", "Batch rows coalesced onto an in-batch duplicate.",
		func() int64 { return s.scheduler.Stats().Deduped })
	batchCounter("cache_hits_total", "Batch rows answered by the shared verdict cache.",
		func() int64 { return s.scheduler.Stats().CacheHits })
	batchCounter("decisions_total", "Batch rows decided by an engine run.",
		func() int64 { return s.scheduler.Stats().Decisions })
	batchCounter("errors_total", "Batch rows answered with an error.",
		func() int64 { return s.scheduler.Stats().Errors })
	batchCounter("panics_total", "Panics contained in the batch drain step.",
		func() int64 { return s.scheduler.Stats().Panics })
	reg.GaugeFunc("dualspace_batch_active", "Batch streams currently draining.",
		func() float64 { return float64(s.scheduler.Stats().Active) })

	// Work-stealing scheduler counters (process-wide: the search objects are
	// pooled across sessions, so per-server attribution is meaningless).
	stealCounter := func(name, help string, read func() int64) {
		reg.CounterFunc("dualspace_walk_"+name, help,
			func() float64 { return float64(read()) })
	}
	stealCounter("spawns_total", "Subtree frames published to work-stealing deques.",
		func() int64 { s, _, _ := core.ParallelSearchTotals(); return s })
	stealCounter("steals_total", "Subtree frames stolen from another worker's deque.",
		func() int64 { _, s, _ := core.ParallelSearchTotals(); return s })
	stealCounter("idle_parks_total", "Parallel-search workers parked waiting for work.",
		func() int64 { _, _, p := core.ParallelSearchTotals(); return p })

	// Cluster + verdict-log series. The scalar counters always exist (they
	// are just zero when the features are off, and /statsz reads them
	// unconditionally); the per-peer and log bridges are created only when
	// the feature is configured — their label sets depend on it.
	s.peerFilled = reg.Counter("dualspace_cluster_peer_filled_total",
		"Requests answered by a peer replica's cached verdict.")
	s.peerInvalid = reg.Counter("dualspace_cluster_invalid_verdicts_total",
		"Peer fill responses rejected by validation; nonzero is an alarm.")
	s.clusterServeHits = reg.Counter("dualspace_cluster_serve_cache_hits_total",
		"/v1/cluster/verdict fills served from the local cache.")
	s.clusterServeComputes = reg.Counter("dualspace_cluster_serve_computes_total",
		"/v1/cluster/verdict fills computed on local workers.")
	s.vlogDropped = reg.Counter("dualspace_verdictlog_dropped_total",
		"Verdicts dropped by the non-blocking log-append path.")
	if c := s.cfg.Cluster; c != nil {
		reg.Gauge("dualspace_cluster_peers",
			"Remote ring members configured.").Set(int64(len(c.PeerAddrs())))
		for _, addr := range c.PeerAddrs() {
			peerCounter := func(name, help string, read func(cluster.PeerStats) int64) {
				reg.CounterFunc("dualspace_cluster_peer_"+name, help,
					func() float64 { st, _ := c.Peer(addr); return float64(read(st)) },
					obs.L("peer", addr))
			}
			peerCounter("fills_total", "Fill attempts dispatched, by peer.",
				func(st cluster.PeerStats) int64 { return st.Fills })
			peerCounter("hits_total", "Fills answered with a verdict, by peer.",
				func(st cluster.PeerStats) int64 { return st.Hits })
			peerCounter("misses_total", "Fills answered without a verdict (healthy peer), by peer.",
				func(st cluster.PeerStats) int64 { return st.Misses })
			peerCounter("errors_total", "Fill transport errors and 5xx, by peer.",
				func(st cluster.PeerStats) int64 { return st.Errors })
			peerCounter("skips_total", "Fills suppressed by breaker or fan-out bound, by peer.",
				func(st cluster.PeerStats) int64 { return st.Skips })
			reg.GaugeFunc("dualspace_cluster_peer_breaker_open",
				"1 while the peer's circuit breaker is open.",
				func() float64 {
					if st, _ := c.Peer(addr); st.BreakerOpen {
						return 1
					}
					return 0
				}, obs.L("peer", addr))
		}
	}
	if s.cfg.VerdictLog != nil {
		vl := s.cfg.VerdictLog
		reg.GaugeFunc("dualspace_verdictlog_replayed_to_cache",
			"Log records warmed into the verdict cache at startup.",
			func() float64 { return float64(s.logReplayed.Load()) })
		vlogCounter := func(name, help string, read func(verdictlog.Stats) int64) {
			reg.CounterFunc("dualspace_verdictlog_"+name, help,
				func() float64 { return float64(read(vl.Stats())) })
		}
		vlogCounter("appended_total", "Verdict records appended to the log.",
			func(st verdictlog.Stats) int64 { return st.Appended })
		vlogCounter("skipped_dup_total", "Appends skipped because the key was already logged.",
			func(st verdictlog.Stats) int64 { return st.SkippedDup })
		vlogCounter("append_errors_total", "Failed log appends (the log stays usable).",
			func(st verdictlog.Stats) int64 { return st.AppendErrors })
		vlogCounter("compactions_total", "Log compactions completed.",
			func(st verdictlog.Stats) int64 { return st.Compactions })
		reg.GaugeFunc("dualspace_verdictlog_live_records",
			"Deduplicated records the log would replay.",
			func() float64 { return float64(vl.Stats().LiveRecords) })
		reg.GaugeFunc("dualspace_verdictlog_segments",
			"Segment files on disk (including the active one).",
			func() float64 { return float64(vl.Stats().Segments) })
		reg.GaugeFunc("dualspace_verdictlog_bytes",
			"Bytes on disk across segments.",
			func() float64 { return float64(vl.Stats().Bytes) })
		reg.GaugeFunc("dualspace_verdictlog_truncated_bytes",
			"Bytes dropped at replay as corrupt.",
			func() float64 { return float64(vl.Stats().TruncatedBytes) })
	}

	memoCounter := func(name, help string, read func() int64) {
		reg.CounterFunc("dualspace_memo_"+name, help,
			func() float64 { return float64(read()) })
	}
	memoCounter("hits_total", "Subinstance-memo subtree skips across worker sessions.",
		func() int64 { return s.pool.MemoStats().Hits })
	memoCounter("misses_total", "Subinstance-memo lookups that found nothing.",
		func() int64 { return s.pool.MemoStats().Misses })
	memoCounter("inserts_total", "Subinstance-memo entries recorded.",
		func() int64 { return s.pool.MemoStats().Inserts })
	memoCounter("evictions_total", "Subinstance-memo entries evicted.",
		func() int64 { return s.pool.MemoStats().Evictions })
	reg.GaugeFunc("dualspace_memo_entries", "Subinstance-memo entries resident.",
		func() float64 { return float64(s.pool.MemoStats().Entries) })
}

// handleMetrics renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reqMetrics.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

// accessInfo is the per-request record the handlers annotate and the
// access log renders. The middleware injects a fresh one into every
// request context; accessFrom hands handlers invoked without the
// middleware (direct tests) a discard record, so annotation sites need no
// nil checks.
type accessInfo struct {
	engine  string // resolved engine name
	verdict string // "dual" / "nondual" once decided
	reason  string // core.Reason string of the verdict
	outcome string // cache_hit | coalesced | computed | error | cancelled | timeout | shed | panic
	fg, fh  string // canonical fingerprint prefixes of the inputs
}

type accessInfoKey struct{}

func accessFrom(ctx context.Context) *accessInfo {
	if ai, ok := ctx.Value(accessInfoKey{}).(*accessInfo); ok {
		return ai
	}
	return &accessInfo{}
}

// note annotates the record with a decided verdict.
func (ai *accessInfo) note(outcome string, dual bool, reason string) {
	ai.outcome = outcome
	if dual {
		ai.verdict = "dual"
	} else {
		ai.verdict = "nondual"
	}
	ai.reason = reason
}

// fpPrefix is the fingerprint's log form: enough hex to correlate requests
// against cache keys without 64-character lines.
func fpPrefix(fp hypergraph.Fingerprint) string {
	return fp.String()[:12]
}

// statusWriter captures the response status and byte count for the access
// log and latency series. Unwrap keeps http.NewResponseController working
// through the wrapper (the streaming endpoints need Flush and write
// deadlines).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// observeRequest is the ServeHTTP middleware tail: endpoint latency, and
// one structured access-log record when logging is on.
func (s *Server) observeRequest(r *http.Request, ep string, sw *statusWriter, ai *accessInfo, d time.Duration) {
	if eo := s.obs.endpoints[ep]; eo != nil {
		eo.latency.Observe(d)
	}
	lg := s.obs.logger
	if lg == nil {
		return
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("endpoint", ep),
		slog.Int("status", status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("latency", d),
	)
	if ai.engine != "" {
		attrs = append(attrs, slog.String("engine", ai.engine))
	}
	if ai.outcome != "" {
		attrs = append(attrs, slog.String("outcome", ai.outcome))
	}
	if ai.verdict != "" {
		attrs = append(attrs, slog.String("verdict", ai.verdict))
	}
	if ai.reason != "" {
		attrs = append(attrs, slog.String("reason", ai.reason))
	}
	if ai.fg != "" {
		attrs = append(attrs, slog.String("fg", ai.fg), slog.String("fh", ai.fh))
	}
	lg.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}
