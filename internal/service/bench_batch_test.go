package service

// Benchmark of the /v1/batch row path over a real socket with a
// dedup-heavy 400-row body (12 distinct texts): the per-item cost behind
// the dualload throughput numbers in BENCH_PR5.json.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func batchBody(rows int) string {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for i := 0; i < rows; i++ {
		tag := fmt.Sprintf("t%d_", i%3)
		k := 2 + i%4
		var g, h strings.Builder
		for j := 0; j < k; j++ {
			fmt.Fprintf(&g, "%sv%da %sv%db\n", tag, j, tag, j)
		}
		for mask := 0; mask < 1<<k; mask++ {
			for j := 0; j < k; j++ {
				side := "a"
				if mask&(1<<j) != 0 {
					side = "b"
				}
				fmt.Fprintf(&h, "%sv%d%s ", tag, j, side)
			}
			h.WriteString("\n")
		}
		enc.Encode(map[string]string{"g": g.String(), "h": h.String()})
	}
	return b.String()
}

func BenchmarkBatchHandler(b *testing.B) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := batchBody(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if n == 0 {
			b.Fatal("empty response")
		}
	}
}
