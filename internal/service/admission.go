package service

// Admission control, deadline budgets, panic containment, and graceful
// drain — the resilience layer.
//
// The decision procedures behind every endpoint are quasi-polynomial in the
// worst case, so a single adversarial instance can pin a worker slot for a
// long time. Three mechanisms keep the server healthy anyway:
//
//   - Deadline budgets (budgetCtx): each endpoint derives a compute context
//     bounded by its configured timeout (Config.DecideTimeout and friends),
//     overridable per request with ?timeout_ms= up to Config.MaxTimeout.
//     The budget context's cancellation cause is errBudget, so the failure
//     paths can tell "the server's budget expired" (504, reason "timeout")
//     from "the client hung up" (silent) even though both surface as a
//     context error from the engine.
//
//   - Admission control (acquire): requests that miss the worker-pool fast
//     path park in a bounded queue — at most Config.QueueDepth waiters, for
//     at most Config.QueueWait each. Excess and expired waiters are shed
//     with 503 + Retry-After instead of queueing unboundedly; cache hits
//     and coalesced singleflight followers never claim a slot, so the
//     degraded mode keeps serving the hot working set at full speed.
//
//   - Panic containment (decideGuarded / containPanic / release): a panic
//     in the kernel is recovered at the session boundary, the session is
//     marked poisoned (the pool mints a replacement on Release, so capacity
//     self-heals), and the request gets a 500 with reason "panic" while the
//     process keeps serving. The ServeHTTP middleware holds the last-resort
//     boundary for panics outside any session.
//
// BeginDrain starts graceful shutdown: /readyz flips to 503 (load
// balancers stop routing), parked waiters fail fast with the shed
// taxonomy, new compute is refused, and in-flight work runs to completion
// under cmd/dualserved's drain grace before the listener closes.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/faultinject"
	"dualspace/internal/hypergraph"
)

// Sentinel failures of the resilience layer. The first three are shed
// classes (503 + Retry-After); errBudget is the cancellation cause
// installed by budgetCtx so context errors can be attributed to the
// server's own deadline (504) rather than the client's disconnect.
var (
	errQueueFull = errors.New("server overloaded: admission queue full")
	errQueueWait = errors.New("server overloaded: no worker slot within the queue-wait bound")
	errDraining  = errors.New("server draining")
	errBudget    = errors.New("compute budget exhausted")
)

// Wire reasons of the JSON error taxonomy (docs/API.md).
const (
	reasonBadRequest    = "bad_request"
	reasonLimit         = "limit"
	reasonUnprocessable = "unprocessable"
	reasonTimeout       = "timeout"
	reasonShed          = "shed"
	reasonPanic         = "panic"
)

// budgetCtx derives the endpoint's compute-budget context: d (the
// endpoint's configured timeout; 0 = none), overridden by a ?timeout_ms=
// query clamped to Config.MaxTimeout. The cancel func must always be
// called; the error reports a malformed ?timeout_ms= (a 400).
func (s *Server) budgetCtx(r *http.Request, d time.Duration) (context.Context, context.CancelFunc, error) {
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 1 {
			return nil, nil, fmt.Errorf("bad timeout_ms %q", q)
		}
		d = time.Duration(ms) * time.Millisecond
		if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeoutCause(r.Context(), d, errBudget)
	return ctx, cancel, nil
}

// acquire claims a worker-pool slot under admission control. The fast path
// never queues; a miss parks in the bounded wait queue until a slot frees,
// the bounded wait expires, the request's (budget) context fires, or drain
// begins. The returned error is one of the shed sentinels, errBudget (via
// context cause), or the plain context error of a vanished client —
// failAcquire maps each onto the wire. release must be called iff err is
// nil.
func (s *Server) acquire(ctx context.Context) (*engine.Session, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if sess, ok := s.pool.TryAcquire(); ok {
		return sess, nil
	}
	if s.queueWaiters.Add(1) > int64(s.cfg.QueueDepth) {
		s.queueWaiters.Add(-1)
		return nil, errQueueFull
	}
	defer s.queueWaiters.Add(-1)
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case sess := <-s.pool.Chan():
		return sess, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case <-t.C:
		return nil, errQueueWait
	case <-s.drainCh:
		return nil, errDraining
	}
}

// release returns a worker slot. It doubles as the session-safety net for
// panics unwinding through a holder (every call site is deferred): recover
// stops the unwind long enough to poison the session — scratch a panic
// tore through must not serve again — then re-panics for the boundary
// above (containPanic or the middleware) to classify.
func (s *Server) release(sess *engine.Session) {
	if v := recover(); v != nil {
		sess.MarkPoisoned()
		s.pool.Release(sess)
		panic(v)
	}
	s.pool.Release(sess)
}

// decideGuarded runs one decision on a held session behind the panic
// boundary and the decide fault point. A contained panic poisons the
// session and comes back as *engine.PanicError.
func (s *Server) decideGuarded(ctx context.Context, sess *engine.Session, eng engine.Engine, g, h *hypergraph.Hypergraph) (res *core.Result, err error) {
	defer s.containPanic(sess, &res, &err)
	if err := faultinject.Fire(ctx, faultinject.PointDecide); err != nil {
		return nil, err
	}
	return sess.DecideWith(ctx, eng, g, h)
}

// containPanic is the session-boundary recover: poison, count, log, and
// convert the panic into an error result.
func (s *Server) containPanic(sess *engine.Session, res **core.Result, err *error) {
	v := recover()
	if v == nil {
		return
	}
	sess.MarkPoisoned()
	s.panics.Add(1)
	stack := debug.Stack()
	s.logPanic("panic contained at session boundary", v, stack)
	*res = nil
	*err = &engine.PanicError{Val: v, Stack: stack}
}

// onBatchPanic is the batch scheduler's Config.OnPanic bridge: the
// scheduler has already poisoned the session and built the PanicError;
// the server adds its process-wide counter and the stack record.
func (s *Server) onBatchPanic(v any, stack []byte) {
	s.panics.Add(1)
	s.logPanic("panic contained in batch drain", v, stack)
}

// logPanic emits the slog stack record. Panics are never silent: without a
// configured access logger they go to the default slog handler.
func (s *Server) logPanic(msg string, v any, stack []byte) {
	lg := s.obs.logger
	if lg == nil {
		lg = slog.Default()
	}
	lg.LogAttrs(context.Background(), slog.LevelError, msg,
		slog.Any("value", v), slog.String("stack", string(stack)))
}

// failAcquire maps an acquire failure onto the wire: sheds are 503 +
// Retry-After, an exhausted budget is 504, a vanished client gets nothing
// (there is no one to write to).
func (s *Server) failAcquire(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, errQueueFull) || errors.Is(err, errQueueWait) || errors.Is(err, errDraining):
		s.writeShed(w, r, err)
	case errors.Is(err, errBudget):
		s.writeTimeout(w, r, err)
	default:
		s.cancelled.Add(1)
		accessFrom(r.Context()).outcome = "cancelled"
	}
}

// failCompute maps a compute failure onto the wire: a contained panic is a
// 500 with reason "panic", an exhausted budget a 504 with reason
// "timeout", a vanished client silence, anything else the 422 of a
// semantic rejection. ctx is the budget context the computation ran under.
func (s *Server) failCompute(w http.ResponseWriter, r *http.Request, ctx context.Context, err error) {
	var pe *engine.PanicError
	switch {
	case errors.As(err, &pe):
		accessFrom(r.Context()).outcome = "panic"
		writeErrorReason(w, http.StatusInternalServerError, reasonPanic, err)
	case errors.Is(context.Cause(ctx), errBudget) && ctx.Err() != nil:
		s.writeTimeout(w, r, err)
	case r.Context().Err() != nil:
		s.cancelled.Add(1)
		accessFrom(r.Context()).outcome = "cancelled"
	default:
		accessFrom(r.Context()).outcome = "error"
		s.writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// writeShed renders the 503 + Retry-After shed response and counts it
// under the endpoint's shed series.
func (s *Server) writeShed(w http.ResponseWriter, r *http.Request, err error) {
	if c := s.obs.sheds[endpointOf(r.URL.Path)]; c != nil {
		c.Add(1)
	}
	accessFrom(r.Context()).outcome = "shed"
	w.Header().Set("Retry-After", s.retryAfter)
	writeErrorReason(w, http.StatusServiceUnavailable, reasonShed, err)
}

// writeTimeout renders the 504 budget-timeout response and counts it under
// the endpoint's timeout series.
func (s *Server) writeTimeout(w http.ResponseWriter, r *http.Request, err error) {
	if c := s.obs.timeouts[endpointOf(r.URL.Path)]; c != nil {
		c.Add(1)
	}
	accessFrom(r.Context()).outcome = "timeout"
	writeErrorReason(w, http.StatusGatewayTimeout, reasonTimeout, err)
}

// budgetExpired reports whether ctx failed because its compute budget ran
// out (as opposed to the client disconnecting).
func budgetExpired(ctx context.Context) bool {
	return ctx.Err() != nil && errors.Is(context.Cause(ctx), errBudget)
}

// BeginDrain flips the server into drain mode, once: /readyz answers 503
// (so load balancers stop routing), waiters parked in acquire fail fast
// with the shed taxonomy, new compute is refused, and the streaming
// endpoints end their streams with a clean shed terminal record at the
// next yield. Cache hits keep being served — the socket is still open and
// they cost no worker slot. Safe to call from any goroutine, any number
// of times.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Draining reports whether BeginDrain has run.
func (s *Server) Draining() bool { return s.draining.Load() }
