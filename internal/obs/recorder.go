package obs

// Stage-level decision tracing. A Recorder captures where one decision's
// time went — the coarse, disjoint stages of the serving pipeline — on a
// fixed array of nanosecond accumulators. It is designed for the kernel's
// zero-allocation contract (DESIGN.md §10):
//
//   - a nil *Recorder is the disabled state: every instrumentation site
//     guards with `if rec != nil` before touching the clock, so a disabled
//     recorder costs one predictable branch and no time.Now() calls;
//   - an enabled Recorder allocates nothing per decision: Add is one array
//     add, Reset re-zeroes the array in place. Long-lived holders
//     (engine.Session pins one per worker) reuse the same Recorder across
//     every decision they serve.
//
// The stages are disjoint wall-clock segments, so they sum to at most the
// decision's wall time: serialWalk's in-walk memo consults are accumulated
// under StageMemo and subtracted from StageWalk by the Decider
// (core/decider.go), and the serving layer measures parse / canonicalize /
// cache-lookup outside the engine call.

import "time"

// Stage identifies one segment of the decision pipeline.
type Stage uint8

const (
	// StageParse is request decoding plus hgio edge-text parsing.
	StageParse Stage = iota
	// StageCanon is canonicalization and fingerprinting of the pair.
	StageCanon
	// StageCacheLookup is the sharded verdict-cache probe.
	StageCacheLookup
	// StagePrecheck is the index-driven precondition check (simplicity,
	// cross-intersection, minimality).
	StagePrecheck
	// StageIndexSync is incidence-index (re)binding plus the scratch
	// syncTo at the walk root.
	StageIndexSync
	// StageWalk is the decomposition-tree DFS, net of memo consults.
	StageWalk
	// StageMemo is the cross-node subinstance-memo key encoding and
	// lookup time spent inside the walk.
	StageMemo
	// StageWalkSteals is the scratch re-synchronization time the parallel
	// search's workers spend adopting stolen subtree frames (a stolen frame
	// pays a full syncTo where an owner-reclaimed one descends by diffs).
	// Like StageMemo it is carved out of StageWalk; unlike the serial
	// stages it aggregates across workers, so on multi-core runs walk +
	// walk_steals can exceed the walk's wall clock.
	StageWalkSteals

	numStages
)

// NumStages is the number of traced stages.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	"parse", "canonicalize", "cache_lookup", "precheck", "index_sync", "walk", "memo", "walk_steals",
}

// String returns the stage's snake_case name (the metric label value and
// the trace-block field prefix).
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames lists every stage name in Stage order.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// StageTimings is one decision's per-stage nanosecond totals.
type StageTimings [NumStages]int64

// Total sums the stages.
func (t *StageTimings) Total() time.Duration {
	var sum int64
	for _, ns := range t {
		sum += ns
	}
	return time.Duration(sum)
}

// Recorder accumulates one decision's stage timings. All methods are
// nil-safe (a nil Recorder records nothing); a non-nil Recorder is NOT safe
// for concurrent use — it is owned by whoever owns the Session/Decider it
// is attached to, exactly like the pinned scratch.
type Recorder struct {
	t StageTimings
}

// Reset zeroes the accumulators (call before each decision whose timings
// will be read out).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.t = StageTimings{}
}

// Add accumulates d under stage s.
func (r *Recorder) Add(s Stage, d time.Duration) {
	if r == nil {
		return
	}
	r.t[s] += int64(d)
}

// Get returns the accumulated nanoseconds for stage s (0 on a nil
// Recorder).
func (r *Recorder) Get(s Stage) int64 {
	if r == nil {
		return 0
	}
	return r.t[s]
}

// Timings copies the current accumulators out.
func (r *Recorder) Timings() StageTimings {
	if r == nil {
		return StageTimings{}
	}
	return r.t
}

// engineDecideObs is one engine's aggregate decision observables.
type engineDecideObs struct {
	wall   *Histogram
	stages [NumStages]*Histogram
}

// DecideMetrics aggregates decisions into per-engine histograms: one
// wall-time histogram per engine plus one duration histogram per (engine,
// stage). Every series is preregistered in NewDecideMetrics, so Observe —
// called from the serving hot paths, including the batch scheduler's
// //dual:allocfree drain step — is map reads and atomic adds only.
type DecideMetrics struct {
	byEngine map[string]*engineDecideObs
}

// NewDecideMetrics registers the decision histograms for every engine name
// under reg and returns the preresolved update handle.
func NewDecideMetrics(reg *Registry, engines []string) *DecideMetrics {
	m := &DecideMetrics{byEngine: make(map[string]*engineDecideObs, len(engines))}
	for _, name := range engines {
		eo := &engineDecideObs{
			wall: reg.Histogram("dualspace_decide_duration_seconds",
				"Engine-side wall time of one decision (cache hits excluded).",
				L("engine", name)),
		}
		for s := Stage(0); s < numStages; s++ {
			eo.stages[s] = reg.Histogram("dualspace_decide_stage_duration_seconds",
				"Per-stage decision time; stages are disjoint and sum to at most the decision wall time.",
				L("engine", name), L("stage", s.String()))
		}
		m.byEngine[name] = eo
	}
	return m
}

// Observe records one completed decision: wall time under the engine's
// histogram plus every nonzero captured stage. rec may be nil (wall only);
// engines not preregistered are dropped. Allocation-free.
func (m *DecideMetrics) Observe(engine string, wall time.Duration, rec *Recorder) {
	eo := m.byEngine[engine]
	if eo == nil {
		return
	}
	eo.wall.Observe(wall)
	if rec == nil {
		return
	}
	for s := 0; s < NumStages; s++ {
		if ns := rec.t[s]; ns > 0 {
			eo.stages[s].Observe(time.Duration(ns))
		}
	}
}
