package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help", L("k", "v"))
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g := reg.Gauge("test_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Load())
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# HELP test_total help\n",
		"# TYPE test_total counter\n",
		`test_total{k="v"} 5` + "\n",
		"# TYPE test_gauge gauge\n",
		"test_gauge 5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "help", L("a", "b"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	reg.Counter("dup_total", "help", L("a", "b"))
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mixed", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("mixed", "help")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("esc_total", "line one\nline two \\ end", L("v", "a\"b\\c\nd"))
	c.Inc()
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, `# HELP esc_total line one\nline two \\ end`) {
		t.Errorf("HELP not escaped:\n%s", text)
	}
	if !strings.Contains(text, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", text)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "help", L("endpoint", "decide"))
	h.Observe(500 * time.Nanosecond) // below first bound: first bucket
	h.Observe(1 * time.Microsecond)  // exactly the first bound (le is <=)
	h.Observe(3 * time.Microsecond)
	h.Observe(10 * time.Second) // beyond the last bound: +Inf only
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, `lat_seconds_bucket{endpoint="decide",le="1e-06"} 2`) {
		t.Errorf("1µs bucket wrong:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_bucket{endpoint="decide",le="4e-06"} 3`) {
		t.Errorf("4µs bucket wrong:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_bucket{endpoint="decide",le="+Inf"} 4`) {
		t.Errorf("+Inf bucket wrong:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_count{endpoint="decide"} 4`) {
		t.Errorf("_count wrong:\n%s", text)
	}
	// Buckets must be cumulative and monotone.
	prev := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = v
	}
}

// fmtSscan extracts the trailing integer value of an exposition line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := parseInt(line[i+1:])
	*v = n
	return 1, err
}

func parseInt(s string) (int64, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, &parseErr{s}
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "not an integer: " + e.s }

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(DurationBuckets())
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// 100µs lands in the (64µs, 128µs] bucket; interpolation stays inside.
	if p50 < 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Fatalf("p50 = %v, want within (64µs, 128µs]", p50)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Reset()
	r.Add(StageWalk, time.Millisecond)
	if r.Get(StageWalk) != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if (r.Timings() != StageTimings{}) {
		t.Fatal("nil recorder timings non-zero")
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := &Recorder{}
	r.Add(StageWalk, 2*time.Millisecond)
	r.Add(StageWalk, time.Millisecond)
	r.Add(StageMemo, time.Microsecond)
	if got := r.Get(StageWalk); got != int64(3*time.Millisecond) {
		t.Fatalf("walk = %d", got)
	}
	tt := r.Timings()
	if tt.Total() != 3*time.Millisecond+time.Microsecond {
		t.Fatalf("total = %v", tt.Total())
	}
	r.Reset()
	tt = r.Timings()
	if tt.Total() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != NumStages {
		t.Fatalf("%d names for %d stages", len(names), NumStages)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("bad/duplicate stage name %q at %d", n, i)
		}
		seen[n] = true
		if Stage(i).String() != n {
			t.Fatalf("Stage(%d).String() = %q, want %q", i, Stage(i).String(), n)
		}
	}
}

// TestHotPathAllocFree pins the zero-allocation contract of the metric
// update paths the serving layers call per decision: counter adds,
// histogram observes, recorder accumulation, and a full
// DecideMetrics.Observe with a populated recorder.
func TestHotPathAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot_total", "help")
	h := reg.Histogram("hot_seconds", "help", L("engine", "core"))
	dm := NewDecideMetrics(reg, []string{"core"})
	rec := &Recorder{}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(123 * time.Microsecond)
		rec.Reset()
		rec.Add(StagePrecheck, 5*time.Microsecond)
		rec.Add(StageWalk, 100*time.Microsecond)
		dm.Observe("core", 150*time.Microsecond, rec)
	}); allocs != 0 {
		t.Errorf("hot-path metric updates allocate %.1f/op, want 0", allocs)
	}
}
