package obs

import "runtime/debug"

// GitRevision reports the VCS revision stamped into the binary by the Go
// toolchain ("unknown" outside a build with VCS info, "+dirty" appended for
// modified trees), truncated to 12 hex characters. Deployed binaries
// surface it on /healthz, /statsz and the dualspace_build_info metric;
// dualbench stamps it into the BENCH_*.json perf trajectory.
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
