// Package obs is the repo's stdlib-only observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket log-scale latency
// histograms with Prometheus text exposition (served by the service at
// GET /metricsz), plus the stage-timing Recorder threaded through
// core.Decider / engine.Session / batch.Scheduler (recorder.go).
//
// The design constraint is the same as the kernel's: the serving hot paths
// update metrics without allocating. Every series is therefore
// preregistered at startup — Counter/Gauge/Histogram return pinned pointers
// whose update methods are single atomic operations — and the exposition
// pays all rendering cost at scrape time. Func-backed series (CounterFunc /
// GaugeFunc) let subsystems that already maintain their own atomic counters
// (the batch scheduler, the session pool's memo stats, the sharded cache)
// appear in /metricsz without a second copy of the truth: /statsz and
// /metricsz read the same storage and can never disagree.
//
// docs/OBSERVABILITY.md is the operator manual and metric catalogue.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" metric label.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters that should appear in the exposition must come from
// Registry.Counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the Prometheus
// counter contract; the type does not police it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DurationBuckets returns the shared histogram bucket upper bounds in
// seconds: a log scale of powers of two from 1µs to ~0.5s (20 buckets), a
// span that covers everything from a warm cache hit to a pathological
// decomposition; observations beyond the last bound land in the implicit
// +Inf bucket. dualload reuses the same bounds for its client-side
// latency buckets so client and server distributions line up.
func DurationBuckets() []float64 {
	b := make([]float64, 20)
	for i := range b {
		b[i] = 1e-6 * float64(uint64(1)<<i)
	}
	return b
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic counts
// plus an atomic nanosecond sum, rendered cumulatively (with +Inf, _sum and
// _count) in the Prometheus exposition. Observe is a bounded binary search
// plus two atomic adds — no allocation, no locks.
type Histogram struct {
	bounds []float64 // ascending upper bounds in seconds; +Inf is implicit
	counts []atomic.Int64
	sumNs  atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := float64(d) / float64(time.Second)
	// First bucket whose upper bound is >= s (the le contract).
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile estimates the q-quantile (0..1) from the bucket counts by linear
// interpolation within the located bucket, the histogram_quantile
// convention. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo * 2
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			return time.Duration((lo + (hi-lo)*frac) * float64(time.Second))
		}
		cum += n
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
}

// series is one labeled time series within a family. Exactly one of the
// value sources is set.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

// family is one metric name: HELP, TYPE and its series.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds the metric families and renders them in the Prometheus
// text exposition format. Registration (typically all at startup) takes the
// registry lock; updating a registered metric never does.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(s.labels)
	for _, prev := range f.series {
		if labelKey(prev.labels) == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, renderLabels(s.labels, "")))
		}
	}
	f.series = append(f.series, s)
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{labels: labels, counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", &series{labels: labels, gauge: g})
	return g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for subsystems that already keep their own
// atomic counters (one storage, every surface).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", &series{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", &series{labels: labels, fn: fn})
}

// Histogram registers and returns a histogram series over the shared
// DurationBuckets log scale.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := newHistogram(DurationBuckets())
	r.register(name, help, "histogram", &series{labels: labels, hist: h})
	return h
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders {k="v",...}; extra, when non-empty, is a pre-escaped
// trailing label (the histogram le). Returns "" for no labels at all.
func renderLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name, series in
// registration order. Values are read at render time, so one scrape is one
// consistent pass over the live atomics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s)
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, ""), s.counter.Load())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, ""), s.gauge.Load())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels, ""), formatFloat(s.fn()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// ending in le="+Inf", then _sum (seconds) and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(+1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			renderLabels(s.labels, `le="`+formatFloat(le)+`"`), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(s.labels, ""),
		formatFloat(float64(h.sumNs.Load())/float64(time.Second)))
	// _count is the +Inf cumulative value, not a separate atomic read, so
	// the le="+Inf" bucket and _count can never disagree within one scrape
	// even while observations race the render.
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(s.labels, ""), cum)
}
