package hypergraph

// Index-driven forms of the precondition probes. Each mirrors its scan-based
// counterpart exactly — same violation, same tie-breaking — but walks
// occurrence rows instead of the full edge list, turning the O(|G|·|H|·n/w)
// pairwise scans of the DUAL precheck into O(Σ|e|·m/w) row unions. The
// callers (internal/core's precheck stage) provide the index of the OTHER
// side and a scratch set over its OccUniverse, so a pinned core.Decider can
// run them allocation-free.

import (
	"fmt"

	"dualspace/internal/bitset"
)

// CrossIntersectingIdx is CrossIntersecting with g's incidence index: for
// each edge e of h it unions the occurrence rows of e's vertices — the set
// of g-edges e meets — and reports the first g-edge missing from the union.
// scratch must be over gIdx.OccUniverse() and is clobbered.
func (h *Hypergraph) CrossIntersectingIdx(g *Hypergraph, gIdx *Index, scratch bitset.Set) (ok bool, hIdx, gEdge int) {
	gM := len(g.edges)
	for i, e := range h.edges {
		scratch.Clear()
		covered := 0
		e.ForEach(func(v int) bool {
			// Fused union+popcount: stop accumulating rows as soon as every
			// g-edge is met (the common case on instances that pass).
			covered = gIdx.occ[v].UnionIntoCount(scratch, scratch) //dual:allow(bitsetalias: word-parallel accumulation into scratch)
			return covered < gM
		})
		if covered < gM {
			return false, i, scratch.MinAbsent()
		}
	}
	return true, -1, -1
}

// AllEdgesMinimalTransversalsOfIdx is AllEdgesMinimalTransversalsOf with g's
// incidence index: the transversal check reuses the occurrence-row union and
// the criticality check for a vertex v scans only the g-edges containing v.
// scratch must be over gIdx.OccUniverse() and is clobbered.
func (h *Hypergraph) AllEdgesMinimalTransversalsOfIdx(g *Hypergraph, gIdx *Index, scratch bitset.Set) *MinimalTransversalViolation {
	gM := len(g.edges)
	for i, e := range h.edges {
		scratch.Clear()
		covered := 0
		e.ForEach(func(v int) bool {
			// Fused union+popcount with coverage early exit, as in
			// CrossIntersectingIdx.
			covered = gIdx.occ[v].UnionIntoCount(scratch, scratch) //dual:allow(bitsetalias: word-parallel accumulation into scratch)
			return covered < gM
		})
		if covered < gM {
			return &MinimalTransversalViolation{EdgeIndex: i, MissedEdgeIndex: scratch.MinAbsent(), RedundantVertex: -1}
		}
		redundant := -1
		e.ForEach(func(v int) bool {
			critical := false
			gIdx.occ[v].ForEach(func(j int) bool {
				if g.edges[j].IntersectionCount(e) == 1 {
					critical = true
					return false
				}
				return true
			})
			if !critical {
				redundant = v
				return false
			}
			return true
		})
		if redundant >= 0 {
			return &MinimalTransversalViolation{EdgeIndex: i, MissedEdgeIndex: -1, RedundantVertex: redundant}
		}
	}
	return nil
}

// ValidateSimpleIdx is ValidateSimple on the index-driven probe, with the
// same error shape. scratch must be over ix.OccUniverse() and is clobbered.
func (h *Hypergraph) ValidateSimpleIdx(ix *Index, scratch bitset.Set) error {
	if v := h.SimpleViolationIdx(ix, scratch); v != nil {
		return fmt.Errorf("%w: edge %d %v ⊆ edge %d %v",
			ErrNotSimple, v[0], h.edges[v[0]], v[1], h.edges[v[1]])
	}
	return nil
}

// SimpleViolationIdx is the index-driven simplicity probe: the candidate
// supersets of an edge e are the intersection of the occurrence rows of e's
// vertices. It returns indices (i, j) with edge i ⊆ edge j and i ≠ j — the
// same first violation simpleViolation reports — or nil. scratch must be
// over ix.OccUniverse() (ix indexes h itself) and is clobbered.
func (h *Hypergraph) SimpleViolationIdx(ix *Index, scratch bitset.Set) []int {
	if len(h.edges) < 2 {
		return nil
	}
	for i, e := range h.edges {
		first := true
		e.ForEach(func(v int) bool {
			if first {
				scratch.CopyFrom(ix.occ[v])
				first = false
				return true
			}
			// Fused intersect+emptiness: stop narrowing the superset
			// candidates as soon as none remain (the common case).
			return scratch.IntersectIntoAny(ix.occ[v], scratch) //dual:allow(bitsetalias: word-parallel running intersection in scratch)
		})
		if first {
			// The empty edge is contained in every other edge.
			j := 0
			if i == 0 {
				j = 1
			}
			return []int{i, j}
		}
		found := -1
		scratch.ForEach(func(j int) bool {
			if j != i {
				found = j
				return false
			}
			return true
		})
		if found >= 0 {
			return []int{i, found}
		}
	}
	return nil
}
