package hypergraph

// This file implements the structural-restriction recognizers named in
// Section 6 of Gottlob (PODS 2013): DUAL is known to be tractable for
// hypergraphs of bounded degeneracy and, in particular, for α-acyclic
// hypergraphs (= hypertree width 1), while bounded hypertree width ≥ 2
// does not help. The recognizers below identify those islands of
// tractability; they are the entry points for the future-work directions
// the paper sketches.

import "dualspace/internal/bitset"

// IsAcyclic reports whether the hypergraph is α-acyclic, decided by the
// classical GYO (Graham / Yu–Özsoyoğlu) reduction: repeatedly delete
// vertices that occur in exactly one edge and edges contained in other
// edges (empty edges included); the hypergraph is α-acyclic iff everything
// is eventually deleted. The empty hypergraph and every single-edge
// hypergraph are α-acyclic; the triangle {ab, bc, ca} is the smallest
// cyclic example.
func (h *Hypergraph) IsAcyclic() bool {
	edges := make([]bitset.Set, 0, len(h.edges))
	for _, e := range h.edges {
		edges = append(edges, e.Clone())
	}
	for {
		changed := false

		// Rule 1: a vertex occurring in exactly one edge is removed.
		deg := make([]int, h.n)
		for _, e := range edges {
			e.ForEach(func(v int) bool { deg[v]++; return true })
		}
		for _, e := range edges {
			var isolated []int
			e.ForEach(func(v int) bool {
				if deg[v] == 1 {
					isolated = append(isolated, v)
				}
				return true
			})
			for _, v := range isolated {
				e.Remove(v)
				changed = true
			}
		}

		// Rule 2: an edge contained in another edge is removed (duplicates
		// keep one copy; empty edges are contained in any other edge, and a
		// lone empty edge is removed outright).
		var kept []bitset.Set
		for i, e := range edges {
			if e.IsEmpty() {
				changed = true
				continue
			}
			covered := false
			for j, f := range edges {
				if i == j {
					continue
				}
				if e.SubsetOf(f) && (!e.Equal(f) || j < i) {
					covered = true
					break
				}
			}
			if covered {
				changed = true
				continue
			}
			kept = append(kept, e)
		}
		edges = kept

		if len(edges) == 0 {
			return true
		}
		if !changed {
			return false
		}
	}
}

// Degeneracy returns the degeneracy of the hypergraph under min-degree
// vertex elimination: repeatedly delete a vertex of minimum positive
// degree together with every edge containing it; the degeneracy is the
// largest minimum degree encountered. For ordinary graphs (2-uniform
// hypergraphs) this is the standard graph degeneracy (trees: 1, cycles: 2,
// K_{k+1}: k). Zero for hypergraphs with no nonempty edges.
func (h *Hypergraph) Degeneracy() int {
	edges := make([]bitset.Set, 0, len(h.edges))
	for _, e := range h.edges {
		if !e.IsEmpty() {
			edges = append(edges, e.Clone())
		}
	}
	alive := bitset.New(h.n)
	for _, e := range edges {
		alive = alive.Union(e)
	}
	degeneracy := 0
	for len(edges) > 0 {
		// Find the minimum-positive-degree vertex.
		deg := make([]int, h.n)
		for _, e := range edges {
			e.ForEach(func(v int) bool { deg[v]++; return true })
		}
		minV, minD := -1, 0
		alive.ForEach(func(v int) bool {
			if deg[v] == 0 {
				return true
			}
			if minV == -1 || deg[v] < minD {
				minV, minD = v, deg[v]
			}
			return true
		})
		if minV == -1 {
			break
		}
		if minD > degeneracy {
			degeneracy = minD
		}
		alive.Remove(minV)
		var kept []bitset.Set
		for _, e := range edges {
			if !e.Contains(minV) {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	return degeneracy
}
