package hypergraph

// This file implements the structural-restriction recognizers named in
// Section 6 of Gottlob (PODS 2013): DUAL is known to be tractable for
// hypergraphs of bounded degeneracy and, in particular, for α-acyclic
// hypergraphs (= hypertree width 1), while bounded hypertree width ≥ 2
// does not help. The recognizers below identify those islands of
// tractability; they are the entry points for the future-work directions
// the paper sketches, and the feature extractors internal/engine's
// Portfolio dispatches on — which is why both run on the incidence index
// (occurrence rows + maintained degrees) instead of re-scanning the edge
// list every elimination round.

import "dualspace/internal/bitset"

// IsAcyclic reports whether the hypergraph is α-acyclic, decided by the
// classical GYO (Graham / Yu–Özsoyoğlu) reduction: repeatedly delete
// vertices that occur in exactly one edge and edges contained in other
// edges (empty edges included); the hypergraph is α-acyclic iff everything
// is eventually deleted. The empty hypergraph and every single-edge
// hypergraph are α-acyclic; the triangle {ab, bc, ca} is the smallest
// cyclic example.
//
// GYO is confluent, so the worklist evaluation below (degree-1 vertices and
// shrunk/initial edges, driven by occurrence rows) reaches the same fixpoint
// as round-based re-scanning, in near-linear total work: a vertex deletion
// costs its occurrence row, and an edge is containment-checked only when it
// shrinks.
func (h *Hypergraph) IsAcyclic() bool {
	m := len(h.edges)
	if m == 0 {
		return true
	}
	ix := h.AttachedIndex()
	if ix == nil {
		ix = NewIndex(h)
	}
	edges := make([]bitset.Set, m) // mutable working copies
	for j, e := range h.edges {
		edges[j] = e.Clone()
	}
	alive := bitset.New(ix.OccUniverse())
	deg := make([]int, h.n)
	for j := 0; j < m; j++ {
		alive.Add(j)
	}
	for v := 0; v < h.n; v++ {
		deg[v] = ix.Occ(v).Len()
	}
	aliveCount := m

	var vQueue, eQueue []int
	for v := 0; v < h.n; v++ {
		if deg[v] == 1 {
			vQueue = append(vQueue, v)
		}
	}
	for j := 0; j < m; j++ {
		eQueue = append(eQueue, j)
	}

	removeEdge := func(j int) {
		alive.Remove(j)
		aliveCount--
		edges[j].ForEach(func(u int) bool {
			deg[u]--
			if deg[u] == 1 {
				vQueue = append(vQueue, u)
			}
			return true
		})
	}

	for len(vQueue) > 0 || len(eQueue) > 0 {
		if len(vQueue) > 0 {
			v := vQueue[len(vQueue)-1]
			vQueue = vQueue[:len(vQueue)-1]
			if deg[v] != 1 {
				continue
			}
			// Rule 1: v occurs in exactly one alive edge; find it through
			// the (over-approximating) occurrence row and delete v from it.
			ix.Occ(v).ForEach(func(j int) bool {
				if !alive.Contains(j) || !edges[j].Contains(v) {
					return true
				}
				edges[j].Remove(v)
				deg[v] = 0
				eQueue = append(eQueue, j) // shrunk: recheck containment
				return false
			})
			continue
		}
		j := eQueue[len(eQueue)-1]
		eQueue = eQueue[:len(eQueue)-1]
		if !alive.Contains(j) {
			continue
		}
		e := edges[j]
		if e.IsEmpty() {
			removeEdge(j)
			continue
		}
		// Rule 2: is e contained in another alive edge? Candidates must
		// contain e's vertices, so any vertex's occurrence row bounds them.
		v0 := e.Min()
		covered := false
		ix.Occ(v0).ForEach(func(f int) bool {
			if f == j || !alive.Contains(f) {
				return true
			}
			if e.SubsetOf(edges[f]) && (!e.Equal(edges[f]) || f < j) {
				covered = true
				return false
			}
			return true
		})
		if covered {
			removeEdge(j)
		}
	}
	return aliveCount == 0
}

// Degeneracy returns the degeneracy of the hypergraph under min-degree
// vertex elimination: repeatedly delete a vertex of minimum positive
// degree together with every edge containing it; the degeneracy is the
// largest minimum degree encountered. For ordinary graphs (2-uniform
// hypergraphs) this is the standard graph degeneracy (trees: 1, cycles: 2,
// K_{k+1}: k). Zero for hypergraphs with no nonempty edges.
//
// Runs on the incidence index: degrees are maintained through occurrence
// rows as edges die, so the elimination costs O(Σ|e| + n²) instead of
// re-scanning every edge each round.
func (h *Hypergraph) Degeneracy() int {
	m := len(h.edges)
	if m == 0 {
		return 0
	}
	ix := h.AttachedIndex()
	if ix == nil {
		ix = NewIndex(h)
	}
	alive := bitset.New(ix.OccUniverse())
	deg := make([]int, h.n)
	for j := 0; j < m; j++ {
		if ix.Card(j) > 0 {
			alive.Add(j)
			h.edges[j].ForEach(func(v int) bool {
				deg[v]++
				return true
			})
		}
	}
	tmp := bitset.New(ix.OccUniverse())
	degeneracy := 0
	for {
		minV, minD := -1, 0
		for v := 0; v < h.n; v++ {
			if deg[v] > 0 && (minV == -1 || deg[v] < minD) {
				minV, minD = v, deg[v]
			}
		}
		if minV == -1 {
			return degeneracy
		}
		if minD > degeneracy {
			degeneracy = minD
		}
		// Kill minV: every alive edge containing it dies, decrementing its
		// vertices' degrees.
		ix.Occ(minV).IntersectInto(alive, tmp)
		tmp.ForEach(func(j int) bool {
			alive.Remove(j)
			h.edges[j].ForEach(func(u int) bool {
				deg[u]--
				return true
			})
			return true
		})
	}
}
