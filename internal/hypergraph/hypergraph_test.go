package hypergraph

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
)

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(3, [][]int{{0, 3}}); err == nil {
		t.Error("vertex out of range accepted")
	}
	if _, err := FromEdges(3, [][]int{{0, -1}}); err == nil {
		t.Error("negative vertex accepted")
	}
	h, err := FromEdges(3, [][]int{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 2 || h.N() != 3 {
		t.Errorf("M=%d N=%d", h.M(), h.N())
	}
}

func TestSimple(t *testing.T) {
	cases := []struct {
		edges  [][]int
		simple bool
	}{
		{[][]int{}, true},
		{[][]int{{0, 1}}, true},
		{[][]int{{0, 1}, {1, 2}}, true},
		{[][]int{{0, 1}, {0, 1, 2}}, false}, // containment
		{[][]int{{0, 1}, {0, 1}}, false},    // duplicate
		{[][]int{{}, {0}}, false},           // empty edge inside another
		{[][]int{{}}, true},                 // lone empty edge is simple
	}
	for i, c := range cases {
		h := MustFromEdges(3, c.edges)
		if got := h.IsSimple(); got != c.simple {
			t.Errorf("case %d: IsSimple = %v, want %v", i, got, c.simple)
		}
		if err := h.ValidateSimple(); (err == nil) != c.simple {
			t.Errorf("case %d: ValidateSimple = %v", i, err)
		}
	}
}

func TestMinimize(t *testing.T) {
	h := MustFromEdges(5, [][]int{{0, 1, 2}, {0, 1}, {3}, {0, 1}, {3, 4}})
	m := h.Minimize()
	want := MustFromEdges(5, [][]int{{0, 1}, {3}})
	if !m.EqualAsFamily(want) {
		t.Errorf("Minimize = %v, want %v", m, want)
	}
	if !m.IsSimple() {
		t.Error("Minimize result not simple")
	}
	// Minimizing a simple hypergraph is the identity (as a family).
	if !want.Minimize().EqualAsFamily(want) {
		t.Error("Minimize not idempotent")
	}
}

func TestTransversal(t *testing.T) {
	h := MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	mk := func(es ...int) bitset.Set { return bitset.FromSlice(4, es) }
	if !h.IsTransversal(mk(0, 2)) {
		t.Error("{0,2} should be transversal")
	}
	if h.IsTransversal(mk(0, 1)) {
		t.Error("{0,1} misses {2,3}")
	}
	if !h.IsMinimalTransversal(mk(0, 2)) {
		t.Error("{0,2} should be minimal")
	}
	if h.IsMinimalTransversal(mk(0, 1, 2)) {
		t.Error("{0,1,2} not minimal")
	}
	// Empty family: everything is a transversal, only ∅ minimal.
	empty := New(4)
	if !empty.IsTransversal(mk()) || !empty.IsMinimalTransversal(mk()) {
		t.Error("tr(∅) conventions broken")
	}
	if empty.IsMinimalTransversal(mk(0)) {
		t.Error("{0} should not be minimal for empty family")
	}
	// Family with empty edge: no transversal.
	bad := MustFromEdges(4, [][]int{{}})
	if bad.IsTransversal(mk(0, 1, 2, 3)) {
		t.Error("family with empty edge has a transversal")
	}
}

func TestNewTransversal(t *testing.T) {
	g := MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	hPartial := MustFromEdges(4, [][]int{{0, 2}})
	// {1,3} is a transversal of g containing no edge of hPartial.
	if !g.IsNewTransversal(bitset.FromSlice(4, []int{1, 3}), hPartial) {
		t.Error("{1,3} should be a new transversal")
	}
	// {0,2} contains an hPartial edge.
	if g.IsNewTransversal(bitset.FromSlice(4, []int{0, 2}), hPartial) {
		t.Error("{0,2} is not new")
	}
	// {0,1} is not a transversal at all.
	if g.IsNewTransversal(bitset.FromSlice(4, []int{0, 1}), hPartial) {
		t.Error("{0,1} is not a transversal")
	}
}

func TestMinimalizeTransversal(t *testing.T) {
	h := MustFromEdges(5, [][]int{{0, 1}, {2, 3}, {3, 4}})
	full := bitset.Full(5)
	m := h.MinimalizeTransversal(full)
	if !h.IsMinimalTransversal(m) {
		t.Errorf("minimalized %v not minimal", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinimalizeTransversal on non-transversal did not panic")
		}
	}()
	h.MinimalizeTransversal(bitset.New(5))
}

func TestCrossIntersecting(t *testing.T) {
	g := MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	h := MustFromEdges(4, [][]int{{0, 2}, {1, 3}})
	if ok, _, _ := g.CrossIntersecting(h); !ok {
		t.Error("dual pair should cross-intersect")
	}
	h2 := MustFromEdges(4, [][]int{{0, 2}, {2, 3}})
	ok, hi, gi := g.CrossIntersecting(h2)
	_ = gi
	if ok {
		t.Error("edge {0,1} vs {2,3} should fail")
	}
	if hi != 0 {
		t.Errorf("violating g edge index = %d", hi)
	}
}

func TestComplementEdges(t *testing.T) {
	h := MustFromEdges(3, [][]int{{0}, {1, 2}})
	c := h.ComplementEdges()
	want := MustFromEdges(3, [][]int{{1, 2}, {0}})
	if !c.EqualAsFamily(want) {
		t.Errorf("ComplementEdges = %v", c)
	}
	// Involution.
	if !c.ComplementEdges().EqualAsFamily(h) {
		t.Error("complement not involutive")
	}
}

func TestRestrictInduced(t *testing.T) {
	h := MustFromEdges(5, [][]int{{0, 1, 4}, {2, 3}, {1, 2}})
	s := bitset.FromSlice(5, []int{1, 2, 3})
	r := h.Restrict(s)
	if r.M() != 3 {
		t.Fatalf("Restrict dropped edges: %v", r)
	}
	if !r.Edge(0).Equal(bitset.FromSlice(5, []int{1})) {
		t.Errorf("Restrict edge 0 = %v", r.Edge(0))
	}
	ind := h.InducedSub(s)
	want := MustFromEdges(5, [][]int{{2, 3}, {1, 2}})
	if !ind.EqualAsFamily(want) {
		t.Errorf("InducedSub = %v", ind)
	}
}

func TestVerticesDegree(t *testing.T) {
	h := MustFromEdges(5, [][]int{{0, 1}, {1, 2}})
	if got := h.Vertices().Elems(); len(got) != 3 {
		t.Errorf("Vertices = %v", got)
	}
	if h.Degree(1) != 2 || h.Degree(4) != 0 {
		t.Error("Degree wrong")
	}
	if h.MaxEdgeSize() != 2 || h.MinEdgeSize() != 2 {
		t.Error("edge size stats wrong")
	}
	if New(3).MaxEdgeSize() != 0 || New(3).MinEdgeSize() != 0 {
		t.Error("empty family edge sizes")
	}
}

func TestEqualAsFamily(t *testing.T) {
	a := MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	b := MustFromEdges(4, [][]int{{2, 3}, {0, 1}})
	c := MustFromEdges(4, [][]int{{2, 3}, {0, 1}, {0, 1}}) // duplicate ignored
	d := MustFromEdges(4, [][]int{{0, 1}})
	if !a.EqualAsFamily(b) || !a.EqualAsFamily(c) {
		t.Error("order/multiplicity should not matter")
	}
	if a.EqualAsFamily(d) {
		t.Error("different families equal")
	}
	e := MustFromEdges(5, [][]int{{0, 1}, {2, 3}})
	if a.EqualAsFamily(e) {
		t.Error("different universes equal")
	}
}

func TestCanonical(t *testing.T) {
	a := MustFromEdges(4, [][]int{{2, 3}, {0, 1}, {2, 3}})
	c := a.Canonical()
	if c.M() != 2 {
		t.Fatalf("Canonical M = %d", c.M())
	}
	if !c.Edge(0).Contains(0) {
		t.Errorf("Canonical order wrong: %v", c)
	}
	if !c.EqualAsFamily(a) {
		t.Error("Canonical changed the family")
	}
}

func TestContainsEdgeSubsetOf(t *testing.T) {
	h := MustFromEdges(4, [][]int{{0, 1}, {2}})
	if !h.ContainsEdgeSubsetOf(bitset.FromSlice(4, []int{0, 1, 3})) {
		t.Error("should find {0,1}")
	}
	if h.ContainsEdgeSubsetOf(bitset.FromSlice(4, []int{0, 3})) {
		t.Error("no edge inside {0,3}")
	}
	if !h.ContainsEdge(bitset.FromSlice(4, []int{2})) {
		t.Error("ContainsEdge {2} failed")
	}
}

func TestAllEdgesMinimalTransversalsOf(t *testing.T) {
	g := MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	h := MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if v := h.AllEdgesMinimalTransversalsOf(g); v != nil {
		t.Errorf("tr(g) edges flagged: %v", v)
	}
	// {0,1} is not a transversal of g (misses {2,3}).
	bad := MustFromEdges(4, [][]int{{0, 1}})
	v := bad.AllEdgesMinimalTransversalsOf(g)
	if v == nil || v.MissedEdgeIndex != 1 {
		t.Errorf("missed-edge violation = %v", v)
	}
	// {0,2,3} is a transversal but not minimal (3 redundant... actually
	// {0,2} already hits both, so some vertex is redundant).
	nonmin := MustFromEdges(4, [][]int{{0, 2, 3}})
	v = nonmin.AllEdgesMinimalTransversalsOf(g)
	if v == nil || v.RedundantVertex < 0 {
		t.Errorf("non-minimal violation = %v", v)
	}
	if v.String() == "" {
		t.Error("violation String empty")
	}
}

func TestStringRendering(t *testing.T) {
	h := MustFromEdges(3, [][]int{{0, 1}})
	if got := h.String(); got != "{{0 1}}" {
		t.Errorf("String = %q", got)
	}
}

// randomSimple builds a random simple hypergraph for property tests.
func randomSimple(r *rand.Rand, n, m int) *Hypergraph {
	raw := New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				e.Add(v)
			}
		}
		if e.IsEmpty() {
			e.Add(r.Intn(n))
		}
		raw.AddEdge(e)
	}
	return raw.Minimize()
}

func TestPropertyMinimizeIsSimpleAndMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		h := randomSimple(r, 2+r.Intn(10), 1+r.Intn(12))
		if !h.IsSimple() {
			t.Fatalf("random minimized hypergraph not simple: %v", h)
		}
		// Every original edge contains some minimized edge: trivially true
		// here; instead check restrict/minimize interplay.
		s := bitset.New(h.N())
		for v := 0; v < h.N(); v++ {
			if r.Intn(2) == 0 {
				s.Add(v)
			}
		}
		rm := h.Restrict(s).Minimize()
		if !rm.IsSimple() {
			t.Fatal("restricted+minimized not simple")
		}
		for _, e := range rm.Edges() {
			if !e.SubsetOf(s) {
				t.Fatal("restricted edge outside s")
			}
		}
	}
}

func TestPropertyMinimalTransversalCriticality(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		h := randomSimple(r, 2+r.Intn(8), 1+r.Intn(8))
		if h.HasEmptyEdge() {
			continue
		}
		m := h.MinimalizeTransversal(bitset.Full(h.N()))
		if !h.IsMinimalTransversal(m) {
			t.Fatalf("greedy minimalization not minimal: %v of %v", m, h)
		}
		// Removing any vertex breaks transversality.
		for _, v := range m.Elems() {
			if h.IsTransversal(m.WithoutElem(v)) {
				t.Fatalf("minimal transversal %v has redundant vertex %d", m, v)
			}
		}
	}
}
