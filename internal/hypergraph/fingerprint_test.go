package hypergraph

import (
	"math/rand"
	"testing"
)

func TestFingerprintInvariantUnderOrderAndDuplicates(t *testing.T) {
	a := MustFromEdges(5, [][]int{{0, 1}, {2, 3}, {1, 4}})
	b := MustFromEdges(5, [][]int{{1, 4}, {0, 1}, {2, 3}})
	c := MustFromEdges(5, [][]int{{2, 3}, {0, 1}, {2, 3}, {1, 4}, {0, 1}})
	fa, fb, fc := a.Fingerprint(), b.Fingerprint(), c.Fingerprint()
	if fa != fb {
		t.Errorf("edge order changed the fingerprint: %s vs %s", fa, fb)
	}
	if fa != fc {
		t.Errorf("duplicate edges changed the fingerprint: %s vs %s", fa, fc)
	}
}

func TestFingerprintDistinguishesFamilies(t *testing.T) {
	pairs := [][2]*Hypergraph{
		{MustFromEdges(4, [][]int{{0, 1}}), MustFromEdges(4, [][]int{{0, 2}})},
		{MustFromEdges(4, [][]int{{0, 1}}), MustFromEdges(4, [][]int{{0, 1}, {2, 3}})},
		// Same family over different universes must differ.
		{MustFromEdges(4, [][]int{{0, 1}}), MustFromEdges(5, [][]int{{0, 1}})},
		// The constants ⊥ (no edges) and ⊤ ({∅}) must differ, including
		// over the empty universe where every edge key is zero-length.
		{New(0), MustFromEdges(0, [][]int{{}})},
		{New(3), MustFromEdges(3, [][]int{{}})},
		// An empty edge is not "no edge".
		{MustFromEdges(3, [][]int{{0}}), MustFromEdges(3, [][]int{{0}, {}})},
	}
	for i, p := range pairs {
		if p[0].Fingerprint() == p[1].Fingerprint() {
			t.Errorf("pair %d: distinct families fingerprint equal: %v vs %v", i, p[0], p[1])
		}
	}
}

func TestFingerprintMatchesFamilyEquality(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var graphs []*Hypergraph
	for i := 0; i < 40; i++ {
		n := 1 + r.Intn(70) // spans multiple bitset words
		h := New(n)
		m := r.Intn(6)
		for j := 0; j < m; j++ {
			var edge []int
			for v := 0; v < n; v++ {
				if r.Intn(3) == 0 {
					edge = append(edge, v)
				}
			}
			h.AddEdgeElems(edge...)
		}
		graphs = append(graphs, h)
	}
	for i, a := range graphs {
		for j, b := range graphs {
			same := a.EqualAsFamily(b)
			fpSame := a.Fingerprint() == b.Fingerprint()
			if same != fpSame {
				t.Fatalf("graphs %d,%d: EqualAsFamily=%v but fingerprint equal=%v", i, j, same, fpSame)
			}
		}
	}
}

func TestFingerprintHash64(t *testing.T) {
	a := MustFromEdges(5, [][]int{{0, 1}, {2, 3}})
	b := MustFromEdges(5, [][]int{{2, 3}, {0, 1}})
	if a.Fingerprint().Hash64() != b.Fingerprint().Hash64() {
		t.Error("Hash64 not a function of the fingerprint")
	}
	// Distinct fingerprints should (overwhelmingly) spread: over a few
	// dozen random families a 64-bit hash colliding would be astronomically
	// unlikely, so treat any collision as a bug in the byte extraction.
	r := rand.New(rand.NewSource(3))
	seen := map[uint64]string{}
	for i := 0; i < 50; i++ {
		n := 1 + r.Intn(40)
		h := New(n)
		for j := 0; j < 1+r.Intn(5); j++ {
			var edge []int
			for v := 0; v < n; v++ {
				if r.Intn(3) == 0 {
					edge = append(edge, v)
				}
			}
			h.AddEdgeElems(edge...)
		}
		f := h.Fingerprint()
		hv := f.Hash64()
		if prev, ok := seen[hv]; ok && prev != f.String() {
			t.Fatalf("Hash64 collision between distinct fingerprints %s and %s", prev, f)
		}
		seen[hv] = f.String()
	}
}

func TestFingerprintCanonicalAgrees(t *testing.T) {
	h := MustFromEdges(6, [][]int{{3, 4}, {0, 1}, {2, 5}, {0, 1}})
	if h.Fingerprint() != h.Canonical().Fingerprint() {
		t.Error("Canonical() changed the fingerprint")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	h := New(128)
	for i := 0; i < 64; i++ {
		var edge []int
		for v := 0; v < 128; v++ {
			if r.Intn(4) == 0 {
				edge = append(edge, v)
			}
		}
		h.AddEdgeElems(edge...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Fingerprint()
	}
}
