// Package hypergraph implements simple (Sperner) hypergraphs over a dense
// vertex universe [0, n), the shared object of every component of dualspace.
//
// A hypergraph is a finite family of finite vertex sets (hyperedges). It is
// "simple" (equivalently, an antichain or Sperner family) when no hyperedge
// contains another; simple hypergraphs correspond exactly to irredundant
// monotone DNFs (one disjunct per edge), which is the input format of the
// DUAL problem studied by Gottlob (PODS 2013).
//
// Conventions used throughout dualspace (documented in DESIGN.md §4):
//
//   - tr(∅)   = {∅}: with no edges, every set is vacuously a transversal and
//     the empty set is the unique minimal one.
//   - tr({∅}) = ∅: no set can meet the empty edge, so there are no
//     transversals at all.
//
// These mirror the DNF constants: the empty DNF is ⊥ whose dual is ⊤, and ⊤
// as an irredundant monotone DNF is the single empty disjunct.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dualspace/internal/bitset"
)

// Hypergraph is a finite family of hyperedges over the universe [0, n).
// The zero value is an empty hypergraph over an empty universe. Edge order
// is preserved: several algorithms (notably the Boros–Makino decomposition
// in internal/core) break ties by original edge index, so order is part of
// the value.
type Hypergraph struct {
	n     int
	edges []bitset.Set
	// idx, when attached via EnsureIndex, is the incidence index (index.go),
	// maintained through AddEdge/AddEdgeElems/RestrictInto/InducedSubInto.
	idx *Index
}

// New returns an empty hypergraph over the universe [0, n).
func New(n int) *Hypergraph {
	if n < 0 {
		panic("hypergraph: negative universe size")
	}
	return &Hypergraph{n: n}
}

// FromEdges builds a hypergraph over [0, n) from explicit vertex lists.
// It returns an error if any vertex is outside [0, n).
func FromEdges(n int, edges [][]int) (*Hypergraph, error) {
	h := New(n)
	for i, e := range edges {
		for _, v := range e {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("hypergraph: edge %d: vertex %d outside universe [0,%d)", i, v, n)
			}
		}
		h.edges = append(h.edges, bitset.FromSlice(n, e))
	}
	return h, nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// package-internal literals.
func MustFromEdges(n int, edges [][]int) *Hypergraph {
	h, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return h
}

// FromSets builds a hypergraph from already-constructed edge sets. Each set
// must be over the universe [0, n); FromSets panics otherwise (universe
// mixing is a programming error). The sets are cloned.
func FromSets(n int, sets []bitset.Set) *Hypergraph {
	h := New(n)
	for _, s := range sets {
		h.AddEdge(s)
	}
	return h
}

// N returns the universe size.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// Edge returns the i-th hyperedge. The returned set is shared with the
// hypergraph and must not be mutated by callers.
func (h *Hypergraph) Edge(i int) bitset.Set { return h.edges[i] }

// Edges returns the edge slice. The slice and its sets are shared with the
// hypergraph and must not be mutated by callers.
func (h *Hypergraph) Edges() []bitset.Set { return h.edges }

// AddEdge appends a copy of e as a new hyperedge. It panics if e is over a
// different universe.
func (h *Hypergraph) AddEdge(e bitset.Set) {
	if e.Universe() != h.n {
		panic(fmt.Sprintf("hypergraph: edge universe %d != %d", e.Universe(), h.n))
	}
	h.edges = append(h.edges, e.Clone())
	h.indexAddedEdge()
}

// AddEdgeElems appends a new hyperedge containing exactly the given vertices.
func (h *Hypergraph) AddEdgeElems(vs ...int) {
	h.edges = append(h.edges, bitset.FromSlice(h.n, vs))
	h.indexAddedEdge()
}

// indexAddedEdge extends an attached, previously in-sync index by the edge
// just appended; an out-of-sync index is left for EnsureIndex to rebuild.
func (h *Hypergraph) indexAddedEdge() {
	if h.idx != nil && h.idx.n == h.n && h.idx.m == len(h.edges)-1 {
		h.idx.addEdge(h.edges[len(h.edges)-1])
	}
}

// Clone returns a deep copy of h.
func (h *Hypergraph) Clone() *Hypergraph {
	c := New(h.n)
	c.edges = make([]bitset.Set, len(h.edges))
	for i, e := range h.edges {
		c.edges[i] = e.Clone()
	}
	return c
}

// HasEmptyEdge reports whether some hyperedge is the empty set.
func (h *Hypergraph) HasEmptyEdge() bool {
	for _, e := range h.edges {
		if e.IsEmpty() {
			return true
		}
	}
	return false
}

// IsSimple reports whether no hyperedge is contained in another (which also
// excludes duplicate edges). The empty family and the single-edge family are
// simple.
func (h *Hypergraph) IsSimple() bool {
	return h.simpleViolation() == nil
}

// simpleViolation returns indices (i, j) with edge i ⊆ edge j and i ≠ j, or
// nil if the hypergraph is simple.
func (h *Hypergraph) simpleViolation() []int {
	for i, ei := range h.edges {
		for j, ej := range h.edges {
			if i == j {
				continue
			}
			if ei.SubsetOf(ej) {
				return []int{i, j}
			}
		}
	}
	return nil
}

// ErrNotSimple is returned by ValidateSimple for hypergraphs containing a
// pair of comparable edges.
var ErrNotSimple = errors.New("hypergraph is not simple")

// ValidateSimple returns a descriptive error if h is not simple.
func (h *Hypergraph) ValidateSimple() error {
	if v := h.simpleViolation(); v != nil {
		return fmt.Errorf("%w: edge %d %v ⊆ edge %d %v",
			ErrNotSimple, v[0], h.edges[v[0]], v[1], h.edges[v[1]])
	}
	return nil
}

// Minimize returns the family of inclusion-minimal edges of h, with
// duplicates removed, preserving first-occurrence order. The result is
// always simple.
func (h *Hypergraph) Minimize() *Hypergraph {
	out := New(h.n)
	for i, ei := range h.edges {
		minimal := true
		for j, ej := range h.edges {
			if i == j {
				continue
			}
			if ej.ProperSubsetOf(ei) {
				minimal = false
				break
			}
			// Duplicate: keep only the first occurrence.
			if ej.Equal(ei) && j < i {
				minimal = false
				break
			}
		}
		if minimal {
			out.edges = append(out.edges, ei.Clone())
		}
	}
	return out
}

// ContainsEdge reports whether some hyperedge equals e.
func (h *Hypergraph) ContainsEdge(e bitset.Set) bool {
	for _, f := range h.edges {
		if f.Equal(e) {
			return true
		}
	}
	return false
}

// ContainsEdgeSubsetOf reports whether some hyperedge is a subset of s.
// Callers probing a large indexed family repeatedly should use
// Index.FirstEdgeSubsetOf with a pinned scratch instead (see
// internal/coterie's domination checks).
func (h *Hypergraph) ContainsEdgeSubsetOf(s bitset.Set) bool {
	for _, f := range h.edges {
		if f.SubsetOf(s) {
			return true
		}
	}
	return false
}

// IsTransversal reports whether t meets every hyperedge of h. For the empty
// family this is vacuously true; no set is a transversal of a family with an
// empty edge.
func (h *Hypergraph) IsTransversal(t bitset.Set) bool {
	for _, e := range h.edges {
		if !e.Intersects(t) {
			return false
		}
	}
	return true
}

// IsMinimalTransversal reports whether t is a transversal of h such that no
// proper subset of t is. Equivalently (for transversals): every v ∈ t is
// critical, i.e. some edge e has e ∩ t = {v}.
func (h *Hypergraph) IsMinimalTransversal(t bitset.Set) bool {
	if !h.IsTransversal(t) {
		return false
	}
	return t.ForEach(func(v int) bool {
		for _, e := range h.edges {
			if e.Contains(v) && e.IntersectionCount(t) == 1 {
				return true // v is critical for e; keep iterating
			}
		}
		return false // v not critical: t−{v} still a transversal
	})
}

// IsNewTransversal reports whether t is a "new transversal of h with respect
// to g" in the sense of Gottlob §1: a transversal of h containing no
// hyperedge of g as a subset. (It need not be minimal.)
func (h *Hypergraph) IsNewTransversal(t bitset.Set, g *Hypergraph) bool {
	return h.IsTransversal(t) && !g.ContainsEdgeSubsetOf(t)
}

// MinimalizeTransversal shrinks the transversal t of h to a minimal
// transversal by greedily deleting vertices in increasing order. It panics
// if t is not a transversal of h. This is the polynomial-time minimalization
// discussed after Corollary 4.1 of the paper (which notes it needs linear
// rather than polylog space).
func (h *Hypergraph) MinimalizeTransversal(t bitset.Set) bitset.Set {
	if !h.IsTransversal(t) {
		panic("hypergraph: MinimalizeTransversal on non-transversal")
	}
	r := t.Clone()
	for _, v := range t.Elems() {
		r.Remove(v)
		if !h.IsTransversal(r) {
			r.Add(v)
		}
	}
	return r
}

// CrossIntersecting reports whether every edge of h intersects every edge of
// g (a necessary condition for duality). On failure it returns the indices
// of the first non-intersecting pair (hIdx, gIdx).
func (h *Hypergraph) CrossIntersecting(g *Hypergraph) (ok bool, hIdx, gIdx int) {
	for i, e := range h.edges {
		for j, f := range g.edges {
			if !e.Intersects(f) {
				return false, i, j
			}
		}
	}
	return true, -1, -1
}

// ComplementEdges returns {V − e : e ∈ h}, the edge-wise complement used by
// the frequent-itemset equivalence IS− = tr((IS+)ᶜ) (Proposition 1.1).
func (h *Hypergraph) ComplementEdges() *Hypergraph {
	out := New(h.n)
	for _, e := range h.edges {
		out.edges = append(out.edges, e.Complement())
	}
	return out
}

// Restrict returns the projected family {e ∩ s : e ∈ h}, preserving edge
// order and keeping duplicates (callers that need a simple family must
// Minimize). This is the G_Sα construction of the Boros–Makino method.
func (h *Hypergraph) Restrict(s bitset.Set) *Hypergraph {
	out := New(h.n)
	h.RestrictInto(s, out)
	return out
}

// InducedSub returns the subfamily {e : e ∈ h, e ⊆ s}, preserving order.
// This is the H_Sα construction of the Boros–Makino method.
func (h *Hypergraph) InducedSub(s bitset.Set) *Hypergraph {
	out := New(h.n)
	h.InducedSubInto(s, out)
	return out
}

// RestrictInto is Restrict with a reusable destination: it overwrites dst
// with {e ∩ s : e ∈ h}, recycling dst's edge storage so that repeated
// projections (one per decomposition tree node) stop allocating once dst has
// warmed up. dst must be over the same universe and must not be h itself.
func (h *Hypergraph) RestrictInto(s bitset.Set, dst *Hypergraph) {
	h.checkDst(s, dst)
	dst.edges = dst.edges[:0]
	if dst.idx != nil {
		// Fused projection: count each intersection in the pass that
		// materializes it, so afterRestrict's row-copy regime reuses the
		// cardinalities instead of re-popcounting every destination edge.
		cards := dst.idx.restrictCards(len(h.edges))
		for j, e := range h.edges {
			cards[j] = int32(e.IntersectIntoCount(s, dst.scratchSlot()))
		}
		dst.idx.afterRestrict(h, s, dst)
		return
	}
	for _, e := range h.edges {
		e.IntersectInto(s, dst.scratchSlot())
	}
}

// InducedSubInto is InducedSub with a reusable destination, under the same
// contract as RestrictInto.
func (h *Hypergraph) InducedSubInto(s bitset.Set, dst *Hypergraph) {
	h.checkDst(s, dst)
	dst.edges = dst.edges[:0]
	for _, e := range h.edges {
		if e.SubsetOf(s) {
			dst.scratchSlot().CopyFrom(e)
		}
	}
	if dst.idx != nil {
		// The surviving subfamily is compacted (edge indices shift), so the
		// index is rebuilt from the destination; see index.go.
		dst.idx.Rebuild(dst)
	}
}

func (h *Hypergraph) checkDst(s bitset.Set, dst *Hypergraph) {
	if s.Universe() != h.n {
		panic(fmt.Sprintf("hypergraph: restriction universe %d != %d", s.Universe(), h.n))
	}
	if dst.n != h.n {
		panic(fmt.Sprintf("hypergraph: destination universe %d != %d", dst.n, h.n))
	}
	if dst == h {
		panic("hypergraph: destination aliases the source")
	}
}

// scratchSlot extends the edge list by one reusable set over h's universe
// and returns it (contents unspecified; callers overwrite).
func (h *Hypergraph) scratchSlot() bitset.Set {
	if len(h.edges) < cap(h.edges) {
		h.edges = h.edges[:len(h.edges)+1]
		if h.edges[len(h.edges)-1].Universe() != h.n {
			h.edges[len(h.edges)-1] = bitset.New(h.n)
		}
	} else {
		h.edges = append(h.edges, bitset.New(h.n))
	}
	return h.edges[len(h.edges)-1]
}

// Vertices returns the union of all hyperedges (the default vertex set V(H)
// of the paper when none is given explicitly).
func (h *Hypergraph) Vertices() bitset.Set {
	u := bitset.New(h.n)
	for _, e := range h.edges {
		u.UnionInto(e, u) //dual:allow(bitsetalias: word-parallel accumulation into u)
	}
	return u
}

// Degree returns the number of hyperedges containing v.
func (h *Hypergraph) Degree(v int) int {
	d := 0
	for _, e := range h.edges {
		if e.Contains(v) {
			d++
		}
	}
	return d
}

// MaxEdgeSize returns the size of the largest hyperedge (0 for an empty
// family).
func (h *Hypergraph) MaxEdgeSize() int {
	m := 0
	for _, e := range h.edges {
		if l := e.Len(); l > m {
			m = l
		}
	}
	return m
}

// MinEdgeSize returns the size of the smallest hyperedge, or 0 for an empty
// family. With an attached index this reads the cardinality bucket queue's
// minimum in O(1) amortized.
func (h *Hypergraph) MinEdgeSize() int {
	if len(h.edges) == 0 {
		return 0
	}
	if ix := h.AttachedIndex(); ix != nil {
		return ix.MinCard()
	}
	m := h.edges[0].Len()
	for _, e := range h.edges[1:] {
		if l := e.Len(); l < m {
			m = l
		}
	}
	return m
}

// EqualAsFamily reports whether h and g contain exactly the same set of
// edges, ignoring order and multiplicity. Families over different universes
// are never equal.
func (h *Hypergraph) EqualAsFamily(g *Hypergraph) bool {
	if h.n != g.n {
		return false
	}
	return h.familyKey() == g.familyKey()
}

// familyKey returns a canonical string identifying the set of edges.
func (h *Hypergraph) familyKey() string {
	keys := make([]string, 0, len(h.edges))
	seen := make(map[string]bool, len(h.edges))
	for _, e := range h.edges {
		k := e.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// Canonical returns a copy of h with duplicate edges removed and edges in
// the canonical bitset order. Useful for stable output.
func (h *Hypergraph) Canonical() *Hypergraph {
	seen := make(map[string]bool, len(h.edges))
	out := New(h.n)
	for _, e := range h.edges {
		k := e.Key()
		if !seen[k] {
			seen[k] = true
			out.edges = append(out.edges, e.Clone())
		}
	}
	bitset.SortSets(out.edges)
	return out
}

// String renders the hypergraph as "{{...}, {...}}" in edge order.
func (h *Hypergraph) String() string {
	parts := make([]string, len(h.edges))
	for i, e := range h.edges {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MinimalTransversalViolation describes why an edge of one hypergraph fails
// to be a minimal transversal of another; it backs the precondition checks
// of the DUAL decision (internal/core) and the identification problems
// (Propositions 1.1 and 1.2).
type MinimalTransversalViolation struct {
	// EdgeIndex is the index of the offending edge in the checked family.
	EdgeIndex int
	// MissedEdgeIndex is set (>= 0) when the edge is not a transversal: it
	// identifies an edge of the other hypergraph it fails to meet.
	MissedEdgeIndex int
	// RedundantVertex is set (>= 0) when the edge is a transversal but not
	// minimal: edge − {RedundantVertex} is still a transversal.
	RedundantVertex int
}

func (v *MinimalTransversalViolation) String() string {
	if v.MissedEdgeIndex >= 0 {
		return fmt.Sprintf("edge %d misses edge %d of the other hypergraph", v.EdgeIndex, v.MissedEdgeIndex)
	}
	return fmt.Sprintf("edge %d is a non-minimal transversal (vertex %d is redundant)", v.EdgeIndex, v.RedundantVertex)
}

// AllEdgesMinimalTransversalsOf checks the precondition h ⊆ tr(g): every
// edge of h must be a minimal transversal of g. It returns nil if the
// precondition holds, or a description of the first violation.
func (h *Hypergraph) AllEdgesMinimalTransversalsOf(g *Hypergraph) *MinimalTransversalViolation {
	for i, e := range h.edges {
		for j, f := range g.edges {
			if !e.Intersects(f) {
				return &MinimalTransversalViolation{EdgeIndex: i, MissedEdgeIndex: j, RedundantVertex: -1}
			}
		}
		// Transversal; check minimality via criticality of each vertex.
		redundant := -1
		e.ForEach(func(v int) bool {
			critical := false
			for _, f := range g.edges {
				if f.Contains(v) && f.IntersectionCount(e) == 1 {
					critical = true
					break
				}
			}
			if !critical {
				redundant = v
				return false
			}
			return true
		})
		// Special case: the empty edge is a transversal only of the empty
		// family, and is then minimal.
		if redundant >= 0 {
			return &MinimalTransversalViolation{EdgeIndex: i, MissedEdgeIndex: -1, RedundantVertex: redundant}
		}
	}
	return nil
}
