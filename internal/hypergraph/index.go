package hypergraph

// Incidence index. The decomposition kernel (internal/core), the transversal
// enumerator (internal/transversal) and the portfolio feature extractors
// (internal/engine) all ask the same questions of a hypergraph over and over:
// "which edges contain v?", "how large is edge j?", "which edge is
// smallest?". Answering them by scanning the edge list costs O(m·n/w) per
// question; an Index answers each from precomputed occurrence bitsets in
// O(deg) or O(1), and can be maintained incrementally instead of rebuilt:
//
//   - AddEdge on an indexed hypergraph extends the index in O(|e|) — the
//     regime of the oracle loops' growing partial families.
//   - RestrictInto derives the destination's index from the source's. When
//     the destination was previously restricted from the same source, only
//     the vertices entering or leaving the restriction set are touched
//     (O(changed)); otherwise the occurrence sets are copied per vertex,
//     which is still cheaper than re-scanning every edge. This serves
//     callers that materialize subinstance chains; the decomposition
//     kernel never materializes — its scratch maintains the equivalent
//     per-node state directly from the root indexes' occurrence rows
//     (internal/core/scratch.go).
//   - InducedSubInto rebuilds the destination index from the (typically
//     small) surviving subfamily.
//
// DESIGN.md §7 documents the layout and the maintenance contract.

import (
	"fmt"

	"dualspace/internal/bitset"
)

// Index is the incidence index of one hypergraph: per-vertex occurrence sets
// over the edge-index universe, per-edge cardinalities, and a bucket queue
// over cardinalities that yields the minimum-size edge in O(1) amortized.
//
// An Index is safe for concurrent READS (the parallel tree search shares one
// per side across workers) but not for concurrent mutation. The occurrence
// sets returned by Occ are views into index storage and must not be mutated.
type Index struct {
	n    int          // vertex universe of the indexed hypergraph
	m    int          // number of edges covered
	mCap int          // universe of the occurrence sets (≥ m, grow-only)
	occ  []bitset.Set // occ[v] ⊆ [0, m): edges containing v
	card []int        // card[j] = |edge j|; len == m

	// Bucket queue over cardinalities: buckets[c] lists the edges of size c,
	// pos[j] is j's position within its bucket, and minCard is a lazily
	// advanced lower bound on the smallest non-empty bucket.
	buckets [][]int32
	pos     []int32
	minCard int

	// gen is bumped on every mutation; derivation bookkeeping below uses it
	// to detect that a remembered source index has moved on.
	gen uint64

	// Derivation base for the O(changed) RestrictInto fast path: this index
	// currently describes src restricted to prevS.
	src        *Index
	srcGen     uint64
	prevS      bitset.Set
	prevSValid bool
	diff       []int // reusable vertex buffer for the diff walk

	// rcards is the scratch RestrictInto fills with the projected
	// cardinalities it computes while intersecting (fused kernel), so
	// afterRestrict's row-copy regime consumes them instead of
	// re-popcounting every destination edge.
	rcards []int32
}

// NewIndex builds a standalone index of h. Unlike EnsureIndex it does not
// attach the index to the hypergraph: callers that do not own h (and so must
// not mutate it, even monotonically) use this form.
func NewIndex(h *Hypergraph) *Index {
	ix := &Index{}
	ix.Rebuild(h)
	return ix
}

// EnsureIndex returns h's attached index, building or rebuilding it if it is
// missing or stale. The attached index is maintained through AddEdge,
// AddEdgeElems, RestrictInto and InducedSubInto; only callers that own h
// should attach one (attachment mutates h, and concurrent EnsureIndex calls
// on a shared hypergraph would race).
func (h *Hypergraph) EnsureIndex() *Index {
	if h.idx == nil {
		h.idx = &Index{}
	}
	if h.idx.n != h.n || h.idx.m != len(h.edges) {
		h.idx.Rebuild(h)
	}
	return h.idx
}

// AttachedIndex returns h's attached index if one exists and is in sync with
// the edge list, or nil. Read-only consumers (the decision kernel) use it to
// skip their own index build when the caller has already paid for one.
func (h *Hypergraph) AttachedIndex() *Index {
	if h.idx != nil && h.idx.n == h.n && h.idx.m == len(h.edges) {
		return h.idx
	}
	return nil
}

// N returns the vertex universe size of the indexed hypergraph.
func (ix *Index) N() int { return ix.n }

// M returns the number of edges the index covers.
func (ix *Index) M() int { return ix.m }

// OccUniverse returns the universe of the occurrence sets (≥ M). Scratch
// sets that combine with occurrence sets (unions of occ rows) must be
// allocated over this universe.
func (ix *Index) OccUniverse() int { return ix.mCap }

// Occ returns the set of edge indices containing v. The set is a read-only
// view into index storage; bits at positions ≥ M are always zero.
func (ix *Index) Occ(v int) bitset.Set { return ix.occ[v] }

// OccCountsInto stores |Occ(v) ∩ t| into out[v] for every vertex v of the
// indexed hypergraph — one fused popcount sweep over the occurrence slab
// (the rows share a single backing array, so the walk is sequential in
// memory). t must be over OccUniverse(); len(out) must be ≥ N().
//
//dual:allocfree
func (ix *Index) OccCountsInto(t bitset.Set, out []int32) {
	bitset.IntersectionCountsInto(ix.occ[:ix.n], t, out)
}

// restrictCards returns the m-sized scratch RestrictInto fills with the
// projected cardinalities it computes while intersecting.
func (ix *Index) restrictCards(m int) []int32 {
	if cap(ix.rcards) < m {
		ix.rcards = make([]int32, m)
	}
	ix.rcards = ix.rcards[:m]
	return ix.rcards
}

// Card returns |edge j|.
func (ix *Index) Card(j int) int { return ix.card[j] }

// MinCard returns the smallest edge cardinality, or 0 for an empty family.
func (ix *Index) MinCard() int {
	if ix.m == 0 {
		return 0
	}
	ix.advanceMin()
	return ix.minCard
}

// MinCardEdge returns the index of a smallest edge (the most recently
// bucketed one of minimum cardinality), or -1 for an empty family.
func (ix *Index) MinCardEdge() int {
	if ix.m == 0 {
		return -1
	}
	ix.advanceMin()
	b := ix.buckets[ix.minCard]
	return int(b[len(b)-1])
}

func (ix *Index) advanceMin() {
	for ix.minCard < len(ix.buckets) && len(ix.buckets[ix.minCard]) == 0 {
		ix.minCard++
	}
}

func (ix *Index) bucketAdd(j, c int) {
	ix.pos[j] = int32(len(ix.buckets[c]))
	ix.buckets[c] = append(ix.buckets[c], int32(j))
	if c < ix.minCard {
		ix.minCard = c
	}
}

func (ix *Index) bucketRemove(j, c int) {
	b := ix.buckets[c]
	p := ix.pos[j]
	last := b[len(b)-1]
	b[p] = last
	ix.pos[last] = p
	ix.buckets[c] = b[:len(b)-1]
}

// setCard moves edge j to cardinality c, maintaining the bucket queue.
func (ix *Index) setCard(j, c int) {
	if ix.card[j] == c {
		return
	}
	ix.bucketRemove(j, ix.card[j])
	ix.card[j] = c
	ix.bucketAdd(j, c)
}

// ensureShape sizes the index storage for a hypergraph with n vertices and m
// edges, reusing existing storage when it fits (the path that keeps a
// pinned core.Decider allocation-free across same-universe instances).
// Occurrence set contents are NOT preserved across a grow.
func (ix *Index) ensureShape(n, m int) {
	if ix.occ == nil || ix.n != n || m > ix.mCap {
		mCap := m
		if ix.n == n && 2*ix.mCap > mCap {
			mCap = 2 * ix.mCap // grow-only within a universe: amortize AddEdge
		}
		if mCap < 8 {
			mCap = 8
		}
		ix.occ = bitset.NewBatch(mCap, n)
		ix.mCap = mCap
		ix.n = n
	}
	if cap(ix.card) < m {
		ix.card = make([]int, 0, ix.mCap)
		ix.pos = make([]int32, ix.mCap)
	}
	if ix.buckets == nil || len(ix.buckets) != n+1 {
		ix.buckets = make([][]int32, n+1)
	}
}

// Rebuild re-indexes h from scratch into ix, reusing storage where shapes
// allow. It resets any derivation base.
func (ix *Index) Rebuild(h *Hypergraph) {
	m := len(h.edges)
	ix.ensureShape(h.n, m)
	for v := range ix.occ {
		ix.occ[v].Clear()
	}
	for c := range ix.buckets {
		ix.buckets[c] = ix.buckets[c][:0]
	}
	ix.card = ix.card[:0]
	ix.minCard = len(ix.buckets)
	ix.m = m
	for j, e := range h.edges {
		c := 0
		e.ForEach(func(v int) bool {
			ix.occ[v].Add(j)
			c++
			return true
		})
		ix.card = append(ix.card, c)
		ix.bucketAdd(j, c)
	}
	ix.invalidateDerivation()
}

func (ix *Index) invalidateDerivation() {
	ix.gen++
	ix.src = nil
	ix.prevSValid = false
}

// addEdge extends the index by one edge (the maintenance hook behind
// Hypergraph.AddEdge on an indexed hypergraph). Amortized O(|e|).
func (ix *Index) addEdge(e bitset.Set) {
	j := ix.m
	if j >= ix.mCap {
		ix.growEdgeSpace(2 * ix.mCap)
	}
	if cap(ix.card) <= j {
		card := make([]int, j, ix.mCap)
		copy(card, ix.card)
		ix.card = card
		pos := make([]int32, ix.mCap)
		copy(pos, ix.pos)
		ix.pos = pos
	}
	c := 0
	e.ForEach(func(v int) bool {
		ix.occ[v].Add(j)
		c++
		return true
	})
	ix.card = append(ix.card, c)
	ix.bucketAdd(j, c)
	ix.m++
	ix.invalidateDerivation()
}

// EnsureOccUniverse widens the occurrence-set universe to at least mCap,
// preserving contents; a no-op (and safe under concurrent readers) when the
// universe is already large enough. The serial decision scratch aligns the
// two sides' indexes to a common universe so that swapping the orientation
// of an instance never invalidates its edge-universe scratch sets.
func (ix *Index) EnsureOccUniverse(mCap int) {
	if mCap > ix.mCap {
		ix.growEdgeSpace(mCap)
	}
}

// growEdgeSpace widens the occurrence universe to mCap, preserving contents.
func (ix *Index) growEdgeSpace(mCap int) {
	if mCap <= ix.mCap {
		return
	}
	old := ix.occ
	ix.occ = bitset.NewBatch(mCap, ix.n)
	for v, o := range old {
		o.ForEach(func(j int) bool {
			ix.occ[v].Add(j)
			return true
		})
	}
	ix.mCap = mCap
	if cap(ix.pos) < mCap {
		pos := make([]int32, mCap)
		copy(pos, ix.pos)
		ix.pos = pos
	}
}

// afterRestrict maintains dst's attached index after dst was overwritten
// with {e ∩ s : e ∈ src} by RestrictInto. Three regimes, fastest first:
//
//  1. dst was previously restricted from the same (unchanged) source: only
//     the vertices in s XOR prevS are touched — O(changed).
//  2. the source carries a fresh index: dst's occurrence rows are copied
//     from the source's (occ_dst[v] = occ_src[v] for v ∈ s, ∅ otherwise),
//     establishing a derivation base for subsequent calls.
//  3. otherwise: full rebuild from dst's own edges.
func (ix *Index) afterRestrict(src *Hypergraph, s bitset.Set, dst *Hypergraph) {
	srcIdx := src.AttachedIndex()
	if srcIdx == ix {
		panic("hypergraph: index derivation from itself")
	}
	if srcIdx == nil {
		ix.Rebuild(dst)
		return
	}
	if ix.src == srcIdx && ix.srcGen == srcIdx.gen && ix.prevSValid &&
		ix.n == srcIdx.n && ix.m == srcIdx.m && ix.mCap == srcIdx.mCap {
		// Regime 1: diff against the previous restriction set.
		ix.diff = ix.prevS.AppendDiffElems(s, ix.diff[:0])
		for _, v := range ix.diff {
			// v left the restriction: every source edge containing it
			// shrinks by one, and its occurrence row empties.
			ix.occ[v].ForEach(func(j int) bool {
				ix.setCard(j, ix.card[j]-1)
				return true
			})
			ix.occ[v].Clear()
		}
		ix.diff = s.AppendDiffElems(ix.prevS, ix.diff[:0])
		for _, v := range ix.diff {
			// v entered the restriction: inherit the source's row.
			ix.occ[v].CopyFrom(srcIdx.occ[v])
			ix.occ[v].ForEach(func(j int) bool {
				ix.setCard(j, ix.card[j]+1)
				return true
			})
		}
		ix.prevS.CopyFrom(s)
		ix.gen++
		return
	}
	// Regime 2: copy rows from the source index.
	ix.ensureShape(srcIdx.n, srcIdx.m)
	if ix.mCap != srcIdx.mCap {
		// Row copies need matching occurrence universes; adopt the source's.
		ix.occ = bitset.NewBatch(srcIdx.mCap, srcIdx.n)
		ix.mCap = srcIdx.mCap
		if cap(ix.pos) < ix.mCap {
			ix.pos = make([]int32, ix.mCap)
		}
	}
	for v := 0; v < ix.n; v++ {
		if s.Contains(v) {
			ix.occ[v].CopyFrom(srcIdx.occ[v])
		} else {
			ix.occ[v].Clear()
		}
	}
	for c := range ix.buckets {
		ix.buckets[c] = ix.buckets[c][:0]
	}
	ix.card = ix.card[:0]
	ix.minCard = len(ix.buckets)
	ix.m = srcIdx.m
	for j, e := range dst.edges {
		// RestrictInto counted each projection as it intersected (fused
		// kernel); fall back to a popcount pass only if this index was not
		// filled by it.
		var c int
		if j < len(ix.rcards) {
			c = int(ix.rcards[j])
		} else {
			c = e.Len()
		}
		ix.card = append(ix.card, c)
		ix.bucketAdd(j, c)
	}
	ix.gen++
	ix.src = srcIdx
	ix.srcGen = srcIdx.gen
	if ix.prevS.Universe() != ix.n {
		ix.prevS = bitset.New(ix.n)
	}
	ix.prevS.CopyFrom(s)
	ix.prevSValid = true
}

// Validate cross-checks the index against h and returns a descriptive error
// on the first inconsistency; tests use it, production code relies on the
// maintenance hooks.
func (ix *Index) Validate(h *Hypergraph) error {
	if ix.n != h.n || ix.m != len(h.edges) {
		return fmt.Errorf("index shape (n=%d, m=%d) != hypergraph (n=%d, m=%d)", ix.n, ix.m, h.n, len(h.edges))
	}
	want := NewIndex(h)
	for v := 0; v < h.n; v++ {
		if !ix.occ[v].ForEach(func(j int) bool { return want.occ[v].Contains(j) }) ||
			!want.occ[v].ForEach(func(j int) bool { return ix.occ[v].Contains(j) }) {
			return fmt.Errorf("occ[%d] = %v, want %v", v, ix.occ[v], want.occ[v])
		}
	}
	for j := range h.edges {
		if ix.card[j] != want.card[j] {
			return fmt.Errorf("card[%d] = %d, want %d", j, ix.card[j], want.card[j])
		}
	}
	if ix.m > 0 && ix.MinCard() != want.MinCard() {
		return fmt.Errorf("MinCard = %d, want %d", ix.MinCard(), want.MinCard())
	}
	if ix.m > 0 {
		if j := ix.MinCardEdge(); j < 0 || ix.card[j] != ix.MinCard() {
			return fmt.Errorf("MinCardEdge = %d (card %v), want an edge of size %d", j, ix.card, ix.MinCard())
		}
	}
	return nil
}

// FirstEdgeSubsetOf returns the index of some edge contained in s, or -1.
// scratch must be a set over OccUniverse(); it is clobbered. The probe runs
// on the occurrence rows of the vertices OUTSIDE s — every edge meeting one
// of them is disqualified — so it costs O((n−|s|)·m/w) instead of the
// O(m·n/w) edge scan, the right trade for the large-|s| probes of
// IsNewTransversal-style checks.
func (ix *Index) FirstEdgeSubsetOf(s bitset.Set, scratch bitset.Set) int {
	scratch.Clear()
	full := true
	for v := 0; v < ix.n; v++ {
		if s.Contains(v) {
			continue
		}
		full = false
		ix.occ[v].UnionInto(scratch, scratch) //dual:allow(bitsetalias: word-parallel accumulation into scratch)
	}
	if full {
		if ix.m == 0 {
			return -1
		}
		return 0
	}
	j := scratch.MinAbsent()
	if j < 0 || j >= ix.m {
		return -1
	}
	return j
}
