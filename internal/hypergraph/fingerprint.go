package hypergraph

// Canonical fingerprints. A Fingerprint identifies a hypergraph as a
// *family*: two hypergraphs fingerprint equal iff they have the same
// universe size and the same set of edges, ignoring edge order and
// duplicate edges. This is the cache key of the duality service
// (internal/service): a verdict computed for the canonicalized instance
// (Canonical() on both sides) is valid for every request whose inputs
// canonicalize to the same pair of fingerprints.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// FingerprintSize is the byte length of a Fingerprint (sha256).
const FingerprintSize = 32

// Fingerprint is a canonical digest of a hypergraph.
type Fingerprint [FingerprintSize]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// AppendTo appends the raw fingerprint bytes to buf, for callers composing
// multi-part cache keys.
func (f Fingerprint) AppendTo(buf []byte) []byte { return append(buf, f[:]...) }

// Hash64 returns a 64-bit view of the fingerprint for hash-based placement
// (shard selection, hash maps). The fingerprint is a sha256 digest, so any
// fixed 8 bytes of it are already uniformly mixed; the first 8 are used.
func (f Fingerprint) Hash64() uint64 { return binary.LittleEndian.Uint64(f[:8]) }

// Fingerprint returns the canonical digest of h: sha256 over the universe
// size, the number of distinct edges, and the distinct edge keys
// (bitset.AppendKey encoding, fixed-length per universe) in sorted order.
// Edge order and duplicate edges do not affect the result; the universe
// size does, so families over different universes never collide by
// construction.
func (h *Hypergraph) Fingerprint() Fingerprint {
	keyLen := (h.n + 63) / 64 * 8
	buf := make([]byte, 0, keyLen*len(h.edges))
	offs := make([]int, 0, len(h.edges))
	for _, e := range h.edges {
		offs = append(offs, len(buf))
		buf = e.AppendKey(buf)
	}
	sort.Slice(offs, func(i, j int) bool {
		a, b := buf[offs[i]:offs[i]+keyLen], buf[offs[j]:offs[j]+keyLen]
		return string(a) < string(b)
	})
	// Count and hash distinct keys only, so duplicate edges are ignored.
	distinct := 0
	for i, o := range offs {
		if i > 0 && string(buf[o:o+keyLen]) == string(buf[offs[i-1]:offs[i-1]+keyLen]) {
			continue
		}
		distinct++
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(h.n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(distinct))
	d := sha256.New()
	d.Write(hdr[:])
	for i, o := range offs {
		if i > 0 && string(buf[o:o+keyLen]) == string(buf[offs[i-1]:offs[i-1]+keyLen]) {
			continue
		}
		d.Write(buf[o : o+keyLen])
	}
	var out Fingerprint
	d.Sum(out[:0])
	return out
}
