package hypergraph

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
)

func randomFamily(r *rand.Rand, n, m int) *Hypergraph {
	h := New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				e.Add(v)
			}
		}
		h.AddEdge(e)
	}
	return h
}

// TestIntoVariantsAgree checks RestrictInto/InducedSubInto against their
// allocating counterparts on random families, with a single reused
// destination across iterations (shrinking and growing edge counts).
func TestIntoVariantsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	dstR, dstI := New(40), New(40)
	for i := 0; i < 200; i++ {
		h := randomFamily(r, 40, 1+r.Intn(12))
		s := bitset.New(40)
		for v := 0; v < 40; v++ {
			if r.Intn(2) == 0 {
				s.Add(v)
			}
		}
		h.RestrictInto(s, dstR)
		want := h.Restrict(s)
		if dstR.M() != want.M() {
			t.Fatalf("RestrictInto edge count %d, want %d", dstR.M(), want.M())
		}
		for j := 0; j < want.M(); j++ {
			if !dstR.Edge(j).Equal(want.Edge(j)) {
				t.Fatalf("RestrictInto edge %d = %v, want %v", j, dstR.Edge(j), want.Edge(j))
			}
		}
		h.InducedSubInto(s, dstI)
		wantI := h.InducedSub(s)
		if dstI.M() != wantI.M() {
			t.Fatalf("InducedSubInto edge count %d, want %d", dstI.M(), wantI.M())
		}
		for j := 0; j < wantI.M(); j++ {
			if !dstI.Edge(j).Equal(wantI.Edge(j)) {
				t.Fatalf("InducedSubInto edge %d = %v, want %v", j, dstI.Edge(j), wantI.Edge(j))
			}
		}
	}
}

func TestIntoVariantsWarmAllocationFree(t *testing.T) {
	h := MustFromEdges(64, [][]int{{0, 1, 40}, {2, 3}, {1, 2, 63}, {5, 9, 11}})
	s := bitset.FromSlice(64, []int{1, 2, 3, 9, 40})
	dst := New(64)
	h.RestrictInto(s, dst) // warm up
	if allocs := testing.AllocsPerRun(50, func() { h.RestrictInto(s, dst) }); allocs != 0 {
		t.Errorf("warm RestrictInto allocates %.1f per run, want 0", allocs)
	}
	h.InducedSubInto(s, dst)
	if allocs := testing.AllocsPerRun(50, func() { h.InducedSubInto(s, dst) }); allocs != 0 {
		t.Errorf("warm InducedSubInto allocates %.1f per run, want 0", allocs)
	}
}

func TestIntoVariantsContractPanics(t *testing.T) {
	h := MustFromEdges(5, [][]int{{0, 1}})
	cases := map[string]func(){
		"set-universe": func() { h.RestrictInto(bitset.New(4), New(5)) },
		"dst-universe": func() { h.RestrictInto(bitset.New(5), New(6)) },
		"aliased-dst":  func() { h.InducedSubInto(bitset.New(5), h) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
