package hypergraph

import "testing"

func TestIsAcyclic(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		edges   [][]int
		acyclic bool
	}{
		{"empty", 3, [][]int{}, true},
		{"single edge", 3, [][]int{{0, 1, 2}}, true},
		{"lone empty edge", 3, [][]int{{}}, true},
		{"path of relations", 5, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, true},
		{"star join", 6, [][]int{{0, 1, 2}, {0, 3}, {0, 4, 5}}, true},
		{"triangle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, false},
		{"cycle-4", 4, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, false},
		{"triangle with covering edge", 3, [][]int{{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}}, true},
		{"berge-cyclic but alpha-acyclic", 4, [][]int{{0, 1, 2, 3}, {0, 1}, {2, 3}}, true},
		{"two disjoint edges", 4, [][]int{{0, 1}, {2, 3}}, true},
		{"cyclic core plus pendant", 5, [][]int{{0, 1}, {1, 2}, {0, 2}, {2, 3, 4}}, false},
	}
	for _, c := range cases {
		h := MustFromEdges(c.n, c.edges)
		if got := h.IsAcyclic(); got != c.acyclic {
			t.Errorf("%s: IsAcyclic = %v, want %v", c.name, got, c.acyclic)
		}
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][]int
		want  int
	}{
		{"empty", 4, [][]int{}, 0},
		{"single vertex edges", 3, [][]int{{0}, {1}}, 1},
		{"tree", 5, [][]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}}, 1},
		{"cycle-4", 4, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 2},
		{"K4", 4, [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 3},
		{"triangle hyperedges", 3, [][]int{{0, 1, 2}, {0, 1}, {1, 2}}, 2},
	}
	for _, c := range cases {
		h := MustFromEdges(c.n, c.edges)
		if got := h.Degeneracy(); got != c.want {
			t.Errorf("%s: Degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAcyclicInvariantUnderCover(t *testing.T) {
	// Adding an edge that covers the whole vertex set makes any hypergraph
	// α-acyclic (it becomes a star from that edge).
	h := MustFromEdges(4, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if h.IsAcyclic() {
		t.Fatal("triangle should be cyclic")
	}
	h2 := h.Clone()
	h2.AddEdgeElems(0, 1, 2, 3)
	if !h2.IsAcyclic() {
		t.Fatal("covered triangle should be α-acyclic")
	}
}
