package hypergraph

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
)

func randomSubset(r *rand.Rand, n int, p float64) bitset.Set {
	s := bitset.New(n)
	for v := 0; v < n; v++ {
		if r.Float64() < p {
			s.Add(v)
		}
	}
	return s
}

// TestIndexPropertyMaintained is the consistency property test for the
// maintained incidence index: after an arbitrary interleaving of AddEdge,
// RestrictInto and InducedSubInto operations over a little family of
// indexed hypergraphs — repeatedly restricting into the same destinations,
// so the O(changed) diff path, the row-copy derivation path and the full
// rebuild path all fire — every attached index must equal a from-scratch
// rebuild (occurrence rows, cardinalities, min-cardinality bucket).
func TestIndexPropertyMaintained(t *testing.T) {
	const n = 40
	r := rand.New(rand.NewSource(20260726))

	src := randomFamily(r, n, 8)
	src.EnsureIndex()
	srcNoIdx := randomFamily(r, n, 6) // derivation source WITHOUT an index
	dstA, dstB, dstC := New(n), New(n), New(n)
	dstA.EnsureIndex()
	dstB.EnsureIndex()
	dstC.EnsureIndex()
	all := []*Hypergraph{src, srcNoIdx, dstA, dstB, dstC}

	validate := func(step int, opName string) {
		t.Helper()
		for gi, g := range all {
			if ix := g.AttachedIndex(); ix != nil {
				if err := ix.Validate(g); err != nil {
					t.Fatalf("step %d (%s): graph %d: %v", step, opName, gi, err)
				}
			}
		}
	}

	for step := 0; step < 400; step++ {
		var opName string
		switch op := r.Intn(10); {
		case op < 3: // AddEdge on a random graph (maintained in O(|e|))
			opName = "AddEdge"
			g := all[r.Intn(len(all))]
			g.AddEdge(randomSubset(r, n, 0.3))
		case op < 6: // RestrictInto from the indexed source (diff/copy paths)
			opName = "RestrictInto/indexed-src"
			dst := []*Hypergraph{dstA, dstB}[r.Intn(2)]
			// Alternate small perturbations of the restriction set (the
			// regime-1 diff path) with fresh random sets (regime 2).
			src.RestrictInto(randomSubset(r, n, 0.2+0.6*r.Float64()), dst)
		case op < 7: // RestrictInto from the index-less source (full rebuild)
			opName = "RestrictInto/plain-src"
			srcNoIdx.RestrictInto(randomSubset(r, n, 0.5), dstB)
		case op < 9: // InducedSubInto (rebuild derivation)
			opName = "InducedSubInto"
			from := []*Hypergraph{src, srcNoIdx, dstA}[r.Intn(3)]
			if from != dstC {
				from.InducedSubInto(randomSubset(r, n, 0.6), dstC)
			}
		default: // chain: restrict a derived destination further
			opName = "RestrictInto/chained"
			if dstA.M() > 0 {
				dstA.RestrictInto(randomSubset(r, n, 0.7), dstC)
			}
		}
		validate(step, opName)
	}
}

// TestIndexRestrictDiffPath drives the regime-1 O(changed) path explicitly:
// the same destination repeatedly restricted from the same source with
// restriction sets differing in a few vertices.
func TestIndexRestrictDiffPath(t *testing.T) {
	const n = 64
	r := rand.New(rand.NewSource(7))
	src := randomFamily(r, n, 12)
	src.EnsureIndex()
	dst := New(n)
	dst.EnsureIndex()

	s := randomSubset(r, n, 0.5)
	src.RestrictInto(s, dst) // establishes the derivation base
	if err := dst.AttachedIndex().Validate(dst); err != nil {
		t.Fatalf("after base restriction: %v", err)
	}
	for i := 0; i < 100; i++ {
		// Flip a couple of vertices in the restriction set.
		for k := 0; k < 1+r.Intn(3); k++ {
			v := r.Intn(n)
			if s.Contains(v) {
				s.Remove(v)
			} else {
				s.Add(v)
			}
		}
		src.RestrictInto(s, dst)
		if err := dst.AttachedIndex().Validate(dst); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestIndexBasics covers the read API against a hand-built family.
func TestIndexBasics(t *testing.T) {
	h := MustFromEdges(6, [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {5}})
	ix := h.EnsureIndex()

	if ix.N() != 6 || ix.M() != 4 {
		t.Fatalf("shape (%d, %d), want (6, 4)", ix.N(), ix.M())
	}
	wantOcc := map[int][]int{0: {0}, 1: {0}, 2: {0, 1}, 3: {1, 2}, 4: {2}, 5: {2, 3}}
	for v, want := range wantOcc {
		got := ix.Occ(v).Elems()
		if len(got) != len(want) {
			t.Fatalf("Occ(%d) = %v, want %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Occ(%d) = %v, want %v", v, got, want)
			}
		}
	}
	for j, want := range []int{3, 2, 3, 1} {
		if ix.Card(j) != want {
			t.Fatalf("Card(%d) = %d, want %d", j, ix.Card(j), want)
		}
	}
	if ix.MinCard() != 1 {
		t.Fatalf("MinCard = %d, want 1", ix.MinCard())
	}
	if j := ix.MinCardEdge(); j != 3 {
		t.Fatalf("MinCardEdge = %d, want 3", j)
	}

	// AddEdge moves the minimum.
	h.AddEdgeElems()
	if ix.MinCard() != 0 || ix.MinCardEdge() != 4 {
		t.Fatalf("after empty AddEdge: MinCard %d, MinCardEdge %d", ix.MinCard(), ix.MinCardEdge())
	}
	if err := ix.Validate(h); err != nil {
		t.Fatal(err)
	}
}

// TestIndexFirstEdgeSubsetOf cross-checks the occurrence-row subset probe
// against the edge-scan ContainsEdgeSubsetOf on random inputs.
func TestIndexFirstEdgeSubsetOf(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		n := 5 + r.Intn(20)
		h := randomFamily(r, n, 1+r.Intn(8))
		ix := NewIndex(h)
		scratch := bitset.New(ix.OccUniverse())
		s := randomSubset(r, n, r.Float64())
		got := ix.FirstEdgeSubsetOf(s, scratch)
		want := h.ContainsEdgeSubsetOf(s)
		if (got >= 0) != want {
			t.Fatalf("FirstEdgeSubsetOf=%d but ContainsEdgeSubsetOf=%v for %v ⊆ %v", got, want, h, s)
		}
		if got >= 0 && !h.Edge(got).SubsetOf(s) {
			t.Fatalf("edge %d = %v not ⊆ %v", got, h.Edge(got), s)
		}
	}
}

// TestIndexedPrecheckProbesAgree cross-checks the index-driven precheck
// probes (indexed.go) against their scan-based counterparts, including the
// exact violation/tie-break choices.
func TestIndexedPrecheckProbesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		n := 4 + r.Intn(8)
		g := randomFamily(r, n, 1+r.Intn(6))
		h := randomFamily(r, n, 1+r.Intn(6))
		gi, hi := NewIndex(g), NewIndex(h)
		gS := bitset.New(gi.OccUniverse())
		hS := bitset.New(hi.OccUniverse())

		wantV := g.simpleViolation()
		gotV := g.SimpleViolationIdx(gi, gS)
		if (wantV == nil) != (gotV == nil) {
			t.Fatalf("simplicity: scan %v, indexed %v for %v", wantV, gotV, g)
		}
		if wantV != nil && (wantV[0] != gotV[0] || wantV[1] != gotV[1]) {
			t.Fatalf("simplicity violation: scan %v, indexed %v for %v", wantV, gotV, g)
		}

		okWant, giWant, hiWant := g.CrossIntersecting(h)
		okGot, giGot, hiGot := g.CrossIntersectingIdx(h, hi, hS)
		if okWant != okGot || giWant != giGot || hiWant != hiGot {
			t.Fatalf("cross-intersect: scan (%v,%d,%d), indexed (%v,%d,%d)",
				okWant, giWant, hiWant, okGot, giGot, hiGot)
		}

		wantM := h.AllEdgesMinimalTransversalsOf(g)
		gotM := h.AllEdgesMinimalTransversalsOfIdx(g, gi, gS)
		if (wantM == nil) != (gotM == nil) {
			t.Fatalf("minimality: scan %v, indexed %v", wantM, gotM)
		}
		if wantM != nil && *wantM != *gotM {
			t.Fatalf("minimality violation: scan %+v, indexed %+v", wantM, gotM)
		}
	}
}
