package transversal

import (
	"context"
	"errors"
	"testing"

	"dualspace/internal/hypergraph"
)

// matching returns the k-edge perfect matching, whose 2^k minimal
// transversals make per-transversal allocation costs visible.
func matching(k int) *hypergraph.Hypergraph {
	h := hypergraph.New(2 * k)
	for i := 0; i < k; i++ {
		h.AddEdgeElems(2*i, 2*i+1)
	}
	return h
}

func TestCountMatchesEnumeration(t *testing.T) {
	for k := 1; k <= 8; k++ {
		h := matching(k)
		if got, want := Count(h), 1<<k; got != want {
			t.Errorf("Count(matching %d) = %d, want %d", k, got, want)
		}
	}
	if got := Count(hypergraph.New(3)); got != 1 {
		t.Errorf("Count(⊥) = %d, want 1 (tr(∅) = {∅})", got)
	}
	top := hypergraph.New(3)
	top.AddEdge(hypergraph.New(3).Vertices())
	if got := Count(hypergraph.MustFromEdges(3, [][]int{{}})); got != 0 {
		t.Errorf("Count({∅}) = %d, want 0", got)
	}
}

// TestCountDoesNotMaterialize is the satellite regression guard: counting
// must cost only the enumerator's fixed setup, not one allocation per
// minimal transversal — doubling |tr(h)| from 256 to 1024 must not move the
// per-call allocation count.
func TestCountDoesNotMaterialize(t *testing.T) {
	small, large := matching(8), matching(10) // 256 vs 1024 transversals
	per := func(h *hypergraph.Hypergraph) float64 {
		return testing.AllocsPerRun(10, func() {
			if Count(h) == 0 {
				t.Fatal("empty count")
			}
		})
	}
	ps, pl := per(small), per(large)
	// The setup cost may grow with the DFS depth (per-depth branch buffers:
	// +2 levels here) but must not grow with the 768 extra transversals —
	// the pre-fix implementation cloned each one.
	if pl > ps+12 {
		t.Errorf("Count allocations grow with |tr(h)|: %d transversals cost %.0f, %d cost %.0f",
			256, ps, 1024, pl)
	}
}

func TestCountContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := CountContext(ctx, matching(6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled count err = %v", err)
	}
	if n != 0 {
		t.Errorf("count before first node = %d", n)
	}
}
