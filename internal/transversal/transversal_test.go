package transversal

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
)

func trEqual(t *testing.T, got, want *hypergraph.Hypergraph, label string) {
	t.Helper()
	if !got.EqualAsFamily(want) {
		t.Errorf("%s: got %v, want %v", label, got, want)
	}
}

func TestConventions(t *testing.T) {
	// tr(∅) = {∅}
	empty := hypergraph.New(4)
	wantEmpty := hypergraph.MustFromEdges(4, [][]int{{}})
	trEqual(t, Berge(empty), wantEmpty, "Berge tr(∅)")
	trEqual(t, AsHypergraph(empty), wantEmpty, "Enumerate tr(∅)")
	trEqual(t, BruteForce(empty), wantEmpty, "BruteForce tr(∅)")

	// tr({∅}) = ∅
	withEmpty := hypergraph.MustFromEdges(4, [][]int{{}})
	wantNone := hypergraph.New(4)
	trEqual(t, Berge(withEmpty), wantNone, "Berge tr({∅})")
	trEqual(t, AsHypergraph(withEmpty), wantNone, "Enumerate tr({∅})")
	trEqual(t, BruteForce(withEmpty), wantNone, "BruteForce tr({∅})")
}

func TestKnownDuals(t *testing.T) {
	cases := []struct {
		name string
		n    int
		h    [][]int
		want [][]int
	}{
		{
			name: "single edge",
			n:    3,
			h:    [][]int{{0, 1, 2}},
			want: [][]int{{0}, {1}, {2}},
		},
		{
			name: "singletons",
			n:    3,
			h:    [][]int{{0}, {1}, {2}},
			want: [][]int{{0, 1, 2}},
		},
		{
			name: "matching of 2",
			n:    4,
			h:    [][]int{{0, 1}, {2, 3}},
			want: [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}},
		},
		{
			name: "triangle (self-dual)",
			n:    3,
			h:    [][]int{{0, 1}, {1, 2}, {0, 2}},
			want: [][]int{{0, 1}, {1, 2}, {0, 2}},
		},
		{
			name: "path P3",
			n:    3,
			h:    [][]int{{0, 1}, {1, 2}},
			want: [][]int{{1}, {0, 2}},
		},
		{
			name: "threshold 2-of-4",
			n:    4,
			h:    [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
			want: [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}},
		},
	}
	for _, c := range cases {
		h := hypergraph.MustFromEdges(c.n, c.h)
		want := hypergraph.MustFromEdges(c.n, c.want)
		trEqual(t, Berge(h), want, c.name+"/Berge")
		trEqual(t, AsHypergraph(h), want, c.name+"/Enumerate")
		trEqual(t, BruteForce(h), want, c.name+"/BruteForce")
	}
}

func TestInvolution(t *testing.T) {
	// tr(tr(H)) = H for simple H.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		h := randomSimple(r, 2+r.Intn(8), 1+r.Intn(6))
		tr1 := AsHypergraph(h)
		tr2 := AsHypergraph(tr1)
		if !tr2.EqualAsFamily(h) {
			t.Fatalf("tr(tr(H)) != H: H=%v tr=%v trtr=%v", h, tr1, tr2)
		}
	}
}

func TestMethodsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		n := 2 + r.Intn(9)
		h := randomSimple(r, n, 1+r.Intn(8))
		b := Berge(h)
		e := AsHypergraph(h)
		bf := BruteForce(h)
		if !b.EqualAsFamily(bf) {
			t.Fatalf("Berge != BruteForce for %v: %v vs %v", h, b, bf)
		}
		if !e.EqualAsFamily(bf) {
			t.Fatalf("Enumerate != BruteForce for %v: %v vs %v", h, e, bf)
		}
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		h := randomSimple(r, 2+r.Intn(10), 1+r.Intn(10))
		seen := map[string]bool{}
		Enumerate(h, func(s bitset.Set) bool {
			k := s.Key()
			if seen[k] {
				t.Fatalf("duplicate transversal %v for %v", s, h)
			}
			seen[k] = true
			if !h.IsMinimalTransversal(s) {
				t.Fatalf("emitted non-minimal %v for %v", s, h)
			}
			return true
		})
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	h := hypergraph.MustFromEdges(6, [][]int{{0, 1}, {2, 3}, {4, 5}})
	count := 0
	Enumerate(h, func(bitset.Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop yielded %d, want 3", count)
	}
	if got := Count(h); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
}

func TestMatchingGrowth(t *testing.T) {
	// Matching with k edges has exactly 2^k minimal transversals.
	for k := 1; k <= 6; k++ {
		edges := make([][]int, k)
		for i := range edges {
			edges[i] = []int{2 * i, 2*i + 1}
		}
		h := hypergraph.MustFromEdges(2*k, edges)
		if got, want := Count(h), 1<<uint(k); got != want {
			t.Errorf("matching k=%d: Count = %d, want %d", k, got, want)
		}
	}
}

func TestViaOracleBruteBacked(t *testing.T) {
	// Use a brute-force oracle: find any minimal transversal of g not in
	// partial; report completion when none exists.
	oracle := func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
		for _, mt := range All(g) {
			if !partial.ContainsEdge(mt) {
				return mt, true, nil
			}
		}
		return bitset.Set{}, false, nil
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		g := randomSimple(r, 2+r.Intn(7), 1+r.Intn(6))
		got, err := ViaOracle(g, oracle)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsFamily(AsHypergraph(g)) {
			t.Fatalf("ViaOracle mismatch for %v", g)
		}
	}
}

func randomSimple(r *rand.Rand, n, m int) *hypergraph.Hypergraph {
	raw := hypergraph.New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				e.Add(v)
			}
		}
		if e.IsEmpty() {
			e.Add(r.Intn(n))
		}
		raw.AddEdge(e)
	}
	return raw.Minimize()
}

func BenchmarkBergeThreshold(b *testing.B) {
	h := threshold(12, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Berge(h)
	}
}

func BenchmarkEnumerateThreshold(b *testing.B) {
	h := threshold(12, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(h)
	}
}

// threshold returns the hypergraph of all k-subsets of [0,n).
func threshold(n, k int) *hypergraph.Hypergraph {
	h := hypergraph.New(n)
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) == k {
			h.AddEdgeElems(cur...)
			return
		}
		for v := start; v < n; v++ {
			build(v+1, append(cur, v))
		}
	}
	build(0, nil)
	return h
}
