// Package transversal enumerates the minimal transversals tr(H) of a simple
// hypergraph — the hypergraph dualization problem that underlies DUAL.
//
// Three independent methods are provided:
//
//   - Berge: sequential Berge multiplication with stepwise minimization, the
//     classical textbook algorithm. Exponential in the worst case but simple
//     and a trusted oracle for tests.
//   - Enumerate (DFS): a branch-and-bound enumerator over candidate vertices
//     with critical-edge pruning in the style of Murakami–Uno's MMCS. Each
//     minimal transversal is emitted exactly once, with polynomial space.
//   - BruteForce: exhaustive 2^n scan, for tiny universes only; a second
//     independent oracle.
//
// A fourth method, enumeration through repeated duality-witness extraction
// (the incremental pattern of Gunopulos et al. used by the paper's data
// mining application), is provided by ViaOracle; the oracle itself is
// supplied by internal/core to avoid an import cycle.
//
// Conventions: tr(∅) = {∅} and tr of any family containing the empty edge is
// the empty family (see package hypergraph).
package transversal

import (
	"context"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
)

// Berge computes tr(H) by multiplying edges one at a time and minimizing
// after every step. The result is a simple hypergraph whose edges are
// exactly the minimal transversals of h, in canonical order.
//
// Every intermediate set is drawn from (and recycled to) a scratch pool:
// the per-step minimization discards most of the product expansion, so the
// multiplication reuses a working set of storage instead of allocating per
// candidate. Only FromSets clones the survivors out.
func Berge(h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	n := h.N()
	pool := bitset.NewPool(n)
	current := []bitset.Set{pool.Get()} // tr of the empty prefix = {∅}
	for _, e := range h.Edges() {
		var next []bitset.Set
		for _, r := range current {
			if r.Intersects(e) {
				next = append(next, r)
				continue
			}
			e.ForEach(func(v int) bool {
				c := pool.Get()
				c.CopyFrom(r)
				c.Add(v)
				next = append(next, c)
				return true
			})
			pool.Put(r) // r itself is superseded by its extensions
		}
		current = minimizeSets(next, pool)
	}
	out := hypergraph.FromSets(n, current)
	return out.Canonical()
}

// minimizeSets returns the inclusion-minimal, duplicate-free subfamily,
// recycling the dropped sets into the pool.
func minimizeSets(sets []bitset.Set, pool *bitset.Pool) []bitset.Set {
	var out []bitset.Set
	for i, s := range sets {
		keep := true
		for j, t := range sets {
			if i == j {
				continue
			}
			if t.ProperSubsetOf(s) || (t.Equal(s) && j < i) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		} else {
			pool.Put(s)
		}
	}
	return out
}

// Enumerate emits every minimal transversal of h exactly once, calling yield
// for each. Enumeration stops early if yield returns false. The sets passed
// to yield are fresh copies owned by the callee.
//
// The algorithm is a depth-first search that grows a partial transversal S
// one vertex at a time, always branching on an uncovered edge with the
// fewest remaining candidates, pruning any branch in which some vertex of S
// loses its critical edge (no minimal transversal can extend such an S).
// Duplicate suppression follows the standard prefix-exclusion rule: within a
// branching edge the i-th candidate's subtree excludes candidates 1..i−1.
func Enumerate(h *hypergraph.Hypergraph, yield func(bitset.Set) bool) {
	// The infallible yield cannot produce an error and the background
	// context cannot cancel, so the error is structurally nil.
	_ = EnumerateContext(context.Background(), h, func(s bitset.Set) (bool, error) {
		return yield(s), nil
	})
}

// EnumerateContext is Enumerate for streaming consumers: the yield may abort
// the enumeration with an error (returned verbatim), and a cancelled ctx
// aborts the DFS within one search-node boundary and returns ctx's error. A
// nil return means the enumeration ran to completion or yield asked to stop
// cleanly — the distinction streaming endpoints need to tell a truncated
// stream from a failed one.
func EnumerateContext(ctx context.Context, h *hypergraph.Hypergraph, yield func(bitset.Set) (bool, error)) error {
	return enumerateContext(ctx, h, yield, false)
}

// enumerateContext is the shared enumerator driver. With borrow set, yield
// receives the enumerator's working set itself (valid only for the duration
// of the call) instead of a fresh clone — the mode Count uses, so that
// consumers that never retain a transversal never pay for one.
func enumerateContext(ctx context.Context, h *hypergraph.Hypergraph, yield func(bitset.Set) (bool, error), borrow bool) error {
	n := h.N()
	if h.HasEmptyEdge() {
		return nil // no transversals at all
	}
	idx := h.AttachedIndex()
	if idx == nil {
		idx = hypergraph.NewIndex(h)
	}
	e := &enumerator{
		h:         h,
		idx:       idx,
		yield:     yield,
		borrow:    borrow,
		done:      ctx.Done(),
		ctx:       ctx,
		s:         bitset.New(n),
		cand:      bitset.Full(n),
		cover:     make([]int, h.M()),
		critOwner: make([]int, h.M()),
		critCount: make([]int, n),
		candCnt:   make([]int, h.M()),
		uncovSet:  bitset.New(idx.OccUniverse()),
		uncovered: h.M(),
	}
	for i := range e.critOwner {
		e.critOwner[i] = -1
	}
	for f := 0; f < h.M(); f++ { //dual:allow(ctxpoll: one-shot O(M) init of cardinality counters, Card is O(1); rec() polls per node)
		e.candCnt[f] = idx.Card(f) // cand starts full
		e.uncovSet.Add(f)
	}
	e.rec()
	return e.err
}

// All collects every minimal transversal of h.
func All(h *hypergraph.Hypergraph) []bitset.Set {
	var out []bitset.Set
	Enumerate(h, func(s bitset.Set) bool {
		out = append(out, s)
		return true
	})
	return out
}

// AsHypergraph returns tr(h) as a canonical simple hypergraph.
func AsHypergraph(h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	return hypergraph.FromSets(h.N(), All(h)).Canonical()
}

// Count returns |tr(h)| by streaming over the enumerator in borrow mode: no
// minimal transversal is materialized (or even cloned) on the way to the
// integer, so counting costs only the DFS's own working state however large
// tr(h) grows.
func Count(h *hypergraph.Hypergraph) int {
	c, _ := CountContext(context.Background(), h)
	return c
}

// CountContext is Count with cancellation; on a cancelled ctx the partial
// count so far is returned alongside ctx's error.
func CountContext(ctx context.Context, h *hypergraph.Hypergraph) (int, error) {
	c := 0
	err := enumerateContext(ctx, h, func(bitset.Set) (bool, error) {
		c++
		return true, nil
	}, true)
	return c, err
}

type enumerator struct {
	h         *hypergraph.Hypergraph
	idx       *hypergraph.Index // incidence index: occ rows drive every update
	yield     func(bitset.Set) (bool, error)
	borrow    bool            // pass s itself to yield instead of a clone
	done      <-chan struct{} // cancellation channel (ctx.Done())
	ctx       context.Context
	err       error      // terminal error: ctx's or the yield's
	s         bitset.Set // current partial transversal
	sElems    []int      // stack of S in insertion order
	cand      bitset.Set // available candidate vertices
	cover     []int      // cover[f] = |edge f ∩ S|
	critOwner []int      // when cover[f]==1, the unique vertex of S in f
	critCount []int      // critCount[v] = # edges f with cover==1, owner v
	candCnt   []int      // candCnt[f] = |edge f ∩ cand| (branch selection)
	uncovSet  bitset.Set // edges with cover == 0, over the occ universe
	uncovered int        // # edges with cover == 0
	stopped   bool
	branchBuf [][]int // per-depth branch vertex buffers, reused
	depth     int
}

// candRemove/candAdd maintain cand and the per-edge candidate counts through
// the occurrence row of v — O(deg(v)) instead of a per-edge rescan at branch
// time.
func (e *enumerator) candRemove(v int) {
	e.cand.Remove(v)
	e.idx.Occ(v).ForEach(func(f int) bool {
		e.candCnt[f]--
		return true
	})
}

func (e *enumerator) candAdd(v int) {
	e.cand.Add(v)
	e.idx.Occ(v).ForEach(func(f int) bool {
		e.candCnt[f]++
		return true
	})
}

// pushBranch returns an empty reusable vertex buffer for the current
// recursion depth; popBranch returns it (branch lists must survive the
// recursive calls made while iterating them, so one shared buffer is not
// enough, but one per depth is).
func (e *enumerator) pushBranch() []int {
	if e.depth == len(e.branchBuf) {
		e.branchBuf = append(e.branchBuf, nil)
	}
	buf := e.branchBuf[e.depth][:0]
	e.depth++
	return buf
}

func (e *enumerator) popBranch(buf []int) {
	e.depth--
	e.branchBuf[e.depth] = buf
}

func (e *enumerator) rec() {
	if e.stopped {
		return
	}
	if e.done != nil {
		select {
		case <-e.done:
			e.stopped, e.err = true, e.ctx.Err()
			return
		default:
		}
	}
	if e.uncovered == 0 {
		out := e.s
		if !e.borrow {
			out = e.s.Clone()
		}
		cont, err := e.yield(out)
		if err != nil {
			e.stopped, e.err = true, err
			return
		}
		if !cont {
			e.stopped = true
		}
		return
	}
	// Pick an uncovered edge with the fewest candidates, off the maintained
	// uncovered-edge set and candidate counts (no per-edge intersection).
	best, bestCount := -1, -1
	e.uncovSet.ForEach(func(fi int) bool {
		c := e.candCnt[fi]
		if best == -1 || c < bestCount {
			best, bestCount = fi, c
		}
		return c != 0 // a zero-candidate edge is an immediate dead end
	})
	if bestCount == 0 {
		return // dead end: uncovered edge with no candidates left
	}
	branch := e.pushBranch()
	e.h.Edge(best).ForEach(func(v int) bool {
		if e.cand.Contains(v) {
			branch = append(branch, v)
		}
		return true
	})
	for _, v := range branch {
		// Prefix exclusion: v leaves the candidate pool for this subtree
		// and for all later siblings, guaranteeing uniqueness.
		e.candRemove(v)
		e.addVertex(v)
		if e.allCritical() {
			e.rec()
		}
		e.removeVertex(v)
		if e.stopped {
			break
		}
	}
	for _, v := range branch {
		e.candAdd(v)
	}
	e.popBranch(branch)
}

func (e *enumerator) addVertex(v int) {
	e.s.Add(v)
	e.sElems = append(e.sElems, v)
	e.idx.Occ(v).ForEach(func(fi int) bool {
		e.cover[fi]++
		switch e.cover[fi] {
		case 1:
			e.uncovered--
			e.uncovSet.Remove(fi)
			e.critOwner[fi] = v
			e.critCount[v]++
		case 2:
			e.critCount[e.critOwner[fi]]--
			e.critOwner[fi] = -1
		}
		return true
	})
}

func (e *enumerator) removeVertex(v int) {
	e.s.Remove(v)
	e.sElems = e.sElems[:len(e.sElems)-1]
	e.idx.Occ(v).ForEach(func(fi int) bool {
		e.cover[fi]--
		switch e.cover[fi] {
		case 0:
			e.uncovered++
			e.uncovSet.Add(fi)
			e.critCount[v]--
			e.critOwner[fi] = -1
		case 1:
			u := e.h.Edge(fi).IntersectionMin(e.s)
			e.critOwner[fi] = u
			e.critCount[u]++
		}
		return true
	})
}

// allCritical reports whether every vertex of S still owns a critical edge.
func (e *enumerator) allCritical() bool {
	for _, u := range e.sElems {
		if e.critCount[u] == 0 {
			return false
		}
	}
	return true
}

// BruteForce computes tr(h) by scanning all 2^n subsets. It panics for
// universes larger than 22 vertices; it exists as an independent oracle for
// tests and experiments.
func BruteForce(h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	n := h.N()
	if n > 22 {
		panic("transversal: BruteForce universe too large")
	}
	out := hypergraph.New(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		s := bitset.New(n)
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				s.Add(v)
			}
		}
		if h.IsMinimalTransversal(s) {
			out.AddEdge(s)
		}
	}
	return out.Canonical()
}

// WitnessOracle returns a "new transversal of g with respect to partial"
// (a transversal of g containing no edge of partial), or ok=false when
// partial = tr(g). internal/core provides an implementation backed by the
// Boros–Makino decomposition; tests can use brute-force implementations.
type WitnessOracle func(g, partial *hypergraph.Hypergraph) (witness bitset.Set, ok bool, err error)

// ViaOracle enumerates tr(g) through repeated duality-witness extraction:
// starting from the empty partial family it asks the oracle for a new
// transversal, minimalizes it, adds it, and repeats until the oracle reports
// that the partial family is complete. This is exactly the incremental
// pattern of the paper's data-mining application (§1, [26]).
//
// The number of oracle calls is |tr(g)| + 1.
func ViaOracle(g *hypergraph.Hypergraph, oracle WitnessOracle) (*hypergraph.Hypergraph, error) {
	partial := hypergraph.New(g.N())
	// The growing partial family keeps an AddEdge-maintained incidence
	// index, so each oracle decision rebinds to it in O(1) instead of
	// re-scanning the ever-larger family.
	partial.EnsureIndex()
	for {
		w, ok, err := oracle(g, partial)
		if err != nil {
			return nil, err
		}
		if !ok {
			return partial, nil
		}
		partial.AddEdge(g.MinimalizeTransversal(w))
	}
}

// EnumerateViaOracle is the streaming form of ViaOracle: each minimalized
// transversal is yielded as soon as the oracle produces it, with the
// incremental delay of one duality decision per element (experiment E17).
// Oracle errors surface mid-stream as the return value instead of silently
// truncating the enumeration; the yield may likewise abort with an error,
// and a cancelled ctx stops before the next oracle call. The sets passed to
// yield are fresh copies owned by the callee.
func EnumerateViaOracle(ctx context.Context, g *hypergraph.Hypergraph, oracle WitnessOracle, yield func(bitset.Set) (bool, error)) error {
	partial := hypergraph.New(g.N())
	partial.EnsureIndex() // see ViaOracle
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, ok, err := oracle(g, partial)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		m := g.MinimalizeTransversal(w)
		partial.AddEdge(m)
		cont, err := yield(m.Clone())
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
}
