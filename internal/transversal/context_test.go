package transversal_test

import (
	"context"
	"errors"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

func matching(k int) *hypergraph.Hypergraph {
	h := hypergraph.New(2 * k)
	for i := 0; i < k; i++ {
		h.AddEdgeElems(2*i, 2*i+1)
	}
	return h
}

func TestEnumerateContextYieldError(t *testing.T) {
	h := matching(3) // 8 minimal transversals
	wantErr := errors.New("sink full")
	n := 0
	err := transversal.EnumerateContext(context.Background(), h, func(bitset.Set) (bool, error) {
		n++
		if n == 3 {
			return false, wantErr
		}
		return true, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v; want the yield's error", err)
	}
	if n != 3 {
		t.Fatalf("enumeration continued after the error: %d yields", n)
	}
}

func TestEnumerateContextCleanStop(t *testing.T) {
	h := matching(3)
	n := 0
	err := transversal.EnumerateContext(context.Background(), h, func(bitset.Set) (bool, error) {
		n++
		return n < 2, nil
	})
	if err != nil || n != 2 {
		t.Fatalf("clean stop: err=%v n=%d", err, n)
	}
}

func TestEnumerateContextCancelled(t *testing.T) {
	h := matching(6) // 64 minimal transversals
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := transversal.EnumerateContext(ctx, h, func(bitset.Set) (bool, error) {
		n++
		if n == 2 {
			cancel() // cancel mid-stream; the DFS must stop at its next node
		}
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if n >= 64 {
		t.Fatalf("enumeration ran to completion despite cancellation (%d yields)", n)
	}
}

func TestEnumerateViaOracleStreamsAndSurfacesErrors(t *testing.T) {
	h := matching(2) // tr = 4 sets
	brute := func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
		tr := transversal.BruteForce(g)
		for _, e := range tr.Edges() {
			if !partial.ContainsEdge(e) {
				return e.Clone(), true, nil
			}
		}
		return bitset.Set{}, false, nil
	}

	var got []bitset.Set
	err := transversal.EnumerateViaOracle(context.Background(), h, brute, func(s bitset.Set) (bool, error) {
		got = append(got, s)
		return true, nil
	})
	if err != nil {
		t.Fatalf("EnumerateViaOracle: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("streamed %d transversals, want 4", len(got))
	}
	if !hypergraph.FromSets(h.N(), got).EqualAsFamily(transversal.BruteForce(h)) {
		t.Fatal("streamed family differs from tr(h)")
	}

	// A failing oracle surfaces its error mid-stream.
	oracleErr := errors.New("oracle backend down")
	calls := 0
	failing := func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
		calls++
		if calls > 2 {
			return bitset.Set{}, false, oracleErr
		}
		return brute(g, partial)
	}
	got = nil
	err = transversal.EnumerateViaOracle(context.Background(), h, failing, func(s bitset.Set) (bool, error) {
		got = append(got, s)
		return true, nil
	})
	if !errors.Is(err, oracleErr) {
		t.Fatalf("err = %v; want the oracle's error", err)
	}
	if len(got) != 2 {
		t.Fatalf("yields before the failure = %d, want 2", len(got))
	}

	// A cancelled context stops before the next oracle call.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := transversal.EnumerateViaOracle(ctx, h, brute, func(bitset.Set) (bool, error) { return true, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
}
