// Package coterie implements coteries and the non-domination test
// (Gottlob, PODS 2013, Proposition 1.3): a coterie H is non-dominated iff
// tr(H) = H, i.e. iff its quorum hypergraph is self-dual.
//
// A coterie over a node universe is a non-empty antichain of non-empty,
// pairwise intersecting quorums — the structure behind quorum-based updates
// in distributed databases [Lamport; Garcia-Molina & Barbará; Ibaraki &
// Kameda]. A coterie C dominates a coterie D (C ≠ D) when every quorum of
// D contains some quorum of C; non-dominated coteries are the useful ones,
// and Proposition 1.3 reduces recognizing them to DUAL self-duality.
package coterie

import (
	"context"
	"errors"
	"fmt"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/hypergraph"
)

// Coterie is a validated set of quorums. The quorum hypergraph carries an
// attached incidence index (read-only after New, so a Coterie stays safe
// for concurrent use).
type Coterie struct {
	h *hypergraph.Hypergraph
}

// quorumProbe returns the containment probe for repeated "some quorum ⊆ t"
// questions against this coterie: occurrence-row lookups through one
// per-probe scratch set for large families, the plain edge scan otherwise.
// The returned closure owns its scratch and is single-goroutine; the
// Coterie itself is not touched.
func (c *Coterie) quorumProbe() func(t bitset.Set) bool {
	ix := c.h.AttachedIndex()
	if ix == nil || c.h.M() < 64 {
		return c.h.ContainsEdgeSubsetOf
	}
	scratch := bitset.New(ix.OccUniverse())
	return func(t bitset.Set) bool {
		return ix.FirstEdgeSubsetOf(t, scratch) >= 0
	}
}

// New validates and wraps a quorum hypergraph: it must be non-empty, with
// non-empty, pairwise intersecting quorums forming an antichain.
func New(h *hypergraph.Hypergraph) (*Coterie, error) {
	if h.M() == 0 {
		return nil, errors.New("coterie: no quorums")
	}
	if h.HasEmptyEdge() {
		return nil, errors.New("coterie: empty quorum")
	}
	if err := h.ValidateSimple(); err != nil {
		return nil, fmt.Errorf("coterie: quorums must form an antichain: %w", err)
	}
	for i := 0; i < h.M(); i++ {
		for j := i + 1; j < h.M(); j++ {
			if !h.Edge(i).Intersects(h.Edge(j)) {
				return nil, fmt.Errorf("coterie: quorums %d and %d do not intersect", i, j)
			}
		}
	}
	c := &Coterie{h: h.Clone()}
	// The coterie owns its clone; an attached incidence index turns the
	// quorum-containment probes of Dominates (and the engines' rebinds in
	// the self-duality decision) into occurrence-row lookups.
	c.h.EnsureIndex()
	return c, nil
}

// MustNew panics on invalid input; for tests and literals.
func MustNew(h *hypergraph.Hypergraph) *Coterie {
	c, err := New(h)
	if err != nil {
		panic(err)
	}
	return c
}

// Hypergraph returns the quorum hypergraph (a copy).
func (c *Coterie) Hypergraph() *hypergraph.Hypergraph { return c.h.Clone() }

// NumQuorums returns the number of quorums.
func (c *Coterie) NumQuorums() int { return c.h.M() }

// Universe returns the node universe size.
func (c *Coterie) Universe() int { return c.h.N() }

// String renders the quorum family.
func (c *Coterie) String() string { return c.h.String() }

// Dominates reports whether c dominates d: c ≠ d (as families) and every
// quorum of d contains some quorum of c.
func (c *Coterie) Dominates(d *Coterie) bool {
	if c.h.EqualAsFamily(d.h) {
		return false
	}
	probe := c.quorumProbe()
	for _, q := range d.h.Edges() {
		if !probe(q) {
			return false
		}
	}
	return true
}

// IsNonDominated decides non-domination via Proposition 1.3: the coterie is
// non-dominated iff tr(H) = H, a self-duality instance of DUAL.
func (c *Coterie) IsNonDominated() (bool, error) {
	return c.IsNonDominatedContext(context.Background())
}

// IsNonDominatedContext is IsNonDominated with cancellation (see
// core.DecideContext), on the default engine portfolio.
func (c *Coterie) IsNonDominatedContext(ctx context.Context) (bool, error) {
	return c.IsNonDominatedWith(ctx, engine.Default())
}

// IsNonDominatedWith is IsNonDominatedContext with a caller-chosen duality
// engine.
func (c *Coterie) IsNonDominatedWith(ctx context.Context, eng engine.Engine) (bool, error) {
	res, err := eng.Decide(ctx, c.h, c.h)
	if err != nil {
		return false, err
	}
	return res.Dual, nil
}

// FindDominating returns a coterie that dominates c, or found = false when
// c is non-dominated. It uses the duality engine's witness: a transversal T
// of H containing no quorum yields the dominating coterie min(H ∪ {T}).
func (c *Coterie) FindDominating() (*Coterie, bool, error) {
	return c.FindDominatingContext(context.Background())
}

// FindDominatingContext is FindDominating with cancellation, on the default
// engine portfolio.
func (c *Coterie) FindDominatingContext(ctx context.Context) (*Coterie, bool, error) {
	return c.FindDominatingWith(ctx, engine.Default())
}

// FindDominatingWith is FindDominatingContext with a caller-chosen duality
// engine. Every engine reports precondition failures with core's Reason
// taxonomy, so the witness-to-coterie conversion below is engine-independent.
func (c *Coterie) FindDominatingWith(ctx context.Context, eng engine.Engine) (*Coterie, bool, error) {
	res, err := eng.Decide(ctx, c.h, c.h)
	if err != nil {
		return nil, false, err
	}
	if res.Dual {
		return nil, false, nil
	}
	var t bitset.Set
	switch res.Reason {
	case core.ReasonNewTransversal:
		t = res.Witness
	case core.ReasonHEdgeNotMinimal, core.ReasonGEdgeNotMinimal:
		// Some quorum q is a non-minimal transversal of H: q minus the
		// redundant node is a transversal containing no quorum (the
		// antichain property excludes q' ⊆ q−{v}).
		var q bitset.Set
		if res.Reason == core.ReasonHEdgeNotMinimal {
			q = c.h.Edge(res.HEdge)
		} else {
			q = c.h.Edge(res.GEdge)
		}
		t = q.WithoutElem(res.RedundantVertex)
	default:
		return nil, false, fmt.Errorf("coterie: unexpected self-duality verdict %v", res.Reason)
	}
	improved := c.h.Clone()
	improved.AddEdge(c.h.MinimalizeTransversal(t))
	dom, err := New(improved.Minimize())
	if err != nil {
		return nil, false, err
	}
	return dom, true, nil
}

// IsDominatedBrute searches all node subsets for a transversal containing
// no quorum (the classical characterization of dominated coteries). Test
// oracle; panics beyond 20 nodes.
func (c *Coterie) IsDominatedBrute() bool {
	n := c.h.N()
	if n > 20 {
		panic("coterie: brute-force universe too large")
	}
	probe := c.quorumProbe()
	for mask := 0; mask < 1<<uint(n); mask++ {
		t := bitset.New(n)
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				t.Add(v)
			}
		}
		if c.h.IsTransversal(t) && !probe(t) {
			return true
		}
	}
	return false
}

// Majority returns the majority coterie on odd n: all ⌈n/2⌉-subsets.
// Non-dominated for every odd n.
func Majority(n int) *Coterie {
	if n%2 == 0 {
		panic("coterie: Majority requires odd n")
	}
	k := n/2 + 1
	h := hypergraph.New(n)
	cur := make([]int, 0, k)
	var build func(start int)
	build = func(start int) {
		if len(cur) == k {
			h.AddEdgeElems(cur...)
			return
		}
		for v := start; v <= n-(k-len(cur)); v++ {
			cur = append(cur, v)
			build(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	build(0)
	return MustNew(h)
}

// Singleton returns the coterie whose only quorum is {leader} — the
// primary-site scheme; non-dominated.
func Singleton(n, leader int) *Coterie {
	h := hypergraph.New(n)
	h.AddEdgeElems(leader)
	return MustNew(h)
}

// Star returns the coterie {{center, i} : i ≠ center} on n ≥ 3 nodes — the
// classical example of a dominated coterie (it is dominated by adding the
// quorum {center}).
func Star(n, center int) *Coterie {
	if n < 3 {
		panic("coterie: Star needs n ≥ 3")
	}
	h := hypergraph.New(n)
	for i := 0; i < n; i++ {
		if i != center {
			h.AddEdgeElems(center, i)
		}
	}
	return MustNew(h)
}

// Wheel returns the wheel coterie on n ≥ 4 nodes: the hub quorum
// {0, i} pattern is replaced by the standard wheel — quorums {0, i} for
// each rim node i plus the full rim {1, ..., n−1}.
func Wheel(n int) *Coterie {
	if n < 4 {
		panic("coterie: Wheel needs n ≥ 4")
	}
	h := hypergraph.New(n)
	rim := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		h.AddEdgeElems(0, i)
		rim = append(rim, i)
	}
	h.AddEdgeElems(rim...)
	return MustNew(h)
}

// Grid returns the rows×cols grid coterie: one quorum per (row, column)
// pair consisting of the full row plus the full column. Pairwise
// intersection holds because any two quorums share a row/column crossing.
func Grid(rows, cols int) *Coterie {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("coterie: Grid too small")
	}
	n := rows * cols
	h := hypergraph.New(n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := bitset.New(n)
			for cc := 0; cc < cols; cc++ {
				q.Add(r*cols + cc)
			}
			for rr := 0; rr < rows; rr++ {
				q.Add(rr*cols + c)
			}
			h.AddEdge(q)
		}
	}
	c, err := New(h.Minimize())
	if err != nil {
		panic(err)
	}
	return c
}
