package coterie_test

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/coterie"
	"dualspace/internal/hypergraph"
)

func TestValidation(t *testing.T) {
	if _, err := coterie.New(hypergraph.New(3)); err == nil {
		t.Error("empty coterie accepted")
	}
	if _, err := coterie.New(hypergraph.MustFromEdges(3, [][]int{{}})); err == nil {
		t.Error("empty quorum accepted")
	}
	if _, err := coterie.New(hypergraph.MustFromEdges(3, [][]int{{0}, {0, 1}})); err == nil {
		t.Error("non-antichain accepted")
	}
	if _, err := coterie.New(hypergraph.MustFromEdges(3, [][]int{{0}, {1}})); err == nil {
		t.Error("non-intersecting quorums accepted")
	}
	if _, err := coterie.New(hypergraph.MustFromEdges(3, [][]int{{0, 1}, {1, 2}})); err != nil {
		t.Errorf("valid coterie rejected: %v", err)
	}
}

func TestKnownConstructions(t *testing.T) {
	cases := []struct {
		name         string
		c            *coterie.Coterie
		nonDominated bool
	}{
		{"majority-3", coterie.Majority(3), true},
		{"majority-5", coterie.Majority(5), true},
		{"singleton", coterie.Singleton(4, 2), true},
		{"star-4", coterie.Star(4, 0), false},
		{"star-5", coterie.Star(5, 1), false},
	}
	for _, c := range cases {
		got, err := c.c.IsNonDominated()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.nonDominated {
			t.Errorf("%s: IsNonDominated = %v, want %v", c.name, got, c.nonDominated)
		}
		// Proposition 1.3 against the brute-force domination search.
		if got == c.c.IsDominatedBrute() {
			t.Errorf("%s: self-duality and brute-force domination disagree", c.name)
		}
	}
}

func TestWheelAndGridAgainstBrute(t *testing.T) {
	// No hand-claimed ground truth here: just verify Proposition 1.3's
	// equivalence on further structured families.
	for _, c := range []*coterie.Coterie{coterie.Wheel(4), coterie.Wheel(5), coterie.Grid(2, 2), coterie.Grid(3, 3)} {
		nd, err := c.IsNonDominated()
		if err != nil {
			t.Fatal(err)
		}
		if nd == c.IsDominatedBrute() {
			t.Errorf("coterie %v: Prop 1.3 equivalence broken", c)
		}
	}
}

func TestFindDominating(t *testing.T) {
	star := coterie.Star(5, 0)
	dom, found, err := star.FindDominating()
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("dominated star not improved")
	}
	if !dom.Dominates(star) {
		t.Fatalf("claimed dominator %v does not dominate %v", dom, star)
	}
	if star.Dominates(dom) {
		t.Error("domination should be asymmetric here")
	}

	maj := coterie.Majority(5)
	if _, found, err := maj.FindDominating(); err != nil || found {
		t.Errorf("majority wrongly dominated (found=%v err=%v)", found, err)
	}
}

func TestDominatesSemantics(t *testing.T) {
	star := coterie.Star(4, 0)
	if star.Dominates(star) {
		t.Error("a coterie must not dominate itself")
	}
	// {{0}} dominates the star (every {0,i} contains {0}).
	single := coterie.Singleton(4, 0)
	if !single.Dominates(star) {
		t.Error("singleton should dominate the star")
	}
	if single.Dominates(coterie.Singleton(4, 1)) {
		t.Error("unrelated singletons should not dominate")
	}
}

func TestRandomCoteriesProp13(t *testing.T) {
	// Random coteries: validate the Prop 1.3 equivalence broadly.
	r := rand.New(rand.NewSource(91))
	trials := 0
	for trials < 40 {
		n := 3 + r.Intn(4)
		h := hypergraph.New(n)
		m := 1 + r.Intn(4)
		for i := 0; i < m; i++ {
			e := bitset.New(n)
			for v := 0; v < n; v++ {
				if r.Intn(2) == 0 {
					e.Add(v)
				}
			}
			if e.IsEmpty() {
				e.Add(r.Intn(n))
			}
			h.AddEdge(e)
		}
		c, err := coterie.New(h.Minimize())
		if err != nil {
			continue // not a coterie; draw again
		}
		trials++
		nd, err := c.IsNonDominated()
		if err != nil {
			t.Fatal(err)
		}
		if nd == c.IsDominatedBrute() {
			t.Fatalf("random coterie %v: Prop 1.3 equivalence broken", c)
		}
		// FindDominating must agree and produce a genuine dominator.
		dom, found, err := c.FindDominating()
		if err != nil {
			t.Fatal(err)
		}
		if found == nd {
			t.Fatalf("FindDominating disagrees with IsNonDominated for %v", c)
		}
		if found && !dom.Dominates(c) {
			t.Fatalf("bogus dominator %v for %v", dom, c)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"majority-even": func() { coterie.Majority(4) },
		"star-small":    func() { coterie.Star(2, 0) },
		"wheel-small":   func() { coterie.Wheel(3) },
		"grid-small":    func() { coterie.Grid(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	c := coterie.Majority(3)
	if c.NumQuorums() != 3 || c.Universe() != 3 {
		t.Error("accessors wrong")
	}
	if c.String() == "" {
		t.Error("String empty")
	}
	h := c.Hypergraph()
	h.AddEdgeElems(0) // mutating the copy must not affect the coterie
	if c.NumQuorums() != 3 {
		t.Error("Hypergraph returned shared state")
	}
}
