package experiments

import (
	"fmt"
	"time"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/hypergraph"
	"dualspace/internal/keys"
	"dualspace/internal/transversal"
)

// E17Delay measures incremental enumeration delay — the concern behind the
// paper's §1 discussion: IS+ alone cannot be enumerated with (quasi-)
// polynomial delay unless NP collapses, but IS+ ∪ IS− can, with one
// DUAL-equivalent check per output. The experiment enumerates tr(G)
// through the duality oracle (one Boros–Makino run per output) and through
// plain DFS, recording the maximum inter-output delay of each.
func E17Delay() *Table {
	t := &Table{
		ID:      "E17",
		Claim:   "oracle-driven enumeration emits one output per duality call (§1, [3,26])",
		Columns: []string{"instance", "|tr(G)|", "oracle outputs", "oracle max delay", "dfs max delay", "families equal"},
		Pass:    true,
	}
	instances := []struct {
		name string
		g    *hypergraph.Hypergraph
	}{
		{"matching-4", gen.Matching(4)},
		{"matching-5", gen.Matching(5)},
		{"threshold-6-3", gen.Threshold(6, 3)},
		{"majority-5", gen.Majority(5)},
	}
	for _, inst := range instances {
		// DFS enumeration with per-output timestamps.
		var dfsMax time.Duration
		dfsCount := 0
		last := time.Now()
		dfsFam := hypergraph.New(inst.g.N())
		transversal.Enumerate(inst.g, func(s bitset.Set) bool {
			now := time.Now()
			if d := now.Sub(last); d > dfsMax {
				dfsMax = d
			}
			last = now
			dfsCount++
			dfsFam.AddEdge(s)
			return true
		})

		// Oracle-driven enumeration: each output costs exactly one duality
		// run plus a minimalization.
		var oracleMax time.Duration
		oracleCount := 0
		last = time.Now()
		oracleFam, err := transversal.ViaOracle(inst.g, func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
			var w bitset.Set
			var ok bool
			var err error
			if partial.M() == 0 {
				w, ok = bitset.Full(g.N()), true
			} else {
				w, ok, err = core.NewTransversal(g, partial)
			}
			now := time.Now()
			if d := now.Sub(last); d > oracleMax {
				oracleMax = d
			}
			last = now
			if ok {
				oracleCount++
			}
			return w, ok, err
		})
		if err != nil {
			t.Pass = false
			continue
		}
		equal := oracleFam.EqualAsFamily(dfsFam) && oracleCount == dfsCount
		if !equal {
			t.Pass = false
		}
		t.AddRow(inst.name, dfsCount, oracleCount, fmtDur(oracleMax), fmtDur(dfsMax), equal)
	}
	t.Notes = append(t.Notes,
		"the oracle path bounds the delay by one DUAL-engine run per output — the structural",
		"guarantee of [26]; DFS is usually faster in aggregate but offers no per-output bound")
	return t
}

// E18Armstrong exercises the Armstrong-relation construction the paper
// lists among the DUAL-equivalent database problems (§1, [7]): for every
// antichain K the constructed relation's minimal keys are exactly K, and
// the relation has 1 + |tr(K)| rows.
func E18Armstrong() *Table {
	t := &Table{
		ID:      "E18",
		Claim:   "Armstrong relation realizes any antichain K as the exact minimal-key set (§1, [7])",
		Columns: []string{"key family", "attrs", "|K|", "|tr(K)|", "rows", "keys match", "identification complete"},
		Pass:    true,
	}
	families := []struct {
		name string
		k    *hypergraph.Hypergraph
	}{
		{"one singleton", hypergraph.MustFromEdges(4, [][]int{{0}})},
		{"composite", hypergraph.MustFromEdges(4, [][]int{{0, 1}})},
		{"mixed", hypergraph.MustFromEdges(5, [][]int{{0}, {1, 2}, {3, 4}})},
		{"triangle", hypergraph.MustFromEdges(3, [][]int{{0, 1}, {1, 2}, {0, 2}})},
		{"matching-3 dual", gen.MatchingDual(3)},
		{"majority-5", gen.Majority(5)},
	}
	for _, f := range families {
		attrs := make([]string, f.k.N())
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		rel, err := keys.ArmstrongRelation(f.k, attrs)
		if err != nil {
			t.Pass = false
			continue
		}
		got := rel.MinimalKeys()
		match := got.EqualAsFamily(f.k)
		res, err := rel.AdditionalKey(f.k)
		if err != nil {
			t.Pass = false
			continue
		}
		if !match || !res.Complete {
			t.Pass = false
		}
		trK := transversal.Count(f.k)
		t.AddRow(f.name, f.k.N(), f.k.M(), trK, rel.NumRows(), match, res.Complete)
	}
	t.Notes = append(t.Notes,
		"rows = 1 + |tr(K)|: one baseline plus one row per antikey (complement of a minimal transversal)")
	return t
}
