package experiments

import (
	"fmt"
	"math/rand"

	"dualspace/internal/coterie"
	"dualspace/internal/hypergraph"
	"dualspace/internal/itemsets"
	"dualspace/internal/keys"
)

// E10Mining exercises Proposition 1.1: the dualize-and-advance border
// miner and the identification problem against the Apriori and brute-force
// baselines, across thresholds and datasets.
func E10Mining() *Table {
	t := &Table{
		ID:      "E10",
		Claim:   "MaxFreq-MinInfreq-Identification ⟺ DUAL (Prop 1.1)",
		Columns: []string{"dataset", "items", "rows", "z", "|IS+|", "|IS−|", "dual checks", "=apriori", "=brute", "identity", "identify"},
		Pass:    true,
	}
	r := rand.New(rand.NewSource(suiteSeed))
	datasets := []struct {
		name string
		d    *itemsets.Dataset
	}{
		{"planted-8x60", itemsets.GeneratePlanted(r, 8, 60, [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7}}, 0.15, 0.05)},
		{"random-7x40", itemsets.GenerateRandom(r, 7, 40, 0.35)},
		{"random-9x30", itemsets.GenerateRandom(r, 9, 30, 0.25)},
	}
	for _, ds := range datasets {
		for _, z := range []int{ds.d.NumRows() / 10, ds.d.NumRows() / 4, ds.d.NumRows() / 2} {
			if z <= 0 {
				z = 1
			}
			da, err := itemsets.ComputeBorders(ds.d, z)
			if err != nil {
				t.Pass = false
				continue
			}
			ap, err := itemsets.BordersApriori(ds.d, z)
			if err != nil {
				t.Pass = false
				continue
			}
			br, err := itemsets.BordersBrute(ds.d, z)
			if err != nil {
				t.Pass = false
				continue
			}
			eqAp := da.MaxFrequent.EqualAsFamily(ap.MaxFrequent) && da.MinInfrequent.EqualAsFamily(ap.MinInfrequent)
			eqBr := da.MaxFrequent.EqualAsFamily(br.MaxFrequent) && da.MinInfrequent.EqualAsFamily(br.MinInfrequent)
			identity, err := itemsets.VerifyBorderIdentity(da)
			if err != nil {
				t.Pass = false
				continue
			}
			idRes, err := itemsets.Identify(ds.d, z, da.MinInfrequent, da.MaxFrequent)
			if err != nil {
				t.Pass = false
				continue
			}
			// And an incomplete claim must be rejected with a witness.
			identOK := idRes.Complete
			if da.MaxFrequent.M() >= 2 {
				partial := hypergraph.New(ds.d.NumItems())
				for j := 1; j < da.MaxFrequent.M(); j++ {
					partial.AddEdge(da.MaxFrequent.Edge(j))
				}
				inc, err := itemsets.Identify(ds.d, z, da.MinInfrequent, partial)
				if err != nil || inc.Complete || (inc.NewMaxFrequent == nil && inc.NewMinInfrequent == nil) {
					identOK = false
				}
			}
			if !eqAp || !eqBr || !identity || !identOK {
				t.Pass = false
			}
			t.AddRow(ds.name, ds.d.NumItems(), ds.d.NumRows(), z,
				da.MaxFrequent.M(), da.MinInfrequent.M(), da.DualityChecks, eqAp, eqBr, identity, identOK)
		}
	}
	t.Notes = append(t.Notes,
		"identity: IS− = tr((IS+)ᶜ) re-verified through the duality engine (Gunopulos et al.)",
		"identify: complete claims accepted and one-short claims rejected with a concrete witness")
	return t
}

// E11Keys exercises Proposition 1.2 on synthetic relations: enumeration
// through additional-key calls matches brute force, with one duality call
// per key plus one.
func E11Keys() *Table {
	t := &Table{
		ID:      "E11",
		Claim:   "additional-key-for-instance ⟺ DUAL (Prop 1.2)",
		Columns: []string{"relation", "attrs", "rows", "keys", "dual calls", "=brute", "drop-one detected"},
		Pass:    true,
	}
	r := rand.New(rand.NewSource(suiteSeed + 1))
	for trial := 0; trial < 6; trial++ {
		nAttrs := 3 + trial%4
		nRows := 4 + 2*trial
		rel := randomRelation(r, nAttrs, nRows, 2+trial%2)
		brute := rel.MinimalKeysBrute()
		got, calls, err := rel.EnumerateKeysIncrementally()
		if err != nil {
			t.Pass = false
			continue
		}
		eq := got.EqualAsFamily(brute)

		dropDetected := true
		if brute.M() >= 1 {
			partial := hypergraph.New(nAttrs)
			for j := 1; j < brute.M(); j++ {
				partial.AddEdge(brute.Edge(j))
			}
			res, err := rel.AdditionalKey(partial)
			if err != nil || res.Complete || !rel.IsMinimalKey(res.NewKey) {
				dropDetected = false
			}
		}
		if !eq || !dropDetected || calls != brute.M()+1 {
			t.Pass = false
		}
		t.AddRow(fmt.Sprintf("rand-%dx%d", nAttrs, nRows), nAttrs, nRows, brute.M(), calls, eq, dropDetected)
	}
	t.Notes = append(t.Notes, "dual calls = |keys| + 1: one witness per key, one final completeness check")
	return t
}

func randomRelation(r *rand.Rand, nAttrs, nRows, domain int) *keys.Relation {
	attrs := make([]string, nAttrs)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	rel := keys.MustNewRelation(attrs)
	for i := 0; i < nRows; i++ {
		row := make([]string, nAttrs)
		for j := range row {
			row[j] = fmt.Sprintf("v%d", r.Intn(domain))
		}
		if err := rel.AddRow(row...); err != nil {
			panic(err)
		}
	}
	return rel
}

// E12Coteries exercises Proposition 1.3 on the classical constructions and
// random coteries: the self-duality verdict must complement the
// brute-force domination search everywhere.
func E12Coteries() *Table {
	t := &Table{
		ID:      "E12",
		Claim:   "coterie non-dominated ⟺ tr(H) = H (Prop 1.3)",
		Columns: []string{"coterie", "nodes", "quorums", "self-dual", "brute dominated", "consistent", "improvable"},
		Pass:    true,
	}
	cases := []struct {
		name string
		c    *coterie.Coterie
	}{
		{"majority-3", coterie.Majority(3)},
		{"majority-5", coterie.Majority(5)},
		{"majority-7", coterie.Majority(7)},
		{"singleton-5", coterie.Singleton(5, 0)},
		{"star-5", coterie.Star(5, 0)},
		{"star-7", coterie.Star(7, 3)},
		{"wheel-5", coterie.Wheel(5)},
		{"wheel-6", coterie.Wheel(6)},
		{"grid-2x2", coterie.Grid(2, 2)},
		{"grid-3x3", coterie.Grid(3, 3)},
	}
	r := rand.New(rand.NewSource(suiteSeed + 2))
	for i := 0; len(cases) < 14; i++ {
		h := randomCoterieCandidate(r)
		if c, err := coterie.New(h); err == nil {
			cases = append(cases, struct {
				name string
				c    *coterie.Coterie
			}{fmt.Sprintf("random-%d", i), c})
		}
	}
	for _, cs := range cases {
		nd, err := cs.c.IsNonDominated()
		if err != nil {
			t.Pass = false
			continue
		}
		dominated := cs.c.IsDominatedBrute()
		consistent := nd != dominated
		improvable := "-"
		if dominated {
			dom, found, err := cs.c.FindDominating()
			if err != nil || !found || !dom.Dominates(cs.c) {
				consistent = false
			} else {
				improvable = "yes"
			}
		}
		if !consistent {
			t.Pass = false
		}
		t.AddRow(cs.name, cs.c.Universe(), cs.c.NumQuorums(), nd, dominated, consistent, improvable)
	}
	return t
}

func randomCoterieCandidate(r *rand.Rand) *hypergraph.Hypergraph {
	n := 4 + r.Intn(3)
	h := hypergraph.New(n)
	m := 2 + r.Intn(3)
	for i := 0; i < m; i++ {
		var e []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				e = append(e, v)
			}
		}
		if len(e) == 0 {
			e = append(e, r.Intn(n))
		}
		h.AddEdgeElems(e...)
	}
	return h.Minimize()
}
