package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs the full registry: every experiment must
// produce a non-empty table and report PASS. This is the repository's
// executable reproduction claim.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run()
			if tbl == nil {
				t.Fatal("nil table")
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if !tbl.Pass {
				t.Fatalf("experiment failed:\n%s", tbl.String())
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != registry ID %q", tbl.ID, e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("E99 found")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:      "EX",
		Claim:   "demo",
		Columns: []string{"a", "long-column"},
		Pass:    true,
	}
	tbl.AddRow(1, 2.5)
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	for _, want := range []string{"== EX: demo ==", "long-column", "note: a note", "result: PASS"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
	tbl.Pass = false
	if !strings.Contains(tbl.String(), "result: FAIL") {
		t.Error("FAIL not rendered")
	}
}
