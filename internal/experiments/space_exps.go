package experiments

import (
	"fmt"
	"math"
	"strconv"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/logspace"
	"dualspace/internal/space"
)

// labelKey renders a path descriptor as a compact map key without the
// reflection cost of fmt.Sprint.
func labelKey(label []int) string {
	b := make([]byte, 0, 3*len(label))
	for _, x := range label {
		b = strconv.AppendInt(b, int64(x), 10)
		b = append(b, '.')
	}
	return string(b)
}

// E5StrictSpace measures the peak retained workspace of strict-mode
// pathnode across a scaling family and relates it to log²(input size)
// (Lemma 3.1 + Lemma 4.2: pathnode ∈ FDSPACE[log²n]).
func E5StrictSpace() *Table {
	t := &Table{
		ID:      "E5",
		Claim:   "strict pathnode peak bits scale with depth·log n ≤ c·log²(size)",
		Columns: []string{"instance", "size", "depth", "log²size", "strict bits", "bits/log²", "replay bits"},
		Pass:    true,
	}
	for k := 2; k <= 6; k++ {
		g := gen.Matching(k)
		h := gen.DropEdge(gen.MatchingDual(k), 0)
		// Deepest fail path of the instance.
		pi, _, found, err := logspace.FindFailPath(g, h, logspace.Options{})
		if err != nil || !found {
			t.Pass = false
			continue
		}
		size := instanceSize(g.N(), g.M(), h.M())
		log2 := math.Pow(math.Log2(float64(size)), 2)

		strictM := space.NewMeter()
		if _, ok, err := logspace.PathNode(g, h, pi, logspace.Options{Mode: logspace.ModeStrict, Meter: strictM}); err != nil || !ok {
			t.Pass = false
			continue
		}
		replayM := space.NewMeter()
		if _, ok, err := logspace.PathNode(g, h, pi, logspace.Options{Mode: logspace.ModeReplay, Meter: replayM}); err != nil || !ok {
			t.Pass = false
			continue
		}
		ratio := float64(strictM.Peak()) / log2
		t.AddRow(fmt.Sprintf("matching-%d-dropped", k), size, len(pi), fmt.Sprintf("%.1f", log2),
			strictM.Peak(), ratio, replayM.Peak())
	}
	t.Notes = append(t.Notes,
		"size = |V| + |V|·|G| + |V|·|H| (bits of the instance encoding, up to a constant)",
		"the claim holds when bits/log² stays bounded by a constant as the family grows")
	return t
}

// instanceSize estimates the encoded instance size in bits.
func instanceSize(n, gm, hm int) int {
	return n + n*gm + n*hm
}

// E6Decompose checks that the decompose algorithm (Theorem 4.1) lists
// exactly the materialized tree, in every mode, with metered space.
func E6Decompose() *Table {
	t := &Table{
		ID:      "E6",
		Claim:   "decompose(I) lists exactly T(G,H) (Theorem 4.1)",
		Columns: []string{"instance", "tree nodes", "tree edges", "listed V", "listed E", "equal", "strict peak bits"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		a, b := orient(p)
		if b.M() > 8 || a.N() > 12 {
			continue // keep decompose output small
		}
		tree, err := core.BuildTree(a, b)
		if err != nil {
			continue
		}
		nodes, edges := 0, 0
		match := true
		tree.Walk(func(n *core.TreeNode) { nodes++; edges += len(n.Children) })

		meter := space.NewMeter()
		listedV, listedE := 0, 0
		byLabel := map[string]*core.TreeNode{}
		tree.Walk(func(n *core.TreeNode) { byLabel[labelKey(n.Label)] = n })
		err = logspace.Decompose(a, b, logspace.Options{Mode: logspace.ModeStrict, Meter: meter},
			func(attr logspace.Attr) bool {
				listedV++
				node, ok := byLabel[labelKey(attr.Label)]
				if !ok || !attr.S.Equal(node.Info.S) || attr.Mark != node.Info.Mark {
					match = false
				}
				return true
			},
			func(parent, child []int) bool {
				listedE++
				return true
			})
		if err != nil {
			t.Pass = false
			continue
		}
		equal := match && listedV == nodes && listedE == edges
		if !equal {
			t.Pass = false
		}
		t.AddRow(p.Name, nodes, edges, listedV, listedE, equal, meter.Peak())
	}
	return t
}

// E7Certificate exercises the guess-and-check bound (Theorem 5.1, Lemma
// 5.1): fail-path certificates are O(log²n) bits and the checker accepts
// exactly the fail paths.
func E7Certificate() *Table {
	t := &Table{
		ID:      "E7",
		Claim:   "fail-path certificates are ≤ ⌊log₂|H|⌋·⌈log₂|V||G|⌉ bits and verify (Thm 5.1)",
		Columns: []string{"instance", "cert", "cert bits", "bound bits", "verifies", "garbage rejected", "ok"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		if p.Dual {
			continue
		}
		a, b := orient(p)
		pi, _, found, err := logspace.FindFailPath(a, b, logspace.Options{})
		if err != nil || !found {
			t.Pass = false
			continue
		}
		spec := logspace.Certificate(a, b)
		bits := logspace.EncodeCertificate(spec, pi)
		okVerify, _, err := logspace.VerifyFailPath(a, b, pi, logspace.Options{Mode: logspace.ModeStrict})
		if err != nil {
			t.Pass = false
			continue
		}
		garbage, _, err := logspace.VerifyFailPath(a, b, []int{spec.MaxLen*1000 + 17}, logspace.Options{})
		if err != nil {
			t.Pass = false
			continue
		}
		ok := okVerify && !garbage && bits <= spec.TotalBits
		if !ok {
			t.Pass = false
		}
		t.AddRow(p.Name, fmt.Sprint(pi), bits, spec.TotalBits, okVerify, !garbage, ok)
	}
	return t
}

// E8TradeOff measures the time/space tradeoff across the three execution
// modes on tiny instances (Section 3's pipelining pays time for space).
func E8TradeOff() *Table {
	t := &Table{
		ID:      "E8",
		Claim:   "replay is fast/large, strict is mid, pipelined is slow/small",
		Columns: []string{"instance", "mode", "time", "peak bits"},
		Pass:    true,
	}
	instances := []struct {
		name string
		k    int
	}{{"matching-2-dropped", 2}, {"matching-3-dropped", 3}}
	for _, inst := range instances {
		g := gen.Matching(inst.k)
		h := gen.DropEdge(gen.MatchingDual(inst.k), 1)
		pi, _, found, err := logspace.FindFailPath(g, h, logspace.Options{})
		if err != nil || !found {
			t.Pass = false
			continue
		}
		peaks := map[logspace.Mode]int64{}
		times := map[logspace.Mode]float64{}
		for _, mode := range []logspace.Mode{logspace.ModeReplay, logspace.ModeStrict, logspace.ModePipelined} {
			meter := space.NewMeter()
			d := timeIt(func() {
				if _, ok, err := logspace.PathNode(g, h, pi, logspace.Options{Mode: mode, Meter: meter}); err != nil || !ok {
					t.Pass = false
				}
			})
			peaks[mode] = meter.Peak()
			times[mode] = float64(d.Nanoseconds())
			t.AddRow(inst.name, mode.String(), fmtDur(d), meter.Peak())
		}
		// Per-level retained state: strict keeps O(log n) bits where replay
		// keeps |V| extra bits, so strict must peak lower.
		if !(peaks[logspace.ModeStrict] < peaks[logspace.ModeReplay]) {
			t.Pass = false
		}
		// Pipelined pays the Lemma 3.1 price in time (multiplicative per
		// level); its transient frame chain is deeper than strict's, so its
		// space is a constant factor above strict, not below — both are
		// O(log²) while replay is Θ(|V|·depth).
		if !(times[logspace.ModePipelined] > times[logspace.ModeReplay]) {
			t.Pass = false
		}
		if !(peaks[logspace.ModePipelined] < 4*peaks[logspace.ModeStrict]) {
			t.Pass = false
		}
	}
	t.Notes = append(t.Notes,
		"pipelined mode is the literal Lemma 3.1 construction: every query recomputes the whole level chain,",
		"trading a multiplicative-per-level time blowup for caching nothing; its live frame chain keeps it",
		"within a constant factor of strict-mode space, while replay grows with |V| per level")
	return t
}

// E13Inclusion demonstrates Figure 1's new inclusions operationally: the
// certificate check runs within c·log² metered bits (DSPACE[log²n] side)
// and within polynomial time (β₂P side).
func E13Inclusion() *Table {
	t := &Table{
		ID:      "E13",
		Claim:   "certificate checking fits both bounds: metered O(log²) bits and poly time",
		Columns: []string{"instance", "size", "log²size", "check peak bits", "bits/log²", "check time"},
		Pass:    true,
	}
	for k := 2; k <= 5; k++ {
		g := gen.Matching(k)
		h := gen.DropEdge(gen.MatchingDual(k), 0)
		pi, _, found, err := logspace.FindFailPath(g, h, logspace.Options{})
		if err != nil || !found {
			t.Pass = false
			continue
		}
		size := instanceSize(g.N(), g.M(), h.M())
		log2 := math.Pow(math.Log2(float64(size)), 2)
		meter := space.NewMeter()
		var ok bool
		d := timeIt(func() {
			ok, _, err = logspace.VerifyFailPath(g, h, pi, logspace.Options{Mode: logspace.ModeStrict, Meter: meter})
		})
		if err != nil || !ok {
			t.Pass = false
			continue
		}
		t.AddRow(fmt.Sprintf("matching-%d-dropped", k), size, fmt.Sprintf("%.1f", log2),
			meter.Peak(), float64(meter.Peak())/log2, fmtDur(d))
	}
	t.Notes = append(t.Notes,
		"Figure 1 (reproduced): PSPACE ⊇ {DSPACE[log²n], β₂P=GC(log²n,PTIME)} ⊇ GC(log²n,[[LOGSPACE_pol]]^log) ⊇ GC(log²n,LOGSPACE) ⊇ LOGSPACE; PTIME ⊆ β₂P side",
		"the check is simultaneously space-bounded (metered) and fast (poly time): the paper's Theorem 5.2")
	return t
}

// E14Minimalize quantifies the paper's closing remark of §4: turning a
// witness into a *minimal* new transversal needs linear space in |V| (the
// set of eliminated vertices), which for polynomial-size instances
// eventually exceeds the quadratic-logspace budget of the decision itself.
//
// The table has two parts. The measured rows run greedy minimalization on
// dropped-edge threshold instances T(n,2) and verify the extra state is
// exactly |V| bits. The projected rows scale the same family analytically
// (|G| = C(n,2), |H| = n, size ≈ n³/2) to where |V| overtakes c·log²size —
// no tree is needed for the accounting, only the encoding sizes.
func E14Minimalize() *Table {
	t := &Table{
		ID:      "E14",
		Claim:   "witness minimalization needs |V| extra bits (linear), vs log²|I| for the decision",
		Columns: []string{"instance", "|V|", "size", "log²size", "|V|/log²size", "measured"},
		Pass:    true,
	}
	addRow := func(n int, measured bool) {
		gm := n * (n - 1) / 2
		hm := n
		size := instanceSize(n, gm, hm)
		log2 := math.Pow(math.Log2(float64(size)), 2)
		t.AddRow(fmt.Sprintf("threshold-%d-2-dropped", n), n, size,
			fmt.Sprintf("%.1f", log2), float64(n)/log2, measured)
	}
	// Measured: run the minimalization and verify the witness and the
	// |V|-bit bookkeeping claim concretely.
	for _, n := range []int{5, 7, 9} {
		g := gen.Threshold(n, 2)
		h := gen.DropEdge(gen.ThresholdDual(n, 2), 0)
		res, err := core.TrSubset(g, h)
		if err != nil || res.Dual {
			t.Pass = false
			continue
		}
		m := g.MinimalizeTransversal(res.Witness)
		if !g.IsMinimalTransversal(m) || h.ContainsEdge(m) {
			t.Pass = false
			continue
		}
		addRow(n, true)
	}
	// Projected: the crossover where the linear cost dominates.
	for _, n := range []int{100, 1000, 10000, 100000} {
		addRow(n, false)
	}
	t.Notes = append(t.Notes,
		"the |V|/log²size column crosses 1 around n≈10³ for this polynomial-dual family:",
		"greedy minimalization does not fit the quadratic-logspace budget at scale,",
		"matching the open question stated after Corollary 4.1")
	return t
}
