package experiments

import (
	"dualspace/internal/core"
	"dualspace/internal/gen"
)

// E15Orientation ablates the paper's |H| ≤ |G| convention: the
// decomposition tree is built in both orientations and the work compared.
// Verdicts must agree (tr(A) ⊆ B ⟺ tr(B) ⊆ A for simple cross-intersecting
// pairs, by involution); the node counts show why Boros–Makino put the
// smaller family in the H role, whose size controls the tree depth.
func E15Orientation() *Table {
	t := &Table{
		ID:      "E15",
		Claim:   "ablation: |H| ≤ |G| orientation vs the reverse (same verdicts, different work)",
		Columns: []string{"instance", "|G|/|H| roles", "nodes (paper)", "depth", "nodes (reversed)", "depth", "agree"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		if p.G.M() == 0 || p.H.M() == 0 || p.G.HasEmptyEdge() || p.H.HasEmptyEdge() {
			continue
		}
		if p.G.M() == p.H.M() {
			continue // orientation is a no-op
		}
		a, b := orient(p)
		paper, err := core.TrSubset(a, b)
		if err != nil {
			t.Pass = false
			continue
		}
		reversed, err := core.TrSubset(b, a)
		if err != nil {
			t.Pass = false
			continue
		}
		agree := paper.Dual == reversed.Dual
		if !agree {
			t.Pass = false
		}
		t.AddRow(p.Name, roleString(a.M(), b.M()), paper.Stats.Nodes, paper.Stats.MaxDepth,
			reversed.Stats.Nodes, reversed.Stats.MaxDepth, agree)
	}
	t.Notes = append(t.Notes,
		"verdict agreement across orientations is itself a theorem (duality is an involution);",
		"the reversed orientation's depth bound is ⌊log₂|G|⌋, usually worse — the convention matters for work, not correctness")
	return t
}

func roleString(gm, hm int) string {
	return itoa(gm) + "/" + itoa(hm)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var digits []byte
	for x > 0 {
		digits = append([]byte{byte('0' + x%10)}, digits...)
		x /= 10
	}
	return string(digits)
}

// E16Structure maps the §6 tractability frontier over the suite: which
// instances are α-acyclic (hypertree width 1 — DUAL is tractable there)
// and what their degeneracy is, next to the work the general-purpose tree
// actually did. The paper's future-work section asks for decompositions
// between these islands and the general case.
func E16Structure() *Table {
	t := &Table{
		ID:      "E16",
		Claim:   "§6 frontier: α-acyclicity and degeneracy of the suite's G sides",
		Columns: []string{"instance", "α-acyclic(G)", "degeneracy(G)", "tree nodes", "dual"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		if p.G.M() == 0 || p.H.M() == 0 || p.G.HasEmptyEdge() || p.H.HasEmptyEdge() {
			continue
		}
		a, b := orient(p)
		res, err := core.TrSubset(a, b)
		if err != nil {
			t.Pass = false
			continue
		}
		// Consistency of the recognizers: a covered hypergraph (an edge
		// containing all others' vertices) must be acyclic; single-edge
		// hypergraphs must be acyclic with degeneracy 1. Checked globally in
		// the hypergraph tests; here the recognizers just annotate.
		dual := res.Dual == p.Dual
		if !dual {
			t.Pass = false
		}
		t.AddRow(p.Name, p.G.IsAcyclic(), p.G.Degeneracy(), res.Stats.Nodes, dual)
	}
	t.Notes = append(t.Notes,
		"α-acyclic G (= hypertree width 1) is the paper's cited tractable class [9];",
		"bounded hypertree width ≥ 2 provably does not help [8], so the degeneracy column is the finer lens")
	return t
}
