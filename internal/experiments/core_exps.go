package experiments

import (
	"fmt"
	"math"
	"time"

	"dualspace/internal/core"
	"dualspace/internal/fkdual"
	"dualspace/internal/gen"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// suiteSeed fixes the instance suite for all experiments.
const suiteSeed = 2013 // the paper's year

func floorLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(x))))
}

// E1Correctness cross-checks the duality verdict of the Boros–Makino
// engine against ground truth, Fredman–Khachiyan A/B and Berge-based
// comparison on the full instance suite (Proposition 2.1(1)).
func E1Correctness() *Table {
	t := &Table{
		ID:      "E1",
		Claim:   "H = tr(G) iff all leaves of T(G,H) are done (Prop 2.1(1))",
		Columns: []string{"instance", "|V|", "|G|", "|H|", "truth", "bm", "fkA", "fkB", "berge", "agree"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		bm, err := core.Decide(p.G, p.H)
		if err != nil {
			t.Pass = false
			t.AddRow(p.Name, p.G.N(), p.G.M(), p.H.M(), p.Dual, "err:"+err.Error(), "", "", "", false)
			continue
		}
		fa, err := fkdual.DecideA(p.G, p.H)
		if err != nil {
			t.Pass = false
			continue
		}
		fb, err := fkdual.DecideB(p.G, p.H)
		if err != nil {
			t.Pass = false
			continue
		}
		berge := transversal.Berge(p.G).EqualAsFamily(p.H)
		agree := bm.Dual == p.Dual && fa.Dual == p.Dual && fb.Dual == p.Dual && berge == p.Dual
		if !agree {
			t.Pass = false
		}
		t.AddRow(p.Name, p.G.N(), p.G.M(), p.H.M(), p.Dual, bm.Dual, fa.Dual, fb.Dual, berge, agree)
	}
	t.Notes = append(t.Notes, "truth = construction/enumeration ground truth; all four engines must match it")
	return t
}

// E2Depth verifies the ⌊log₂|H|⌋ depth bound of the decomposition tree
// (Proposition 2.1(2)).
func E2Depth() *Table {
	t := &Table{
		ID:      "E2",
		Claim:   "depth of T(G,H) ≤ ⌊log₂|H|⌋ (Prop 2.1(2))",
		Columns: []string{"instance", "|H-role|", "bound", "observed", "ok"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		a, b := orient(p)
		res, err := core.TrSubset(a, b)
		if err != nil {
			continue // constants have no tree
		}
		bound := floorLog2(b.M())
		ok := res.Stats.MaxDepth <= bound
		if !ok {
			t.Pass = false
		}
		t.AddRow(p.Name, b.M(), bound, res.Stats.MaxDepth, ok)
	}
	t.Notes = append(t.Notes, "tree oriented so the smaller family plays H, per the paper's |H| ≤ |G| convention")
	return t
}

// E3Branching verifies κ(α) ≤ |V|·|G| (Proposition 2.1(3)).
func E3Branching() *Table {
	t := &Table{
		ID:      "E3",
		Claim:   "κ(α) ≤ |V|·|G| (Prop 2.1(3))",
		Columns: []string{"instance", "|V|·|G|", "max κ(α)", "ok"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		a, b := orient(p)
		res, err := core.TrSubset(a, b)
		if err != nil {
			continue
		}
		bound := a.N() * a.M()
		ok := res.Stats.MaxChildren <= bound
		if !ok {
			t.Pass = false
		}
		t.AddRow(p.Name, bound, res.Stats.MaxChildren, ok)
	}
	return t
}

// E4Witness validates every fail-leaf witness on the non-dual instances
// (Proposition 2.1(4) and Corollary 4.1(2)).
func E4Witness() *Table {
	t := &Table{
		ID:      "E4",
		Claim:   "every fail leaf carries a new transversal of G w.r.t. H (Prop 2.1(4))",
		Columns: []string{"instance", "fail leaves", "valid witnesses", "co-witnesses", "min'd new", "ok"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		if p.Dual {
			continue
		}
		a, b := orient(p)
		tree, err := core.BuildTree(a, b)
		if err != nil {
			continue
		}
		fails, valid, cow, minNew := 0, 0, 0, 0
		tree.Walk(func(n *core.TreeNode) {
			if n.Info.Mark != core.MarkFail {
				return
			}
			fails++
			if a.IsNewTransversal(n.Info.T, b) {
				valid++
			}
			if b.IsNewTransversal(n.Info.T.Complement(), a) {
				cow++
			}
			m := a.MinimalizeTransversal(n.Info.T)
			if !b.ContainsEdge(m) {
				minNew++
			}
		})
		ok := fails > 0 && valid == fails && cow == fails && minNew == fails
		if !ok {
			t.Pass = false
		}
		t.AddRow(p.Name, fails, valid, cow, minNew, ok)
	}
	t.Notes = append(t.Notes,
		"co-witness: the complement of a fail witness is a new transversal in the opposite orientation",
		"min'd new: greedy minimalization yields a minimal transversal absent from the H-role family")
	return t
}

// E9Baselines compares wall-clock runtimes of the engines on dual
// instances, reproducing the qualitative landscape the paper's "known
// complexity results" section describes.
func E9Baselines() *Table {
	t := &Table{
		ID:      "E9",
		Claim:   "runtime landscape: BM tree vs FK-A vs FK-B vs Berge re-enumeration",
		Columns: []string{"instance", "|V|", "|G|", "|H|", "bm", "fkA", "fkB", "berge", "fastest"},
		Pass:    true,
	}
	for _, p := range gen.Families(suiteSeed) {
		if !p.Dual {
			continue
		}
		times := map[string]time.Duration{}
		times["bm"] = timeIt(func() {
			if res, _ := core.Decide(p.G, p.H); res == nil || !res.Dual {
				t.Pass = false
			}
		})
		times["fkA"] = timeIt(func() {
			if res, _ := fkdual.DecideA(p.G, p.H); res == nil || !res.Dual {
				t.Pass = false
			}
		})
		times["fkB"] = timeIt(func() {
			if res, _ := fkdual.DecideB(p.G, p.H); res == nil || !res.Dual {
				t.Pass = false
			}
		})
		times["berge"] = timeIt(func() {
			if !transversal.Berge(p.G).EqualAsFamily(p.H) {
				t.Pass = false
			}
		})
		best, bestD := "", time.Duration(math.MaxInt64)
		for _, name := range []string{"bm", "fkA", "fkB", "berge"} {
			if times[name] < bestD {
				best, bestD = name, times[name]
			}
		}
		t.AddRow(p.Name, p.G.N(), p.G.M(), p.H.M(),
			fmtDur(times["bm"]), fmtDur(times["fkA"]), fmtDur(times["fkB"]), fmtDur(times["berge"]), best)
	}
	t.Notes = append(t.Notes,
		"absolute numbers are machine-dependent; the reproducible shape is the per-family ranking")
	return t
}

// orient returns the pair with the smaller family in the H role, the
// paper's |H| ≤ |G| convention for the decomposition tree.
func orient(p gen.Pair) (a, b *hypergraph.Hypergraph) {
	if p.H.M() > p.G.M() {
		return p.H, p.G
	}
	return p.G, p.H
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.String()
	}
}
