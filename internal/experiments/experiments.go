// Package experiments implements the reproduction experiments indexed in
// DESIGN.md §3: every claim of Gottlob (PODS 2013) with observable content
// is turned into a function that regenerates a result table. The paper has
// no empirical tables of its own (it is a theory paper); the "shape" the
// experiments reproduce is that every proven bound holds on every instance
// and every equivalence agrees with independent baselines, plus the
// time/space tradeoffs the theory predicts.
//
// cmd/dualbench prints these tables; bench_test.go at the module root
// exposes one testing.B benchmark per experiment; EXPERIMENTS.md records
// the measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a formatted experiment result.
type Table struct {
	// ID is the experiment identifier (E1..E14).
	ID string
	// Claim is the paper claim under test.
	Claim string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows (stringified).
	Rows [][]string
	// Notes carry free-form commentary (bounds, pass/fail summary).
	Notes []string
	// Pass summarizes whether every row met the claim.
	Pass bool
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format writes an aligned text rendering.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
	status := "PASS"
	if !t.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "  result: %s\n\n", status)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

func pad(s string, w int) string {
	if r := utf8.RuneCountInString(s); r < w {
		return s + strings.Repeat(" ", w-r)
	}
	return s
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// Registry lists all experiments in DESIGN.md order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Prop 2.1(1): duality verdict agreement across engines", E1Correctness},
		{"E2", "Prop 2.1(2): tree depth ≤ ⌊log₂|H|⌋", E2Depth},
		{"E3", "Prop 2.1(3): branching κ(α) ≤ |V|·|G|", E3Branching},
		{"E4", "Prop 2.1(4)/Cor 4.1(2): fail witnesses are new transversals", E4Witness},
		{"E5", "Lemma 3.1/4.2: strict pathnode peak space is Θ(log²)-per-instance", E5StrictSpace},
		{"E6", "Theorem 4.1: decompose lists exactly T(G,H)", E6Decompose},
		{"E7", "Theorem 5.1/Lemma 5.1: O(log²n)-bit fail certificates verify", E7Certificate},
		{"E8", "§3–§5: time/space tradeoff across execution modes", E8TradeOff},
		{"E9", "§1 background: BM vs FK-A vs FK-B vs Berge runtimes", E9Baselines},
		{"E10", "Prop 1.1: border mining and identification via DUAL", E10Mining},
		{"E11", "Prop 1.2: additional keys via DUAL", E11Keys},
		{"E12", "Prop 1.3: coterie non-domination via self-duality", E12Coteries},
		{"E13", "Figure 1: measured inclusion GC(log²n,·) ⊆ DSPACE[log²n] ∩ β₂P", E13Inclusion},
		{"E14", "§4 remark: witness minimalization needs linear space", E14Minimalize},
		{"E15", "ablation: the |H| ≤ |G| orientation convention", E15Orientation},
		{"E16", "§6 frontier: α-acyclicity and degeneracy across the suite", E16Structure},
		{"E17", "§1: incremental enumeration delay via the duality oracle", E17Delay},
		{"E18", "§1: Armstrong relations through dualization", E18Armstrong},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
