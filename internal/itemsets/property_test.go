package itemsets

import (
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
)

// TestPropertyBorderCoverage checks the defining property of the borders:
// an itemset is frequent iff it is contained in some maximal frequent set,
// and infrequent iff it contains some minimal infrequent set — for every
// itemset of the lattice.
func TestPropertyBorderCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(4)
		rows := 3 + r.Intn(8)
		d := GenerateRandom(r, n, rows, 0.3+r.Float64()*0.3)
		z := 1 + r.Intn(rows)
		b, err := ComputeBorders(d, z)
		if err != nil {
			t.Fatal(err)
		}
		for mask := 0; mask < 1<<uint(n); mask++ {
			u := bitset.New(n)
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					u.Add(i)
				}
			}
			frequent := d.IsFrequent(u, z)
			coveredAbove := false
			for _, h := range b.MaxFrequent.Edges() {
				if u.SubsetOf(h) {
					coveredAbove = true
					break
				}
			}
			coveredBelow := b.MinInfrequent.ContainsEdgeSubsetOf(u)
			if frequent != coveredAbove {
				t.Fatalf("trial %d: %v frequent=%v but coveredAbove=%v", trial, u, frequent, coveredAbove)
			}
			if frequent == coveredBelow {
				t.Fatalf("trial %d: %v frequent=%v but coveredBelow=%v", trial, u, frequent, coveredBelow)
			}
		}
	}
}

// TestPropertyBordersAreAntichains: IS+ and IS− are always simple
// hypergraphs (antichains), and every member verifies its membership
// predicate.
func TestPropertyBordersAreAntichains(t *testing.T) {
	r := rand.New(rand.NewSource(137))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(5)
		rows := 3 + r.Intn(10)
		d := GenerateRandom(r, n, rows, 0.4)
		z := 1 + r.Intn(rows)
		b, err := ComputeBorders(d, z)
		if err != nil {
			t.Fatal(err)
		}
		if !b.MaxFrequent.IsSimple() || !b.MinInfrequent.IsSimple() {
			t.Fatalf("trial %d: borders not antichains", trial)
		}
		for _, h := range b.MaxFrequent.Edges() {
			if !d.IsMaximalFrequent(h, z) {
				t.Fatalf("trial %d: %v not maximal frequent", trial, h)
			}
		}
		for _, g := range b.MinInfrequent.Edges() {
			if !d.IsMinimalInfrequent(g, z) {
				t.Fatalf("trial %d: %v not minimal infrequent", trial, g)
			}
		}
	}
}

// TestPropertyFrequencyAntimonotone: frequency is antimonotone under
// inclusion — the lattice property all border reasoning rests on.
func TestPropertyFrequencyAntimonotone(t *testing.T) {
	r := rand.New(rand.NewSource(139))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(8)
		d := GenerateRandom(r, n, 2+r.Intn(12), 0.5)
		u := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				u.Add(v)
			}
		}
		w := u.Clone()
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				w.Add(v)
			}
		}
		if d.Frequency(w) > d.Frequency(u) {
			t.Fatalf("antimonotonicity violated: f(%v)=%d > f(%v)=%d",
				w, d.Frequency(w), u, d.Frequency(u))
		}
	}
}
