package itemsets

import (
	"context"
	"dualspace/internal/engine"
	"errors"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
)

// tinyDataset is the worked example used across the tests:
// items {0,1,2,3}, 6 rows.
func tinyDataset() *Dataset {
	d := NewDataset(4)
	d.AddRow(0, 1, 2)
	d.AddRow(0, 1)
	d.AddRow(0, 1, 3)
	d.AddRow(2, 3)
	d.AddRow(0, 2)
	d.AddRow(1, 2, 3)
	return d
}

func TestFrequency(t *testing.T) {
	d := tinyDataset()
	mk := func(items ...int) bitset.Set { return bitset.FromSlice(4, items) }
	cases := []struct {
		u    bitset.Set
		want int
	}{
		{mk(), 6},
		{mk(0), 4},
		{mk(0, 1), 3},
		{mk(0, 1, 2), 1},
		{mk(3), 3},
		{mk(0, 3), 1},
		{mk(0, 1, 2, 3), 0},
	}
	for i, c := range cases {
		if got := d.Frequency(c.u); got != c.want {
			t.Errorf("case %d: f(%v) = %d, want %d", i, c.u, got, c.want)
		}
	}
	// Strict threshold semantics: frequent iff f(U) > z.
	if !d.IsFrequent(mk(0), 3) {
		t.Error("f=4 > z=3 should be frequent")
	}
	if d.IsFrequent(mk(0), 4) {
		t.Error("f=4 > z=4 is false; must be infrequent")
	}
}

func TestBorderPredicates(t *testing.T) {
	d := tinyDataset()
	z := 2
	mk := func(items ...int) bitset.Set { return bitset.FromSlice(4, items) }
	// f({0,1}) = 3 > 2 frequent; adding any item drops below.
	if !d.IsMaximalFrequent(mk(0, 1), z) {
		t.Error("{0,1} should be maximal frequent at z=2")
	}
	if d.IsMaximalFrequent(mk(0), z) {
		t.Error("{0} is frequent but not maximal")
	}
	if d.IsMaximalFrequent(mk(0, 3), z) {
		t.Error("{0,3} is infrequent")
	}
	// f({0,3}) = 1 ≤ 2 infrequent; {0} and {3} both frequent.
	if !d.IsMinimalInfrequent(mk(0, 3), z) {
		t.Error("{0,3} should be minimal infrequent")
	}
	if d.IsMinimalInfrequent(mk(0, 1, 3), z) {
		t.Error("{0,1,3} contains infrequent {0,3}")
	}
}

func TestThresholdValidation(t *testing.T) {
	d := tinyDataset()
	for _, z := range []int{0, -1, 7} {
		if _, err := ComputeBorders(d, z); err == nil {
			t.Errorf("threshold %d accepted", z)
		}
		if _, err := BordersApriori(d, z); err == nil {
			t.Errorf("apriori threshold %d accepted", z)
		}
		if _, err := Identify(d, z, hypergraph.New(4), hypergraph.New(4)); err == nil {
			t.Errorf("identify threshold %d accepted", z)
		}
	}
}

func TestBordersAgreeTiny(t *testing.T) {
	d := tinyDataset()
	for z := 1; z <= 6; z++ {
		brute, err := BordersBrute(d, z)
		if err != nil {
			t.Fatal(err)
		}
		da, err := ComputeBorders(d, z)
		if err != nil {
			t.Fatalf("z=%d: %v", z, err)
		}
		ap, err := BordersApriori(d, z)
		if err != nil {
			t.Fatal(err)
		}
		if !da.MaxFrequent.EqualAsFamily(brute.MaxFrequent) {
			t.Errorf("z=%d: D&A IS+ %v != brute %v", z, da.MaxFrequent, brute.MaxFrequent)
		}
		if !da.MinInfrequent.EqualAsFamily(brute.MinInfrequent) {
			t.Errorf("z=%d: D&A IS− %v != brute %v", z, da.MinInfrequent, brute.MinInfrequent)
		}
		if !ap.MaxFrequent.EqualAsFamily(brute.MaxFrequent) || !ap.MinInfrequent.EqualAsFamily(brute.MinInfrequent) {
			t.Errorf("z=%d: apriori disagrees with brute", z)
		}
	}
}

func TestBordersRandom(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(5)
		rows := 4 + r.Intn(10)
		d := GenerateRandom(r, n, rows, 0.3+r.Float64()*0.4)
		z := 1 + r.Intn(rows)
		brute, err := BordersBrute(d, z)
		if err != nil {
			t.Fatal(err)
		}
		da, err := ComputeBorders(d, z)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !da.MaxFrequent.EqualAsFamily(brute.MaxFrequent) || !da.MinInfrequent.EqualAsFamily(brute.MinInfrequent) {
			t.Fatalf("trial %d (n=%d rows=%d z=%d): D&A disagrees with brute", trial, n, rows, z)
		}
		// The fundamental identity IS− = tr((IS+)ᶜ).
		okID, err := VerifyBorderIdentity(da)
		if err != nil {
			t.Fatal(err)
		}
		if !okID {
			t.Fatalf("trial %d: border identity violated", trial)
		}
		// Oracle-call accounting: 1 + |IS+| + |IS−| checks suffice... allow
		// the +1 bootstrap slack.
		if da.DualityChecks > da.MaxFrequent.M()+da.MinInfrequent.M()+2 {
			t.Errorf("trial %d: %d duality checks for %d border elements",
				trial, da.DualityChecks, da.MaxFrequent.M()+da.MinInfrequent.M())
		}
	}
}

func TestBordersDegenerate(t *testing.T) {
	// Every row empty: nothing nonempty is frequent; ∅ is frequent iff
	// z < rows.
	d := NewDataset(3)
	d.AddRow()
	d.AddRow()
	b, err := ComputeBorders(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// f(∅)=2 > 1: frequent; every singleton has f=0: infrequent.
	if b.MaxFrequent.M() != 1 || !b.MaxFrequent.Edge(0).IsEmpty() {
		t.Errorf("IS+ = %v, want {∅}", b.MaxFrequent)
	}
	if b.MinInfrequent.M() != 3 {
		t.Errorf("IS− = %v, want the three singletons", b.MinInfrequent)
	}
	// z = rows: nothing frequent, IS− = {∅}.
	b2, err := ComputeBorders(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.MaxFrequent.M() != 0 || b2.MinInfrequent.M() != 1 || !b2.MinInfrequent.Edge(0).IsEmpty() {
		t.Errorf("degenerate borders: %v / %v", b2.MaxFrequent, b2.MinInfrequent)
	}

	// Full itemset frequent: IS+ = {full}, IS− = ∅.
	full := NewDataset(3)
	full.AddRow(0, 1, 2)
	full.AddRow(0, 1, 2)
	b3, err := ComputeBorders(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b3.MaxFrequent.M() != 1 || b3.MaxFrequent.Edge(0).Len() != 3 || b3.MinInfrequent.M() != 0 {
		t.Errorf("full-set borders: %v / %v", b3.MaxFrequent, b3.MinInfrequent)
	}
}

func TestIdentify(t *testing.T) {
	d := tinyDataset()
	z := 2
	brute, err := BordersBrute(d, z)
	if err != nil {
		t.Fatal(err)
	}

	// Complete claims verify.
	res, err := Identify(d, z, brute.MinInfrequent, brute.MaxFrequent)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("complete borders not recognized: %+v", res)
	}

	// Remove one maximal frequent set: incomplete with a concrete witness.
	if brute.MaxFrequent.M() >= 2 {
		partial := hypergraph.New(4)
		for j := 1; j < brute.MaxFrequent.M(); j++ {
			partial.AddEdge(brute.MaxFrequent.Edge(j))
		}
		res, err := Identify(d, z, brute.MinInfrequent, partial)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			t.Fatal("incomplete IS+ accepted")
		}
		if res.NewMaxFrequent == nil && res.NewMinInfrequent == nil {
			t.Fatalf("no witness produced: %+v", res)
		}
		if res.NewMaxFrequent != nil {
			if !d.IsMaximalFrequent(*res.NewMaxFrequent, z) {
				t.Error("witness is not maximal frequent")
			}
			if partial.ContainsEdge(*res.NewMaxFrequent) {
				t.Error("witness already claimed")
			}
		}
		if res.NewMinInfrequent != nil {
			if !d.IsMinimalInfrequent(*res.NewMinInfrequent, z) {
				t.Error("witness is not minimal infrequent")
			}
			if brute.MinInfrequent.ContainsEdge(*res.NewMinInfrequent) {
				t.Error("IS− witness already known — claims were complete on that side")
			}
		}
	}

	// Bogus claims are flagged.
	bogusMax := hypergraph.MustFromEdges(4, [][]int{{0, 3}}) // infrequent
	res, err = Identify(d, z, hypergraph.New(4), bogusMax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BadMaxClaim != 0 {
		t.Errorf("bogus IS+ claim not flagged: %+v", res)
	}
	bogusMin := hypergraph.MustFromEdges(4, [][]int{{0}}) // frequent
	res, err = Identify(d, z, bogusMin, hypergraph.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BadMinClaim != 0 {
		t.Errorf("bogus IS− claim not flagged: %+v", res)
	}
}

func TestIdentifyRandomIncremental(t *testing.T) {
	// Drive identification as the paper describes: start from partial
	// borders, repeatedly ask Identify, add its witness, and verify the
	// loop closes exactly at the brute-force borders.
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(4)
		rows := 4 + r.Intn(8)
		d := GenerateRandom(r, n, rows, 0.4)
		z := 1 + r.Intn(rows)
		brute, err := BordersBrute(d, z)
		if err != nil {
			t.Fatal(err)
		}
		g := hypergraph.New(n)
		h := hypergraph.New(n)
		steps := 0
		for {
			res, err := Identify(d, z, g, h)
			if err != nil {
				t.Fatal(err)
			}
			if res.BadMaxClaim >= 0 || res.BadMinClaim >= 0 {
				t.Fatalf("trial %d: valid incremental claim flagged: %+v", trial, res)
			}
			if res.Complete {
				break
			}
			switch {
			case res.NewMaxFrequent != nil:
				h.AddEdge(*res.NewMaxFrequent)
			case res.NewMinInfrequent != nil:
				g.AddEdge(*res.NewMinInfrequent)
			default:
				t.Fatalf("trial %d: incomplete but no witness", trial)
			}
			steps++
			if steps > 1<<uint(n+1) {
				t.Fatalf("trial %d: loop does not converge", trial)
			}
		}
		if !h.EqualAsFamily(brute.MaxFrequent) || !g.EqualAsFamily(brute.MinInfrequent) {
			t.Fatalf("trial %d: incremental loop converged to wrong borders", trial)
		}
	}
}

func TestGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	d := GenerateRandom(r, 10, 50, 0.3)
	if d.NumItems() != 10 || d.NumRows() != 50 {
		t.Fatal("GenerateRandom shape wrong")
	}
	p := GeneratePlanted(r, 10, 100, [][]int{{0, 1, 2}, {5, 6}}, 0.1, 0.05)
	if p.NumRows() != 100 {
		t.Fatal("GeneratePlanted shape wrong")
	}
	// Planted patterns should be much more frequent than random triples.
	pat := bitset.FromSlice(10, []int{0, 1, 2})
	other := bitset.FromSlice(10, []int{3, 4, 7})
	if p.Frequency(pat) <= p.Frequency(other) {
		t.Errorf("planted pattern freq %d not above background %d", p.Frequency(pat), p.Frequency(other))
	}
}

func TestItemNames(t *testing.T) {
	d := NewDataset(2)
	if d.ItemName(1) != "i1" {
		t.Error("default names wrong")
	}
	if err := d.SetItemNames([]string{"milk"}); err == nil {
		t.Error("name arity accepted")
	}
	if err := d.SetItemNames([]string{"milk", "bread"}); err != nil {
		t.Fatal(err)
	}
	if d.ItemName(1) != "bread" {
		t.Error("names not applied")
	}
}

// Regression: IdentifyWith's claim-verification loops run before any engine
// dispatch and must honour cancellation themselves. The claimed maximal
// frequent set below is bogus, so an unpolled loop would report it
// (res.BadMaxClaim = 0, nil error) instead of failing with the context's
// error — the engine never gets a chance to notice the dead context.
func TestIdentifyWithCancelledContext(t *testing.T) {
	d := tinyDataset()
	z := 2
	brute, err := BordersBrute(d, z)
	if err != nil {
		t.Fatal(err)
	}
	bogus := hypergraph.New(4)
	bogus.AddEdge(bitset.Full(4)) // the full itemset is infrequent at z=2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := IdentifyWith(ctx, d, z, brute.MinInfrequent, bogus, engine.Default()); !errors.Is(err, context.Canceled) {
		t.Fatalf("IdentifyWith with cancelled ctx: got err %v, want context.Canceled", err)
	}
}
