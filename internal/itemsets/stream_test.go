package itemsets

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/engine"
	"dualspace/internal/hypergraph"
)

// randomDataset builds a small random transaction database.
func randomDataset(r *rand.Rand, items, rows int) *Dataset {
	d := NewDataset(items)
	for i := 0; i < rows; i++ {
		var row []int
		for v := 0; v < items; v++ {
			if r.Intn(2) == 0 {
				row = append(row, v)
			}
		}
		d.AddRow(row...)
	}
	return d
}

// TestComputeBordersStreamMatchesFinal: the streamed events, accumulated,
// must be exactly the returned borders — same elements, same order of
// discovery as the hypergraph edge order, non-decreasing check counter.
func TestComputeBordersStreamMatchesFinal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r, 4+int(seed%3), 6)
		z := 1 + r.Intn(d.NumRows())

		gotMax := hypergraph.New(d.NumItems())
		gotMin := hypergraph.New(d.NumItems())
		lastCheck := 0
		b, err := ComputeBordersStreamWith(context.Background(), d, z, engine.Default(),
			func(ev BorderEvent) error {
				if ev.DualityChecks < lastCheck {
					t.Fatalf("seed %d: check counter regressed %d -> %d", seed, lastCheck, ev.DualityChecks)
				}
				lastCheck = ev.DualityChecks
				if ev.MaxFrequent {
					gotMax.AddEdge(ev.Set.Clone())
				} else {
					gotMin.AddEdge(ev.Set.Clone())
				}
				return nil
			})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !gotMax.EqualAsFamily(b.MaxFrequent) || !gotMin.EqualAsFamily(b.MinInfrequent) {
			t.Fatalf("seed %d: streamed borders differ from returned borders", seed)
		}
		// And from the brute-force oracle.
		want, err := BordersBrute(d, z)
		if err != nil {
			t.Fatal(err)
		}
		if !gotMax.Canonical().EqualAsFamily(want.MaxFrequent) ||
			!gotMin.Canonical().EqualAsFamily(want.MinInfrequent) {
			t.Fatalf("seed %d: streamed borders differ from brute force", seed)
		}
	}
}

// TestComputeBordersStreamAbort: a callback error aborts the mining and
// surfaces unchanged.
func TestComputeBordersStreamAbort(t *testing.T) {
	d := NewDataset(4)
	d.AddRow(0, 1)
	d.AddRow(0, 1)
	d.AddRow(2, 3)
	sentinel := errors.New("stop here")
	calls := 0
	_, err := ComputeBordersStreamWith(context.Background(), d, 1, engine.Default(),
		func(BorderEvent) error {
			calls++
			return sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after aborting", calls)
	}
}

// TestComputeBordersStreamDegenerate: the empty-itemset-infrequent case
// still streams its single border element.
func TestComputeBordersStreamDegenerate(t *testing.T) {
	d := NewDataset(3)
	d.AddRow(0)
	var events []BorderEvent
	b, err := ComputeBordersStreamWith(context.Background(), d, 1, engine.Default(),
		func(ev BorderEvent) error {
			events = append(events, BorderEvent{ev.MaxFrequent, ev.Set.Clone(), ev.DualityChecks})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].MaxFrequent || !events[0].Set.Equal(bitset.New(3)) {
		t.Fatalf("events = %+v", events)
	}
	if b.MinInfrequent.M() != 1 || b.MaxFrequent.M() != 0 {
		t.Fatalf("borders = %d/%d", b.MaxFrequent.M(), b.MinInfrequent.M())
	}
}
