package itemsets

import (
	"math/rand"

	"dualspace/internal/bitset"
)

// GenerateRandom returns a dataset of nRows transactions over nItems items,
// each item present independently with probability density. Seeded and
// reproducible; the synthetic substitute for proprietary market-basket data
// (see DESIGN.md, substitutions).
func GenerateRandom(r *rand.Rand, nItems, nRows int, density float64) *Dataset {
	d := NewDataset(nItems)
	for i := 0; i < nRows; i++ {
		row := bitset.New(nItems)
		for v := 0; v < nItems; v++ {
			if r.Float64() < density {
				row.Add(v)
			}
		}
		d.rows = append(d.rows, row)
	}
	return d
}

// GeneratePlanted returns a dataset in which each transaction is built from
// a randomly chosen planted pattern (a fixed itemset) with per-item dropout
// and background noise. Planted patterns give the mining experiments known
// high-frequency structure.
func GeneratePlanted(r *rand.Rand, nItems, nRows int, patterns [][]int, dropout, noise float64) *Dataset {
	d := NewDataset(nItems)
	sets := make([]bitset.Set, len(patterns))
	for i, p := range patterns {
		sets[i] = bitset.FromSlice(nItems, p)
	}
	for i := 0; i < nRows; i++ {
		row := bitset.New(nItems)
		if len(sets) > 0 {
			pat := sets[r.Intn(len(sets))]
			pat.ForEach(func(v int) bool {
				if r.Float64() >= dropout {
					row.Add(v)
				}
				return true
			})
		}
		for v := 0; v < nItems; v++ {
			if r.Float64() < noise {
				row.Add(v)
			}
		}
		d.rows = append(d.rows, row)
	}
	return d
}
