// Package itemsets implements the data-mining application of the DUAL
// problem (Gottlob, PODS 2013, §1 and Proposition 1.1): identifying the
// maximal frequent itemsets IS+ and minimal infrequent itemsets IS− of a
// Boolean-valued relation.
//
// Definitions follow the paper exactly: for a relation M over item set S
// and threshold z with 0 < z ≤ |M|, the frequency f(U) of an itemset
// U ⊆ S is the number of tuples whose item set contains U; U is frequent
// iff f(U) > z (strictly) and infrequent otherwise. IS+ is the family of
// maximal frequent itemsets, IS− the minimal infrequent ones, and the
// fundamental identity of Gunopulos et al. [26] states IS− = tr((IS+)ᶜ).
//
// Two algorithms are provided on top of that identity:
//
//   - Borders runs the incremental "dualize and advance" loop the paper
//     describes: keep candidate families G ⊆ IS− and H ⊆ IS+, test
//     G = tr(Hᶜ) with the duality engine, and convert each negative
//     verdict (precondition violation or new transversal) into a new
//     verified border element.
//   - Identify solves MaxFreq-MinInfreq-Identification: given claimed
//     G and H, decide whether they are complete (Proposition 1.1 reduces
//     this to DUAL), reporting a counterexample itemset when they are not.
//
// BordersApriori and BordersBrute provide independent baselines.
package itemsets

import (
	"context"
	"errors"
	"fmt"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/hypergraph"
)

// Dataset is a Boolean-valued relation: each row is the set of items (of a
// fixed item universe) present in one tuple.
type Dataset struct {
	nItems int
	rows   []bitset.Set
	names  []string
}

// NewDataset returns an empty dataset over nItems items.
func NewDataset(nItems int) *Dataset {
	if nItems < 0 {
		panic("itemsets: negative item count")
	}
	return &Dataset{nItems: nItems}
}

// SetItemNames attaches display names (len must equal NumItems).
func (d *Dataset) SetItemNames(names []string) error {
	if len(names) != d.nItems {
		return fmt.Errorf("itemsets: %d names for %d items", len(names), d.nItems)
	}
	d.names = append([]string(nil), names...)
	return nil
}

// ItemName returns the display name of item i (or "i<idx>" if unnamed).
func (d *Dataset) ItemName(i int) string {
	if d.names != nil {
		return d.names[i]
	}
	return fmt.Sprintf("i%d", i)
}

// AddRow appends a tuple containing exactly the given items.
func (d *Dataset) AddRow(items ...int) {
	d.rows = append(d.rows, bitset.FromSlice(d.nItems, items))
}

// AddRowSet appends a tuple from an item set (cloned).
func (d *Dataset) AddRowSet(items bitset.Set) {
	if items.Universe() != d.nItems {
		panic("itemsets: row universe mismatch")
	}
	d.rows = append(d.rows, items.Clone())
}

// NumItems returns the size of the item universe.
func (d *Dataset) NumItems() int { return d.nItems }

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return len(d.rows) }

// Row returns the i-th tuple's item set (shared; do not mutate).
func (d *Dataset) Row(i int) bitset.Set { return d.rows[i] }

// Frequency returns f(U): the number of tuples containing every item of u.
func (d *Dataset) Frequency(u bitset.Set) int {
	c := 0
	for _, r := range d.rows {
		if u.SubsetOf(r) {
			c++
		}
	}
	return c
}

// IsFrequent reports whether u is frequent for threshold z: f(u) > z,
// strictly, per the paper.
func (d *Dataset) IsFrequent(u bitset.Set, z int) bool {
	return d.Frequency(u) > z
}

// validateThreshold enforces 0 < z ≤ |M| (the paper's threshold range).
func (d *Dataset) validateThreshold(z int) error {
	if z <= 0 || z > len(d.rows) {
		return fmt.Errorf("itemsets: threshold %d outside (0, %d]", z, len(d.rows))
	}
	return nil
}

// extendToMaximal grows the frequent itemset u to a maximal frequent
// itemset by greedily adding items in increasing order.
func (d *Dataset) extendToMaximal(u bitset.Set, z int) bitset.Set {
	r := u.Clone()
	for i := 0; i < d.nItems; i++ {
		if r.Contains(i) {
			continue
		}
		r.Add(i)
		if !d.IsFrequent(r, z) {
			r.Remove(i)
		}
	}
	return r
}

// shrinkToMinimalInfrequent shrinks the infrequent itemset u to a minimal
// infrequent itemset by greedily removing items in increasing order. (By
// anti-monotonicity of frequency the result's proper subsets are all
// frequent.)
func (d *Dataset) shrinkToMinimalInfrequent(u bitset.Set, z int) bitset.Set {
	r := u.Clone()
	u.ForEach(func(i int) bool {
		r.Remove(i)
		if d.IsFrequent(r, z) {
			r.Add(i)
		}
		return true
	})
	return r
}

// IsMaximalFrequent reports whether u ∈ IS+(M, z).
func (d *Dataset) IsMaximalFrequent(u bitset.Set, z int) bool {
	if !d.IsFrequent(u, z) {
		return false
	}
	for i := 0; i < d.nItems; i++ {
		if !u.Contains(i) && d.IsFrequent(u.WithElem(i), z) {
			return false
		}
	}
	return true
}

// IsMinimalInfrequent reports whether u ∈ IS−(M, z).
func (d *Dataset) IsMinimalInfrequent(u bitset.Set, z int) bool {
	if d.IsFrequent(u, z) {
		return false
	}
	redundant := false
	u.ForEach(func(i int) bool {
		if !d.IsFrequent(u.WithoutElem(i), z) {
			redundant = true
			return false
		}
		return true
	})
	return !redundant
}

// Borders holds both borders of the frequent-itemset lattice.
type Borders struct {
	// MaxFrequent is IS+(M, z).
	MaxFrequent *hypergraph.Hypergraph
	// MinInfrequent is IS−(M, z).
	MinInfrequent *hypergraph.Hypergraph
	// DualityChecks counts the calls to the duality engine made by the
	// incremental algorithm (1 + |IS+| + |IS−| in the worst case).
	DualityChecks int
}

// ComputeBorders runs the dualize-and-advance loop: starting from one
// greedily found maximal frequent itemset it alternates a duality check of
// (Hᶜ, G) with the extraction of one new verified border element from the
// verdict, exactly the incremental pattern of §1 of the paper.
func ComputeBorders(d *Dataset, z int) (*Borders, error) {
	return ComputeBordersContext(context.Background(), d, z)
}

// ComputeBordersContext is ComputeBorders with cancellation: every duality
// check of the dualize-and-advance loop polls ctx at every tree node (see
// core.DecideContext), so cancelling aborts the mining mid-loop with ctx's
// error. The duality checks run on the default engine portfolio.
func ComputeBordersContext(ctx context.Context, d *Dataset, z int) (*Borders, error) {
	return ComputeBordersWith(ctx, d, z, engine.Default())
}

// ComputeBordersWith is ComputeBordersContext with the duality engine chosen
// by the caller — typically an engine.Session, so that the |IS+| + |IS−| + 1
// decisions of one mining run share pinned scratch.
func ComputeBordersWith(ctx context.Context, d *Dataset, z int, eng engine.Engine) (*Borders, error) {
	return ComputeBordersStreamWith(ctx, d, z, eng, nil)
}

// BorderEvent is one border element the incremental loop has just verified:
// the progress unit of the streaming miner. Set aliases the stored edge —
// treat it as read-only, and clone before retaining past the callback.
type BorderEvent struct {
	// MaxFrequent reports which border grew: true for IS+, false for IS−.
	MaxFrequent bool
	// Set is the new border element.
	Set bitset.Set
	// DualityChecks is the number of duality-engine calls made so far
	// (0 for elements found before the first check: the greedy seed and
	// the degenerate empty-itemset case).
	DualityChecks int
}

// ComputeBordersStreamWith is ComputeBordersWith with progress streaming:
// onFound (when non-nil) is called synchronously with every border element
// the moment it is verified, in discovery order — the dualize-and-advance
// loop made observable, which is what POST /v1/mine streams to clients. A
// non-nil error from onFound aborts the mining and is returned as is.
func ComputeBordersStreamWith(ctx context.Context, d *Dataset, z int, eng engine.Engine, onFound func(BorderEvent) error) (*Borders, error) {
	if err := d.validateThreshold(z); err != nil {
		return nil, err
	}
	n := d.nItems
	b := &Borders{
		MaxFrequent:   hypergraph.New(n),
		MinInfrequent: hypergraph.New(n),
	}
	found := func(maxFrequent bool, set bitset.Set) error {
		if onFound == nil {
			return nil
		}
		return onFound(BorderEvent{MaxFrequent: maxFrequent, Set: set, DualityChecks: b.DualityChecks})
	}

	// Degenerate case: even the empty itemset is infrequent (f(∅) = |M|).
	if !d.IsFrequent(bitset.New(n), z) {
		b.MinInfrequent.AddEdge(bitset.New(n))
		if err := found(false, b.MinInfrequent.Edge(0)); err != nil {
			return nil, err
		}
		return b, nil
	}
	b.MaxFrequent.AddEdge(d.extendToMaximal(bitset.New(n), z))
	if err := found(true, b.MaxFrequent.Edge(0)); err != nil {
		return nil, err
	}

	for {
		b.DualityChecks++
		newMax, newMin, done, err := advance(ctx, d, z, b.MaxFrequent, b.MinInfrequent, eng)
		if err != nil {
			return nil, err
		}
		if done {
			return b, nil
		}
		switch {
		case newMax != nil:
			b.MaxFrequent.AddEdge(*newMax)
			err = found(true, *newMax)
		case newMin != nil:
			b.MinInfrequent.AddEdge(*newMin)
			err = found(false, *newMin)
		default:
			return nil, errors.New("itemsets: advance made no progress")
		}
		if err != nil {
			return nil, err
		}
		if b.DualityChecks > (1<<uint(min(n, 25)))+2*n+4 {
			return nil, errors.New("itemsets: border loop exceeded safety bound")
		}
	}
}

// advance performs one duality check of (X, G) with X = Hᶜ and converts a
// negative verdict into one new verified border element: a maximal frequent
// itemset (newMax) or a minimal infrequent itemset (newMin). Every engine
// classifies verdicts with core's Reason taxonomy, so the conversion below
// is engine-independent.
func advance(ctx context.Context, d *Dataset, z int, h, g *hypergraph.Hypergraph, eng engine.Engine) (newMax, newMin *bitset.Set, done bool, err error) {
	n := d.nItems
	x := h.ComplementEdges() // Hᶜ

	res, err := eng.Decide(ctx, x, g)
	if err != nil {
		return nil, nil, false, err
	}
	if res.Dual {
		return nil, nil, true, nil
	}

	switch res.Reason {
	case core.ReasonConstantMismatch:
		// Only two live sub-cases given the loop invariants (H nonempty,
		// every h maximal frequent, every g minimal infrequent):
		switch {
		case x.HasEmptyEdge():
			// Some h is the full item set ⇒ tr(Hᶜ) = tr({∅}) = ∅ ⇒ the
			// borders are complete iff G = ∅, and G ⊆ IS− = ∅ always holds.
			if g.M() != 0 {
				return nil, nil, false, errors.New("itemsets: minimal infrequent set recorded although the full itemset is frequent")
			}
			return nil, nil, true, nil
		case g.M() == 0:
			// tr(X) is nonempty but no minimal infrequent candidate is
			// known yet: take any minimal transversal of X.
			t := x.MinimalizeTransversal(bitset.Full(n))
			return classify(d, z, t)
		default:
			return nil, nil, false, fmt.Errorf("itemsets: unexpected constant case (|X|=%d |G|=%d)", x.M(), g.M())
		}
	case core.ReasonNotCrossIntersecting:
		// g ∩ (S−h) = ∅ ⟺ g ⊆ h: an infrequent subset of a frequent set —
		// impossible; the invariant is broken.
		return nil, nil, false, errors.New("itemsets: invariant broken: infrequent g inside frequent h")
	case core.ReasonHEdgeNotMinimal:
		// Some g ∈ G is a non-minimal transversal of X: g − {v} is still
		// outside every h, and it is frequent (g is minimal infrequent), so
		// it extends to a new maximal frequent itemset.
		gEdge := g.Edge(res.HEdge)
		seed := gEdge.WithoutElem(res.RedundantVertex)
		m := d.extendToMaximal(seed, z)
		return &m, nil, false, nil
	case core.ReasonGEdgeNotMinimal:
		// Some x = S−h is a non-minimal transversal of G: with u the
		// redundant item, no g is contained in h ∪ {u}, yet h ∪ {u} is
		// infrequent (h is maximal frequent): shrink it to a new minimal
		// infrequent itemset.
		hEdge := h.Edge(res.GEdge)
		seed := hEdge.WithElem(res.RedundantVertex)
		mi := d.shrinkToMinimalInfrequent(seed, z)
		return nil, &mi, false, nil
	case core.ReasonNewTransversal:
		// A transversal of X containing no g: it contains a minimal
		// transversal of X outside G; classify it by frequency.
		t := x.MinimalizeTransversal(res.Witness)
		return classify(d, z, t)
	default:
		return nil, nil, false, fmt.Errorf("itemsets: unhandled verdict %v", res.Reason)
	}
}

// classify turns a minimal transversal of Hᶜ that is not yet in G into a
// new border element: if frequent it extends to a new maximal frequent
// itemset; if infrequent it is itself minimal infrequent (its proper
// subsets lie inside maximal frequent sets).
func classify(d *Dataset, z int, t bitset.Set) (newMax, newMin *bitset.Set, done bool, err error) {
	if d.IsFrequent(t, z) {
		m := d.extendToMaximal(t, z)
		return &m, nil, false, nil
	}
	return nil, &t, false, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// IdentifyResult is the outcome of MaxFreq-MinInfreq-Identification.
type IdentifyResult struct {
	// Complete reports H = IS+ and G = IS−.
	Complete bool
	// BadMaxClaim / BadMinClaim (when ≥ 0) identify a claimed set that is
	// not actually a maximal frequent / minimal infrequent itemset.
	BadMaxClaim, BadMinClaim int
	// NewMaxFrequent / NewMinInfrequent carry a border element missing from
	// the claim, when the claims were valid but incomplete.
	NewMaxFrequent, NewMinInfrequent *bitset.Set
}

// Identify solves the paper's MaxFreq-MinInfreq-Identification problem:
// given claimed families h ⊆ IS+ and g ⊆ IS−, decide whether there exists
// an additional maximal frequent or minimal infrequent itemset
// (Proposition 1.1: this is logspace-equivalent to DUAL — after verifying
// the membership claims, completeness is exactly G = tr(Hᶜ)). On
// incompleteness a concrete missing border element is returned. The duality
// check runs on the default engine portfolio; IdentifyWith chooses.
func Identify(d *Dataset, z int, g, h *hypergraph.Hypergraph) (*IdentifyResult, error) {
	return IdentifyWith(context.Background(), d, z, g, h, engine.Default())
}

// IdentifyWith is Identify with cancellation and a caller-chosen duality
// engine.
func IdentifyWith(ctx context.Context, d *Dataset, z int, g, h *hypergraph.Hypergraph, eng engine.Engine) (*IdentifyResult, error) {
	if err := d.validateThreshold(z); err != nil {
		return nil, err
	}
	if g.N() != d.nItems || h.N() != d.nItems {
		return nil, errors.New("itemsets: family universe differs from item universe")
	}
	res := &IdentifyResult{BadMaxClaim: -1, BadMinClaim: -1}
	for i := 0; i < h.M(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !d.IsMaximalFrequent(h.Edge(i), z) {
			res.BadMaxClaim = i
			return res, nil
		}
	}
	for i := 0; i < g.M(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !d.IsMinimalInfrequent(g.Edge(i), z) {
			res.BadMinClaim = i
			return res, nil
		}
	}
	// Degenerate: nothing frequent at all.
	if !d.IsFrequent(bitset.New(d.nItems), z) {
		complete := h.M() == 0 && g.M() == 1 && g.Edge(0).IsEmpty()
		res.Complete = complete
		if !complete {
			empty := bitset.New(d.nItems)
			res.NewMinInfrequent = &empty
		}
		return res, nil
	}
	if h.M() == 0 {
		// Claims are valid but at least one maximal frequent set exists.
		m := d.extendToMaximal(bitset.New(d.nItems), z)
		res.NewMaxFrequent = &m
		return res, nil
	}
	newMax, newMin, done, err := advance(ctx, d, z, h, g, eng)
	if err != nil {
		return nil, err
	}
	res.Complete = done
	res.NewMaxFrequent = newMax
	res.NewMinInfrequent = newMin
	return res, nil
}

// BordersBrute computes both borders by exhaustive lattice scan (test
// oracle; panics beyond 20 items).
func BordersBrute(d *Dataset, z int) (*Borders, error) {
	if err := d.validateThreshold(z); err != nil {
		return nil, err
	}
	n := d.nItems
	if n > 20 {
		panic("itemsets: BordersBrute item universe too large")
	}
	b := &Borders{MaxFrequent: hypergraph.New(n), MinInfrequent: hypergraph.New(n)}
	for mask := 0; mask < 1<<uint(n); mask++ {
		u := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				u.Add(i)
			}
		}
		if d.IsMaximalFrequent(u, z) {
			b.MaxFrequent.AddEdge(u)
		}
		if d.IsMinimalInfrequent(u, z) {
			b.MinInfrequent.AddEdge(u)
		}
	}
	b.MaxFrequent = b.MaxFrequent.Canonical()
	b.MinInfrequent = b.MinInfrequent.Canonical()
	return b, nil
}

// BordersApriori computes both borders by levelwise search: frequent
// itemsets are generated level by level (Apriori); candidates all of whose
// subsets are frequent but which are themselves infrequent are exactly the
// minimal infrequent sets; maximal frequent sets are filtered at the end.
func BordersApriori(d *Dataset, z int) (*Borders, error) {
	if err := d.validateThreshold(z); err != nil {
		return nil, err
	}
	n := d.nItems
	b := &Borders{MaxFrequent: hypergraph.New(n), MinInfrequent: hypergraph.New(n)}

	if !d.IsFrequent(bitset.New(n), z) {
		b.MinInfrequent.AddEdge(bitset.New(n))
		return b, nil
	}

	frequent := map[string]bitset.Set{}
	level := []bitset.Set{bitset.New(n)}
	frequent[bitset.New(n).Key()] = bitset.New(n)

	// Reused lookup scratch: probing the frequent map goes through
	// string(AppendKey) on a shared buffer, which does not allocate.
	sub, keyBuf := bitset.New(n), make([]byte, 0, 64)

	for len(level) > 0 {
		candidates := map[string]bitset.Set{}
		for _, u := range level {
			// Extend by items beyond the largest, so each candidate is
			// generated once.
			for i := maxElem(u) + 1; i < n; i++ {
				c := u.WithElem(i)
				candidates[c.Key()] = c
			}
		}
		var next []bitset.Set
		for _, c := range candidates {
			// Apriori pruning: all proper subsets of size |c|−1 frequent.
			allSubsFrequent := c.ForEach(func(i int) bool {
				sub.CopyFrom(c)
				sub.Remove(i)
				keyBuf = sub.AppendKey(keyBuf[:0])
				_, ok := frequent[string(keyBuf)]
				return ok
			})
			if !allSubsFrequent {
				continue
			}
			if d.IsFrequent(c, z) {
				frequent[c.Key()] = c
				next = append(next, c)
			} else {
				// All (|c|−1)-subsets frequent ⇒ all proper subsets
				// frequent ⇒ minimal infrequent.
				b.MinInfrequent.AddEdge(c)
			}
		}
		level = next
	}
	// Maximal frequent = frequent sets none of whose single-item
	// extensions are frequent.
	for _, u := range frequent {
		if d.IsMaximalFrequent(u, z) {
			b.MaxFrequent.AddEdge(u)
		}
	}
	b.MaxFrequent = b.MaxFrequent.Canonical()
	b.MinInfrequent = b.MinInfrequent.Canonical()
	return b, nil
}

func maxElem(s bitset.Set) int {
	m := -1
	s.ForEach(func(v int) bool { m = v; return true })
	return m
}

// VerifyBorderIdentity checks the Gunopulos et al. identity IS− = tr((IS+)ᶜ)
// on computed borders using the default duality engine; it backs experiment
// E10.
func VerifyBorderIdentity(b *Borders) (bool, error) {
	res, err := engine.Default().Decide(context.Background(), b.MaxFrequent.ComplementEdges(), b.MinInfrequent)
	if err != nil {
		return false, err
	}
	return res.Dual, nil
}
