package core

// Decider: the reusable per-holder decision state behind internal/engine's
// Session. A plain DecideContext call pays a per-call setup (classification
// scratch, per-depth frames, result, witness clones); a Decider pins all of
// that and re-binds it to each new instance, so a long-lived holder's
// repeated decisions are allocation-free at steady state — across calls, not
// just within one — including on non-dual verdicts, whose witness and
// fail-path storage live in the pinned walker (scratch.go).

import (
	"context"
	"errors"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
)

// Decider is a reusable serial decision state for repeated Decide/TrSubset
// calls. The zero value is not usable; create with NewDecider.
//
// The returned *Result — including its Witness, CoWitness and FailPath —
// aliases the Decider's pinned storage and is valid only until the next call
// on the same Decider; callers that retain verdicts must Clone them. A
// Decider is not safe for concurrent use: it is meant to be owned by one
// worker (internal/engine.Session hands one to each service worker slot).
type Decider struct {
	w    *walkState
	full bitset.Set
	res  Result
}

// NewDecider returns an empty decider; its scratch is sized lazily on the
// first call and re-sized only when the instance universe changes.
func NewDecider() *Decider { return &Decider{} }

// bind points the pinned walker at (g, h), reallocating only when the
// universe size differs from the previous instance's.
func (d *Decider) bind(g, h *hypergraph.Hypergraph) *walkState {
	n := g.N()
	if d.w == nil || d.w.sc.n != n {
		d.w = newWalkState(g, h)
		d.w.reuse = true
		d.w.witBuf = bitset.New(n)
		d.w.cowitBuf = bitset.New(n)
		d.full = bitset.Full(n)
	} else {
		d.w.sc.g, d.w.sc.h = g, h
	}
	return d.w
}

// DecideContext is DecideContext on the decider's pinned state: identical
// verdicts, reasons, witnesses and statistics, with the reuse contract
// documented on Decider.
func (d *Decider) DecideContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	d.res = Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	done, err := precheckInto(g, h, &d.res)
	if err != nil {
		return nil, err
	}
	if done {
		return &d.res, nil
	}
	a, b, swapped := g, h, false
	if h.M() > g.M() {
		a, b, swapped = h, g, true
	}
	if err := d.treeStage(ctx, a, b); err != nil {
		return nil, err
	}
	d.res.Swapped = swapped
	if !d.res.Dual && swapped {
		d.res.Witness, d.res.CoWitness = d.res.CoWitness, d.res.Witness
	}
	return &d.res, nil
}

// TrSubsetContext is TrSubsetContext on the decider's pinned state, under
// the same input contract as the package-level function.
func (d *Decider) TrSubsetContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	if err := validatePair(g, h); err != nil {
		return nil, err
	}
	if g.M() == 0 || h.M() == 0 || g.HasEmptyEdge() || h.HasEmptyEdge() {
		return nil, errors.New("core: TrSubset requires non-constant inputs; use Decide")
	}
	if ok, _, _ := g.CrossIntersecting(h); !ok {
		return nil, errors.New("core: TrSubset requires a cross-intersecting pair")
	}
	d.res = Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	if err := d.treeStage(ctx, g, h); err != nil {
		return nil, err
	}
	return &d.res, nil
}

// treeStage runs the serial DFS over T(g,h) on the pinned walker; the pair
// must already be validated (simple, non-constant, cross-intersecting).
func (d *Decider) treeStage(ctx context.Context, g, h *hypergraph.Hypergraph) error {
	w := d.bind(g, h)
	w.done = ctx.Done()
	w.cancelled = false
	d.res.Dual = true
	serialWalk(w, d.full, 0, &d.res)
	if w.cancelled {
		return ctx.Err()
	}
	return nil
}
