package core

// Decider: the reusable per-holder decision state behind internal/engine's
// Session. A plain DecideContext call pays a per-call setup (incidence
// indexes, classification scratch, per-depth frames, result, witness
// clones); a Decider pins all of that and re-binds it to each new instance,
// so a long-lived holder's repeated decisions are allocation-free at steady
// state — across calls, not just within one — including on non-dual
// verdicts, whose witness and fail-path storage live in the pinned walker
// (scratch.go).
//
// A Decider may additionally carry a cross-node subinstance Memo (memo.go):
// all-done subtrees recorded by one decision short-circuit identical
// subtrees later in the same decision and in every subsequent decision on
// the same Decider — the reuse pattern of the incremental applications
// (border/key/coterie loops decide against a growing family whose
// subinstances largely repeat) and of repeated service traffic.

import (
	"context"
	"time"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
)

// Decider is a reusable serial decision state for repeated Decide/TrSubset
// calls. The zero value is not usable; create with NewDecider.
//
// The returned *Result — including its Witness, CoWitness and FailPath —
// aliases the Decider's pinned storage and is valid only until the next call
// on the same Decider; callers that retain verdicts must Clone them. A
// Decider is not safe for concurrent use: it is meant to be owned by one
// worker (internal/engine.Session hands one to each service worker slot).
type Decider struct {
	w    *walkState
	full bitset.Set
	res  Result
	memo *Memo
	// rec, when non-nil, receives per-stage timings (precheck, index sync,
	// walk net of memo consults, memo consults) for every decision — the
	// obs layer's stage-level tracing hook. Nil disables all clock reads;
	// an attached recorder adds a handful of time.Now calls per decision
	// and zero allocations (DESIGN.md §10).
	rec *obs.Recorder
}

// NewDecider returns an empty decider; its scratch is sized lazily on the
// first call and re-sized only when the instance shape changes. It carries
// no memo until EnableMemo.
func NewDecider() *Decider { return &Decider{} }

// EnableMemo attaches a cross-node subinstance memo bounded to the given
// number of entries (0 or negative: DefaultMemoEntries), replacing any
// existing one. See memo.go for keying, bounds and soundness.
func (d *Decider) EnableMemo(entries int) {
	d.memo = NewMemo(entries)
	if d.w != nil {
		d.w.memo = d.memo
	}
}

// SetRecorder attaches (nil: detaches) a stage-timing recorder. The
// recorder is owned by the Decider's owner and read out between decisions;
// it is not reset here — callers Reset it per decision when they consume
// per-call timings.
func (d *Decider) SetRecorder(r *obs.Recorder) {
	d.rec = r
	if d.w != nil {
		d.w.rec = r
	}
}

// Recorder returns the attached stage-timing recorder (nil when detached).
// Engine adapters that cannot run on the pinned scratch but can still time
// their stages (the parallel search) read it through here.
func (d *Decider) Recorder() *obs.Recorder { return d.rec }

// MemoStats snapshots the memo counters (zero value when no memo is
// attached). Safe to call concurrently with decisions.
func (d *Decider) MemoStats() MemoStats {
	if d.memo == nil {
		return MemoStats{}
	}
	return d.memo.Stats()
}

// bind points the pinned walker at (g, h), reallocating only when the
// universe size differs from the previous instance's; the scratch re-binds
// its indexes and per-edge state in place otherwise.
func (d *Decider) bind(g, h *hypergraph.Hypergraph) *walkState {
	n := g.N()
	if d.w == nil || d.w.sc.n != n {
		d.w = newWalkState(g, h)
		d.w.reuse = true
		d.w.witBuf = bitset.New(n)
		d.w.cowitBuf = bitset.New(n)
		d.full = bitset.Full(n)
	} else {
		d.w.sc.bind(g, h)
	}
	d.w.memo = d.memo
	d.w.rec = d.rec
	return d.w
}

// DecideContext is DecideContext on the decider's pinned state: identical
// verdicts, reasons, witnesses and statistics, with the reuse contract
// documented on Decider.
//
//dual:allocfree
func (d *Decider) DecideContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	d.res = Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	var t0 time.Time
	if d.rec != nil {
		t0 = time.Now()
	}
	w := d.bind(g, h)
	if d.rec != nil {
		d.rec.Add(obs.StageIndexSync, time.Since(t0))
		t0 = time.Now()
	}
	done, err := precheckIntoIdx(g, h, w.sc.gIdx, w.sc.hIdx, w.sc.hitG, w.sc.notCont, &d.res)
	if d.rec != nil {
		d.rec.Add(obs.StagePrecheck, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	if done {
		return &d.res, nil
	}
	swapped := false
	if h.M() > g.M() {
		w.sc.swap()
		swapped = true
	}
	if err := d.treeStage(ctx); err != nil {
		return nil, err
	}
	d.res.Swapped = swapped
	if !d.res.Dual && swapped {
		d.res.Witness, d.res.CoWitness = d.res.CoWitness, d.res.Witness
	}
	return &d.res, nil
}

// TrSubsetContext is TrSubsetContext on the decider's pinned state, under
// the same input contract as the package-level function.
//
//dual:allocfree
func (d *Decider) TrSubsetContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	var t0 time.Time
	if d.rec != nil {
		t0 = time.Now()
	}
	w := d.bind(g, h)
	if d.rec != nil {
		d.rec.Add(obs.StageIndexSync, time.Since(t0))
		t0 = time.Now()
	}
	err := trSubsetPreflight(g, h, w.sc)
	if d.rec != nil {
		d.rec.Add(obs.StagePrecheck, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	d.res = Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	if err := d.treeStage(ctx); err != nil {
		return nil, err
	}
	return &d.res, nil
}

// treeStage runs the serial DFS over the pinned walker's current
// orientation; the pair must already be validated (simple, non-constant,
// cross-intersecting). With a recorder attached, the root syncTo counts as
// index sync and the DFS as walk — net of the memo-consult time serialWalk
// accumulated under StageMemo, so the reported stages stay disjoint.
//
//dual:allocfree
func (d *Decider) treeStage(ctx context.Context) error {
	w := d.w
	w.done = ctx.Done()
	w.cancelled = false
	d.res.Dual = true
	var t0 time.Time
	var memo0 int64
	if d.rec != nil {
		t0 = time.Now()
	}
	w.sc.syncTo(d.full)
	if d.rec != nil {
		d.rec.Add(obs.StageIndexSync, time.Since(t0))
		t0 = time.Now()
		memo0 = d.rec.Get(obs.StageMemo)
	}
	serialWalk(w, d.full, 0, &d.res)
	if d.rec != nil {
		memoD := time.Duration(d.rec.Get(obs.StageMemo) - memo0)
		d.rec.Add(obs.StageWalk, time.Since(t0)-memoD)
	}
	if w.cancelled {
		return ctx.Err()
	}
	return nil
}
