package core

// Cross-node subinstance memoization. The Boros–Makino tree re-derives
// structurally identical subinstances across branches — on dense and
// self-dual families most internal nodes have a twin elsewhere in the tree
// whose projected pair (G_Sα, H_Sα) is word-for-word equal — and, through
// the incremental applications (border/key/coterie loops, repeated service
// traffic), across separate decisions too. A Memo records "the subtree
// rooted at this projected subinstance contains only done leaves" and lets
// the serial DFS skip such subtrees wholesale.
//
// Soundness: the decomposition tree below a node is a deterministic function
// of the ordered projected pair alone — every rule of marksmall/process and
// every child-set construction depends only on the projections, and child
// projections are determined by parent projections (DESIGN.md §7 gives the
// induction). The DFS stops at the first fail leaf, so every subtree it
// completes is all-done; those are exactly the entries a Memo holds, and a
// hit therefore never hides a fail leaf. Keys are full encodings (not
// hashes): lookups compare the stored words, so hash collisions cannot
// produce a false hit.
//
// Bounds: the table holds at most maxEntries keys and maxEntries×128 words
// of key storage (≈4 MiB at the default size); keys larger than a quarter
// of the arena are never memoized, and a full table is reset wholesale
// (epoch eviction) rather than thrashing entry by entry.
// Hit/miss/insert/eviction counters are atomic so a service can report
// them from /statsz while the owning worker keeps deciding.

import (
	"slices"
	"sync/atomic"
)

// DefaultMemoEntries is the subinstance-memo bound used when a caller asks
// for a memo without sizing it (engine.NewSession, dualserved's -memo
// default).
const DefaultMemoEntries = 4096

// memoArenaWordsPerEntry bounds total key storage relative to the entry
// bound: the arena holds at most maxEntries×memoArenaWordsPerEntry words
// (≈4 MiB at the default size), and a single key larger than a quarter of
// that arena is never memoized (a handful of such keys would monopolize
// it).
const memoArenaWordsPerEntry = 128

// MemoStats is a point-in-time snapshot of a memo's counters.
type MemoStats struct {
	// Hits and Misses count lookups (one per internal tree node visited by a
	// memo-carrying walker).
	Hits, Misses int64
	// Inserts counts completed all-done subtrees recorded.
	Inserts int64
	// Entries is the current table size; Evictions counts entries dropped by
	// epoch resets.
	Entries, Evictions int64
}

// Memo is a bounded, collision-checked table of all-done subinstances. It
// is owned by a single walker (a Decider pins one); only the stats counters
// may be read concurrently.
type Memo struct {
	maxEntries int
	maxWords   int
	table      map[uint64][]memoSpan
	arena      []uint64
	count      int

	hits, misses, inserts, evictions atomic.Int64
	entries                          atomic.Int64
}

// memoSpan locates one stored key inside the arena.
type memoSpan struct {
	off, n uint32
}

// NewMemo returns a memo bounded to the given number of entries
// (0 or negative: DefaultMemoEntries).
func NewMemo(entries int) *Memo {
	if entries <= 0 {
		entries = DefaultMemoEntries
	}
	return &Memo{
		maxEntries: entries,
		maxWords:   entries * memoArenaWordsPerEntry,
		table:      make(map[uint64][]memoSpan),
	}
}

// Stats snapshots the counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Inserts:   m.inserts.Load(),
		Entries:   m.entries.Load(),
		Evictions: m.evictions.Load(),
	}
}

func memoHash(key []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range key {
		h ^= w
		h *= prime64
	}
	return h
}

// lookup reports whether key is recorded as an all-done subinstance.
func (m *Memo) lookup(key []uint64) bool {
	for _, sp := range m.table[memoHash(key)] {
		if slices.Equal(m.arena[sp.off:sp.off+sp.n], key) {
			m.hits.Add(1)
			return true
		}
	}
	m.misses.Add(1)
	return false
}

// insert records key as an all-done subinstance. Oversized keys are
// ignored; a full table is reset first (epoch eviction).
func (m *Memo) insert(key []uint64) {
	if len(key) > m.maxWords/4 {
		return // a handful of such keys would monopolize the arena
	}
	if m.count >= m.maxEntries || len(m.arena)+len(key) > m.maxWords {
		m.evictions.Add(int64(m.count))
		clear(m.table)
		m.arena = m.arena[:0]
		m.count = 0
		m.entries.Store(0)
	}
	h := memoHash(key)
	for _, sp := range m.table[h] {
		if slices.Equal(m.arena[sp.off:sp.off+sp.n], key) {
			return // already recorded
		}
	}
	off := uint32(len(m.arena))
	m.arena = append(m.arena, key...)
	m.table[h] = append(m.table[h], memoSpan{off: off, n: uint32(len(key))})
	m.count++
	m.inserts.Add(1)
	m.entries.Store(int64(m.count))
}
