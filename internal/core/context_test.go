package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/hypergraph"
)

// TestDecideContextPreCancelled: a context that is already cancelled aborts
// the tree stage before the first node — the strongest form of the
// "within one tree-node boundary" contract.
func TestDecideContextPreCancelled(t *testing.T) {
	g, h := gen.Matching(3), gen.MatchingDual(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.DecideContext(ctx, g, h)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DecideContext(cancelled) = %v, %v; want context.Canceled", res, err)
	}
	res, err = core.DecideParallelContext(ctx, g, h, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DecideParallelContext(cancelled) = %v, %v; want context.Canceled", res, err)
	}
	if _, _, err := core.NewTransversalContext(ctx, g, h); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewTransversalContext(cancelled) err = %v; want context.Canceled", err)
	}
}

// TestDecideContextBackgroundMatchesDecide: the context variants with a
// background context agree with the plain entry points.
func TestDecideContextBackgroundMatchesDecide(t *testing.T) {
	for _, p := range gen.Families(11) {
		want, err := core.Decide(p.G, p.H)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := core.DecideContext(context.Background(), p.G, p.H)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got.Dual != want.Dual || got.Reason != want.Reason {
			t.Errorf("%s: context verdict %v/%v != %v/%v", p.Name, got.Dual, got.Reason, want.Dual, want.Reason)
		}
	}
}

// cancelMidWalk drives decide on a large dual instance (no fail leaf, so
// the search must visit the whole tree unless aborted) and cancels shortly
// after it starts. Growing instance sizes are tried so the test stays
// robust across machine speeds: on any realistic machine the k=14 instance
// (|H| = 16384) takes far longer than the cancellation delay.
func cancelMidWalk(t *testing.T, decide func(ctx context.Context, g, h *hypergraph.Hypergraph) error) {
	t.Helper()
	for k := 10; k <= 14; k += 2 {
		g, h := gen.Matching(k), gen.MatchingDual(k)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		err := decide(ctx, g, h)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			continue // machine finished the instance before the cancel; grow it
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: err = %v; want context.Canceled", k, err)
		}
		// The abort must be prompt: a full walk at these sizes visits a
		// huge number of nodes, while cancellation stops within one node
		// per walker (plus the un-cancellable validation prefix).
		if elapsed > 5*time.Second {
			t.Fatalf("k=%d: cancellation took %v", k, elapsed)
		}
		return
	}
	t.Fatal("no instance up to k=14 was cancelled mid-walk")
}

func TestDecideContextCancelMidWalk(t *testing.T) {
	cancelMidWalk(t, func(ctx context.Context, g, h *hypergraph.Hypergraph) error {
		_, err := core.DecideContext(ctx, g, h)
		return err
	})
}

func TestDecideParallelContextCancelMidWalk(t *testing.T) {
	cancelMidWalk(t, func(ctx context.Context, g, h *hypergraph.Hypergraph) error {
		_, err := core.DecideParallelContext(ctx, g, h, 4)
		return err
	})
}

// TestDecideParallelContextKeepsEarlyVerdict: when a fail leaf is found
// before the cancellation lands, the valid non-dual verdict survives.
func TestDecideParallelContextKeepsEarlyVerdict(t *testing.T) {
	g := gen.Matching(3)
	h := gen.DropEdge(gen.MatchingDual(3), 0) // non-dual: a witness exists
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := core.DecideParallelContext(ctx, g, h, 2)
	if err != nil || res.Dual {
		t.Fatalf("expected non-dual verdict, got %v, %v", res, err)
	}
	if !h.IsNewTransversal(res.Witness, g) && !g.IsNewTransversal(res.Witness, h) {
		// Witness orientation depends on Swapped; check the documented one.
		t.Errorf("witness %v is not a new transversal", res.Witness)
	}
}
