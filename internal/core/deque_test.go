package core

// Unit and property tests for the bounded work-stealing deque. The
// scheduler's correctness argument (parallel.go) leans on three local
// properties checked here: owner pops are LIFO and tag-guarded, steals are
// FIFO from the opposite end, and no interleaving of one owner with many
// thieves loses or duplicates a frame.

import (
	"sync"
	"testing"
)

// frameID labels test frames through their path slice.
func frameID(n int) *stealFrame { return &stealFrame{path: []int{n}} }

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	var d frameDeque
	for i := 0; i < 5; i++ {
		f := frameID(i)
		f.tag = 7
		if !d.push(f) {
			t.Fatalf("push %d refused", i)
		}
	}
	// Thief sees the OLDEST frame (bottom).
	if f := d.steal(); f == nil || f.path[0] != 0 {
		t.Fatalf("steal got %v, want frame 0", f)
	}
	// Owner sees the NEWEST (top), and only under the right tag.
	if f := d.popIf(99); f != nil {
		t.Fatalf("popIf with wrong tag returned frame %d", f.path[0])
	}
	for want := 4; want >= 1; want-- {
		f := d.popIf(7)
		if f == nil || f.path[0] != want {
			t.Fatalf("popIf got %v, want frame %d", f, want)
		}
	}
	if f := d.popIf(7); f != nil {
		t.Fatalf("popIf on empty deque returned frame %d", f.path[0])
	}
	if f := d.steal(); f != nil {
		t.Fatalf("steal on empty deque returned frame %d", f.path[0])
	}
}

func TestDequeTagBoundary(t *testing.T) {
	// Two batches interleaved: the owner reclaiming batch B must stop at
	// the first batch-A frame instead of popping through it.
	var d frameDeque
	for i := 0; i < 3; i++ {
		f := frameID(i)
		f.tag = 1
		d.push(f)
	}
	for i := 3; i < 5; i++ {
		f := frameID(i)
		f.tag = 2
		d.push(f)
	}
	if f := d.popIf(2); f == nil || f.path[0] != 4 {
		t.Fatalf("got %v, want frame 4", f)
	}
	if f := d.popIf(2); f == nil || f.path[0] != 3 {
		t.Fatalf("got %v, want frame 3", f)
	}
	if f := d.popIf(2); f != nil {
		t.Fatalf("batch 2 exhausted but popIf(2) returned frame %d", f.path[0])
	}
	if f := d.popIf(1); f == nil || f.path[0] != 2 {
		t.Fatalf("got %v, want frame 2", f)
	}
}

func TestDequeBound(t *testing.T) {
	var d frameDeque
	for i := 0; i < dequeCap; i++ {
		if !d.push(frameID(i)) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if d.push(frameID(dequeCap)) {
		t.Fatal("push accepted beyond capacity")
	}
	// Stealing one frame frees one slot.
	if f := d.steal(); f == nil || f.path[0] != 0 {
		t.Fatalf("steal got %v, want frame 0", f)
	}
	if !d.push(frameID(dequeCap)) {
		t.Fatal("push refused after a steal freed a slot")
	}
}

// TestDequeNoLostOrDuplicatedFrames drives one owner (pushing batches then
// reclaiming what thieves left) against several concurrent thieves, and
// checks every pushed frame is consumed exactly once. Run under -race this
// also vets the locking.
func TestDequeNoLostOrDuplicatedFrames(t *testing.T) {
	const (
		thieves = 4
		batches = 200
		batchSz = 8
	)
	var d frameDeque
	var mu sync.Mutex
	seen := make(map[int]int)
	record := func(f *stealFrame) {
		mu.Lock()
		seen[f.path[0]]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if f := d.steal(); f != nil {
					record(f)
					continue
				}
				select {
				case <-stop:
					// One final sweep so a frame pushed just before the
					// owner finished cannot be stranded.
					for f := d.steal(); f != nil; f = d.steal() {
						record(f)
					}
					return
				default:
				}
			}
		}()
	}

	next := 0
	for b := 0; b < batches; b++ {
		tag := uint64(b + 1)
		pushed := 0
		for i := 0; i < batchSz; i++ {
			f := frameID(next)
			f.tag = tag
			if d.push(f) {
				next++
				pushed++
			}
		}
		for pushed > 0 {
			f := d.popIf(tag)
			if f == nil {
				break // thieves own the rest of the batch
			}
			if f.tag != tag {
				t.Errorf("popIf(%d) returned tag %d", tag, f.tag)
			}
			record(f)
			pushed--
		}
	}
	close(stop)
	wg.Wait()

	if len(seen) != next {
		t.Fatalf("consumed %d distinct frames, pushed %d", len(seen), next)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("frame %d consumed %d times", id, n)
		}
	}
}
