package core_test

import (
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/obs"
)

// TestDecideAllocsPerOp is the allocation regression guard for the
// decomposition hot path: on a fixed mid-size dual instance, Decide must
// cost only its per-call setup (result, scratch, per-depth frames), not
// per-node allocations. The seed implementation spent ~3500 allocs on this
// instance; the scratch-based engine spends well under 150 regardless of
// tree size.
func TestDecideAllocsPerOp(t *testing.T) {
	g, h := gen.Matching(5), gen.MatchingDual(5)
	// Warm up once (and sanity-check the verdict).
	res, err := core.Decide(g, h)
	if err != nil || !res.Dual {
		t.Fatalf("Decide(matching 5) = %v, %v", res, err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := core.Decide(g, h)
		if err != nil || !res.Dual {
			t.Fatal("wrong verdict")
		}
	})
	if allocs > 150 {
		t.Errorf("Decide allocates %.0f per op; the budget is 150 (per-call setup only)", allocs)
	}
}

// TestDeciderIndexedSteadyStateAllocFree pins the indexed-kernel steady
// state: a pinned Decider — incidence indexes rebuilt in place, incremental
// scratch, memo populated — must allocate NOTHING per decision once warm,
// on dual and non-dual verdicts alike, and whether the memo is enabled or
// not (memo hits replace subtree walks; memo lookups and the key encoding
// run on per-depth reusable buffers).
func TestDeciderIndexedSteadyStateAllocFree(t *testing.T) {
	gD, hD := gen.Matching(5), gen.MatchingDual(5)
	hN := gen.DropEdge(hD, 11)
	for _, memo := range []bool{false, true} {
		// traced attaches a stage-timing recorder: the obs contract is that
		// recording adds clock reads, never allocations (DESIGN.md §10).
		for _, traced := range []bool{false, true} {
			d := core.NewDecider()
			if memo {
				d.EnableMemo(0)
			}
			var rec obs.Recorder
			if traced {
				d.SetRecorder(&rec)
			}
			ctx := t.Context()
			for i := 0; i < 3; i++ { // warm scratch, frames, memo arena
				if res, err := d.DecideContext(ctx, gD, hD); err != nil || !res.Dual {
					t.Fatalf("memo=%v warmup dual: %v, %v", memo, res, err)
				}
				if res, err := d.DecideContext(ctx, gD, hN); err != nil || res.Dual {
					t.Fatalf("memo=%v warmup non-dual: %v, %v", memo, res, err)
				}
			}
			if allocs := testing.AllocsPerRun(20, func() {
				rec.Reset()
				if res, err := d.DecideContext(ctx, gD, hD); err != nil || !res.Dual {
					t.Fatal("wrong dual verdict")
				}
				if res, err := d.DecideContext(ctx, gD, hN); err != nil || res.Dual {
					t.Fatal("wrong non-dual verdict")
				}
			}); allocs != 0 {
				t.Errorf("memo=%v traced=%v: warm Decider allocates %.1f per decision pair, want 0",
					memo, traced, allocs)
			}
			if traced && rec.Get(obs.StageWalk) <= 0 {
				t.Errorf("memo=%v: recorder saw no walk time", memo)
			}
		}
	}
}

// TestTrSubsetAllocsPerOpNonDual covers the witness-producing path: a fail
// leaf adds only the witness, its complement and the fail path descriptor.
func TestTrSubsetAllocsPerOpNonDual(t *testing.T) {
	g := gen.Matching(5)
	h := gen.DropEdge(gen.MatchingDual(5), 11)
	res, err := core.TrSubset(g, h)
	if err != nil || res.Dual {
		t.Fatalf("TrSubset(dropped dual) = %v, %v", res, err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := core.TrSubset(g, h)
		if err != nil || res.Dual {
			t.Fatal("wrong verdict")
		}
	})
	if allocs > 150 {
		t.Errorf("TrSubset allocates %.0f per op; the budget is 150", allocs)
	}
}
