package core_test

import (
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
)

// TestDecideAllocsPerOp is the allocation regression guard for the
// decomposition hot path: on a fixed mid-size dual instance, Decide must
// cost only its per-call setup (result, scratch, per-depth frames), not
// per-node allocations. The seed implementation spent ~3500 allocs on this
// instance; the scratch-based engine spends well under 150 regardless of
// tree size.
func TestDecideAllocsPerOp(t *testing.T) {
	g, h := gen.Matching(5), gen.MatchingDual(5)
	// Warm up once (and sanity-check the verdict).
	res, err := core.Decide(g, h)
	if err != nil || !res.Dual {
		t.Fatalf("Decide(matching 5) = %v, %v", res, err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := core.Decide(g, h)
		if err != nil || !res.Dual {
			t.Fatal("wrong verdict")
		}
	})
	if allocs > 150 {
		t.Errorf("Decide allocates %.0f per op; the budget is 150 (per-call setup only)", allocs)
	}
}

// TestTrSubsetAllocsPerOpNonDual covers the witness-producing path: a fail
// leaf adds only the witness, its complement and the fail path descriptor.
func TestTrSubsetAllocsPerOpNonDual(t *testing.T) {
	g := gen.Matching(5)
	h := gen.DropEdge(gen.MatchingDual(5), 11)
	res, err := core.TrSubset(g, h)
	if err != nil || res.Dual {
		t.Fatalf("TrSubset(dropped dual) = %v, %v", res, err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := core.TrSubset(g, h)
		if err != nil || res.Dual {
			t.Fatal("wrong verdict")
		}
	})
	if allocs > 150 {
		t.Errorf("TrSubset allocates %.0f per op; the budget is 150", allocs)
	}
}
