//go:build !race

package core_test

// raceEnabled reports a -race build; sync.Pool intentionally drops items
// under the race detector, so pool-dependent alloc budgets don't hold.
const raceEnabled = false
