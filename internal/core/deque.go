package core

// The work-stealing deque of the parallel tree search (parallel.go). Each
// worker owns one frameDeque of subtree frames: the owner pushes and pops at
// the TOP (LIFO — the frames it just published, deepest first, so unstolen
// children are reclaimed while the scratch still matches their parent),
// thieves steal from the BOTTOM (FIFO — the oldest, shallowest frame, which
// roots the largest expected subtree and so best amortizes the thief's full
// scratch re-synchronization).
//
// The deque is a bounded ring under a per-deque mutex. Contention is one
// uncontended lock per push/pop in the common case (thieves only arrive
// when their own deque is dry), and the bound turns publish-pressure into
// inline descent (the owner keeps the child itself), so a pathological tree
// cannot accumulate unbounded frame storage.

import (
	"sync"

	"dualspace/internal/bitset"
)

// stealFrame is one published subtree: the node set and root-to-node child
// labels (both owned storage, copied at publish time so the frame outlives
// the publisher's per-depth buffers), plus the publisher's batch tag.
type stealFrame struct {
	s    bitset.Set
	path []int
	// tag identifies the (worker, walk-node) batch that published the frame.
	// A worker reclaims its own frames with popIf(tag): a successful pop
	// proves the top frame is one of the batch it just pushed, so the
	// scratch diff-descent invariant (the worker's scratch still matches
	// the frame's parent) holds without any further bookkeeping.
	tag  uint64
	next *stealFrame // free-list link (parallel.go)
}

// dequeCap bounds the frames a worker may have published at once. 256
// frames × one universe-sized set is small, and a full deque simply means
// the owner descends inline — correctness never depends on capacity.
const dequeCap = 256

// frameDeque is one worker's bounded ring. buf[head] is the bottom (steal
// end); buf[(head+size-1)%dequeCap] is the top (owner end).
type frameDeque struct {
	mu   sync.Mutex
	buf  [dequeCap]*stealFrame
	head int
	size int
}

// push publishes f at the top; it reports false (and leaves f untouched)
// when the deque is full.
func (d *frameDeque) push(f *stealFrame) bool {
	d.mu.Lock()
	if d.size == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.size)%dequeCap] = f
	d.size++
	d.mu.Unlock()
	return true
}

// popIf pops the top frame iff it carries the given batch tag, so a
// returning walk reclaims exactly the frames it published and nothing a
// shallower ancestor did.
func (d *frameDeque) popIf(tag uint64) *stealFrame {
	d.mu.Lock()
	if d.size == 0 {
		d.mu.Unlock()
		return nil
	}
	i := (d.head + d.size - 1) % dequeCap
	f := d.buf[i]
	if f.tag != tag {
		d.mu.Unlock()
		return nil
	}
	d.buf[i] = nil
	d.size--
	d.mu.Unlock()
	return f
}

// steal takes the bottom frame, or nil.
func (d *frameDeque) steal() *stealFrame {
	d.mu.Lock()
	if d.size == 0 {
		d.mu.Unlock()
		return nil
	}
	f := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % dequeCap
	d.size--
	d.mu.Unlock()
	return f
}

// drain empties the deque (shutdown path), returning the frames one at a
// time.
func (d *frameDeque) drain() *stealFrame { return d.steal() }
