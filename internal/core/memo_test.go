package core_test

import (
	"math/rand"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// TestMemoDifferential is the soundness guard for the cross-node
// subinstance memo: one memo-carrying Decider decides a long mixed sequence
// of instances — so entries recorded by earlier decisions are live for later
// ones — and every verdict must match the memo-free reference decision, with
// valid witnesses on the non-dual side. The sequence deliberately repeats
// and perturbs instances to force cross-decision hits.
func TestMemoDifferential(t *testing.T) {
	d := core.NewDecider()
	d.EnableMemo(0)
	r := rand.New(rand.NewSource(4))

	check := func(name string, g, h *hypergraph.Hypergraph) {
		t.Helper()
		want, err := core.Decide(g, h)
		if err != nil {
			t.Fatalf("%s: reference Decide: %v", name, err)
		}
		got, err := d.DecideContext(t.Context(), g, h)
		if err != nil {
			t.Fatalf("%s: memoized Decide: %v", name, err)
		}
		if got.Dual != want.Dual || got.Reason != want.Reason {
			t.Fatalf("%s: memoized verdict (dual=%v, %v), want (dual=%v, %v)",
				name, got.Dual, got.Reason, want.Dual, want.Reason)
		}
		if !got.Dual && got.Reason == core.ReasonNewTransversal {
			if !g.IsNewTransversal(got.Witness, h) {
				t.Fatalf("%s: memoized witness %v invalid", name, got.Witness)
			}
		}
	}

	// Named families (twice each: the second pass hits the memo at or near
	// the root) plus dropped-edge perturbations.
	for pass := 0; pass < 2; pass++ {
		for _, p := range gen.Families(11) {
			check(p.Name, p.G, p.H)
		}
	}
	for i := 0; i < 16; i++ {
		n := 4 + r.Intn(4)
		g := gen.Random(r, n, 3+r.Intn(4), 0.3+0.3*r.Float64())
		if g.M() == 0 || g.HasEmptyEdge() {
			continue
		}
		h := transversal.AsHypergraph(g)
		check("rand-dual", g, h)
		if h.M() >= 2 {
			check("rand-dropped", g, gen.DropEdge(h, r.Intn(h.M())))
		}
		sd := gen.SelfDualize(g, h)
		check("rand-selfdual", sd, sd)
	}

	st := d.MemoStats()
	if st.Hits == 0 {
		t.Errorf("memo recorded no hits over the differential sequence (stats %+v)", st)
	}
	if st.Inserts == 0 || st.Entries == 0 {
		t.Errorf("memo recorded no inserts (stats %+v)", st)
	}
}

// TestMemoCrossDecisionHits pins the cross-decision behavior the Session
// layer relies on: deciding the same dual instance twice through one
// memoized Decider resolves the second decision almost entirely from the
// memo (the root's children are skipped), visiting strictly fewer nodes.
func TestMemoCrossDecisionHits(t *testing.T) {
	d := core.NewDecider()
	d.EnableMemo(0)
	g, h := gen.Matching(5), gen.MatchingDual(5)

	first, err := d.DecideContext(t.Context(), g, h)
	if err != nil || !first.Dual {
		t.Fatalf("first decide: %v, %v", first, err)
	}
	firstNodes := first.Stats.Nodes
	if first.Stats.MemoHits != 0 && firstNodes <= 1 {
		t.Fatalf("first decision implausibly small: %+v", first.Stats)
	}

	second, err := d.DecideContext(t.Context(), g, h)
	if err != nil || !second.Dual {
		t.Fatalf("second decide: %v, %v", second, err)
	}
	if second.Stats.MemoHits == 0 {
		t.Errorf("second decision hit the memo 0 times, want > 0")
	}
	if second.Stats.Nodes >= firstNodes {
		t.Errorf("second decision visited %d nodes, want fewer than the first's %d",
			second.Stats.Nodes, firstNodes)
	}
}

// TestMemoBounded drives a tiny memo past its entry bound and checks that
// eviction epochs happen and verdicts stay correct throughout.
func TestMemoBounded(t *testing.T) {
	d := core.NewDecider()
	d.EnableMemo(4)
	for i := 0; i < 3; i++ {
		for _, p := range gen.Families(5) {
			res, err := d.DecideContext(t.Context(), p.G, p.H)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if res.Dual != p.Dual {
				t.Fatalf("%s: dual=%v, want %v", p.Name, res.Dual, p.Dual)
			}
		}
	}
	st := d.MemoStats()
	if st.Entries > 4 {
		t.Errorf("memo holds %d entries, bound is 4", st.Entries)
	}
	if st.Evictions == 0 {
		t.Errorf("expected eviction epochs on a 4-entry memo, stats %+v", st)
	}
}

// TestMemoTrSubsetOracleLoop exercises the memo through the incremental
// oracle pattern of §1 of the paper: repeated TrSubset decisions against a
// growing partial family — the canonical cross-decision reuse case. The
// enumeration must agree with the reference enumerator.
func TestMemoTrSubsetOracleLoop(t *testing.T) {
	d := core.NewDecider()
	d.EnableMemo(0)
	g := gen.Threshold(6, 2)
	partial := hypergraph.New(g.N())
	partial.EnsureIndex() // exercise the AddEdge-maintained index too
	for rounds := 0; ; rounds++ {
		if rounds > 200 {
			t.Fatal("oracle loop did not terminate")
		}
		if partial.M() == 0 {
			// Seed with a first witness exactly like transversal.ViaOracle.
			partial.AddEdge(g.MinimalizeTransversal(g.Vertices()))
			continue
		}
		res, err := d.TrSubsetContext(t.Context(), g, partial)
		if err != nil {
			t.Fatalf("TrSubset round %d: %v", rounds, err)
		}
		if res.Dual {
			break
		}
		if !g.IsNewTransversal(res.Witness, partial) {
			t.Fatalf("round %d: witness %v is not new w.r.t. partial", rounds, res.Witness)
		}
		partial.AddEdge(g.MinimalizeTransversal(res.Witness))
	}
	want := transversal.AsHypergraph(g)
	if !partial.EqualAsFamily(want) {
		t.Fatalf("oracle-driven tr(g) = %v, want %v", partial, want)
	}
}
