package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/fkdual"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// hypergraphFromBytes deterministically decodes raw bytes into a small
// simple hypergraph, giving testing/quick a generator without needing a
// sized universe in the property signature.
func hypergraphFromBytes(raw []byte) *hypergraph.Hypergraph {
	n := 2 + int(sum(raw))%6
	h := hypergraph.New(n)
	e := bitset.New(n)
	for i, b := range raw {
		e.Add(int(b) % n)
		if i%3 == 2 {
			h.AddEdge(e)
			e = bitset.New(n)
		}
	}
	if !e.IsEmpty() {
		h.AddEdge(e)
	}
	if h.M() == 0 {
		h.AddEdgeElems(0)
	}
	return h.Minimize()
}

func sum(raw []byte) int {
	s := 0
	for _, b := range raw {
		s += int(b)
	}
	return s
}

// TestQuickDualOfTr: for every simple hypergraph g, Decide(g, tr(g)) is
// dual — the defining property of the engine.
func TestQuickDualOfTr(t *testing.T) {
	f := func(raw []byte) bool {
		g := hypergraphFromBytes(raw)
		tr := transversal.AsHypergraph(g)
		res, err := core.Decide(g, tr)
		return err == nil && res.Dual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickSymmetry: Decide(g, h) and Decide(h, g) agree on the verdict
// for all pairs (duality is an involution on simple hypergraphs).
func TestQuickSymmetry(t *testing.T) {
	f := func(rawG, rawH []byte) bool {
		g := hypergraphFromBytes(rawG)
		h := hypergraphFromBytes(rawH)
		if g.N() != h.N() {
			return true // incomparable draw; skip
		}
		a, errA := core.Decide(g, h)
		b, errB := core.Decide(h, g)
		if errA != nil || errB != nil {
			return errA != nil && errB != nil
		}
		return a.Dual == b.Dual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnginesAgree: the BM engine and both FK engines return the same
// verdict on arbitrary simple pairs.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(rawG, rawH []byte) bool {
		g := hypergraphFromBytes(rawG)
		h := hypergraphFromBytes(rawH)
		if g.N() != h.N() {
			return true
		}
		bm, err := core.Decide(g, h)
		if err != nil {
			return true
		}
		fa, errA := fkdual.DecideA(g, h)
		fb, errB := fkdual.DecideB(g, h)
		if errA != nil || errB != nil {
			return false
		}
		return fa.Dual == bm.Dual && fb.Dual == bm.Dual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWitnessValid: whenever TrSubset reports a missing transversal,
// its witness actually is one.
func TestQuickWitnessValid(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for i := 0; i < 200; i++ {
		g := hypergraphFromBytes(randBytes(r, 3+r.Intn(12)))
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		tr := transversal.AsHypergraph(g)
		if tr.M() < 2 {
			continue
		}
		// Drop a random nonempty subset of tr's edges.
		partial := hypergraph.New(g.N())
		dropped := 0
		for j := 0; j < tr.M(); j++ {
			if r.Intn(3) == 0 {
				dropped++
				continue
			}
			partial.AddEdge(tr.Edge(j))
		}
		if dropped == 0 || partial.M() == 0 {
			continue
		}
		res, err := core.TrSubset(g, partial)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dual {
			t.Fatalf("dropped %d transversals but TrSubset claims complete (g=%v)", dropped, g)
		}
		if !g.IsNewTransversal(res.Witness, partial) {
			t.Fatalf("invalid witness %v", res.Witness)
		}
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// TestQuickStatsBounds: on every decided pair the recorded tree statistics
// respect the paper's bounds.
func TestQuickStatsBounds(t *testing.T) {
	f := func(rawG []byte) bool {
		g := hypergraphFromBytes(rawG)
		if g.HasEmptyEdge() || g.M() == 0 {
			return true
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			return true
		}
		a, b := g, h
		if b.M() > a.M() {
			a, b = b, a
		}
		res, err := core.TrSubset(a, b)
		if err != nil {
			return true
		}
		bound := 0
		for m := b.M(); m > 1; m >>= 1 {
			bound++
		}
		return res.Stats.MaxDepth <= bound && res.Stats.MaxChildren <= a.N()*a.M()+1 && res.Stats.Leaves >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
