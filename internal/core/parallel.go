package core

// Work-stealing parallel tree search. The Boros–Makino decomposition was
// introduced as a parallel algorithm (their ICALP 2009 result runs it on an
// EREW PRAM in O(log²n) time; Gottlob's §1 recounts this), because the
// tree's subtrees are completely independent: each node is a pure function
// of its set Sα. DecideParallel exploits exactly that independence.
//
// The scheduler is a fixed pool of P workers, each owning a bounded LIFO
// deque of subtree frames (deque.go). At an internal node a worker keeps
// the first child for itself — descending by removed-vertex diffs on its
// incremental scratch, exactly like the serial walker — and publishes the
// remaining children as frames. When the walk returns it reclaims its own
// unstolen frames newest-first (popIf, so the scratch still matches their
// parent and the diff descent stays O(changed)); only frames STOLEN by an
// idle worker pay a full syncTo re-synchronization at the subtree root.
// Thieves steal from the bottom of a random victim's deque — the
// shallowest, largest-expected subtree — so skewed trees (majority-N's one
// deep branch) keep every worker busy instead of serializing behind a
// single spawn chain, and the steal count stays logarithmic in practice.
//
// Verdict protocol and bounds are unchanged from the spawn-per-subtree
// model this replaces: every worker polls cancellation at every node (one
// tree-node drain bound), the first fail leaf recorded wins (any fail
// witness is equally valid; tests check validity), and a context
// cancellation that beats every fail leaf surfaces ctx.Err(). Termination
// is a counter of outstanding frames (published or being walked): it hits
// zero exactly when the whole tree is done. Idle workers park on a bounded
// hint channel; a hint is sent per publish, and a worker about to park
// while every peer is also idle and frames remain re-scans instead of
// sleeping, so no frame can be stranded by a lost wakeup.
//
// The search object (deques, frame free list, worker states, scratch pool)
// is recycled through a package pool, so steady-state decisions allocate
// only the per-run channels and goroutines, independent of tree size.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
)

// Cumulative scheduler totals across every parallel search in the process,
// for the observability bridges (service/obs.go reads them at scrape time).
var (
	totalSteals    atomic.Int64
	totalSpawns    atomic.Int64
	totalIdleParks atomic.Int64
)

// ParallelSearchTotals reports process-wide work-stealing counters: frames
// published for stealing, frames actually stolen, and idle worker parks.
func ParallelSearchTotals() (spawns, steals, idleParks int64) {
	return totalSpawns.Load(), totalSteals.Load(), totalIdleParks.Load()
}

// ParallelOptions parameterizes DecideParallelOpts.
type ParallelOptions struct {
	// Workers bounds the worker pool (0 means GOMAXPROCS).
	Workers int
	// Rec, when non-nil, receives stage timings: precheck, index build,
	// walk wall time net of steal re-synchronization, and the cumulative
	// steal re-synchronization time under obs.StageWalkSteals. Unlike the
	// serial stages, walk and walk_steals aggregate across workers, so on
	// multi-core runs their sum can exceed the walk's wall clock.
	Rec *obs.Recorder
}

// DecideParallel is Decide with the tree stage searched by a work-stealing
// pool of `workers` goroutines (0 means GOMAXPROCS). Verdict and Reason
// agree with Decide; Witness/FailPath may name a different (equally valid)
// fail leaf, and Stats.Nodes counts the nodes actually visited before
// cancellation.
func DecideParallel(g, h *hypergraph.Hypergraph, workers int) (*Result, error) {
	return DecideParallelContext(context.Background(), g, h, workers)
}

// DecideParallelContext is DecideParallel with cancellation: every worker
// polls ctx at every node it visits, so a cancelled ctx drains the search
// within one tree-node boundary per worker. If a fail leaf was recorded
// before the cancellation won the race, the (valid) non-dual verdict is
// returned instead of the context error.
func DecideParallelContext(ctx context.Context, g, h *hypergraph.Hypergraph, workers int) (*Result, error) {
	return DecideParallelOpts(ctx, g, h, ParallelOptions{Workers: workers})
}

// DecideParallelOpts is DecideParallelContext with options (worker bound,
// stage recorder).
func DecideParallelOpts(ctx context.Context, g, h *hypergraph.Hypergraph, opt ParallelOptions) (*Result, error) {
	pres := &Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	t0 := time.Time{}
	if opt.Rec != nil {
		t0 = time.Now()
	}
	gi, hi := indexFor(g), indexFor(h)
	if opt.Rec != nil {
		opt.Rec.Add(obs.StageIndexSync, time.Since(t0))
		t0 = time.Now()
	}
	done, err := precheckIntoIdx(g, h, gi, hi,
		bitset.New(gi.OccUniverse()), bitset.New(hi.OccUniverse()), pres)
	if opt.Rec != nil {
		opt.Rec.Add(obs.StagePrecheck, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	if done {
		return pres, nil
	}

	a, b, swapped := g, h, false
	ai, bi := gi, hi
	if h.M() > g.M() {
		a, b, swapped = h, g, true
		ai, bi = hi, gi
	}
	res := trSubsetParallel(ctx, a, b, ai, bi, opt.Workers, opt.Rec)
	if res == nil {
		return nil, ctx.Err()
	}
	res.Swapped = swapped
	if !res.Dual && swapped {
		res.Witness, res.CoWitness = res.CoWitness, res.Witness
	}
	return res, nil
}

// stealSearch is the recyclable state of one work-stealing search run.
type stealSearch struct {
	g, h    *hypergraph.Hypergraph
	gi, hi  *hypergraph.Index
	workers int

	states  sync.Pool    // of *walkState; scratch storage survives across runs
	deques  []frameDeque // one per worker
	wrk     []stealWorker
	leafBy  []int64 // leaves classified per worker (fairness signal)
	freeMu  sync.Mutex
	free    *stealFrame // frame free list, retained across runs
	wg      sync.WaitGroup
	work    chan struct{} // bounded wake hints, one send per publish
	stop    chan struct{} // closed by the first fail leaf
	allDone chan struct{} // closed when outstanding hits zero
	done    <-chan struct{}
	once    sync.Once // guards close(stop)
	dOnce   sync.Once // guards close(allDone)

	outstanding atomic.Int64 // frames published or being walked
	idle        atomic.Int64 // workers currently parking

	mu       sync.Mutex
	failT    bitset.Set
	failPath []int
	failSet  bool

	nodes, leaves, steals, spawns, idleParks atomic.Int64
	maxDepth, maxChildren                    int64
	stealNs                                  atomic.Int64 // syncTo time on stolen frames
	drained                                  atomic.Int32 // ctx cancellation observed
	traceSteals                              bool
}

// stealWorker is one worker's run state: node-local counters (flushed once
// at exit, so the hot path pays no atomics) and the xorshift cursor that
// randomizes victim choice.
type stealWorker struct {
	p                                    *stealSearch
	id                                   int
	seq                                  uint64 // batch counter behind the popIf tags
	rng                                  uint64
	nodes, leaves, steals, spawns, parks int64
	maxDepth, maxChildren                int64
	stealNs                              int64
}

var searchPool sync.Pool // of *stealSearch

// acquireStealSearch readies a pooled (or fresh) search for one run.
func acquireStealSearch(ctx context.Context, g, h *hypergraph.Hypergraph, gi, hi *hypergraph.Index, workers int, rec *obs.Recorder) *stealSearch {
	var p *stealSearch
	if v := searchPool.Get(); v != nil {
		p = v.(*stealSearch)
	} else {
		p = &stealSearch{}
		p.states.New = func() any {
			return &walkState{sc: &scratch{dedup: make(map[uint64]int32)}}
		}
	}
	p.g, p.h, p.gi, p.hi = g, h, gi, hi
	p.workers = workers
	if cap(p.deques) < workers {
		p.deques = make([]frameDeque, workers)
		p.wrk = make([]stealWorker, workers)
		p.leafBy = make([]int64, workers)
	}
	p.deques = p.deques[:workers]
	p.wrk = p.wrk[:workers]
	p.leafBy = p.leafBy[:workers]
	for i := range p.leafBy {
		p.leafBy[i] = 0
	}
	p.work = make(chan struct{}, workers)
	p.stop = make(chan struct{})
	p.allDone = make(chan struct{})
	p.done = ctx.Done()
	p.once = sync.Once{}
	p.dOnce = sync.Once{}
	p.outstanding.Store(0)
	p.idle.Store(0)
	p.nodes.Store(0)
	p.leaves.Store(0)
	p.steals.Store(0)
	p.spawns.Store(0)
	p.idleParks.Store(0)
	p.stealNs.Store(0)
	p.maxDepth, p.maxChildren = 0, 0
	p.drained.Store(0)
	p.failSet = false
	p.failT = bitset.Set{}
	p.failPath = nil
	p.traceSteals = rec != nil
	return p
}

// trSubsetParallel runs the work-stealing tree search; it returns nil when
// ctx was cancelled before any fail leaf was recorded (the caller surfaces
// ctx.Err()). gi and hi are the read-only incidence indexes of g and h,
// shared by every worker's scratch.
func trSubsetParallel(ctx context.Context, g, h *hypergraph.Hypergraph, gi, hi *hypergraph.Index, workers int, rec *obs.Recorder) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := acquireStealSearch(ctx, g, h, gi, hi, workers, rec)

	// Publish the root as the one initial frame; worker 0 finds it in its
	// own deque, everyone else races to steal it or parks.
	root := p.newFrame()
	root.s.CopyFrom(bitset.Full(g.N()))
	root.path = root.path[:0]
	root.tag = 0
	p.outstanding.Store(1)
	p.deques[0].push(root)

	t0 := time.Time{}
	if rec != nil {
		t0 = time.Now()
	}
	p.wg.Add(workers)
	for id := 0; id < workers; id++ { //dual:allow(ctxpoll: O(workers) spawn loop; the workers themselves poll ctx at every tree node)
		w := &p.wrk[id]
		*w = stealWorker{p: p, id: id, rng: uint64(id)*0x9E3779B97F4A7C15 + 0x1234567}
		go w.run()
	}
	p.wg.Wait()
	if rec != nil {
		wall := time.Since(t0)
		stealNs := time.Duration(p.stealNs.Load())
		if net := wall - stealNs; net > 0 {
			rec.Add(obs.StageWalk, net)
		}
		rec.Add(obs.StageWalkSteals, stealNs)
	}

	res := &Result{Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	res.Stats = Stats{
		Nodes:       int(p.nodes.Load()),
		Leaves:      int(p.leaves.Load()),
		MaxDepth:    int(atomic.LoadInt64(&p.maxDepth)),
		MaxChildren: int(atomic.LoadInt64(&p.maxChildren)),
		Spawns:      int(p.spawns.Load()),
		Steals:      int(p.steals.Load()),
	}
	for _, n := range p.leafBy {
		if n > 0 {
			res.Stats.LeafWorkers++
		}
	}
	totalSpawns.Add(p.spawns.Load())
	totalSteals.Add(p.steals.Load())
	totalIdleParks.Add(p.idleParks.Load())

	p.mu.Lock()
	failSet, failT, failPath := p.failSet, p.failT, p.failPath
	p.mu.Unlock()
	drained := p.drained.Load() != 0

	// Drain frames a cancellation left behind, then recycle the search.
	for i := range p.deques { //dual:allow(ctxpoll: post-run cleanup after every worker exited; bounded by dequeCap frames per worker)
		for f := p.deques[i].drain(); f != nil; f = p.deques[i].drain() {
			p.releaseFrame(f)
		}
	}
	p.g, p.h, p.gi, p.hi = nil, nil, nil, nil
	p.done = nil
	searchPool.Put(p)

	if failSet {
		res.Dual = false
		res.Reason = ReasonNewTransversal
		res.Witness = failT
		res.CoWitness = failT.Complement()
		res.FailPath = failPath
		return res
	}
	if drained {
		return nil // cancelled with no verdict reached
	}
	return res
}

// newFrame takes a frame off the free list (or allocates one) and fits its
// set storage to the current universe.
func (p *stealSearch) newFrame() *stealFrame {
	p.freeMu.Lock()
	f := p.free
	if f != nil {
		p.free = f.next
	}
	p.freeMu.Unlock()
	if f == nil {
		f = &stealFrame{}
	}
	f.next = nil
	if f.s.Universe() != p.g.N() {
		f.s = bitset.New(p.g.N())
	}
	return f
}

func (p *stealSearch) releaseFrame(f *stealFrame) {
	p.freeMu.Lock()
	f.next = p.free
	p.free = f
	p.freeMu.Unlock()
}

// frameDone retires one outstanding frame; the last one ends the search.
func (p *stealSearch) frameDone() {
	if p.outstanding.Add(-1) == 0 {
		p.dOnce.Do(func() { close(p.allDone) })
	}
}

// hint wakes one parked worker if the hint channel has room; a full channel
// already guarantees pending wakeups.
func (p *stealSearch) hint() {
	select {
	case p.work <- struct{}{}:
	default:
	}
}

func (p *stealSearch) cancelled() bool {
	select {
	case <-p.stop:
		return true
	default:
	}
	if p.done != nil {
		select {
		case <-p.done:
			p.drained.Store(1)
			return true
		default:
		}
	}
	return false
}

func (p *stealSearch) recordFail(t bitset.Set, path []int) {
	p.mu.Lock()
	if !p.failSet {
		p.failSet = true
		p.failT = t.Clone()
		p.failPath = append([]int{}, path...)
	}
	p.mu.Unlock()
	p.once.Do(func() { close(p.stop) })
}

// run is one worker's main loop: bind a pooled walker state to the shared
// instance, then alternate between finding a frame (own deque, then steals)
// and walking its subtree from a full re-synchronization.
func (w *stealWorker) run() {
	p := w.p
	defer p.wg.Done()
	st := p.states.Get().(*walkState)
	st.sc.bindShared(p.g, p.h, p.gi, p.hi)
	for {
		f, stolen := w.next()
		if f == nil {
			break
		}
		st.path = append(st.path[:0], f.path...)
		var t0 time.Time
		if stolen && p.traceSteals {
			t0 = time.Now()
		}
		st.sc.syncTo(f.s)
		if stolen && p.traceSteals {
			w.stealNs += int64(time.Since(t0))
		}
		w.walk(st, f.s, len(f.path))
		p.releaseFrame(f)
		p.frameDone()
	}
	p.states.Put(st)
	p.nodes.Add(w.nodes)
	p.leaves.Add(w.leaves)
	p.steals.Add(w.steals)
	p.spawns.Add(w.spawns)
	p.idleParks.Add(w.parks)
	p.stealNs.Add(w.stealNs)
	p.leafBy[w.id] = w.leaves
	atomicMax(&p.maxDepth, w.maxDepth)
	atomicMax(&p.maxChildren, w.maxChildren)
}

// next returns the worker's next frame, parking when the whole pool is out
// of work; nil means the search ended (verdict reached or cancelled).
func (w *stealWorker) next() (*stealFrame, bool) {
	p := w.p
	for {
		if p.cancelled() {
			return nil, false
		}
		if f, stolen := w.findWork(); f != nil {
			return f, stolen
		}
		idle := p.idle.Add(1)
		if idle == int64(p.workers) && p.outstanding.Load() > 0 {
			// Everyone is idle yet frames remain in some deque (nobody is
			// walking, so outstanding counts only parked frames): re-scan
			// instead of sleeping, so a consumed hint can never strand them.
			p.idle.Add(-1)
			runtime.Gosched()
			continue
		}
		w.parks++
		select {
		case <-p.work:
			p.idle.Add(-1)
		case <-p.stop:
			p.idle.Add(-1)
			return nil, false
		case <-p.allDone:
			p.idle.Add(-1)
			return nil, false
		case <-p.done:
			p.idle.Add(-1)
			p.drained.Store(1)
			return nil, false
		}
	}
}

// findWork checks the worker's own deque, then sweeps the other deques from
// a random start, stealing the bottom (shallowest) frame of the first
// non-empty victim.
func (w *stealWorker) findWork() (*stealFrame, bool) {
	p := w.p
	if f := p.deques[w.id].steal(); f != nil {
		return f, false // own leftover (the root frame, in practice)
	}
	// xorshift64 victim cursor: cheap, per-worker, deterministic seed.
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	off := int(w.rng % uint64(p.workers))
	for i := 0; i < p.workers; i++ {
		v := (off + i) % p.workers
		if v == w.id {
			continue
		}
		if f := p.deques[v].steal(); f != nil {
			w.steals++
			return f, true
		}
	}
	return nil, false
}

// walk classifies s at the given depth on st (whose path buffer holds the
// labels of the ancestors and whose incremental scratch state matches s) and
// descends. The first child is walked inline by removed-vertex diffs; the
// rest are published as steal frames and reclaimed newest-first after the
// inline descent — still by diffs — unless a thief took them meanwhile.
func (w *stealWorker) walk(st *walkState, s bitset.Set, depth int) {
	p := w.p
	if p.cancelled() {
		return
	}
	fr := st.frame(depth)
	v := st.sc.classifyNode(s, fr)
	w.nodes++
	if int64(depth) > w.maxDepth {
		w.maxDepth = int64(depth)
	}
	if v.mark != MarkNil {
		w.leaves++
		if v.mark == MarkFail {
			p.recordFail(st.sc.wit, st.path[:depth])
		}
		return
	}
	if int64(fr.nChildren) > w.maxChildren {
		w.maxChildren = int64(fr.nChildren)
	}

	// Publish children nChildren-1 … 1 (reverse order, so reclaims and
	// steals both see ascending child indexes), keeping child 0 inline.
	// A full deque stops publishing; the remainder is walked inline too.
	pushed := 0
	var tag uint64
	if fr.nChildren > 1 {
		w.seq++
		tag = uint64(w.id+1)<<32 | w.seq
		for i := fr.nChildren - 1; i >= 1; i-- {
			f := p.newFrame()
			f.s.CopyFrom(fr.children[i])
			f.path = append(append(f.path[:0], st.path[:depth]...), i+1)
			f.tag = tag
			p.outstanding.Add(1)
			if !p.deques[w.id].push(f) {
				p.outstanding.Add(-1)
				p.releaseFrame(f)
				break
			}
			pushed++
			w.spawns++
			p.hint()
		}
	}

	// Inline children: 0 plus whatever the bounded deque rejected.
	for i := 0; i < fr.nChildren-pushed; i++ {
		if p.cancelled() {
			break
		}
		c := fr.children[i]
		st.path = append(st.path[:depth], i+1)
		rem := s.AppendDiffElems(c, st.remBuf(depth))
		st.rem[depth] = rem
		for _, u := range rem {
			st.sc.removeVertex(u)
		}
		w.walk(st, c, depth+1)
		for _, u := range rem {
			st.sc.restoreVertex(u)
		}
	}

	// Reclaim own unstolen frames while the scratch still matches their
	// parent; a tag mismatch or empty deque means thieves own the rest.
	for pushed > 0 {
		f := p.deques[w.id].popIf(tag)
		if f == nil {
			break
		}
		pushed--
		if p.cancelled() {
			// Retire without walking; the verdict is already decided.
			p.releaseFrame(f)
			p.frameDone()
			continue
		}
		st.path = append(st.path[:depth], f.path[depth])
		rem := s.AppendDiffElems(f.s, st.remBuf(depth))
		st.rem[depth] = rem
		for _, u := range rem {
			st.sc.removeVertex(u)
		}
		w.walk(st, f.s, depth+1)
		for _, u := range rem {
			st.sc.restoreVertex(u)
		}
		p.releaseFrame(f)
		p.frameDone()
	}
}

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
