package core

// Parallel tree search. The Boros–Makino decomposition was introduced as a
// parallel algorithm (their ICALP 2009 result runs it on an EREW PRAM in
// O(log²n) time; Gottlob's §1 recounts this), because the tree's subtrees
// are completely independent: each node is a pure function of its set Sα.
// DecideParallel exploits exactly that independence with a bounded pool of
// goroutines, as a practical counterpart to the PRAM remark. The verdict
// is identical to the serial search; on non-dual instances the reported
// witness is the first fail leaf *found*, which — unlike serial search —
// need not be the DFS-first one (every fail witness is equally valid, and
// the tests check validity).
//
// Each concurrent subtree runs on its own worker state (scratch + frame
// stack + path buffer) drawn from a sync.Pool, so steady-state node work is
// allocation-free; only spawning a subtree clones the child set and path
// prefix the new goroutine takes ownership of.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
)

// DecideParallel is Decide with the tree stage searched by up to `workers`
// goroutines (0 means GOMAXPROCS). Verdict and Reason agree with Decide;
// Witness/FailPath may name a different (equally valid) fail leaf, and
// Stats.Nodes counts the nodes actually visited before cancellation.
func DecideParallel(g, h *hypergraph.Hypergraph, workers int) (*Result, error) {
	return DecideParallelContext(context.Background(), g, h, workers)
}

// DecideParallelContext is DecideParallel with cancellation: every worker
// polls ctx at every node it visits, so a cancelled ctx drains the search
// within one tree-node boundary per worker. If a fail leaf was recorded
// before the cancellation won the race, the (valid) non-dual verdict is
// returned instead of the context error.
func DecideParallelContext(ctx context.Context, g, h *hypergraph.Hypergraph, workers int) (*Result, error) {
	pres := &Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	gi, hi := indexFor(g), indexFor(h)
	done, err := precheckIntoIdx(g, h, gi, hi,
		bitset.New(gi.OccUniverse()), bitset.New(hi.OccUniverse()), pres)
	if err != nil {
		return nil, err
	}
	if done {
		return pres, nil
	}

	a, b, swapped := g, h, false
	ai, bi := gi, hi
	if h.M() > g.M() {
		a, b, swapped = h, g, true
		ai, bi = hi, gi
	}
	res := trSubsetParallel(ctx, a, b, ai, bi, workers)
	if res == nil {
		return nil, ctx.Err()
	}
	res.Swapped = swapped
	if !res.Dual && swapped {
		res.Witness, res.CoWitness = res.CoWitness, res.Witness
	}
	return res, nil
}

type parallelSearch struct {
	g, h *hypergraph.Hypergraph

	states sync.Pool     // of *walkState
	sem    chan struct{} // bounds concurrent subtree goroutines
	wg     sync.WaitGroup
	stop   chan struct{}
	done   <-chan struct{} // external cancellation (ctx.Done())
	once   sync.Once

	mu       sync.Mutex
	failT    bitset.Set
	failPath []int
	failSet  bool

	nodes       int64
	leaves      int64
	maxDepth    int64
	maxChildren int64
	drained     int32 // set when some worker aborted due to ctx, not a fail leaf
}

// trSubsetParallel runs the parallel tree search; it returns nil when ctx
// was cancelled before any fail leaf was recorded (the caller surfaces
// ctx.Err()). gi and hi are the read-only incidence indexes of g and h,
// shared by every worker's scratch.
func trSubsetParallel(ctx context.Context, g, h *hypergraph.Hypergraph, gi, hi *hypergraph.Index, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &parallelSearch{
		g: g, h: h,
		sem:  make(chan struct{}, workers),
		stop: make(chan struct{}),
		done: ctx.Done(),
	}
	p.states.New = func() any {
		w := &walkState{sc: &scratch{dedup: make(map[uint64]int32)}}
		w.sc.bindShared(g, h, gi, hi)
		return w
	}
	st := p.states.Get().(*walkState)
	root := bitset.Full(g.N())
	st.sc.syncTo(root)
	p.walk(st, root, 0)
	p.states.Put(st)
	p.wg.Wait()

	res := &Result{Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	res.Stats = Stats{
		Nodes:       int(atomic.LoadInt64(&p.nodes)),
		Leaves:      int(atomic.LoadInt64(&p.leaves)),
		MaxDepth:    int(atomic.LoadInt64(&p.maxDepth)),
		MaxChildren: int(atomic.LoadInt64(&p.maxChildren)),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failSet {
		res.Dual = false
		res.Reason = ReasonNewTransversal
		res.Witness = p.failT
		res.CoWitness = p.failT.Complement()
		res.FailPath = p.failPath
		return res
	}
	if atomic.LoadInt32(&p.drained) != 0 {
		return nil // cancelled with no verdict reached
	}
	return res
}

func (p *parallelSearch) cancelled() bool {
	select {
	case <-p.stop:
		return true
	default:
	}
	if p.done != nil {
		select {
		case <-p.done:
			atomic.StoreInt32(&p.drained, 1)
			return true
		default:
		}
	}
	return false
}

// walk classifies s at the given depth on st (whose path buffer holds the
// labels of the ancestors and whose incremental scratch state matches s) and
// descends: inline on st when the pool is saturated — maintaining the
// scratch by removed-vertex diffs — otherwise handing cloned child state to
// a fresh goroutine, which re-synchronizes its pooled scratch at the
// subtree root.
func (p *parallelSearch) walk(st *walkState, s bitset.Set, depth int) {
	if p.cancelled() {
		return
	}
	fr := st.frame(depth)
	v := st.sc.classifyNode(s, fr)
	atomic.AddInt64(&p.nodes, 1)
	atomicMax(&p.maxDepth, int64(depth))
	if v.mark != MarkNil {
		atomic.AddInt64(&p.leaves, 1)
		if v.mark == MarkFail {
			p.recordFail(st.sc.wit, st.path[:depth])
		}
		return
	}
	atomicMax(&p.maxChildren, int64(fr.nChildren))
	for i := 0; i < fr.nChildren; i++ {
		if p.cancelled() {
			return
		}
		c := fr.children[i]
		select {
		case p.sem <- struct{}{}:
			p.wg.Add(1)
			// The goroutine outlives this frame and path buffer: clone both
			// before handing off.
			cs := c.Clone()
			cp := append(append(make([]int, 0, depth+1), st.path[:depth]...), i+1)
			go func() {
				defer p.wg.Done()
				defer func() { <-p.sem }()
				st2 := p.states.Get().(*walkState)
				st2.path = append(st2.path[:0], cp...)
				st2.sc.syncTo(cs)
				p.walk(st2, cs, depth+1)
				p.states.Put(st2)
			}()
		default:
			// Pool exhausted: descend inline to keep progress bounded.
			st.path = append(st.path[:depth], i+1)
			rem := s.AppendDiffElems(c, st.remBuf(depth))
			st.rem[depth] = rem
			for _, u := range rem {
				st.sc.removeVertex(u)
			}
			p.walk(st, c, depth+1)
			for _, u := range rem {
				st.sc.restoreVertex(u)
			}
		}
	}
}

func (p *parallelSearch) recordFail(t bitset.Set, path []int) {
	p.mu.Lock()
	if !p.failSet {
		p.failSet = true
		p.failT = t.Clone()
		p.failPath = append([]int{}, path...)
	}
	p.mu.Unlock()
	p.once.Do(func() { close(p.stop) })
}

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
