package core_test

import (
	"math"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

func mustDecide(t *testing.T, g, h *hypergraph.Hypergraph) *core.Result {
	t.Helper()
	res, err := core.Decide(g, h)
	if err != nil {
		t.Fatalf("Decide error: %v", err)
	}
	return res
}

func TestConstants(t *testing.T) {
	n := 4
	bot := hypergraph.New(n)                          // ⊥: no edges
	top := hypergraph.MustFromEdges(n, [][]int{{}})   // ⊤: {∅}
	some := hypergraph.MustFromEdges(n, [][]int{{0}}) // a variable

	if !mustDecide(t, bot, top).Dual || !mustDecide(t, top, bot).Dual {
		t.Error("⊥/⊤ should be dual")
	}
	for _, pair := range [][2]*hypergraph.Hypergraph{
		{bot, bot}, {top, top}, {bot, some}, {some, top}, {top, some}, {some, bot},
	} {
		res := mustDecide(t, pair[0], pair[1])
		if res.Dual {
			t.Errorf("constant pair wrongly dual: %v / %v", pair[0], pair[1])
		}
		if res.Reason != core.ReasonConstantMismatch {
			t.Errorf("reason = %v, want constant mismatch", res.Reason)
		}
	}
}

func TestKnownDualPairs(t *testing.T) {
	cases := []struct {
		name string
		n    int
		g, h [][]int
	}{
		{"single variable", 1, [][]int{{0}}, [][]int{{0}}},
		{"and/or", 2, [][]int{{0, 1}}, [][]int{{0}, {1}}},
		{"matching-2", 4, [][]int{{0, 1}, {2, 3}}, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}}},
		{"triangle self-dual", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, [][]int{{0, 1}, {1, 2}, {0, 2}}},
		{"path", 3, [][]int{{0, 1}, {1, 2}}, [][]int{{1}, {0, 2}}},
		{"threshold 2-of-4", 4,
			[][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
			[][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}},
	}
	for _, c := range cases {
		g := hypergraph.MustFromEdges(c.n, c.g)
		h := hypergraph.MustFromEdges(c.n, c.h)
		if res := mustDecide(t, g, h); !res.Dual {
			t.Errorf("%s: not recognized dual: %v", c.name, res)
		}
		// Symmetry.
		if res := mustDecide(t, h, g); !res.Dual {
			t.Errorf("%s (swapped): not recognized dual: %v", c.name, res)
		}
	}
}

func TestPreconditionReasons(t *testing.T) {
	n := 4
	g := hypergraph.MustFromEdges(n, [][]int{{0, 1}, {2, 3}})

	// Cross-intersection violation: {0,1} disjoint from {2,3}.
	h := hypergraph.MustFromEdges(n, [][]int{{0, 1}})
	res := mustDecide(t, g, h)
	if res.Dual || res.Reason != core.ReasonNotCrossIntersecting {
		t.Errorf("want cross-intersection violation, got %v", res)
	}

	// Non-minimal h-edge: {0,2,3} is a transversal but not minimal.
	h2 := hypergraph.MustFromEdges(n, [][]int{{0, 2, 3}})
	res = mustDecide(t, g, h2)
	if res.Dual || res.Reason != core.ReasonHEdgeNotMinimal {
		t.Errorf("want h-minimality violation, got %v", res)
	}
	if res.HEdge != 0 || res.RedundantVertex < 0 {
		t.Errorf("violation details: %+v", res)
	}

	// Non-minimal g-edge: h ⊆ tr(g) holds but a g-edge is a non-minimal
	// transversal of h. A = {{0,1},{2}}, B = {{0,2}}: B's edge is a minimal
	// transversal of A, while A's edge {0,1} has redundant vertex 1 w.r.t. B.
	a := hypergraph.MustFromEdges(3, [][]int{{0, 1}, {2}})
	b := hypergraph.MustFromEdges(3, [][]int{{0, 2}})
	res = mustDecide(t, a, b)
	if res.Dual || res.Reason != core.ReasonGEdgeNotMinimal {
		t.Errorf("want g-minimality violation, got %v", res)
	}
	if res.GEdge != 0 || res.RedundantVertex != 1 {
		t.Errorf("violation details: %+v", res)
	}

	// Incomplete h: missing minimal transversals.
	h3 := hypergraph.MustFromEdges(n, [][]int{{0, 2}, {0, 3}, {1, 2}})
	res = mustDecide(t, g, h3)
	if res.Dual || res.Reason != core.ReasonNewTransversal {
		t.Errorf("want new transversal, got %v", res)
	}
	if !g.IsNewTransversal(res.Witness, h3) {
		t.Errorf("witness %v is not a new transversal", res.Witness)
	}
	// The missing minimal transversal {1,3} must be inside the witness.
	if !bitset.FromSlice(n, []int{1, 3}).SubsetOf(res.Witness) {
		t.Errorf("witness %v does not contain the missing transversal {1,3}", res.Witness)
	}
}

func TestErrorCases(t *testing.T) {
	g := hypergraph.MustFromEdges(3, [][]int{{0, 1}})
	hWrongUniverse := hypergraph.MustFromEdges(4, [][]int{{0, 1}})
	if _, err := core.Decide(g, hWrongUniverse); err == nil {
		t.Error("universe mismatch accepted")
	}
	notSimple := hypergraph.MustFromEdges(3, [][]int{{0}, {0, 1}})
	if _, err := core.Decide(notSimple, g); err == nil {
		t.Error("non-simple g accepted")
	}
	if _, err := core.Decide(g, notSimple); err == nil {
		t.Error("non-simple h accepted")
	}
	if _, err := core.TrSubset(hypergraph.New(3), g); err == nil {
		t.Error("TrSubset accepted constant input")
	}
	disjoint := hypergraph.MustFromEdges(3, [][]int{{2}})
	if _, err := core.TrSubset(g, disjoint); err == nil {
		t.Error("TrSubset accepted non-cross-intersecting pair")
	}
}

func TestAgainstGroundTruth(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 120; i++ {
		n := 2 + r.Intn(7)
		g := randomSimple(r, n, 1+r.Intn(6))
		if g.HasEmptyEdge() {
			continue
		}
		tr := transversal.AsHypergraph(g)

		// Exact dual must be recognized.
		res := mustDecide(t, g, tr)
		if !res.Dual {
			t.Fatalf("g=%v tr=%v: Decide says %v", g, tr, res)
		}

		// Dropping any edge of the dual must be detected with a valid
		// witness containing the dropped transversal... (the witness must
		// witness *some* missing transversal; validate structurally).
		if tr.M() >= 2 {
			drop := r.Intn(tr.M())
			partial := hypergraph.New(n)
			for j := 0; j < tr.M(); j++ {
				if j != drop {
					partial.AddEdge(tr.Edge(j))
				}
			}
			res := mustDecide(t, g, partial)
			if res.Dual {
				t.Fatalf("dropped edge not detected: g=%v partial=%v", g, partial)
			}
			// Decide may legitimately stop at a precondition violation
			// (dropping a transversal can make g-edges non-minimal w.r.t.
			// partial). The tree stage, TrSubset, must always produce a
			// valid witness.
			tres, err := core.TrSubset(g, partial)
			if err != nil {
				t.Fatal(err)
			}
			if tres.Dual {
				t.Fatalf("TrSubset missed the dropped transversal: g=%v partial=%v", g, partial)
			}
			if !g.IsNewTransversal(tres.Witness, partial) {
				t.Fatalf("invalid witness %v for g=%v partial=%v", tres.Witness, g, partial)
			}
			// CoWitness property: complement is a new transversal of
			// partial w.r.t. g.
			if !partial.IsNewTransversal(tres.CoWitness, g) {
				t.Fatalf("invalid co-witness %v", tres.CoWitness)
			}
			// Minimalizing the witness yields a minimal transversal of g
			// that is not in partial.
			m := g.MinimalizeTransversal(tres.Witness)
			if partial.ContainsEdge(m) {
				t.Fatalf("minimalized witness %v already present", m)
			}
		}
	}
}

func TestDepthAndBranchingBounds(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 80; i++ {
		n := 2 + r.Intn(7)
		g := randomSimple(r, n, 1+r.Intn(6))
		if g.HasEmptyEdge() {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 || g.M() == 0 {
			continue
		}
		a, b := g, h
		if b.M() > a.M() {
			a, b = b, a
		}
		res, err := core.TrSubset(a, b)
		if err != nil {
			t.Fatal(err)
		}
		bound := floorLog2(b.M())
		if res.Stats.MaxDepth > bound {
			t.Fatalf("depth %d exceeds ⌊log₂|H|⌋=%d for |H|=%d (g=%v)", res.Stats.MaxDepth, bound, b.M(), a)
		}
		if res.Stats.MaxChildren > a.N()*a.M()+1 {
			t.Fatalf("branching %d exceeds |V||G|+1=%d", res.Stats.MaxChildren, a.N()*a.M()+1)
		}
	}
}

func floorLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(x))))
}

func TestBuildTreeMatchesDecide(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 40; i++ {
		n := 2 + r.Intn(6)
		g := randomSimple(r, n, 1+r.Intn(5))
		if g.HasEmptyEdge() {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		tree, err := core.BuildTree(g, h)
		if err != nil {
			t.Fatal(err)
		}
		done, fail := tree.CountMarks()
		if fail != 0 {
			t.Fatalf("dual instance has %d fail leaves (done=%d): g=%v", fail, done, g)
		}
		// Drop an edge: at least one fail leaf must appear.
		if h.M() >= 2 {
			partial := hypergraph.New(n)
			for j := 1; j < h.M(); j++ {
				partial.AddEdge(h.Edge(j))
			}
			tree2, err := core.BuildTree(g, partial)
			if err != nil {
				t.Fatal(err)
			}
			_, fail2 := tree2.CountMarks()
			if fail2 == 0 {
				t.Fatalf("non-dual instance has no fail leaf: g=%v partial=%v", g, partial)
			}
			// Every fail leaf's witness must be valid.
			tree2.Walk(func(node *core.TreeNode) {
				if node.Info.Mark == core.MarkFail {
					if !g.IsNewTransversal(node.Info.T, partial) {
						t.Fatalf("fail leaf %v has invalid witness %v", node.Label, node.Info.T)
					}
				}
			})
		}
	}
}

func TestClassifyDeterminism(t *testing.T) {
	g := hypergraph.MustFromEdges(6, [][]int{{0, 1}, {2, 3}, {4, 5}})
	h := hypergraph.MustFromEdges(6, [][]int{{0, 2, 4}, {0, 2, 5}, {0, 3, 4}})
	s := bitset.Full(6)
	a := core.Classify(g, h, s)
	b := core.Classify(g, h, s)
	if a.Kind != b.Kind || a.Mark != b.Mark || len(a.Children) != len(b.Children) {
		t.Fatal("Classify not deterministic")
	}
	for i := range a.Children {
		if !a.Children[i].Equal(b.Children[i]) {
			t.Fatal("child order not deterministic")
		}
	}
	// Children must be deduplicated.
	for i := range a.Children {
		for j := i + 1; j < len(a.Children); j++ {
			if a.Children[i].Equal(a.Children[j]) {
				t.Fatal("duplicate children")
			}
		}
	}
}

func TestNewTransversalOracle(t *testing.T) {
	// Enumerate tr(g) through the duality oracle and compare with direct
	// enumeration — the incremental pattern of §1 of the paper.
	oracle := func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
		if partial.M() == 0 {
			// Bootstrap: the full vertex set is a transversal; no edges yet
			// to avoid.
			return bitset.Full(g.N()), true, nil
		}
		return core.NewTransversal(g, partial)
	}
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 50; i++ {
		n := 2 + r.Intn(7)
		g := randomSimple(r, n, 1+r.Intn(6))
		if g.HasEmptyEdge() {
			continue
		}
		got, err := transversal.ViaOracle(g, oracle)
		if err != nil {
			t.Fatalf("ViaOracle: %v (g=%v)", err, g)
		}
		want := transversal.AsHypergraph(g)
		if !got.EqualAsFamily(want) {
			t.Fatalf("oracle enumeration mismatch: got %v want %v (g=%v)", got, want, g)
		}
	}
}

func TestSwappedWitnessOrientation(t *testing.T) {
	// Force a swap (|h| > |g|) on a non-dual pair and check witness
	// orientation survives the swap.
	g := hypergraph.MustFromEdges(6, [][]int{{0, 1}, {2, 3}, {4, 5}})
	full := transversal.AsHypergraph(g) // 8 minimal transversals
	partial := hypergraph.New(6)
	for j := 0; j < full.M()-1; j++ {
		partial.AddEdge(full.Edge(j))
	}
	// |partial| = 7 > |g| = 3, so Decide will swap internally.
	res := mustDecide(t, g, partial)
	if res.Dual {
		t.Fatal("should not be dual")
	}
	if !res.Swapped {
		t.Fatal("expected internal swap")
	}
	if !g.IsNewTransversal(res.Witness, partial) {
		t.Fatalf("witness %v not oriented to g", res.Witness)
	}
	if !partial.IsNewTransversal(res.CoWitness, g) {
		t.Fatalf("co-witness %v not oriented to h", res.CoWitness)
	}
}

func randomSimple(r *rand.Rand, n, m int) *hypergraph.Hypergraph {
	raw := hypergraph.New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				e.Add(v)
			}
		}
		if e.IsEmpty() {
			e.Add(r.Intn(n))
		}
		raw.AddEdge(e)
	}
	return raw.Minimize()
}

func BenchmarkDecideMatching(b *testing.B) {
	k := 5
	edges := make([][]int, k)
	for i := range edges {
		edges[i] = []int{2 * i, 2*i + 1}
	}
	g := hypergraph.MustFromEdges(2*k, edges)
	h := transversal.AsHypergraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := core.Decide(g, h); err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}
