// Package core implements the paper's engine: the Boros–Makino problem
// decomposition for the monotone duality problem DUAL (Gottlob, PODS 2013,
// Section 2), with the deterministic tie-breaking the paper prescribes, plus
// the duality decision procedure with structured witnesses built on top of
// it.
//
// # The decomposition tree
//
// For a DUAL instance (G, H) over vertex set V, the decomposition tree
// T(G,H) of Boros and Makino assigns to each node α a set Sα ⊆ V (the root
// gets V) and the projected instance (G_Sα, H_Sα) with
//
//	G_Sα = {E ∩ Sα : E ∈ G}   and   H_Sα = {E ∈ H : E ⊆ Sα}.
//
// Leaves with |H_Sα| ≤ 1 are marked done or fail by procedure marksmall;
// other nodes are expanded by procedure process, which either detects a fail
// leaf directly or generates children that at least halve |H_Sα|, so the
// depth is bounded by ⌊log₂|H|⌋ (Proposition 2.1). Every fail leaf carries a
// witness t(α): a "new transversal of G with respect to H" — a transversal
// of G containing no edge of H.
//
// # What the tree decides
//
// Under the paper's standing assumptions (G ⊆ tr(H) and H ⊆ tr(G), checked
// in logspace beforehand), H = tr(G) iff all leaves are done. The
// implementation separates the two ingredients, because the applications in
// §1 of the paper need the weaker form mid-iteration:
//
//   - For any simple, cross-intersecting pair (G, H), all leaves of T(G,H)
//     are done iff tr(G) ⊆ H ("no new transversal exists"). This is
//     TrSubset/NewTransversal.
//   - Full duality is then tr(G) ⊆ H together with H ⊆ tr(G) and
//     G ⊆ tr(H), which Decide checks first, reporting precise reasons.
//
// # Determinism
//
// The paper notes T(G,H) is unique once marksmall and process are made
// deterministic and prescribes the choices we implement: smallest vertex in
// marksmall case 4, first (by input edge index) disjoint edge in process
// step 3, first contained edge in step 4. Children are enumerated in
// canonical order — case 3 by (edge index, vertex index), case 4 by vertex
// index with the contained edge last — and duplicates are dropped at first
// occurrence. Child labels are 1-based indices into that deduplicated
// order, exactly the labels used by path descriptors in internal/logspace.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
)

// Mark is the marking of a decomposition tree node.
type Mark int

// Markings per Section 2 of the paper: leaves end up done or fail, internal
// nodes keep the dummy value nil.
const (
	MarkNil Mark = iota
	MarkDone
	MarkFail
)

// String returns the paper's name for the marking.
func (m Mark) String() string {
	switch m {
	case MarkDone:
		return "done"
	case MarkFail:
		return "fail"
	default:
		return "nil"
	}
}

// Kind identifies which rule of marksmall or process applied at a node.
type Kind int

const (
	// KindSmall0Fail: marksmall case 1 — H_S empty, ∅ ∉ G_S; t(α) = Sα.
	KindSmall0Fail Kind = iota
	// KindSmall0Done: marksmall case 2 — H_S empty, ∅ ∈ G_S.
	KindSmall0Done
	// KindSmall1Done: marksmall case 3 — H_S = {H} and every singleton of H
	// appears in G_S.
	KindSmall1Done
	// KindSmall1Fail: marksmall case 4 — H_S = {H}, some i ∈ H has
	// {i} ∉ G_S; t(α) = Sα − {i} for the smallest such i.
	KindSmall1Fail
	// KindProcessFail: process step 2 — the majority set Iα is a new
	// transversal of G_S w.r.t. H_S; t(α) = Iα.
	KindProcessFail
	// KindProcessDisjoint: process step 3 — some projected edge is disjoint
	// from Iα; children S − (E − {i}).
	KindProcessDisjoint
	// KindProcessContained: process step 4 — some H_S edge is contained in
	// Iα; children S − {i} and the edge itself.
	KindProcessContained
)

// String names the rule.
func (k Kind) String() string {
	switch k {
	case KindSmall0Fail:
		return "marksmall/1-fail"
	case KindSmall0Done:
		return "marksmall/2-done"
	case KindSmall1Done:
		return "marksmall/3-done"
	case KindSmall1Fail:
		return "marksmall/4-fail"
	case KindProcessFail:
		return "process/2-fail"
	case KindProcessDisjoint:
		return "process/3-split"
	case KindProcessContained:
		return "process/4-split"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeInfo carries the attributes the paper associates with a node α of
// T(G,H) (Section 2), plus the classification of which rule applied.
type NodeInfo struct {
	// S is Sα.
	S bitset.Set
	// HSCount is |H_Sα|.
	HSCount int
	// Kind is the rule that applied at this node.
	Kind Kind
	// Mark is done/fail for leaves and nil for internal nodes.
	Mark Mark
	// T is the witness t(α); non-empty only when Mark == MarkFail. It is a
	// transversal of G containing no edge of H ("new transversal of G with
	// respect to H").
	T bitset.Set
	// I is the majority set Iα (vertices in more than |H_S|/2 edges of
	// H_S); computed only for process nodes.
	I bitset.Set
	// ChosenEdge is the index (into the original G for step 3, into the
	// original H for step 4) of the deterministically chosen edge, or -1.
	ChosenEdge int
	// Children are the child sets S_αi in canonical label order (label i
	// corresponds to Children[i-1]); nil for leaves.
	Children []bitset.Set
}

// IsLeaf reports whether the node has no children.
func (n *NodeInfo) IsLeaf() bool { return n.Mark != MarkNil }

// Classify applies marksmall/process to the node of T(g,h) with node set s
// and returns its full attributes, including the canonical child list for
// internal nodes. It is deterministic and shared by the practical decision
// procedure and by internal/logspace's replay mode, which guarantees that
// child numbering agrees everywhere.
//
// Classify materializes a fresh NodeInfo per call; the tree walks below use
// the scratch engine (scratch.go) directly to stay allocation-free.
func Classify(g, h *hypergraph.Hypergraph, s bitset.Set) *NodeInfo {
	return classifyWith(newScratch(g, h), &frame{}, s)
}

// classifyWith is Classify on caller-provided scratch state: every set in
// the returned NodeInfo is freshly cloned, so the scratch and frame are free
// for reuse (BuildTree classifies its whole tree through one of each). The
// one-shot form synchronizes the incremental scratch to s before
// classifying; tree walks maintain it by diffs instead.
func classifyWith(sc *scratch, fr *frame, s bitset.Set) *NodeInfo {
	sc.syncTo(s)
	v := sc.classifyNode(s, fr)

	info := &NodeInfo{
		S:          s.Clone(),
		HSCount:    v.hsCount,
		Kind:       v.kind,
		Mark:       v.mark,
		ChosenEdge: v.chosenEdge,
	}
	switch v.mark {
	case MarkFail:
		info.T = sc.wit.Clone()
	case MarkDone:
		info.T = bitset.New(s.Universe())
	}
	if v.hsCount >= 2 {
		info.I = sc.iSet.Clone()
	}
	if v.mark == MarkNil && fr.nChildren > 0 {
		info.Children = make([]bitset.Set, fr.nChildren)
		for i := range info.Children {
			info.Children[i] = fr.children[i].Clone()
		}
	}
	return info
}

// Reason explains a duality verdict.
type Reason int

const (
	// ReasonDual: the pair is dual.
	ReasonDual Reason = iota
	// ReasonConstantMismatch: one side is a constant (∅ or {∅}) and the
	// other is not its dual constant.
	ReasonConstantMismatch
	// ReasonNotCrossIntersecting: some edge of g is disjoint from some edge
	// of h; see Result.GEdge/HEdge.
	ReasonNotCrossIntersecting
	// ReasonHEdgeNotMinimal: an edge of h is a transversal of g but not a
	// minimal one (H ⊆ tr(G) violated); see Result.HEdge and
	// Result.RedundantVertex.
	ReasonHEdgeNotMinimal
	// ReasonGEdgeNotMinimal: symmetric violation of G ⊆ tr(H).
	ReasonGEdgeNotMinimal
	// ReasonNewTransversal: preconditions hold but tr(g) ⊈ h; Result.Witness
	// is a new transversal of g w.r.t. h found at a fail leaf.
	ReasonNewTransversal
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonDual:
		return "dual"
	case ReasonConstantMismatch:
		return "constant mismatch"
	case ReasonNotCrossIntersecting:
		return "edges do not cross-intersect"
	case ReasonHEdgeNotMinimal:
		return "h-edge is a non-minimal transversal of g"
	case ReasonGEdgeNotMinimal:
		return "g-edge is a non-minimal transversal of h"
	case ReasonNewTransversal:
		return "new transversal exists"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Stats aggregates decomposition tree measurements, backing the experiments
// for Proposition 2.1(2) and 2.1(3).
type Stats struct {
	// Nodes is the number of tree nodes visited.
	Nodes int
	// Leaves is the number of leaves visited.
	Leaves int
	// MaxDepth is the maximum depth reached (root = 0).
	MaxDepth int
	// MaxChildren is the maximum child count κ(α) observed.
	MaxChildren int
	// Spawns counts subtree frames the parallel search's workers published
	// to their deques for other workers to steal (0 on serial walks).
	Spawns int
	// Steals counts frames actually taken from another worker's deque.
	Steals int
	// LeafWorkers counts the distinct workers that classified at least one
	// leaf — the load-balance signal of the work-stealing search (0 on
	// serial walks, which have no worker pool).
	LeafWorkers int
	// MemoHits counts internal nodes whose entire subtrees were skipped by
	// the cross-node subinstance memo (memo.go; only walkers pinned by a
	// memo-carrying Decider report non-zero values). Skipped nodes do not
	// appear in Nodes/Leaves.
	MemoHits int
}

// Result is the outcome of a duality decision.
type Result struct {
	// Dual reports whether h = tr(g).
	Dual bool
	// Reason explains a negative verdict; ReasonDual otherwise.
	Reason Reason
	// Witness, when Reason == ReasonNewTransversal, is a transversal of g
	// containing no edge of h. Its complement CoWitness is then a
	// transversal of h containing no edge of g.
	Witness   bitset.Set
	CoWitness bitset.Set
	// GEdge and HEdge identify offending edges for the pairwise and
	// minimality reasons (-1 when not applicable).
	GEdge, HEdge int
	// RedundantVertex is the removable vertex for the minimality reasons
	// (-1 when not applicable).
	RedundantVertex int
	// FailPath is the path descriptor (1-based child labels) of the fail
	// leaf, when one was found by the tree search. Together with Swapped it
	// locates the leaf in T(g,h) or T(h,g).
	FailPath []int
	// Swapped records that the decomposition ran on T(h,g) rather than
	// T(g,h) to honor the paper's |H| ≤ |G| convention.
	Swapped bool
	// Stats carries tree measurements from the search (zero when the
	// verdict was reached before the tree stage).
	Stats Stats
}

// Clone returns a deep copy of the result — for callers that retain a
// verdict beyond the lifetime of session-pinned storage (a Decider's results
// alias its reusable buffers and are valid only until its next call).
func (r *Result) Clone() *Result {
	c := *r
	c.Witness = r.Witness.Clone()
	c.CoWitness = r.CoWitness.Clone()
	c.FailPath = append([]int(nil), r.FailPath...)
	return &c
}

// String renders a short human-readable verdict.
func (r *Result) String() string {
	if r.Dual {
		return "dual"
	}
	s := "not dual: " + r.Reason.String()
	if r.Reason == ReasonNewTransversal {
		s += " " + r.Witness.String()
	}
	return s
}

// ErrUniverseMismatch is returned when the two hypergraphs of an instance
// disagree on the universe size.
var ErrUniverseMismatch = errors.New("core: hypergraphs have different universes")

// validatePair checks universe agreement and simplicity of both inputs.
func validatePair(g, h *hypergraph.Hypergraph) error {
	if g.N() != h.N() {
		return ErrUniverseMismatch
	}
	if err := g.ValidateSimple(); err != nil {
		return fmt.Errorf("core: g: %w", err)
	}
	if err := h.ValidateSimple(); err != nil {
		return fmt.Errorf("core: h: %w", err)
	}
	return nil
}

// isConstant reports whether the simple hypergraph is one of the two
// constants: ⊥ (no edges) or ⊤ (the single empty edge).
func isConstant(x *hypergraph.Hypergraph) (bottom, top bool) {
	if x.M() == 0 {
		return true, false
	}
	if x.HasEmptyEdge() {
		return false, true // simplicity forces x = {∅}
	}
	return false, false
}

// precheckIntoIdx runs the logspace-checkable stages of Decide — validation,
// constants, cross-intersection, and both minimality preconditions — writing
// any verdict they alone determine into res (which the caller must have
// initialized with GEdge/HEdge/RedundantVertex = -1). done reports that res
// now holds the final verdict; done = false means the pair is simple,
// non-constant, cross-intersecting and mutually minimal, so only the tree
// stage remains.
//
// Every probe is index-driven (hypergraph/indexed.go): gi/hi are the
// incidence indexes of g and h, and gScratch/hScratch are caller-owned sets
// over their respective OccUniverses — so the done = false path allocates
// nothing, which is what lets a Decider stay allocation-free across calls.
func precheckIntoIdx(g, h *hypergraph.Hypergraph, gi, hi *hypergraph.Index, gScratch, hScratch bitset.Set, res *Result) (bool, error) {
	if g.N() != h.N() {
		return false, ErrUniverseMismatch
	}
	if err := g.ValidateSimpleIdx(gi, gScratch); err != nil {
		return false, fmt.Errorf("core: g: %w", err)
	}
	if err := h.ValidateSimpleIdx(hi, hScratch); err != nil {
		return false, fmt.Errorf("core: h: %w", err)
	}
	gBot, gTop := isConstant(g)
	hBot, hTop := isConstant(h)
	if gBot || gTop || hBot || hTop {
		if (gBot && hTop) || (gTop && hBot) {
			res.Dual = true
			return true, nil
		}
		res.Reason = ReasonConstantMismatch
		return true, nil
	}

	// Precondition: cross-intersection (g's edges against h's occurrence
	// rows).
	if ok, gIdx, hIdx := g.CrossIntersectingIdx(h, hi, hScratch); !ok {
		res.Reason, res.GEdge, res.HEdge = ReasonNotCrossIntersecting, gIdx, hIdx
		return true, nil
	}
	// Precondition: H ⊆ tr(G). Cross-intersection already makes every
	// h-edge a transversal of g, so only minimality can fail.
	if v := h.AllEdgesMinimalTransversalsOfIdx(g, gi, gScratch); v != nil {
		res.Reason, res.HEdge, res.RedundantVertex = ReasonHEdgeNotMinimal, v.EdgeIndex, v.RedundantVertex
		return true, nil
	}
	// Precondition: G ⊆ tr(H).
	if v := g.AllEdgesMinimalTransversalsOfIdx(h, hi, hScratch); v != nil {
		res.Reason, res.GEdge, res.RedundantVertex = ReasonGEdgeNotMinimal, v.EdgeIndex, v.RedundantVertex
		return true, nil
	}
	return false, nil
}

// indexFor returns x's attached index when one is maintained, else builds a
// standalone one — the entry path for the package-level (non-Decider)
// decision functions and the parallel search.
func indexFor(x *hypergraph.Hypergraph) *hypergraph.Index {
	if ix := x.AttachedIndex(); ix != nil {
		return ix
	}
	return hypergraph.NewIndex(x)
}

// Precheck exposes the precondition stage of Decide to alternative decision
// procedures (internal/engine's Fredman–Khachiyan and logspace adapters run
// it before their own tree stage, so every engine classifies precondition
// failures with the same Reason taxonomy). It returns the verdict and
// done = true when the preconditions alone decide the instance, or
// (nil, false, nil) when the tree stage is still needed — in which case the
// pair is guaranteed simple, non-constant, cross-intersecting and mutually
// minimal.
func Precheck(g, h *hypergraph.Hypergraph) (*Result, bool, error) {
	res := &Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	gi, hi := indexFor(g), indexFor(h)
	done, err := precheckIntoIdx(g, h, gi, hi,
		bitset.New(gi.OccUniverse()), bitset.New(hi.OccUniverse()), res)
	if err != nil || !done {
		return nil, false, err
	}
	return res, true, nil
}

// Decide determines whether h = tr(g) — equivalently, whether the monotone
// DNFs of g and h are mutually dual. Both inputs must be simple hypergraphs
// over the same universe.
//
// It follows the paper's protocol: first the logspace-checkable
// preconditions (constants, cross-intersection, G ⊆ tr(H), H ⊆ tr(G)), then
// the Boros–Makino tree search for a new transversal. On a negative verdict
// the Result pinpoints the reason and, when the tree stage ran, carries a
// witness and the fail leaf's path descriptor.
func Decide(g, h *hypergraph.Hypergraph) (*Result, error) {
	return DecideContext(context.Background(), g, h)
}

// DecideContext is Decide with cancellation: the tree search checks ctx at
// every node it visits, so cancellation aborts the decomposition within one
// tree-node boundary and returns ctx's error. The logspace-checkable
// precondition stage runs to completion regardless (it is polynomial and
// fast); a context that is already cancelled on entry aborts before the
// first tree node.
func DecideContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	res := &Result{GEdge: -1, HEdge: -1, RedundantVertex: -1}
	// One walker serves the whole decision: its scratch carries the
	// incidence indexes the precheck probes and the tree stage share.
	w := newWalkState(g, h)
	done, err := precheckIntoIdx(g, h, w.sc.gIdx, w.sc.hIdx, w.sc.hitG, w.sc.notCont, res)
	if err != nil {
		return nil, err
	}
	if done {
		return res, nil
	}

	// Tree stage. Honor the paper's |H| ≤ |G| convention by swapping when
	// beneficial; duality is symmetric once the preconditions hold, and a
	// witness for one orientation complements to one for the other.
	swapped := false
	if h.M() > g.M() {
		w.sc.swap()
		swapped = true
	}
	res.Dual = true
	w.done = ctx.Done()
	root := bitset.Full(g.N())
	w.sc.syncTo(root)
	serialWalk(w, root, 0, res)
	if w.cancelled {
		return nil, ctx.Err()
	}
	res.Swapped = swapped
	if !res.Dual && swapped {
		res.Witness, res.CoWitness = res.CoWitness, res.Witness
	}
	return res, nil
}

// TrSubset decides tr(g) ⊆ h ("h contains every minimal transversal of g")
// for a simple, cross-intersecting pair by searching T(g,h) for a fail
// leaf. This is the raw tree stage of Decide and the engine behind
// NewTransversal; unlike Decide it does not require the minimality
// preconditions, which the incremental applications of §1 of the paper
// cannot guarantee mid-iteration.
//
// The returned Result has Dual = true iff tr(g) ⊆ h. On Dual = false the
// Witness is a new transversal of g w.r.t. h and FailPath locates the fail
// leaf in T(g,h).
func TrSubset(g, h *hypergraph.Hypergraph) (*Result, error) {
	return TrSubsetContext(context.Background(), g, h)
}

// TrSubsetContext is TrSubset with cancellation, under the same per-node
// contract as DecideContext: a cancelled ctx aborts the DFS within one tree
// node and surfaces ctx's error.
func TrSubsetContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	w := newWalkState(g, h)
	if err := trSubsetPreflight(g, h, w.sc); err != nil {
		return nil, err
	}
	res := &Result{Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	w.done = ctx.Done()
	root := bitset.Full(g.N())
	w.sc.syncTo(root)
	serialWalk(w, root, 0, res)
	if w.cancelled {
		return nil, ctx.Err()
	}
	return res, nil
}

// trSubsetPreflight checks TrSubset's input contract (simple, non-constant,
// cross-intersecting) on the scratch's indexes, allocation-free for a
// pinned Decider.
func trSubsetPreflight(g, h *hypergraph.Hypergraph, sc *scratch) error {
	if g.N() != h.N() {
		return ErrUniverseMismatch
	}
	if err := g.ValidateSimpleIdx(sc.gIdx, sc.hitG); err != nil {
		return fmt.Errorf("core: g: %w", err)
	}
	if err := h.ValidateSimpleIdx(sc.hIdx, sc.notCont); err != nil {
		return fmt.Errorf("core: h: %w", err)
	}
	if g.M() == 0 || h.M() == 0 || g.HasEmptyEdge() || h.HasEmptyEdge() {
		return errors.New("core: TrSubset requires non-constant inputs; use Decide")
	}
	if ok, _, _ := g.CrossIntersectingIdx(h, sc.hIdx, sc.notCont); !ok {
		return errors.New("core: TrSubset requires a cross-intersecting pair")
	}
	return nil
}

// serialWalk is the serial DFS over T(g,h) on one walkState: one scratch
// for classification and one frame per depth, so the search allocates
// nothing per node beyond first-touch warm-up of each depth level (bounded
// by ⌊log₂|H|⌋, Proposition 2.1). It classifies the node s at the given
// depth — whose incremental scratch state the caller has established — and
// recurses, maintaining the state by removed-vertex diffs on the way down
// and up, reporting false once a fail leaf has been recorded to stop the
// search.
//
// When the walker carries a memo, every internal node is looked up by its
// projected-subinstance key: a hit means an identical subtree was already
// verified all-done (here or in an earlier decision sharing the memo) and
// is skipped; a subtree completed without a fail leaf is inserted.
//
//dual:allocfree
func serialWalk(w *walkState, s bitset.Set, depth int, res *Result) bool {
	if w.done != nil {
		select {
		case <-w.done:
			w.cancelled = true
			return false // stop the search; caller surfaces ctx.Err()
		default:
		}
	}
	fr := w.frame(depth)
	v := w.sc.classifyNode(s, fr)
	res.Stats.Nodes++
	if depth > res.Stats.MaxDepth {
		res.Stats.MaxDepth = depth
	}
	if v.mark != MarkNil {
		res.Stats.Leaves++
		if v.mark == MarkFail {
			res.Dual = false
			res.Reason = ReasonNewTransversal
			if w.reuse {
				w.witBuf.CopyFrom(w.sc.wit)
				w.sc.wit.ComplementInto(w.cowitBuf)
				w.pathBuf = append(w.pathBuf[:0], w.path[:depth]...)
				res.Witness, res.CoWitness, res.FailPath = w.witBuf, w.cowitBuf, w.pathBuf
			} else {
				res.Witness = w.sc.wit.Clone()
				res.CoWitness = res.Witness.Complement()
				res.FailPath = append([]int(nil), w.path[:depth]...)
			}
			return false // stop the search
		}
		return true
	}
	memoize := false
	if w.memo != nil {
		var t0 time.Time
		if w.rec != nil {
			t0 = time.Now()
		}
		key := w.sc.appendInstanceKey(w.keyBuf(depth), s)
		w.keys[depth] = key
		hit := w.memo.lookup(key)
		if w.rec != nil {
			w.rec.Add(obs.StageMemo, time.Since(t0))
		}
		if hit {
			res.Stats.MemoHits++
			return true // identical subtree already verified all-done
		}
		memoize = true
	}
	if fr.nChildren > res.Stats.MaxChildren {
		res.Stats.MaxChildren = fr.nChildren
	}
	for i := 0; i < fr.nChildren; i++ {
		w.path = append(w.path[:depth], i+1)
		c := fr.children[i]
		rem := s.AppendDiffElems(c, w.remBuf(depth))
		w.rem[depth] = rem
		for _, u := range rem {
			w.sc.removeVertex(u)
		}
		ok := serialWalk(w, c, depth+1, res)
		for _, u := range rem {
			w.sc.restoreVertex(u)
		}
		if !ok {
			return false
		}
	}
	if memoize {
		w.memo.insert(w.keys[depth])
	}
	return true
}

// NewTransversal returns a new transversal of g with respect to h — a
// transversal of g containing no edge of h — or ok = false when none exists
// (i.e. tr(g) ⊆ h). This is the witness-producing operation of Corollary
// 4.1(2) and the oracle the incremental data-mining algorithms of §1 are
// built on. The witness is generally not minimal; use
// (*hypergraph.Hypergraph).MinimalizeTransversal to shrink it.
func NewTransversal(g, h *hypergraph.Hypergraph) (w bitset.Set, ok bool, err error) {
	return NewTransversalContext(context.Background(), g, h)
}

// NewTransversalContext is NewTransversal with cancellation (see
// TrSubsetContext).
func NewTransversalContext(ctx context.Context, g, h *hypergraph.Hypergraph) (w bitset.Set, ok bool, err error) {
	res, err := TrSubsetContext(ctx, g, h)
	if err != nil {
		return bitset.Set{}, false, err
	}
	if res.Dual {
		return bitset.Set{}, false, nil
	}
	return res.Witness, true, nil
}

// TreeNode is a fully materialized node of T(G,H), used by experiments and
// by the decompose algorithm's ground truth.
type TreeNode struct {
	// Label is the node's path descriptor (1-based child indices from the
	// root; empty for the root).
	Label []int
	// Info holds the node attributes.
	Info *NodeInfo
	// Children are the expanded child nodes, aligned with Info.Children.
	Children []*TreeNode
}

// BuildTree materializes the entire decomposition tree T(g,h). Intended for
// small instances (experiments, certificate search); Decide does not
// materialize. It requires the same input shape as TrSubset.
func BuildTree(g, h *hypergraph.Hypergraph) (*TreeNode, error) {
	if err := validatePair(g, h); err != nil {
		return nil, err
	}
	if g.M() == 0 || h.M() == 0 || g.HasEmptyEdge() || h.HasEmptyEdge() {
		return nil, errors.New("core: BuildTree requires non-constant inputs")
	}
	sc, fr := newScratch(g, h), &frame{}
	var build func(s bitset.Set, label []int) *TreeNode
	build = func(s bitset.Set, label []int) *TreeNode {
		info := classifyWith(sc, fr, s)
		node := &TreeNode{Label: append([]int(nil), label...), Info: info}
		for i, c := range info.Children {
			node.Children = append(node.Children, build(c, append(label, i+1)))
		}
		return node
	}
	return build(bitset.Full(g.N()), nil), nil
}

// Walk visits every node of t in depth-first preorder.
func (t *TreeNode) Walk(visit func(*TreeNode)) {
	visit(t)
	for _, c := range t.Children {
		c.Walk(visit)
	}
}

// Depth returns the height of the tree (root-only tree has depth 0).
func (t *TreeNode) Depth() int {
	d := 0
	for _, c := range t.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// CountMarks returns the number of done and fail leaves.
func (t *TreeNode) CountMarks() (done, fail int) {
	t.Walk(func(n *TreeNode) {
		switch n.Info.Mark {
		case MarkDone:
			done++
		case MarkFail:
			fail++
		}
	})
	return done, fail
}
