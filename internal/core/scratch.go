package core

// Incidence-indexed, allocation-free node classification. Classify (core.go)
// documents the semantics; this file holds the engine the tree walks run on.
//
// The classification state is INCREMENTAL: instead of re-scanning every edge
// of G and H against the node set Sα (the O(m·n/w) per-node work of the
// naive kernel), a scratch maintains, through hypergraph.Index occurrence
// rows, the quantities marksmall/process actually consume —
//
//	cntG[j]  = |E_j ∩ Sα|          (per g-edge projected size)
//	zeroG    = #{j : cntG[j] = 0}   (is ∅ ∈ G_Sα? — marksmall, O(1))
//	missH[j] = |F_j − Sα|           (h-edge distance from H_Sα membership)
//	hsSet    = {j : missH[j] = 0}   (H_Sα as an edge-index set)
//	degH[v]  = #{j ∈ hsSet : v ∈ F_j} (the degrees behind the majority set)
//
// — and updates them in O(changed) as the DFS removes and restores the
// vertices that differ between a node and its child (every child set of the
// Boros–Makino decomposition is obtained from its parent by deletions).
// A walker that hands an arbitrary set to the scratch (the parallel search
// at a subtree handoff, Classify/BuildTree per node) re-synchronizes with
// one syncTo pass.
//
// The conventions (scratch is single-walker state, frames are per-depth,
// child sets are valid until the same depth is revisited) are documented in
// DESIGN.md §5; the index itself in DESIGN.md §7.

import (
	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
)

// nodeVerdict is the classification outcome of one node, without the
// materialized sets of a NodeInfo: the witness lives in scratch.wit, the
// majority set in scratch.iSet, and the children in the frame.
type nodeVerdict struct {
	hsCount    int
	kind       Kind
	mark       Mark
	chosenEdge int
}

// frame is the reusable per-depth child storage of a tree walk. The first
// nChildren entries of children are the current node's deduplicated child
// sets, in canonical order; their storage is recycled the next time the walk
// generates children at this depth.
type frame struct {
	children  []bitset.Set
	nChildren int
}

// slot returns the candidate slot for the next child (reused storage over
// the universe [0, n)); commitIfNew accepts or discards it.
func (fr *frame) slot(n int) bitset.Set {
	if fr.nChildren == len(fr.children) {
		fr.children = append(fr.children, bitset.New(n))
	} else if fr.children[fr.nChildren].Universe() != n {
		// Pooled walker states outlive a single instance (the parallel
		// search recycles them across runs); refit stale-universe storage.
		fr.children[fr.nChildren] = bitset.New(n)
	}
	return fr.children[fr.nChildren]
}

// walkState is the complete reusable state of one tree walker — the
// classification scratch, the per-depth frames, the path-label buffer, and
// the per-depth descent buffers (removed-vertex diffs and memo keys).
// The serial DFS owns one; the parallel search pools one per worker.
type walkState struct {
	sc     *scratch
	frames []*frame
	path   []int
	// rem[d] holds the vertices removed between the node at depth d and the
	// child currently being explored, so the DFS can restore the incremental
	// scratch state on the way back up.
	rem [][]int
	// keys[d] holds the memo key of the internal node at depth d while its
	// subtree is walked (insert happens after the subtree completes).
	keys [][]uint64
	// memo, when non-nil, is the cross-node subinstance memo consulted at
	// every internal node (see memo.go; set by Decider).
	memo *Memo
	// rec, when non-nil, receives the walk's memo-consult time under
	// obs.StageMemo (set by a Decider with a recorder attached; nil costs
	// one predictable branch per memo consult and no clock reads).
	rec *obs.Recorder
	// done, when non-nil, is the walk's cancellation channel (ctx.Done());
	// the serial DFS polls it at every node and sets cancelled on abort.
	done      <-chan struct{}
	cancelled bool
	// reuse, set by a Decider on its pinned walker, makes serialWalk capture
	// fail verdicts into witBuf/cowitBuf/pathBuf instead of fresh clones, so
	// repeated decisions on one walker allocate nothing at steady state. The
	// resulting Result aliases these buffers and is valid only until the
	// walker's next run.
	reuse            bool
	witBuf, cowitBuf bitset.Set
	pathBuf          []int
}

func newWalkState(g, h *hypergraph.Hypergraph) *walkState {
	return &walkState{sc: newScratch(g, h)}
}

func (w *walkState) frame(depth int) *frame {
	for len(w.frames) <= depth {
		w.frames = append(w.frames, &frame{})
	}
	return w.frames[depth]
}

func (w *walkState) remBuf(depth int) []int {
	for len(w.rem) <= depth {
		w.rem = append(w.rem, nil)
	}
	return w.rem[depth][:0]
}

func (w *walkState) keyBuf(depth int) []uint64 {
	for len(w.keys) <= depth {
		w.keys = append(w.keys, nil)
	}
	return w.keys[depth][:0]
}

// scratch is the reusable working state of one tree walker. It is not safe
// for concurrent use; the parallel search keeps one per worker (sharing the
// read-only indexes).
type scratch struct {
	g, h *hypergraph.Hypergraph
	n    int

	// gIdx/hIdx are the incidence indexes driving classification: attached
	// ones when the caller maintains them, otherwise the pinned gIdxOwn/
	// hIdxOwn rebuilt in place per bind (allocation-free at steady state).
	gIdx, hIdx       *hypergraph.Index
	gIdxOwn, hIdxOwn *hypergraph.Index

	// Incremental per-Sα state; see the package comment. Valid for the set
	// last passed to syncTo, as adjusted by removeVertex/restoreVertex.
	cntG    []int32
	zeroG   int
	missH   []int32
	hsSet   bitset.Set // over [0, hIdx.OccUniverse())
	hsCount int
	degH    []int32

	iSet      bitset.Set       // the majority set Iα
	gProj     bitset.Set       // chosen projected g-edge (process step 3)
	tmp       bitset.Set       // per-edge temporary
	wit       bitset.Set       // witness t(α) of the last fail classification
	hitG      bitset.Set       // over [0, gIdx.OccUniverse()): g-edges meeting Iα
	candG     bitset.Set       // over [0, gIdx.OccUniverse()): step-3 candidate edges
	notCont   bitset.Set       // over [0, hIdx.OccUniverse()): h-edges meeting Sα − Iα
	contained bitset.Set       // over [0, hIdx.OccUniverse()): H_Sα edges inside Iα
	dedup     map[uint64]int32 // child-set hash → index of first occurrence
}

func newScratch(g, h *hypergraph.Hypergraph) *scratch {
	sc := &scratch{dedup: make(map[uint64]int32)}
	sc.bind(g, h)
	return sc
}

// bind points the scratch at the instance (g, h), rebuilding the pinned
// indexes and resizing the incremental state. Allocation-free once the
// scratch has seen the same universe and edge-count shape.
//
// The two indexes are kept on a COMMON occurrence universe so that swap()
// can exchange their roles without re-allocating the edge-universe scratch
// sets. Attached (caller-maintained) indexes — e.g. the AddEdge-maintained
// index of an oracle loop's growing partial family — are consumed when that
// constraint can be met by growing only scratch-owned storage; growing a
// shared attached index here could race with its other readers, so a too-
// small attached index is simply ignored and the pinned own pair rebuilt.
func (sc *scratch) bind(g, h *hypergraph.Hypergraph) {
	gi, hi := g.AttachedIndex(), h.AttachedIndex()
	if gi != nil && hi != nil && gi.OccUniverse() != hi.OccUniverse() {
		// Mismatched attached universes: treat both as absent (growing a
		// shared index here could race with its other readers).
		gi, hi = nil, nil
	}
	// Rebuild pinned own indexes only for the sides lacking a usable
	// attached one, then align universes — falling back to the own pair
	// when an attached index is too small to align against (own indexes
	// are private and growable; attached ones are not).
	if gi == nil {
		gi = sc.ownIndex(&sc.gIdxOwn, g)
	}
	if hi == nil {
		hi = sc.ownIndex(&sc.hIdxOwn, h)
	}
	if gi.OccUniverse() != hi.OccUniverse() {
		// An attached side that is too small cannot be grown (shared) and
		// is replaced by its own rebuild; after these two checks every
		// smaller side is own, hence growable.
		if gi != sc.gIdxOwn && gi.OccUniverse() < hi.OccUniverse() {
			gi = sc.ownIndex(&sc.gIdxOwn, g)
		}
		if hi != sc.hIdxOwn && hi.OccUniverse() < gi.OccUniverse() {
			hi = sc.ownIndex(&sc.hIdxOwn, h)
		}
		common := gi.OccUniverse()
		if hu := hi.OccUniverse(); hu > common {
			common = hu
		}
		if gi == sc.gIdxOwn {
			gi.EnsureOccUniverse(common)
		}
		if hi == sc.hIdxOwn {
			hi.EnsureOccUniverse(common)
		}
	}
	sc.bindShared(g, h, gi, hi)
}

// ownIndex rebuilds (in place) and returns the pinned index slot for x.
func (sc *scratch) ownIndex(slot **hypergraph.Index, x *hypergraph.Hypergraph) *hypergraph.Index {
	if *slot == nil {
		*slot = &hypergraph.Index{}
	}
	(*slot).Rebuild(x)
	return *slot
}

// bindShared is bind with caller-provided (shared, read-only) indexes — the
// parallel search builds one index pair and hands it to every worker state.
func (sc *scratch) bindShared(g, h *hypergraph.Hypergraph, gi, hi *hypergraph.Index) {
	sc.g, sc.h = g, h
	sc.gIdx, sc.hIdx = gi, hi
	if n := g.N(); sc.n != n || sc.iSet.Universe() != n {
		sc.n = n
		sc.iSet = bitset.New(n)
		sc.gProj = bitset.New(n)
		sc.tmp = bitset.New(n)
		sc.wit = bitset.New(n)
		sc.degH = make([]int32, n)
	}
	sc.size()
}

// swap flips the scratch's orientation from (g, h) to (h, g) without
// touching the indexes — the tree stage of Decide runs on the swapped pair
// when |H| > |G|.
func (sc *scratch) swap() {
	sc.g, sc.h = sc.h, sc.g
	sc.gIdx, sc.hIdx = sc.hIdx, sc.gIdx
	sc.size()
}

// size fits the per-edge state and the edge-universe scratch sets to the
// current (g, h) and their indexes.
func (sc *scratch) size() {
	mg, mh := sc.g.M(), sc.h.M()
	if cap(sc.cntG) < mg {
		sc.cntG = make([]int32, mg)
	}
	sc.cntG = sc.cntG[:mg]
	if cap(sc.missH) < mh {
		sc.missH = make([]int32, mh)
	}
	sc.missH = sc.missH[:mh]
	if u := sc.gIdx.OccUniverse(); sc.hitG.Universe() != u {
		sc.hitG = bitset.New(u)
		sc.candG = bitset.New(u)
	}
	if u := sc.hIdx.OccUniverse(); sc.hsSet.Universe() != u {
		sc.hsSet = bitset.New(u)
		sc.notCont = bitset.New(u)
		sc.contained = bitset.New(u)
	}
}

// syncTo initializes the incremental state for an arbitrary node set s in
// one pass over the edges — the entry point for walk roots and for one-shot
// classification; descent along the tree then uses removeVertex/
// restoreVertex diffs instead.
//
//dual:allocfree
func (sc *scratch) syncTo(s bitset.Set) {
	sc.zeroG = 0
	for j := 0; j < sc.g.M(); j++ {
		c := int32(sc.g.Edge(j).IntersectionCount(s))
		sc.cntG[j] = c
		if c == 0 {
			sc.zeroG++
		}
	}
	sc.hsSet.Clear()
	sc.hsCount = 0
	for j := 0; j < sc.h.M(); j++ {
		e := sc.h.Edge(j)
		miss := int32(sc.hIdx.Card(j) - e.IntersectionCount(s))
		sc.missH[j] = miss
		if miss == 0 {
			sc.hsSet.Add(j)
			sc.hsCount++
		}
	}
	// degH[v] = |occ_H(v) ∩ H_Sα| in one fused popcount batch over the
	// occurrence slab (an H_Sα edge containing v forces v ∈ Sα, so vertices
	// outside Sα come out 0 without a membership test).
	sc.hIdx.OccCountsInto(sc.hsSet, sc.degH)
}

// removeVertex updates the incremental state for Sα := Sα − {v}, in
// O(deg_G(v)/w + deg_H(v)/w) plus the contents of the h-edges that leave
// H_Sα (each edge leaves at most once per root-to-node path).
//
//dual:allocfree
func (sc *scratch) removeVertex(v int) {
	sc.gIdx.Occ(v).ForEach(func(j int) bool {
		sc.cntG[j]--
		if sc.cntG[j] == 0 {
			sc.zeroG++
		}
		return true
	})
	sc.hIdx.Occ(v).ForEach(func(j int) bool {
		sc.missH[j]++
		if sc.missH[j] == 1 {
			sc.hsSet.Remove(j)
			sc.hsCount--
			sc.h.Edge(j).AddToCounts(sc.degH, -1)
		}
		return true
	})
}

// restoreVertex reverses removeVertex.
//
//dual:allocfree
func (sc *scratch) restoreVertex(v int) {
	sc.gIdx.Occ(v).ForEach(func(j int) bool {
		if sc.cntG[j] == 0 {
			sc.zeroG--
		}
		sc.cntG[j]++
		return true
	})
	sc.hIdx.Occ(v).ForEach(func(j int) bool {
		sc.missH[j]--
		if sc.missH[j] == 0 {
			sc.hsSet.Add(j)
			sc.hsCount++
			sc.h.Edge(j).AddToCounts(sc.degH, 1)
		}
		return true
	})
}

// classifyNode applies marksmall/process to the node with set s, whose
// incremental state must be current (syncTo or diff-maintained). Children
// (for internal nodes) are generated into fr; on a fail verdict the witness
// is left in sc.wit, and for |H_S| ≥ 2 the majority set in sc.iSet. All
// outputs are valid only until the next classifyNode call on this scratch
// (children: until fr is reused).
//
//dual:allocfree
func (sc *scratch) classifyNode(s bitset.Set, fr *frame) nodeVerdict {
	v := nodeVerdict{chosenEdge: -1}
	fr.nChildren = 0
	v.hsCount = sc.hsCount
	if sc.hsCount <= 1 {
		sc.marksmall(s, &v)
		return v
	}
	sc.process(s, fr, &v)
	return v
}

// marksmall implements the paper's marksmall procedure for |H_S| ≤ 1.
//
//dual:allocfree
func (sc *scratch) marksmall(s bitset.Set, v *nodeVerdict) {
	emptyInGS := sc.zeroG > 0 // some g-edge projects to ∅ within S
	if sc.hsCount == 0 {
		if !emptyInGS {
			v.kind, v.mark = KindSmall0Fail, MarkFail // case 1: t(α) = Sα
			sc.wit.CopyFrom(s)
		} else {
			v.kind, v.mark = KindSmall0Done, MarkDone // case 2
		}
		return
	}
	// |H_S| = 1.
	j := sc.hsSet.Min()
	he := sc.h.Edge(j)
	missing := -1
	he.ForEach(func(i int) bool {
		if !sc.singletonInGS(i) {
			missing = i
			return false // smallest such i, per the deterministic variant
		}
		return true
	})
	if missing < 0 {
		v.kind, v.mark = KindSmall1Done, MarkDone // case 3
		return
	}
	v.kind, v.mark = KindSmall1Fail, MarkFail // case 4: t(α) = Sα − {i}
	v.chosenEdge = j
	sc.wit.CopyFrom(s)
	sc.wit.Remove(missing)
}

// singletonInGS reports whether {i} ∈ G_S for a vertex i ∈ Sα: some g-edge
// containing i projects onto exactly {i}, read off the occurrence row and
// the maintained projected sizes.
func (sc *scratch) singletonInGS(i int) bool {
	found := false
	sc.gIdx.Occ(i).ForEach(func(j int) bool {
		if sc.cntG[j] == 1 {
			found = true
			return false
		}
		return true
	})
	return found
}

// process implements the paper's process procedure for |H_S| ≥ 2.
//
//dual:allocfree
func (sc *scratch) process(s bitset.Set, fr *frame, v *nodeVerdict) {
	// Step 1: the majority set Iα — vertices occurring in more than
	// |H_S|/2 hyperedges of H_S, read off the maintained degrees.
	sc.iSet.Clear()
	s.ForEach(func(u int) bool {
		if 2*int(sc.degH[u]) > sc.hsCount {
			sc.iSet.Add(u)
		}
		return true
	})

	// Step 2: is Iα a transversal of G_S? Since Iα ⊆ Sα, a projected edge
	// meets Iα iff the original edge does, so the hit set is the union of
	// Iα's occurrence rows.
	sc.hitG.Clear()
	sc.iSet.ForEach(func(u int) bool {
		sc.gIdx.Occ(u).UnionInto(sc.hitG, sc.hitG) //dual:allow(bitsetalias: word-parallel accumulation into hitG)
		return true
	})
	// The transversal test and the step-3 edge choice are one fused probe:
	// the first edge index absent from the hit set is < |G| exactly when
	// some projected edge misses Iα (occurrence rows never set bits ≥ |G|),
	// so the separate popcount pass of `hitG.Len() != g.M()` is gone.
	if jstar := sc.hitG.MinAbsent(); jstar >= 0 && jstar < sc.g.M() {
		// Step 3: the first (by input index) projected edge disjoint from Iα.
		sc.g.Edge(jstar).IntersectInto(s, sc.gProj)
		v.kind = KindProcessDisjoint
		v.chosenEdge = jstar
		sc.disjointChildren(s, fr)
		return
	}

	// Iα is a transversal; does it contain an H_S edge? Occurrence-driven
	// ⊆-probe: an edge of H_Sα is ⊆ Iα iff it avoids every vertex of
	// Sα − Iα (H_Sα edges are already ⊆ Sα).
	sc.notCont.Clear()
	s.ForEach(func(u int) bool {
		if !sc.iSet.Contains(u) {
			sc.hIdx.Occ(u).UnionInto(sc.notCont, sc.notCont) //dual:allow(bitsetalias: word-parallel accumulation into notCont)
		}
		return true
	})
	if sc.hsSet.DiffIntoCount(sc.notCont, sc.contained) == 0 {
		v.kind, v.mark = KindProcessFail, MarkFail // step 2: t(α) = Iα
		sc.wit.CopyFrom(sc.iSet)
		return
	}
	j := sc.contained.Min()
	// Step 4: the first (by input index) H_S edge contained in Iα.
	v.kind = KindProcessContained
	v.chosenEdge = j
	sc.containedChildren(s, sc.h.Edge(j), fr)
}

// disjointChildren enumerates C = {Sα − (E − {i}) | E ∈ G_Sα^G, i ∈ E ∩ G}
// in canonical (edge index, vertex index) order with duplicates removed,
// where G = sc.gProj is the chosen projected edge disjoint from Iα and
// G_Sα^G consists of the projected edges meeting G. The candidate edges are
// exactly the union of G's occurrence rows (G ⊆ Sα, so meeting G within Sα
// is meeting G).
//
//dual:allocfree
func (sc *scratch) disjointChildren(s bitset.Set, fr *frame) {
	sc.resetDedup()
	sc.candG.Clear()
	sc.gProj.ForEach(func(u int) bool {
		sc.gIdx.Occ(u).UnionInto(sc.candG, sc.candG) //dual:allow(bitsetalias: word-parallel accumulation into candG)
		return true
	})
	sc.candG.ForEach(func(j int) bool {
		e := sc.g.Edge(j)
		// Iterate i over E ∩ G (= e ∩ s ∩ gProj, as gProj ⊆ Sα).
		e.IntersectInto(sc.gProj, sc.tmp)
		sc.tmp.ForEach(func(i int) bool {
			// Sα − (E − {i}) = (Sα − e) ∪ {i} since i ∈ Sα.
			c := fr.slot(sc.n)
			s.DiffInto(e, c)
			c.Add(i)
			sc.commitIfNew(fr)
			return true
		})
		return true
	})
}

// containedChildren enumerates C = {Sα − {i} | i ∈ H} ∪ {H} in canonical
// order (vertex index, then H last) with duplicates removed.
//
//dual:allocfree
func (sc *scratch) containedChildren(s, he bitset.Set, fr *frame) {
	sc.resetDedup()
	he.ForEach(func(i int) bool {
		c := fr.slot(sc.n)
		c.CopyFrom(s)
		c.Remove(i)
		sc.commitIfNew(fr)
		return true
	})
	fr.slot(sc.n).CopyFrom(he)
	sc.commitIfNew(fr)
}

func (sc *scratch) resetDedup() {
	clear(sc.dedup)
}

// commitIfNew accepts the candidate child sitting in the frame's next slot
// unless an earlier child equals it (first-occurrence deduplication, keyed
// by hash with an Equal check so collisions stay correct). It reports
// whether the candidate was accepted.
func (sc *scratch) commitIfNew(fr *frame) bool {
	c := fr.children[fr.nChildren]
	hv := c.Hash()
	if k, ok := sc.dedup[hv]; ok {
		if fr.children[k].Equal(c) {
			return false
		}
		// True hash collision: fall back to scanning all accepted children.
		for i := 0; i < fr.nChildren; i++ {
			if fr.children[i].Equal(c) {
				return false
			}
		}
	} else {
		sc.dedup[hv] = int32(fr.nChildren)
	}
	fr.nChildren++
	return true
}

// appendInstanceKey encodes the projected subinstance (G_Sα, H_Sα) at the
// node with set s into buf: a (universe, |G|, |H_Sα|) header, the words of
// every projected g-edge in input order, then the words of every H_Sα edge
// in input order. The encoding is injective (fixed word count per set given
// the header), so it is the collision-checkable memo key of memo.go: two
// nodes — in the same tree, across branches, or across decisions sharing a
// Decider — with equal encodings root identical (deterministic) subtrees.
func (sc *scratch) appendInstanceKey(buf []uint64, s bitset.Set) []uint64 {
	buf = append(buf, uint64(sc.n), uint64(sc.g.M()), uint64(sc.hsCount))
	for j := 0; j < sc.g.M(); j++ {
		buf = sc.g.Edge(j).AppendIntersectionWords(s, buf)
	}
	sc.hsSet.ForEach(func(j int) bool {
		buf = sc.h.Edge(j).AppendWords(buf)
		return true
	})
	return buf
}
