package core

// Allocation-free node classification. Classify (core.go) documents the
// semantics; this file holds the engine that the tree walks actually run
// on. A scratch carries every temporary the marksmall/process procedures
// need, so classifying a node allocates nothing once the walker has warmed
// up; a frame carries the reusable child storage of one tree depth, which
// must outlive the classification because the walk descends through it.
//
// The conventions (scratch is single-walker state, frames are per-depth,
// child sets are valid until the same depth is revisited) are documented in
// DESIGN.md §5.

import (
	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
)

// nodeVerdict is the classification outcome of one node, without the
// materialized sets of a NodeInfo: the witness lives in scratch.wit, the
// majority set in scratch.iSet, and the children in the frame.
type nodeVerdict struct {
	hsCount    int
	kind       Kind
	mark       Mark
	chosenEdge int
}

// frame is the reusable per-depth child storage of a tree walk. The first
// nChildren entries of children are the current node's deduplicated child
// sets, in canonical order; their storage is recycled the next time the walk
// generates children at this depth.
type frame struct {
	children  []bitset.Set
	nChildren int
}

// slot returns the candidate slot for the next child (reused storage over
// the universe [0, n)); commitIfNew accepts or discards it.
func (fr *frame) slot(n int) bitset.Set {
	if fr.nChildren == len(fr.children) {
		fr.children = append(fr.children, bitset.New(n))
	}
	return fr.children[fr.nChildren]
}

// walkState is the complete reusable state of one tree walker — the
// classification scratch, the per-depth frames, and the path-label buffer.
// The serial DFS owns one; the parallel search pools one per worker.
type walkState struct {
	sc     *scratch
	frames []*frame
	path   []int
	// done, when non-nil, is the walk's cancellation channel (ctx.Done());
	// the serial DFS polls it at every node and sets cancelled on abort.
	done      <-chan struct{}
	cancelled bool
	// reuse, set by a Decider on its pinned walker, makes serialWalk capture
	// fail verdicts into witBuf/cowitBuf/pathBuf instead of fresh clones, so
	// repeated decisions on one walker allocate nothing at steady state. The
	// resulting Result aliases these buffers and is valid only until the
	// walker's next run.
	reuse            bool
	witBuf, cowitBuf bitset.Set
	pathBuf          []int
}

func newWalkState(g, h *hypergraph.Hypergraph) *walkState {
	return &walkState{sc: newScratch(g, h)}
}

func (w *walkState) frame(depth int) *frame {
	for len(w.frames) <= depth {
		w.frames = append(w.frames, &frame{})
	}
	return w.frames[depth]
}

// scratch is the reusable working state of one tree walker. It is not safe
// for concurrent use; the parallel search keeps one per worker.
type scratch struct {
	g, h *hypergraph.Hypergraph
	n    int

	hs    []int            // indices of the h-edges inside the current S
	deg   []int            // per-vertex H_S degree (process step 1)
	iSet  bitset.Set       // the majority set Iα
	gProj bitset.Set       // chosen projected g-edge (process step 3)
	tmp   bitset.Set       // per-edge temporary
	wit   bitset.Set       // witness t(α) of the last fail classification
	dedup map[uint64]int32 // child-set hash → index of first occurrence
}

func newScratch(g, h *hypergraph.Hypergraph) *scratch {
	n := g.N()
	return &scratch{
		g: g, h: h, n: n,
		deg:   make([]int, n),
		iSet:  bitset.New(n),
		gProj: bitset.New(n),
		tmp:   bitset.New(n),
		wit:   bitset.New(n),
		dedup: make(map[uint64]int32),
	}
}

// classifyNode applies marksmall/process to the node with set s. Children
// (for internal nodes) are generated into fr; on a fail verdict the witness
// is left in sc.wit, and for |H_S| ≥ 2 the majority set in sc.iSet. All
// outputs are valid only until the next classifyNode call on this scratch
// (children: until fr is reused).
func (sc *scratch) classifyNode(s bitset.Set, fr *frame) nodeVerdict {
	v := nodeVerdict{chosenEdge: -1}
	fr.nChildren = 0

	// H_S: the h-edges fully inside S.
	sc.hs = sc.hs[:0]
	for j := 0; j < sc.h.M(); j++ {
		if sc.h.Edge(j).SubsetOf(s) {
			sc.hs = append(sc.hs, j)
		}
	}
	v.hsCount = len(sc.hs)

	if len(sc.hs) <= 1 {
		sc.marksmall(s, &v)
		return v
	}
	sc.process(s, fr, &v)
	return v
}

// marksmall implements the paper's marksmall procedure for |H_S| ≤ 1.
func (sc *scratch) marksmall(s bitset.Set, v *nodeVerdict) {
	emptyInGS := false
	for j := 0; j < sc.g.M(); j++ {
		if !sc.g.Edge(j).Intersects(s) {
			emptyInGS = true
			break
		}
	}
	if len(sc.hs) == 0 {
		if !emptyInGS {
			v.kind, v.mark = KindSmall0Fail, MarkFail // case 1: t(α) = Sα
			sc.wit.CopyFrom(s)
		} else {
			v.kind, v.mark = KindSmall0Done, MarkDone // case 2
		}
		return
	}
	// |H_S| = 1.
	he := sc.h.Edge(sc.hs[0])
	missing := -1
	he.ForEach(func(i int) bool {
		if !sc.singletonInGS(s, i) {
			missing = i
			return false // smallest such i, per the deterministic variant
		}
		return true
	})
	if missing < 0 {
		v.kind, v.mark = KindSmall1Done, MarkDone // case 3
		return
	}
	v.kind, v.mark = KindSmall1Fail, MarkFail // case 4: t(α) = Sα − {i}
	v.chosenEdge = sc.hs[0]
	sc.wit.CopyFrom(s)
	sc.wit.Remove(missing)
}

// singletonInGS reports whether {i} ∈ G_S, i.e. some edge of g projects onto
// exactly {i} within s.
func (sc *scratch) singletonInGS(s bitset.Set, i int) bool {
	for j := 0; j < sc.g.M(); j++ {
		e := sc.g.Edge(j)
		if e.Contains(i) && s.Contains(i) && e.IntersectionCount(s) == 1 {
			return true
		}
	}
	return false
}

// process implements the paper's process procedure for |H_S| ≥ 2.
func (sc *scratch) process(s bitset.Set, fr *frame, v *nodeVerdict) {
	g, h := sc.g, sc.h

	// Step 1: the majority set Iα — vertices occurring in more than
	// |H_S|/2 hyperedges of H_S.
	deg := sc.deg
	for i := range deg {
		deg[i] = 0
	}
	for _, j := range sc.hs {
		h.Edge(j).ForEach(func(u int) bool {
			deg[u]++
			return true
		})
	}
	sc.iSet.Clear()
	for u := 0; u < sc.n; u++ {
		if 2*deg[u] > len(sc.hs) {
			sc.iSet.Add(u)
		}
	}

	// Step 2: is Iα a new transversal of G_S with respect to H_S?
	isTransversal := true
	for j := 0; j < g.M(); j++ {
		if !g.Edge(j).TripleIntersects(s, sc.iSet) {
			isTransversal = false
			break
		}
	}
	if isTransversal {
		containsHS := false
		for _, j := range sc.hs {
			if h.Edge(j).SubsetOf(sc.iSet) {
				containsHS = true
				break
			}
		}
		if !containsHS {
			v.kind, v.mark = KindProcessFail, MarkFail // t(α) = Iα
			sc.wit.CopyFrom(sc.iSet)
			return
		}
	}

	// Step 3: a projected edge disjoint from Iα (first by input index).
	if !isTransversal {
		for j := 0; j < g.M(); j++ {
			if g.Edge(j).TripleIntersects(s, sc.iSet) {
				continue
			}
			g.Edge(j).IntersectInto(s, sc.gProj)
			v.kind = KindProcessDisjoint
			v.chosenEdge = j
			sc.disjointChildren(s, fr)
			return
		}
		// Unreachable: !isTransversal means some projection misses Iα.
		panic("core: process step 3 found no disjoint edge")
	}

	// Step 4: an H_S edge contained in Iα (first by input index). One must
	// exist: Iα is a transversal of G_S and step 2 did not fire.
	for _, j := range sc.hs {
		he := h.Edge(j)
		if !he.SubsetOf(sc.iSet) {
			continue
		}
		v.kind = KindProcessContained
		v.chosenEdge = j
		sc.containedChildren(s, he, fr)
		return
	}
	panic("core: process step 4 found no contained edge")
}

// disjointChildren enumerates C = {Sα − (E − {i}) | E ∈ G_Sα^G, i ∈ E ∩ G}
// in canonical (edge index, vertex index) order with duplicates removed,
// where G = sc.gProj is the chosen projected edge disjoint from Iα and
// G_Sα^G consists of the projected edges meeting G.
func (sc *scratch) disjointChildren(s bitset.Set, fr *frame) {
	sc.resetDedup()
	for j := 0; j < sc.g.M(); j++ {
		e := sc.g.Edge(j)
		if !e.TripleIntersects(s, sc.gProj) {
			continue // E ⊆ Sα − G: excluded from G_Sα^G
		}
		// Iterate i over E ∩ G = e ∩ s ∩ gProj.
		e.IntersectInto(s, sc.tmp)
		sc.tmp.IntersectInto(sc.gProj, sc.tmp)
		sc.tmp.ForEach(func(i int) bool {
			// Sα − (E − {i}) = (Sα − e) ∪ {i} since i ∈ Sα.
			c := fr.slot(sc.n)
			s.DiffInto(e, c)
			c.Add(i)
			sc.commitIfNew(fr)
			return true
		})
	}
}

// containedChildren enumerates C = {Sα − {i} | i ∈ H} ∪ {H} in canonical
// order (vertex index, then H last) with duplicates removed.
func (sc *scratch) containedChildren(s, he bitset.Set, fr *frame) {
	sc.resetDedup()
	he.ForEach(func(i int) bool {
		c := fr.slot(sc.n)
		c.CopyFrom(s)
		c.Remove(i)
		sc.commitIfNew(fr)
		return true
	})
	fr.slot(sc.n).CopyFrom(he)
	sc.commitIfNew(fr)
}

func (sc *scratch) resetDedup() {
	clear(sc.dedup)
}

// commitIfNew accepts the candidate child sitting in the frame's next slot
// unless an earlier child equals it (first-occurrence deduplication, keyed
// by hash with an Equal check so collisions stay correct). It reports
// whether the candidate was accepted.
func (sc *scratch) commitIfNew(fr *frame) bool {
	c := fr.children[fr.nChildren]
	hv := c.Hash()
	if k, ok := sc.dedup[hv]; ok {
		if fr.children[k].Equal(c) {
			return false
		}
		// True hash collision: fall back to scanning all accepted children.
		for i := 0; i < fr.nChildren; i++ {
			if fr.children[i].Equal(c) {
				return false
			}
		}
	} else {
		sc.dedup[hv] = int32(fr.nChildren)
	}
	fr.nChildren++
	return true
}
