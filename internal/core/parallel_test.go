package core_test

import (
	"math/rand"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/transversal"
)

func TestParallelAgreesWithSerial(t *testing.T) {
	for _, p := range gen.Families(17) {
		serial, err := core.Decide(p.G, p.H)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, workers := range []int{0, 1, 4} {
			par, err := core.DecideParallel(p.G, p.H, workers)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if par.Dual != serial.Dual || par.Reason != serial.Reason {
				t.Fatalf("%s (workers=%d): parallel %v/%v vs serial %v/%v",
					p.Name, workers, par.Dual, par.Reason, serial.Dual, serial.Reason)
			}
			if !par.Dual && par.Reason == core.ReasonNewTransversal {
				if !p.G.IsNewTransversal(par.Witness, p.H) {
					t.Fatalf("%s: invalid parallel witness %v", p.Name, par.Witness)
				}
			}
		}
	}
}

func TestParallelRandom(t *testing.T) {
	r := rand.New(rand.NewSource(157))
	for trial := 0; trial < 40; trial++ {
		g := gen.Random(r, 3+r.Intn(6), 1+r.Intn(5), 0.35)
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = gen.DropEdge(h, r.Intn(h.M()))
		}
		serial, err := core.Decide(g, h)
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.DecideParallel(g, h, 8)
		if err != nil {
			t.Fatal(err)
		}
		if par.Dual != serial.Dual {
			t.Fatalf("trial %d: parallel %v vs serial %v", trial, par.Dual, serial.Dual)
		}
		if !par.Dual && par.Reason == core.ReasonNewTransversal && !g.IsNewTransversal(par.Witness, h) {
			t.Fatalf("trial %d: invalid witness", trial)
		}
	}
}

func TestParallelStatsSaneOnDual(t *testing.T) {
	// On a dual instance nothing is cancelled, so the parallel search must
	// visit exactly the serial node count.
	g, h := gen.Matching(4), gen.MatchingDual(4)
	serial, err := core.TrSubset(h, g) // paper orientation: smaller H role
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.DecideParallel(g, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Dual {
		t.Fatal("wrong verdict")
	}
	if par.Stats.Nodes != serial.Stats.Nodes {
		t.Errorf("parallel visited %d nodes, serial %d", par.Stats.Nodes, serial.Stats.Nodes)
	}
	if par.Stats.MaxDepth != serial.Stats.MaxDepth {
		t.Errorf("depth %d vs %d", par.Stats.MaxDepth, serial.Stats.MaxDepth)
	}
}

func TestParallelConstantsAndErrors(t *testing.T) {
	g := gen.Matching(2)
	wrong := gen.Matching(3)
	if _, err := core.DecideParallel(g, wrong, 2); err == nil {
		t.Error("universe mismatch accepted")
	}
	res, err := core.DecideParallel(g, gen.MatchingDual(2), 2)
	if err != nil || !res.Dual {
		t.Fatalf("dual pair: %v %v", res, err)
	}
}

func BenchmarkDecideSerialMajority7(b *testing.B) {
	m := gen.Majority(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Decide(m, m)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideParallelMajority7(b *testing.B) {
	m := gen.Majority(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.DecideParallel(m, m, 0)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}
