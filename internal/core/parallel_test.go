package core_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/transversal"
)

func TestParallelAgreesWithSerial(t *testing.T) {
	for _, p := range gen.Families(17) {
		serial, err := core.Decide(p.G, p.H)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, workers := range []int{0, 1, 4} {
			par, err := core.DecideParallel(p.G, p.H, workers)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if par.Dual != serial.Dual || par.Reason != serial.Reason {
				t.Fatalf("%s (workers=%d): parallel %v/%v vs serial %v/%v",
					p.Name, workers, par.Dual, par.Reason, serial.Dual, serial.Reason)
			}
			if !par.Dual && par.Reason == core.ReasonNewTransversal {
				if !p.G.IsNewTransversal(par.Witness, p.H) {
					t.Fatalf("%s: invalid parallel witness %v", p.Name, par.Witness)
				}
			}
		}
	}
}

func TestParallelRandom(t *testing.T) {
	r := rand.New(rand.NewSource(157))
	for trial := 0; trial < 40; trial++ {
		g := gen.Random(r, 3+r.Intn(6), 1+r.Intn(5), 0.35)
		if g.HasEmptyEdge() || g.M() == 0 {
			continue
		}
		h := transversal.AsHypergraph(g)
		if h.M() == 0 {
			continue
		}
		if h.M() >= 2 && r.Intn(2) == 0 {
			h = gen.DropEdge(h, r.Intn(h.M()))
		}
		serial, err := core.Decide(g, h)
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.DecideParallel(g, h, 8)
		if err != nil {
			t.Fatal(err)
		}
		if par.Dual != serial.Dual {
			t.Fatalf("trial %d: parallel %v vs serial %v", trial, par.Dual, serial.Dual)
		}
		if !par.Dual && par.Reason == core.ReasonNewTransversal && !g.IsNewTransversal(par.Witness, h) {
			t.Fatalf("trial %d: invalid witness", trial)
		}
	}
}

func TestParallelStatsSaneOnDual(t *testing.T) {
	// On a dual instance nothing is cancelled, so the parallel search must
	// visit exactly the serial node count.
	g, h := gen.Matching(4), gen.MatchingDual(4)
	serial, err := core.TrSubset(h, g) // paper orientation: smaller H role
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.DecideParallel(g, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Dual {
		t.Fatal("wrong verdict")
	}
	if par.Stats.Nodes != serial.Stats.Nodes {
		t.Errorf("parallel visited %d nodes, serial %d", par.Stats.Nodes, serial.Stats.Nodes)
	}
	if par.Stats.MaxDepth != serial.Stats.MaxDepth {
		t.Errorf("depth %d vs %d", par.Stats.MaxDepth, serial.Stats.MaxDepth)
	}
}

func TestParallelConstantsAndErrors(t *testing.T) {
	g := gen.Matching(2)
	wrong := gen.Matching(3)
	if _, err := core.DecideParallel(g, wrong, 2); err == nil {
		t.Error("universe mismatch accepted")
	}
	res, err := core.DecideParallel(g, gen.MatchingDual(2), 2)
	if err != nil || !res.Dual {
		t.Fatalf("dual pair: %v %v", res, err)
	}
}

func TestParallelFairnessOnSkewedTree(t *testing.T) {
	// Majority-9 yields a deeply skewed decomposition tree: a goroutine-per-
	// subtree model with a shallow spawn cutoff serializes behind the one
	// deep branch. The work-stealing pool must instead spread leaf work
	// across workers — steal-from-the-bottom hands thieves the shallowest
	// (largest) pending subtrees. Force GOMAXPROCS=4 so the workers truly
	// interleave even on a single-CPU host (four timesharing threads);
	// scheduling can still occasionally let one worker race through the
	// whole tree, so accept the first attempt where stealing engaged.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	m := gen.Majority(9)
	var last *core.Result
	for attempt := 0; attempt < 5; attempt++ {
		res, err := core.DecideParallel(m, m, 4)
		if err != nil || !res.Dual {
			t.Fatalf("attempt %d: %v %v", attempt, res, err)
		}
		if res.Stats.Spawns == 0 {
			t.Fatalf("attempt %d: internal nodes present but no frames published", attempt)
		}
		last = res
		if res.Stats.LeafWorkers >= 2 && res.Stats.Steals >= 1 {
			t.Logf("attempt %d: nodes=%d spawns=%d steals=%d leafWorkers=%d",
				attempt, res.Stats.Nodes, res.Stats.Spawns, res.Stats.Steals, res.Stats.LeafWorkers)
			return
		}
	}
	t.Fatalf("no attempt spread leaves over >1 worker: last stats %+v", last.Stats)
}

func TestParallelConcurrentDecides(t *testing.T) {
	// Regression for a pooled-state lifetime bug: the old implementation
	// returned the root walk state to its pool before the spawned subtree
	// goroutines finished, so two concurrent decisions could briefly share
	// one scratch. The work-stealing pool hands each worker its state for
	// the worker's whole run; concurrent decisions on distinct instances
	// (distinct universes, forcing pooled storage refits) must stay
	// independent. Run under -race this is the data-race oracle.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for trial := 0; trial < 8; trial++ {
				k := 3 + (i+trial)%3 // matching-3/4/5: three distinct universes
				res, err := core.DecideParallel(gen.Matching(k), gen.MatchingDual(k), 3)
				if err != nil || !res.Dual {
					t.Errorf("goroutine %d trial %d: %v %v", i, trial, res, err)
					return
				}
				m := gen.Majority(5)
				res, err = core.DecideParallel(m, gen.DropEdge(transversal.AsHypergraph(m), trial%3), 3)
				if err != nil || res.Dual {
					t.Errorf("goroutine %d trial %d: dropped-edge pair judged dual (%v %v)", i, trial, res, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestParallelSteadyStateAllocBudget(t *testing.T) {
	// The search object, frames, and worker states are pooled, so a warm
	// parallel decision should allocate only its per-run fixtures: three
	// channels, the worker goroutines, and the Result. A literal zero is
	// not achievable (channels are per-run by design — a closed channel
	// cannot be reused), so this guards a small constant budget instead,
	// independent of tree size (majority-7 walks ~2k nodes).
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; budget holds only on plain builds")
	}
	m := gen.Majority(7)
	if _, err := core.DecideParallel(m, m, 4); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		res, err := core.DecideParallel(m, m, 4)
		if err != nil || !res.Dual {
			t.Fatal("wrong verdict")
		}
	})
	const budget = 48
	if allocs > budget {
		t.Errorf("steady-state parallel decide allocated %.1f/op, budget %d", allocs, budget)
	}
}

func BenchmarkDecideSerialMajority7(b *testing.B) {
	m := gen.Majority(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Decide(m, m)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkDecideParallelMajority7(b *testing.B) {
	m := gen.Majority(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.DecideParallel(m, m, 0)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}
