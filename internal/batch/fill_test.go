package batch

import (
	"context"
	"sync"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/engine"
)

// TestSchedulerFillHook: a Fill that answers every entry means zero engine
// decisions, PeerFills per distinct instance, cached responses for all
// rows, and one OnStore per filled entry.
func TestSchedulerFillHook(t *testing.T) {
	pool := engine.NewSessionPool(nil, 2, 0)
	cache := NewCache(64, 0)
	eng, err := engine.ByName("core")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	fills, stores := 0, 0
	var storedN []int
	s := NewScheduler(Config{
		Pool:  pool,
		Cache: cache,
		Fill: func(ctx context.Context, key Key, n int, rawG, rawH string) (*core.Result, bool) {
			mu.Lock()
			fills++
			mu.Unlock()
			if rawG == "" || rawH == "" {
				t.Errorf("fill for %v received empty raw texts", key)
			}
			return &core.Result{Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1}, true
		},
		OnStore: func(key Key, res *core.Result, n int) {
			mu.Lock()
			stores++
			storedN = append(storedN, n)
			mu.Unlock()
		},
	})

	inst := matchingInstance(2, true)
	reqs := make(chan Request)
	go func() {
		defer close(reqs)
		for i := 0; i < 6; i++ {
			g, h := parsePair(t, inst.g, inst.h)
			reqs <- Request{
				Index: i, EngineName: "core", Engine: eng,
				G: g, H: h, RawG: inst.g, RawH: inst.h,
			}
		}
	}()
	var cachedRows int
	rs := s.Run(context.Background(), reqs, func(resp Response) {
		if resp.Err != nil {
			t.Errorf("row %d: %v", resp.Index, resp.Err)
		}
		if resp.CacheHit {
			cachedRows++
		}
	})
	if rs.Decisions != 0 {
		t.Fatalf("fill hook did not preempt engine runs: %+v", rs)
	}
	if rs.PeerFills != 1 || rs.Unique != 1 {
		t.Fatalf("expected 1 peer fill for 1 unique instance: %+v", rs)
	}
	mu.Lock()
	defer mu.Unlock()
	if fills != 1 || stores != 1 {
		t.Fatalf("fills=%d stores=%d, want 1/1", fills, stores)
	}
	if len(storedN) != 1 || storedN[0] <= 0 {
		t.Fatalf("OnStore universe = %v", storedN)
	}
	if cachedRows != 6 {
		t.Fatalf("peer-filled rows reported cached=%d of 6", cachedRows)
	}
	if st := s.Stats(); st.PeerFills != 1 {
		t.Fatalf("lifetime PeerFills = %d", st.PeerFills)
	}
}

// TestSchedulerFillDeclined: a declining Fill leaves behavior identical to
// no Fill at all — the engine decides, OnStore still observes the stored
// verdict.
func TestSchedulerFillDeclined(t *testing.T) {
	pool := engine.NewSessionPool(nil, 2, 0)
	eng, err := engine.ByName("core")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	stores := 0
	s := NewScheduler(Config{
		Pool:  pool,
		Cache: NewCache(64, 0),
		Fill: func(ctx context.Context, key Key, n int, rawG, rawH string) (*core.Result, bool) {
			return nil, false
		},
		OnStore: func(key Key, res *core.Result, n int) {
			mu.Lock()
			stores++
			mu.Unlock()
		},
	})
	inst := matchingInstance(2, true)
	reqs := make(chan Request, 1)
	g, h := parsePair(t, inst.g, inst.h)
	reqs <- Request{EngineName: "core", Engine: eng, G: g, H: h, RawG: inst.g, RawH: inst.h}
	close(reqs)
	rs := s.Run(context.Background(), reqs, func(resp Response) {
		if resp.Err != nil {
			t.Errorf("row error: %v", resp.Err)
		}
		if !resp.Res.Dual {
			t.Error("2-matching verdict should be dual")
		}
	})
	if rs.Decisions != 1 || rs.PeerFills != 0 {
		t.Fatalf("declined fill changed scheduling: %+v", rs)
	}
	mu.Lock()
	defer mu.Unlock()
	if stores != 1 {
		t.Fatalf("OnStore fired %d times for 1 computed verdict", stores)
	}
}
