package batch

// The Scheduler: one batch = one call to Run with a stream of Requests.
//
// The dominant production pattern for a dualization service is not one
// isolated decision but thousands of related ones per client — the
// dualize-and-advance loop of the itemset miner, key enumeration, or a
// client replaying a workload — and such streams are highly repetitive:
// identical instances, permuted edge orders, renamed-isomorphic copies.
// The scheduler therefore canonicalizes every request, dedups the stream by
// (engine, fingerprint-pair) Key, and runs each distinct instance exactly
// once: the first arrival becomes the entry's leader and is dispatched to a
// drain worker, later duplicates attach as waiters (or are answered
// immediately when the entry is already resolved), and the shared sharded
// Cache answers repeats across batches without any engine work at all.
// This is the service's /v1/decide singleflight idea promoted to batch
// granularity, with the waiting made free: duplicates never occupy a
// worker.
//
// Work drains through a bounded set of workers (Config.Parallelism), each
// of which checks a memoizing engine.Session out of the shared pool per
// decision, so batch traffic and interactive traffic compete for the same
// bounded compute. Cancelling the Run context aborts the whole batch:
// in-flight decisions stop at the next decomposition-tree node, undispatched
// entries resolve with the context error.

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/faultinject"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
)

// Request is one decision in a batch stream. Index is an opaque caller
// correlation id echoed on the Response (responses are emitted in
// completion order, not stream order). Engine must be the resolved engine
// for EngineName; G and H are the raw inputs (the scheduler canonicalizes).
type Request struct {
	Index      int
	EngineName string
	Engine     engine.Engine
	G, H       *hypergraph.Hypergraph
	// Key, when non-nil, asserts that G and H are already canonical and
	// that *Key is their dedup key — producers that dedup raw request
	// texts upstream (the /v1/batch handler) compute it once per distinct
	// text, and the scheduler then skips per-duplicate canonicalization
	// and fingerprinting, the second-largest per-row cost after parsing.
	Key *Key
	// RawG and RawH, when set, carry the original (pre-canonicalization)
	// request texts of G and H for Config.Fill. A peer replica must parse
	// the same bytes the local parse saw — hgio interns vertex names in
	// first-appearance order, so identical text yields identical integer
	// structure, identical canonical fingerprints, and witness indices
	// valid on both sides; a re-rendering of the canonical form would not.
	RawG, RawH string
	// Meta is opaque caller context echoed verbatim on this request's
	// Response (each duplicate keeps its own Meta, whichever request led).
	Meta any
}

// Response is the outcome of one Request. Res is detached and immutable
// (shared between all duplicates of the instance); G and H are the
// canonical forms its edge indices refer to. Exactly one of Res/Err is
// non-nil. CacheHit marks verdicts served from the shared cache; Deduped
// marks responses that coalesced onto another request of the same batch.
type Response struct {
	Index    int
	G, H     *hypergraph.Hypergraph
	Res      *core.Result
	Err      error
	CacheHit bool
	Deduped  bool
	// Meta echoes the request's Meta field.
	Meta any
}

// Config parameterizes a Scheduler.
type Config struct {
	// Pool supplies the sessions decisions run on; required.
	Pool *engine.SessionPool
	// Cache is the shared verdict cache; nil or disabled means every
	// distinct instance is decided.
	Cache *Cache
	// Parallelism bounds the drain workers per Run (<= 0: the pool size).
	// The pool itself bounds total concurrent decisions across batches and
	// any other pool users.
	Parallelism int
	// Metrics, when non-nil, receives every drained decision's wall time
	// and stage timings under its resolved engine name (obs.DecideMetrics
	// preregisters the histograms, so the per-entry update allocates
	// nothing). Nil disables timing entirely.
	Metrics *obs.DecideMetrics
	// OnPanic, when non-nil, receives every panic the drain step contains:
	// the recovered value and the panicking goroutine's stack. The service
	// bridges it to its slog record and dualspace_panics_total counter.
	// Called from the worker goroutine that contained the panic; must not
	// itself panic.
	OnPanic func(v any, stack []byte)
	// Fill, when non-nil, is consulted for each cache-missed entry before
	// an engine session is acquired: given the entry's key, its vertex
	// universe, and the leader's raw request texts, it may return a
	// detached verdict obtained elsewhere (the service bridges it to the
	// cluster peer client). A false return means "compute locally"; Fill
	// must never block long — it runs on a drain worker's time budget.
	Fill func(ctx context.Context, key Key, n int, rawG, rawH string) (*core.Result, bool)
	// OnStore, when non-nil, observes every verdict the scheduler adds to
	// the shared cache (computed or peer-filled, never cache hits), with
	// the vertex universe its witness indices refer to. The service
	// bridges it to the verdict log. Called from drain workers; must not
	// block.
	OnStore func(key Key, res *core.Result, n int)
}

// Stats is a snapshot of a Scheduler's lifetime counters (the /statsz
// "batch" block).
type Stats struct {
	Batches   int64 `json:"batches"`
	Active    int64 `json:"active"`
	Items     int64 `json:"items"`
	Unique    int64 `json:"unique"`
	Deduped   int64 `json:"deduped"`
	CacheHits int64 `json:"cache_hits"`
	Decisions int64 `json:"decisions"`
	Errors    int64 `json:"errors"`
	Panics    int64 `json:"panics"`
	// PeerFills counts entries answered by Config.Fill (a peer replica's
	// cache) instead of a local engine run.
	PeerFills int64 `json:"peer_fills"`
}

// RunStats summarizes one Run: Items = requests consumed, Unique = distinct
// canonical instances, Deduped = responses coalesced onto an in-batch
// duplicate, CacheHits = responses answered by the shared cache, Decisions
// = engine runs completed, Errors = responses carrying an error.
type RunStats struct {
	Items, Unique, Deduped, CacheHits, Decisions, Errors int
	// PeerFills counts entries answered by Config.Fill.
	PeerFills int
}

// Scheduler drains batches; safe for concurrent Runs (which then share the
// pool, the cache and the lifetime counters, but dedup only within their
// own stream — cross-batch sharing happens through the cache).
type Scheduler struct {
	cfg Config

	batches   atomic.Int64
	active    atomic.Int64
	items     atomic.Int64
	unique    atomic.Int64
	deduped   atomic.Int64
	cacheHits atomic.Int64
	decisions atomic.Int64
	errors    atomic.Int64
	panics    atomic.Int64
	fills     atomic.Int64
}

// NewScheduler returns a Scheduler over cfg; cfg.Pool must be non-nil.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Pool == nil {
		panic("batch: NewScheduler without a session pool")
	}
	if cfg.Parallelism <= 0 || cfg.Parallelism > cfg.Pool.Size() {
		cfg.Parallelism = cfg.Pool.Size()
	}
	return &Scheduler{cfg: cfg}
}

// Stats snapshots the lifetime counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Batches:   s.batches.Load(),
		Active:    s.active.Load(),
		Items:     s.items.Load(),
		Unique:    s.unique.Load(),
		Deduped:   s.deduped.Load(),
		CacheHits: s.cacheHits.Load(),
		Decisions: s.decisions.Load(),
		Errors:    s.errors.Load(),
		Panics:    s.panics.Load(),
		PeerFills: s.fills.Load(),
	}
}

// entry is one distinct canonical instance within a Run. Fields past key
// are guarded by the Run's mu until resolved flips true; afterwards res,
// err, g, h and fromCache are immutable.
type entry struct {
	key       Key
	leader    Request
	g, h      *hypergraph.Hypergraph
	resolved  bool
	res       *core.Result
	err       error
	fromCache bool
	waiters   []Request
}

// Run consumes reqs until the channel closes, emitting one Response per
// Request through emit (serially — emit is never called concurrently) and
// returning the batch's statistics. Cancelling ctx fails the remaining
// requests with ctx's error but still drains the channel, so producers
// never block on a dead batch.
func (s *Scheduler) Run(ctx context.Context, reqs <-chan Request, emit func(Response)) RunStats {
	return s.RunN(ctx, 0, reqs, emit)
}

// RunN is Run with a per-batch worker bound overriding Config.Parallelism
// (<= 0 or beyond the configured bound falls back to it) — the
// ?parallelism= knob of POST /v1/batch.
func (s *Scheduler) RunN(ctx context.Context, parallelism int, reqs <-chan Request, emit func(Response)) RunStats {
	if parallelism <= 0 || parallelism > s.cfg.Parallelism {
		parallelism = s.cfg.Parallelism
	}
	s.batches.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	var (
		mu      sync.Mutex // entries map, waiter lists, rs
		emitMu  sync.Mutex // serializes emit
		rs      RunStats
		entries = make(map[Key]*entry)
		work    = make(chan *entry)
		wg      sync.WaitGroup
	)
	send := func(r Response) {
		emitMu.Lock()
		emit(r)
		emitMu.Unlock()
	}
	respond := func(e *entry, req Request, deduped bool) {
		send(Response{
			Index: req.Index, G: e.g, H: e.h,
			Res: e.res, Err: e.err,
			CacheHit: e.fromCache, Deduped: deduped,
			Meta: req.Meta,
		})
	}

	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range work {
				res, filled, err := s.decideEntry(ctx, e)
				mu.Lock()
				e.resolved, e.res, e.err = true, res, err
				// A peer-filled verdict is a cache hit from the cluster's
				// point of view: no engine ran here, and responses should
				// say "cached" exactly as a shared-cache hit would.
				e.fromCache = filled
				ws := e.waiters
				e.waiters = nil
				switch {
				case err != nil:
					rs.Errors += 1 + len(ws)
				case filled:
					rs.PeerFills++
				default:
					rs.Decisions++
				}
				rs.Deduped += len(ws)
				mu.Unlock()
				respond(e, e.leader, false)
				for _, wr := range ws {
					respond(e, wr, true)
				}
			}
		}()
	}

	for req := range reqs {
		mu.Lock()
		rs.Items++
		mu.Unlock()
		if err := ctx.Err(); err != nil {
			// Dead batch: keep draining so the producer can finish, but
			// answer without touching the dedup state or the workers.
			mu.Lock()
			rs.Errors++
			mu.Unlock()
			send(Response{Index: req.Index, Err: err, Meta: req.Meta})
			continue
		}
		var g, h *hypergraph.Hypergraph
		var key Key
		if req.Key != nil {
			g, h, key = req.G, req.H, *req.Key
		} else {
			g, h = req.G.Canonical(), req.H.Canonical()
			key = NewKey(req.EngineName, g.Fingerprint(), h.Fingerprint())
		}
		mu.Lock()
		if e, ok := entries[key]; ok {
			if e.resolved {
				rs.Deduped++
				if e.err != nil {
					rs.Errors++
				}
				mu.Unlock()
				respond(e, req, true)
			} else {
				e.waiters = append(e.waiters, req)
				mu.Unlock()
			}
			continue
		}
		e := &entry{key: key, leader: req, g: g, h: h}
		entries[key] = e
		rs.Unique++
		if s.cfg.Cache != nil {
			if res, ok := s.cfg.Cache.Get(key); ok {
				e.resolved, e.res, e.fromCache = true, res, true
				rs.CacheHits++
				mu.Unlock()
				respond(e, req, false)
				continue
			}
		}
		mu.Unlock()
		select {
		case work <- e:
		case <-ctx.Done():
			// Batch cancelled with this entry undispatched.
			mu.Lock()
			e.resolved, e.err = true, ctx.Err()
			ws := e.waiters
			e.waiters = nil
			rs.Errors += 1 + len(ws)
			rs.Deduped += len(ws)
			mu.Unlock()
			respond(e, e.leader, false)
			for _, wr := range ws {
				respond(e, wr, true)
			}
		}
	}
	close(work)
	wg.Wait()

	s.items.Add(int64(rs.Items))
	s.unique.Add(int64(rs.Unique))
	s.deduped.Add(int64(rs.Deduped))
	s.cacheHits.Add(int64(rs.CacheHits))
	s.decisions.Add(int64(rs.Decisions))
	s.errors.Add(int64(rs.Errors))
	s.fills.Add(int64(rs.PeerFills))
	return rs
}

// decideEntry is the per-entry hot step of a worker's drain loop: decide
// the entry's instance on a pooled session and publish a detached copy to
// the shared cache. No scheduler locks are held in here — the session does
// the long-running work, and RunN's bookkeeping lock is only taken after
// this returns. The decision itself runs in decideSession behind a panic
// boundary, so a kernel panic poisons one session (the pool replaces it on
// Release) instead of killing the worker goroutine — and with it, since
// this is a plain goroutine and not an HTTP handler, the whole process.
//
//dual:allocfree
func (s *Scheduler) decideEntry(ctx context.Context, e *entry) (*core.Result, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	// Peer fill first: if the key's cluster owner already holds the verdict,
	// a bounded network round trip replaces an engine run entirely. Fill
	// failures of any kind degrade to local compute.
	if s.cfg.Fill != nil {
		if res, ok := s.cfg.Fill(ctx, e.key, e.g.N(), e.leader.RawG, e.leader.RawH); ok {
			if s.cfg.Cache != nil {
				s.cfg.Cache.Add(e.key, res)
			}
			if s.cfg.OnStore != nil {
				s.cfg.OnStore(e.key, res, e.g.N())
			}
			return res, true, nil
		}
	}
	sess, err := s.cfg.Pool.Acquire(ctx)
	if err != nil {
		return nil, false, err
	}
	res, err := s.decideSession(ctx, sess, e)
	s.cfg.Pool.Release(sess)
	if res != nil {
		if s.cfg.Cache != nil {
			s.cfg.Cache.Add(e.key, res)
		}
		if s.cfg.OnStore != nil {
			s.cfg.OnStore(e.key, res, e.g.N())
		}
	}
	return res, false, err
}

// decideSession runs one decision on a held session. containPanic is
// installed as a deferred method call, not a closure: the drain step is
// //dual:allocfree, and a deferred method whose pointer arguments stay
// within this frame keeps the happy path allocation-free where a capturing
// func literal would not.
//
//dual:allocfree
func (s *Scheduler) decideSession(ctx context.Context, sess *engine.Session, e *entry) (res *core.Result, err error) {
	defer s.containPanic(sess, &res, &err)
	// The drain fault point fires behind the recover boundary on the held
	// session, so an injected panic exercises the same poison-and-replace
	// path a real kernel panic would.
	if ferr := faultinject.Fire(ctx, faultinject.PointBatchDrain); ferr != nil {
		return nil, ferr
	}
	var rec *obs.Recorder
	var t0 time.Time
	if s.cfg.Metrics != nil {
		rec = sess.Recorder()
		rec.Reset()
		t0 = time.Now()
	}
	r, derr := sess.DecideWith(ctx, e.leader.Engine, e.g, e.h)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Observe(e.key.Engine, time.Since(t0), rec)
	}
	if derr != nil {
		return nil, derr
	}
	// Session results alias the session's pinned scratch; everyone past
	// this point (cache, waiters, the emitted response) shares one
	// detached copy.
	return r.Clone(), nil //dual:allow(allocfree: detaching the verdict from session scratch is the point)
}

// containPanic is the drain step's recover() boundary. On panic it poisons
// the session (the pool mints a replacement on Release), counts it, hands
// the value and stack to Config.OnPanic, and converts the panic into an
// *engine.PanicError result so the entry's leader and waiters get an
// answer instead of a hung batch.
func (s *Scheduler) containPanic(sess *engine.Session, res **core.Result, err *error) {
	v := recover()
	if v == nil {
		return
	}
	sess.MarkPoisoned()
	s.panics.Add(1)
	stack := debug.Stack()
	if s.cfg.OnPanic != nil {
		s.cfg.OnPanic(v, stack)
	}
	*res = nil
	*err = &engine.PanicError{Val: v, Stack: stack}
}
