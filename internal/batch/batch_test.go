package batch

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/hgio"
	"dualspace/internal/hypergraph"
)

// parsePair reads a (g, h) instance from edge text the way the service
// does: a fresh symbol table per request, so renamed-isomorphic texts yield
// identical index families.
func parsePair(t testing.TB, g, h string) (*hypergraph.Hypergraph, *hypergraph.Hypergraph) {
	t.Helper()
	hs, _, err := hgio.ReadHypergraphs(strings.NewReader(g), strings.NewReader(h))
	if err != nil {
		t.Fatalf("parsing %q / %q: %v", g, h, err)
	}
	return hs[0], hs[1]
}

// textInstance is one wire-level instance of the synthetic workload.
type textInstance struct{ g, h string }

// rename maps vertex names v<i> through a fixed injection, producing a
// renamed-isomorphic copy: same index structure after per-request
// interning, hence the same canonical fingerprints.
func rename(in textInstance, tag string) textInstance {
	repl := func(s string) string {
		fields := strings.Fields(s)
		for i, f := range fields {
			fields[i] = f + tag
		}
		return strings.Join(fields, " ")
	}
	var g, h strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(in.g), "\n") {
		g.WriteString(repl(line) + "\n")
	}
	for _, line := range strings.Split(strings.TrimSpace(in.h), "\n") {
		h.WriteString(repl(line) + "\n")
	}
	return textInstance{g.String(), h.String()}
}

// matchingInstance renders the k-matching and (optionally truncated) dual.
func matchingInstance(k int, dual bool) textInstance {
	var g, h strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&g, "v%da v%db\n", i, i)
	}
	limit := 1 << k
	if !dual {
		limit-- // drop one dual edge: a new transversal exists
	}
	for mask := 0; mask < limit; mask++ {
		for i := 0; i < k; i++ {
			side := "a"
			if mask&(1<<i) != 0 {
				side = "b"
			}
			fmt.Fprintf(&h, "v%d%s ", i, side)
		}
		h.WriteString("\n")
	}
	return textInstance{g.String(), h.String()}
}

// workload builds a dedup-heavy stream: a few base instances, duplicated,
// renamed and shuffled.
func workload(t testing.TB, r *rand.Rand) []textInstance {
	t.Helper()
	bases := []textInstance{
		matchingInstance(2, true),
		matchingInstance(3, true),
		matchingInstance(3, false),
		matchingInstance(4, true),
		{"a b\nb c\na c\n", "a b\nb c\na c\n"}, // self-dual triangle
		{"a\na b\n", "a\n"},                    // non-simple: decision error
		{"x y\n", "x\ny\nz\n"},                 // h-edge non-minimal style negative
	}
	var stream []textInstance
	for rep := 0; rep < 3; rep++ {
		for i, b := range bases {
			stream = append(stream, b)
			stream = append(stream, rename(b, fmt.Sprintf("r%d", i%2)))
		}
	}
	r.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	return stream
}

// decideOne is the one-at-a-time reference: a fresh session per call so no
// state is shared with the scheduler under test.
func decideOne(t testing.TB, in textInstance) (*core.Result, error) {
	t.Helper()
	g, h := parsePair(t, in.g, in.h)
	sess := engine.NewSession(nil)
	res, err := sess.Decide(context.Background(), g.Canonical(), h.Canonical())
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// runBatch feeds the stream through a scheduler and returns responses
// indexed by stream position.
func runBatch(t testing.TB, s *Scheduler, stream []textInstance) ([]Response, RunStats) {
	t.Helper()
	reqs := make(chan Request)
	go func() {
		defer close(reqs)
		for i, in := range stream {
			g, h := parsePair(t, in.g, in.h)
			reqs <- Request{Index: i, EngineName: "portfolio", Engine: engine.Default(), G: g, H: h}
		}
	}()
	out := make([]Response, len(stream))
	seen := make([]bool, len(stream))
	st := s.Run(context.Background(), reqs, func(r Response) {
		if r.Index < 0 || r.Index >= len(out) || seen[r.Index] {
			t.Errorf("bad or duplicate response index %d", r.Index)
			return
		}
		out[r.Index], seen[r.Index] = r, true
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("request %d never answered", i)
		}
	}
	return out, st
}

// TestBatchMatchesOneAtATime is the dedup-correctness property test: a
// shuffled stream with duplicates and renamed-isomorphic instances must
// yield exactly the verdicts of independent one-at-a-time decisions —
// verdict, reason, and error-vs-success alike — regardless of which
// duplicate became the leader, which were coalesced, and which were served
// by the cache.
func TestBatchMatchesOneAtATime(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		stream := workload(t, r)
		pool := engine.NewSessionPool(nil, 2, 0)
		s := NewScheduler(Config{Pool: pool, Cache: NewCache(64, 4)})
		got, st := runBatch(t, s, stream)

		for i, in := range stream {
			want, wantErr := decideOne(t, in)
			resp := got[i]
			if (wantErr != nil) != (resp.Err != nil) {
				t.Fatalf("seed %d item %d: err=%v, reference err=%v", seed, i, resp.Err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if resp.Res == nil {
				t.Fatalf("seed %d item %d: no result", seed, i)
			}
			if resp.Res.Dual != want.Dual || resp.Res.Reason != want.Reason {
				t.Fatalf("seed %d item %d: got (%v,%v), reference (%v,%v)",
					seed, i, resp.Res.Dual, resp.Res.Reason, want.Dual, want.Reason)
			}
			// The canonical instance attached to the response must match
			// the one the reference decision ran on (fingerprint-level).
			g, h := parsePair(t, in.g, in.h)
			if resp.G.Fingerprint() != g.Canonical().Fingerprint() ||
				resp.H.Fingerprint() != h.Canonical().Fingerprint() {
				t.Fatalf("seed %d item %d: response canonical forms drifted", seed, i)
			}
		}
		if st.Items != len(stream) {
			t.Errorf("seed %d: items %d, want %d", seed, st.Items, len(stream))
		}
		// The workload has 7 distinct canonical instances per rename tag
		// class; dedup must have collapsed far below the stream length.
		if st.Unique >= st.Items/2 {
			t.Errorf("seed %d: dedup ineffective: %d unique of %d", seed, st.Unique, st.Items)
		}
		if st.Deduped+st.CacheHits+st.Decisions+countLeaderErrors(got) < st.Items {
			t.Errorf("seed %d: stats don't account for the stream: %+v", seed, st)
		}
	}
}

func countLeaderErrors(rs []Response) int {
	n := 0
	for _, r := range rs {
		if r.Err != nil && !r.Deduped {
			n++
		}
	}
	return n
}

// TestBatchRenamedIsomorphicDedup pins the fingerprint-level behavior: a
// renamed copy must coalesce onto the original (same canonical key), and a
// second batch over the same instances must be all cache hits.
func TestBatchRenamedIsomorphicDedup(t *testing.T) {
	base := matchingInstance(3, true)
	stream := []textInstance{base, rename(base, "x"), base, rename(base, "zz")}
	pool := engine.NewSessionPool(nil, 2, 0)
	cache := NewCache(32, 2)
	s := NewScheduler(Config{Pool: pool, Cache: cache})

	_, st := runBatch(t, s, stream)
	if st.Unique != 1 || st.Decisions != 1 {
		t.Fatalf("renamed instances not deduped: %+v", st)
	}
	if st.Deduped != 3 {
		t.Errorf("deduped = %d, want 3", st.Deduped)
	}

	got, st2 := runBatch(t, s, stream)
	if st2.Decisions != 0 || st2.CacheHits != 1 {
		t.Fatalf("second batch recomputed: %+v", st2)
	}
	for i, r := range got {
		if r.Err != nil || r.Res == nil || !r.Res.Dual {
			t.Fatalf("second batch item %d: %+v", i, r)
		}
		if !r.CacheHit && !r.Deduped {
			t.Errorf("second batch item %d served neither by cache nor dedup", i)
		}
	}
}

// TestBatchCancellation: cancelling the Run context fails the remaining
// requests with the context error while still answering every request and
// draining the producer (a dead batch must never block its input stream).
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := engine.NewSessionPool(nil, 1, 0)
	s := NewScheduler(Config{Pool: pool})

	// Distinct instances so nothing dedups and every request needs a run.
	reqs := make(chan Request)
	go func() {
		defer close(reqs)
		for i := 0; i < 8; i++ {
			in := matchingInstance(2+i%4, i%2 == 0)
			g, h := parsePair(t, in.g, in.h)
			reqs <- Request{Index: i, EngineName: "core", Engine: mustEngine(t, "core"), G: g, H: h}
		}
	}()
	var okCount, errCount int
	st := s.Run(ctx, reqs, func(r Response) {
		if r.Err != nil {
			errCount++
		} else {
			okCount++
		}
		cancel() // kill the batch at the first response
	})
	if okCount+errCount != 8 || st.Items != 8 {
		t.Fatalf("answered %d+%d of 8 (stats %+v)", okCount, errCount, st)
	}
	if errCount == 0 {
		t.Error("cancellation produced no failed responses")
	}
	if int(st.Errors) != errCount {
		t.Errorf("Errors = %d, emitted %d error responses", st.Errors, errCount)
	}
}

func mustEngine(t testing.TB, name string) engine.Engine {
	t.Helper()
	eng, err := engine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestConcurrentBatchesSharedCache is the satellite race test: several
// batches over overlapping workloads run concurrently against one sharded
// cache and one session pool; under -race this exercises the shard locks,
// the dedup tables and the lifetime counters.
func TestConcurrentBatchesSharedCache(t *testing.T) {
	pool := engine.NewSessionPool(nil, 4, 0)
	cache := NewCache(128, 8)
	s := NewScheduler(Config{Pool: pool, Cache: cache, Parallelism: 2})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for b := 0; b < 6; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + b)))
			stream := workload(t, r)
			reqs := make(chan Request)
			go func() {
				defer close(reqs)
				for i, in := range stream {
					g, h := parsePair(t, in.g, in.h)
					reqs <- Request{Index: i, EngineName: "portfolio", Engine: engine.Default(), G: g, H: h}
				}
			}()
			answered := 0
			st := s.Run(context.Background(), reqs, func(r Response) { answered++ })
			if answered != len(stream) || st.Items != len(stream) {
				errs <- fmt.Errorf("batch %d: %d answers for %d items", b, answered, len(stream))
			}
		}(b)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Batches != 6 || st.Active != 0 {
		t.Errorf("lifetime stats: %+v", st)
	}
	// Errors overlaps Deduped (a coalesced error response counts in both),
	// so the counters bound the stream from above, never below.
	if st.Deduped+st.CacheHits+st.Decisions+st.Errors < st.Items {
		t.Errorf("counters lost items: %+v", st)
	}
	if cache.Len() == 0 {
		t.Error("shared cache stayed empty")
	}
}

func TestCacheShardingAndLRU(t *testing.T) {
	c := NewCache(8, 4)
	if c.Shards() != 4 || c.Capacity() != 8 {
		t.Fatalf("shards=%d cap=%d", c.Shards(), c.Capacity())
	}
	mk := func(i int) Key {
		g := hypergraph.MustFromEdges(8, [][]int{{i % 8}, {(i + 1) % 8, (i + 3) % 8}})
		return NewKey("core", g.Fingerprint(), g.Fingerprint())
	}
	res := &core.Result{}
	for i := 0; i < 64; i++ {
		c.Add(mk(i), res)
	}
	if got := c.Len(); got > 8+4 { // per-shard cap rounds up: ceil(8/4)=2 each
		t.Errorf("cache overfull: %d entries", got)
	}
	// Per-shard LRU: re-adding refreshes, Get moves to front.
	k := mk(1)
	c.Add(k, res)
	if _, ok := c.Get(k); !ok {
		t.Error("fresh entry missing")
	}
	stats := c.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats for %d shards", len(stats))
	}
	var hits int64
	for _, sh := range stats {
		hits += sh.Hits
	}
	if hits == 0 {
		t.Error("no shard recorded the hit")
	}

	// Disabled cache: no storage, no stats.
	off := NewCache(0, 4)
	off.Add(k, res)
	if _, ok := off.Get(k); ok {
		t.Error("disabled cache stored an entry")
	}
	if off.Len() != 0 || off.Shards() != 0 {
		t.Error("disabled cache not empty")
	}
}

func TestKeyDistinguishesEngines(t *testing.T) {
	g := hypergraph.MustFromEdges(4, [][]int{{0, 1}})
	a := NewKey("core", g.Fingerprint(), g.Fingerprint())
	b := NewKey("fk-b", g.Fingerprint(), g.Fingerprint())
	if a == b {
		t.Fatal("engine name not part of the key")
	}
	c := NewCache(16, 2)
	c.Add(a, &core.Result{Dual: true})
	if _, ok := c.Get(b); ok {
		t.Fatal("cross-engine cache hit")
	}
}
