// Package batch is the high-throughput decision subsystem: a sharded
// verdict cache shared by every serving path and a Scheduler that drains a
// stream of duality requests through a pool of memoizing engine sessions,
// canonicalizing and deduplicating identical instances so one decomposition
// fans out to every duplicate in the stream. DESIGN.md §8 documents the
// layout; internal/service exposes it as POST /v1/batch.
package batch

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
)

// Key identifies one decision: the resolved engine registry name plus the
// canonical fingerprints of both sides. Engines agree on verdicts but not
// on witnesses or statistics, so the engine name is part of the key — a
// verdict computed by one engine is never served for an explicit request of
// another. Key is comparable and is used directly as the map key of cache
// shards and dedup tables.
type Key struct {
	Engine string
	FG, FH hypergraph.Fingerprint
}

// NewKey canonicalizes nothing: callers pass fingerprints of the canonical
// forms (Hypergraph.Canonical), which is what makes renamed-isomorphic and
// permuted-edge-order requests collide onto one key.
func NewKey(engineName string, fg, fh hypergraph.Fingerprint) Key {
	return Key{Engine: engineName, FG: fg, FH: fh}
}

// hash folds the key into 64 bits for shard selection: the fingerprints are
// sha256 digests (already mixed — Fingerprint.Hash64 takes 8 bytes), the
// engine name is folded in FNV-style so the same instance on different
// engines lands on independent shards.
func (k Key) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Engine); i++ {
		h ^= uint64(k.Engine[i])
		h *= prime
	}
	h ^= k.FG.Hash64()
	h *= prime
	h ^= k.FH.Hash64()
	h *= prime
	return h
}

// Hash64 exposes the key's 64-bit fold for placement decisions beyond the
// in-process shards — internal/cluster routes the same value over a
// consistent-hash ring of replicas, so a key's network owner and its local
// shard are derived from one hash function.
func (k Key) Hash64() uint64 { return k.hash() }

// DefaultShards is the shard count applied when a Cache is built with
// shards <= 0: enough that the per-shard mutexes stop being the contention
// point under a few dozen concurrent clients, small enough that a
// modest-capacity cache still has meaningful per-shard LRU depth.
const DefaultShards = 8

// Cache is an N-way sharded LRU of duality verdicts. Each shard has its own
// mutex, list and map, so concurrent lookups on different shards never
// contend — the single-mutex LRU it replaces serialized every /v1/decide
// hit in the service. Cached Results are detached (core.Result.Clone) and
// treated as immutable by every reader. A capacity <= 0 disables the cache
// entirely (every Get misses, Add is a no-op).
type Cache struct {
	shards []cacheShard
	mask   uint64
	cap    int
}

type cacheShard struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	m      map[Key]*list.Element
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key Key
	res *core.Result
}

// NewCache builds a cache of the given total capacity split across shards
// (rounded up to a power of two; <= 0 applies DefaultShards). Each shard
// holds ceil(capacity/shards) entries, so the total capacity is preserved
// up to rounding.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		return &Cache{}
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1), cap: capacity}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: perShard, ll: list.New(), m: make(map[Key]*list.Element)}
	}
	return c
}

// Capacity reports the configured total entry bound (0 when disabled).
func (c *Cache) Capacity() int { return c.cap }

// Shards reports the shard count (0 when disabled).
func (c *Cache) Shards() int { return len(c.shards) }

func (c *Cache) shard(k Key) *cacheShard { return &c.shards[k.hash()&c.mask] }

// Get returns the cached verdict for k, marking it most recently used.
func (c *Cache) Get(k Key) (*core.Result, bool) {
	if len(c.shards) == 0 {
		return nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	s.hits.Add(1)
	return res, true
}

// Add inserts (or refreshes) a verdict, evicting the shard's least recently
// used entries beyond its capacity. res must be detached and immutable.
func (c *Cache) Add(k Key, res *core.Result) {
	if len(c.shards) == 0 {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	s.m[k] = s.ll.PushFront(&cacheEntry{key: k, res: res})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.m, back.Value.(*cacheEntry).key)
	}
}

// Len reports the total entry count across shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// ShardStats is one shard's observable state.
type ShardStats struct {
	Size   int   `json:"size"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats snapshots every shard (index order is stable, so dashboards can
// watch the distribution).
func (c *Cache) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		size := s.ll.Len()
		s.mu.Unlock()
		out[i] = ShardStats{Size: size, Hits: s.hits.Load(), Misses: s.misses.Load()}
	}
	return out
}
