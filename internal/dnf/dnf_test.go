package dnf_test

import (
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/dnf"
	"dualspace/internal/hypergraph"
)

func TestParseBasics(t *testing.T) {
	d := dnf.MustParse("a b + b c + a c")
	if d.NumVars() != 3 || d.NumTerms() != 3 {
		t.Fatalf("vars=%d terms=%d", d.NumVars(), d.NumTerms())
	}
	if got := d.String(); got != "a b + b c + a c" {
		t.Errorf("String = %q", got)
	}
	// Alternative separators.
	d2 := dnf.MustParse("a&b | b&c | a&c")
	if d2.String() != d.String() {
		t.Errorf("separator parse mismatch: %q vs %q", d2.String(), d.String())
	}
	d3 := dnf.MustParse("a*b")
	if d3.NumTerms() != 1 || d3.NumVars() != 2 {
		t.Error("star separator failed")
	}
}

func TestParseConstants(t *testing.T) {
	bot := dnf.MustParse("0")
	if bot.NumTerms() != 0 || bot.String() != "0" {
		t.Errorf("bottom: %v", bot)
	}
	top := dnf.MustParse("1")
	if top.NumTerms() != 1 || top.String() != "1" {
		t.Errorf("top: %v", top)
	}
	if !top.Eval(nil) {
		t.Error("⊤ must evaluate true")
	}
	if bot.Eval(map[string]bool{"a": true}) {
		t.Error("⊥ must evaluate false")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "a + ", "+", "a 1b", "a-b", "a +  + b"} {
		if _, err := dnf.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestEval(t *testing.T) {
	d := dnf.MustParse("a b + c")
	cases := []struct {
		assign map[string]bool
		want   bool
	}{
		{map[string]bool{"a": true, "b": true}, true},
		{map[string]bool{"a": true}, false},
		{map[string]bool{"c": true}, true},
		{map[string]bool{}, false},
		{map[string]bool{"a": true, "b": false, "c": false}, false},
		{map[string]bool{"z": true}, false}, // unknown var ignored
	}
	for i, c := range cases {
		if got := d.Eval(c.assign); got != c.want {
			t.Errorf("case %d: Eval(%v) = %v", i, c.assign, got)
		}
	}
}

func TestIrredundantMinimize(t *testing.T) {
	d := dnf.MustParse("a + a b + c")
	if d.IsIrredundant() {
		t.Error("redundant DNF reported irredundant")
	}
	m := d.Minimize()
	if !m.IsIrredundant() || m.NumTerms() != 2 {
		t.Errorf("Minimize: %v", m)
	}
	if !dnf.EqualBrute(d, m) {
		t.Error("Minimize changed the function")
	}
}

func TestHypergraphRoundTrip(t *testing.T) {
	d := dnf.MustParse("a b + b c")
	h := d.Hypergraph()
	if h.M() != 2 || h.N() != 3 {
		t.Fatalf("hypergraph: %v", h)
	}
	back, err := dnf.FromHypergraph(h, d.Vars())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != d.String() {
		t.Errorf("round trip: %q vs %q", back.String(), d.String())
	}
	// Default names.
	auto, err := dnf.FromHypergraph(hypergraph.MustFromEdges(2, [][]int{{0, 1}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.String() != "x0 x1" {
		t.Errorf("auto names: %q", auto.String())
	}
	if _, err := dnf.FromHypergraph(h, []string{"only-one"}); err == nil {
		t.Error("name count mismatch accepted")
	}
}

func TestDualKnown(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a b", "a + b"},
		{"a + b", "a b"},
		{"a b + b c + a c", "a b + b c + a c"}, // self-dual majority
		{"a b + c", "a c + b c"},
		{"1", "0"},
		{"0", "1"},
	}
	for _, c := range cases {
		got := dnf.MustParse(c.in).Dual()
		want := dnf.MustParse(c.want)
		if !dnf.EqualBrute(got, want) {
			t.Errorf("Dual(%q) = %q, want equivalent of %q", c.in, got.String(), c.want)
		}
	}
}

func TestDualInvolution(t *testing.T) {
	for _, s := range []string{"a b + c d", "a + b c + b d", "a b c", "p q + q r + p r"} {
		d := dnf.MustParse(s)
		dd := d.Dual().Dual()
		if !dnf.EqualBrute(d, dd) {
			t.Errorf("dual(dual(%q)) = %q", s, dd.String())
		}
	}
}

func TestDualPairViaCore(t *testing.T) {
	f := dnf.MustParse("a b + c d")
	g := f.Dual()
	fh, gh, _ := dnf.Align(f, g)
	res, err := core.Decide(fh, gh)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dual {
		t.Errorf("core rejects dual pair %q / %q", f, g)
	}
	// Different variable sets are never dual.
	h2 := dnf.MustParse("a b + c e")
	fh2, gh2, names := dnf.Align(f, h2.Dual())
	if len(names) != 5 {
		t.Fatalf("aligned names: %v", names)
	}
	res, err = core.Decide(fh2, gh2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dual {
		t.Error("pair with different variables reported dual")
	}
}

func TestSortedTerms(t *testing.T) {
	d := dnf.MustParse("c b + a")
	got := d.SortedTerms()
	if len(got) != 2 || got[0][0] != "a" || got[1][0] != "b" || got[1][1] != "c" {
		t.Errorf("SortedTerms = %v", got)
	}
}

func TestNewAndAddTerm(t *testing.T) {
	d, err := dnf.New([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddTerm("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTerm("z"); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := dnf.New([]string{"a", "a"}); err == nil {
		t.Error("duplicate variable accepted")
	}
	if _, err := dnf.New([]string{""}); err == nil {
		t.Error("empty variable accepted")
	}
}
