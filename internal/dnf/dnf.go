// Package dnf implements irredundant monotone Boolean formulas in
// disjunctive normal form, the formula-side view of the DUAL problem.
//
// Gottlob (PODS 2013, §1) treats DNF duality and hypergraph duality as one
// problem: the hypergraph of a monotone DNF has one hyperedge per disjunct
// (the set of its variables), and the DNF is irredundant exactly when that
// hypergraph is simple. This package provides the two "trivial reductions"
// — much easier than logspace, as the paper notes — plus parsing, printing,
// evaluation and dualization.
//
// Concrete syntax: disjuncts are separated by "+" or "|"; variables within a
// disjunct by whitespace, "&" or "*". A variable is an identifier
// ([A-Za-z_][A-Za-z0-9_]*). The constants are "0" (empty DNF, ⊥) and "1"
// (the single empty disjunct, ⊤). Example: "a b + b c + a c".
package dnf

import (
	"fmt"
	"sort"
	"strings"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// DNF is a monotone Boolean formula in disjunctive normal form over named
// variables. The zero value is ⊥ (the empty DNF with no variables).
type DNF struct {
	vars     []string
	varIndex map[string]int
	terms    []bitset.Set // over the universe [0, len(vars))
}

// New returns a DNF with the given variable set and no disjuncts (⊥).
// Variable names must be distinct and non-empty.
func New(vars []string) (*DNF, error) {
	d := &DNF{varIndex: map[string]int{}}
	for _, v := range vars {
		if v == "" {
			return nil, fmt.Errorf("dnf: empty variable name")
		}
		if _, dup := d.varIndex[v]; dup {
			return nil, fmt.Errorf("dnf: duplicate variable %q", v)
		}
		d.varIndex[v] = len(d.vars)
		d.vars = append(d.vars, v)
	}
	return d, nil
}

// Parse parses the package's concrete syntax.
func Parse(s string) (*DNF, error) {
	d := &DNF{varIndex: map[string]int{}}
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return nil, fmt.Errorf("dnf: empty input")
	}
	if trimmed == "0" {
		return d, nil
	}
	if trimmed == "1" {
		d.terms = append(d.terms, bitset.New(0))
		return d, nil
	}
	normalized := strings.ReplaceAll(trimmed, "|", "+")
	var termIdx [][]int
	for _, termSrc := range strings.Split(normalized, "+") {
		termSrc = strings.ReplaceAll(termSrc, "&", " ")
		termSrc = strings.ReplaceAll(termSrc, "*", " ")
		fields := strings.Fields(termSrc)
		if len(fields) == 0 {
			return nil, fmt.Errorf("dnf: empty disjunct in %q", s)
		}
		var idx []int
		for _, name := range fields {
			if !validIdent(name) {
				return nil, fmt.Errorf("dnf: invalid variable %q", name)
			}
			i, ok := d.varIndex[name]
			if !ok {
				i = len(d.vars)
				d.varIndex[name] = i
				d.vars = append(d.vars, name)
			}
			idx = append(idx, i)
		}
		termIdx = append(termIdx, idx)
	}
	for _, idx := range termIdx {
		d.terms = append(d.terms, markTerm(len(d.vars), idx))
	}
	return d, nil
}

func markTerm(n int, idx []int) bitset.Set {
	s := bitset.New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

func validIdent(s string) bool {
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) *DNF {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FromHypergraph builds the DNF of a hypergraph with the given variable
// names (one per vertex). names may be nil, in which case x0, x1, ... are
// used.
func FromHypergraph(h *hypergraph.Hypergraph, names []string) (*DNF, error) {
	if names == nil {
		names = make([]string, h.N())
		for i := range names {
			names[i] = fmt.Sprintf("x%d", i)
		}
	}
	if len(names) != h.N() {
		return nil, fmt.Errorf("dnf: %d names for universe %d", len(names), h.N())
	}
	d, err := New(names)
	if err != nil {
		return nil, err
	}
	for _, e := range h.Edges() {
		d.terms = append(d.terms, e.Clone())
	}
	return d, nil
}

// Hypergraph returns the hypergraph of the DNF: one edge per disjunct over
// the universe of the DNF's variables.
func (d *DNF) Hypergraph() *hypergraph.Hypergraph {
	return hypergraph.FromSets(len(d.vars), d.terms)
}

// NumVars returns the number of variables.
func (d *DNF) NumVars() int { return len(d.vars) }

// NumTerms returns the number of disjuncts.
func (d *DNF) NumTerms() int { return len(d.terms) }

// VarName returns the name of variable i.
func (d *DNF) VarName(i int) string { return d.vars[i] }

// Vars returns a copy of the variable names in index order.
func (d *DNF) Vars() []string { return append([]string(nil), d.vars...) }

// AddTerm appends a disjunct given by variable names; unknown names are
// rejected (the variable set is fixed at construction).
func (d *DNF) AddTerm(names ...string) error {
	idx := make([]int, 0, len(names))
	for _, name := range names {
		i, ok := d.varIndex[name]
		if !ok {
			return fmt.Errorf("dnf: unknown variable %q", name)
		}
		idx = append(idx, i)
	}
	d.terms = append(d.terms, markTerm(len(d.vars), idx))
	return nil
}

// Eval evaluates the DNF under the assignment that sets exactly the named
// variables to true; unknown names are ignored (they are irrelevant to the
// formula).
func (d *DNF) Eval(trueVars map[string]bool) bool {
	x := bitset.New(len(d.vars))
	for name, val := range trueVars {
		if i, ok := d.varIndex[name]; ok && val {
			x.Add(i)
		}
	}
	return d.EvalSet(x)
}

// EvalSet evaluates the DNF at the set of true variable indices.
func (d *DNF) EvalSet(x bitset.Set) bool {
	for _, t := range d.terms {
		if t.SubsetOf(x) {
			return true
		}
	}
	return false
}

// IsIrredundant reports whether no disjunct's variable set is covered by
// another disjunct's (the paper's irredundancy, i.e. the hypergraph is
// simple).
func (d *DNF) IsIrredundant() bool {
	return d.Hypergraph().IsSimple()
}

// Minimize returns the irredundant DNF equivalent to d (drops covered
// disjuncts and duplicates).
func (d *DNF) Minimize() *DNF {
	h := d.Hypergraph().Minimize()
	out, _ := FromHypergraph(h, d.Vars())
	return out
}

// Dual computes the dual DNF f^d(x) = ¬f(¬x) as an irredundant monotone
// DNF, by hypergraph dualization (the minimal transversals of d's
// hypergraph). Exponential in the worst case; intended for moderate sizes.
func (d *DNF) Dual() *DNF {
	tr := transversal.AsHypergraph(d.Hypergraph().Minimize())
	out, _ := FromHypergraph(tr, d.Vars())
	return out
}

// String renders the DNF in the package's concrete syntax with disjuncts
// and variables in input order ("0" and "1" for the constants).
func (d *DNF) String() string {
	if len(d.terms) == 0 {
		return "0"
	}
	parts := make([]string, len(d.terms))
	for i, t := range d.terms {
		if t.IsEmpty() {
			parts[i] = "1"
			continue
		}
		var names []string
		t.ForEach(func(v int) bool { names = append(names, d.vars[v]); return true })
		parts[i] = strings.Join(names, " ")
	}
	if len(parts) == 1 && parts[0] == "1" {
		return "1"
	}
	return strings.Join(parts, " + ")
}

// Align maps two DNFs onto a common variable universe (the union of their
// variable sets, first-come order: all of f's variables, then g's new
// ones) and returns the corresponding hypergraphs together with the joint
// name table. This is the reduction that feeds DNF pairs to the hypergraph
// DUAL machinery.
func Align(f, g *DNF) (fh, gh *hypergraph.Hypergraph, names []string) {
	index := map[string]int{}
	for _, v := range f.vars {
		if _, ok := index[v]; !ok {
			index[v] = len(names)
			names = append(names, v)
		}
	}
	for _, v := range g.vars {
		if _, ok := index[v]; !ok {
			index[v] = len(names)
			names = append(names, v)
		}
	}
	n := len(names)
	remap := func(d *DNF) *hypergraph.Hypergraph {
		h := hypergraph.New(n)
		for _, t := range d.terms {
			e := bitset.New(n)
			t.ForEach(func(v int) bool { e.Add(index[d.vars[v]]); return true })
			h.AddEdge(e)
		}
		return h
	}
	return remap(f), remap(g), names
}

// EqualBrute reports whether two DNFs compute the same monotone function,
// by exhaustive evaluation over the union of their variables. It panics
// beyond 22 joint variables; it is a test oracle.
func EqualBrute(f, g *DNF) bool {
	fh, gh, names := Align(f, g)
	n := len(names)
	if n > 22 {
		panic("dnf: EqualBrute universe too large")
	}
	for mask := 0; mask < 1<<uint(n); mask++ {
		x := bitset.New(n)
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				x.Add(v)
			}
		}
		fv := false
		for _, e := range fh.Edges() {
			if e.SubsetOf(x) {
				fv = true
				break
			}
		}
		gv := false
		for _, e := range gh.Edges() {
			if e.SubsetOf(x) {
				gv = true
				break
			}
		}
		if fv != gv {
			return false
		}
	}
	return true
}

// SortedTerms returns the disjuncts as sorted variable-name slices, sorted
// lexicographically — a canonical form for comparisons in tests and tools.
func (d *DNF) SortedTerms() [][]string {
	out := make([][]string, 0, len(d.terms))
	for _, t := range d.terms {
		var names []string
		t.ForEach(func(v int) bool { names = append(names, d.vars[v]); return true })
		sort.Strings(names)
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}
