package dnf_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dualspace/internal/bitset"
	"dualspace/internal/dnf"
)

// randomDNFSource builds a random, syntactically valid DNF source string.
func randomDNFSource(r *rand.Rand) string {
	vars := []string{"a", "b", "c", "d", "e"}
	nTerms := 1 + r.Intn(4)
	terms := make([]string, nTerms)
	for i := range terms {
		nVars := 1 + r.Intn(3)
		seen := map[string]bool{}
		var vs []string
		for len(vs) < nVars {
			v := vars[r.Intn(len(vars))]
			if !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
		terms[i] = strings.Join(vs, " ")
	}
	return strings.Join(terms, " + ")
}

// TestQuickParsePrintRoundTrip: parsing the printed form yields the same
// Boolean function.
func TestQuickParsePrintRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	for i := 0; i < 300; i++ {
		src := randomDNFSource(r)
		d, err := dnf.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		back, err := dnf.Parse(d.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", d.String(), err)
		}
		if !dnf.EqualBrute(d, back) {
			t.Fatalf("round trip changed function: %q vs %q", src, back.String())
		}
	}
}

// TestQuickDualInvolution: dual(dual(f)) computes the same function as the
// minimized f.
func TestQuickDualInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for i := 0; i < 120; i++ {
		d := dnf.MustParse(randomDNFSource(r))
		dd := d.Dual().Dual()
		if !dnf.EqualBrute(d, dd) {
			t.Fatalf("involution failed for %q: got %q", d.String(), dd.String())
		}
	}
}

// TestQuickDualComplementLaw: for every assignment X, f(X) = ¬f^d(¬X) —
// the defining equation of duality, checked pointwise.
func TestQuickDualComplementLaw(t *testing.T) {
	r := rand.New(rand.NewSource(127))
	for i := 0; i < 60; i++ {
		d := dnf.MustParse(randomDNFSource(r))
		dual := d.Dual()
		h := d.Hypergraph()
		hd := dual.Hypergraph()
		n := h.N()
		for mask := 0; mask < 1<<uint(n); mask++ {
			x := maskSet(n, mask)
			co := x.Complement()
			fx := false
			for _, e := range h.Edges() {
				if e.SubsetOf(x) {
					fx = true
					break
				}
			}
			fdco := false
			for _, e := range hd.Edges() {
				if e.SubsetOf(co) {
					fdco = true
					break
				}
			}
			if fx == fdco {
				t.Fatalf("duality law violated for %q at %v", d.String(), x)
			}
		}
	}
}

// TestQuickParseNeverPanics feeds arbitrary strings to the parser; it must
// return a value or an error, never panic.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		d, err := dnf.Parse(s)
		if err == nil && d == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func maskSet(n, mask int) bitset.Set {
	s := bitset.New(n)
	for v := 0; v < n; v++ {
		if mask&(1<<uint(v)) != 0 {
			s.Add(v)
		}
	}
	return s
}
