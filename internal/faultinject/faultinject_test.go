package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// arm enables inj for the test and disarms it on cleanup, so no test can
// leak a process-global injector into the rest of the run.
func arm(t *testing.T, inj *Injector) {
	t.Helper()
	Enable(inj)
	t.Cleanup(Disable)
}

func TestFireDisabledIsNoop(t *testing.T) {
	Disable()
	for _, p := range Points() {
		if err := Fire(context.Background(), p); err != nil {
			t.Fatalf("Fire(%s) disabled = %v", p, err)
		}
	}
	if Enabled() {
		t.Fatal("Enabled() with no injector armed")
	}
}

func TestEveryNIsDeterministic(t *testing.T) {
	arm(t, New(1, Rule{Point: PointDecide, Action: ActionError, Every: 3}))
	before := Fired(PointDecide)
	var errs int
	for i := 1; i <= 12; i++ {
		err := Fire(context.Background(), PointDecide)
		if fires := i%3 == 0; fires != (err != nil) {
			t.Fatalf("pass %d: err=%v, want fire=%v", i, err, fires)
		}
		if err != nil {
			errs++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
		}
	}
	if errs != 4 {
		t.Fatalf("every=3 fired %d times in 12 passes, want 4", errs)
	}
	if got := Fired(PointDecide) - before; got != 4 {
		t.Fatalf("Fired delta = %d, want 4", got)
	}
}

func TestSeededProbabilityReplays(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(seed, Rule{Point: PointCacheLookup, Action: ActionCancel, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.fire(context.Background(), PointCacheLookup) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pass %d differs under the same seed", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times — trigger looks constant", fires, len(a))
	}
}

func TestActionPanicCarriesPoint(t *testing.T) {
	arm(t, New(1, Rule{Point: PointBatchDrain, Action: ActionPanic, Every: 1}))
	defer func() {
		v := recover()
		p, ok := v.(*Panic)
		if !ok || p.Point != PointBatchDrain {
			t.Fatalf("recovered %v, want *Panic at batch_drain", v)
		}
	}()
	_ = Fire(context.Background(), PointBatchDrain)
	t.Fatal("panic rule did not panic")
}

func TestActionCancel(t *testing.T) {
	arm(t, New(1, Rule{Point: PointDecide, Action: ActionCancel, Every: 1}))
	if err := Fire(context.Background(), PointDecide); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel rule returned %v", err)
	}
}

func TestActionDelayHonorsContext(t *testing.T) {
	arm(t, New(1, Rule{Point: PointStreamWrite, Action: ActionDelay, Delay: time.Minute, Every: 1}))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Fire(ctx, PointStreamWrite)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed Fire = %v, want ctx deadline", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("delay ignored the context")
	}
}

func TestActionDelayElapses(t *testing.T) {
	arm(t, New(1, Rule{Point: PointStreamWrite, Action: ActionDelay, Delay: time.Millisecond, Every: 1}))
	start := time.Now()
	if err := Fire(context.Background(), PointStreamWrite); err != nil {
		t.Fatalf("elapsed delay returned %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay rule did not sleep")
	}
}

func TestParseSpec(t *testing.T) {
	good := map[string]Rule{
		"decide:panic:every=7":        {Point: PointDecide, Action: ActionPanic, Every: 7},
		"cache_lookup:error":          {Point: PointCacheLookup, Action: ActionError, Every: 1},
		"batch_drain:cancel:p=0.25":   {Point: PointBatchDrain, Action: ActionCancel, Prob: 0.25},
		"stream_write:delay=20ms:p=1": {Point: PointStreamWrite, Action: ActionDelay, Delay: 20 * time.Millisecond, Prob: 1},
		" decide:error:every=2 ":      {Point: PointDecide, Action: ActionError, Every: 2},
		"decide:panic,decide:panic":   {}, // multi-clause: checked separately below
	}
	for spec, want := range good {
		inj, err := ParseSpec(spec, 1)
		if err != nil {
			t.Errorf("ParseSpec(%q) = %v", spec, err)
			continue
		}
		if spec == "decide:panic,decide:panic" {
			if n := len(inj.rules[PointDecide]); n != 2 {
				t.Errorf("ParseSpec(%q): %d rules at decide, want 2", spec, n)
			}
			continue
		}
		if got := inj.rules[want.Point][0].Rule; got != want {
			t.Errorf("ParseSpec(%q) rule = %+v, want %+v", spec, got, want)
		}
	}
	bad := []string{
		"",                     // empty spec
		"decide",               // missing action
		"nowhere:panic",        // unknown point
		"decide:explode",       // unknown action
		"decide:delay",         // delay without duration
		"decide:delay=bogus",   // unparsable duration
		"decide:delay=-5ms",    // non-positive duration
		"decide:panic=3ms",     // =value on a non-delay action
		"decide:panic:every=0", // every below 1
		"decide:panic:p=0",     // p out of (0, 1]
		"decide:panic:p=1.5",   // p out of (0, 1]
		"decide:panic:often=2", // unknown trigger key
		"decide:panic:every",   // trigger without value
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
	}
}

func TestPointNamesRoundTrip(t *testing.T) {
	for _, p := range Points() {
		inj, err := ParseSpec(p.String()+":error", 1)
		if err != nil {
			t.Fatalf("point name %q does not parse: %v", p, err)
		}
		if len(inj.rules[p]) != 1 {
			t.Fatalf("point name %q parsed to the wrong point", p)
		}
	}
	if Point(-1).String() == "" || Point(99).String() == "" {
		t.Error("out-of-range points must still render")
	}
}

func TestFiredTotalMonotoneAcrossEnableCycles(t *testing.T) {
	before := FiredTotal()
	arm(t, New(1, Rule{Point: PointDecide, Action: ActionError, Every: 1}))
	_ = Fire(context.Background(), PointDecide)
	Disable()
	if err := Fire(context.Background(), PointDecide); err != nil {
		t.Fatalf("Fire after Disable = %v", err)
	}
	if got := FiredTotal() - before; got != 1 {
		t.Fatalf("FiredTotal delta = %d, want 1 (monotone, unaffected by Disable)", got)
	}
}
